// Serving-surface tests: overload soak (deadline-aware admission keeps
// the p99 of admitted work near the uncontended baseline while sheds
// absorb the excess), graceful drain mid-soak (zero acknowledged
// operations lost across Drain, with and without a hot standby), and a
// smoke test scraping the debug HTTP endpoints. See EXPERIMENTS.md E20.
package amoeba

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"amoeba/internal/cap"
	"amoeba/internal/crypto"
	"amoeba/internal/obs"
	"amoeba/internal/rpc"
)

// The soak service: one deliberately slow opcode (the overload source)
// and one fast probe opcode, hosted on its own cluster machine and
// wired into the cluster's registry and access log like any built-in
// service.
const (
	opSoakSlow = 0x7100
	opSoakFast = 0x7101
)

func init() {
	obs.RegisterOps(map[uint16]string{
		opSoakSlow: "soak.slow",
		opSoakFast: "soak.fast",
	})
}

func p99(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[len(sorted)*99/100]
}

// TestOverloadSoak drives a service with bursts of slow work at 2× and
// 4× its worker-pool capacity while a tight-budget probe keeps
// arriving. When a burst has the pool saturated and recent queue waits
// exceed the probe's budget, the probe must be shed — a crisp Overload
// refusal — instead of queueing behind a slow request it cannot
// outwait; between bursts it must be admitted onto a free worker and
// run at the uncontended latency. The overall p99 of admitted probes
// therefore stays near the uncontended baseline, with the shed rate
// absorbing the excess. The 4× case additionally pins the misadmission
// rate: queue wait is measured from NIC arrival, so even when the
// listener queue — not just the dispatch handoff — holds most of a
// deep burst, the EWMA sees the full wait and doomed probes are
// refused, not admitted. (An EWMA that started the clock at dispatch
// handoff systematically under-measured exactly here, and the deeper
// the burst the more doomed probes it admitted.)
func TestOverloadSoak(t *testing.T) {
	t.Run("burst=2x", func(t *testing.T) { runOverloadSoak(t, 2) })
	t.Run("burst=4x", func(t *testing.T) { runOverloadSoak(t, 4) })
}

func runOverloadSoak(t *testing.T, burstFactor int) {
	cl, err := NewCluster(ClusterConfig{Seed: 0x0B5E55ED})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const (
		pool     = 2
		slowWork = 10 * time.Millisecond
		budget   = time.Millisecond
		burstGap = 15 * time.Millisecond
	)
	// The server gets its own machine; calls come from the cluster's
	// client machine (locate broadcasts don't answer on the asker's own
	// machine).
	fb, _, err := cl.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	client := cl.RPC()
	srv := rpc.NewServerWithConfig(fb, rpc.ServerConfig{
		Source:      crypto.NewSeededSource(0x50AC),
		MaxInflight: pool,
	})
	stats := obs.NewServerStats(cl.Metrics(), cl.AccessLog(), "soak", rpc.StatusName)
	srv.SetObserver(stats)
	srv.Handle(opSoakSlow, func(ctx context.Context, md rpc.Meta, req rpc.Request) rpc.Reply {
		time.Sleep(slowWork)
		return rpc.OkReply(nil)
	})
	srv.Handle(opSoakFast, func(ctx context.Context, md rpc.Meta, req rpc.Request) rpc.Reply {
		return rpc.OkReply(nil)
	})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	target := cap.Capability{Server: srv.PutPort()}

	probe := func(deadline time.Duration) (time.Duration, error) {
		ctx, cancel := context.WithTimeout(context.Background(), deadline)
		defer cancel()
		start := time.Now()
		_, err := client.Call(ctx, target, opSoakFast, nil, rpc.WithRetries(0))
		return time.Since(start), err
	}

	// Warm the locate cache with a generous deadline so the probes'
	// tight budget measures serving, not discovery.
	warmCtx, warmCancel := context.WithTimeout(context.Background(), 5*time.Second)
	if _, err := client.Call(warmCtx, target, opSoakFast, nil); err != nil {
		warmCancel()
		t.Fatalf("warm-up call: %v", err)
	}
	warmCancel()

	// Uncontended baseline: the probe owns the pool. A roomy deadline —
	// this phase measures latency, not shedding, and must not flake on
	// a scheduler hiccup.
	var base []time.Duration
	for i := 0; i < 100; i++ {
		d, err := probe(50 * time.Millisecond)
		if err != nil {
			t.Fatalf("uncontended probe %d: %v", i, err)
		}
		base = append(base, d)
	}
	baseP99 := p99(base)

	// Bursty overload: each burst throws burstFactor× as many slow
	// calls at the pool as it has workers, waits for the burst to
	// clear, then pauses. Mid-burst the pool is saturated and the
	// queue's wait sits near a multiple of the slow service time — a
	// tight-budget probe is doomed there and must be shed; in the gaps
	// the pool is free and the same probe must sail through at the
	// uncontended latency. (Steady saturation never ends; admission
	// control earns its keep on exactly this shape, where refusing the
	// doomed keeps the admitted fast.)
	stop := make(chan struct{})
	var slowDone atomic.Uint64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var burst sync.WaitGroup
			for g := 0; g < burstFactor*pool; g++ {
				burst.Add(1)
				go func() {
					defer burst.Done()
					ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
					_, err := client.Call(ctx, target, opSoakSlow, nil)
					cancel()
					if err == nil {
						slowDone.Add(1)
					}
				}()
			}
			burst.Wait()
			select {
			case <-stop:
				return
			case <-time.After(burstGap):
			}
		}
	}()
	// Let the first burst land before judging the probes.
	time.Sleep(slowWork)

	const probes = 400
	var admitted []time.Duration
	var shed, late int
	for i := 0; i < probes; i++ {
		d, err := probe(budget)
		switch {
		case err == nil:
			admitted = append(admitted, d)
		case errors.Is(err, rpc.ErrOverload):
			shed++
		default:
			// An admitted probe that queued behind slow work anyway and
			// blew its deadline — a misadmission (the EWMA is an
			// estimate that decays across each gap and has to re-learn
			// the queue at every burst front). These must not dominate.
			late++
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()

	if shed == 0 {
		t.Fatalf("no probe was shed under %dx overload — admission control never engaged", burstFactor)
	}
	if len(admitted) == 0 {
		t.Fatal("every probe was shed — admission control refuses even free workers")
	}
	if got := stats.ShedCount(); got < uint64(shed) {
		t.Fatalf("shed metric %d < %d sheds the client saw", got, shed)
	}
	if late > len(admitted)+shed {
		t.Fatalf("misadmissions dominate: %d late vs %d admitted + %d shed", late, len(admitted), shed)
	}
	if burstFactor >= 4 {
		// The pinned misadmission bound. In a 4× burst the queue holds
		// requests for up to 3 full service times, most of it in the
		// listener queue — the regime where a handoff-stamped EWMA was
		// blind and admitted every doomed probe at the front of each
		// burst. With arrival-stamped waits the EWMA learns the queue
		// from the first pickup, so misadmissions are confined to the
		// initial re-learn and must stay a small fraction of traffic.
		//
		// A client-side deadline blow does not distinguish "admitted and
		// doomed" from "shed, but the Overload reply itself arrived past
		// the 1 ms deadline" (mid-burst even the refusal queues behind
		// the listener backlog). The server's shed counter does: sheds
		// the client never saw as Overload were still REFUSED, so true
		// misadmissions are the client's lates minus those.
		misadmitted := late - (int(stats.ShedCount()) - shed)
		if misadmitted < 0 {
			misadmitted = 0
		}
		if maxLate := probes / 8; misadmitted > maxLate {
			t.Fatalf("misadmission bound: %d of %d probes were admitted past their deadline (bound %d; %d late at the client, %d sheds unseen)",
				misadmitted, probes, maxLate, late, int(stats.ShedCount())-shed)
		}
	}
	if slowDone.Load() == 0 {
		t.Fatal("no slow (unbudgeted) op completed — the excess was dropped, not absorbed")
	}
	// The acceptance bar: p99 of admitted ops ≤ 1.5× uncontended. The
	// floor of one probe budget (+1 ms measurement slack) keeps
	// sub-millisecond scheduler noise from failing a comparison between
	// two numbers that are both small fractions of the 10 ms queue the
	// admission control kept the probes out of: an admitted probe
	// finished inside its budget by definition, never behind a full
	// slow service time.
	limit := baseP99 + baseP99/2
	if floor := budget + time.Millisecond; limit < floor {
		limit = floor
	}
	if got := p99(admitted); got > limit {
		t.Fatalf("admitted p99 %v exceeds %v (uncontended p99 %v): admitted probes inherited the queue", got, limit, baseP99)
	}
	t.Logf("baseline p99 %v; overload: %d admitted (p99 %v), %d shed, %d late, %d slow done",
		baseP99, len(admitted), p99(admitted), shed, late, slowDone.Load())
}

// drainSoakEntries files directory entries from several workers,
// returning the (name → capability) map the clients were acknowledged.
func drainSoakEntries(t *testing.T, cl *Cluster, root Capability, phase string, workers, perWorker int, barrier func()) map[string]Capability {
	t.Helper()
	dirs := cl.Dirs()
	var mu sync.Mutex
	acked := make(map[string]Capability)
	var wg sync.WaitGroup
	file := func(g, i int) {
		name := fmt.Sprintf("%s-w%d-e%d", phase, g, i)
		var sub Capability
		untilOK(t, "create "+name, func(ctx context.Context) error {
			var err error
			sub, err = dirs.CreateDir(ctx, cl.DirPort())
			return err
		})
		untilOK(t, "enter "+name, func(ctx context.Context) error {
			err := dirs.Enter(ctx, root, name, sub)
			if err != nil && strings.Contains(err.Error(), "exists") {
				return nil
			}
			return err
		})
		mu.Lock()
		acked[name] = sub
		mu.Unlock()
	}
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				file(g, i)
				if barrier != nil && i == perWorker/2 && g == 0 {
					barrier()
				}
			}
		}(g)
	}
	wg.Wait()
	return acked
}

func drainAssertAll(t *testing.T, cl *Cluster, root Capability, acked map[string]Capability) {
	t.Helper()
	dirs := cl.Dirs()
	listed := make(map[string]Capability)
	untilOK(t, "list after drain", func(ctx context.Context) error {
		entries, err := dirs.List(ctx, root)
		if err != nil {
			return err
		}
		clear(listed)
		for _, e := range entries {
			listed[e.Name] = e.Cap
		}
		return nil
	})
	for name, want := range acked {
		got, ok := listed[name]
		if !ok {
			t.Fatalf("acknowledged entry %q lost across the drain", name)
		}
		if got != want {
			t.Fatalf("entry %q came back with a different capability", name)
		}
	}
}

// TestDrainHandoffMidSoak: Drain of a replicated primary mid-soak is a
// zero-downtime restart — the standby takes the put-port over and not
// one acknowledged entry is lost. Clients ride through on overload
// retries and locate failover.
func TestDrainHandoffMidSoak(t *testing.T) {
	for i := 0; i < 3; i++ {
		t.Run(fmt.Sprintf("seed=%d", i), func(t *testing.T) {
			cl := failoverCluster(t, 0xD0A1_0000+uint64(i))
			dirs := cl.Dirs()
			var root Capability
			untilOK(t, "create root", func(ctx context.Context) error {
				var err error
				root, err = dirs.CreateDir(ctx, cl.DirPort())
				return err
			})

			primary := cl.Machines().Dirs
			var drainErr error
			var drained sync.WaitGroup
			drained.Add(1)
			acked := drainSoakEntries(t, cl, root, "hand", 4, 8, func() {
				go func() {
					defer drained.Done()
					drainErr = cl.Drain(primary)
				}()
			})
			drained.Wait()
			if drainErr != nil {
				t.Fatalf("Drain: %v", drainErr)
			}
			if cl.Machines().Dirs == primary {
				t.Fatal("drain with a standby did not move the service to the standby's machine")
			}
			drainAssertAll(t, cl, root, acked)

			// The drained machine is retired for good (same split-brain
			// guard as Promote).
			if err := cl.Restart(primary); err == nil || !strings.Contains(err.Error(), "split-brain") {
				t.Fatalf("drained-away machine restarted: %v", err)
			}
		})
	}
}

// TestDrainRestartMidSoak: without a standby, Drain parks the service —
// admission refused, in-flight finished, final checkpoint taken — and
// Restart brings it back from the drained WAL with every acknowledged
// entry intact.
func TestDrainRestartMidSoak(t *testing.T) {
	cl := killCluster(t, 0xD0A1_4E57)
	dirs := cl.Dirs()
	var root Capability
	untilOK(t, "create root", func(ctx context.Context) error {
		var err error
		root, err = dirs.CreateDir(ctx, cl.DirPort())
		return err
	})

	acked := drainSoakEntries(t, cl, root, "pre", 4, 6, nil)
	m := cl.Machines().Dirs
	if err := cl.Drain(m); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	// Down means down: a quick call must fail, not hang on a half-alive
	// server.
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	_, err := dirs.List(ctx, root)
	cancel()
	if err == nil {
		t.Fatal("drained service still answered")
	}
	if err := cl.Restart(m); err != nil {
		t.Fatalf("Restart after drain: %v", err)
	}
	for name, c := range drainSoakEntries(t, cl, root, "post", 2, 3, nil) {
		acked[name] = c
	}
	drainAssertAll(t, cl, root, acked)
}

// TestMetricsEndpointSmoke boots a cluster with the debug listener on,
// does real work, and scrapes every endpoint: Prometheus metrics (shed,
// queue-depth, WAL-sync and ship-lag series all present), the expvar
// JSON view, the access-log ring, and pprof.
func TestMetricsEndpointSmoke(t *testing.T) {
	cl, err := NewCluster(ClusterConfig{
		Seed:        0x0DEB_0650,
		DebugAddr:   "127.0.0.1:0",
		LookupLease: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if cl.DebugURL() == "" {
		t.Fatal("DebugAddr set but DebugURL empty")
	}

	// Real traffic so the series have data: directory mutations commit
	// to the WAL; a failed lookup exercises a non-OK status.
	dirs := cl.Dirs()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	root, err := dirs.CreateDir(ctx, cl.DirPort())
	if err != nil {
		t.Fatal(err)
	}
	if err := dirs.Enter(ctx, root, "probe", root); err != nil {
		t.Fatal(err)
	}
	if _, err := dirs.Lookup(ctx, root, "missing"); err == nil {
		t.Fatal("lookup of a missing entry succeeded")
	}
	// Two lookups of the same name: the first misses the lease cache
	// and banks the grant, the second is a cache hit — both series must
	// export nonzero below.
	for i := 0; i < 2; i++ {
		if _, err := dirs.Lookup(ctx, root, "probe"); err != nil {
			t.Fatal(err)
		}
	}

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(cl.DebugURL() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: reading body: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, body)
		}
		return string(body)
	}

	metrics := get("/metrics")
	for _, series := range []string{
		`amoeba_requests_total{service="directory",op="dir.create",status="ok"}`,
		`amoeba_requests_total{service="directory",op="dir.enter",status="ok"}`,
		`amoeba_shed_total{service="directory"}`,
		`amoeba_queue_depth{service="directory"}`,
		`amoeba_request_queue_wait_ns_count{service="directory"}`,
		`amoeba_wal_sync_ns_count{service="directory"}`,
		`amoeba_wal_used_bytes{service="directory"}`,
		`amoeba_ship_lag_records{service="directory"}`,
		// The gray-failure counters are registered at boot so a healthy
		// cluster exports them at zero — a dashboard can alert on their
		// first increment without ever having seen the series before.
		`amoeba_wal_wedged_total{service="directory"}`,
		`amoeba_self_demotions_total{service="directory"}`,
		`amoeba_wal_wedged_total{service="bank"}`,
		`amoeba_self_demotions_total{service="bank"}`,
		// The sharding series are likewise boot-registered: the map
		// generation reads 0 on an unsharded cluster and the migration
		// counter exports at zero until the first Cluster.Migrate.
		`amoeba_shard_map_generation{service="directory"}`,
		`amoeba_shard_map_generation{service="bank"}`,
		`amoeba_migrations_total{service="directory"}`,
		`amoeba_migrations_total{service="bank"}`,
		// The lookup-cache counters are boot-registered too: present (at
		// zero) even when LookupLease is off.
		`amoeba_lookup_cache_hits_total{service="directory"}`,
		`amoeba_lookup_cache_misses_total{service="directory"}`,
		`amoeba_lookup_cache_expired_total{service="directory"}`,
		`amoeba_lookup_cache_invalidated_total{service="directory"}`,
	} {
		if !strings.Contains(metrics, series) {
			t.Errorf("/metrics missing series %s", series)
		}
	}
	// With leases on and the probe looked up twice, both sides of the
	// cache moved: one banked miss, then at least one local hit.
	for _, nonzero := range []string{
		`amoeba_lookup_cache_hits_total{service="directory"} 0`,
		`amoeba_lookup_cache_misses_total{service="directory"} 0`,
	} {
		if strings.Contains(metrics, nonzero) {
			t.Errorf("/metrics series stuck at zero: %s", nonzero)
		}
	}

	var vars struct {
		Process map[string]json.RawMessage `json:"process"`
		Metrics map[string]json.RawMessage `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(get("/debug/vars")), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	if len(vars.Process) == 0 || len(vars.Metrics) == 0 {
		t.Fatalf("/debug/vars missing sections: process=%d metrics=%d", len(vars.Process), len(vars.Metrics))
	}

	var recs []obs.ReqRecord
	if err := json.Unmarshal([]byte(get("/debug/requests?n=50")), &recs); err != nil {
		t.Fatalf("/debug/requests is not JSON: %v", err)
	}
	if len(recs) == 0 {
		t.Fatal("/debug/requests empty after real traffic")
	}
	sawDirOp := false
	for _, r := range recs {
		if r.Service == "directory" && strings.HasPrefix(r.Op, "dir.") && r.ReqID != 0 {
			sawDirOp = true
		}
	}
	if !sawDirOp {
		t.Fatalf("access log has no directory record with a request ID: %+v", recs[0])
	}

	if body := get("/debug/pprof/cmdline"); len(body) == 0 {
		t.Fatal("/debug/pprof/cmdline empty")
	}
}
