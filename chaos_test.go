// Chaos tests: the E10/E11 end-to-end paths run against a simulated
// network that loses, duplicates and reorders frames (seeded, so every
// run sees the same fault pattern), plus a partition/heal cycle. The
// assertion everywhere is convergence: at-least-once retries over
// idempotent operations must land the system in the correct state no
// matter which frames the network mangled.
package amoeba

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"amoeba/internal/rpc"
)

// chaosCluster boots a cluster on a hostile, deterministic network.
func chaosCluster(t *testing.T, seed uint64) *Cluster {
	t.Helper()
	cl, err := NewCluster(ClusterConfig{
		Seed:      seed,
		LossRate:  0.05,
		Duplicate: 0.05,
		Reorder:   0.05,
		Latency:   100 * time.Microsecond,
		Jitter:    200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

// retryOp keeps attempting fn until it succeeds: the convergence
// discipline a 5% loss rate demands. Each fn attempt already carries
// the client's own internal retries.
func retryOp(t *testing.T, what string, fn func(ctx context.Context) error) {
	t.Helper()
	ctx := context.Background()
	var err error
	for attempt := 0; attempt < 20; attempt++ {
		if err = fn(ctx); err == nil {
			return
		}
	}
	t.Fatalf("%s never converged: %v", what, err)
}

// TestChaosE10FileConvergence drives the flat file service (nested
// block-server RPC, batched transfers) through writes, reads and a
// truncate under loss + duplication + reordering, checking every read
// against a local model of the file.
func TestChaosE10FileConvergence(t *testing.T) {
	cl := chaosCluster(t, 0xC4A05)
	files := cl.Files()

	var f Capability
	retryOp(t, "create", func(ctx context.Context) error {
		var err error
		f, err = files.Create(ctx)
		return err
	})

	const size = 4096 // four blocks
	model := make([]byte, size)
	for round := 0; round < 8; round++ {
		// Deterministic, round-dependent slice at an unaligned offset.
		off := uint64(round*509) % (size - 600)
		payload := bytes.Repeat([]byte{byte('A' + round)}, 600)
		copy(model[off:], payload)
		retryOp(t, fmt.Sprintf("write round %d", round), func(ctx context.Context) error {
			return files.WriteAt(ctx, f, off, payload)
		})
		var got []byte
		retryOp(t, fmt.Sprintf("read round %d", round), func(ctx context.Context) error {
			var err error
			got, err = files.ReadAt(ctx, f, 0, size)
			return err
		})
		want := model
		if len(got) < size {
			want = model[:len(got)] // file may not have grown to size yet
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("round %d: file diverged from model", round)
		}
	}

	retryOp(t, "truncate", func(ctx context.Context) error {
		return files.Truncate(ctx, f, 1000)
	})
	retryOp(t, "size", func(ctx context.Context) error {
		sz, err := files.Size(ctx, f)
		if err != nil {
			return err
		}
		if sz != 1000 {
			return fmt.Errorf("size %d, want 1000", sz)
		}
		return nil
	})
	var tail []byte
	retryOp(t, "read after regrow", func(ctx context.Context) error {
		if err := files.WriteAt(ctx, f, 2000, []byte{0xEE}); err != nil {
			return err
		}
		var err error
		tail, err = files.ReadAt(ctx, f, 1000, 1000)
		return err
	})
	// Everything between the truncate point and the regrow write must
	// read zero: the truncate's tail-zeroing converged despite chaos.
	for i, b := range tail {
		if b != 0 {
			t.Fatalf("stale byte %#x at offset %d after truncate+regrow", b, 1000+i)
		}
	}
}

// TestChaosE11EchoPartitionHeal runs the raw trans() primitive through
// partition/heal cycles between the client and the file-server
// machine: transactions must fail fast while the link is cut and
// converge again after every heal.
func TestChaosE11EchoPartitionHeal(t *testing.T) {
	cl := chaosCluster(t, 0xE11)
	m := cl.Machines()
	port := cl.files.PutPort()
	payload := []byte("are you there?")

	echo := func(ctx context.Context, opts ...rpc.CallOption) error {
		rep, err := cl.RPC().Trans(ctx, port, Request{Op: OpEcho, Data: payload}, opts...)
		if err != nil {
			return err
		}
		if rep.Status != StatusOK || !bytes.Equal(rep.Data, payload) {
			return fmt.Errorf("bad echo: %+v", rep)
		}
		return nil
	}

	for cycle := 0; cycle < 3; cycle++ {
		retryOp(t, fmt.Sprintf("echo before partition %d", cycle), func(ctx context.Context) error {
			return echo(ctx)
		})

		cl.Net().Partition(m.Client, m.Files)
		err := echo(context.Background(),
			WithTimeout(50*time.Millisecond), WithRetries(1))
		if err == nil {
			t.Fatalf("cycle %d: echo succeeded across a partition", cycle)
		}

		cl.Net().Heal(m.Client, m.Files)
		retryOp(t, fmt.Sprintf("echo after heal %d", cycle), func(ctx context.Context) error {
			return echo(ctx)
		})
	}
}

// TestChaosE10BatchReads: batched block fetches (one frame carrying
// many sub-requests) under the same fault model — a lost or duplicated
// batch frame must never yield torn results, only retries.
func TestChaosE10BatchReads(t *testing.T) {
	cl := chaosCluster(t, 0xBA7C)
	blocks := cl.Blocks()

	var caps []Capability
	want := make([][]byte, 12)
	for i := range want {
		var blk Capability
		retryOp(t, fmt.Sprintf("alloc %d", i), func(ctx context.Context) error {
			var err error
			blk, err = blocks.Alloc(ctx)
			return err
		})
		caps = append(caps, blk)
		want[i] = bytes.Repeat([]byte{byte(i + 1)}, 32)
		retryOp(t, fmt.Sprintf("write %d", i), func(ctx context.Context) error {
			return blocks.Write(ctx, blk, want[i])
		})
	}
	for round := 0; round < 5; round++ {
		var got [][]byte
		retryOp(t, fmt.Sprintf("batch read round %d", round), func(ctx context.Context) error {
			var err error
			got, err = blocks.ReadBatch(ctx, caps)
			return err
		})
		for i := range want {
			if !bytes.Equal(got[i][:32], want[i]) {
				t.Fatalf("round %d block %d: torn batch read", round, i)
			}
		}
	}
}
