// Lease-cache chaos: readers serving lookups from cache while a
// writer renames the binding out from under them. The contract under
// test is the lease staleness bound — after a conflicting rename is
// acknowledged, no client may act on the old binding once the lease
// duration has passed — plus precise self-invalidation for the
// writer itself. Seeded; CI repeats under -race.
package amoeba

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"amoeba/internal/lease"
	"amoeba/internal/obs"
	"amoeba/internal/server/dirsvr"
)

const renameLease = 20 * time.Millisecond

func leaseChaosCluster(t *testing.T, seed uint64) *Cluster {
	t.Helper()
	cl, err := NewCluster(ClusterConfig{
		Seed:        seed,
		Latency:     50 * time.Microsecond,
		Jitter:      100 * time.Microsecond,
		LookupLease: renameLease,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

func TestChaosLookupLeaseRename(t *testing.T) {
	for i := 0; i < killRestartSeeds(t); i++ {
		t.Run(fmt.Sprintf("seed=%d", i), func(t *testing.T) {
			runLookupLeaseRename(t, 0x1EA5_0000+uint64(i))
		})
	}
}

func runLookupLeaseRename(t *testing.T, seed uint64) {
	ctx := context.Background()
	cl := leaseChaosCluster(t, seed)
	dirs := cl.Dirs()

	dir, err := dirs.CreateDir(ctx, cl.DirPort())
	if err != nil {
		t.Fatal(err)
	}
	oldCap, err := dirs.CreateDir(ctx, cl.DirPort())
	if err != nil {
		t.Fatal(err)
	}
	newCap, err := dirs.CreateDir(ctx, cl.DirPort())
	if err != nil {
		t.Fatal(err)
	}
	if err := dirs.Enter(ctx, dir, "target", oldCap); err != nil {
		t.Fatal(err)
	}

	// Readers: each on its own machine with its OWN lease cache — they
	// hold cached bindings for "target" and never hear about the
	// rename except through lease expiry. deadlineNs is set by the
	// writer the moment the rename is acknowledged: observing oldCap
	// when a lookup STARTED after deadline+lease is a staleness-bound
	// violation. The start timestamp makes the check race-free: a
	// cached binding served to a lookup starting at time s was
	// unexpired at some instant ≥ s, so s > deadline+lease proves the
	// cache served past the bound — while scheduling delay after the
	// call can never manufacture a false positive.
	var (
		stop       atomic.Bool
		deadlineNs atomic.Int64 // 0 until the rename is acknowledged
		violations atomic.Int64
		staleAfter atomic.Int64 // oldCap served post-rename, within the lease window (expected!)
		hits       atomic.Uint64
		wg         sync.WaitGroup
	)
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, rc, err := cl.NewMachine()
			if err != nil {
				t.Error(err)
				return
			}
			ownHits := &obs.Counter{}
			cache := lease.New(0, lease.Counters{Hits: ownHits})
			dc := dirsvr.NewCachingClient(rc, cache)
			for !stop.Load() {
				start := time.Now().UnixNano()
				opCtx, cancel := context.WithTimeout(ctx, 2*time.Second)
				got, err := dc.Lookup(opCtx, dir, "target")
				cancel()
				if err != nil {
					continue // mid-rename gap: the name is briefly absent
				}
				if got == oldCap {
					if dl := deadlineNs.Load(); dl != 0 {
						if start > dl+int64(renameLease) {
							violations.Add(1)
						} else {
							staleAfter.Add(1)
						}
					}
				}
			}
			hits.Add(ownHits.Value())
		}()
	}

	// Warm the readers' caches, then rename target: oldCap → newCap.
	time.Sleep(30 * time.Millisecond)
	if err := dirs.Remove(ctx, dir, "target"); err != nil {
		t.Fatal(err)
	}
	if err := dirs.Enter(ctx, dir, "target", newCap); err != nil {
		t.Fatal(err)
	}
	deadlineNs.Store(time.Now().UnixNano())

	// The writer's own cache floor advanced with the mutation replies:
	// it must read its own write back immediately, no lease wait.
	got, err := dirs.Lookup(ctx, dir, "target")
	if err != nil {
		t.Fatal(err)
	}
	if got != newCap {
		t.Fatalf("writer read its own rename back as the old binding")
	}

	// Let the readers run well past the lease bound, then stop.
	time.Sleep(100 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	if v := violations.Load(); v != 0 {
		t.Fatalf("%d lookups served the old binding past rename+lease — the staleness bound is broken", v)
	}
	if hits.Load() == 0 {
		t.Fatal("readers never hit their caches; the test exercised nothing")
	}
	// Readers converge to the new binding once leases lapse.
	untilOK(t, "converge", func(ctx context.Context) error {
		_, rc, err := cl.NewMachine()
		if err != nil {
			return err
		}
		dc := dirsvr.NewCachingClient(rc, lease.New(0, lease.Counters{}))
		c, err := dc.Lookup(ctx, dir, "target")
		if err != nil {
			return err
		}
		if c != newCap {
			return fmt.Errorf("fresh client sees stale binding")
		}
		return nil
	})
	t.Logf("hits=%d staleWithinLease=%d (allowed)", hits.Load(), staleAfter.Load())
}

// TestShardKillPromoteOverlappingMigration covers the locate-budget
// re-arm at cluster scale: a client call that gets bounced by a
// migration (StatusWrongShard → map refresh) while the destination
// shard's group is ALSO electing a new primary (kill → auto-promote)
// needs more than one extra LOCATE round — one per cause. Before the
// re-arm fix, the WrongShard refresh could burn the call's only
// re-broadcast mid-election and strand it with retries to spare.
func TestShardKillPromoteOverlappingMigration(t *testing.T) {
	// Heavier than most chaos suites (two failovers' worth of waiting
	// per seed), so fewer seeds; the 20-seed bar is carried by
	// TestChaosLookupLeaseRename and TestChaosShardPrimaryKill.
	seeds := 5
	if testing.Short() {
		seeds = 2
	}
	for i := 0; i < seeds; i++ {
		t.Run(fmt.Sprintf("seed=%d", i), func(t *testing.T) {
			runKillPromoteOverlappingMigration(t, 0x5EAD_0000+uint64(i))
		})
	}
}

func runKillPromoteOverlappingMigration(t *testing.T, seed uint64) {
	ctx := context.Background()
	cl := shardGroupCluster(t, seed)
	dirs := cl.Dirs()

	var hot Capability
	untilOK(t, "create dir", func(ctx context.Context) error {
		var err error
		hot, err = dirs.CreateDir(ctx, cl.DirPort())
		return err
	})
	marker := hot
	acked := map[string]bool{}
	enter := func(name string) {
		untilOK(t, "enter "+name, func(ctx context.Context) error {
			err := dirs.Enter(ctx, hot, name, marker)
			// Names are unique per call site, so "exists" means an earlier
			// attempt landed and only its ack was lost.
			if err != nil && strings.Contains(err.Error(), "exists") {
				return nil
			}
			return err
		})
		acked[name] = true
	}
	for i := 0; i < 5; i++ {
		enter(fmt.Sprintf("pre%d", i))
	}

	// Clients hammering the hot directory all through the overlap.
	var (
		stop atomic.Bool
		wg   sync.WaitGroup
		mu   sync.Mutex
		late = map[string]bool{} // acked by the soak writers
	)
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			_, rc, err := cl.NewMachine()
			if err != nil {
				t.Error(err)
				return
			}
			dc := dirsvr.NewClient(rc)
			for seq := 0; !stop.Load(); seq++ {
				name := fmt.Sprintf("w%d-%d", w, seq)
				opCtx, cancel := context.WithTimeout(ctx, 2*time.Second)
				err := dc.Enter(opCtx, hot, name, marker)
				cancel()
				if err == nil {
					mu.Lock()
					late[name] = true
					mu.Unlock()
				}
			}
		}(w)
	}

	// The overlap: migrate the hot object to the other shard, then
	// immediately kill its NEW home's primary. Calls in flight see the
	// WrongShard bounce from the move and then a dead authority — two
	// causes, two extra locate rounds.
	time.Sleep(30 * time.Millisecond)
	src := cl.ShardOf(cl.DirPort(), hot.Object)
	dst := 1 - src
	if err := cl.Migrate(ctx, cl.DirPort(), hot.Object, dst); err != nil {
		t.Fatal(err)
	}
	victim := cl.ShardMachines(cl.DirPort())[dst]
	if err := cl.Kill(victim); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for cl.ShardMachines(cl.DirPort())[dst] == victim {
		if time.Now().After(deadline) {
			t.Fatal("the migrated-to shard never failed over")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Post-promotion: the same client session (same locate cache, same
	// shard map) converges without a fresh client.
	enter("post-overlap")
	time.Sleep(30 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	mu.Lock()
	for name := range late {
		acked[name] = true
	}
	mu.Unlock()

	var entries []dirsvr.Entry
	untilOK(t, "list", func(ctx context.Context) error {
		var err error
		entries, err = dirs.List(ctx, hot)
		return err
	})
	present := make(map[string]bool, len(entries))
	for _, e := range entries {
		present[e.Name] = true
	}
	for name := range acked {
		if !present[name] {
			t.Fatalf("acked entry %q lost across migration+failover (%d acked, %d present)", name, len(acked), len(present))
		}
	}
	if len(acked) < 6 {
		t.Fatal("soak acknowledged almost nothing; the overlap was not exercised")
	}
}
