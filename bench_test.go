// Benchmarks regenerating the paper's figures and comparative claims.
// Each BenchmarkXX corresponds to an experiment in DESIGN.md §4 and a
// row in EXPERIMENTS.md. cmd/experiments runs the same code paths and
// prints paper-style tables; these targets give the raw numbers via
// `go test -bench=. -benchmem`.
package amoeba

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"amoeba/internal/amnet"
	"amoeba/internal/cap"
	"amoeba/internal/crypto"
	"amoeba/internal/fbox"
	"amoeba/internal/keymatrix"
	"amoeba/internal/locate"
	"amoeba/internal/repl"
	"amoeba/internal/rpc"
	"amoeba/internal/server/banksvr"
	"amoeba/internal/server/dirsvr"
	"amoeba/internal/server/memsvr"
	"amoeba/internal/vdisk"
	"amoeba/internal/wal"
)

// --------------------------------------------------------------------
// F2: the Fig. 2 wire format.

func BenchmarkF2_EncodeDecode(b *testing.B) {
	c := cap.Capability{Server: 0x123456789abc, Object: 0xABCDEF, Rights: 0x5A, Check: 0x0F0E0D0C0B0A}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w := c.Encode()
		dec, err := cap.Decode(w[:])
		if err != nil || dec != c {
			b.Fatal("round trip failed")
		}
	}
}

// --------------------------------------------------------------------
// F1: the F-box port transformation (both one-way functions).

func BenchmarkF1_PortTransform(b *testing.B) {
	for _, f := range []crypto.OneWay{crypto.SHA48{Tag: 1}, crypto.Purdy{}} {
		b.Run(f.Name(), func(b *testing.B) {
			b.ReportAllocs()
			x := uint64(0x7777)
			for i := 0; i < b.N; i++ {
				x = f.F(x)
			}
			sinkUint = x
		})
	}
}

var sinkUint uint64

// --------------------------------------------------------------------
// E1–E4: mint and validate cost for the four §2.3 schemes.

func benchSchemes(b *testing.B, run func(b *testing.B, s cap.Scheme, secret uint64, owner cap.Capability)) {
	b.Helper()
	src := crypto.NewSeededSource(0xBE4C)
	for _, id := range cap.AllSchemeIDs() {
		s, err := cap.NewScheme(id)
		if err != nil {
			b.Fatal(err)
		}
		secret := s.PrepareSecret(crypto.Rand48(src))
		owner := s.Mint(cap.Port(0xABC), 1, secret)
		b.Run(id.String(), func(b *testing.B) {
			run(b, s, secret, owner)
		})
	}
}

func BenchmarkE1to4_Mint(b *testing.B) {
	benchSchemes(b, func(b *testing.B, s cap.Scheme, secret uint64, _ cap.Capability) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c := s.Mint(cap.Port(0xABC), 1, secret)
			sinkUint = c.Check
		}
	})
}

func BenchmarkE1to4_Validate(b *testing.B) {
	benchSchemes(b, func(b *testing.B, s cap.Scheme, secret uint64, owner cap.Capability) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := s.Validate(owner, secret); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkE1_Scheme0Validate(b *testing.B) {
	s := cap.CompareScheme{}
	secret := s.PrepareSecret(12345)
	owner := s.Mint(cap.Port(0xABC), 1, secret)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.Validate(owner, secret); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE2_Scheme1Validate(b *testing.B) {
	s, err := cap.NewEncryptedScheme(nil)
	if err != nil {
		b.Fatal(err)
	}
	secret := s.PrepareSecret(12345)
	owner := s.Mint(cap.Port(0xABC), 1, secret)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.Validate(owner, secret); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE3_Scheme2Validate(b *testing.B) {
	s := cap.NewOneWayScheme(nil)
	secret := s.PrepareSecret(12345)
	owner := s.Mint(cap.Port(0xABC), 1, secret)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.Validate(owner, secret); err != nil {
			b.Fatal(err)
		}
	}
}

// E4: scheme 3 validation cost grows with the number of deleted
// rights (the server applies one commutative function per cleared
// bit).
func BenchmarkE4_Scheme3Validate(b *testing.B) {
	s := cap.NewCommutativeScheme(nil)
	secret := s.PrepareSecret(777)
	owner := s.Mint(cap.Port(0xABC), 1, secret)
	for deleted := 0; deleted <= 8; deleted += 2 {
		mask := cap.AllRights << uint(deleted) // clears `deleted` low bits
		weak, err := s.RestrictLocal(owner, mask)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("deleted=%d", deleted), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := s.Validate(weak, secret); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E4: local restriction (scheme 3's whole point) — pure computation.
func BenchmarkE4_Scheme3Restrict(b *testing.B) {
	s := cap.NewCommutativeScheme(nil)
	secret := s.PrepareSecret(777)
	owner := s.Mint(cap.Port(0xABC), 1, secret)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c, err := s.RestrictLocal(owner, cap.RightRead)
		if err != nil {
			b.Fatal(err)
		}
		sinkUint = c.Check
	}
}

// E4 headline: restricting a capability locally (scheme 3) vs going
// back to the server over the network (scheme 2, the paper's "requires
// going back to the server every time").
func BenchmarkE4_RestrictLocalVsServer(b *testing.B) {
	ctx := context.Background()
	b.Run("scheme3-local", func(b *testing.B) {
		s := cap.NewCommutativeScheme(nil)
		secret := s.PrepareSecret(777)
		owner := s.Mint(cap.Port(0xABC), 1, secret)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c, err := s.RestrictLocal(owner, cap.RightRead)
			if err != nil {
				b.Fatal(err)
			}
			sinkUint = c.Check
		}
	})
	b.Run("scheme2-server-roundtrip", func(b *testing.B) {
		cl, err := NewCluster(ClusterConfig{Scheme: SchemeOneWay, Seed: 7})
		if err != nil {
			b.Fatal(err)
		}
		defer cl.Close()
		f, err := cl.Files().Create(ctx)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := cl.Files().Restrict(ctx, f, cap.RightRead); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// E3 companion: the same server restriction under scheme 2 explicitly.
func BenchmarkE3_RestrictViaServer(b *testing.B) {
	ctx := context.Background()
	cl, err := NewCluster(ClusterConfig{Scheme: SchemeOneWay, Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	f, err := cl.Files().Create(ctx)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := cl.Files().Restrict(ctx, f, cap.RightRead); err != nil {
			b.Fatal(err)
		}
	}
}

// E5: validation without the rights field — try all 2^N combinations.
func BenchmarkE5_ExhaustiveValidate(b *testing.B) {
	s := cap.NewCommutativeScheme(nil)
	secret := s.PrepareSecret(99)
	owner := s.Mint(cap.Port(0xABC), 1, secret)
	weak, err := s.RestrictLocal(owner, cap.RightRead|cap.RightCreate)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("with-rights-field", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := s.Validate(weak, secret); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("exhaustive-no-rights-field", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := s.ValidateExhaustive(weak, secret); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// E6: revocation cost (re-key the object, mint the replacement).
func BenchmarkE6_Revoke(b *testing.B) {
	for _, id := range cap.AllSchemeIDs() {
		b.Run(id.String(), func(b *testing.B) {
			s, err := cap.NewScheme(id)
			if err != nil {
				b.Fatal(err)
			}
			t := cap.NewTable(s, cap.Port(0xABC), crypto.NewSeededSource(uint64(id)))
			owner, err := t.Create()
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				owner, err = t.Revoke(owner)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E7: signature generation (F-transform on send) plus verification.
func BenchmarkE7_Signature(b *testing.B) {
	f := crypto.SHA48{Tag: 1}
	signer := fbox.NewSigner(crypto.NewSeededSource(1), f)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		onWire := cap.Port(f.F(uint64(signer.Secret())))
		if !fbox.VerifySignature(fbox.Received{Message: fbox.Message{Sig: onWire}}, signer.Public()) {
			b.Fatal("signature failed")
		}
	}
}

// E8: §2.4 key-matrix capability sealing — cache miss vs hit, and the
// bootstrap handshake.
func BenchmarkE8_MatrixEncrypt(b *testing.B) {
	m := keymatrix.NewMatrix(crypto.NewSeededSource(8))
	peers := []amnet.MachineID{1, 2}
	g := m.Guard(1, peers, nil)
	c := cap.Capability{Server: 0xABC, Object: 1, Rights: 0xFF, Check: 0x123456}
	b.Run("miss", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g.FlushCaches()
			if _, err := g.Seal(c, 2); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hit", func(b *testing.B) {
		if _, err := g.Seal(c, 2); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := g.Seal(c, 2); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkE8_CacheHitVsMiss(b *testing.B) {
	// Server-side Open path.
	m := keymatrix.NewMatrix(crypto.NewSeededSource(9))
	peers := []amnet.MachineID{1, 2}
	client := m.Guard(1, peers, nil)
	server := m.Guard(2, peers, nil)
	c := cap.Capability{Server: 0xABC, Object: 1, Rights: 0xFF, Check: 0x123456}
	enc, err := client.Seal(c, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("open-miss", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			server.FlushCaches()
			if _, err := server.Open(enc, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("open-hit", func(b *testing.B) {
		if _, err := server.Open(enc, 1); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := server.Open(enc, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkE8_Bootstrap(b *testing.B) {
	priv, err := crypto.GenerateRSA(512, nil)
	if err != nil {
		b.Fatal(err)
	}
	src := crypto.NewSeededSource(10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		client := keymatrix.NewGuard(1, nil)
		server := keymatrix.NewGuard(2, nil)
		if err := keymatrix.Bootstrap(client, server, priv, src); err != nil {
			b.Fatal(err)
		}
	}
}

// E9: cost of rejecting forged capabilities (the defender's work per
// guess), per scheme.
func BenchmarkE9_ForgeryRejection(b *testing.B) {
	benchSchemes(b, func(b *testing.B, s cap.Scheme, secret uint64, owner cap.Capability) {
		forged := owner
		forged.Check ^= 1
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := s.Validate(forged, secret); err == nil {
				b.Fatal("forgery accepted")
			}
		}
	})
}

// --------------------------------------------------------------------
// E10: the §3 services end-to-end over the simulated network.

func benchCluster(b *testing.B) *Cluster {
	b.Helper()
	cl, err := NewCluster(ClusterConfig{Seed: 0xE10, DiskBlocks: 8192})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { cl.Close() })
	return cl
}

func BenchmarkE10_SegmentWrite(b *testing.B) {
	ctx := context.Background()
	cl := benchCluster(b)
	seg, err := cl.Memory().CreateSegment(ctx, 1<<20)
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, 4096)
	b.ResetTimer()
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		if err := cl.Memory().Write(ctx, seg, uint32(i%(1<<8))*4096, data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE10_FileWriteRead(b *testing.B) {
	ctx := context.Background()
	cl := benchCluster(b)
	f, err := cl.Files().Create(ctx)
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, 1024)
	b.Run("write-1k", func(b *testing.B) {
		b.SetBytes(1024)
		for i := 0; i < b.N; i++ {
			if err := cl.Files().WriteAt(ctx, f, uint64(i%64)*1024, data); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("read-1k", func(b *testing.B) {
		b.SetBytes(1024)
		for i := 0; i < b.N; i++ {
			if _, err := cl.Files().ReadAt(ctx, f, uint64(i%64)*1024, 1024); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkE10_DirLookup(b *testing.B) {
	ctx := context.Background()
	cl := benchCluster(b)
	dirs := cl.Dirs()
	// Build a chain of depth d and look the whole path up.
	for _, depth := range []int{1, 4, 16} {
		root, err := dirs.CreateDir(ctx, cl.DirPort())
		if err != nil {
			b.Fatal(err)
		}
		cur := root
		path := ""
		for i := 0; i < depth; i++ {
			sub, err := dirs.CreateDir(ctx, cl.DirPort())
			if err != nil {
				b.Fatal(err)
			}
			name := fmt.Sprintf("d%d", i)
			if err := dirs.Enter(ctx, cur, name, sub); err != nil {
				b.Fatal(err)
			}
			cur = sub
			path += "/" + name
		}
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := dirs.LookupPath(ctx, root, path); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --------------------------------------------------------------------
// E24: lease-cached path lookup. Same walk as E10's DirLookup, but the
// cluster grants lookup leases, so after one warming walk every
// iteration is served from the client cache — zero RPCs, zero allocs.
// Compare against BenchmarkE10_DirLookup at equal depth for the cost
// of the round trips the lease removed.

func BenchmarkE24_CachedDirLookup(b *testing.B) {
	ctx := context.Background()
	cl, err := NewCluster(ClusterConfig{
		Seed:        0xE24,
		DiskBlocks:  8192,
		LookupLease: time.Minute,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { cl.Close() })
	dirs := cl.Dirs()
	for _, depth := range []int{1, 4, 16} {
		root, err := dirs.CreateDir(ctx, cl.DirPort())
		if err != nil {
			b.Fatal(err)
		}
		cur := root
		path := ""
		for i := 0; i < depth; i++ {
			sub, err := dirs.CreateDir(ctx, cl.DirPort())
			if err != nil {
				b.Fatal(err)
			}
			name := fmt.Sprintf("d%d", i)
			if err := dirs.Enter(ctx, cur, name, sub); err != nil {
				b.Fatal(err)
			}
			cur = sub
			path += "/" + name
		}
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			// One walk to populate the cache; everything after hits.
			want, err := dirs.LookupPath(ctx, root, path)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				got, err := dirs.LookupPath(ctx, root, path)
				if err != nil {
					b.Fatal(err)
				}
				if got != want {
					b.Fatal("cached walk resolved a different capability")
				}
			}
		})
	}
}

func BenchmarkE10_MVCommit(b *testing.B) {
	ctx := context.Background()
	// COW commit cost as a function of dirtied pages.
	cl := benchCluster(b)
	mv := cl.Versions()
	for _, dirty := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("dirty=%d", dirty), func(b *testing.B) {
			f, err := mv.CreateFile(ctx)
			if err != nil {
				b.Fatal(err)
			}
			page := make([]byte, 1024)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v, err := mv.NewVersion(ctx, f)
				if err != nil {
					b.Fatal(err)
				}
				for p := 0; p < dirty; p++ {
					if err := mv.WritePage(ctx, v, uint32(p), page); err != nil {
						b.Fatal(err)
					}
				}
				if _, _, err := mv.Commit(ctx, v); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkE10_BankTransfer(b *testing.B) {
	ctx := context.Background()
	cl := benchCluster(b)
	bank := cl.Bank()
	src, err := bank.CreateAccount(ctx, "dollar", 1<<40)
	if err != nil {
		b.Fatal(err)
	}
	dst, err := bank.CreateAccount(ctx, "dollar", 0)
	if err != nil {
		b.Fatal(err)
	}
	deposit, err := bank.Restrict(ctx, dst, cap.RightCreate)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := bank.Transfer(ctx, src, deposit, "dollar", 1); err != nil {
			b.Fatal(err)
		}
	}
}

// --------------------------------------------------------------------
// E11: the blocking trans() primitive.

func BenchmarkE11_TransSimnet(b *testing.B) {
	ctx := context.Background()
	cl := benchCluster(b)
	port := cl.files.PutPort()
	payload := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := cl.RPC().Trans(ctx, port, rpc.Request{Op: rpc.OpEcho, Data: payload})
		if err != nil || rep.Status != rpc.StatusOK {
			b.Fatal(err, rep.Status)
		}
	}
}

func BenchmarkE11_TransTCP(b *testing.B) {
	ctx := context.Background()
	// Real TCP loopback between two OS processes' worth of stack (one
	// process, two sockets).
	reg := map[amnet.MachineID]string{1: "127.0.0.1:0", 2: "127.0.0.1:0"}
	srvNet, err := amnet.NewTCPNet(1, reg)
	if err != nil {
		b.Fatal(err)
	}
	defer srvNet.Close()
	reg2 := map[amnet.MachineID]string{1: srvNet.Addr(), 2: "127.0.0.1:0"}
	cliNet, err := amnet.NewTCPNet(2, reg2)
	if err != nil {
		b.Fatal(err)
	}
	defer cliNet.Close()
	srvNet.SetPeer(2, cliNet.Addr())

	srvFB := fbox.New(srvNet, nil)
	defer srvFB.Close()
	cliFB := fbox.New(cliNet, nil)
	defer cliFB.Close()

	src := crypto.NewSeededSource(0x7C9)
	server := rpc.NewServer(srvFB, src)
	server.Handle(rpc.OpEcho, func(_ context.Context, _ rpc.Meta, req rpc.Request) rpc.Reply {
		return rpc.OkReply(req.Data)
	})
	if err := server.Start(); err != nil {
		b.Fatal(err)
	}
	defer server.Close()

	res := locate.New(cliFB, locate.Config{})
	client := rpc.NewClient(cliFB, res, rpc.ClientConfig{Source: src})
	payload := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := client.Trans(ctx, server.PutPort(), rpc.Request{Op: rpc.OpEcho, Data: payload})
		if err != nil || rep.Status != rpc.StatusOK {
			b.Fatal(err, rep.Status)
		}
	}
}

// --------------------------------------------------------------------
// E12: LOCATE — cache hit vs broadcast round.

func BenchmarkE12_Locate(b *testing.B) {
	ctx := context.Background()
	cl := benchCluster(b)
	fb, _, err := cl.NewMachine()
	if err != nil {
		b.Fatal(err)
	}
	port := cl.files.PutPort()
	b.Run("cache-hit", func(b *testing.B) {
		res := locate.New(fb, locate.Config{TTL: -1})
		if _, err := res.Lookup(ctx, port); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := res.Lookup(ctx, port); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("broadcast", func(b *testing.B) {
		res := locate.New(fb, locate.Config{})
		for i := 0; i < b.N; i++ {
			res.Invalidate(port)
			if _, err := res.Lookup(ctx, port); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// E8 ablation: what capability sealing costs per transaction —
// plain trans() vs. trans() with the §2.4 key matrix active.
func BenchmarkE8_SealedRPC(b *testing.B) {
	ctx := context.Background()
	run := func(b *testing.B, sealed bool) {
		cl, err := NewCluster(ClusterConfig{Seed: 0x5EA1, SealCapabilities: sealed})
		if err != nil {
			b.Fatal(err)
		}
		defer cl.Close()
		f, err := cl.Files().Create(ctx)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cl.RPC().Validate(ctx, f); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("plain", func(b *testing.B) { run(b, false) })
	b.Run("sealed", func(b *testing.B) { run(b, true) })
}

// --------------------------------------------------------------------
// Batch: the OpBatch transaction vs per-object round trips, and the
// parallel E10 twins over the sharded stores. See EXPERIMENTS.md E13.

// BenchmarkBatch_FileRead is the headline batching claim: fetching 16
// KiB of blocks from the block server as 16 individual transactions
// vs one OpBatch frame, plus the flat file server's end-to-end ReadAt
// (which batches internally since the throughput overhaul).
func BenchmarkBatch_FileRead(b *testing.B) {
	ctx := context.Background()
	cl := benchCluster(b)
	blocks := cl.Blocks()
	const nblocks = 16
	const bsize = 1024
	caps := make([]cap.Capability, nblocks)
	payload := make([]byte, bsize)
	for i := range caps {
		c, err := blocks.Alloc(ctx)
		if err != nil {
			b.Fatal(err)
		}
		caps[i] = c
		if err := blocks.Write(ctx, c, payload); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("per-block-roundtrips", func(b *testing.B) {
		b.SetBytes(nblocks * bsize)
		for i := 0; i < b.N; i++ {
			for _, c := range caps {
				if _, err := blocks.Read(ctx, c); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("batched", func(b *testing.B) {
		b.SetBytes(nblocks * bsize)
		for i := 0; i < b.N; i++ {
			if _, err := blocks.ReadBatch(ctx, caps); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("flatfs-readat", func(b *testing.B) {
		f, err := cl.Files().Create(ctx)
		if err != nil {
			b.Fatal(err)
		}
		data := make([]byte, nblocks*bsize)
		if err := cl.Files().WriteAt(ctx, f, 0, data); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		b.SetBytes(nblocks * bsize)
		for i := 0; i < b.N; i++ {
			if _, err := cl.Files().ReadAt(ctx, f, 0, nblocks*bsize); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkBatch_Echo prices the frame packing itself: 16 echoes as
// 16 transactions vs one batch.
func BenchmarkBatch_Echo(b *testing.B) {
	ctx := context.Background()
	cl := benchCluster(b)
	port := cl.files.PutPort()
	payload := make([]byte, 64)
	const n = 16
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j := 0; j < n; j++ {
				rep, err := cl.RPC().Trans(ctx, port, rpc.Request{Op: rpc.OpEcho, Data: payload})
				if err != nil || rep.Status != rpc.StatusOK {
					b.Fatal(err, rep.Status)
				}
			}
		}
	})
	b.Run("batched", func(b *testing.B) {
		reqs := make([]rpc.Request, n)
		for j := range reqs {
			reqs[j] = rpc.Request{Op: rpc.OpEcho, Data: payload}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			reps, err := cl.RPC().Batch(ctx, port, reqs)
			if err != nil || len(reps) != n {
				b.Fatal(err, len(reps))
			}
		}
	})
}

// Parallel E10 twins: the same service operations issued from many
// goroutines at once. Before the sharded stores these serialized on
// each server's single mutex; now independent objects ride
// independent shard locks and the worker pool.

func BenchmarkE10_SegmentWriteParallel(b *testing.B) {
	ctx := context.Background()
	cl := benchCluster(b)
	mem := cl.Memory()
	segs := make([]cap.Capability, 32)
	for i := range segs {
		var err error
		segs[i], err = mem.CreateSegment(ctx, 1<<16)
		if err != nil {
			b.Fatal(err)
		}
	}
	data := make([]byte, 4096)
	var next atomic.Int64
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		// Each goroutine is its own workstation: a fresh machine with
		// its own F-box, reply ports and locate cache, writing its own
		// segment — the workload the sharded store exists for.
		_, rc, err := cl.NewMachine()
		if err != nil {
			b.Error(err)
			return
		}
		mc := memsvr.NewClient(rc, mem.Port())
		seg := segs[int(next.Add(1))%len(segs)]
		i := 0
		for pb.Next() {
			if err := mc.Write(ctx, seg, uint32(i%8)*4096, data); err != nil {
				b.Error(err)
				return
			}
			i++
		}
	})
}

func BenchmarkE10_BankTransferParallel(b *testing.B) {
	ctx := context.Background()
	cl := benchCluster(b)
	bank := cl.Bank()
	type pair struct{ src, dst cap.Capability }
	pairs := make([]pair, 32)
	for i := range pairs {
		src, err := bank.CreateAccount(ctx, "dollar", 1<<40)
		if err != nil {
			b.Fatal(err)
		}
		dst, err := bank.CreateAccount(ctx, "dollar", 0)
		if err != nil {
			b.Fatal(err)
		}
		pairs[i] = pair{src, dst}
	}
	var next atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		_, rc, err := cl.NewMachine()
		if err != nil {
			b.Error(err)
			return
		}
		bc := banksvr.NewClient(rc, bank.Port())
		p := pairs[int(next.Add(1))%len(pairs)]
		for pb.Next() {
			if err := bc.Transfer(ctx, p.src, p.dst, "dollar", 1); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

func BenchmarkE10_DirLookupParallel(b *testing.B) {
	ctx := context.Background()
	cl := benchCluster(b)
	dirs := cl.Dirs()
	roots := make([]cap.Capability, 32)
	for i := range roots {
		root, err := dirs.CreateDir(ctx, cl.DirPort())
		if err != nil {
			b.Fatal(err)
		}
		sub, err := dirs.CreateDir(ctx, cl.DirPort())
		if err != nil {
			b.Fatal(err)
		}
		if err := dirs.Enter(ctx, root, "entry", sub); err != nil {
			b.Fatal(err)
		}
		roots[i] = root
	}
	var next atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		_, rc, err := cl.NewMachine()
		if err != nil {
			b.Error(err)
			return
		}
		dc := dirsvr.NewClient(rc)
		root := roots[int(next.Add(1))%len(roots)]
		for pb.Next() {
			if _, err := dc.Lookup(ctx, root, "entry"); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// --------------------------------------------------------------------
// E18: write-ahead durability (see EXPERIMENTS.md E18).

// BenchmarkWALAppend prices one durable record: stage, group-commit,
// sync (a no-op on the memory disk, so this is the log's own
// bookkeeping cost). The parallel variant shows group commit batching
// concurrent appenders into shared syncs.
func BenchmarkWALAppend(b *testing.B) {
	newLog := func(b *testing.B) *wal.Log {
		b.Helper()
		disk, err := vdisk.New(8192, 1024)
		if err != nil {
			b.Fatal(err)
		}
		l, err := wal.Open(disk, wal.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { l.Close() })
		if err := l.Recover(nil, nil); err != nil {
			b.Fatal(err)
		}
		return l
	}
	rec := make([]byte, 64)
	append1 := func(b *testing.B, l *wal.Log) {
		t, err := l.Append(rec)
		if err == wal.ErrFull {
			if err := l.Checkpoint([]byte{1}); err != nil {
				b.Fatal(err)
			}
			t, err = l.Append(rec)
		}
		if err != nil {
			b.Fatal(err)
		}
		if err := t.Wait(); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("serial", func(b *testing.B) {
		l := newLog(b)
		b.SetBytes(int64(len(rec)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			append1(b, l)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		l := newLog(b)
		b.SetBytes(int64(len(rec)))
		b.SetParallelism(8) // goroutines, not CPUs: batching needs waiters
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				append1(b, l)
			}
		})
		s := l.Stats()
		if s.Commits > 0 {
			b.ReportMetric(float64(s.Appends)/float64(s.Commits), "records/sync")
		}
	})
	// groupcommit models a disk whose durability point costs real time
	// (50µs), the regime group commit exists for: concurrent appenders
	// share syncs, so throughput beats one-sync-per-record by the
	// batching factor (see records/sync).
	b.Run("groupcommit", func(b *testing.B) {
		disk, err := vdisk.New(8192, 1024)
		if err != nil {
			b.Fatal(err)
		}
		l, err := wal.Open(&delaySyncDisk{Disk: disk, delay: 50 * time.Microsecond}, wal.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { l.Close() })
		if err := l.Recover(nil, nil); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(rec)))
		b.SetParallelism(8)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				append1(b, l)
			}
		})
		s := l.Stats()
		if s.Commits > 0 {
			b.ReportMetric(float64(s.Appends)/float64(s.Commits), "records/sync")
		}
	})
}

// delaySyncDisk makes the memory disk's durability point cost like a
// real drive flush, so the group-commit benchmark measures batching.
type delaySyncDisk struct {
	*vdisk.Disk
	delay time.Duration
}

func (d *delaySyncDisk) Sync() error {
	time.Sleep(d.delay)
	return d.Disk.Sync()
}

// BenchmarkRecoveryReplay times a full restart-recovery scan over a
// 10k-record log: one iteration = open the log, replay every record,
// close. The acceptance bar is well under a second.
func BenchmarkRecoveryReplay(b *testing.B) {
	disk, err := vdisk.New(8192, 1024)
	if err != nil {
		b.Fatal(err)
	}
	l, err := wal.Open(disk, wal.Options{})
	if err != nil {
		b.Fatal(err)
	}
	if err := l.Recover(nil, nil); err != nil {
		b.Fatal(err)
	}
	const records = 10_000
	rec := make([]byte, 64)
	for i := 0; i < records; i++ {
		t, err := l.Append(rec)
		if err != nil {
			b.Fatal(err)
		}
		if err := t.Wait(); err != nil {
			b.Fatal(err)
		}
	}
	l.Close()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rl, err := wal.Open(disk, wal.Options{})
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		if err := rl.Recover(nil, func([]byte) error { n++; return nil }); err != nil {
			b.Fatal(err)
		}
		if n != records {
			b.Fatalf("replayed %d records, want %d", n, records)
		}
		b.StopTimer()
		rl.Close()
		b.StartTimer()
	}
	b.ReportMetric(float64(records), "records/op")
}

// BenchmarkE18_DirEnter compares the directory server's mutating-op
// round trip volatile vs durable vs replicated on identical rigs: the
// volatile→durable delta is the whole write-ahead bill (record encode,
// staging, group commit), and the durable→replicated delta is the
// hot-standby bill (one synchronous ship RPC per group commit, the
// standby's own append+sync, its ack). Acceptance bars: durable ≤ 3×
// volatile; replicated ≤ 2× durable.
func BenchmarkE18_DirEnter(b *testing.B) {
	ctx := context.Background()
	scheme, err := cap.NewScheme(cap.SchemeOneWay)
	if err != nil {
		b.Fatal(err)
	}
	rig := func(b *testing.B, durable, replicated bool) (*rpc.Client, *dirsvr.Server) {
		b.Helper()
		n := amnet.NewSimNet(amnet.SimConfig{})
		b.Cleanup(func() { n.Close() })
		attach := func() *fbox.FBox {
			nic, err := n.Attach()
			if err != nil {
				b.Fatal(err)
			}
			fb := fbox.New(nic, nil)
			b.Cleanup(func() { fb.Close() })
			return fb
		}
		src := crypto.NewSeededSource(0xE18)
		newDurable := func() (*dirsvr.Server, *fbox.FBox) {
			disk, err := vdisk.New(8192, 1024)
			if err != nil {
				b.Fatal(err)
			}
			log, err := wal.Open(disk, wal.Options{})
			if err != nil {
				b.Fatal(err)
			}
			fb := attach()
			s, err := dirsvr.NewDurable(fb, scheme, src, log, 0)
			if err != nil {
				b.Fatal(err)
			}
			return s, fb
		}
		var s *dirsvr.Server
		var sfb *fbox.FBox
		if durable {
			s, sfb = newDurable()
		} else {
			s = dirsvr.New(attach(), scheme, src)
		}
		if err := s.Start(); err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { s.Close() })
		if replicated {
			backup, bfb := newDurable()
			b.Cleanup(func() { backup.Close() })
			recv := repl.NewReceiver(bfb, src, backup.Kernel, backup.ReplayFn())
			if err := recv.Start(); err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { recv.Close() })
			shipRes := locate.New(sfb, locate.Config{})
			shipClient := rpc.NewClient(sfb, shipRes, rpc.ClientConfig{Source: src})
			ship, err := repl.Attach(s.Kernel, shipClient, recv.Port(), repl.Options{})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(ship.Stop)
		}
		cfb := attach()
		res := locate.New(cfb, locate.Config{})
		return rpc.NewClient(cfb, res, rpc.ClientConfig{Source: src}), s
	}
	for _, mode := range []struct {
		name                string
		durable, replicated bool
	}{{"volatile", false, false}, {"durable", true, false}, {"replicated", true, true}} {
		b.Run(mode.name, func(b *testing.B) {
			client, s := rig(b, mode.durable, mode.replicated)
			dirs := dirsvr.NewClient(client)
			root, err := dirs.CreateDir(ctx, s.PutPort())
			if err != nil {
				b.Fatal(err)
			}
			entry := cap.Capability{Server: 1, Object: 2, Rights: cap.RightRead, Check: 3}
			// Steady state — alternate enter/remove of one name — so
			// the measured op is a mutation round trip while the
			// directory (and therefore each checkpoint snapshot) stays
			// tiny no matter how long the benchmark runs.
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i%2 == 0 {
					if err := dirs.Enter(ctx, root, "flip", entry); err != nil {
						b.Fatal(err)
					}
				} else if err := dirs.Remove(ctx, root, "flip"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --------------------------------------------------------------------
// E19: hot-standby replication & failover (see EXPERIMENTS.md E19).

// BenchmarkE19_Failover measures the availability gap a primary crash
// opens: each iteration stands up a replicated cluster, runs a small
// acknowledged workload, kills the directory primary, promotes the
// standby, and times kill → first successful post-failover lookup (the
// client heals its route via timeout + LOCATE re-broadcast on the way).
func BenchmarkE19_Failover(b *testing.B) {
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cl, err := NewCluster(ClusterConfig{Seed: 0xE19_0000 + uint64(i), Replicate: true})
		if err != nil {
			b.Fatal(err)
		}
		dirs := cl.Dirs()
		root, err := dirs.CreateDir(ctx, cl.DirPort())
		if err != nil {
			b.Fatal(err)
		}
		entry := cap.Capability{Server: 1, Object: 2, Rights: cap.RightRead, Check: 3}
		for j := 0; j < 8; j++ {
			if err := dirs.Enter(ctx, root, fmt.Sprintf("e%d", j), entry); err != nil {
				b.Fatal(err)
			}
		}
		primary := cl.Machines().Dirs
		b.StartTimer()
		if err := cl.Kill(primary); err != nil {
			b.Fatal(err)
		}
		if err := cl.Promote(primary); err != nil {
			b.Fatal(err)
		}
		// First op against the promoted standby: the client's cached
		// route points at the corpse; a short per-attempt timeout makes
		// the measured gap the failover's, not the default timeout's.
		lctx, cancel := context.WithTimeout(ctx, 10*time.Second)
		for {
			if _, err := cl.RPC().Call(lctx, root, dirsvr.OpLookup, []byte("e0"),
				rpc.WithTimeout(5*time.Millisecond), rpc.WithRetries(400)); err == nil {
				break
			} else if lctx.Err() != nil {
				b.Fatal(err)
			}
		}
		cancel()
		b.StopTimer()
		cl.Close()
	}
}

// --------------------------------------------------------------------
// E21: replication groups & automatic failover (see EXPERIMENTS.md E21).

// BenchmarkE21_AutoFailover is E19 with nobody at the wheel: a
// 3-replica directory group, the primary killed, and NO Promote — the
// standbys' failure detectors must notice the silent lease on their
// own, elect the highest-acked standby, and start serving. The
// measured gap (kill → first acknowledged post-failover op) is
// therefore detection (1.5 lease terms at the default 150 ms term) +
// election + the client healing its route, where E19's was operator
// reaction time — here the operator's share is zero by construction.
func BenchmarkE21_AutoFailover(b *testing.B) {
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cl, err := NewCluster(ClusterConfig{Seed: 0xE21_0000 + uint64(i), Replicas: 3})
		if err != nil {
			b.Fatal(err)
		}
		dirs := cl.Dirs()
		root, err := dirs.CreateDir(ctx, cl.DirPort())
		if err != nil {
			b.Fatal(err)
		}
		entry := cap.Capability{Server: 1, Object: 2, Rights: cap.RightRead, Check: 3}
		for j := 0; j < 8; j++ {
			if err := dirs.Enter(ctx, root, fmt.Sprintf("e%d", j), entry); err != nil {
				b.Fatal(err)
			}
		}
		primary := cl.Machines().Dirs
		b.StartTimer()
		if err := cl.Kill(primary); err != nil {
			b.Fatal(err)
		}
		lctx, cancel := context.WithTimeout(ctx, 30*time.Second)
		for {
			if _, err := cl.RPC().Call(lctx, root, dirsvr.OpLookup, []byte("e0"),
				rpc.WithTimeout(5*time.Millisecond), rpc.WithRetries(400)); err == nil {
				break
			} else if lctx.Err() != nil {
				b.Fatal(err)
			}
		}
		cancel()
		b.StopTimer()
		cl.Close()
	}
}

// BenchmarkE22_WedgedDiskFailover is E21 with a gray failure instead
// of a crash: the primary's WAL disk starts returning EIO while its
// NIC stays healthy. The first write springs the trap — the log
// wedges, the primary self-demotes and is fail-stopped, the standbys'
// detectors see silence and elect. Measured: fault injection → first
// acknowledged post-failover write, i.e. E21's detection + election +
// route-heal bill plus the wedge trip itself.
func BenchmarkE22_WedgedDiskFailover(b *testing.B) {
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cl, err := NewCluster(ClusterConfig{Seed: 0xE22_0000 + uint64(i), Replicas: 3})
		if err != nil {
			b.Fatal(err)
		}
		dirs := cl.Dirs()
		root, err := dirs.CreateDir(ctx, cl.DirPort())
		if err != nil {
			b.Fatal(err)
		}
		entry := cap.Capability{Server: 1, Object: 2, Rights: cap.RightRead, Check: 3}
		for j := 0; j < 8; j++ {
			if err := dirs.Enter(ctx, root, fmt.Sprintf("e%d", j), entry); err != nil {
				b.Fatal(err)
			}
		}
		fault := cl.WALFault(cl.Machines().Dirs)
		b.StartTimer()
		fault.FailWritesAfter(0)
		lctx, cancel := context.WithTimeout(ctx, 30*time.Second)
		for n := 0; ; n++ {
			ectx, ecancel := context.WithTimeout(lctx, 100*time.Millisecond)
			err := dirs.Enter(ectx, root, fmt.Sprintf("p%d", n), entry)
			ecancel()
			if err == nil {
				break
			}
			if lctx.Err() != nil {
				b.Fatal(err)
			}
		}
		cancel()
		b.StopTimer()
		cl.Close()
	}
}

// --------------------------------------------------------------------
// E23: horizontal sharding (see EXPERIMENTS.md E23).

// BenchmarkE23_ShardedThroughput measures dirsvr WRITE throughput as
// the service's object space is split across 1, 2, and 4 shard
// machines behind the SAME put-port. Every shard's WAL disk is slowed
// to 1ms per block I/O (vdisk.FaultStore.SetSlow) so the durable log —
// not this box's CPU — is the per-shard bottleneck, as it would be on
// real hardware: group commit amortizes the sync, but staging is still
// one block write per 512 bytes of records, so each shard's write
// bandwidth is capped by its own disk. 64 closed-loop writers alternate
// Enter/Remove on per-writer directories spread round-robin across the
// shards; with M shards there are M WALs absorbing the same record
// stream, so throughput scales with M (EXPERIMENTS.md E23 records the
// curve; the acceptance bar is ≥1.7x at M=2 and ≥3x at M=4).
func BenchmarkE23_ShardedThroughput(b *testing.B) {
	ctx := context.Background()
	const workers = 64
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			cl, err := NewCluster(ClusterConfig{Seed: 0xE23, Shards: shards})
			if err != nil {
				b.Fatal(err)
			}
			defer cl.Close()
			dirs := cl.Dirs()
			roots := make([]cap.Capability, workers)
			mark := cap.Capability{Server: 1, Object: 2, Rights: cap.RightRead, Check: 3}
			for i := range roots {
				if roots[i], err = dirs.CreateDir(ctx, cl.DirPort()); err != nil {
					b.Fatal(err)
				}
			}
			walMachines := []amnet.MachineID{cl.Machines().Dirs}
			if shards >= 2 {
				walMachines = cl.ShardMachines(cl.DirPort())
			}
			for _, m := range walMachines {
				cl.WALFault(m).SetSlow(time.Millisecond)
			}
			var (
				next atomic.Int64
				wg   sync.WaitGroup
			)
			b.ResetTimer()
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					_, rc, err := cl.NewMachine()
					if err != nil {
						b.Error(err)
						return
					}
					dc := dirsvr.NewClient(rc)
					name := fmt.Sprintf("w%d", w)
					// Alternation is per WORKER (the global counter only
					// meters b.N): each worker enters then removes its own
					// name so both ops always apply cleanly. The transport
					// is at-least-once: when a checkpoint stalls a reply
					// past the retransmit timeout the retry re-applies, so
					// "exists"/"no entry" against this worker's PRIVATE
					// name just means the first attempt landed.
					for j := 0; ; j++ {
						if next.Add(1) > int64(b.N) {
							return
						}
						if j%2 == 0 {
							err = dc.Enter(ctx, roots[w], name, mark)
						} else {
							err = dc.Remove(ctx, roots[w], name)
						}
						if err != nil && !strings.Contains(err.Error(), "exists") &&
							!strings.Contains(err.Error(), "no entry") {
							b.Error(err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			b.StopTimer()
			for _, m := range walMachines {
				cl.WALFault(m).SetSlow(0)
			}
		})
	}
}
