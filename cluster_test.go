package amoeba

import (
	"bytes"
	"context"
	"testing"
	"time"
)

func newTestCluster(t *testing.T, cfg ClusterConfig) *Cluster {
	t.Helper()
	if cfg.Seed == 0 {
		cfg.Seed = 0xC1045E4
	}
	cl, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

func TestClusterBootsAllServices(t *testing.T) {
	ctx := context.Background()
	cl := newTestCluster(t, ClusterConfig{})
	if _, err := cl.Memory().CreateSegment(ctx, 64); err != nil {
		t.Errorf("memory: %v", err)
	}
	if _, err := cl.Blocks().Alloc(ctx); err != nil {
		t.Errorf("blocks: %v", err)
	}
	if _, err := cl.Files().Create(ctx); err != nil {
		t.Errorf("files: %v", err)
	}
	if _, err := cl.Dirs().CreateDir(ctx, cl.DirPort()); err != nil {
		t.Errorf("dirs: %v", err)
	}
	if _, err := cl.Versions().CreateFile(ctx); err != nil {
		t.Errorf("versions: %v", err)
	}
	if _, err := cl.Bank().CreateAccount(ctx, "dollar", 10); err != nil {
		t.Errorf("bank: %v", err)
	}
}

func TestClusterEveryScheme(t *testing.T) {
	ctx := context.Background()
	for _, id := range []SchemeID{SchemeCompare, SchemeEncrypted, SchemeOneWay, SchemeCommutative} {
		t.Run(id.String(), func(t *testing.T) {
			cl := newTestCluster(t, ClusterConfig{Scheme: id, Seed: uint64(id) + 100})
			f, err := cl.Files().Create(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if err := cl.Files().WriteAt(ctx, f, 0, []byte("scheme test")); err != nil {
				t.Fatal(err)
			}
			got, err := cl.Files().ReadAt(ctx, f, 0, 11)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != "scheme test" {
				t.Fatalf("read %q", got)
			}
		})
	}
}

func TestPaperRunningExample(t *testing.T) {
	ctx := context.Background()
	// §2.3's end-to-end example: create a file, write data into it,
	// then give another client permission to read (but not modify) it.
	cl := newTestCluster(t, ClusterConfig{})
	files := cl.Files()

	f, err := files.Create(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := files.WriteAt(ctx, f, 0, []byte("important data")); err != nil {
		t.Fatal(err)
	}
	readOnly, err := files.Restrict(ctx, f, RightRead)
	if err != nil {
		t.Fatal(err)
	}

	// "The other client": a fresh machine with its own RPC client. The
	// capability travels as 16 opaque bytes.
	_, otherRPC, err := cl.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	wire := readOnly.Encode()
	received, err := Decode(wire[:])
	if err != nil {
		t.Fatal(err)
	}
	other := cl.FilesFor(otherRPC)
	got, err := other.ReadAt(ctx, received, 0, 14)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "important data" {
		t.Fatalf("other client read %q", got)
	}
	if err := other.WriteAt(ctx, received, 0, []byte("vandalism")); !IsStatus(err, StatusNoPermission) {
		t.Fatalf("other client write: %v", err)
	}
}

func TestClusterWithLatency(t *testing.T) {
	ctx := context.Background()
	cl := newTestCluster(t, ClusterConfig{Latency: 2_000_000 /* 2ms */})
	f, err := cl.Files().Create(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Files().WriteAt(ctx, f, 0, []byte("slow network")); err != nil {
		t.Fatal(err)
	}
}

func TestUnixFSOnCluster(t *testing.T) {
	ctx := context.Background()
	cl := newTestCluster(t, ClusterConfig{})
	fs, err := cl.NewUnixFS(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Mkdir(ctx, "etc"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create(ctx, "etc/motd"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(ctx, "etc/motd", 0, []byte("welcome to amoeba")); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile(ctx, "etc/motd", 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("welcome to amoeba")) {
		t.Fatalf("read %q", got)
	}
}

func TestDeterministicClusters(t *testing.T) {
	ctx := context.Background()
	run := func() Capability {
		cl, err := NewCluster(ClusterConfig{Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		f, err := cl.Files().Create(ctx)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed, different capabilities:\n %v\n %v", a, b)
	}
}

func TestCrossServiceCapabilityRejected(t *testing.T) {
	ctx := context.Background()
	// A capability minted by the file server must not authorize
	// anything at the directory server, even with the same scheme.
	cl := newTestCluster(t, ClusterConfig{})
	f, err := cl.Files().Create(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Dirs().Lookup(ctx, f, "x"); err == nil {
		t.Fatal("file capability accepted by directory server")
	}
}

func TestSealedCluster(t *testing.T) {
	ctx := context.Background()
	// SealCapabilities composes the §2.4 key matrix with the F-box:
	// everything still works, and no plaintext capability crosses the
	// wire.
	cl := newTestCluster(t, ClusterConfig{SealCapabilities: true, Seed: 0x5EA1ED})
	tap, err := cl.Tap()
	if err != nil {
		t.Fatal(err)
	}
	f, err := cl.Files().Create(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Files().WriteAt(ctx, f, 0, []byte("sealed")); err != nil {
		t.Fatal(err)
	}
	got, err := cl.Files().ReadAt(ctx, f, 0, 6)
	if err != nil || string(got) != "sealed" {
		t.Fatalf("read %q %v", got, err)
	}
	weak, err := cl.Files().Restrict(ctx, f, RightRead)
	if err != nil {
		t.Fatal(err)
	}
	if weak.Server != f.Server {
		t.Fatal("restricted capability mangled by sealing")
	}
	// Sweep the tap: the file capability must never appear in clear.
	wire := f.Encode()
	deadline := time.After(200 * time.Millisecond)
	frames := 0
	for {
		select {
		case fr := <-tap.Recv():
			frames++
			for i := 0; i+16 <= len(fr.Payload); i++ {
				if string(fr.Payload[i:i+16]) == string(wire[:]) {
					t.Fatal("plaintext capability on the wire despite sealing")
				}
			}
		case <-deadline:
			if frames == 0 {
				t.Fatal("tap captured nothing")
			}
			return
		}
	}
}

func TestSealedClusterAllServices(t *testing.T) {
	ctx := context.Background()
	cl := newTestCluster(t, ClusterConfig{SealCapabilities: true, Seed: 0x5EA1EE})
	seg, err := cl.Memory().CreateSegment(ctx, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Memory().Write(ctx, seg, 0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	dir, err := cl.Dirs().CreateDir(ctx, cl.DirPort())
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Dirs().Enter(ctx, dir, "seg", seg); err != nil {
		t.Fatal(err)
	}
	back, err := cl.Dirs().Lookup(ctx, dir, "seg")
	if err != nil {
		t.Fatal(err)
	}
	if back != seg {
		t.Fatal("capability corrupted crossing sealed directory server")
	}
	acct, err := cl.Bank().CreateAccount(ctx, "dollar", 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Bank().Balance(ctx, acct); err != nil {
		t.Fatal(err)
	}
}
