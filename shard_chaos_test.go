// Sharding chaos tests: migrate a hot object mid-soak and kill a
// shard's group primary mid-soak. The invariants are the PR's
// acceptance bar: zero acknowledged operations lost, the migrating
// object stalls only for the move itself, and objects on OTHER shards
// never stall at all. Seeded; CI repeats under -race.
package amoeba

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"amoeba/internal/cap"
	"amoeba/internal/server/dirsvr"
)

// migrateChaosCluster: two shards, realistic latency, NO packet loss —
// the migration is the only fault, so the "nobody else stalls"
// assertion measures the migration, not the network.
func migrateChaosCluster(t *testing.T, seed uint64) *Cluster {
	t.Helper()
	cl, err := NewCluster(ClusterConfig{
		Seed:    seed,
		Shards:  2,
		Latency: 50 * time.Microsecond,
		Jitter:  100 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

func TestChaosMigrateUnderLoad(t *testing.T) {
	for i := 0; i < killRestartSeeds(t); i++ {
		t.Run(fmt.Sprintf("seed=%d", i), func(t *testing.T) {
			runMigrateUnderLoad(t, 0x316A_0000+uint64(i))
		})
	}
}

func runMigrateUnderLoad(t *testing.T, seed uint64) {
	ctx := context.Background()
	cl := migrateChaosCluster(t, seed)
	dirs := cl.Dirs()

	// One hot directory (the object that will migrate, twice) and one
	// cold directory per shard (the objects that must not stall).
	hot, err := dirs.CreateDir(ctx, cl.DirPort())
	if err != nil {
		t.Fatal(err)
	}
	cold := make([]cap.Capability, 2)
	for {
		d, err := dirs.CreateDir(ctx, cl.DirPort())
		if err != nil {
			t.Fatal(err)
		}
		cold[cl.ShardOf(cl.DirPort(), d.Object)] = d
		if cold[0] != cap.Nil && cold[1] != cap.Nil {
			break
		}
	}
	marker, err := dirs.CreateDir(ctx, cl.DirPort())
	if err != nil {
		t.Fatal(err)
	}
	for s, d := range cold {
		if err := dirs.Enter(ctx, d, "probe", marker); err != nil {
			t.Fatalf("seeding cold dir on shard %d: %v", s, err)
		}
	}

	// Soak: writers hammer the hot directory recording every
	// acknowledged name; readers hammer the cold directories recording
	// their slowest operation.
	var (
		stop     atomic.Bool
		ackedMu  sync.Mutex
		acked    = make(map[string]bool)
		coldMax  atomic.Int64 // ns, slowest cold-object operation
		coldFail atomic.Int64
	)
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			_, rc, err := cl.NewMachine()
			if err != nil {
				t.Error(err)
				return
			}
			dc := dirsvr.NewClient(rc)
			for seq := 0; !stop.Load(); seq++ {
				name := fmt.Sprintf("w%d-%d", w, seq)
				opCtx, cancel := context.WithTimeout(ctx, 2*time.Second)
				err := dc.Enter(opCtx, hot, name, marker)
				cancel()
				if err == nil {
					ackedMu.Lock()
					acked[name] = true
					ackedMu.Unlock()
				}
			}
		}(w)
	}
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			_, rc, err := cl.NewMachine()
			if err != nil {
				t.Error(err)
				return
			}
			dc := dirsvr.NewClient(rc)
			for !stop.Load() {
				opCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
				start := time.Now()
				_, err := dc.Lookup(opCtx, cold[s], "probe")
				took := time.Since(start).Nanoseconds()
				cancel()
				if err != nil {
					coldFail.Add(1)
					continue
				}
				for {
					cur := coldMax.Load()
					if took <= cur || coldMax.CompareAndSwap(cur, took) {
						break
					}
				}
			}
		}(s)
	}

	// Mid-soak: migrate the hot directory to the other shard, then
	// back — two map generations, two gate windows.
	time.Sleep(50 * time.Millisecond)
	var migMax time.Duration
	for hop := 0; hop < 2; hop++ {
		dst := 1 - cl.ShardOf(cl.DirPort(), hot.Object)
		start := time.Now()
		if err := cl.Migrate(ctx, cl.DirPort(), hot.Object, dst); err != nil {
			t.Fatalf("hop %d: %v", hop, err)
		}
		if took := time.Since(start); took > migMax {
			migMax = took
		}
		time.Sleep(50 * time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	// Conservation: the listing holds EXACTLY the acknowledged names
	// (plus none): no acked entry lost in the move, no phantom entry
	// materialized. Unacked racers either made it (then the client just
	// never heard) — those would show as extras, so re-check them
	// against the writers' attempted namespace pattern via the acked
	// map: an entry not in acked means its ack was cut off, which the
	// 2s per-op budget and loss-free network rule out here.
	entries, err := dirs.List(ctx, hot)
	if err != nil {
		t.Fatal(err)
	}
	present := make(map[string]bool, len(entries))
	for _, e := range entries {
		present[e.Name] = true
	}
	for name := range acked {
		if !present[name] {
			t.Fatalf("acked entry %q lost in migration (%d acked, %d present)", name, len(acked), len(present))
		}
	}
	for name := range present {
		if !acked[name] {
			t.Fatalf("entry %q present but never acknowledged", name)
		}
	}
	if len(acked) == 0 {
		t.Fatal("soak acknowledged nothing; the test exercised nothing")
	}
	if n := coldFail.Load(); n != 0 {
		t.Fatalf("%d cold-object operations failed during the migration", n)
	}
	// Objects on other shards never stall: their slowest op stays far
	// below the gate window a whole-service pause would cost. The bound
	// is generous for -race scheduler noise while still catching any
	// design where a migration quiesces more than the one object.
	if max := time.Duration(coldMax.Load()); max > 250*time.Millisecond {
		t.Fatalf("a non-migrating object stalled %v during migration", max)
	}
	if migMax > time.Second {
		t.Fatalf("migration took %v; the object-granular cut should be milliseconds", migMax)
	}
	t.Logf("acked=%d migrations max %v, cold max %v", len(acked), migMax, time.Duration(coldMax.Load()))
}

// shardGroupCluster: two shards, each a 3-member replication group —
// the configuration TestChaosShardPrimaryKill needs (a 2-member group
// cannot elect: majorities count the configured size).
func shardGroupCluster(t *testing.T, seed uint64) *Cluster {
	t.Helper()
	cl, err := NewCluster(ClusterConfig{
		Seed:      seed,
		Shards:    2,
		Replicas:  3,
		LossRate:  0.01,
		Latency:   50 * time.Microsecond,
		Jitter:    100 * time.Microsecond,
		LeaseTerm: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

func TestChaosShardPrimaryKill(t *testing.T) {
	for i := 0; i < killRestartSeeds(t); i++ {
		t.Run(fmt.Sprintf("seed=%d", i), func(t *testing.T) {
			runShardPrimaryKill(t, 0x51AD_0000+uint64(i))
		})
	}
}

func runShardPrimaryKill(t *testing.T, seed uint64) {
	ctx := context.Background()
	cl := shardGroupCluster(t, seed)
	dirs := cl.Dirs()

	// One directory per shard, each seeded with acknowledged entries.
	home := make([]cap.Capability, 2)
	for {
		var d cap.Capability
		untilOK(t, "create dir", func(ctx context.Context) error {
			var err error
			d, err = dirs.CreateDir(ctx, cl.DirPort())
			return err
		})
		home[cl.ShardOf(cl.DirPort(), d.Object)] = d
		if home[0] != cap.Nil && home[1] != cap.Nil {
			break
		}
	}
	marker := home[0]
	acked := [2]map[string]bool{{}, {}}
	enter := func(s int, name string) {
		untilOK(t, "enter "+name, func(ctx context.Context) error {
			err := dirs.Enter(ctx, home[s], name, marker)
			// Each name is unique to one call site, so "exists" means an
			// earlier attempt landed and only its ack was lost.
			if err != nil && strings.Contains(err.Error(), "exists") {
				return nil
			}
			return err
		})
		acked[s][name] = true
	}
	for i := 0; i < 5; i++ {
		enter(0, fmt.Sprintf("pre%d", i))
		enter(1, fmt.Sprintf("pre%d", i))
	}

	// Kill shard 1's primary. Shard 0's group is untouched: its ops
	// must keep succeeding on the FIRST attempt all through shard 1's
	// outage and election (internal RPC retries absorb the 1% loss).
	victim := cl.ShardMachines(cl.DirPort())[1]
	if err := cl.Kill(victim); err != nil {
		t.Fatal(err)
	}
	outageProbe := func(i int) {
		name := fmt.Sprintf("during%d", i)
		opCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
		err := dirs.Enter(opCtx, home[0], name, marker)
		cancel()
		// "exists" on this probe's unique name is a transport artifact,
		// not a blip: the op applied and only its ack hit the 1% loss,
		// so the in-call retransmit found it already entered.
		if err != nil && !strings.Contains(err.Error(), "exists") {
			t.Fatalf("shard 0 blipped during shard 1's outage: %v", err)
		}
		acked[0][name] = true
	}
	deadline := time.Now().Add(15 * time.Second)
	probe := 0
	for cl.ShardMachines(cl.DirPort())[1] == victim {
		if time.Now().After(deadline) {
			t.Fatal("shard 1 never failed over")
		}
		outageProbe(probe)
		probe++
		time.Sleep(20 * time.Millisecond)
	}
	successor := cl.ShardMachines(cl.DirPort())[1]
	if successor == victim {
		t.Fatal("no successor")
	}

	// Shard 1 converges on its new primary with every acked op intact;
	// shard 0 never noticed.
	enter(1, "post-failover")
	enter(0, "post-failover")
	for s := 0; s < 2; s++ {
		var entries []dirsvr.Entry
		untilOK(t, "list", func(ctx context.Context) error {
			var err error
			entries, err = dirs.List(ctx, home[s])
			return err
		})
		present := make(map[string]bool, len(entries))
		for _, e := range entries {
			present[e.Name] = true
		}
		for name := range acked[s] {
			if !present[name] {
				t.Fatalf("shard %d: acked entry %q lost across the failover", s, name)
			}
		}
	}

	// The killed machine rejoins ITS shard's group as a fresh standby.
	if err := cl.Restart(victim); err != nil {
		t.Fatalf("reintegrating the killed primary: %v", err)
	}
	enter(1, "post-reintegration")
}
