// Sharding integration tests: a durable service split across M
// machines behind ONE put-port, objects routed by the versioned shard
// map, single objects migrated live between shards (EXPERIMENTS.md
// E23).
package amoeba

import (
	"context"
	"fmt"
	"testing"

	"amoeba/internal/cap"
)

func shardedCluster(t *testing.T, shards int, seed uint64) *Cluster {
	t.Helper()
	cl, err := NewCluster(ClusterConfig{Seed: seed, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

func TestShardedDirsvr(t *testing.T) {
	ctx := context.Background()
	cl := shardedCluster(t, 3, 0x5AD0)
	dirs := cl.Dirs()

	ms := cl.ShardMachines(cl.DirPort())
	if len(ms) != 3 {
		t.Fatalf("ShardMachines = %v, want 3 shards", ms)
	}
	if ms[0] == ms[1] || ms[1] == ms[2] || ms[0] == ms[2] {
		t.Fatalf("shards share machines: %v", ms)
	}

	// Objectless creates are spread round-robin; each shard mints only
	// numbers that route back to it, so the capability in hand always
	// names the shard that holds the directory.
	perShard := make(map[int]int)
	roots := make([]cap.Capability, 12)
	for i := range roots {
		root, err := dirs.CreateDir(ctx, cl.DirPort())
		if err != nil {
			t.Fatal(err)
		}
		roots[i] = root
		perShard[cl.ShardOf(cl.DirPort(), root.Object)]++
	}
	if len(perShard) != 3 {
		t.Fatalf("creates landed on %d shards, want 3: %v", len(perShard), perShard)
	}

	// Entries enter and look up correctly wherever their directory
	// lives; sub-directories may live on OTHER shards than their parent
	// (the entry is just a capability).
	for i, root := range roots {
		sub, err := dirs.CreateDir(ctx, cl.DirPort())
		if err != nil {
			t.Fatal(err)
		}
		name := fmt.Sprintf("sub%d", i)
		if err := dirs.Enter(ctx, root, name, sub); err != nil {
			t.Fatalf("enter on shard %d: %v", cl.ShardOf(cl.DirPort(), root.Object), err)
		}
		got, err := dirs.Lookup(ctx, root, name)
		if err != nil {
			t.Fatal(err)
		}
		if got != sub {
			t.Fatalf("lookup returned %v, want %v", got, sub)
		}
	}
}

func TestShardedBanksvr(t *testing.T) {
	ctx := context.Background()
	cl := shardedCluster(t, 2, 0x5AD1)
	bank := cl.Bank()

	// Mint accounts until both shards hold at least two (round-robin
	// makes this deterministic, but don't depend on the phase).
	byShard := map[int][]cap.Capability{}
	for i := 0; i < 8; i++ {
		acct, err := bank.CreateAccount(ctx, "dollar", 100)
		if err != nil {
			t.Fatal(err)
		}
		s := cl.ShardOf(bank.Port(), acct.Object)
		byShard[s] = append(byShard[s], acct)
	}
	for s := 0; s < 2; s++ {
		if len(byShard[s]) < 2 {
			t.Fatalf("shard %d holds %d accounts, want ≥2: %v", s, len(byShard[s]), byShard)
		}
		// Same-shard transfer (cross-shard transfers are a documented
		// non-goal: each shard instance has its own treasury).
		a, b := byShard[s][0], byShard[s][1]
		if err := bank.Transfer(ctx, a, b, "dollar", 30); err != nil {
			t.Fatalf("transfer on shard %d: %v", s, err)
		}
		bal, err := bank.Balance(ctx, b)
		if err != nil {
			t.Fatal(err)
		}
		if bal["dollar"] != 130 {
			t.Fatalf("shard %d: balance = %v, want 130", s, bal)
		}
	}
}

func TestShardedMigrateDirectory(t *testing.T) {
	ctx := context.Background()
	cl := shardedCluster(t, 2, 0x5AD2)
	dirs := cl.Dirs()

	root, err := dirs.CreateDir(ctx, cl.DirPort())
	if err != nil {
		t.Fatal(err)
	}
	subs := make([]cap.Capability, 5)
	for i := range subs {
		sub, err := dirs.CreateDir(ctx, cl.DirPort())
		if err != nil {
			t.Fatal(err)
		}
		if err := dirs.Enter(ctx, root, fmt.Sprintf("e%d", i), sub); err != nil {
			t.Fatal(err)
		}
		subs[i] = sub
	}

	src := cl.ShardOf(cl.DirPort(), root.Object)
	dst := 1 - src
	genBefore := cl.ShardMapGen(cl.DirPort())
	if err := cl.Migrate(ctx, cl.DirPort(), root.Object, dst); err != nil {
		t.Fatal(err)
	}
	if got := cl.ShardOf(cl.DirPort(), root.Object); got != dst {
		t.Fatalf("object homed on shard %d after migration, want %d", got, dst)
	}
	if gen := cl.ShardMapGen(cl.DirPort()); gen <= genBefore {
		t.Fatalf("map generation %d did not advance past %d", gen, genBefore)
	}

	// The same capability keeps working: the stale route bounces off
	// the source with StatusWrongShard and the client re-routes.
	for i, sub := range subs {
		got, err := dirs.Lookup(ctx, root, fmt.Sprintf("e%d", i))
		if err != nil {
			t.Fatalf("post-migration lookup: %v", err)
		}
		if got != sub {
			t.Fatalf("entry %d: got %v, want %v", i, got, sub)
		}
	}
	// Mutations land on the new shard too.
	extra, err := dirs.CreateDir(ctx, cl.DirPort())
	if err != nil {
		t.Fatal(err)
	}
	if err := dirs.Enter(ctx, root, "extra", extra); err != nil {
		t.Fatalf("post-migration enter: %v", err)
	}

	// And the object can move back home (the override is dropped, not
	// stacked).
	if err := cl.Migrate(ctx, cl.DirPort(), root.Object, src); err != nil {
		t.Fatal(err)
	}
	if got := cl.ShardOf(cl.DirPort(), root.Object); got != src {
		t.Fatalf("object homed on shard %d after move-back, want %d", got, src)
	}
	if _, err := dirs.Lookup(ctx, root, "extra"); err != nil {
		t.Fatalf("lookup after move-back: %v", err)
	}

	// A migration survives the source's crash-recovery: the migrate-out
	// record keeps the object from resurrecting there.
	migrated, err := dirs.Lookup(ctx, root, "e0")
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Migrate(ctx, cl.DirPort(), migrated.Object, 1-cl.ShardOf(cl.DirPort(), migrated.Object)); err != nil {
		t.Fatal(err)
	}
	if _, err := dirs.List(ctx, migrated); err != nil {
		t.Fatalf("migrated dir unreadable: %v", err)
	}
}

func TestShardedMigrateBankAccount(t *testing.T) {
	ctx := context.Background()
	cl := shardedCluster(t, 2, 0x5AD3)
	bank := cl.Bank()

	acct, err := bank.CreateAccount(ctx, "dollar", 250)
	if err != nil {
		t.Fatal(err)
	}
	src := cl.ShardOf(bank.Port(), acct.Object)
	if err := cl.Migrate(ctx, bank.Port(), acct.Object, 1-src); err != nil {
		t.Fatal(err)
	}
	bal, err := bank.Balance(ctx, acct)
	if err != nil {
		t.Fatalf("post-migration balance: %v", err)
	}
	if bal["dollar"] != 250 {
		t.Fatalf("balance = %v, want 250", bal)
	}
	// The migrated account is fully live on its new shard: it can be
	// destroyed there (RightDestroy still validates — the secret moved
	// with the object, so the old capability is the only key needed).
	if err := bank.DestroyAccount(ctx, acct); err != nil {
		t.Fatal(err)
	}
}

func TestMigrateErrors(t *testing.T) {
	ctx := context.Background()
	cl := shardedCluster(t, 2, 0x5AD4)
	if err := cl.Migrate(ctx, Port(0x1234), 1, 0); err == nil {
		t.Fatal("migrating on an unsharded port succeeded")
	}
	if err := cl.Migrate(ctx, cl.DirPort(), 1, 7); err == nil {
		t.Fatal("migrating to an out-of-range shard succeeded")
	}
	// Migrating an object to its current home is a no-op.
	if err := cl.Migrate(ctx, cl.DirPort(), 1, cl.ShardOf(cl.DirPort(), 1)); err != nil {
		t.Fatal(err)
	}
}

func TestShardsReplicateExclusive(t *testing.T) {
	if _, err := NewCluster(ClusterConfig{Shards: 2, Replicate: true}); err == nil {
		t.Fatal("Shards+Replicate accepted")
	}
}
