package amoeba

import (
	"context"
	"fmt"

	"amoeba/internal/amnet"
	"amoeba/internal/cap"
	"amoeba/internal/fbox"
	"amoeba/internal/obs"
	"amoeba/internal/repl"
	"amoeba/internal/server/banksvr"
	"amoeba/internal/server/dirsvr"
	"amoeba/internal/shard"
	"amoeba/internal/svc"
	"amoeba/internal/vdisk"
	"amoeba/internal/wal"
)

// svcShard is one extra shard (index ≥ 1) of a sharded durable
// service. Shard 0 lives in the cluster's legacy fields (dirs/bank and
// friends), so every pre-sharding test and verb keeps working
// unchanged; the extra shards carry the same machinery — own machine,
// own WAL disk, optionally an own replication group — in this struct.
// All shards of a service share ONE get-port, so they answer at the
// same put-port every capability names; which machine a request goes
// to is the shard map's decision, not LOCATE's.
type svcShard struct {
	base    string   // the service: "directory" or "bank"
	service string   // metrics label, e.g. "directory-1"
	idx     int      // shard index in the map (1..M-1)
	g       cap.Port // the service's shared get-port
	put     cap.Port // the service's shared put-port
	disk    *vdisk.Disk

	// Current primary incarnation (guarded by cl.mu, like the legacy
	// fields): Kill/Restart and group failover swap these.
	fb      *fbox.FBox
	srv     kernelServer
	kern    *svc.Kernel
	machine amnet.MachineID
	down    bool
	ship    *repl.Shipper
	group   *replGroup // nil unless ClusterConfig.Replicas ≥ 2
}

// installShardView wires a freshly built service kernel into the shard
// map: dispatch refuses objects other shards own (StatusWrongShard),
// and the capability table only mints object numbers that hash (or are
// overridden) back to this shard — so a create handled by shard k
// yields a capability that routes to shard k forever. No-op when the
// cluster is unsharded: the kernel then pays one nil atomic load per
// request and nothing else.
func (cl *Cluster) installShardView(k *svc.Kernel, idx int) {
	if cl.cfg.Shards < 2 {
		return
	}
	v := shard.NewView(cl.atlas, k.PutPort(), idx)
	k.SetShardView(v)
	k.Table().SetAllocFilter(v.Owns)
}

// syncShardMachine points shard idx of port p at machine at (bumping
// the map generation); no-op when p is unsharded. Every path that
// changes which machine serves a shard — boot, restart, group
// failover — funnels through here, so stale client routes always heal
// against a map whose generation moved.
func (cl *Cluster) syncShardMachine(p cap.Port, idx int, at amnet.MachineID) {
	cl.atlas.Update(p, func(m *shard.Map) *shard.Map { return m.WithMachine(idx, at) })
}

// shardBuild returns the standby/primary builder for sh — the same
// shape replGroup.build wants, so an extra shard's replication group
// reuses the whole group machinery (startGroup, autoFailover,
// reintegrate) untouched.
func (cl *Cluster) shardBuild(sh *svcShard) func(fb *fbox.FBox, log *wal.Log) (kernelServer, *svc.Kernel, func(rec []byte) error, error) {
	if sh.base == "directory" {
		return func(fb *fbox.FBox, log *wal.Log) (kernelServer, *svc.Kernel, func(rec []byte) error, error) {
			s, err := dirsvr.NewDurable(fb, cl.scheme, cl.src, log, sh.g)
			if err != nil {
				return nil, nil, nil, err
			}
			s.SetMaxInflight(cl.cfg.MaxInflight)
			s.SetObserver(cl.newStats(sh.service))
			s.SetLookupLease(cl.cfg.LookupLease)
			cl.sealServer(fb, s.SetSealer)
			cl.installShardView(s.Kernel, sh.idx)
			return s, s.Kernel, s.ReplayFn(), nil
		}
	}
	return func(fb *fbox.FBox, log *wal.Log) (kernelServer, *svc.Kernel, func(rec []byte) error, error) {
		s, err := banksvr.NewDurable(fb, cl.scheme, cl.src, cl.bankConfig(), log, sh.g)
		if err != nil {
			return nil, nil, nil, err
		}
		s.SetMaxInflight(cl.cfg.MaxInflight)
		s.SetObserver(cl.newStats(sh.service))
		cl.sealServer(fb, s.SetSealer)
		cl.installShardView(s.Kernel, sh.idx)
		return s, s.Kernel, s.ReplayFn(), nil
	}
}

// startShard boots (or re-boots, after Kill) one extra shard's primary
// over its surviving WAL disk; NewCluster and Restart share it, like
// startDirsvr for shard 0.
func (cl *Cluster) startShard(sh *svcShard) error {
	fb, err := cl.newFBox()
	if err != nil {
		return err
	}
	log, err := cl.openWAL(sh.service, fb, sh.disk)
	if err != nil {
		return err
	}
	s, kern, _, err := cl.shardBuild(sh)(fb, log)
	if err != nil {
		log.Close() // the kernel never took ownership
		return err
	}
	if err := cl.start(s.Start, s.Close); err != nil {
		s.Close() // closes the log; a Restart retry reopens it
		return err
	}
	cl.mu.Lock()
	sh.fb, sh.srv, sh.kern, sh.machine, sh.down = fb, s, kern, fb.Machine(), false
	cl.mu.Unlock()
	cl.syncShardMachine(sh.put, sh.idx, fb.Machine())
	return nil
}

// startShards boots shards 1..M-1 of both durable services and then
// registers the shard maps — only once every shard's machine is known,
// so the maps are never seen half-built. Before registration every
// kernel's view answers "I own everything" (no map yet), which is
// harmless: no client exists until NewCluster returns.
func (cl *Cluster) startShards() error {
	cl.mu.Lock()
	dirPut, bankPut := cl.dirs.PutPort(), cl.bank.PutPort()
	cl.mu.Unlock()
	for i := 1; i < cl.cfg.Shards; i++ {
		for _, base := range []struct {
			name string
			g    cap.Port
			put  cap.Port
		}{
			{"directory", cl.dirsG, dirPut},
			{"bank", cl.bankG, bankPut},
		} {
			disk, err := vdisk.New(walBlocks, walBlockSize)
			if err != nil {
				return err
			}
			sh := &svcShard{
				base:    base.name,
				service: fmt.Sprintf("%s-%d", base.name, i),
				idx:     i,
				g:       base.g,
				put:     base.put,
				disk:    disk,
			}
			if err := cl.startShard(sh); err != nil {
				return err
			}
			cl.mu.Lock()
			if base.name == "directory" {
				cl.dirShards = append(cl.dirShards, sh)
			} else {
				cl.bankShards = append(cl.bankShards, sh)
			}
			cl.mu.Unlock()
		}
	}
	cl.mu.Lock()
	dirMachines := []amnet.MachineID{cl.machines.Dirs}
	for _, sh := range cl.dirShards {
		dirMachines = append(dirMachines, sh.machine)
	}
	bankMachines := []amnet.MachineID{cl.machines.Bank}
	for _, sh := range cl.bankShards {
		bankMachines = append(bankMachines, sh.machine)
	}
	cl.mu.Unlock()
	cl.atlas.Register(dirPut, shard.NewMap(dirMachines))
	cl.atlas.Register(bankPut, shard.NewMap(bankMachines))
	return nil
}

// newShardGroup binds an extra shard's fields into a replication-group
// descriptor; the group machinery (leases, detectors, elections) is
// shared with shard 0's groups.
func (cl *Cluster) newShardGroup(sh *svcShard) *replGroup {
	return &replGroup{
		name:  sh.service,
		build: cl.shardBuild(sh),
		swap: func(st *groupStandby, ship *repl.Shipper) {
			sh.srv, sh.kern, sh.fb, sh.disk = st.srv, st.kern, st.fb, st.disk
			sh.machine = st.machine
			sh.down = false
			sh.ship = ship
			cl.syncShardMachine(sh.put, sh.idx, st.machine)
		},
		primaryKernel:  func() *svc.Kernel { return sh.kern },
		primaryFB:      func() *fbox.FBox { return sh.fb },
		primaryMachine: func() amnet.MachineID { return sh.machine },
		setShip:        func(s *repl.Shipper) { sh.ship = s },
	}
}

// shardOfLocked resolves machine m to the extra shard it currently
// hosts (nil when m is not an extra-shard primary). Caller holds cl.mu.
func (cl *Cluster) shardOfLocked(m amnet.MachineID) *svcShard {
	for _, sh := range cl.dirShards {
		if sh.machine == m {
			return sh
		}
	}
	for _, sh := range cl.bankShards {
		if sh.machine == m {
			return sh
		}
	}
	return nil
}

// shardEndpointLocked resolves (put-port, shard index) to the serving
// kernel and its machine's F-box, plus the service's base name. Caller
// holds cl.mu.
func (cl *Cluster) shardEndpointLocked(p cap.Port, idx int) (*svc.Kernel, *fbox.FBox, string, error) {
	resolve := func(base string, down bool, k *svc.Kernel, fb *fbox.FBox, extras []*svcShard) (*svc.Kernel, *fbox.FBox, string, error) {
		if idx == 0 {
			if down {
				return nil, nil, "", fmt.Errorf("amoeba: %s shard 0 is down", base)
			}
			return k, fb, base, nil
		}
		for _, sh := range extras {
			if sh.idx != idx {
				continue
			}
			if sh.down {
				return nil, nil, "", fmt.Errorf("amoeba: %s is down", sh.service)
			}
			return sh.kern, sh.fb, base, nil
		}
		return nil, nil, "", fmt.Errorf("amoeba: %s has no shard %d", base, idx)
	}
	if cl.dirs != nil && p == cl.dirs.PutPort() {
		return resolve("directory", cl.dirsDown, cl.dirs.Kernel, cl.dirsFB, cl.dirShards)
	}
	if cl.bank != nil && p == cl.bank.PutPort() {
		return resolve("bank", cl.bankDown, cl.bank.Kernel, cl.bankFB, cl.bankShards)
	}
	return nil, nil, "", fmt.Errorf("amoeba: port %v hosts no sharded service", p)
}

const migrationsHelp = "objects moved live between shards"

// Migrate moves ONE object of the sharded service at put-port p to
// shard dst, live: the object is gated (requests for it park), cut out
// of the source under its own lock, shipped over a private migration
// channel, installed durably on the destination (and its standbys),
// sealed out of the source's log, and finally re-homed in the shard
// map — at which point the parked requests wake, bounce with
// StatusWrongShard and the new generation, and every client re-routes.
// The object stalls for the few milliseconds this takes; every other
// object on every shard is untouched.
//
// Crash safety hangs on the order above. Until the destination has
// acknowledged durable custody, nothing is logged anywhere: a failure
// aborts the move and the object serves from the source again (a crash
// recovers it there — the copy the destination may hold is dark, since
// the map never re-homed it, and is overwritten by any later retry).
// After the acknowledgement the move is decided: the source seals a
// migrate-out record and the map bumps, so no later state has the
// object in two places.
func (cl *Cluster) Migrate(ctx context.Context, p Port, obj uint32, dst int) error {
	obj &= cap.ObjectMask
	// lifeMu: a migration must not interleave with failovers or
	// Kill/Restart swapping the endpoints out from under it. Migrations
	// are millisecond-scale, so parking lifecycle verbs behind one is
	// cheap.
	cl.lifeMu.Lock()
	defer cl.lifeMu.Unlock()
	m := cl.atlas.Lookup(p)
	if m == nil {
		return fmt.Errorf("amoeba: port %v is not sharded", p)
	}
	if dst < 0 || dst >= m.N {
		return fmt.Errorf("amoeba: destination shard %d out of range (0..%d)", dst, m.N-1)
	}
	src := m.Home(obj)
	if src == dst {
		return nil
	}
	cl.mu.Lock()
	srcK, srcFB, base, err := cl.shardEndpointLocked(p, src)
	if err != nil {
		cl.mu.Unlock()
		return err
	}
	dstK, dstFB, _, err := cl.shardEndpointLocked(p, dst)
	if err != nil {
		cl.mu.Unlock()
		return err
	}
	cl.mu.Unlock()

	release, err := srcK.GateObject(obj)
	if err != nil {
		return err
	}
	defer release()
	secret, state, err := srcK.ExtractForMigration(obj)
	if err != nil {
		return err
	}
	abort := func(cause error) error {
		if aerr := srcK.AbortMigration(obj, secret, state); aerr != nil {
			return fmt.Errorf("%w (and aborting the migration failed: %v)", cause, aerr)
		}
		return cause
	}
	// The receiver lives for this one migration: a fresh private port
	// on the destination's machine, gone when the move settles. Nothing
	// to keep consistent across failovers that way — the next migration
	// builds its own against whatever machine is primary then.
	recv := repl.NewMigrateReceiver(dstFB, cl.src, dstK)
	if err := recv.Start(); err != nil {
		return abort(err)
	}
	defer recv.Close()
	if err := repl.ShipObject(ctx, cl.newShipClient(srcFB), recv.Port(), m.Gen+1, obj, secret, state); err != nil {
		return abort(err)
	}
	// The destination holds the object durably: the move is decided.
	// The migrate-out seal and the map bump both happen even if one of
	// them errors — leaving the map pointing at a source that logged
	// the departure (or a wedged source that will fail-stop) beats
	// leaving two shards claiming the object.
	commitErr := srcK.CommitMigrateOut(obj)
	cl.atlas.Update(p, func(cur *shard.Map) *shard.Map { return cur.WithOverride(obj, dst) })
	cl.reg.Counter("amoeba_migrations_total", obs.L("service", base), migrationsHelp).Inc()
	return commitErr
}

// ShardMachines returns the machines currently serving each shard of
// the service at put-port p (index = shard), or nil when p is
// unsharded. Re-read after Kill/Restart or a failover — shards move.
func (cl *Cluster) ShardMachines(p Port) []MachineID {
	m := cl.atlas.Lookup(p)
	if m == nil {
		return nil
	}
	out := make([]MachineID, len(m.Machines))
	copy(out, m.Machines)
	return out
}

// ShardMapGen returns the current shard-map generation for put-port p
// (0 when unsharded). Bumped by every migration and failover.
func (cl *Cluster) ShardMapGen(p Port) uint64 {
	m := cl.atlas.Lookup(p)
	if m == nil {
		return 0
	}
	return m.Gen
}

// ShardOf returns the shard index currently owning obj at put-port p
// (0 when unsharded).
func (cl *Cluster) ShardOf(p Port, obj uint32) int {
	m := cl.atlas.Lookup(p)
	if m == nil {
		return 0
	}
	return m.Home(obj)
}

// registerShardMetrics wires the sharding series: the map-generation
// gauge per service and the migration counter (present from boot, so
// dashboards see the zero). Per-shard request counters need no new
// series — every shard reports through the standard request metrics
// under its own service label ("directory-1", …).
func (cl *Cluster) registerShardMetrics() {
	for _, s := range []struct {
		name string
		port cap.Port
	}{
		{"directory", cl.dirs.PutPort()},
		{"bank", cl.bank.PutPort()},
	} {
		port := s.port
		cl.reg.GaugeFunc("amoeba_shard_map_generation", obs.L("service", s.name),
			"current shard-map generation (0 = unsharded)", func() float64 {
				m := cl.atlas.Lookup(port)
				if m == nil {
					return 0
				}
				return float64(m.Gen)
			})
		cl.reg.Counter("amoeba_migrations_total", obs.L("service", s.name), migrationsHelp)
	}
}
