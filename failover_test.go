// Failover chaos tests: kill a replicated durable service's primary
// mid-soak and promote its hot standby — NO restart of the dead
// machine. Clients must converge onto the promoted backup through
// locate's invalidate-and-re-broadcast, every acknowledged operation
// must be present on it (synchronous WAL shipping), and the split-brain
// guard must keep the dead machine's port dead forever. Runs are
// seeded; CI repeats them under -race. See EXPERIMENTS.md E19.
package amoeba

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// failoverCluster is killCluster plus hot standbys for the durable
// services.
func failoverCluster(t *testing.T, seed uint64) *Cluster {
	t.Helper()
	cl, err := NewCluster(ClusterConfig{
		Seed:      seed,
		LossRate:  0.01,
		Latency:   50 * time.Microsecond,
		Jitter:    100 * time.Microsecond,
		Replicate: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

func TestChaosFailoverDirsvr(t *testing.T) {
	for i := 0; i < killRestartSeeds(t); i++ {
		t.Run(fmt.Sprintf("seed=%d", i), func(t *testing.T) {
			runFailoverDirsvr(t, 0xFA10_0000+uint64(i))
		})
	}
}

func runFailoverDirsvr(t *testing.T, seed uint64) {
	cl := failoverCluster(t, seed)
	dirs := cl.Dirs()

	var root Capability
	untilOK(t, "create root", func(ctx context.Context) error {
		var err error
		root, err = dirs.CreateDir(ctx, cl.DirPort())
		return err
	})

	// Phase 1: workers file entries against the replicated primary; each
	// entry is a fresh subdirectory, so the test also proves created
	// capabilities survive the failover (the standby recovered the
	// table secrets, not re-rolled them).
	const workers, perWorker = 4, 6
	subs := make([]Capability, workers*perWorker)
	enter := func(g, i int) {
		name := fmt.Sprintf("w%d-e%d", g, i)
		untilOK(t, "create "+name, func(ctx context.Context) error {
			var err error
			subs[g*perWorker+i], err = dirs.CreateDir(ctx, cl.DirPort())
			return err
		})
		untilOK(t, "enter "+name, func(ctx context.Context) error {
			err := dirs.Enter(ctx, root, name, subs[g*perWorker+i])
			if err != nil && strings.Contains(err.Error(), "exists") {
				return nil
			}
			return err
		})
	}
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWorker/2; i++ {
				enter(g, i)
			}
		}(g)
	}
	wg.Wait()

	// Kill the primary — it never comes back. Workers keep filing
	// entries straight through the outage, racing the promotion:
	// timeout → invalidate → LOCATE lands them on the backup.
	primary := cl.Machines().Dirs
	if err := cl.Kill(primary); err != nil {
		t.Fatal(err)
	}
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := perWorker / 2; i < perWorker; i++ {
				enter(g, i)
			}
		}(g)
	}
	time.Sleep(5 * time.Millisecond) // let some attempts hit the corpse
	if err := cl.Promote(primary); err != nil {
		t.Fatal(err)
	}
	if cl.Machines().Dirs == primary {
		t.Fatal("promotion did not move the directory service to a new machine")
	}
	wg.Wait()

	// Every acknowledged entry is on the promoted backup, mapped to the
	// exact capability the client was handed before the crash.
	listed := make(map[string]Capability)
	untilOK(t, "list", func(ctx context.Context) error {
		entries, err := dirs.List(ctx, root)
		if err != nil {
			return err
		}
		clear(listed)
		for _, e := range entries {
			listed[e.Name] = e.Cap
		}
		return nil
	})
	if len(listed) != workers*perWorker {
		t.Fatalf("root has %d entries after failover, want %d", len(listed), workers*perWorker)
	}
	for g := 0; g < workers; g++ {
		for i := 0; i < perWorker; i++ {
			name := fmt.Sprintf("w%d-e%d", g, i)
			got, ok := listed[name]
			if !ok {
				t.Fatalf("acknowledged entry %q lost in the failover", name)
			}
			if got != subs[g*perWorker+i] {
				t.Fatalf("entry %q failed over with a different capability", name)
			}
		}
	}
	// Capabilities created before the crash still validate against the
	// promoted backup's table.
	untilOK(t, "lookup into replicated subdir", func(ctx context.Context) error {
		if err := dirs.Enter(ctx, subs[0], "alive", root); err != nil && !strings.Contains(err.Error(), "exists") {
			return err
		}
		_, err := dirs.Lookup(ctx, subs[0], "alive")
		return err
	})
}

func TestChaosFailoverBanksvr(t *testing.T) {
	for i := 0; i < killRestartSeeds(t); i++ {
		t.Run(fmt.Sprintf("seed=%d", i), func(t *testing.T) {
			runFailoverBanksvr(t, 0xFA10_B000+uint64(i))
		})
	}
}

func runFailoverBanksvr(t *testing.T, seed uint64) {
	cl := failoverCluster(t, seed)
	bank := cl.Bank()

	const accounts, grant = 6, 1000
	caps := make([]Capability, accounts)
	for i := range caps {
		untilOK(t, "create account", func(ctx context.Context) error {
			var err error
			caps[i], err = bank.CreateAccount(ctx, "dollar", grant)
			return err
		})
	}

	// Workers shuffle money around a ring, straight through the kill
	// and promotion. Transfers are NOT idempotent — a retry after a
	// lost reply moves the money twice — but every movement stays
	// inside the ring, so the conserved total is immune to retries,
	// the crash, and the failover.
	const workers, transfers = 4, 10
	var wg sync.WaitGroup
	work := func(g, lo int) {
		defer wg.Done()
		for i := lo; i < lo+transfers/2; i++ {
			from := caps[(g+i)%accounts]
			to := caps[(g+i+1)%accounts]
			untilOK(t, "transfer", func(ctx context.Context) error {
				err := bank.Transfer(ctx, from, to, "dollar", 1)
				if err != nil && strings.Contains(err.Error(), "insufficient funds") {
					return nil // ring got lopsided; the invariant is the total
				}
				return err
			})
		}
	}
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go work(g, 0)
	}
	wg.Wait()

	primary := cl.Machines().Bank
	if err := cl.Kill(primary); err != nil {
		t.Fatal(err)
	}
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go work(g, transfers/2)
	}
	time.Sleep(5 * time.Millisecond)
	if err := cl.Promote(primary); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	// Exact money conservation through the failover: every dollar
	// minted into the ring is in exactly one account on the backup.
	total := int64(0)
	for i := range caps {
		var bal map[string]int64
		untilOK(t, "balance", func(ctx context.Context) error {
			var err error
			bal, err = bank.Balance(ctx, caps[i])
			return err
		})
		total += bal["dollar"]
	}
	if total != accounts*grant {
		t.Fatalf("money not conserved across failover: %d, want %d", total, accounts*grant)
	}
}

// TestRestartAfterPromoteSplitBrain: once a machine's put-port has been
// promoted to its backup, Restart of that machine must refuse to
// re-register it — a second primary would split clients between two
// divergent histories.
func TestRestartAfterPromoteSplitBrain(t *testing.T) {
	cl := failoverCluster(t, 0x5B11)
	dirs := cl.Dirs()

	var root Capability
	untilOK(t, "create root", func(ctx context.Context) error {
		var err error
		root, err = dirs.CreateDir(ctx, cl.DirPort())
		return err
	})
	untilOK(t, "enter", func(ctx context.Context) error {
		err := dirs.Enter(ctx, root, "pre", root)
		if err != nil && strings.Contains(err.Error(), "exists") {
			return nil
		}
		return err
	})

	primary := cl.Machines().Dirs
	if err := cl.Kill(primary); err != nil {
		t.Fatal(err)
	}
	if err := cl.Promote(primary); err != nil {
		t.Fatal(err)
	}

	// The guard: the dead machine may never re-register the port.
	err := cl.Restart(primary)
	if err == nil {
		t.Fatal("Restart re-registered a promoted-away put-port (split-brain)")
	}
	if !strings.Contains(err.Error(), "split-brain") {
		t.Fatalf("refusal lacks the split-brain diagnosis: %v", err)
	}

	// The promoted incarnation keeps exclusive ownership of the port:
	// new work lands on it, and the pre-crash entry is still there.
	untilOK(t, "post-guard lookup", func(ctx context.Context) error {
		_, err := dirs.Lookup(ctx, root, "pre")
		return err
	})
	untilOK(t, "post-guard enter", func(ctx context.Context) error {
		err := dirs.Enter(ctx, root, "post", root)
		if err != nil && strings.Contains(err.Error(), "exists") {
			return nil
		}
		return err
	})

	// A promoted service can grow a NEW backup and fail over again:
	// chained failover is the availability story end to end.
	next := cl.Machines().Dirs
	if err := cl.AddBackup(next); err != nil {
		t.Fatal(err)
	}
	if err := cl.Kill(next); err != nil {
		t.Fatal(err)
	}
	if err := cl.Promote(next); err != nil {
		t.Fatal(err)
	}
	untilOK(t, "second failover lookup", func(ctx context.Context) error {
		_, err := dirs.Lookup(ctx, root, "post")
		return err
	})
}

// TestPromoteGuards: Promote demands a dead primary and an attached
// backup; AddBackup demands a live, un-replicated primary.
func TestPromoteGuards(t *testing.T) {
	cl := failoverCluster(t, 0x6A4D)
	m := cl.Machines()

	if err := cl.Promote(m.Dirs); err == nil || !strings.Contains(err.Error(), "still up") {
		t.Fatalf("promote with a live primary: %v", err)
	}
	if err := cl.AddBackup(m.Dirs); err == nil || !strings.Contains(err.Error(), "already has a backup") {
		t.Fatalf("double AddBackup: %v", err)
	}
	if err := cl.AddBackup(m.Memory); err == nil {
		t.Fatal("AddBackup accepted a volatile service's machine")
	}
	if err := cl.Promote(m.Client); err == nil {
		t.Fatal("Promote accepted the client machine")
	}

	// Kill then RESTART (no promote): legal, and the stale standby is
	// discarded — a fresh AddBackup re-bases from the restarted primary.
	if err := cl.Kill(m.Dirs); err != nil {
		t.Fatal(err)
	}
	if err := cl.Restart(m.Dirs); err != nil {
		t.Fatal(err)
	}
	// Restart reincarnated the service on a fresh machine.
	if err := cl.Promote(cl.Machines().Dirs); err == nil || !strings.Contains(err.Error(), "no backup") {
		t.Fatalf("promote after restart consumed the discarded standby: %v", err)
	}
	if err := cl.AddBackup(cl.Machines().Dirs); err != nil {
		t.Fatalf("re-adding a backup after restart: %v", err)
	}
	dirs := cl.Dirs()
	untilOK(t, "post-rebase create", func(ctx context.Context) error {
		_, err := dirs.CreateDir(ctx, cl.DirPort())
		return err
	})

	// DropBackup detaches a live standby without touching the primary;
	// a fresh AddBackup re-bases.
	if err := cl.DropBackup(cl.Machines().Dirs); err != nil {
		t.Fatal(err)
	}
	if err := cl.DropBackup(cl.Machines().Dirs); err == nil {
		t.Fatal("double DropBackup succeeded")
	}
	untilOK(t, "create while unreplicated", func(ctx context.Context) error {
		_, err := dirs.CreateDir(ctx, cl.DirPort())
		return err
	})
	if err := cl.AddBackup(cl.Machines().Dirs); err != nil {
		t.Fatalf("re-adding after drop: %v", err)
	}
}
