package amoeba_test

import (
	"context"
	"fmt"
	"log"

	"amoeba"
)

// Example reproduces the paper's §2.3 running example: create a file,
// write into it, pass read-only access to another party, revoke.
func Example() {
	ctx := context.Background()
	cl, err := amoeba.NewCluster(amoeba.ClusterConfig{Seed: 100})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	files := cl.Files()

	owner, err := files.Create(ctx)
	if err != nil {
		log.Fatal(err)
	}
	if err := files.WriteAt(ctx, owner, 0, []byte("hello")); err != nil {
		log.Fatal(err)
	}
	readOnly, err := files.Restrict(ctx, owner, amoeba.RightRead)
	if err != nil {
		log.Fatal(err)
	}
	data, err := files.ReadAt(ctx, readOnly, 0, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read: %s\n", data)

	err = files.WriteAt(ctx, readOnly, 0, []byte("x"))
	fmt.Println("write with read-only capability denied:",
		amoeba.IsStatus(err, amoeba.StatusNoPermission))

	if _, err := files.Revoke(ctx, owner); err != nil {
		log.Fatal(err)
	}
	_, err = files.ReadAt(ctx, readOnly, 0, 1)
	fmt.Println("old capability dead after revoke:",
		amoeba.IsStatus(err, amoeba.StatusBadCapability))

	// Output:
	// read: hello
	// write with read-only capability denied: true
	// old capability dead after revoke: true
}

// ExampleCapability_Encode shows that a capability is a plain 16-byte
// bearer token (Fig. 2): any holder of the bytes holds the authority.
func ExampleCapability_Encode() {
	c := amoeba.Capability{
		Server: 0x123456789abc,
		Object: 42,
		Rights: amoeba.RightRead | amoeba.RightWrite,
		Check:  0xdeadbeef,
	}
	wire := c.Encode()
	back, err := amoeba.Decode(wire[:])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(wire), back == c)
	// Output: 16 true
}

// ExampleClusterConfig_sealed boots a cluster with §2.4 key-matrix
// sealing layered over the F-box protection.
func ExampleClusterConfig_sealed() {
	ctx := context.Background()
	cl, err := amoeba.NewCluster(amoeba.ClusterConfig{
		Seed:             7,
		SealCapabilities: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	f, err := cl.Files().Create(ctx)
	if err != nil {
		log.Fatal(err)
	}
	if err := cl.Files().WriteAt(ctx, f, 0, []byte("sealed in flight")); err != nil {
		log.Fatal(err)
	}
	data, err := cl.Files().ReadAt(ctx, f, 0, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s\n", data)
	// Output: sealed in flight
}
