// Package obs is the production serving surface's instrumentation
// core: lock-free counters, gauges and fixed-bucket histograms with
// near-zero hot-path cost, a registry that exports them in Prometheus
// text and expvar JSON formats, a fixed-size lock-free ring of recent
// request records (the access log), and the opcode→name table every
// exporter labels with.
//
// Design rules, in order:
//
//   - The hot path (one request through rpc.Server) touches only
//     atomics: no locks, no maps written, no allocations. The alloc
//     gate in CI pins the instrumented round trip at the same
//     allocs/op as the uninstrumented one.
//   - Names are resolved at EXPORT time, never on the hot path:
//     metrics are registered once at server start, and the access log
//     stores numeric opcodes that the dump renders through OpName.
//   - Registration is idempotent: a restarted service re-registers the
//     same (name, labels) family and gets the SAME metric back, so
//     counters survive a Kill/Restart cycle the way an external
//     scraper expects them to (monotonic, no reset to zero).
package obs

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing count. The zero value is ready
// to use; all methods are safe for concurrent use and lock-free.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous level (queue depth, bytes in use). The
// zero value is ready to use.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (negative to decrement).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// HistBuckets is the number of histogram buckets: bucket i counts
// observations v with 2^(i-1) ≤ v < 2^i (bucket 0 counts v < 1, the
// last bucket is the overflow). Power-of-two bounds make Observe one
// bits.Len64 — no search, no branches worth naming — and still give
// latency quantiles accurate to within 2×, which is what a fixed-cost
// histogram can promise.
const HistBuckets = 40

// Histogram is a fixed-bucket histogram of non-negative integer
// observations (nanoseconds for latencies, counts for batch sizes).
// The zero value is ready to use; Observe is lock-free and
// allocation-free.
type Histogram struct {
	buckets [HistBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	i := bits.Len64(v) // 0 for v==0, else floor(log2(v))+1
	if i >= HistBuckets {
		i = HistBuckets - 1
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveDuration records a latency in nanoseconds (negative clamps
// to zero, so a clock step cannot corrupt the buckets).
func (h *Histogram) ObserveDuration(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.Observe(uint64(d))
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Quantile returns an upper bound for the q-quantile (0 < q ≤ 1) of
// the observed values: the upper bound of the bucket the quantile
// falls in, accurate to within the bucket's 2× width. Returns 0 with
// no observations. Export-path only (it scans the buckets).
func (h *Histogram) Quantile(q float64) uint64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen uint64
	for i := 0; i < HistBuckets; i++ {
		seen += h.buckets[i].Load()
		if seen > rank {
			return bucketBound(i)
		}
	}
	return bucketBound(HistBuckets - 1)
}

// bucketBound returns bucket i's exclusive upper bound.
func bucketBound(i int) uint64 {
	if i == 0 {
		return 1
	}
	if i >= 63 {
		return ^uint64(0)
	}
	return 1 << uint(i)
}

// kind discriminates the registry's metric families.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

// metric is one registered time series.
type metric struct {
	name   string // Prometheus family name
	labels string // rendered `k="v",k="v"` or ""
	help   string
	kind   kind
	c      *Counter
	g      *Gauge
	gf     func() float64
	h      *Histogram
}

func (m *metric) series() string {
	if m.labels == "" {
		return m.name
	}
	return m.name + "{" + m.labels + "}"
}

// Registry holds named metrics and renders them for scrapers. Metrics
// register once (at service start); the hot path never touches the
// registry. Registration is idempotent on (name, labels): a restarted
// service gets its previous incarnation's metric back.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	index   map[string]*metric // series key → metric
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]*metric)}
}

// L renders label pairs for registration: L("service", "dir", "op",
// "enter") → `service="dir",op="enter"`. Values are escaped per the
// Prometheus exposition format.
func L(pairs ...string) string {
	if len(pairs)%2 != 0 {
		panic("obs: L wants key/value pairs")
	}
	var b strings.Builder
	for i := 0; i < len(pairs); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(pairs[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(pairs[i+1]))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// register finds or creates the (name, labels) series.
func (r *Registry) register(name, labels, help string, k kind) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := name + "{" + labels + "}"
	if m, ok := r.index[key]; ok {
		if m.kind != k {
			panic(fmt.Sprintf("obs: %s re-registered as a different kind", key))
		}
		return m
	}
	m := &metric{name: name, labels: labels, help: help, kind: k}
	switch k {
	case kindCounter:
		m.c = &Counter{}
	case kindGauge:
		m.g = &Gauge{}
	case kindHistogram:
		m.h = &Histogram{}
	}
	r.metrics = append(r.metrics, m)
	r.index[key] = m
	return m
}

// Counter returns the counter registered under (name, labels),
// creating it on first use.
func (r *Registry) Counter(name, labels, help string) *Counter {
	return r.register(name, labels, help, kindCounter).c
}

// Gauge returns the gauge registered under (name, labels).
func (r *Registry) Gauge(name, labels, help string) *Gauge {
	return r.register(name, labels, help, kindGauge).g
}

// GaugeFunc registers fn as a gauge evaluated at scrape time — the
// zero-hot-path-cost way to export a level someone else already
// maintains (queue depth, ship lag, WAL bytes). Re-registering the
// same series replaces the function (a restarted service points the
// gauge at its new incarnation).
func (r *Registry) GaugeFunc(name, labels, help string, fn func() float64) {
	m := r.register(name, labels, help, kindGaugeFunc)
	r.mu.Lock()
	m.gf = fn
	r.mu.Unlock()
}

// Histogram returns the histogram registered under (name, labels).
func (r *Registry) Histogram(name, labels, help string) *Histogram {
	return r.register(name, labels, help, kindHistogram).h
}

// snapshot copies the metric list for lock-free rendering.
func (r *Registry) snapshot() []*metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*metric(nil), r.metrics...)
}

// WritePrometheus renders every registered metric in the Prometheus
// text exposition format (families sorted by name, one TYPE line per
// family). Histograms render as native _bucket/_sum/_count series
// with power-of-two le bounds.
func (r *Registry) WritePrometheus(w io.Writer) error {
	ms := r.snapshot()
	sort.SliceStable(ms, func(i, j int) bool { return ms[i].name < ms[j].name })
	var lastFamily string
	for _, m := range ms {
		if m.name != lastFamily {
			typ := "counter"
			switch m.kind {
			case kindGauge, kindGaugeFunc:
				typ = "gauge"
			case kindHistogram:
				typ = "histogram"
			}
			if m.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.name, m.help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.name, typ); err != nil {
				return err
			}
			lastFamily = m.name
		}
		var err error
		switch m.kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "%s %d\n", m.series(), m.c.Value())
		case kindGauge:
			_, err = fmt.Fprintf(w, "%s %d\n", m.series(), m.g.Value())
		case kindGaugeFunc:
			_, err = fmt.Fprintf(w, "%s %g\n", m.series(), m.gf())
		case kindHistogram:
			err = writePromHistogram(w, m)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func writePromHistogram(w io.Writer, m *metric) error {
	sep := ""
	if m.labels != "" {
		sep = ","
	}
	var cum uint64
	for i := 0; i < HistBuckets; i++ {
		cum += m.h.buckets[i].Load()
		bound := fmt.Sprintf("%d", bucketBound(i))
		if i == HistBuckets-1 {
			bound = "+Inf"
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{%s%sle=\"%s\"} %d\n", m.name, m.labels, sep, bound, cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum{%s} %d\n", m.name, m.labels, m.h.Sum()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count{%s} %d\n", m.name, m.labels, m.h.Count())
	return err
}

// WriteJSON renders the registry as one JSON object keyed by series
// (the expvar-compatible view; histograms render count/sum/p50/p99).
func (r *Registry) WriteJSON(w io.Writer) error {
	ms := r.snapshot()
	sort.SliceStable(ms, func(i, j int) bool { return ms[i].series() < ms[j].series() })
	if _, err := io.WriteString(w, "{"); err != nil {
		return err
	}
	for i, m := range ms {
		if i > 0 {
			if _, err := io.WriteString(w, ","); err != nil {
				return err
			}
		}
		var err error
		switch m.kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "%q: %d", m.series(), m.c.Value())
		case kindGauge:
			_, err = fmt.Fprintf(w, "%q: %d", m.series(), m.g.Value())
		case kindGaugeFunc:
			_, err = fmt.Fprintf(w, "%q: %g", m.series(), m.gf())
		case kindHistogram:
			_, err = fmt.Fprintf(w, "%q: {\"count\": %d, \"sum\": %d, \"p50\": %d, \"p99\": %d}",
				m.series(), m.h.Count(), m.h.Sum(), m.h.Quantile(0.50), m.h.Quantile(0.99))
		}
		if err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "}")
	return err
}
