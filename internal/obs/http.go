// Debug HTTP surface: one mux serving the Prometheus text endpoint,
// an expvar-style JSON view, the ring access-log dump, and the
// standard pprof handlers. The listener is optional everywhere — a
// Cluster or daemon without a debug address pays nothing.
package obs

import (
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// Mux builds the debug handler tree:
//
//	/metrics          Prometheus text exposition of reg
//	/debug/vars       JSON: process expvars merged with reg
//	/debug/requests   ring access log, newest first (?n=limit)
//	/debug/pprof/...  net/http/pprof profiles
//
// ring and statusName may be nil (the requests endpoint then serves
// an empty array / hex statuses).
func Mux(reg *Registry, ring *Ring, statusName func(uint16) string) *http.ServeMux {
	mux := http.NewServeMux()

	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WritePrometheus(w); err != nil {
			// Headers are gone; nothing useful left to do.
			return
		}
	})

	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		fmt.Fprintf(w, "{\n\"process\": {")
		first := true
		expvar.Do(func(kv expvar.KeyValue) {
			if !first {
				fmt.Fprintf(w, ",")
			}
			first = false
			fmt.Fprintf(w, "\n%q: %s", kv.Key, kv.Value)
		})
		fmt.Fprintf(w, "\n},\n\"metrics\": ")
		reg.WriteJSON(w)
		fmt.Fprintf(w, "\n}\n")
	})

	mux.HandleFunc("/debug/requests", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		n := 0 // 0 = everything in the ring
		if q := r.URL.Query().Get("n"); q != "" {
			if v, err := strconv.Atoi(q); err == nil && v > 0 {
				n = v
			}
		}
		if ring == nil {
			fmt.Fprintln(w, "[]")
			return
		}
		ring.WriteJSON(w, n, statusName)
	})

	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	return mux
}
