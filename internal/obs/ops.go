// The opcode→name table. Every service used to carry its own implicit
// opcode naming (a comment next to the const block); metrics labels
// and access-log dumps need the real thing, and they need to agree
// with each other and with the wire. So there is exactly one table:
// each package registers its const block here from init(), and a
// conflicting re-registration (two packages claiming the same opcode
// with different names) panics at process start — label drift becomes
// a startup crash instead of a silent lie on a dashboard.
package obs

import (
	"fmt"
	"sync"
)

var opTable = struct {
	sync.RWMutex
	names map[uint16]string
}{names: make(map[uint16]string)}

// RegisterOps records wire opcode names. Idempotent for identical
// mappings; panics if an opcode is re-registered under a different
// name (that is the drift this table exists to prevent).
func RegisterOps(ops map[uint16]string) {
	opTable.Lock()
	defer opTable.Unlock()
	for op, name := range ops {
		if prev, ok := opTable.names[op]; ok && prev != name {
			panic(fmt.Sprintf("obs: opcode %#04x registered as both %q and %q", op, prev, name))
		}
		opTable.names[op] = name
	}
}

// OpName resolves a wire opcode to its registered name, or a hex
// rendering for unregistered opcodes. Export-path only.
func OpName(op uint16) string {
	opTable.RLock()
	name, ok := opTable.names[op]
	opTable.RUnlock()
	if ok {
		return name
	}
	return fmt.Sprintf("op_%04x", op)
}

// OpNames returns a copy of the full table (for tests and for
// freezing per-server metric maps at start).
func OpNames() map[uint16]string {
	opTable.RLock()
	defer opTable.RUnlock()
	out := make(map[uint16]string, len(opTable.names))
	for op, name := range opTable.names {
		out[op] = name
	}
	return out
}
