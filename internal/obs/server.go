// Per-server instrumentation handle. An rpc.Server carries at most
// one *ServerStats; the hot path calls Observe (admitted request) or
// ObserveShed (refused request) with numbers it already has on the
// stack. Everything name-shaped — service label, opcode label, status
// label — was resolved at registration time, so the per-request cost
// is a frozen-map read plus a handful of atomic adds.
package obs

import (
	"time"
)

// MaxStatuses bounds the per-opcode status counter array. Wire
// statuses are small integers; anything past the bound lands in the
// last slot rather than out of bounds.
const MaxStatuses = 16

// OpStats is the per-opcode slice of a server's metrics: one
// requests_total counter per status.
type OpStats struct {
	status [MaxStatuses]*Counter
}

// ServerStats instruments one rpc.Server. Build with NewServerStats,
// then Freeze with the server's opcode set before serving; Observe
// and ObserveShed are then lock-free and allocation-free.
type ServerStats struct {
	service string
	svcIdx  uint16
	ring    *Ring
	reg     *Registry

	// statusName renders a wire status for labels; supplied by the
	// rpc layer so obs stays a leaf package.
	statusName func(uint16) string

	// ops is written only by Freeze, before the server starts; the
	// hot path reads it without a lock.
	ops      map[uint16]*OpStats
	fallback *OpStats // unregistered opcodes (should not happen)

	queueWait *Histogram
	handle    *Histogram
	shed      *Counter
}

// NewServerStats registers the per-service metric families on reg and
// interns the service name in the ring (ring may be nil to skip the
// access log). statusName renders wire statuses for labels.
func NewServerStats(reg *Registry, ring *Ring, service string, statusName func(uint16) string) *ServerStats {
	s := &ServerStats{
		service:    service,
		reg:        reg,
		ring:       ring,
		statusName: statusName,
		ops:        make(map[uint16]*OpStats),
	}
	if ring != nil {
		s.svcIdx = ring.RegisterService(service)
	}
	labels := L("service", service)
	s.queueWait = reg.Histogram("amoeba_request_queue_wait_ns", labels,
		"Time a request spent queued before a worker picked it up, in nanoseconds.")
	s.handle = reg.Histogram("amoeba_request_handle_ns", labels,
		"Time the handler spent on a request, in nanoseconds.")
	s.shed = reg.Counter("amoeba_shed_total", labels,
		"Requests refused by deadline-aware admission control before touching the worker pool.")
	s.fallback = s.opStats(0)
	return s
}

// Service returns the service label.
func (s *ServerStats) Service() string { return s.service }

// opStats registers the per-status counters for one opcode.
func (s *ServerStats) opStats(op uint16) *OpStats {
	o := &OpStats{}
	opLabel := OpName(op)
	if op == 0 {
		opLabel = "unknown"
	}
	for st := 0; st < MaxStatuses; st++ {
		name := s.statusLabel(uint16(st))
		o.status[st] = s.reg.Counter("amoeba_requests_total",
			L("service", s.service, "op", opLabel, "status", name),
			"Requests completed (or shed), by service, opcode and wire status.")
	}
	return o
}

func (s *ServerStats) statusLabel(st uint16) string {
	if s.statusName != nil {
		return s.statusName(st)
	}
	return OpName(st) // hex fallback keeps labels unique
}

// Freeze registers per-opcode counters for the server's opcode set.
// Must be called before the server starts serving; after Freeze the
// ops map is read-only and the hot path reads it lock-free.
func (s *ServerStats) Freeze(opcodes []uint16) {
	for _, op := range opcodes {
		if _, ok := s.ops[op]; !ok {
			s.ops[op] = s.opStats(op)
		}
	}
}

func (s *ServerStats) lookup(op uint16) *OpStats {
	if o, ok := s.ops[op]; ok {
		return o
	}
	return s.fallback
}

// Observe records one admitted request: status counter, queue-wait
// and handler-time histograms, and an access-log record.
func (s *ServerStats) Observe(op uint16, reqID uint64, from uint32, status uint16, queueWait, handle time.Duration) {
	st := status
	if st >= MaxStatuses {
		st = MaxStatuses - 1
	}
	s.lookup(op).status[st].Inc()
	s.queueWait.ObserveDuration(queueWait)
	s.handle.ObserveDuration(handle)
	if s.ring != nil {
		s.ring.Push(s.svcIdx, reqID, op, status, from, queueWait, handle, false)
	}
}

// ObserveShed records one refused request: the shed counter, the
// status counter (the overload status), and an access-log record
// flagged as shed. queueWait carries the EWMA estimate that triggered
// the refusal, so the log shows WHY the request was turned away.
func (s *ServerStats) ObserveShed(op uint16, reqID uint64, from uint32, status uint16, queueWait time.Duration) {
	s.shed.Inc()
	st := status
	if st >= MaxStatuses {
		st = MaxStatuses - 1
	}
	s.lookup(op).status[st].Inc()
	if s.ring != nil {
		s.ring.Push(s.svcIdx, reqID, op, status, from, queueWait, 0, true)
	}
}

// ShedCount returns the shed counter (for tests and gauges).
func (s *ServerStats) ShedCount() uint64 { return s.shed.Value() }

// StatusName renders a wire status with the namer the stats were
// built with (used by the ring dump so log labels match metric ones).
func (s *ServerStats) StatusName(st uint16) string { return s.statusLabel(st) }
