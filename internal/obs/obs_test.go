package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketsAndQuantile(t *testing.T) {
	var h Histogram
	// 90 fast observations, 10 slow ones: p50 must land in the fast
	// band, p99 in the slow band (within the 2× bucket width).
	for i := 0; i < 90; i++ {
		h.Observe(1000) // ~1µs
	}
	for i := 0; i < 10; i++ {
		h.Observe(1_000_000) // ~1ms
	}
	if got := h.Count(); got != 100 {
		t.Fatalf("Count = %d, want 100", got)
	}
	if got := h.Sum(); got != 90*1000+10*1_000_000 {
		t.Fatalf("Sum = %d", got)
	}
	p50 := h.Quantile(0.50)
	if p50 < 1000 || p50 > 4000 {
		t.Errorf("p50 = %d, want within 2x of 1000", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 1_000_000 || p99 > 4_000_000 {
		t.Errorf("p99 = %d, want within 2x of 1000000", p99)
	}
	// Overflow and zero observations stay in bounds.
	h.Observe(0)
	h.Observe(^uint64(0))
	if h.Count() != 102 {
		t.Fatalf("Count after edge observations = %d", h.Count())
	}
}

func TestHistogramNegativeDurationClamps(t *testing.T) {
	var h Histogram
	h.ObserveDuration(-time.Second)
	if h.Count() != 1 || h.Sum() != 0 {
		t.Fatalf("negative duration: count=%d sum=%d, want 1/0", h.Count(), h.Sum())
	}
}

func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("amoeba_test_total", L("service", "dir"), "help")
	c1.Add(7)
	// Re-registration (a restarted service) must return the same
	// counter so the count survives the restart.
	c2 := r.Counter("amoeba_test_total", L("service", "dir"), "help")
	if c1 != c2 {
		t.Fatal("re-registration returned a different counter")
	}
	if c2.Value() != 7 {
		t.Fatalf("count lost across re-registration: %d", c2.Value())
	}
	// Different labels → different series.
	c3 := r.Counter("amoeba_test_total", L("service", "bank"), "help")
	if c3 == c1 {
		t.Fatal("different labels returned the same counter")
	}
	// Kind conflict panics.
	defer func() {
		if recover() == nil {
			t.Fatal("kind conflict did not panic")
		}
	}()
	r.Gauge("amoeba_test_total", L("service", "dir"), "help")
}

func TestGaugeFuncReplacedOnReregistration(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("amoeba_depth", "", "", func() float64 { return 1 })
	r.GaugeFunc("amoeba_depth", "", "", func() float64 { return 2 })
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "amoeba_depth 2") {
		t.Fatalf("gauge func not replaced:\n%s", buf.String())
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("amoeba_requests_total", L("service", "dir", "op", "enter", "status", "ok"), "Requests.").Add(3)
	r.Gauge("amoeba_queue_depth", L("service", "dir"), "Depth.").Set(5)
	h := r.Histogram("amoeba_handle_ns", L("service", "dir"), "Handler time.")
	h.Observe(100)
	h.Observe(200000)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE amoeba_requests_total counter",
		`amoeba_requests_total{service="dir",op="enter",status="ok"} 3`,
		"# TYPE amoeba_queue_depth gauge",
		`amoeba_queue_depth{service="dir"} 5`,
		"# TYPE amoeba_handle_ns histogram",
		`amoeba_handle_ns_bucket{service="dir",le="+Inf"} 2`,
		`amoeba_handle_ns_sum{service="dir"} 200100`,
		`amoeba_handle_ns_count{service="dir"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Every non-comment line must parse as `series value`.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Errorf("unparsable exposition line: %q", line)
		}
	}
}

func TestWriteJSONParses(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", "", "").Add(1)
	r.Gauge("g", L("a", "b"), "").Set(-2)
	r.GaugeFunc("gf", "", "", func() float64 { return 1.5 })
	r.Histogram("h", "", "").Observe(10)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("WriteJSON output not valid JSON: %v\n%s", err, buf.String())
	}
	if len(m) != 4 {
		t.Fatalf("got %d series, want 4: %v", len(m), m)
	}
}

func TestLabelEscaping(t *testing.T) {
	if got := L("k", `a"b\c`); got != `k="a\"b\\c"` {
		t.Fatalf("L escaped to %q", got)
	}
}

func TestRingWrapAndDump(t *testing.T) {
	r := NewRing(16)
	svc := r.RegisterService("dir")
	if again := r.RegisterService("dir"); again != svc {
		t.Fatal("RegisterService not idempotent")
	}
	for i := 0; i < 40; i++ {
		r.Push(svc, uint64(i), 0x0401, 0, 7, time.Duration(i), time.Duration(2*i), false)
	}
	recs := r.Dump(0, nil)
	if len(recs) != 16 {
		t.Fatalf("Dump returned %d records, want 16 (ring capacity)", len(recs))
	}
	// Newest first: req IDs 39 down to 24.
	for k, rec := range recs {
		if want := uint64(39 - k); rec.ReqID != want {
			t.Fatalf("record %d has req ID %d, want %d", k, rec.ReqID, want)
		}
		if rec.Service != "dir" {
			t.Fatalf("record %d service = %q", k, rec.Service)
		}
	}
	if got := r.Dump(3, nil); len(got) != 3 {
		t.Fatalf("Dump(3) returned %d records", len(got))
	}
}

func TestRingConcurrent(t *testing.T) {
	r := NewRing(64)
	svc := r.RegisterService("dir")
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				r.Push(svc, uint64(w*1_000_000+i), 1, 0, 0, 0, 0, false)
			}
		}(w)
	}
	for i := 0; i < 100; i++ {
		r.Dump(0, nil) // must not race or tear under the detector
	}
	wg.Wait()
	if r.Len() != 64 {
		t.Fatalf("Len = %d, want 64", r.Len())
	}
}

func TestRegisterOpsDriftPanics(t *testing.T) {
	RegisterOps(map[uint16]string{0x7f01: "test_op"})
	RegisterOps(map[uint16]string{0x7f01: "test_op"}) // identical: fine
	if OpName(0x7f01) != "test_op" {
		t.Fatalf("OpName = %q", OpName(0x7f01))
	}
	if OpName(0x7f99) != "op_7f99" {
		t.Fatalf("unregistered OpName = %q", OpName(0x7f99))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("conflicting registration did not panic")
		}
	}()
	RegisterOps(map[uint16]string{0x7f01: "different_name"})
}

func TestServerStatsObserve(t *testing.T) {
	RegisterOps(map[uint16]string{0x7f10: "stats_op"})
	reg := NewRegistry()
	ring := NewRing(16)
	statusName := func(st uint16) string { return fmt.Sprintf("s%d", st) }
	s := NewServerStats(reg, ring, "dir", statusName)
	s.Freeze([]uint16{0x7f10})

	s.Observe(0x7f10, 42, 3, 0, 5*time.Microsecond, 20*time.Microsecond)
	s.ObserveShed(0x7f10, 43, 3, 7, 100*time.Microsecond)
	// Unknown opcode lands in the fallback, not a panic.
	s.Observe(0x7fff, 44, 3, 0, 0, 0)

	if s.ShedCount() != 1 {
		t.Fatalf("ShedCount = %d", s.ShedCount())
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`amoeba_requests_total{service="dir",op="stats_op",status="s0"} 1`,
		`amoeba_requests_total{service="dir",op="stats_op",status="s7"} 1`,
		`amoeba_shed_total{service="dir"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	recs := ring.Dump(0, s.StatusName)
	if len(recs) != 3 {
		t.Fatalf("ring has %d records, want 3", len(recs))
	}
	// Newest first: the unknown-op record, then the shed, then the ok.
	if !recs[1].Shed || recs[1].Status != "s7" || recs[1].Op != "stats_op" {
		t.Fatalf("shed record wrong: %+v", recs[1])
	}
	if recs[2].ReqID != 42 || recs[2].QueueWait != 5*time.Microsecond {
		t.Fatalf("ok record wrong: %+v", recs[2])
	}
}
