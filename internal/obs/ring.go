// Ring-buffer access log: the last N request records, written
// lock-free from the serving hot path and dumped on demand from the
// debug endpoint. The production rationale is the usual one — when a
// tail-latency page fires, the first question is "what were the last
// thousand requests?", and a fixed ring answers it with zero steady
// state cost and zero retention policy to misconfigure.
package obs

import (
	"encoding/json"
	"io"
	"sync/atomic"
	"time"
)

// ReqRecord is one completed (or shed) request as seen by a server.
type ReqRecord struct {
	Time      time.Time     `json:"time"`
	ReqID     uint64        `json:"req_id"`
	Service   string        `json:"service"`
	Op        string        `json:"op"`
	Status    string        `json:"status"`
	From      uint32        `json:"from"`
	QueueWait time.Duration `json:"queue_wait_ns"`
	Handle    time.Duration `json:"handle_ns"`
	Shed      bool          `json:"shed,omitempty"`
}

// slot is one ring entry. Every field is an atomic word and the slot
// carries a seqlock: writers bump seq to odd, store the fields, bump
// to even; readers snapshot seq-fields-seq and discard torn reads.
// This keeps Push wait-free for writers (a reader can never block a
// writer) and keeps the race detector quiet without a lock.
type slot struct {
	seq    atomic.Uint64
	timeNS atomic.Int64
	reqID  atomic.Uint64
	// packed is status<<48 | op<<32 | svcIdx<<16 | flags (flag bit 0 = shed).
	packed atomic.Uint64
	from   atomic.Uint32
	waitNS atomic.Int64
	workNS atomic.Int64
}

// Ring is a fixed-size lock-free log of recent requests. The zero
// value is not usable; build with NewRing.
type Ring struct {
	slots []slot
	mask  uint64
	pos   atomic.Uint64 // next slot to claim

	// services maps the svcIdx packed into slots back to a service
	// name at dump time. Registered at server start, read-only after.
	services []string
	svcMu    atomicSvcList
}

// atomicSvcList guards service-name registration; it is a mutex in a
// trench coat but keeps the Ring struct's hot fields lock-free.
type atomicSvcList struct{ busy atomic.Bool }

func (l *atomicSvcList) lock() {
	for !l.busy.CompareAndSwap(false, true) {
	}
}
func (l *atomicSvcList) unlock() { l.busy.Store(false) }

// NewRing builds a ring holding the most recent n records (rounded up
// to a power of two, minimum 16).
func NewRing(n int) *Ring {
	size := 16
	for size < n {
		size <<= 1
	}
	return &Ring{slots: make([]slot, size), mask: uint64(size - 1)}
}

// RegisterService interns a service name and returns its index for
// Push. Idempotent: registering the same name again (a restarted
// service) returns the original index.
func (r *Ring) RegisterService(name string) uint16 {
	r.svcMu.lock()
	defer r.svcMu.unlock()
	for i, s := range r.services {
		if s == name {
			return uint16(i)
		}
	}
	r.services = append(r.services, name)
	return uint16(len(r.services) - 1)
}

// Push records one request. Wait-free; called from the serving hot
// path, so it performs no allocation and takes no lock.
func (r *Ring) Push(svcIdx uint16, reqID uint64, op uint16, status uint16, from uint32, queueWait, handle time.Duration, shed bool) {
	i := r.pos.Add(1) - 1
	s := &r.slots[i&r.mask]
	var flags uint64
	if shed {
		flags = 1
	}
	s.seq.Add(1) // odd: write in progress
	s.timeNS.Store(time.Now().UnixNano())
	s.reqID.Store(reqID)
	s.packed.Store(uint64(status)<<48 | uint64(op)<<32 | uint64(svcIdx)<<16 | flags)
	s.from.Store(from)
	s.waitNS.Store(int64(queueWait))
	s.workNS.Store(int64(handle))
	s.seq.Add(1) // even: write complete
}

// Len returns how many records the ring currently holds.
func (r *Ring) Len() int {
	n := r.pos.Load()
	if n > uint64(len(r.slots)) {
		return len(r.slots)
	}
	return int(n)
}

// Dump returns up to max records, newest first. A record mid-write
// (torn seqlock) is skipped rather than retried — the dump is a
// diagnostic snapshot, not a transaction.
func (r *Ring) Dump(max int, statusName func(uint16) string) []ReqRecord {
	r.svcMu.lock()
	services := append([]string(nil), r.services...)
	r.svcMu.unlock()

	n := r.Len()
	if max > 0 && n > max {
		n = max
	}
	head := r.pos.Load()
	out := make([]ReqRecord, 0, n)
	for k := 0; k < n; k++ {
		idx := (head - 1 - uint64(k)) & r.mask
		s := &r.slots[idx]
		seq1 := s.seq.Load()
		if seq1%2 != 0 || seq1 == 0 {
			continue // mid-write or never written
		}
		rec := ReqRecord{
			Time:      time.Unix(0, s.timeNS.Load()),
			ReqID:     s.reqID.Load(),
			From:      s.from.Load(),
			QueueWait: time.Duration(s.waitNS.Load()),
			Handle:    time.Duration(s.workNS.Load()),
		}
		packed := s.packed.Load()
		if s.seq.Load() != seq1 {
			continue // torn
		}
		status := uint16(packed >> 48)
		op := uint16(packed >> 32)
		svcIdx := uint16(packed >> 16)
		rec.Shed = packed&1 != 0
		rec.Op = OpName(op)
		if statusName != nil {
			rec.Status = statusName(status)
		}
		if int(svcIdx) < len(services) {
			rec.Service = services[svcIdx]
		}
		out = append(out, rec)
	}
	return out
}

// WriteJSON dumps up to max records as a JSON array, newest first.
func (r *Ring) WriteJSON(w io.Writer, max int, statusName func(uint16) string) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Dump(max, statusName))
}
