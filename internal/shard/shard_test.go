package shard

import (
	"sync"
	"testing"

	"amoeba/internal/amnet"
	"amoeba/internal/cap"
)

func threeShards() *Map {
	return NewMap([]amnet.MachineID{10, 11, 12})
}

func TestMapHashPlacement(t *testing.T) {
	m := threeShards()
	if m.Gen != 1 || m.N != 3 {
		t.Fatalf("Gen=%d N=%d, want 1/3", m.Gen, m.N)
	}
	for obj := uint32(0); obj < 9; obj++ {
		if got := m.Home(obj); got != int(obj%3) {
			t.Fatalf("Home(%d) = %d, want %d", obj, got, obj%3)
		}
	}
	if m.Machine(4) != 11 {
		t.Fatalf("Machine(4) = %v, want 11", m.Machine(4))
	}
	// Object numbers are masked to their 24 bits: high junk bits must
	// not change the placement.
	if m.Home(5|^cap.ObjectMask) != m.Home(5) {
		t.Fatal("Home ignored the object mask")
	}
}

func TestMapOverrideLifecycle(t *testing.T) {
	m := threeShards()
	m2 := m.WithOverride(5, 0)
	if m2.Gen != 2 || m2.Home(5) != 0 || !m2.Overridden(5) {
		t.Fatalf("override: gen=%d home=%d", m2.Gen, m2.Home(5))
	}
	// The original is untouched (immutability).
	if m.Home(5) != 2 || m.Overridden(5) {
		t.Fatal("WithOverride mutated its receiver")
	}
	// Neighbours keep their hash homes.
	if m2.Home(4) != 1 || m2.Home(6) != 0 {
		t.Fatal("override leaked onto sibling objects")
	}
	// Moving the object back to its hash home DROPS the override.
	m3 := m2.WithOverride(5, 2)
	if m3.Gen != 3 || m3.Home(5) != 2 || m3.Overridden(5) {
		t.Fatalf("move-back: gen=%d home=%d overridden=%v", m3.Gen, m3.Home(5), m3.Overridden(5))
	}
}

func TestMapWithMachine(t *testing.T) {
	m := threeShards().WithOverride(5, 0)
	m2 := m.WithMachine(1, 99)
	if m2.Gen != m.Gen+1 || m2.Machines[1] != 99 {
		t.Fatalf("gen=%d machines=%v", m2.Gen, m2.Machines)
	}
	if m.Machines[1] != 11 {
		t.Fatal("WithMachine mutated its receiver")
	}
	if m2.Home(5) != 0 {
		t.Fatal("WithMachine dropped the overrides")
	}
}

func TestAtlasRegisterLookupUpdate(t *testing.T) {
	a := NewAtlas()
	p := cap.Port(7)
	if a.Lookup(p) != nil {
		t.Fatal("empty atlas returned a map")
	}
	if a.Update(p, func(m *Map) *Map { return m }) != nil {
		t.Fatal("Update on an unknown port did not abort")
	}
	a.Register(p, threeShards())
	if m := a.Lookup(p); m == nil || m.Gen != 1 {
		t.Fatalf("Lookup = %+v", m)
	}
	got := a.Update(p, func(m *Map) *Map { return m.WithOverride(3, 1) })
	if got == nil || got.Gen != 2 {
		t.Fatalf("Update returned %+v", got)
	}
	if m := a.Lookup(p); m.Gen != 2 || m.Home(3) != 1 {
		t.Fatalf("update not visible: %+v", m)
	}
	// fn returning nil aborts without installing.
	if a.Update(p, func(m *Map) *Map { return nil }) != nil {
		t.Fatal("aborted update installed something")
	}
	if a.Lookup(p).Gen != 2 {
		t.Fatal("aborted update changed the map")
	}
}

func TestAtlasConcurrentUpdates(t *testing.T) {
	a := NewAtlas()
	p := cap.Port(9)
	a.Register(p, threeShards())
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				a.Update(p, func(m *Map) *Map { return m.WithMachine(n%3, amnet.MachineID(n)) })
				_ = a.Lookup(p).Home(uint32(j))
			}
		}(i)
	}
	wg.Wait()
	// 400 serialized derivations on top of gen 1.
	if g := a.Lookup(p).Gen; g != 401 {
		t.Fatalf("Gen = %d, want 401 (one per update)", g)
	}
}

func TestViewOwnership(t *testing.T) {
	a := NewAtlas()
	p := cap.Port(3)
	v := NewView(a, p, 1)
	// Unregistered port: everything is owned, generation 0.
	if !v.Owns(0) || !v.Owns(1) || v.Gen() != 0 {
		t.Fatal("view over an unsharded port must own everything")
	}
	a.Register(p, threeShards())
	if v.Owns(0) || !v.Owns(1) || v.Owns(2) {
		t.Fatal("view ownership disagrees with the map")
	}
	if v.Gen() != 1 || v.Self() != 1 {
		t.Fatalf("Gen=%d Self=%d", v.Gen(), v.Self())
	}
	// A migration override moves ownership between views immediately.
	a.Update(p, func(m *Map) *Map { return m.WithOverride(1, 2) })
	if v.Owns(1) {
		t.Fatal("view kept ownership of a migrated-away object")
	}
	if v.Gen() != 2 {
		t.Fatalf("Gen = %d after override", v.Gen())
	}
}
