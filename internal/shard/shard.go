// Package shard partitions a service's object space across machines.
//
// A port that serves objects from M machines gets a Map: object-number
// → shard index, static hash (obj mod M) first, with per-object
// overrides layered on top as objects migrate. Every edit produces a
// NEW Map with a bumped generation — readers hold an immutable
// snapshot and never see a map mid-edit, so the hot path is one atomic
// pointer load with zero locks and zero allocations.
//
// The Atlas holds the current Map for every sharded port. In a real
// deployment it would be a replicated directory service reached over
// the wire; here it is process-wide shared state (the cluster and all
// SimNet clients live in one process), which keeps the protocol —
// versioned map, StatusWrongShard carrying the server's generation,
// client refresh-and-retry — exactly what the wire version would use.
package shard

import (
	"sync"
	"sync/atomic"

	"amoeba/internal/amnet"
	"amoeba/internal/cap"
)

// Map is an immutable snapshot of the object→shard assignment for one
// port. Never mutate a Map in place: derive a successor with
// WithOverride/WithMachine, which bumps Gen.
type Map struct {
	// Gen is the map generation, bumped on every change. Servers
	// stamp it into StatusWrongShard replies; clients use it to tell
	// "my map is stale" from "the server disagrees with the current
	// map" (the latter self-heals on the next generation bump).
	Gen uint64
	// N is the number of shards (fixed at boot; resharding is a
	// documented non-goal for now).
	N int
	// Machines[i] is the machine currently serving shard i — the
	// group primary when the shard is a replication group.
	Machines []amnet.MachineID
	// overrides maps individual migrated objects to their new shard,
	// layered over the hash rule.
	overrides map[uint32]int
}

// NewMap builds a generation-1 map with pure hash placement.
func NewMap(machines []amnet.MachineID) *Map {
	ms := make([]amnet.MachineID, len(machines))
	copy(ms, machines)
	return &Map{Gen: 1, N: len(ms), Machines: ms}
}

// Home returns the shard index owning obj: the override if one exists,
// otherwise obj mod N.
func (m *Map) Home(obj uint32) int {
	obj &= cap.ObjectMask
	if len(m.overrides) > 0 {
		if s, ok := m.overrides[obj]; ok {
			return s
		}
	}
	return int(obj % uint32(m.N))
}

// Machine returns the machine serving obj's home shard.
func (m *Map) Machine(obj uint32) amnet.MachineID {
	return m.Machines[m.Home(obj)]
}

// Overridden reports whether obj has a migration override.
func (m *Map) Overridden(obj uint32) bool {
	_, ok := m.overrides[obj&cap.ObjectMask]
	return ok
}

// clone copies m with Gen+1 so the caller can edit the copy.
func (m *Map) clone() *Map {
	n := &Map{Gen: m.Gen + 1, N: m.N}
	n.Machines = make([]amnet.MachineID, len(m.Machines))
	copy(n.Machines, m.Machines)
	if len(m.overrides) > 0 {
		n.overrides = make(map[uint32]int, len(m.overrides))
		for k, v := range m.overrides {
			n.overrides[k] = v
		}
	}
	return n
}

// WithOverride derives a successor map that sends obj to shard dst.
// If dst is obj's hash home the override is dropped instead (the
// object moved back), keeping the override set minimal.
func (m *Map) WithOverride(obj uint32, dst int) *Map {
	obj &= cap.ObjectMask
	n := m.clone()
	if int(obj%uint32(n.N)) == dst {
		delete(n.overrides, obj)
		return n
	}
	if n.overrides == nil {
		n.overrides = make(map[uint32]int, 1)
	}
	n.overrides[obj] = dst
	return n
}

// WithMachine derives a successor map with shard idx served by at —
// the failover path: the shard's objects stay put, only the address
// changes.
func (m *Map) WithMachine(idx int, at amnet.MachineID) *Map {
	n := m.clone()
	n.Machines[idx] = at
	return n
}

// Atlas holds the current Map per sharded port. Lookups are lock-free
// (one atomic load plus a read of an immutable Go map) and
// allocation-free; edits copy.
type Atlas struct {
	mu     sync.Mutex // serializes writers
	byPort atomic.Pointer[map[cap.Port]*atomic.Pointer[Map]]
}

// NewAtlas returns an empty atlas.
func NewAtlas() *Atlas { return &Atlas{} }

// Lookup returns the current map for p, or nil if p is not sharded.
func (a *Atlas) Lookup(p cap.Port) *Map {
	tab := a.byPort.Load()
	if tab == nil {
		return nil
	}
	slot, ok := (*tab)[p]
	if !ok {
		return nil
	}
	return slot.Load()
}

// Register installs the initial map for p (replacing any prior one).
func (a *Atlas) Register(p cap.Port, m *Map) {
	a.mu.Lock()
	defer a.mu.Unlock()
	old := a.byPort.Load()
	next := make(map[cap.Port]*atomic.Pointer[Map], 1)
	if old != nil {
		for k, v := range *old {
			next[k] = v
		}
	}
	if slot, ok := next[p]; ok {
		slot.Store(m)
	} else {
		slot = new(atomic.Pointer[Map])
		slot.Store(m)
		next[p] = slot
	}
	a.byPort.Store(&next)
}

// Update applies fn to p's current map and installs the result
// atomically with respect to other writers. fn must derive (not
// mutate) and may return nil to abort; Update returns the installed
// map, or nil if p is unknown or fn aborted.
func (a *Atlas) Update(p cap.Port, fn func(*Map) *Map) *Map {
	a.mu.Lock()
	defer a.mu.Unlock()
	tab := a.byPort.Load()
	if tab == nil {
		return nil
	}
	slot, ok := (*tab)[p]
	if !ok {
		return nil
	}
	next := fn(slot.Load())
	if next == nil {
		return nil
	}
	slot.Store(next)
	return next
}

// View is one server's perspective on one port's map: "am I shard
// self, and do I own this object right now?" Handed to svc.Kernel so
// dispatch can answer StatusWrongShard without knowing about clusters.
type View struct {
	atlas *Atlas
	port  cap.Port
	self  int
}

// NewView builds the view for shard self of port p.
func NewView(a *Atlas, p cap.Port, self int) *View {
	return &View{atlas: a, port: p, self: self}
}

// Owns reports whether this shard currently owns obj. A port with no
// registered map is unsharded: everything is owned.
func (v *View) Owns(obj uint32) bool {
	m := v.atlas.Lookup(v.port)
	return m == nil || m.Home(obj) == v.self
}

// Gen returns the current map generation (0 if unsharded).
func (v *View) Gen() uint64 {
	m := v.atlas.Lookup(v.port)
	if m == nil {
		return 0
	}
	return m.Gen
}

// Self returns this view's shard index.
func (v *View) Self() int { return v.self }
