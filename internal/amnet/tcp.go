package amnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"amoeba/internal/wire"
)

// TCPNet implements NIC over real TCP, for multi-process clusters run
// by cmd/amoebad. A static registry maps every MachineID to a TCP
// address; each machine listens on its own address and dials peers on
// demand, caching connections. Broadcast is sent peer-by-peer (the
// paper notes LOCATE can be "carried out efficiently, even in a
// network without broadcasting").
//
// Source addresses: a frame's claimed Src is accepted only if the
// remote host matches the registry entry for that Src, approximating
// the unforgeable hardware source of §2.4 (host granularity: processes
// sharing a host could impersonate one another; real deployments want
// per-machine hosts, as in the paper).
type TCPNet struct {
	id       MachineID
	registry map[MachineID]string
	ln       net.Listener

	mu       sync.Mutex
	conns    map[MachineID]net.Conn
	accepted map[net.Conn]struct{}
	in       chan Frame
	closed   bool
	wg       sync.WaitGroup
}

var _ NIC = (*TCPNet)(nil)

// tcpMagic guards against cross-protocol noise.
const tcpMagic = 0xA0EB

// NewTCPNet attaches machine id to the cluster described by registry
// (MachineID → "host:port"). The registry must contain id; its entry
// is listened on. Registry entries with port 0 pick an ephemeral port;
// Addr reports the actual address.
func NewTCPNet(id MachineID, registry map[MachineID]string) (*TCPNet, error) {
	addr, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("amnet: machine %v not in registry", id)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("amnet: listen %s: %w", addr, err)
	}
	reg := make(map[MachineID]string, len(registry))
	for k, v := range registry {
		reg[k] = v
	}
	reg[id] = ln.Addr().String()
	t := &TCPNet{
		id:       id,
		registry: reg,
		ln:       ln,
		conns:    make(map[MachineID]net.Conn),
		accepted: make(map[net.Conn]struct{}),
		in:       make(chan Frame, 256),
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// ID implements NIC.
func (t *TCPNet) ID() MachineID { return t.id }

// Addr returns the address this machine actually listens on.
func (t *TCPNet) Addr() string { return t.ln.Addr().String() }

// SetPeer updates (or adds) a peer's address, for clusters whose
// members bind ephemeral ports and learn each other's addresses after
// startup. Existing cached connections to the peer are dropped.
func (t *TCPNet) SetPeer(id MachineID, addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.registry[id] = addr
	if c, ok := t.conns[id]; ok {
		c.Close()
		delete(t.conns, id)
	}
}

// Registry returns a copy of the cluster map with this machine's
// resolved address.
func (t *TCPNet) Registry() map[MachineID]string {
	out := make(map[MachineID]string, len(t.registry))
	for k, v := range t.registry {
		out[k] = v
	}
	return out
}

// Send implements NIC.
func (t *TCPNet) Send(dst MachineID, payload []byte) error {
	if len(payload) > MTU {
		return fmt.Errorf("%w: %d bytes", ErrTooLarge, len(payload))
	}
	if dst == BroadcastID {
		// Straight to the fan-out: broadcast copies per recipient
		// anyway, so wrapping payload in a pooled buffer first would
		// only add a copy.
		return t.broadcast(payload)
	}
	return t.SendBuf(dst, wire.NewFrom(payload))
}

// SendBuf implements NIC: the 14-byte transport header is prepended in
// b's headroom and the payload goes to the socket from the same
// backing array; b is released once written (or on any error path).
func (t *TCPNet) SendBuf(dst MachineID, b *wire.Buf) error {
	if b.Len() > MTU {
		b.Release()
		return fmt.Errorf("%w: %d bytes", ErrTooLarge, b.Len())
	}
	if dst == BroadcastID {
		err := t.broadcast(b.Bytes())
		b.Release()
		return err
	}
	if dst == t.id {
		t.loopbackBuf(b)
		return nil
	}
	return t.sendTo(dst, b)
}

// Broadcast implements NIC.
func (t *TCPNet) Broadcast(payload []byte) error { return t.Send(BroadcastID, payload) }

// broadcast is best-effort, like a real broadcast medium: peers that
// are down simply miss the frame. Unlike the simulated LAN, the frame
// is also delivered locally — a TCP "machine" is a whole daemon, and
// services inside it (the flat file server locating a co-resident
// block server) must be reachable by broadcast too.
func (t *TCPNet) broadcast(payload []byte) error {
	t.loopbackBuf(wire.NewFrom(payload))
	t.mu.Lock()
	ids := make([]MachineID, 0, len(t.registry))
	for id := range t.registry {
		if id != t.id {
			ids = append(ids, id)
		}
	}
	t.mu.Unlock()
	for _, id := range ids {
		_ = t.sendTo(id, wire.NewFrom(payload))
	}
	return nil
}

// loopbackBuf owns b: it is handed to the local queue or released.
func (t *TCPNet) loopbackBuf(b *wire.Buf) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		b.Release()
		return
	}
	select {
	case t.in <- Frame{Src: t.id, Dst: t.id, Payload: b.Bytes(), Buf: b}:
	default:
		b.Release()
	}
}

// sendTo owns b; the transport header goes into b's headroom so header
// and payload leave in one Write from one backing array.
func (t *TCPNet) sendTo(dst MachineID, b *wire.Buf) error {
	payloadLen := b.Len()
	conn, err := t.conn(dst)
	if err != nil {
		b.Release()
		return err
	}
	hdr := b.Prepend(14)
	binary.BigEndian.PutUint16(hdr[0:], tcpMagic)
	binary.BigEndian.PutUint32(hdr[2:], uint32(t.id))
	binary.BigEndian.PutUint32(hdr[6:], uint32(dst))
	binary.BigEndian.PutUint32(hdr[10:], uint32(payloadLen))
	t.mu.Lock()
	defer t.mu.Unlock()
	defer b.Release()
	if t.closed {
		return ErrClosed
	}
	if _, err := conn.Write(b.Bytes()); err != nil {
		delete(t.conns, dst)
		conn.Close()
		return fmt.Errorf("amnet: send to %v: %w", dst, err)
	}
	return nil
}

// conn returns a cached or fresh connection to dst.
func (t *TCPNet) conn(dst MachineID) (net.Conn, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, ErrClosed
	}
	if c, ok := t.conns[dst]; ok {
		t.mu.Unlock()
		return c, nil
	}
	addr, ok := t.registry[dst]
	t.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrNoRoute, dst)
	}
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("amnet: dial %v (%s): %w", dst, addr, err)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		c.Close()
		return nil, ErrClosed
	}
	if existing, ok := t.conns[dst]; ok {
		c.Close()
		return existing, nil
	}
	t.conns[dst] = c
	return c, nil
}

// Recv implements NIC.
func (t *TCPNet) Recv() <-chan Frame { return t.in }

// Close implements NIC.
func (t *TCPNet) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	for _, c := range t.conns {
		c.Close()
	}
	t.conns = map[MachineID]net.Conn{}
	for c := range t.accepted {
		c.Close()
	}
	t.accepted = map[net.Conn]struct{}{}
	t.mu.Unlock()
	t.ln.Close()
	t.wg.Wait()
	t.mu.Lock()
	close(t.in)
	t.mu.Unlock()
	return nil
}

func (t *TCPNet) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.accepted[conn] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

func (t *TCPNet) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		conn.Close()
		t.mu.Lock()
		delete(t.accepted, conn)
		t.mu.Unlock()
	}()
	remoteHost, _, _ := net.SplitHostPort(conn.RemoteAddr().String())
	for {
		var hdr [14]byte
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return
		}
		if binary.BigEndian.Uint16(hdr[0:]) != tcpMagic {
			return // protocol violation: drop the connection
		}
		src := MachineID(binary.BigEndian.Uint32(hdr[2:]))
		dst := MachineID(binary.BigEndian.Uint32(hdr[6:]))
		n := binary.BigEndian.Uint32(hdr[10:])
		if n > MTU {
			return
		}
		b := wire.Get(0, int(n))
		if _, err := io.ReadFull(conn, b.Extend(int(n))); err != nil {
			b.Release()
			return
		}
		if !t.sourcePlausible(src, remoteHost) {
			b.Release()
			continue // forged source: drop the frame
		}
		t.mu.Lock()
		closed := t.closed
		delivered := false
		if !closed {
			select {
			case t.in <- Frame{Src: src, Dst: dst, Payload: b.Bytes(), Buf: b}:
				delivered = true
			default:
			}
		}
		t.mu.Unlock()
		if !delivered {
			b.Release()
		}
		if closed {
			return
		}
	}
}

// sourcePlausible checks the claimed source machine against the
// connection's remote host.
func (t *TCPNet) sourcePlausible(src MachineID, remoteHost string) bool {
	addr, ok := t.registry[src]
	if !ok {
		return false
	}
	host, _, err := net.SplitHostPort(addr)
	if err != nil {
		return false
	}
	if host == "" || host == "0.0.0.0" || host == "::" {
		return true // wildcard listener: cannot pin a host
	}
	return hostsEqual(host, remoteHost)
}

func hostsEqual(a, b string) bool {
	if a == b {
		return true
	}
	ipA, ipB := net.ParseIP(a), net.ParseIP(b)
	if ipA != nil && ipB != nil {
		if ipA.Equal(ipB) {
			return true
		}
		// Loopback is loopback: 127.0.0.1 vs ::1 both mean "this host".
		return ipA.IsLoopback() && ipB.IsLoopback()
	}
	return false
}

// ErrBadRegistry is returned by cluster helpers for malformed
// registries.
var ErrBadRegistry = errors.New("amnet: bad registry")
