// Package amnet is the network substrate under the Amoeba stack: the
// broadcast LAN the paper assumes, with machines attached through NICs
// that stamp an unforgeable hardware source address on every frame
// ("in nearly all networks an intruder can forge nearly all parts of a
// message being sent except the source address, which is supplied by
// the network interface hardware", §2.4).
//
// Two implementations share one interface: SimNet, an in-memory network
// with configurable latency, loss and wiretaps (the paper's "building
// full of rooms with wall sockets"); and a TCP transport for running
// real multi-process clusters. The F-box (package fbox) interposes on a
// NIC; the simulated network is the substitute for the paper's VLSI
// F-box placement — hosts built on this stack structurally cannot emit
// or receive a frame except through their F-box.
package amnet

import (
	"errors"
	"fmt"

	"amoeba/internal/wire"
)

// MachineID identifies a machine (a network attachment point). It is
// the "source machine" of §2.4: stamped by the network, not by the
// sender's software.
type MachineID uint32

// BroadcastID addresses a frame to every attached machine. LOCATE uses
// it to find which machine serves a port.
const BroadcastID MachineID = 0xffffffff

// String renders the machine id.
func (m MachineID) String() string {
	if m == BroadcastID {
		return "m*"
	}
	return fmt.Sprintf("m%d", uint32(m))
}

// Frame is the unit the wire carries.
type Frame struct {
	// Src is the hardware-stamped source machine. Receivers may trust
	// it exactly as far as the underlying network allows source
	// forgery (SimNet: only via an explicitly configured forging tap).
	Src MachineID
	// Dst is the destination machine, or BroadcastID.
	Dst MachineID
	// Payload is the frame body. Receivers must treat it as untrusted.
	Payload []byte
	// Buf, when non-nil, is the pooled buffer backing Payload. The
	// receiver owns it: call Release (or Frame.Release) once the
	// payload and everything aliasing it are done with. Releasing is
	// optional — an unreleased buffer is garbage-collected — but the
	// hot paths release, which is what keeps the pool warm.
	Buf *wire.Buf
}

// Release returns the frame's pooled buffer (if any) to the pool. The
// payload is invalid afterwards.
func (f Frame) Release() {
	if f.Buf != nil {
		f.Buf.Release()
	}
}

// NIC is one machine's network attachment.
type NIC interface {
	// ID returns this machine's address.
	ID() MachineID
	// Send transmits payload to dst. The network stamps this NIC's ID
	// as the frame source. The payload is copied; the caller keeps
	// ownership (see SendBuf for the zero-copy path).
	Send(dst MachineID, payload []byte) error
	// SendBuf transmits the contents of b to dst, taking ownership of
	// b: the network prepends any transport header it needs in b's
	// headroom, hands the same backing array to the receiver where it
	// can, and releases b when the frame leaves the machine. The
	// caller must not touch b afterwards, success or failure.
	SendBuf(dst MachineID, b *wire.Buf) error
	// Broadcast transmits payload to every attached machine. The
	// simulated LAN excludes the sender (hardware semantics); the TCP
	// transport includes it, because a TCP "machine" is a whole daemon
	// whose services must be able to LOCATE one another. Best effort:
	// unreachable peers just miss the frame.
	Broadcast(payload []byte) error
	// Recv returns the channel of inbound frames. It is closed when
	// the NIC is closed or detached.
	Recv() <-chan Frame
	// Close detaches the NIC. Further sends fail with ErrClosed.
	Close() error
}

// ErrClosed is returned by operations on a detached NIC.
var ErrClosed = errors.New("amnet: NIC closed")

// ErrNoRoute is returned when the destination machine is not attached.
var ErrNoRoute = errors.New("amnet: no route to machine")

// ErrTooLarge is returned when a payload exceeds the network MTU.
var ErrTooLarge = errors.New("amnet: payload exceeds MTU")

// MTU is the largest payload a frame may carry. Amoeba messages above
// this are rejected; the RPC layer documents the resulting request
// size limit (the paper's Amoeba used 32K transactions; we allow 64K
// plus headroom for headers).
const MTU = 1 << 17
