package amnet

import (
	"fmt"
	"sync"
	"time"

	"amoeba/internal/crypto"
	"amoeba/internal/wire"
)

// SimNet is the in-memory broadcast LAN used by tests, examples and
// experiments. It delivers frames between attached NICs with optional
// latency and loss, supports wiretaps (passive capture of every frame,
// the §2.4 intruder) and — only when explicitly enabled — source-forging
// injection, to demonstrate why the key-matrix scheme leans on the
// unforgeable source address.
type SimNet struct {
	cfg SimConfig

	mu      sync.RWMutex
	nextID  MachineID
	nics    map[MachineID]*simNIC
	taps    []*Tap
	cut     map[[2]MachineID]bool // severed pairs (symmetric partitions)
	cutDir  map[[2]MachineID]bool // severed directions {src, dst} (gray links)
	closed  bool
	stats   Stats
	statsMu sync.Mutex
}

// SimConfig tunes the simulated network. The zero value is a perfect,
// instantaneous LAN.
type SimConfig struct {
	// Latency delays every delivery by a fixed duration.
	Latency time.Duration
	// Jitter adds a uniformly random extra delay in [0, Jitter).
	Jitter time.Duration
	// LossRate drops each frame with this probability (0..1).
	LossRate float64
	// Duplicate delivers each frame twice with this probability
	// (0..1) — the classic retransmit-crossed-with-reply fault that
	// at-least-once RPC must tolerate.
	Duplicate float64
	// Reorder holds each frame back with this probability (0..1),
	// delivering it after ReorderWindow so a later frame can overtake
	// it.
	Reorder float64
	// ReorderWindow is how long a reordered frame is held (default
	// 1ms when Reorder > 0).
	ReorderWindow time.Duration
	// AllowSourceForgery permits Tap.InjectAs to forge source
	// addresses. Leave false to model the paper's assumption; set true
	// to run the replay-attack-succeeds ablation.
	AllowSourceForgery bool
	// QueueLen is each NIC's inbound queue length (default 256).
	// Frames arriving at a full queue are dropped, like a real NIC.
	QueueLen int
	// Seed makes loss and jitter deterministic; 0 uses a fixed default
	// so simulations are reproducible by default.
	Seed uint64
}

// Stats counts network activity, for experiments.
type Stats struct {
	Sent       uint64 // frames handed to the network
	Delivered  uint64 // frame deliveries (broadcast counts each copy)
	Lost       uint64 // frames dropped by the loss model
	Overrun    uint64 // frames dropped at a full receive queue
	Duplicated uint64 // extra copies delivered by the duplication model
	Reordered  uint64 // frames held back by the reordering model
}

// NewSimNet builds an empty simulated network.
func NewSimNet(cfg SimConfig) *SimNet {
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = 256
	}
	if cfg.Seed == 0 {
		cfg.Seed = 0xA0EBA
	}
	if cfg.Reorder > 0 && cfg.ReorderWindow <= 0 {
		cfg.ReorderWindow = time.Millisecond
	}
	return &SimNet{
		cfg:    cfg,
		nextID: 1,
		nics:   make(map[MachineID]*simNIC),
		cut:    make(map[[2]MachineID]bool),
		cutDir: make(map[[2]MachineID]bool),
	}
}

// Attach adds a machine and returns its NIC.
func (n *SimNet) Attach() (NIC, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	id := n.nextID
	n.nextID++
	nic := &simNIC{
		net: n,
		id:  id,
		in:  make(chan Frame, n.cfg.QueueLen),
		rnd: crypto.NewSeededSource(n.cfg.Seed ^ uint64(id)*0x9e3779b97f4a7c15),
	}
	n.nics[id] = nic
	return nic, nil
}

// Tap attaches a passive wiretap that receives a copy of every frame
// on the network — the §2.4 intruder who "can easily capture messages".
// A tap cannot transmit unless the network allows source forgery.
func (n *SimNet) Tap() (*Tap, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	t := &Tap{net: n, in: make(chan Frame, n.cfg.QueueLen)}
	n.taps = append(n.taps, t)
	return t, nil
}

// Partition severs the link between two machines in both directions.
func (n *SimNet) Partition(a, b MachineID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cut[pairKey(a, b)] = true
}

// Heal restores the link between two machines, clearing symmetric and
// one-way cuts alike.
func (n *SimNet) Heal(a, b MachineID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.cut, pairKey(a, b))
	delete(n.cutDir, [2]MachineID{a, b})
	delete(n.cutDir, [2]MachineID{b, a})
}

// PartitionOneWay severs the link from a to b in that direction only:
// a's frames to b vanish, b still reaches a. This is the gray network
// fault classic failure detectors are blind to — a primary that can
// send heartbeats but cannot hear acknowledgements looks perfectly
// healthy to everyone but itself.
func (n *SimNet) PartitionOneWay(a, b MachineID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cutDir[[2]MachineID{a, b}] = true
}

// HealOneWay restores the a→b direction only.
func (n *SimNet) HealOneWay(a, b MachineID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.cutDir, [2]MachineID{a, b})
}

// FlapLink cuts and heals the a↔b link on a fixed cadence — the loose
// cable fault: up for upFor, down for downFor, repeatedly. It returns
// an idempotent stop function that heals the link and waits for the
// flapper to exit; tests must call it before tearing the network down.
func (n *SimNet) FlapLink(a, b MachineID, upFor, downFor time.Duration) (stop func()) {
	done := make(chan struct{})
	exited := make(chan struct{})
	go func() {
		defer close(exited)
		for {
			select {
			case <-done:
				return
			case <-time.After(upFor):
			}
			n.Partition(a, b)
			select {
			case <-done:
				return
			case <-time.After(downFor):
			}
			n.Heal(a, b)
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			<-exited
			n.Heal(a, b)
		})
	}
}

// severed reports whether src→dst is cut, by a symmetric partition or
// a one-way cut in this direction; callers hold n.mu.
func (n *SimNet) severed(src, dst MachineID) bool {
	return n.cut[pairKey(src, dst)] || n.cutDir[[2]MachineID{src, dst}]
}

func pairKey(a, b MachineID) [2]MachineID {
	if a > b {
		a, b = b, a
	}
	return [2]MachineID{a, b}
}

// Stats returns a snapshot of the network counters.
func (n *SimNet) Stats() Stats {
	n.statsMu.Lock()
	defer n.statsMu.Unlock()
	return n.stats
}

// Close detaches every NIC and tap.
func (n *SimNet) Close() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil
	}
	n.closed = true
	for _, nic := range n.nics {
		nic.closeLocked()
	}
	n.nics = map[MachineID]*simNIC{}
	for _, t := range n.taps {
		t.closeOnce()
	}
	n.taps = nil
	return nil
}

// cloneFrame duplicates a frame with its own pooled backing buffer,
// for the cases where one transmitted frame must reach more than one
// owner (broadcast fan-out, wiretaps, fault-injected duplicates).
func cloneFrame(f Frame) Frame {
	b := f.Buf.Clone()
	return Frame{Src: f.Src, Dst: f.Dst, Payload: b.Bytes(), Buf: b}
}

// transmit is the core delivery path. src has already been stamped and
// f.Buf is owned by the network from here on: the unicast fast path
// hands the very buffer the sender encoded into to the receiver (the
// sender gave up ownership at SendBuf, so nobody can mutate an
// in-flight frame); copies are made only where one frame needs several
// owners — broadcast, wiretaps and duplication faults.
func (n *SimNet) transmit(f Frame) error {
	if len(f.Payload) > MTU {
		f.Release()
		return fmt.Errorf("%w: %d bytes", ErrTooLarge, len(f.Payload))
	}
	n.mu.RLock()
	if n.closed {
		n.mu.RUnlock()
		f.Release()
		return ErrClosed
	}
	var targets []*simNIC
	if f.Dst == BroadcastID {
		targets = make([]*simNIC, 0, len(n.nics))
		for id, nic := range n.nics {
			if id != f.Src && !n.severed(f.Src, id) {
				targets = append(targets, nic)
			}
		}
	} else {
		nic, ok := n.nics[f.Dst]
		if !ok {
			n.mu.RUnlock()
			f.Release()
			return fmt.Errorf("%w: %v", ErrNoRoute, f.Dst)
		}
		if !n.severed(f.Src, f.Dst) {
			targets = []*simNIC{nic}
		}
	}
	taps := n.taps
	n.mu.RUnlock()

	n.bumpSent()
	// Taps see every frame, before loss (they sit on the wire).
	for _, t := range taps {
		t.deliver(cloneFrame(f))
	}
	if len(targets) == 0 {
		f.Release()
		return nil
	}
	for _, nic := range targets[1:] {
		n.deliverTo(nic, cloneFrame(f))
	}
	n.deliverTo(targets[0], f)
	return nil
}

// deliverTo owns f: every path either hands it to the NIC queue or
// releases it.
func (n *SimNet) deliverTo(nic *simNIC, f Frame) {
	if n.cfg.LossRate > 0 && nic.chance(n.cfg.LossRate) {
		n.bumpLost()
		f.Release()
		return
	}
	delay := n.cfg.Latency
	if n.cfg.Jitter > 0 {
		delay += time.Duration(nic.rnd.Uint64() % uint64(n.cfg.Jitter))
	}
	// Reordering: hold the frame past the window so frames sent after
	// it can overtake it.
	if n.cfg.Reorder > 0 && nic.chance(n.cfg.Reorder) {
		delay += n.cfg.ReorderWindow
		n.bumpReordered()
	}
	// Duplication: a second copy arrives shortly after the first —
	// the shape a retransmission crossing its reply produces.
	if n.cfg.Duplicate > 0 && nic.chance(n.cfg.Duplicate) {
		n.bumpDuplicated()
		dupFrame := cloneFrame(f)
		dup := delay + n.cfg.ReorderWindow + 100*time.Microsecond
		time.AfterFunc(dup, func() { nic.deliver(dupFrame, n) })
	}
	if delay == 0 {
		nic.deliver(f, n)
		return
	}
	time.AfterFunc(delay, func() { nic.deliver(f, n) })
}

func (n *SimNet) bumpSent()       { n.statsMu.Lock(); n.stats.Sent++; n.statsMu.Unlock() }
func (n *SimNet) bumpLost()       { n.statsMu.Lock(); n.stats.Lost++; n.statsMu.Unlock() }
func (n *SimNet) bumpDelivered()  { n.statsMu.Lock(); n.stats.Delivered++; n.statsMu.Unlock() }
func (n *SimNet) bumpOverrun()    { n.statsMu.Lock(); n.stats.Overrun++; n.statsMu.Unlock() }
func (n *SimNet) bumpDuplicated() { n.statsMu.Lock(); n.stats.Duplicated++; n.statsMu.Unlock() }
func (n *SimNet) bumpReordered()  { n.statsMu.Lock(); n.stats.Reordered++; n.statsMu.Unlock() }

// simNIC implements NIC on a SimNet.
type simNIC struct {
	net *SimNet
	id  MachineID
	rnd *crypto.SeededSource

	mu     sync.Mutex
	in     chan Frame
	closed bool
}

var _ NIC = (*simNIC)(nil)

func (nic *simNIC) ID() MachineID { return nic.id }

func (nic *simNIC) Send(dst MachineID, payload []byte) error {
	return nic.SendBuf(dst, wire.NewFrom(payload))
}

// SendBuf implements NIC: ownership of b transfers to the network,
// which releases it on every non-delivery path.
func (nic *simNIC) SendBuf(dst MachineID, b *wire.Buf) error {
	nic.mu.Lock()
	closed := nic.closed
	nic.mu.Unlock()
	if closed {
		b.Release()
		return ErrClosed
	}
	return nic.net.transmit(Frame{Src: nic.id, Dst: dst, Payload: b.Bytes(), Buf: b})
}

func (nic *simNIC) Broadcast(payload []byte) error {
	return nic.Send(BroadcastID, payload)
}

func (nic *simNIC) Recv() <-chan Frame { return nic.in }

func (nic *simNIC) Close() error {
	nic.net.mu.Lock()
	delete(nic.net.nics, nic.id)
	nic.net.mu.Unlock()
	nic.mu.Lock()
	defer nic.mu.Unlock()
	nic.closeInner()
	return nil
}

// closeLocked is called with the network lock held (during net.Close).
func (nic *simNIC) closeLocked() {
	nic.mu.Lock()
	defer nic.mu.Unlock()
	nic.closeInner()
}

func (nic *simNIC) closeInner() {
	if !nic.closed {
		nic.closed = true
		close(nic.in)
	}
}

func (nic *simNIC) deliver(f Frame, n *SimNet) {
	nic.mu.Lock()
	defer nic.mu.Unlock()
	if nic.closed {
		f.Release()
		return
	}
	select {
	case nic.in <- f:
		n.bumpDelivered()
	default:
		n.bumpOverrun()
		f.Release()
	}
}

// chance returns true with the given probability, deterministically
// from the NIC's seeded source.
func (nic *simNIC) chance(p float64) bool {
	const scale = 1 << 53
	return float64(nic.rnd.Uint64()>>11)/scale < p
}

// Tap is a passive wiretap: a promiscuous receiver of every frame on
// the network. It models the §2.4 intruder. InjectAs is only permitted
// when the network was configured with AllowSourceForgery.
type Tap struct {
	net *SimNet

	mu     sync.Mutex
	in     chan Frame
	closed bool
}

// Recv returns the channel of captured frames.
func (t *Tap) Recv() <-chan Frame { return t.in }

// InjectAs transmits a frame with a forged source address. It fails
// with ErrForgeryForbidden unless the network explicitly allows source
// forgery; the paper's security argument assumes it does not.
func (t *Tap) InjectAs(src, dst MachineID, payload []byte) error {
	if !t.net.cfg.AllowSourceForgery {
		return ErrForgeryForbidden
	}
	b := wire.NewFrom(payload)
	return t.net.transmit(Frame{Src: src, Dst: dst, Payload: b.Bytes(), Buf: b})
}

// ErrForgeryForbidden is returned by Tap.InjectAs on networks that
// enforce hardware source addresses.
var ErrForgeryForbidden = fmt.Errorf("amnet: source address forgery forbidden by network")

func (t *Tap) deliver(f Frame) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		f.Release()
		return
	}
	select {
	case t.in <- f:
	default: // taps never block the network
		f.Release()
	}
}

func (t *Tap) closeOnce() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.closed {
		t.closed = true
		close(t.in)
	}
}

// Close detaches the tap.
func (t *Tap) Close() error {
	t.net.mu.Lock()
	for i, other := range t.net.taps {
		if other == t {
			t.net.taps = append(t.net.taps[:i], t.net.taps[i+1:]...)
			break
		}
	}
	t.net.mu.Unlock()
	t.closeOnce()
	return nil
}
