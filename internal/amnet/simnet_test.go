package amnet

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

func recvWithin(t *testing.T, ch <-chan Frame, d time.Duration) Frame {
	t.Helper()
	select {
	case f, ok := <-ch:
		if !ok {
			t.Fatal("channel closed")
		}
		return f
	case <-time.After(d):
		t.Fatal("timed out waiting for frame")
	}
	return Frame{}
}

func TestSimNetPointToPoint(t *testing.T) {
	n := NewSimNet(SimConfig{})
	defer n.Close()
	a, err := n.Attach()
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Attach()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send(b.ID(), []byte("hello")); err != nil {
		t.Fatal(err)
	}
	f := recvWithin(t, b.Recv(), time.Second)
	if f.Src != a.ID() || f.Dst != b.ID() || string(f.Payload) != "hello" {
		t.Fatalf("got frame %+v", f)
	}
}

func TestSimNetSourceIsStamped(t *testing.T) {
	// The sender cannot choose its source address: it is the NIC's ID.
	n := NewSimNet(SimConfig{})
	defer n.Close()
	a, _ := n.Attach()
	b, _ := n.Attach()
	if err := a.Send(b.ID(), []byte("x")); err != nil {
		t.Fatal(err)
	}
	f := recvWithin(t, b.Recv(), time.Second)
	if f.Src != a.ID() {
		t.Fatalf("source = %v, want %v", f.Src, a.ID())
	}
}

func TestSimNetBroadcast(t *testing.T) {
	n := NewSimNet(SimConfig{})
	defer n.Close()
	a, _ := n.Attach()
	b, _ := n.Attach()
	c, _ := n.Attach()
	if err := a.Broadcast([]byte("all")); err != nil {
		t.Fatal(err)
	}
	for _, nic := range []NIC{b, c} {
		f := recvWithin(t, nic.Recv(), time.Second)
		if string(f.Payload) != "all" || f.Dst != BroadcastID {
			t.Fatalf("broadcast frame %+v", f)
		}
	}
	// Sender must not hear its own broadcast.
	select {
	case f := <-a.Recv():
		t.Fatalf("sender received own broadcast: %+v", f)
	case <-time.After(20 * time.Millisecond):
	}
}

func TestSimNetNoRoute(t *testing.T) {
	n := NewSimNet(SimConfig{})
	defer n.Close()
	a, _ := n.Attach()
	if err := a.Send(999, []byte("x")); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("err = %v, want ErrNoRoute", err)
	}
}

func TestSimNetMTU(t *testing.T) {
	n := NewSimNet(SimConfig{})
	defer n.Close()
	a, _ := n.Attach()
	b, _ := n.Attach()
	if err := a.Send(b.ID(), make([]byte, MTU+1)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
	if err := a.Send(b.ID(), make([]byte, MTU)); err != nil {
		t.Fatalf("MTU-sized frame rejected: %v", err)
	}
}

func TestSimNetPayloadIsolation(t *testing.T) {
	// Mutating the sender's buffer after Send must not affect delivery.
	n := NewSimNet(SimConfig{})
	defer n.Close()
	a, _ := n.Attach()
	b, _ := n.Attach()
	buf := []byte("original")
	if err := a.Send(b.ID(), buf); err != nil {
		t.Fatal(err)
	}
	copy(buf, "TAMPERED")
	f := recvWithin(t, b.Recv(), time.Second)
	if !bytes.Equal(f.Payload, []byte("original")) {
		t.Fatalf("payload aliased sender buffer: %q", f.Payload)
	}
}

func TestSimNetClosedNIC(t *testing.T) {
	n := NewSimNet(SimConfig{})
	defer n.Close()
	a, _ := n.Attach()
	b, _ := n.Attach()
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Send(a.ID(), []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("send on closed NIC: %v", err)
	}
	if err := a.Send(b.ID(), []byte("x")); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("send to detached NIC: %v", err)
	}
	if _, ok := <-b.Recv(); ok {
		t.Fatal("closed NIC channel still open")
	}
}

func TestSimNetPartition(t *testing.T) {
	n := NewSimNet(SimConfig{})
	defer n.Close()
	a, _ := n.Attach()
	b, _ := n.Attach()
	n.Partition(a.ID(), b.ID())
	if err := a.Send(b.ID(), []byte("x")); err != nil {
		t.Fatal(err) // partition drops silently, like a cut cable
	}
	select {
	case f := <-b.Recv():
		t.Fatalf("frame crossed partition: %+v", f)
	case <-time.After(20 * time.Millisecond):
	}
	n.Heal(a.ID(), b.ID())
	if err := a.Send(b.ID(), []byte("y")); err != nil {
		t.Fatal(err)
	}
	recvWithin(t, b.Recv(), time.Second)
}

func TestSimNetLatency(t *testing.T) {
	n := NewSimNet(SimConfig{Latency: 30 * time.Millisecond})
	defer n.Close()
	a, _ := n.Attach()
	b, _ := n.Attach()
	start := time.Now()
	if err := a.Send(b.ID(), []byte("x")); err != nil {
		t.Fatal(err)
	}
	recvWithin(t, b.Recv(), time.Second)
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Fatalf("frame arrived after %v; latency not applied", elapsed)
	}
}

func TestSimNetLoss(t *testing.T) {
	n := NewSimNet(SimConfig{LossRate: 1.0})
	defer n.Close()
	a, _ := n.Attach()
	b, _ := n.Attach()
	for i := 0; i < 10; i++ {
		if err := a.Send(b.ID(), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case f := <-b.Recv():
		t.Fatalf("frame survived 100%% loss: %+v", f)
	case <-time.After(20 * time.Millisecond):
	}
	if s := n.Stats(); s.Lost != 10 {
		t.Fatalf("Lost = %d, want 10", s.Lost)
	}
}

func TestSimNetDeterministicLoss(t *testing.T) {
	run := func() (delivered uint64) {
		n := NewSimNet(SimConfig{LossRate: 0.5, Seed: 42})
		defer n.Close()
		a, _ := n.Attach()
		b, _ := n.Attach()
		for i := 0; i < 200; i++ {
			if err := a.Send(b.ID(), []byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
		}
		return n.Stats().Delivered
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed, different deliveries: %d vs %d", a, b)
	}
}

func TestSimNetTapSeesEverything(t *testing.T) {
	n := NewSimNet(SimConfig{})
	defer n.Close()
	a, _ := n.Attach()
	b, _ := n.Attach()
	tap, err := n.Tap()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send(b.ID(), []byte("secret")); err != nil {
		t.Fatal(err)
	}
	f := recvWithin(t, tap.Recv(), time.Second)
	if string(f.Payload) != "secret" {
		t.Fatalf("tap missed the frame: %+v", f)
	}
}

func TestSimNetTapCannotForgeByDefault(t *testing.T) {
	n := NewSimNet(SimConfig{})
	defer n.Close()
	a, _ := n.Attach()
	b, _ := n.Attach()
	tap, _ := n.Tap()
	err := tap.InjectAs(a.ID(), b.ID(), []byte("forged"))
	if !errors.Is(err, ErrForgeryForbidden) {
		t.Fatalf("InjectAs = %v, want ErrForgeryForbidden", err)
	}
}

func TestSimNetTapForgeryWhenAllowed(t *testing.T) {
	n := NewSimNet(SimConfig{AllowSourceForgery: true})
	defer n.Close()
	a, _ := n.Attach()
	b, _ := n.Attach()
	tap, _ := n.Tap()
	if err := tap.InjectAs(a.ID(), b.ID(), []byte("forged")); err != nil {
		t.Fatal(err)
	}
	f := recvWithin(t, b.Recv(), time.Second)
	if f.Src != a.ID() || string(f.Payload) != "forged" {
		t.Fatalf("forged frame mangled: %+v", f)
	}
}

func TestSimNetStats(t *testing.T) {
	n := NewSimNet(SimConfig{})
	defer n.Close()
	a, _ := n.Attach()
	b, _ := n.Attach()
	c, _ := n.Attach()
	_ = a.Send(b.ID(), []byte("x"))
	_ = a.Broadcast([]byte("y"))
	// Drain to guarantee delivery accounting.
	recvWithin(t, b.Recv(), time.Second)
	recvWithin(t, b.Recv(), time.Second)
	recvWithin(t, c.Recv(), time.Second)
	s := n.Stats()
	if s.Sent != 2 || s.Delivered != 3 {
		t.Fatalf("stats = %+v, want Sent 2 Delivered 3", s)
	}
}

func TestSimNetCloseIdempotent(t *testing.T) {
	n := NewSimNet(SimConfig{})
	a, _ := n.Attach()
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(1, []byte("x")); err == nil {
		t.Fatal("send succeeded on closed network")
	}
	if _, err := n.Attach(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Attach on closed net: %v", err)
	}
	if _, err := n.Tap(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Tap on closed net: %v", err)
	}
}

func TestMachineIDString(t *testing.T) {
	if got := MachineID(3).String(); got != "m3" {
		t.Errorf("String = %q", got)
	}
	if got := BroadcastID.String(); got != "m*" {
		t.Errorf("broadcast String = %q", got)
	}
}

func TestSimNetQueueOverrun(t *testing.T) {
	n := NewSimNet(SimConfig{QueueLen: 2})
	defer n.Close()
	a, _ := n.Attach()
	b, _ := n.Attach()
	for i := 0; i < 5; i++ {
		if err := a.Send(b.ID(), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if s := n.Stats(); s.Overrun != 3 {
		t.Fatalf("Overrun = %d, want 3", s.Overrun)
	}
}

func TestSimNetJitter(t *testing.T) {
	n := NewSimNet(SimConfig{Latency: 5 * time.Millisecond, Jitter: 20 * time.Millisecond, Seed: 3})
	defer n.Close()
	a, _ := n.Attach()
	b, _ := n.Attach()
	start := time.Now()
	const count = 10
	for i := 0; i < count; i++ {
		if err := a.Send(b.ID(), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < count; i++ {
		recvWithin(t, b.Recv(), 2*time.Second)
	}
	elapsed := time.Since(start)
	if elapsed < 5*time.Millisecond {
		t.Fatalf("all frames arrived in %v; latency+jitter not applied", elapsed)
	}
}

func TestSimNetDuplicate(t *testing.T) {
	n := NewSimNet(SimConfig{Duplicate: 1.0, Seed: 11})
	defer n.Close()
	a, _ := n.Attach()
	b, _ := n.Attach()
	const count = 5
	for i := 0; i < count; i++ {
		if err := a.Send(b.ID(), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Every frame arrives twice.
	seen := map[byte]int{}
	for i := 0; i < 2*count; i++ {
		f := recvWithin(t, b.Recv(), time.Second)
		seen[f.Payload[0]]++
	}
	for i := byte(0); i < count; i++ {
		if seen[i] != 2 {
			t.Fatalf("frame %d delivered %d times, want 2", i, seen[i])
		}
	}
	if s := n.Stats(); s.Duplicated != count {
		t.Fatalf("Duplicated = %d, want %d", s.Duplicated, count)
	}
}

func TestSimNetReorder(t *testing.T) {
	// Reorder ~half the frames; with enough frames some later frame
	// must overtake an earlier held one.
	n := NewSimNet(SimConfig{Reorder: 0.5, ReorderWindow: 5 * time.Millisecond, Seed: 13})
	defer n.Close()
	a, _ := n.Attach()
	b, _ := n.Attach()
	const count = 40
	for i := 0; i < count; i++ {
		if err := a.Send(b.ID(), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	var order []byte
	for i := 0; i < count; i++ {
		order = append(order, recvWithin(t, b.Recv(), time.Second).Payload[0])
	}
	inverted := false
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			inverted = true
			break
		}
	}
	if !inverted {
		t.Fatalf("no reordering observed in %v", order)
	}
	if s := n.Stats(); s.Reordered == 0 {
		t.Fatal("Reordered counter never bumped")
	}
}

func TestSimNetFaultsDeterministic(t *testing.T) {
	// The full fault model (loss+dup+reorder) under one seed produces
	// identical counter outcomes run to run.
	run := func() Stats {
		n := NewSimNet(SimConfig{LossRate: 0.2, Duplicate: 0.2, Reorder: 0.2, Seed: 99})
		defer n.Close()
		a, _ := n.Attach()
		b, _ := n.Attach()
		for i := 0; i < 300; i++ {
			if err := a.Send(b.ID(), []byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
		}
		// Drain until quiet so delayed copies land.
		for {
			select {
			case <-b.Recv():
			case <-time.After(50 * time.Millisecond):
				s := n.Stats()
				return Stats{Sent: s.Sent, Lost: s.Lost, Duplicated: s.Duplicated, Reordered: s.Reordered}
			}
		}
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed, different fault pattern:\n%+v\n%+v", a, b)
	}
}

func TestSimNetPartitionOneWay(t *testing.T) {
	n := NewSimNet(SimConfig{})
	defer n.Close()
	a, _ := n.Attach()
	b, _ := n.Attach()
	n.PartitionOneWay(a.ID(), b.ID())
	// a → b is dark...
	if err := a.Send(b.ID(), []byte("x")); err != nil {
		t.Fatal(err)
	}
	select {
	case f := <-b.Recv():
		t.Fatalf("frame crossed one-way partition: %+v", f)
	case <-time.After(20 * time.Millisecond):
	}
	// ... but b → a still works: the defining gray-link asymmetry.
	if err := b.Send(a.ID(), []byte("y")); err != nil {
		t.Fatal(err)
	}
	recvWithin(t, a.Recv(), time.Second)

	// Broadcasts obey the direction too.
	if err := a.Broadcast([]byte("all")); err != nil {
		t.Fatal(err)
	}
	select {
	case f := <-b.Recv():
		t.Fatalf("broadcast crossed one-way partition: %+v", f)
	case <-time.After(20 * time.Millisecond):
	}

	n.HealOneWay(a.ID(), b.ID())
	if err := a.Send(b.ID(), []byte("z")); err != nil {
		t.Fatal(err)
	}
	recvWithin(t, b.Recv(), time.Second)
}

func TestSimNetHealClearsOneWay(t *testing.T) {
	n := NewSimNet(SimConfig{})
	defer n.Close()
	a, _ := n.Attach()
	b, _ := n.Attach()
	n.PartitionOneWay(a.ID(), b.ID())
	n.PartitionOneWay(b.ID(), a.ID())
	n.Heal(a.ID(), b.ID())
	if err := a.Send(b.ID(), []byte("x")); err != nil {
		t.Fatal(err)
	}
	recvWithin(t, b.Recv(), time.Second)
	if err := b.Send(a.ID(), []byte("y")); err != nil {
		t.Fatal(err)
	}
	recvWithin(t, a.Recv(), time.Second)
}

func TestSimNetFlapLink(t *testing.T) {
	n := NewSimNet(SimConfig{})
	defer n.Close()
	a, _ := n.Attach()
	b, _ := n.Attach()
	stop := n.FlapLink(a.ID(), b.ID(), 2*time.Millisecond, 2*time.Millisecond)
	// While flapping, some sends cross and (with overwhelming
	// probability over 100 spaced attempts) some are eaten.
	got := 0
	for i := 0; i < 100; i++ {
		if err := a.Send(b.ID(), []byte("x")); err != nil {
			t.Fatal(err)
		}
		time.Sleep(500 * time.Microsecond)
	}
	drain := time.After(50 * time.Millisecond)
	for {
		select {
		case <-b.Recv():
			got++
			continue
		case <-drain:
		}
		break
	}
	if got == 0 || got == 100 {
		t.Fatalf("flapping link delivered %d/100 frames, want some but not all", got)
	}
	// stop() heals: the link must be reliable again.
	stop()
	if err := a.Send(b.ID(), []byte("final")); err != nil {
		t.Fatal(err)
	}
	recvWithin(t, b.Recv(), time.Second)
}
