package amnet

import (
	"errors"
	"testing"
	"time"
)

// newTCPPair builds a two-machine loopback cluster.
func newTCPPair(t *testing.T) (*TCPNet, *TCPNet) {
	t.Helper()
	// Stage 1: machine 1 listens on an ephemeral port.
	reg := map[MachineID]string{1: "127.0.0.1:0", 2: "127.0.0.1:0"}
	a, err := NewTCPNet(1, reg)
	if err != nil {
		t.Fatal(err)
	}
	// Stage 2: machine 2's registry knows machine 1's real address.
	reg2 := map[MachineID]string{1: a.Addr(), 2: "127.0.0.1:0"}
	b, err := NewTCPNet(2, reg2)
	if err != nil {
		a.Close()
		t.Fatal(err)
	}
	// Stage 3: teach machine 1 machine 2's real address.
	a.registry[2] = b.Addr()
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

func TestTCPNetSendRecv(t *testing.T) {
	a, b := newTCPPair(t)
	if err := a.Send(b.ID(), []byte("over tcp")); err != nil {
		t.Fatal(err)
	}
	f := recvWithin(t, b.Recv(), 2*time.Second)
	if f.Src != a.ID() || string(f.Payload) != "over tcp" {
		t.Fatalf("frame %+v", f)
	}
}

func TestTCPNetBothDirections(t *testing.T) {
	a, b := newTCPPair(t)
	if err := a.Send(2, []byte("ping")); err != nil {
		t.Fatal(err)
	}
	recvWithin(t, b.Recv(), 2*time.Second)
	if err := b.Send(1, []byte("pong")); err != nil {
		t.Fatal(err)
	}
	f := recvWithin(t, a.Recv(), 2*time.Second)
	if string(f.Payload) != "pong" {
		t.Fatalf("frame %+v", f)
	}
}

func TestTCPNetLoopback(t *testing.T) {
	a, _ := newTCPPair(t)
	if err := a.Send(a.ID(), []byte("self")); err != nil {
		t.Fatal(err)
	}
	f := recvWithin(t, a.Recv(), 2*time.Second)
	if f.Src != a.ID() || string(f.Payload) != "self" {
		t.Fatalf("frame %+v", f)
	}
}

func TestTCPNetBroadcast(t *testing.T) {
	a, b := newTCPPair(t)
	if err := a.Broadcast([]byte("hear ye")); err != nil {
		t.Fatal(err)
	}
	f := recvWithin(t, b.Recv(), 2*time.Second)
	if string(f.Payload) != "hear ye" {
		t.Fatalf("frame %+v", f)
	}
}

func TestTCPNetNoRoute(t *testing.T) {
	a, _ := newTCPPair(t)
	if err := a.Send(77, []byte("x")); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("err = %v, want ErrNoRoute", err)
	}
}

func TestTCPNetUnknownMachine(t *testing.T) {
	if _, err := NewTCPNet(9, map[MachineID]string{1: "127.0.0.1:0"}); err == nil {
		t.Fatal("NewTCPNet accepted a machine not in the registry")
	}
}

func TestTCPNetMTU(t *testing.T) {
	a, b := newTCPPair(t)
	if err := a.Send(b.ID(), make([]byte, MTU+1)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestTCPNetCloseStopsRecv(t *testing.T) {
	a, b := newTCPPair(t)
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := <-b.Recv(); ok {
		t.Fatal("Recv channel open after Close")
	}
	if err := b.Send(a.ID(), []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close: %v", err)
	}
}

func TestTCPNetRegistrySnapshot(t *testing.T) {
	a, _ := newTCPPair(t)
	reg := a.Registry()
	if reg[1] != a.Addr() {
		t.Fatalf("registry[1] = %s, want %s", reg[1], a.Addr())
	}
	reg[1] = "tampered"
	if a.Registry()[1] == "tampered" {
		t.Fatal("Registry returned aliased map")
	}
}

func TestTCPNetManyFrames(t *testing.T) {
	a, b := newTCPPair(t)
	const count = 100
	for i := 0; i < count; i++ {
		if err := a.Send(b.ID(), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	got := make(map[byte]bool, count)
	deadline := time.After(5 * time.Second)
	for len(got) < count {
		select {
		case f := <-b.Recv():
			got[f.Payload[0]] = true
		case <-deadline:
			t.Fatalf("received %d/%d frames", len(got), count)
		}
	}
}

func TestHostsEqual(t *testing.T) {
	tests := []struct {
		a, b string
		want bool
	}{
		{"127.0.0.1", "127.0.0.1", true},
		{"127.0.0.1", "::1", true}, // both loopback
		{"127.0.0.1", "10.0.0.1", false},
		{"example.com", "example.com", true},
		{"example.com", "other.com", false},
	}
	for _, tc := range tests {
		if got := hostsEqual(tc.a, tc.b); got != tc.want {
			t.Errorf("hostsEqual(%q, %q) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestTCPNetSetPeer(t *testing.T) {
	a, b := newTCPPair(t)
	// Repoint machine 2 at a bogus address: sends fail.
	a.SetPeer(2, "127.0.0.1:1")
	if err := a.Send(2, []byte("x")); err == nil {
		t.Fatal("send to bogus peer succeeded")
	}
	// Restore and confirm recovery.
	a.SetPeer(2, b.Addr())
	if err := a.Send(2, []byte("y")); err != nil {
		t.Fatal(err)
	}
	recvWithin(t, b.Recv(), 2*time.Second)
}
