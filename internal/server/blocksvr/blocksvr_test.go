package blocksvr

import (
	"bytes"
	"context"
	"testing"

	"amoeba/internal/cap"
	"amoeba/internal/rpc"
	"amoeba/internal/server/servertest"
	"amoeba/internal/vdisk"
)

func newServer(t *testing.T, nblocks uint32, blockSize int) (*servertest.Rig, *Client, *vdisk.Disk) {
	t.Helper()
	r := servertest.New(t, 0xB10C)
	disk, err := vdisk.New(nblocks, blockSize)
	if err != nil {
		t.Fatal(err)
	}
	scheme, err := cap.NewScheme(cap.SchemeOneWay)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(r.NewFBox(t), scheme, r.Src, disk)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return r, NewClient(r.Client, s.PutPort()), disk
}

func TestAllocReadWriteFree(t *testing.T) {
	ctx := context.Background()
	_, b, _ := newServer(t, 16, 64)
	blk, err := b.Alloc(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Write(ctx, blk, []byte("block payload")); err != nil {
		t.Fatal(err)
	}
	got, err := b.Read(ctx, blk)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:13], []byte("block payload")) {
		t.Fatalf("read %q", got[:13])
	}
	if len(got) != 64 {
		t.Fatalf("read returned %d bytes, want full block", len(got))
	}
	if err := b.Free(ctx, blk); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Read(ctx, blk); !rpc.IsStatus(err, rpc.StatusBadCapability) {
		t.Fatalf("read of freed block: %v", err)
	}
}

func TestStat(t *testing.T) {
	ctx := context.Background()
	_, b, _ := newServer(t, 8, 32)
	bs, nb, nf, err := b.Stat(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if bs != 32 || nb != 8 || nf != 8 {
		t.Fatalf("stat = %d/%d/%d", bs, nb, nf)
	}
	if _, err := b.Alloc(ctx); err != nil {
		t.Fatal(err)
	}
	_, _, nf, err = b.Stat(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if nf != 7 {
		t.Fatalf("nfree after alloc = %d", nf)
	}
}

func TestDiskFull(t *testing.T) {
	ctx := context.Background()
	_, b, _ := newServer(t, 2, 32)
	for i := 0; i < 2; i++ {
		if _, err := b.Alloc(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := b.Alloc(ctx); !rpc.IsStatus(err, rpc.StatusServerError) {
		t.Fatalf("alloc on full disk: %v", err)
	}
}

func TestFreedBlockIsZeroedAndReusable(t *testing.T) {
	ctx := context.Background()
	_, b, _ := newServer(t, 1, 32)
	blk, err := b.Alloc(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Write(ctx, blk, bytes.Repeat([]byte{0xFF}, 32)); err != nil {
		t.Fatal(err)
	}
	if err := b.Free(ctx, blk); err != nil {
		t.Fatal(err)
	}
	blk2, err := b.Alloc(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if blk2.Object != blk.Object {
		t.Fatalf("expected block reuse, got %d then %d", blk.Object, blk2.Object)
	}
	got, err := b.Read(ctx, blk2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, 32)) {
		t.Fatal("reused block leaked previous contents")
	}
	// The old capability must not work on the recycled block.
	if _, err := b.Read(ctx, blk); !rpc.IsStatus(err, rpc.StatusBadCapability) {
		t.Fatalf("stale capability read recycled block: %v", err)
	}
}

func TestWriteTooLarge(t *testing.T) {
	ctx := context.Background()
	_, b, _ := newServer(t, 4, 32)
	blk, err := b.Alloc(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Write(ctx, blk, make([]byte, 33)); !rpc.IsStatus(err, rpc.StatusBadRequest) {
		t.Fatalf("oversized write: %v", err)
	}
}

func TestBlockRights(t *testing.T) {
	ctx := context.Background()
	_, b, _ := newServer(t, 4, 32)
	blk, err := b.Alloc(ctx)
	if err != nil {
		t.Fatal(err)
	}
	ro, err := b.Restrict(ctx, blk, cap.RightRead)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Read(ctx, ro); err != nil {
		t.Fatal(err)
	}
	if err := b.Write(ctx, ro, []byte("x")); !rpc.IsStatus(err, rpc.StatusNoPermission) {
		t.Fatalf("write with read-only: %v", err)
	}
	if err := b.Free(ctx, ro); !rpc.IsStatus(err, rpc.StatusNoPermission) {
		t.Fatalf("free with read-only: %v", err)
	}
}

func TestDiskFaultSurfacesAsServerError(t *testing.T) {
	ctx := context.Background()
	_, b, disk := newServer(t, 4, 32)
	blk, err := b.Alloc(ctx)
	if err != nil {
		t.Fatal(err)
	}
	boom := bytes.ErrTooLarge // any sentinel
	disk.SetFault(func(op string, block uint32) error {
		if op == "read" {
			return boom
		}
		return nil
	})
	if _, err := b.Read(ctx, blk); !rpc.IsStatus(err, rpc.StatusServerError) {
		t.Fatalf("disk fault surfaced as: %v", err)
	}
	disk.SetFault(nil)
	if _, err := b.Read(ctx, blk); err != nil {
		t.Fatalf("read after fault cleared: %v", err)
	}
}

func TestTooManyBlocksRejected(t *testing.T) {
	r := servertest.New(t, 1)
	disk, err := vdisk.New(cap.ObjectMask+1, 1)
	if err != nil {
		t.Fatal(err)
	}
	scheme, err := cap.NewScheme(cap.SchemeOneWay)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(r.NewFBox(t), scheme, r.Src, disk); err == nil {
		t.Fatal("accepted disk with more blocks than object numbers")
	}
}

func TestForgedBlockCapability(t *testing.T) {
	ctx := context.Background()
	_, b, _ := newServer(t, 4, 32)
	blk, err := b.Alloc(ctx)
	if err != nil {
		t.Fatal(err)
	}
	forged := blk
	forged.Check ^= 0x40
	if _, err := b.Read(ctx, forged); !rpc.IsStatus(err, rpc.StatusBadCapability) {
		t.Fatalf("forged read: %v", err)
	}
	// Guessing an unallocated block number fails too.
	forged = blk
	forged.Object = 3
	if _, err := b.Read(ctx, forged); !rpc.IsStatus(err, rpc.StatusBadCapability) {
		t.Fatalf("guessed object read: %v", err)
	}
}
