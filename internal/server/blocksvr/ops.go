package blocksvr

import "amoeba/internal/obs"

// The wire opcodes name themselves in the shared obs table — the one
// source metric labels and access-log dumps read, so a label can never
// drift from the opcode the const block defines.
func init() {
	obs.RegisterOps(map[uint16]string{
		OpAlloc: "block.alloc",
		OpRead:  "block.read",
		OpWrite: "block.write",
		OpFree:  "block.free",
		OpStat:  "block.stat",
	})
}
