// Package blocksvr implements the Amoeba block server (§3.2): "The
// block server can be requested to allocate a disk block and return a
// capability for it. Using this capability, the block can be written,
// read, or deallocated. The block server has no concept of a file."
//
// Splitting the block server from the file server lets any user build
// special-purpose file systems without touching disk storage
// management; package flatfs is exactly such a client.
package blocksvr

import (
	"context"

	"encoding/binary"
	"fmt"
	"sync"

	"amoeba/internal/cap"
	"amoeba/internal/crypto"
	"amoeba/internal/fbox"
	"amoeba/internal/rpc"
	"amoeba/internal/vdisk"
)

// Operation codes.
const (
	// OpAlloc allocates one block and returns its capability.
	OpAlloc uint16 = 0x0200 + iota
	// OpRead reads the whole block. Needs RightRead.
	OpRead
	// OpWrite replaces the block: data = block bytes (shorter writes
	// are zero-padded to the block size). Needs RightWrite.
	OpWrite
	// OpFree deallocates the block. Needs RightDestroy.
	OpFree
	// OpStat returns blockSize(4) ∥ nblocks(4) ∥ nfree(4). No
	// capability needed (it names no object).
	OpStat
)

// ErrDiskFull is reported (as a server-error status) when no blocks
// remain.
var errDiskFull = fmt.Errorf("blocksvr: disk full")

// Server is a block server instance over one virtual disk. Block
// capabilities use the block number as the object number, so the
// object table and the allocation bitmap stay aligned.
type Server struct {
	rpc   *rpc.Server
	table *cap.Table
	disk  vdisk.Store

	mu    sync.Mutex
	used  []bool
	nfree uint32
	next  uint32 // allocation cursor
}

// New builds a block server over disk. Call Start to begin serving.
func New(fb *fbox.FBox, scheme cap.Scheme, src crypto.Source, disk vdisk.Store) (*Server, error) {
	return build(rpc.NewServer(fb, src), scheme, src, disk)
}

// NewWithPort is New with an explicit secret get-port, for services
// that must reappear at the same put-port after a restart (pair with
// RestoreState and a persistent disk).
func NewWithPort(fb *fbox.FBox, scheme cap.Scheme, g cap.Port, disk vdisk.Store) (*Server, error) {
	return build(rpc.NewServerWithPort(fb, g), scheme, nil, disk)
}

func build(server *rpc.Server, scheme cap.Scheme, src crypto.Source, disk vdisk.Store) (*Server, error) {
	if disk.NBlocks() > cap.ObjectMask {
		return nil, fmt.Errorf("blocksvr: disk has %d blocks; capabilities address at most %d",
			disk.NBlocks(), cap.ObjectMask)
	}
	s := &Server{
		disk:  disk,
		used:  make([]bool, disk.NBlocks()),
		nfree: disk.NBlocks(),
	}
	s.rpc = server
	s.table = cap.NewTable(scheme, s.rpc.PutPort(), src)
	s.rpc.ServeTable(s.table)
	s.rpc.Handle(OpAlloc, s.alloc)
	s.rpc.Handle(OpRead, s.read)
	s.rpc.Handle(OpWrite, s.write)
	s.rpc.Handle(OpFree, s.free)
	s.rpc.Handle(OpStat, s.stat)
	return s, nil
}

// Start begins serving.
func (s *Server) Start() error { return s.rpc.Start() }

// Close stops the server.
func (s *Server) Close() error { return s.rpc.Close() }

// PutPort returns the server's public put-port.
func (s *Server) PutPort() cap.Port { return s.rpc.PutPort() }

// Table exposes the object table (experiments use it).
func (s *Server) Table() *cap.Table { return s.table }

func (s *Server) alloc(_ context.Context, _ rpc.Meta, _ rpc.Request) rpc.Reply {
	s.mu.Lock()
	if s.nfree == 0 {
		s.mu.Unlock()
		return rpc.ErrReplyFromErr(errDiskFull)
	}
	var block uint32
	found := false
	for i := uint32(0); i < s.disk.NBlocks(); i++ {
		b := (s.next + i) % s.disk.NBlocks()
		if !s.used[b] {
			block = b
			found = true
			break
		}
	}
	if !found { // nfree said otherwise; internal inconsistency
		s.mu.Unlock()
		return rpc.ErrReplyFromErr(errDiskFull)
	}
	s.used[block] = true
	s.nfree--
	s.next = block + 1
	s.mu.Unlock()

	c, err := s.table.CreateObject(block)
	if err != nil {
		s.mu.Lock()
		s.used[block] = false
		s.nfree++
		s.mu.Unlock()
		return rpc.ErrReplyFromErr(err)
	}
	return rpc.CapReply(c)
}

// demandBlock validates the capability and checks the block is live.
func (s *Server) demandBlock(c cap.Capability, need cap.Rights) (uint32, error) {
	if _, err := s.table.Demand(c, need); err != nil {
		return 0, err
	}
	block := c.Object
	s.mu.Lock()
	live := block < uint32(len(s.used)) && s.used[block]
	s.mu.Unlock()
	if !live {
		return 0, fmt.Errorf("blocksvr: block %d not allocated: %w", block, cap.ErrNoSuchObject)
	}
	return block, nil
}

func (s *Server) read(_ context.Context, _ rpc.Meta, req rpc.Request) rpc.Reply {
	block, err := s.demandBlock(req.Cap, cap.RightRead)
	if err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	data, err := s.disk.Read(block)
	if err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	return rpc.OkReply(data)
}

func (s *Server) write(_ context.Context, _ rpc.Meta, req rpc.Request) rpc.Reply {
	block, err := s.demandBlock(req.Cap, cap.RightWrite)
	if err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	if len(req.Data) > s.disk.BlockSize() {
		return rpc.ErrReply(rpc.StatusBadRequest,
			fmt.Sprintf("write of %d bytes into %d-byte block", len(req.Data), s.disk.BlockSize()))
	}
	buf := make([]byte, s.disk.BlockSize())
	copy(buf, req.Data)
	if err := s.disk.Write(block, buf); err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	return rpc.OkReply(nil)
}

func (s *Server) free(_ context.Context, _ rpc.Meta, req rpc.Request) rpc.Reply {
	block, err := s.demandBlock(req.Cap, cap.RightDestroy)
	if err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	if err := s.table.Destroy(req.Cap); err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	// Zero on free so the next holder of this block number cannot read
	// stale contents.
	if err := s.disk.Zero(block); err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	s.mu.Lock()
	s.used[block] = false
	s.nfree++
	s.mu.Unlock()
	return rpc.OkReply(nil)
}

func (s *Server) stat(_ context.Context, _ rpc.Meta, _ rpc.Request) rpc.Reply {
	s.mu.Lock()
	nfree := s.nfree
	s.mu.Unlock()
	out := make([]byte, 12)
	binary.BigEndian.PutUint32(out[0:], uint32(s.disk.BlockSize()))
	binary.BigEndian.PutUint32(out[4:], s.disk.NBlocks())
	binary.BigEndian.PutUint32(out[8:], nfree)
	return rpc.OkReply(out)
}

// Client is the typed client for a block server.
type Client struct {
	c    *rpc.Client
	port cap.Port
}

// NewClient builds a client speaking to the block server at port.
func NewClient(c *rpc.Client, port cap.Port) *Client {
	return &Client{c: c, port: port}
}

// Port returns the server's put-port.
func (b *Client) Port() cap.Port { return b.port }

// Alloc allocates a block and returns its capability.
func (b *Client) Alloc(ctx context.Context) (cap.Capability, error) {
	rep, err := b.c.Trans(ctx, b.port, rpc.Request{Op: OpAlloc})
	if err != nil {
		return cap.Nil, err
	}
	if rep.Status != rpc.StatusOK {
		return cap.Nil, &rpc.StatusError{Status: rep.Status, Detail: string(rep.Data)}
	}
	return rep.Cap, nil
}

// Read returns the block's contents.
func (b *Client) Read(ctx context.Context, blk cap.Capability) ([]byte, error) {
	rep, err := b.c.Call(ctx, blk, OpRead, nil)
	if err != nil {
		return nil, err
	}
	return rep.Data, nil
}

// Write replaces the block's contents (zero-padded to the block size).
func (b *Client) Write(ctx context.Context, blk cap.Capability, data []byte) error {
	_, err := b.c.Call(ctx, blk, OpWrite, data)
	return err
}

// Free deallocates the block.
func (b *Client) Free(ctx context.Context, blk cap.Capability) error {
	_, err := b.c.Call(ctx, blk, OpFree, nil)
	return err
}

// Stat returns the disk geometry and free count.
func (b *Client) Stat(ctx context.Context) (blockSize, nblocks, nfree uint32, err error) {
	rep, err := b.c.Trans(ctx, b.port, rpc.Request{Op: OpStat})
	if err != nil {
		return 0, 0, 0, err
	}
	if rep.Status != rpc.StatusOK {
		return 0, 0, 0, &rpc.StatusError{Status: rep.Status, Detail: string(rep.Data)}
	}
	if len(rep.Data) != 12 {
		return 0, 0, 0, fmt.Errorf("blocksvr: stat reply %d bytes", len(rep.Data))
	}
	return binary.BigEndian.Uint32(rep.Data[0:]),
		binary.BigEndian.Uint32(rep.Data[4:]),
		binary.BigEndian.Uint32(rep.Data[8:]), nil
}

// Restrict fabricates a weaker capability via the server.
func (b *Client) Restrict(ctx context.Context, c cap.Capability, mask cap.Rights) (cap.Capability, error) {
	return b.c.Restrict(ctx, c, mask)
}

// SetSealer installs a §2.4 capability sealer on the server transport
// (call before Start).
func (s *Server) SetSealer(sealer rpc.CapSealer) { s.rpc.SetSealer(sealer) }

// SnapshotState serializes the server's capability table (which, with
// object numbers equal to block numbers, fully determines the
// allocation state). Pair with a persistent vdisk.FileDisk so a
// restarted block server honours previously issued block capabilities.
func (s *Server) SnapshotState() []byte { return s.table.Snapshot() }

// RestoreState rebuilds the capability table and the allocation bitmap
// from a SnapshotState taken by a previous incarnation. Call before
// Start. The daemon must reuse the same get-port (the table binds
// capabilities to the put-port).
func (s *Server) RestoreState(snap []byte) error {
	if err := s.table.Restore(snap); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.used {
		s.used[i] = false
	}
	s.nfree = s.disk.NBlocks()
	for _, obj := range s.table.Objects() {
		if obj >= s.disk.NBlocks() {
			return fmt.Errorf("blocksvr: snapshot names block %d beyond disk (%d blocks)", obj, s.disk.NBlocks())
		}
		if !s.used[obj] {
			s.used[obj] = true
			s.nfree--
		}
	}
	return nil
}
