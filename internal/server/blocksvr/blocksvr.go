// Package blocksvr implements the Amoeba block server (§3.2): "The
// block server can be requested to allocate a disk block and return a
// capability for it. Using this capability, the block can be written,
// read, or deallocated. The block server has no concept of a file."
//
// Splitting the block server from the file server lets any user build
// special-purpose file systems without touching disk storage
// management; package flatfs is exactly such a client.
package blocksvr

import (
	"context"

	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"amoeba/internal/cap"
	"amoeba/internal/crypto"
	"amoeba/internal/fbox"
	"amoeba/internal/rpc"
	"amoeba/internal/svc"
	"amoeba/internal/vdisk"
	"amoeba/internal/wire"
)

// Operation codes.
const (
	// OpAlloc allocates one block and returns its capability.
	OpAlloc uint16 = 0x0200 + iota
	// OpRead reads the whole block. Needs RightRead.
	OpRead
	// OpWrite replaces the block: data = block bytes (shorter writes
	// are zero-padded to the block size). Needs RightWrite.
	OpWrite
	// OpFree deallocates the block. Needs RightDestroy.
	OpFree
	// OpStat returns blockSize(4) ∥ nblocks(4) ∥ nfree(4). No
	// capability needed (it names no object).
	OpStat
)

// ErrDiskFull is reported (as a server-error status) when no blocks
// remain.
var errDiskFull = fmt.Errorf("blocksvr: disk full")

// Server is a block server instance over one virtual disk. Block
// capabilities use the block number as the object number, so the
// object table and the allocation bitmap stay aligned.
//
// Locking discipline: the data path takes NO server-wide lock — the
// capability check goes through the lock-striped table, liveness is an
// atomic load, and each block has its own mutex held across its vdisk
// I/O. Per-block locks mean disk operations on *different* blocks
// always overlap, while free/write races on the *same* block are
// serialized (a write that passed validation can never land on a
// block after it has been freed, zeroed and reallocated). Only the
// allocator (bitmap scan, free count, cursor) takes allocMu, and it
// is pure in-memory work.
type Server struct {
	*svc.Kernel
	table *cap.Table
	disk  vdisk.Store

	used  []atomic.Bool // liveness per block; mutated under allocMu/block lock
	locks []sync.Mutex  // per-block I/O locks

	allocMu sync.Mutex
	nfree   uint32
	next    uint32 // allocation cursor
}

// New builds a block server over disk on the service kernel. Call
// Start to begin serving.
func New(fb *fbox.FBox, scheme cap.Scheme, src crypto.Source, disk vdisk.Store) (*Server, error) {
	return build(fb, scheme, svc.Config{Source: src}, disk)
}

// NewWithPort is New with an explicit secret get-port, for services
// that must reappear at the same put-port after a restart (pair with
// RestoreState and a persistent disk).
func NewWithPort(fb *fbox.FBox, scheme cap.Scheme, g cap.Port, disk vdisk.Store) (*Server, error) {
	return build(fb, scheme, svc.Config{Port: g}, disk)
}

func build(fb *fbox.FBox, scheme cap.Scheme, cfg svc.Config, disk vdisk.Store) (*Server, error) {
	if disk.NBlocks() > cap.ObjectMask {
		return nil, fmt.Errorf("blocksvr: disk has %d blocks; capabilities address at most %d",
			disk.NBlocks(), cap.ObjectMask)
	}
	s := &Server{
		Kernel: svc.NewWithConfig(fb, scheme, cfg),
		disk:   disk,
		used:   make([]atomic.Bool, disk.NBlocks()),
		locks:  make([]sync.Mutex, disk.NBlocks()),
		nfree:  disk.NBlocks(),
	}
	s.table = s.Table()
	s.Handle(OpAlloc, s.alloc)
	s.Handle(OpRead, s.read)
	s.Handle(OpWrite, s.write)
	s.Handle(OpFree, s.free)
	s.Handle(OpStat, s.stat)
	return s, nil
}

func (s *Server) alloc(_ context.Context, _ rpc.Meta, _ rpc.Request) rpc.Reply {
	s.allocMu.Lock()
	if s.nfree == 0 {
		s.allocMu.Unlock()
		return rpc.ErrReplyFromErr(errDiskFull)
	}
	var block uint32
	found := false
	for i := uint32(0); i < s.disk.NBlocks(); i++ {
		b := (s.next + i) % s.disk.NBlocks()
		if !s.used[b].Load() {
			block = b
			found = true
			break
		}
	}
	if !found { // nfree said otherwise; internal inconsistency
		s.allocMu.Unlock()
		return rpc.ErrReplyFromErr(errDiskFull)
	}
	s.used[block].Store(true)
	s.nfree--
	s.next = block + 1
	s.allocMu.Unlock()

	c, err := s.table.CreateObject(block)
	if err != nil {
		s.allocMu.Lock()
		s.used[block].Store(false)
		s.nfree++
		s.allocMu.Unlock()
		return rpc.ErrReplyFromErr(err)
	}
	return rpc.CapReply(c)
}

// demandBlock validates the capability and checks the block is live.
// It takes no lock beyond the table lookup: liveness is an atomic
// load, so the data path never serializes behind the allocator.
func (s *Server) demandBlock(c cap.Capability, need cap.Rights) (uint32, error) {
	if _, err := s.table.Demand(c, need); err != nil {
		return 0, err
	}
	block := c.Object
	if block >= uint32(len(s.used)) || !s.used[block].Load() {
		return 0, fmt.Errorf("blocksvr: block %d not allocated: %w", block, cap.ErrNoSuchObject)
	}
	return block, nil
}

func (s *Server) read(_ context.Context, _ rpc.Meta, req rpc.Request) rpc.Reply {
	block, err := s.demandBlock(req.Cap, cap.RightRead)
	if err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	s.locks[block].Lock()
	defer s.locks[block].Unlock()
	// Re-VALIDATE under the block lock, not just re-check liveness: if
	// a free won the race and the block was reallocated, the new owner
	// has a fresh secret, so a stale capability fails here (an ABA the
	// used flag alone cannot see).
	if _, err := s.demandBlock(req.Cap, cap.RightRead); err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	// Read straight into a pooled reply buffer that ships on the wire
	// as-is: no per-read block allocation, no reply copy.
	b := rpc.NewReplyBuf(s.disk.BlockSize())
	if err := s.disk.ReadInto(block, b.Extend(s.disk.BlockSize())); err != nil {
		b.Release()
		return rpc.ErrReplyFromErr(err)
	}
	return rpc.OkReplyBuf(b)
}

func (s *Server) write(_ context.Context, _ rpc.Meta, req rpc.Request) rpc.Reply {
	block, err := s.demandBlock(req.Cap, cap.RightWrite)
	if err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	if len(req.Data) > s.disk.BlockSize() {
		return rpc.ErrReply(rpc.StatusBadRequest,
			fmt.Sprintf("write of %d bytes into %d-byte block", len(req.Data), s.disk.BlockSize()))
	}
	// Zero-pad short writes in pooled scratch (the disk copies it into
	// its own storage before we release).
	b := wire.Get(0, s.disk.BlockSize())
	defer b.Release()
	img := b.Extend(s.disk.BlockSize())
	pad := img[copy(img, req.Data):]
	for i := range pad {
		pad[i] = 0
	}
	s.locks[block].Lock()
	defer s.locks[block].Unlock()
	// See read: re-validate, don't just re-check the reusable flag.
	if _, err := s.demandBlock(req.Cap, cap.RightWrite); err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	if err := s.disk.Write(block, img); err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	return rpc.OkReply(nil)
}

func (s *Server) free(_ context.Context, _ rpc.Meta, req rpc.Request) rpc.Reply {
	block, err := s.demandBlock(req.Cap, cap.RightDestroy)
	if err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	// The block lock spans the table destroy, the zeroing and the
	// bitmap release: an in-flight read/write that already validated
	// waits here and then fails its liveness re-check, so no I/O can
	// land on the block once it is reallocated.
	s.locks[block].Lock()
	defer s.locks[block].Unlock()
	if err := s.table.Destroy(req.Cap); err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	// Zero on free so the next holder of this block number cannot read
	// stale contents.
	if err := s.disk.Zero(block); err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	s.allocMu.Lock()
	s.used[block].Store(false)
	s.nfree++
	s.allocMu.Unlock()
	return rpc.OkReply(nil)
}

func (s *Server) stat(_ context.Context, _ rpc.Meta, _ rpc.Request) rpc.Reply {
	s.allocMu.Lock()
	nfree := s.nfree
	s.allocMu.Unlock()
	out := make([]byte, 12)
	binary.BigEndian.PutUint32(out[0:], uint32(s.disk.BlockSize()))
	binary.BigEndian.PutUint32(out[4:], s.disk.NBlocks())
	binary.BigEndian.PutUint32(out[8:], nfree)
	return rpc.OkReply(out)
}

// Client is the typed client for a block server.
type Client struct {
	c    *rpc.Client
	port cap.Port

	// bsize caches the disk block size (learned from Stat on first
	// use) for sizing batch transactions against the MTU. The fast
	// path is a lock-free load; bsizeMu only serializes the one-time
	// probe so concurrent first users issue a single Stat.
	bsize   atomic.Int64
	bsizeMu sync.Mutex
}

// NewClient builds a client speaking to the block server at port.
func NewClient(c *rpc.Client, port cap.Port) *Client {
	return &Client{c: c, port: port}
}

// Port returns the server's put-port.
func (b *Client) Port() cap.Port { return b.port }

// Alloc allocates a block and returns its capability.
func (b *Client) Alloc(ctx context.Context) (cap.Capability, error) {
	rep, err := b.c.Trans(ctx, b.port, rpc.Request{Op: OpAlloc})
	if err != nil {
		return cap.Nil, err
	}
	if rep.Status != rpc.StatusOK {
		return cap.Nil, &rpc.StatusError{Status: rep.Status, Detail: string(rep.Data)}
	}
	return rep.Cap, nil
}

// Read returns the block's contents.
func (b *Client) Read(ctx context.Context, blk cap.Capability) ([]byte, error) {
	rep, err := b.c.Call(ctx, blk, OpRead, nil)
	if err != nil {
		return nil, err
	}
	return rep.Data, nil
}

// Write replaces the block's contents (zero-padded to the block size).
func (b *Client) Write(ctx context.Context, blk cap.Capability, data []byte) error {
	_, err := b.c.Call(ctx, blk, OpWrite, data)
	return err
}

// Free deallocates the block.
func (b *Client) Free(ctx context.Context, blk cap.Capability) error {
	_, err := b.c.Call(ctx, blk, OpFree, nil)
	return err
}

// Stat returns the disk geometry and free count.
func (b *Client) Stat(ctx context.Context) (blockSize, nblocks, nfree uint32, err error) {
	rep, err := b.c.Trans(ctx, b.port, rpc.Request{Op: OpStat})
	if err != nil {
		return 0, 0, 0, err
	}
	if rep.Status != rpc.StatusOK {
		return 0, 0, 0, &rpc.StatusError{Status: rep.Status, Detail: string(rep.Data)}
	}
	if len(rep.Data) != 12 {
		return 0, 0, 0, fmt.Errorf("blocksvr: stat reply %d bytes", len(rep.Data))
	}
	bs := binary.BigEndian.Uint32(rep.Data[0:])
	if bs > 0 {
		b.bsize.Store(int64(bs)) // feed the batch-sizing cache for free
	}
	return bs,
		binary.BigEndian.Uint32(rep.Data[4:]),
		binary.BigEndian.Uint32(rep.Data[8:]), nil
}

// batchItemOverhead is a conservative per-item wire overhead for
// sizing batch transactions: request header, reply header and the
// batch length prefixes.
const batchItemOverhead = 64

// batchBlockSize returns the disk block size, probing Stat once and
// caching the answer.
func (b *Client) batchBlockSize(ctx context.Context) (int, error) {
	if bs := b.bsize.Load(); bs != 0 {
		return int(bs), nil
	}
	b.bsizeMu.Lock()
	defer b.bsizeMu.Unlock()
	if bs := b.bsize.Load(); bs != 0 { // lost the probe race: done
		return int(bs), nil
	}
	bs, _, _, err := b.Stat(ctx)
	if err != nil {
		return 0, err
	}
	b.bsize.Store(int64(bs))
	return int(bs), nil
}

// chunk splits n items into runs of at most per (per >= 1), calling fn
// with each [lo, hi) range and stopping on the first error.
func chunk(n, per int, fn func(lo, hi int) error) error {
	if per < 1 {
		per = 1
	}
	for lo := 0; lo < n; lo += per {
		hi := lo + per
		if hi > n {
			hi = n
		}
		if err := fn(lo, hi); err != nil {
			return err
		}
	}
	return nil
}

// ReadBatch reads many blocks in as few transactions as possible: the
// block capabilities are packed into OpBatch frames sized against the
// network MTU, the server fans the reads out across its worker pool,
// and the contents come back in order — one round trip where a loop
// over Read would take N. Any failed sub-read fails the whole call.
func (b *Client) ReadBatch(ctx context.Context, blks []cap.Capability, opts ...rpc.CallOption) ([][]byte, error) {
	if len(blks) == 0 {
		return nil, nil
	}
	bsize, err := b.batchBlockSize(ctx)
	if err != nil {
		return nil, err
	}
	per := rpc.MaxBatchBytes / (bsize + batchItemOverhead)
	out := make([][]byte, 0, len(blks))
	err = chunk(len(blks), per, func(lo, hi int) error {
		reqs := make([]rpc.Request, hi-lo)
		for i, c := range blks[lo:hi] {
			reqs[i] = rpc.Request{Cap: c, Op: OpRead}
		}
		reps, err := b.c.Batch(ctx, b.port, reqs, opts...)
		if err != nil {
			return err
		}
		for i, rep := range reps {
			if rep.Status != rpc.StatusOK {
				return fmt.Errorf("blocksvr: batch read item %d: %w", lo+i,
					&rpc.StatusError{Status: rep.Status, Detail: string(rep.Data)})
			}
			out = append(out, rep.Data)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// WriteBatch writes many blocks in as few transactions as possible
// (see ReadBatch). data[i] replaces the block named by blks[i],
// zero-padded to the block size. Any failed sub-write fails the whole
// call; earlier sub-writes in the same frame may have been applied
// (batches are not transactionally atomic, matching the paper's
// individual operations).
func (b *Client) WriteBatch(ctx context.Context, blks []cap.Capability, data [][]byte, opts ...rpc.CallOption) error {
	if len(blks) != len(data) {
		return fmt.Errorf("blocksvr: WriteBatch: %d capabilities, %d payloads", len(blks), len(data))
	}
	if len(blks) == 0 {
		return nil
	}
	bsize, err := b.batchBlockSize(ctx)
	if err != nil {
		return err
	}
	per := rpc.MaxBatchBytes / (bsize + batchItemOverhead)
	return chunk(len(blks), per, func(lo, hi int) error {
		reqs := make([]rpc.Request, hi-lo)
		for i := range reqs {
			reqs[i] = rpc.Request{Cap: blks[lo+i], Op: OpWrite, Data: data[lo+i]}
		}
		reps, err := b.c.Batch(ctx, b.port, reqs, opts...)
		if err != nil {
			return err
		}
		for i, rep := range reps {
			if rep.Status != rpc.StatusOK {
				return fmt.Errorf("blocksvr: batch write item %d: %w", lo+i,
					&rpc.StatusError{Status: rep.Status, Detail: string(rep.Data)})
			}
		}
		return nil
	})
}

// AllocBatch allocates n blocks in as few transactions as possible,
// returning their capabilities. On a partial failure the blocks
// already allocated are returned along with the error so the caller
// can free them.
func (b *Client) AllocBatch(ctx context.Context, n int, opts ...rpc.CallOption) ([]cap.Capability, error) {
	out := make([]cap.Capability, 0, n)
	err := chunk(n, 1024, func(lo, hi int) error {
		reqs := make([]rpc.Request, hi-lo)
		for i := range reqs {
			reqs[i] = rpc.Request{Op: OpAlloc}
		}
		reps, err := b.c.Batch(ctx, b.port, reqs, opts...)
		if err != nil {
			return err
		}
		for i, rep := range reps {
			if rep.Status != rpc.StatusOK {
				return fmt.Errorf("blocksvr: batch alloc item %d: %w", lo+i,
					&rpc.StatusError{Status: rep.Status, Detail: string(rep.Data)})
			}
			out = append(out, rep.Cap)
		}
		return nil
	})
	return out, err
}

// FreeBatch deallocates many blocks in as few transactions as
// possible. It keeps going past per-block failures (a destroy sweep
// wants every block it can release gone) and returns the first error.
func (b *Client) FreeBatch(ctx context.Context, blks []cap.Capability, opts ...rpc.CallOption) error {
	var firstErr error
	_ = chunk(len(blks), 1024, func(lo, hi int) error {
		reqs := make([]rpc.Request, hi-lo)
		for i := range reqs {
			reqs[i] = rpc.Request{Cap: blks[lo+i], Op: OpFree}
		}
		reps, err := b.c.Batch(ctx, b.port, reqs, opts...)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			return nil // keep freeing the rest
		}
		for i, rep := range reps {
			if rep.Status != rpc.StatusOK && firstErr == nil {
				firstErr = fmt.Errorf("blocksvr: batch free item %d: %w", lo+i,
					&rpc.StatusError{Status: rep.Status, Detail: string(rep.Data)})
			}
		}
		return nil
	})
	return firstErr
}

// Restrict fabricates a weaker capability via the server.
func (b *Client) Restrict(ctx context.Context, c cap.Capability, mask cap.Rights) (cap.Capability, error) {
	return b.c.Restrict(ctx, c, mask)
}

// SnapshotState serializes the server's capability table (which, with
// object numbers equal to block numbers, fully determines the
// allocation state). Pair with a persistent vdisk.FileDisk so a
// restarted block server honours previously issued block capabilities.
func (s *Server) SnapshotState() []byte { return s.table.Snapshot() }

// RestoreState rebuilds the capability table and the allocation bitmap
// from a SnapshotState taken by a previous incarnation. Call before
// Start. The daemon must reuse the same get-port (the table binds
// capabilities to the put-port).
func (s *Server) RestoreState(snap []byte) error {
	if err := s.table.Restore(snap); err != nil {
		return err
	}
	s.allocMu.Lock()
	defer s.allocMu.Unlock()
	for i := range s.used {
		s.used[i].Store(false)
	}
	s.nfree = s.disk.NBlocks()
	for _, obj := range s.table.Objects() {
		if obj >= s.disk.NBlocks() {
			return fmt.Errorf("blocksvr: snapshot names block %d beyond disk (%d blocks)", obj, s.disk.NBlocks())
		}
		if !s.used[obj].Load() {
			s.used[obj].Store(true)
			s.nfree--
		}
	}
	return nil
}
