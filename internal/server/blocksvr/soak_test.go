package blocksvr

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"amoeba/internal/cap"
	"amoeba/internal/rpc"
	"amoeba/internal/server/servertest"
	"amoeba/internal/vdisk"
)

// TestSoakConcurrentClients hammers the block server with 64
// concurrent client machines cycling alloc/write/read/free on
// independent blocks, plus batched variants. Run under -race.
func TestSoakConcurrentClients(t *testing.T) {
	r, b, _ := newServer(t, 4096, 128)
	port := b.Port()
	r.Soak(t, servertest.SoakClients, 5, func(ctx context.Context, c *rpc.Client, g, i int) error {
		bc := NewClient(c, port)
		blk, err := bc.Alloc(ctx)
		if err != nil {
			return err
		}
		payload := []byte(fmt.Sprintf("client %d iter %d", g, i))
		if err := bc.Write(ctx, blk, payload); err != nil {
			return err
		}
		got, err := bc.Read(ctx, blk)
		if err != nil {
			return err
		}
		if !bytes.Equal(got[:len(payload)], payload) {
			return fmt.Errorf("read back %q", got[:len(payload)])
		}
		// Batched trio on fresh blocks every other iteration.
		if i%2 == 0 {
			blks, err := bc.AllocBatch(ctx, 4)
			if err != nil {
				return err
			}
			data := make([][]byte, len(blks))
			for j := range data {
				data[j] = []byte{byte(g), byte(i), byte(j)}
			}
			if err := bc.WriteBatch(ctx, blks, data); err != nil {
				return err
			}
			back, err := bc.ReadBatch(ctx, blks)
			if err != nil {
				return err
			}
			for j := range back {
				if !bytes.Equal(back[j][:3], data[j]) {
					return fmt.Errorf("batch read %d: %v", j, back[j][:3])
				}
			}
			if err := bc.FreeBatch(ctx, blks); err != nil {
				return err
			}
		}
		return bc.Free(ctx, blk)
	})
}

// slowDisk wraps a vdisk.Store, delaying every read and recording the
// peak number of concurrent I/O operations.
type slowDisk struct {
	vdisk.Store
	delay     time.Duration
	cur, peak atomic.Int64
}

func (d *slowDisk) ReadInto(n uint32, dst []byte) error {
	c := d.cur.Add(1)
	for {
		p := d.peak.Load()
		if c <= p || d.peak.CompareAndSwap(p, c) {
			break
		}
	}
	time.Sleep(d.delay)
	defer d.cur.Add(-1)
	return d.Store.ReadInto(n, dst)
}

// TestDiskIOOverlaps is the regression test for the lock-across-I/O
// fix: with the liveness check atomic and no server lock held across
// vdisk calls, reads of different blocks must overlap on the disk.
// (Before the fix the server serialized the whole data path, so the
// peak concurrency at the disk stayed 1.)
func TestDiskIOOverlaps(t *testing.T) {
	ctx := context.Background()
	r := servertest.New(t, 0x51CC)
	disk, err := vdisk.New(64, 64)
	if err != nil {
		t.Fatal(err)
	}
	slow := &slowDisk{Store: disk, delay: 20 * time.Millisecond}
	scheme, err := cap.NewScheme(cap.SchemeOneWay)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(r.NewFBox(t), scheme, r.Src, slow)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	bc := NewClient(r.Client, s.PutPort())

	var blks []cap.Capability
	for i := 0; i < 8; i++ {
		blk, err := bc.Alloc(ctx)
		if err != nil {
			t.Fatal(err)
		}
		blks = append(blks, blk)
	}
	var wg sync.WaitGroup
	for _, blk := range blks {
		wg.Add(1)
		go func(blk cap.Capability) {
			defer wg.Done()
			if _, err := bc.Read(ctx, blk); err != nil {
				t.Error(err)
			}
		}(blk)
	}
	wg.Wait()
	if peak := slow.peak.Load(); peak < 2 {
		t.Fatalf("disk I/O peak concurrency %d; reads of independent blocks serialized", peak)
	}
}
