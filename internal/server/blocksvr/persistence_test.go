package blocksvr

import (
	"bytes"
	"context"
	"path/filepath"
	"testing"

	"amoeba/internal/cap"
	"amoeba/internal/rpc"
	"amoeba/internal/server/servertest"
	"amoeba/internal/vdisk"
)

func TestBlockServerSurvivesRestart(t *testing.T) {
	ctx := context.Background()
	// A block server with a file-backed disk + state snapshot: after a
	// "restart" (new server process, same get-port, same disk file,
	// restored snapshot), previously issued block capabilities still
	// work and previously freed blocks are still free.
	r := servertest.New(t, 0x9357)
	path := filepath.Join(t.TempDir(), "disk.img")
	scheme, err := cap.NewScheme(cap.SchemeOneWay)
	if err != nil {
		t.Fatal(err)
	}

	disk1, err := vdisk.OpenFile(path, 16, 64)
	if err != nil {
		t.Fatal(err)
	}
	fb1 := r.NewFBox(t)
	s1, err := New(fb1, scheme, r.Src, disk1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Start(); err != nil {
		t.Fatal(err)
	}
	getPort := s1.GetPort()

	c1 := NewClient(r.Client, s1.PutPort())
	blkA, err := c1.Alloc(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Write(ctx, blkA, bytes.Repeat([]byte{0xAB}, 64)); err != nil {
		t.Fatal(err)
	}
	blkB, err := c1.Alloc(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Free(ctx, blkB); err != nil {
		t.Fatal(err)
	}
	snap := s1.SnapshotState()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	if err := disk1.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: fresh machine, same disk file, same get-port, restored
	// snapshot.
	disk2, err := vdisk.OpenFile(path, 16, 64)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { disk2.Close() })
	fb2 := r.NewFBox(t)
	s2, err := NewWithPort(fb2, scheme, getPort, disk2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.RestoreState(snap); err != nil {
		t.Fatal(err)
	}
	if err := s2.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s2.Close() })
	if s2.PutPort() != blkA.Server {
		t.Fatal("restarted server has a different put-port")
	}

	c2 := NewClient(r.Client, s2.PutPort())
	got, err := c2.Read(ctx, blkA)
	if err != nil {
		t.Fatalf("pre-restart capability rejected: %v", err)
	}
	if !bytes.Equal(got, bytes.Repeat([]byte{0xAB}, 64)) {
		t.Fatal("block contents lost across restart")
	}
	// The freed block is still free and the stale cap still dead.
	if _, err := c2.Read(ctx, blkB); !rpc.IsStatus(err, rpc.StatusBadCapability) {
		t.Fatalf("freed block capability revived: %v", err)
	}
	_, _, nfree, err := c2.Stat(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if nfree != 15 {
		t.Fatalf("nfree after restart = %d, want 15", nfree)
	}
}
