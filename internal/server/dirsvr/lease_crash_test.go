package dirsvr

import (
	"context"
	"encoding/binary"
	"fmt"
	"testing"
	"time"

	"amoeba/internal/cap"
	"amoeba/internal/server/servertest"
	"amoeba/internal/vdisk"
	"amoeba/internal/wal"
)

// TestCrashGenerationsNeverRegress is the durability half of the lease
// contract: any directory generation a client ever OBSERVED in an
// acknowledged reply must survive a crash — a restarted server whose
// generations moved backwards would let a cached binding at generation
// G validate against a floor the replay forgot, silently undoing the
// client's own acknowledged writes.
//
// The test drives mutations against one directory on a durable server
// with leases on, freezes the WAL disk after every acknowledged
// mutation alongside the generation that mutation's reply carried, and
// replays every frozen image: the recovered generation must equal the
// acknowledged one exactly. A midpoint checkpoint routes the second
// half of the boundaries through snapshot+tail-replay recovery too.
func TestCrashGenerationsNeverRegress(t *testing.T) {
	ctx := context.Background()
	r := servertest.New(t, 0xC7A7)
	scheme, err := cap.NewScheme(cap.SchemeOneWay)
	if err != nil {
		t.Fatal(err)
	}
	disk, err := vdisk.New(1024, 512)
	if err != nil {
		t.Fatal(err)
	}
	log, err := wal.Open(disk, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewDurable(r.NewFBox(t), scheme, r.Src, log, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.SetLookupLease(time.Minute)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	dc := NewClient(r.Client)

	dir, err := dc.CreateDir(ctx, s.PutPort())
	if err != nil {
		t.Fatal(err)
	}

	nops := 60
	if testing.Short() {
		nops = 20
	}
	type boundary struct {
		img      *vdisk.Disk
		ackedGen uint64
	}
	var boundaries []boundary
	mutate := func(i int) uint64 {
		t.Helper()
		name := fmt.Sprintf("e%03d", i)
		entry := cap.Capability{Server: 0xBEEF, Object: uint32(i), Rights: cap.RightRead, Check: uint64(i) * 31}
		var nl [2]byte
		binary.BigEndian.PutUint16(nl[:], uint16(len(name)))
		w := entry.Encode()
		var rep []byte
		if i%3 == 2 {
			// Remove the entry two ops back (guaranteed present).
			prev := fmt.Sprintf("e%03d", i-2)
			res, err := r.Client.Call(ctx, dir, OpRemove, []byte(prev))
			if err != nil {
				t.Fatalf("op %d remove: %v", i, err)
			}
			rep = res.Data
		} else {
			res, err := r.Client.CallParts(ctx, dir, OpEnter, nl[:], []byte(name), w[:])
			if err != nil {
				t.Fatalf("op %d enter: %v", i, err)
			}
			rep = res.Data
		}
		if len(rep) != 8 {
			t.Fatalf("op %d: mutation reply carries %d bytes, want the 8-byte generation", i, len(rep))
		}
		return binary.BigEndian.Uint64(rep)
	}
	var lastGen uint64
	for i := 0; i < nops; i++ {
		g := mutate(i)
		if g <= lastGen {
			t.Fatalf("op %d: live generation went %d → %d", i, lastGen, g)
		}
		lastGen = g
		boundaries = append(boundaries, boundary{img: disk.Clone(), ackedGen: g})
		if i == nops/2 {
			// Fold the prefix into a snapshot so later boundaries
			// recover through snapshot + tail replay, not pure replay.
			if err := s.Checkpoint(); err != nil {
				t.Fatalf("op %d: checkpoint: %v", i, err)
			}
		}
	}

	replayFB := r.NewFBox(t)
	for i, b := range boundaries {
		rlog, err := wal.Open(b.img, wal.Options{})
		if err != nil {
			t.Fatalf("boundary %d: %v", i, err)
		}
		rs, err := NewDurable(replayFB, scheme, r.Src, rlog, s.GetPort())
		if err != nil {
			t.Fatalf("boundary %d: recover: %v", i, err)
		}
		d, ok := rs.dirs.Get(dir.Object)
		if !ok {
			t.Fatalf("boundary %d: directory lost in replay", i)
		}
		if d.gen != b.ackedGen {
			t.Fatalf("boundary %d: recovered generation %d, client was acknowledged %d", i, d.gen, b.ackedGen)
		}
		if err := rlog.Close(); err != nil {
			t.Fatalf("boundary %d: close: %v", i, err)
		}
	}
}
