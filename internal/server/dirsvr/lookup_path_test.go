package dirsvr

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"amoeba/internal/cap"
	"amoeba/internal/server/servertest"
)

// buildChain creates a chain of depth directories under a fresh root
// and returns the root plus the path to (and capability of) the leaf.
func buildChain(t *testing.T, d *Client, port cap.Port, depth int) (root, leaf cap.Capability, path string) {
	t.Helper()
	ctx := context.Background()
	root, err := d.CreateDir(ctx, port)
	if err != nil {
		t.Fatal(err)
	}
	cur := root
	parts := make([]string, 0, depth)
	for i := 0; i < depth; i++ {
		sub, err := d.CreateDir(ctx, port)
		if err != nil {
			t.Fatal(err)
		}
		name := fmt.Sprintf("d%d", i)
		if err := d.Enter(ctx, cur, name, sub); err != nil {
			t.Fatal(err)
		}
		cur = sub
		parts = append(parts, name)
	}
	return root, cur, strings.Join(parts, "/")
}

// TestLookupPathSingleTransaction proves the OpLookupPath point: a
// deep walk confined to one server costs one transaction (two frames
// on the wire), not one per component.
func TestLookupPathSingleTransaction(t *testing.T) {
	ctx := context.Background()
	r := servertest.New(t, 0xD30)
	s := newServer(t, r)
	d := NewClient(r.Client)
	root, leaf, path := buildChain(t, d, s.PutPort(), 16)

	// Warm the locate cache so the measured delta is pure lookup
	// traffic.
	if _, err := d.Lookup(ctx, root, "d0"); err != nil {
		t.Fatal(err)
	}
	before := r.Net.Stats().Sent
	got, err := d.LookupPath(ctx, root, path)
	if err != nil {
		t.Fatal(err)
	}
	if got != leaf {
		t.Fatalf("depth-16 lookup returned %v", got)
	}
	sent := r.Net.Stats().Sent - before
	// One transaction = request + reply. Allow slack for a stray
	// locate, but a per-component walk (32+ frames) must fail here.
	if sent > 6 {
		t.Fatalf("depth-16 LookupPath sent %d frames; want one round trip", sent)
	}
}

// TestLookupPathServerWalkMatchesIterative cross-checks the server
// walk against the per-component client walk on the same graph.
func TestLookupPathServerWalkMatchesIterative(t *testing.T) {
	ctx := context.Background()
	r := servertest.New(t, 0xD31)
	s := newServer(t, r)
	d := NewClient(r.Client)
	root, leaf, path := buildChain(t, d, s.PutPort(), 5)

	fast, err := d.LookupPath(ctx, root, "///"+path+"//")
	if err != nil {
		t.Fatal(err)
	}
	slow, err := d.lookupPathIterative(ctx, root, splitComponents(path), path)
	if err != nil {
		t.Fatal(err)
	}
	if fast != slow || fast != leaf {
		t.Fatalf("server walk %v, iterative walk %v, want %v", fast, slow, leaf)
	}
}

// TestLookupPathRightsEnforcedMidWalk: the server validates RightRead
// at every step of the walk, so a read-restricted intermediate
// directory stops a path lookup exactly as it stops a single Lookup.
func TestLookupPathRightsEnforcedMidWalk(t *testing.T) {
	ctx := context.Background()
	r := servertest.New(t, 0xD32)
	s := newServer(t, r)
	d := NewClient(r.Client)
	root, err := d.CreateDir(ctx, s.PutPort())
	if err != nil {
		t.Fatal(err)
	}
	mid, err := d.CreateDir(ctx, s.PutPort())
	if err != nil {
		t.Fatal(err)
	}
	leaf := cap.Capability{Server: 0xF00D, Object: 9, Check: 0x42}
	// Enter a WRITE-ONLY capability for mid: the walk may find it but
	// must not read through it.
	writeOnly, err := d.Restrict(ctx, mid, cap.RightWrite)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Enter(ctx, root, "mid", writeOnly); err != nil {
		t.Fatal(err)
	}
	if err := d.Enter(ctx, mid, "leaf", leaf); err != nil {
		t.Fatal(err)
	}
	if _, err := d.LookupPath(ctx, root, "mid/leaf"); err == nil {
		t.Fatal("walk read through a write-only directory capability")
	}
}
