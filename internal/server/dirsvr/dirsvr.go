// Package dirsvr implements the Amoeba directory server (§3.4):
// directories are sets of (ASCII name, capability) pairs. The primary
// operation presents a directory capability plus a string and gets back
// the capability the string names. Enter and Remove maintain entries.
//
// Crucially, "the capabilities within a directory need not all be file
// capabilities and certainly need not all be located in the same place
// or managed by the same server": a looked-up capability may name a
// directory on a *different* directory server, and the client-side
// LookupPath helper simply sends the next lookup to whatever server the
// returned capability names. The distribution is completely
// transparent.
package dirsvr

import (
	"context"

	"encoding/binary"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"amoeba/internal/cap"
	"amoeba/internal/crypto"
	"amoeba/internal/fbox"
	"amoeba/internal/rpc"
	"amoeba/internal/store"
	"amoeba/internal/svc"
	"amoeba/internal/wal"
)

// Operation codes.
const (
	// OpCreateDir creates an empty directory; returns its capability.
	OpCreateDir uint16 = 0x0400 + iota
	// OpLookup looks a name up: data = name bytes. Returns the stored
	// capability. Needs RightRead.
	OpLookup
	// OpEnter adds an entry: data = nameLen(2) ∥ name ∥ capability(16).
	// Needs RightWrite.
	OpEnter
	// OpRemove deletes an entry: data = name bytes. Needs RightWrite.
	OpRemove
	// OpList returns all entries, sorted by name:
	// count(2) ∥ count × (nameLen(2) ∥ name ∥ capability(16)).
	// Needs RightRead.
	OpList
	// OpDestroyDir destroys an empty directory. Needs RightDestroy.
	OpDestroyDir
	// OpLookupPath resolves several path components in ONE transaction:
	// data = '/'-separated path relative to the directory named by the
	// request capability (empty components ignored). The server walks
	// as long as each intermediate capability names a directory it
	// manages itself, validating RightRead at every step, and stops
	// early when an entry points at another server — §3.4's transparent
	// distribution, continued by the client. Reply data:
	// consumed(2) ∥ capability(16), the number of components resolved
	// and the capability reached. A depth-16 walk on one server costs
	// one round trip instead of sixteen.
	OpLookupPath
)

// MaxNameLen bounds a single component name.
const MaxNameLen = 255

type directory struct {
	mu      sync.RWMutex
	entries map[string]cap.Capability
	// gen counts this directory's mutations, under mu. Lookup replies
	// carry it alongside a lease grant so clients can cache bindings;
	// enter/remove replies carry the post-mutation value so a client's
	// own writes invalidate its cache precisely. It is reproduced by
	// replay (every enter/remove record bumps it, in commit order ==
	// mutation order), carried by snapshots and migration state, and
	// the kernel barriers the log before every reply — so a generation
	// a client ever observed never moves backwards across a restart.
	gen uint64
}

// Server is a directory server instance on the service kernel. The
// directory index is a lock-striped map keyed by object number; each
// directory carries its own lock, so lookups in unrelated directories
// never contend.
//
// Directories are the system's naming root — losing them to a crash
// strands every capability filed under a name — so the server is the
// durability flagship: built with NewDurable, every mutating operation
// is written ahead to a log and acknowledged only once durable, and a
// restarted server replays itself back to the exact state its clients
// saw acknowledged.
type Server struct {
	*svc.Kernel
	table *cap.Table

	dirs *store.Map[*directory]

	// leaseNs is the lookup-lease duration granted to clients, in
	// nanoseconds; zero means no leases and byte-identical legacy
	// replies. Atomic so it can be set while serving.
	leaseNs atomic.Int64
}

// SetLookupLease sets the lease duration granted on lookup replies.
// Zero (the default) disables leases entirely: replies stay
// byte-identical to the pre-lease wire format.
func (s *Server) SetLookupLease(d time.Duration) { s.leaseNs.Store(int64(d)) }

// leaseMicros converts a lease duration to the 4-byte microsecond
// wire field (capped, not wrapped).
func leaseMicros(ns int64) uint32 {
	us := ns / 1e3
	if us > int64(^uint32(0)) {
		return ^uint32(0)
	}
	return uint32(us)
}

// New builds a volatile directory server. Call Start to begin serving.
func New(fb *fbox.FBox, scheme cap.Scheme, src crypto.Source) *Server {
	s, err := NewDurable(fb, scheme, src, nil, 0)
	if err != nil { // unreachable: no log means no recovery to fail
		panic(err)
	}
	return s
}

// NewDurable builds a directory server whose mutations are written
// ahead to log (nil for a volatile server), recovering any state a
// previous incarnation logged before it returns. g pins the secret
// get-port (zero draws a fresh one); a host restarting the service
// passes the same g so the server reappears at the put-port every
// outstanding directory capability names.
func NewDurable(fb *fbox.FBox, scheme cap.Scheme, src crypto.Source, log *wal.Log, g cap.Port) (*Server, error) {
	s := &Server{dirs: store.New[*directory](0)}
	s.Kernel = svc.NewWithConfig(fb, scheme, svc.Config{
		Source:        src,
		Port:          g,
		Log:           log,
		Snapshot:      s.snapshot,
		Restore:       s.restoreSnapshot,
		ExtractObject: s.extractObject,
		InstallObject: s.installObject,
		RemoveObject:  s.removeObject,
	})
	s.table = s.Table()
	s.Handle(OpCreateDir, s.createDir)
	s.Handle(OpLookup, s.lookup)
	s.Handle(OpEnter, s.enter)
	s.Handle(OpRemove, s.remove)
	s.Handle(OpList, s.list)
	s.Handle(OpDestroyDir, s.destroyDir)
	s.Handle(OpLookupPath, s.lookupPath)
	if err := s.Recover(s.apply); err != nil {
		return nil, fmt.Errorf("dirsvr: recovering: %w", err)
	}
	return s, nil
}

// ReplayFn exposes the redo-record applier for a hot-standby receiver
// (repl.NewReceiver): the standby applies the primary's shipped records
// through exactly the code path crash recovery replays them through.
func (s *Server) ReplayFn() func(rec []byte) error { return s.apply }

// Redo-record tags (first byte; svc.RecKernel is reserved).
const (
	recCreate  byte = 0x01 // obj(4) secret(8)
	recEnter   byte = 0x02 // obj(4) nameLen(2) name cap(16)
	recRemove  byte = 0x03 // obj(4) name
	recDestroy byte = 0x04 // obj(4)
)

func recObj(tag byte, obj uint32) []byte {
	rec := make([]byte, 5)
	rec[0] = tag
	binary.BigEndian.PutUint32(rec[1:], obj)
	return rec
}

func recCreateDir(obj uint32, secret uint64) []byte {
	rec := make([]byte, 13)
	rec[0] = recCreate
	binary.BigEndian.PutUint32(rec[1:], obj)
	binary.BigEndian.PutUint64(rec[5:], secret)
	return rec
}

func recEnterDir(obj uint32, name string, c cap.Capability) []byte {
	rec := make([]byte, 0, 7+len(name)+cap.Size)
	rec = append(rec, recEnter, 0, 0, 0, 0, 0, 0)
	binary.BigEndian.PutUint32(rec[1:], obj)
	binary.BigEndian.PutUint16(rec[5:], uint16(len(name)))
	rec = append(rec, name...)
	return c.AppendTo(rec)
}

func recRemoveDir(obj uint32, name string) []byte {
	rec := make([]byte, 0, 5+len(name))
	rec = append(rec, recRemove, 0, 0, 0, 0)
	binary.BigEndian.PutUint32(rec[1:], obj)
	return append(rec, name...)
}

// apply replays one redo record — the crash-recovery half of the
// mutating handlers below. The log is trusted: no rights checks, and
// order is the live commit order, so straight application reproduces
// the acknowledged state.
func (s *Server) apply(rec []byte) error {
	if len(rec) < 5 {
		return fmt.Errorf("dirsvr: short record (%d bytes)", len(rec))
	}
	obj := binary.BigEndian.Uint32(rec[1:])
	body := rec[5:]
	switch rec[0] {
	case recCreate:
		if len(body) != 8 {
			return fmt.Errorf("dirsvr: malformed create record")
		}
		s.table.InstallSecret(obj, binary.BigEndian.Uint64(body))
		s.dirs.Put(obj, &directory{entries: make(map[string]cap.Capability)})
	case recEnter:
		if len(body) < 2+cap.Size {
			return fmt.Errorf("dirsvr: malformed enter record")
		}
		n := int(binary.BigEndian.Uint16(body))
		if len(body) != 2+n+cap.Size {
			return fmt.Errorf("dirsvr: malformed enter record")
		}
		c, err := cap.Decode(body[2+n:])
		if err != nil {
			return err
		}
		// Live staging is totally ordered per directory (every record
		// stages under d.mu), so a record for a missing directory can
		// only come from a log written before that invariant held;
		// skipping it mirrors what the live server's state showed.
		if d, ok := s.dirs.Get(obj); ok {
			d.entries[string(body[2:2+n])] = c
			d.gen++ // replay bumps exactly as the live mutation did
		}
	case recRemove:
		if d, ok := s.dirs.Get(obj); ok {
			delete(d.entries, string(body))
			d.gen++
		}
	case recDestroy:
		s.dirs.Delete(obj)
		_ = s.table.DestroyObject(obj)
	default:
		return fmt.Errorf("dirsvr: unknown record tag %#02x", rec[0])
	}
	return nil
}

// snapshot serializes every directory for a checkpoint. It runs
// quiesced (the kernel has no handler in flight), so the walk is a
// consistent cut.
func (s *Server) snapshot() []byte {
	out := make([]byte, 4)
	count := 0
	s.dirs.Range(func(obj uint32, d *directory) bool {
		count++
		var hdr [16]byte
		binary.BigEndian.PutUint32(hdr[0:], obj)
		binary.BigEndian.PutUint64(hdr[4:], d.gen)
		binary.BigEndian.PutUint32(hdr[12:], uint32(len(d.entries)))
		out = append(out, hdr[:]...)
		for name, c := range d.entries {
			var nl [2]byte
			binary.BigEndian.PutUint16(nl[:], uint16(len(name)))
			out = append(out, nl[:]...)
			out = append(out, name...)
			out = c.AppendTo(out)
		}
		return true
	})
	binary.BigEndian.PutUint32(out, uint32(count))
	return out
}

// restoreSnapshot replaces the directory index from a snapshot.
func (s *Server) restoreSnapshot(snap []byte) error {
	if len(snap) < 4 {
		return fmt.Errorf("dirsvr: truncated snapshot")
	}
	dirs := store.New[*directory](0)
	count := binary.BigEndian.Uint32(snap)
	at := 4
	for i := uint32(0); i < count; i++ {
		if len(snap)-at < 16 {
			return fmt.Errorf("dirsvr: truncated snapshot")
		}
		obj := binary.BigEndian.Uint32(snap[at:])
		gen := binary.BigEndian.Uint64(snap[at+4:])
		n := binary.BigEndian.Uint32(snap[at+12:])
		at += 16
		d := &directory{entries: make(map[string]cap.Capability, n), gen: gen}
		for j := uint32(0); j < n; j++ {
			if len(snap)-at < 2 {
				return fmt.Errorf("dirsvr: truncated snapshot")
			}
			nl := int(binary.BigEndian.Uint16(snap[at:]))
			at += 2
			if len(snap)-at < nl+cap.Size {
				return fmt.Errorf("dirsvr: truncated snapshot")
			}
			name := string(snap[at : at+nl])
			c, err := cap.Decode(snap[at+nl : at+nl+cap.Size])
			if err != nil {
				return err
			}
			at += nl + cap.Size
			d.entries[name] = c
		}
		dirs.Put(obj, d)
	}
	s.dirs = dirs
	return nil
}

// encodeDirEntries serializes one directory's state (caller holds
// d.mu): gen(8) ∥ n(4) ∥ n × (nameLen(2) ∥ name ∥ cap(16)). The
// generation travels with the entries so a migrated directory's
// clients keep their cached-lookup floors intact — generations only
// ever continue, never restart, while the object lives.
func encodeDirEntries(d *directory) []byte {
	out := make([]byte, 12)
	binary.BigEndian.PutUint64(out, d.gen)
	binary.BigEndian.PutUint32(out[8:], uint32(len(d.entries)))
	for name, c := range d.entries {
		var nl [2]byte
		binary.BigEndian.PutUint16(nl[:], uint16(len(name)))
		out = append(out, nl[:]...)
		out = append(out, name...)
		out = c.AppendTo(out)
	}
	return out
}

func decodeDirEntries(state []byte) (map[string]cap.Capability, uint64, error) {
	if len(state) < 12 {
		return nil, 0, fmt.Errorf("dirsvr: truncated directory state")
	}
	gen := binary.BigEndian.Uint64(state)
	n := binary.BigEndian.Uint32(state[8:])
	at := 12
	entries := make(map[string]cap.Capability, n)
	for i := uint32(0); i < n; i++ {
		if len(state)-at < 2 {
			return nil, 0, fmt.Errorf("dirsvr: truncated directory state")
		}
		nl := int(binary.BigEndian.Uint16(state[at:]))
		at += 2
		if len(state)-at < nl+cap.Size {
			return nil, 0, fmt.Errorf("dirsvr: truncated directory state")
		}
		c, err := cap.Decode(state[at+nl : at+nl+cap.Size])
		if err != nil {
			return nil, 0, err
		}
		entries[string(state[at:at+nl])] = c
		at += nl + cap.Size
	}
	return entries, gen, nil
}

// extractObject cuts one directory out for migration: serialized and
// removed under its own write lock, so the cut is exactly the state
// the last acknowledged mutation left (handlers stage their records
// under this same lock) and no other directory is touched.
func (s *Server) extractObject(obj uint32) ([]byte, error) {
	d, ok := s.dirs.Get(obj)
	if !ok {
		return nil, fmt.Errorf("dirsvr: object %d: %w", obj, cap.ErrNoSuchObject)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if cur, live := s.dirs.Get(obj); !live || cur != d {
		// Destroyed between lookup and lock (see enter).
		return nil, fmt.Errorf("dirsvr: object %d: %w", obj, cap.ErrNoSuchObject)
	}
	state := encodeDirEntries(d)
	s.dirs.Delete(obj)
	return state, nil
}

// installObject adopts a migrated directory (or replays a migrate-in
// record). Trusted like any replay: an existing object is overwritten.
func (s *Server) installObject(obj uint32, state []byte) error {
	entries, gen, err := decodeDirEntries(state)
	if err != nil {
		return err
	}
	s.dirs.Put(obj, &directory{entries: entries, gen: gen})
	return nil
}

// removeObject replays a migrate-out record: the directory left this
// shard.
func (s *Server) removeObject(obj uint32) { s.dirs.Delete(obj) }

func (s *Server) createDir(_ context.Context, _ rpc.Meta, _ rpc.Request) rpc.Reply {
	c, secret, err := s.table.CreateRecorded()
	if err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	s.dirs.Put(c.Object, &directory{entries: make(map[string]cap.Capability)})
	t, err := s.Append(recCreateDir(c.Object, secret))
	if err != nil {
		// Unlogged: roll the creation back so memory matches the log.
		s.dirs.Delete(c.Object)
		_ = s.table.DestroyObject(c.Object)
		return rpc.ErrReplyFromErr(err)
	}
	if err := t.Wait(); err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	return rpc.CapReply(c)
}

func (s *Server) dir(c cap.Capability, need cap.Rights) (*directory, error) {
	if _, err := s.table.Demand(c, need); err != nil {
		return nil, err
	}
	d, ok := s.dirs.Get(c.Object)
	if !ok {
		return nil, fmt.Errorf("dirsvr: object %d: %w", c.Object, cap.ErrNoSuchObject)
	}
	return d, nil
}

func validName(name string) error {
	switch {
	case name == "":
		return fmt.Errorf("dirsvr: empty name")
	case len(name) > MaxNameLen:
		return fmt.Errorf("dirsvr: name longer than %d bytes", MaxNameLen)
	case strings.ContainsRune(name, '/'):
		return fmt.Errorf("dirsvr: component name contains '/'")
	}
	return nil
}

func (s *Server) lookup(_ context.Context, _ rpc.Meta, req rpc.Request) rpc.Reply {
	d, err := s.dir(req.Cap, cap.RightRead)
	if err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	name := string(req.Data)
	if err := validName(name); err != nil {
		return rpc.ErrReply(rpc.StatusBadRequest, err.Error())
	}
	leaseNs := s.leaseNs.Load()
	d.mu.RLock()
	c, ok := d.entries[name]
	gen := d.gen
	d.mu.RUnlock()
	if !ok {
		return rpc.ErrReply(rpc.StatusServerError, fmt.Sprintf("no entry %q", name))
	}
	rep := rpc.CapReply(c)
	if leaseNs > 0 {
		// Lease grant rides the reply data the binding itself doesn't
		// use: gen(8) ∥ leaseUs(4). The generation is read under the
		// same lock as the entry, so the pair is a consistent cut.
		grant := make([]byte, 12)
		binary.BigEndian.PutUint64(grant, gen)
		binary.BigEndian.PutUint32(grant[8:], leaseMicros(leaseNs))
		rep.Data = grant
	}
	return rep
}

func (s *Server) lookupPath(_ context.Context, _ rpc.Meta, req rpc.Request) rpc.Reply {
	path := string(req.Data)
	self := s.PutPort()
	cur := req.Cap
	consumed := 0
	leaseNs := s.leaseNs.Load()
	// With leases on, the reply grows a per-step trailer so the client
	// can cache EVERY binding the walk crossed, not just the endpoint:
	// leaseUs(4) ∥ consumed × (dirGen(8) ∥ stepCap(16)). Step i's
	// directory is step i-1's capability (the client knows both ends),
	// and each generation is read under the same lock as its entry.
	var steps []byte
	for _, comp := range strings.Split(path, "/") {
		if comp == "" {
			continue
		}
		if cur.Server != self || consumed == 0xFFFF || !s.OwnsObject(cur.Object) {
			break // next step belongs to another server or another
			// shard of this port (or the count field is full); hand
			// back, the client carries on
		}
		if err := validName(comp); err != nil {
			return rpc.ErrReply(rpc.StatusBadRequest, err.Error())
		}
		d, err := s.dir(cur, cap.RightRead)
		if err != nil {
			return rpc.ErrReplyFromErr(fmt.Errorf("at %q: %w", comp, err))
		}
		d.mu.RLock()
		next, ok := d.entries[comp]
		gen := d.gen
		d.mu.RUnlock()
		if !ok {
			return rpc.ErrReply(rpc.StatusServerError, fmt.Sprintf("no entry %q", comp))
		}
		if leaseNs > 0 {
			var st [8 + cap.Size]byte
			binary.BigEndian.PutUint64(st[:8], gen)
			w := next.Encode()
			copy(st[8:], w[:])
			steps = append(steps, st[:]...)
		}
		cur = next
		consumed++
	}
	out := make([]byte, 2+cap.Size, 2+cap.Size+4+len(steps))
	binary.BigEndian.PutUint16(out[:2], uint16(consumed))
	w := cur.Encode()
	copy(out[2:], w[:])
	if leaseNs > 0 {
		var us [4]byte
		binary.BigEndian.PutUint32(us[:], leaseMicros(leaseNs))
		out = append(out, us[:]...)
		out = append(out, steps...)
	}
	return rpc.OkReply(out)
}

func (s *Server) enter(_ context.Context, _ rpc.Meta, req rpc.Request) rpc.Reply {
	d, err := s.dir(req.Cap, cap.RightWrite)
	if err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	if len(req.Data) < 2 {
		return rpc.ErrReply(rpc.StatusBadRequest, "enter wants nameLen(2) ∥ name ∥ cap(16)")
	}
	n := int(binary.BigEndian.Uint16(req.Data))
	if len(req.Data) != 2+n+cap.Size {
		return rpc.ErrReply(rpc.StatusBadRequest, "enter parameter length mismatch")
	}
	name := string(req.Data[2 : 2+n])
	if err := validName(name); err != nil {
		return rpc.ErrReply(rpc.StatusBadRequest, err.Error())
	}
	entry, err := cap.Decode(req.Data[2+n:])
	if err != nil {
		return rpc.ErrReply(rpc.StatusBadRequest, err.Error())
	}
	// Stage the record while holding the directory lock — the log's
	// commit order must match the mutation order — but wait for the
	// group commit after releasing it, so concurrent writers on this
	// directory share one disk sync instead of queueing behind it.
	d.mu.Lock()
	if cur, live := s.dirs.Get(req.Cap.Object); !live || cur != d {
		// Destroyed between lookup and lock (destruction is serialized
		// on this same lock): fail rather than write into an orphan.
		// Pointer identity, not mere presence: the freed number may
		// already name a NEW directory, and a record staged against it
		// would replay an entry the new directory never acknowledged.
		d.mu.Unlock()
		return rpc.ErrReplyFromErr(fmt.Errorf("dirsvr: object %d: %w", req.Cap.Object, cap.ErrNoSuchObject))
	}
	if _, dup := d.entries[name]; dup {
		d.mu.Unlock()
		return rpc.ErrReply(rpc.StatusServerError, fmt.Sprintf("entry %q exists", name))
	}
	t, aerr := s.Append(recEnterDir(req.Cap.Object, name, entry))
	if aerr != nil {
		d.mu.Unlock()
		return rpc.ErrReplyFromErr(aerr)
	}
	d.entries[name] = entry
	d.gen++
	newGen := d.gen
	d.mu.Unlock()
	if err := t.Wait(); err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	return s.mutationReply(newGen)
}

// mutationReply acknowledges a mutation; with leases on it carries the
// post-mutation directory generation — newGen(8) — so the mutator's
// own cache floor advances and its cached bindings for this directory
// stop being served the instant the write is acknowledged.
func (s *Server) mutationReply(newGen uint64) rpc.Reply {
	if s.leaseNs.Load() <= 0 {
		return rpc.OkReply(nil)
	}
	data := make([]byte, 8)
	binary.BigEndian.PutUint64(data, newGen)
	return rpc.OkReply(data)
}

func (s *Server) remove(_ context.Context, _ rpc.Meta, req rpc.Request) rpc.Reply {
	d, err := s.dir(req.Cap, cap.RightWrite)
	if err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	name := string(req.Data)
	if err := validName(name); err != nil {
		return rpc.ErrReply(rpc.StatusBadRequest, err.Error())
	}
	d.mu.Lock()
	if cur, live := s.dirs.Get(req.Cap.Object); !live || cur != d {
		// See enter: identity, not presence (number-reuse ABA).
		d.mu.Unlock()
		return rpc.ErrReplyFromErr(fmt.Errorf("dirsvr: object %d: %w", req.Cap.Object, cap.ErrNoSuchObject))
	}
	if _, ok := d.entries[name]; !ok {
		d.mu.Unlock()
		return rpc.ErrReply(rpc.StatusServerError, fmt.Sprintf("no entry %q", name))
	}
	t, aerr := s.Append(recRemoveDir(req.Cap.Object, name))
	if aerr != nil {
		d.mu.Unlock()
		return rpc.ErrReplyFromErr(aerr)
	}
	delete(d.entries, name)
	d.gen++
	newGen := d.gen
	d.mu.Unlock()
	if err := t.Wait(); err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	return s.mutationReply(newGen)
}

func (s *Server) list(_ context.Context, _ rpc.Meta, req rpc.Request) rpc.Reply {
	d, err := s.dir(req.Cap, cap.RightRead)
	if err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	d.mu.RLock()
	names := make([]string, 0, len(d.entries))
	for name := range d.entries {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]byte, 2)
	binary.BigEndian.PutUint16(out, uint16(len(names)))
	for _, name := range names {
		var nl [2]byte
		binary.BigEndian.PutUint16(nl[:], uint16(len(name)))
		out = append(out, nl[:]...)
		out = append(out, name...)
		out = d.entries[name].AppendTo(out)
	}
	d.mu.RUnlock()
	return rpc.OkReply(out)
}

func (s *Server) destroyDir(_ context.Context, _ rpc.Meta, req rpc.Request) rpc.Reply {
	d, err := s.dir(req.Cap, cap.RightDestroy)
	if err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	// The emptiness check, the state delete and the record staging all
	// happen under the directory's write lock: enter/remove stage under
	// the same lock, so the log's per-directory record order is exactly
	// the mutation order (a destroy can never precede an enter it
	// actually followed), and no entry can slip into an orphan between
	// the check and the delete. Winning the state delete elects THE
	// destroyer: state leaves the map before the number can be reused,
	// and only the winner retires the (already Demand-checked) table
	// entry — by number, so a concurrent revoke cannot leave an
	// orphaned entry behind. The destroy record is staged before the
	// number is freed, so a racing create that reuses it logs after us.
	d.mu.Lock()
	if n := len(d.entries); n != 0 {
		d.mu.Unlock()
		return rpc.ErrReply(rpc.StatusServerError, fmt.Sprintf("directory not empty (%d entries)", n))
	}
	if cur, live := s.dirs.Get(req.Cap.Object); !live || cur != d {
		// Identity, not presence: deleting by number alone could take
		// down a NEW directory that reused it (see enter).
		d.mu.Unlock()
		return rpc.ErrReplyFromErr(fmt.Errorf("dirsvr: object %d: %w", req.Cap.Object, cap.ErrNoSuchObject))
	}
	s.dirs.Delete(req.Cap.Object)
	t, aerr := s.Append(recObj(recDestroy, req.Cap.Object))
	d.mu.Unlock()
	if aerr != nil {
		return rpc.ErrReplyFromErr(aerr)
	}
	if err := s.table.DestroyObject(req.Cap.Object); err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	if err := t.Wait(); err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	return rpc.OkReply(nil)
}
