// Package dirsvr implements the Amoeba directory server (§3.4):
// directories are sets of (ASCII name, capability) pairs. The primary
// operation presents a directory capability plus a string and gets back
// the capability the string names. Enter and Remove maintain entries.
//
// Crucially, "the capabilities within a directory need not all be file
// capabilities and certainly need not all be located in the same place
// or managed by the same server": a looked-up capability may name a
// directory on a *different* directory server, and the client-side
// LookupPath helper simply sends the next lookup to whatever server the
// returned capability names. The distribution is completely
// transparent.
package dirsvr

import (
	"context"

	"encoding/binary"
	"fmt"
	"sort"
	"strings"
	"sync"

	"amoeba/internal/cap"
	"amoeba/internal/crypto"
	"amoeba/internal/fbox"
	"amoeba/internal/rpc"
	"amoeba/internal/store"
)

// Operation codes.
const (
	// OpCreateDir creates an empty directory; returns its capability.
	OpCreateDir uint16 = 0x0400 + iota
	// OpLookup looks a name up: data = name bytes. Returns the stored
	// capability. Needs RightRead.
	OpLookup
	// OpEnter adds an entry: data = nameLen(2) ∥ name ∥ capability(16).
	// Needs RightWrite.
	OpEnter
	// OpRemove deletes an entry: data = name bytes. Needs RightWrite.
	OpRemove
	// OpList returns all entries, sorted by name:
	// count(2) ∥ count × (nameLen(2) ∥ name ∥ capability(16)).
	// Needs RightRead.
	OpList
	// OpDestroyDir destroys an empty directory. Needs RightDestroy.
	OpDestroyDir
	// OpLookupPath resolves several path components in ONE transaction:
	// data = '/'-separated path relative to the directory named by the
	// request capability (empty components ignored). The server walks
	// as long as each intermediate capability names a directory it
	// manages itself, validating RightRead at every step, and stops
	// early when an entry points at another server — §3.4's transparent
	// distribution, continued by the client. Reply data:
	// consumed(2) ∥ capability(16), the number of components resolved
	// and the capability reached. A depth-16 walk on one server costs
	// one round trip instead of sixteen.
	OpLookupPath
)

// MaxNameLen bounds a single component name.
const MaxNameLen = 255

type directory struct {
	mu      sync.RWMutex
	entries map[string]cap.Capability
}

// Server is a directory server instance. The directory index is a
// lock-striped map keyed by object number; each directory carries its
// own lock, so lookups in unrelated directories never contend.
type Server struct {
	rpc   *rpc.Server
	table *cap.Table

	dirs *store.Map[*directory]
}

// New builds a directory server. Call Start to begin serving.
func New(fb *fbox.FBox, scheme cap.Scheme, src crypto.Source) *Server {
	s := &Server{dirs: store.New[*directory](0)}
	s.rpc = rpc.NewServer(fb, src)
	s.table = cap.NewTable(scheme, s.rpc.PutPort(), src)
	s.rpc.ServeTable(s.table)
	s.rpc.Handle(OpCreateDir, s.createDir)
	s.rpc.Handle(OpLookup, s.lookup)
	s.rpc.Handle(OpEnter, s.enter)
	s.rpc.Handle(OpRemove, s.remove)
	s.rpc.Handle(OpList, s.list)
	s.rpc.Handle(OpDestroyDir, s.destroyDir)
	s.rpc.Handle(OpLookupPath, s.lookupPath)
	return s
}

// Start begins serving.
func (s *Server) Start() error { return s.rpc.Start() }

// Close stops the server.
func (s *Server) Close() error { return s.rpc.Close() }

// PutPort returns the server's public put-port.
func (s *Server) PutPort() cap.Port { return s.rpc.PutPort() }

// Table exposes the object table.
func (s *Server) Table() *cap.Table { return s.table }

func (s *Server) createDir(_ context.Context, _ rpc.Meta, _ rpc.Request) rpc.Reply {
	c, err := s.table.Create()
	if err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	s.dirs.Put(c.Object, &directory{entries: make(map[string]cap.Capability)})
	return rpc.CapReply(c)
}

func (s *Server) dir(c cap.Capability, need cap.Rights) (*directory, error) {
	if _, err := s.table.Demand(c, need); err != nil {
		return nil, err
	}
	d, ok := s.dirs.Get(c.Object)
	if !ok {
		return nil, fmt.Errorf("dirsvr: object %d: %w", c.Object, cap.ErrNoSuchObject)
	}
	return d, nil
}

func validName(name string) error {
	switch {
	case name == "":
		return fmt.Errorf("dirsvr: empty name")
	case len(name) > MaxNameLen:
		return fmt.Errorf("dirsvr: name longer than %d bytes", MaxNameLen)
	case strings.ContainsRune(name, '/'):
		return fmt.Errorf("dirsvr: component name contains '/'")
	}
	return nil
}

func (s *Server) lookup(_ context.Context, _ rpc.Meta, req rpc.Request) rpc.Reply {
	d, err := s.dir(req.Cap, cap.RightRead)
	if err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	name := string(req.Data)
	if err := validName(name); err != nil {
		return rpc.ErrReply(rpc.StatusBadRequest, err.Error())
	}
	d.mu.RLock()
	c, ok := d.entries[name]
	d.mu.RUnlock()
	if !ok {
		return rpc.ErrReply(rpc.StatusServerError, fmt.Sprintf("no entry %q", name))
	}
	return rpc.CapReply(c)
}

func (s *Server) lookupPath(_ context.Context, _ rpc.Meta, req rpc.Request) rpc.Reply {
	path := string(req.Data)
	self := s.rpc.PutPort()
	cur := req.Cap
	consumed := 0
	for _, comp := range strings.Split(path, "/") {
		if comp == "" {
			continue
		}
		if cur.Server != self || consumed == 0xFFFF {
			break // next step belongs to another server (or the count
			// field is full); hand back, the client carries on
		}
		if err := validName(comp); err != nil {
			return rpc.ErrReply(rpc.StatusBadRequest, err.Error())
		}
		d, err := s.dir(cur, cap.RightRead)
		if err != nil {
			return rpc.ErrReplyFromErr(fmt.Errorf("at %q: %w", comp, err))
		}
		d.mu.RLock()
		next, ok := d.entries[comp]
		d.mu.RUnlock()
		if !ok {
			return rpc.ErrReply(rpc.StatusServerError, fmt.Sprintf("no entry %q", comp))
		}
		cur = next
		consumed++
	}
	var out [2 + cap.Size]byte
	binary.BigEndian.PutUint16(out[:2], uint16(consumed))
	w := cur.Encode()
	copy(out[2:], w[:])
	return rpc.OkReply(out[:])
}

func (s *Server) enter(_ context.Context, _ rpc.Meta, req rpc.Request) rpc.Reply {
	d, err := s.dir(req.Cap, cap.RightWrite)
	if err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	if len(req.Data) < 2 {
		return rpc.ErrReply(rpc.StatusBadRequest, "enter wants nameLen(2) ∥ name ∥ cap(16)")
	}
	n := int(binary.BigEndian.Uint16(req.Data))
	if len(req.Data) != 2+n+cap.Size {
		return rpc.ErrReply(rpc.StatusBadRequest, "enter parameter length mismatch")
	}
	name := string(req.Data[2 : 2+n])
	if err := validName(name); err != nil {
		return rpc.ErrReply(rpc.StatusBadRequest, err.Error())
	}
	entry, err := cap.Decode(req.Data[2+n:])
	if err != nil {
		return rpc.ErrReply(rpc.StatusBadRequest, err.Error())
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.entries[name]; dup {
		return rpc.ErrReply(rpc.StatusServerError, fmt.Sprintf("entry %q exists", name))
	}
	d.entries[name] = entry
	return rpc.OkReply(nil)
}

func (s *Server) remove(_ context.Context, _ rpc.Meta, req rpc.Request) rpc.Reply {
	d, err := s.dir(req.Cap, cap.RightWrite)
	if err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	name := string(req.Data)
	if err := validName(name); err != nil {
		return rpc.ErrReply(rpc.StatusBadRequest, err.Error())
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.entries[name]; !ok {
		return rpc.ErrReply(rpc.StatusServerError, fmt.Sprintf("no entry %q", name))
	}
	delete(d.entries, name)
	return rpc.OkReply(nil)
}

func (s *Server) list(_ context.Context, _ rpc.Meta, req rpc.Request) rpc.Reply {
	d, err := s.dir(req.Cap, cap.RightRead)
	if err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	d.mu.RLock()
	names := make([]string, 0, len(d.entries))
	for name := range d.entries {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]byte, 2)
	binary.BigEndian.PutUint16(out, uint16(len(names)))
	for _, name := range names {
		var nl [2]byte
		binary.BigEndian.PutUint16(nl[:], uint16(len(name)))
		out = append(out, nl[:]...)
		out = append(out, name...)
		out = d.entries[name].AppendTo(out)
	}
	d.mu.RUnlock()
	return rpc.OkReply(out)
}

func (s *Server) destroyDir(_ context.Context, _ rpc.Meta, req rpc.Request) rpc.Reply {
	d, err := s.dir(req.Cap, cap.RightDestroy)
	if err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	d.mu.RLock()
	n := len(d.entries)
	d.mu.RUnlock()
	if n != 0 {
		return rpc.ErrReply(rpc.StatusServerError, fmt.Sprintf("directory not empty (%d entries)", n))
	}
	// Winning the state delete elects THE destroyer: state leaves the
	// map before the number can be reused, and only the winner retires
	// the (already Demand-checked) table entry — by number, so a
	// concurrent revoke cannot leave an orphaned entry behind.
	if _, ok := s.dirs.Delete(req.Cap.Object); !ok {
		return rpc.ErrReplyFromErr(fmt.Errorf("dirsvr: object %d: %w", req.Cap.Object, cap.ErrNoSuchObject))
	}
	if err := s.table.DestroyObject(req.Cap.Object); err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	return rpc.OkReply(nil)
}

// SetSealer installs a §2.4 capability sealer on the server transport
// (call before Start).
func (s *Server) SetSealer(sealer rpc.CapSealer) { s.rpc.SetSealer(sealer) }

// SetMaxInflight resizes the transport worker pool (call before
// Start); see rpc.ServerConfig.MaxInflight.
func (s *Server) SetMaxInflight(n int) { s.rpc.SetMaxInflight(n) }
