package dirsvr

import (
	"context"
	"fmt"
	"testing"

	"amoeba/internal/rpc"
	"amoeba/internal/server/servertest"
)

// TestSoakConcurrentClients hammers the directory server with 64
// concurrent client machines sharing one root directory (per-client
// entry names) while churning private directories. Run under -race.
func TestSoakConcurrentClients(t *testing.T) {
	ctx := context.Background()
	r := servertest.New(t, 0xD14C)
	s := newServer(t, r)
	root, err := NewClient(r.Client).CreateDir(ctx, s.PutPort())
	if err != nil {
		t.Fatal(err)
	}
	r.Soak(t, servertest.SoakClients, 5, func(ctx context.Context, c *rpc.Client, g, i int) error {
		dc := NewClient(c)
		sub, err := dc.CreateDir(ctx, s.PutPort())
		if err != nil {
			return err
		}
		name := fmt.Sprintf("c%d-i%d", g, i)
		if err := dc.Enter(ctx, root, name, sub); err != nil {
			return err
		}
		got, err := dc.Lookup(ctx, root, name)
		if err != nil {
			return err
		}
		if got != sub {
			return fmt.Errorf("lookup %q returned a different capability", name)
		}
		// Entries inside the private directory exercise per-directory
		// locks without cross-client contention.
		if err := dc.Enter(ctx, sub, "self", sub); err != nil {
			return err
		}
		if _, err := dc.List(ctx, root); err != nil {
			return err
		}
		if err := dc.Remove(ctx, root, name); err != nil {
			return err
		}
		if err := dc.Remove(ctx, sub, "self"); err != nil {
			return err
		}
		return dc.DestroyDir(ctx, sub)
	})
	// The root must be empty again: every client removed its entries.
	entries, err := NewClient(r.Client).List(ctx, root)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("root has %d leftover entries", len(entries))
	}
}
