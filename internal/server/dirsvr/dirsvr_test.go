package dirsvr

import (
	"context"
	"strings"
	"testing"

	"amoeba/internal/cap"
	"amoeba/internal/rpc"
	"amoeba/internal/server/servertest"
)

func newServer(t *testing.T, r *servertest.Rig) *Server {
	t.Helper()
	scheme, err := cap.NewScheme(cap.SchemeOneWay)
	if err != nil {
		t.Fatal(err)
	}
	s := New(r.NewFBox(t), scheme, r.Src)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestEnterLookupRemove(t *testing.T) {
	ctx := context.Background()
	r := servertest.New(t, 0xD14)
	s := newServer(t, r)
	d := NewClient(r.Client)
	dir, err := d.CreateDir(ctx, s.PutPort())
	if err != nil {
		t.Fatal(err)
	}
	target := cap.Capability{Server: 0xBEEF, Object: 7, Rights: cap.RightRead, Check: 0x1234}
	if err := d.Enter(ctx, dir, "report.txt", target); err != nil {
		t.Fatal(err)
	}
	got, err := d.Lookup(ctx, dir, "report.txt")
	if err != nil {
		t.Fatal(err)
	}
	if got != target {
		t.Fatalf("lookup returned %v", got)
	}
	if err := d.Remove(ctx, dir, "report.txt"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Lookup(ctx, dir, "report.txt"); !rpc.IsStatus(err, rpc.StatusServerError) {
		t.Fatalf("lookup after remove: %v", err)
	}
	if err := d.Remove(ctx, dir, "report.txt"); !rpc.IsStatus(err, rpc.StatusServerError) {
		t.Fatalf("double remove: %v", err)
	}
}

func TestDuplicateEntryRejected(t *testing.T) {
	ctx := context.Background()
	r := servertest.New(t, 0xD15)
	s := newServer(t, r)
	d := NewClient(r.Client)
	dir, err := d.CreateDir(ctx, s.PutPort())
	if err != nil {
		t.Fatal(err)
	}
	c := cap.Capability{Object: 1}
	if err := d.Enter(ctx, dir, "x", c); err != nil {
		t.Fatal(err)
	}
	if err := d.Enter(ctx, dir, "x", c); !rpc.IsStatus(err, rpc.StatusServerError) {
		t.Fatalf("duplicate enter: %v", err)
	}
}

func TestNameValidation(t *testing.T) {
	ctx := context.Background()
	r := servertest.New(t, 0xD16)
	s := newServer(t, r)
	d := NewClient(r.Client)
	dir, err := d.CreateDir(ctx, s.PutPort())
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"", "a/b", strings.Repeat("x", MaxNameLen+1)} {
		if err := d.Enter(ctx, dir, bad, cap.Capability{}); !rpc.IsStatus(err, rpc.StatusBadRequest) {
			t.Errorf("Enter(%q): %v", bad, err)
		}
		if _, err := d.Lookup(ctx, dir, bad); !rpc.IsStatus(err, rpc.StatusBadRequest) {
			t.Errorf("Lookup(%q): %v", bad, err)
		}
	}
}

func TestList(t *testing.T) {
	ctx := context.Background()
	r := servertest.New(t, 0xD17)
	s := newServer(t, r)
	d := NewClient(r.Client)
	dir, err := d.CreateDir(ctx, s.PutPort())
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"zeta", "alpha", "mid"}
	for i, name := range names {
		if err := d.Enter(ctx, dir, name, cap.Capability{Object: uint32(i)}); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := d.List(ctx, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("%d entries", len(entries))
	}
	// Sorted by name.
	if entries[0].Name != "alpha" || entries[1].Name != "mid" || entries[2].Name != "zeta" {
		t.Fatalf("order %v", entries)
	}
}

func TestDirectoryRights(t *testing.T) {
	ctx := context.Background()
	r := servertest.New(t, 0xD18)
	s := newServer(t, r)
	d := NewClient(r.Client)
	dir, err := d.CreateDir(ctx, s.PutPort())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Enter(ctx, dir, "public", cap.Capability{Object: 9}); err != nil {
		t.Fatal(err)
	}
	// Read-only share: can look up and list, cannot modify.
	ro, err := d.Restrict(ctx, dir, cap.RightRead)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Lookup(ctx, ro, "public"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.List(ctx, ro); err != nil {
		t.Fatal(err)
	}
	if err := d.Enter(ctx, ro, "new", cap.Capability{}); !rpc.IsStatus(err, rpc.StatusNoPermission) {
		t.Fatalf("enter with read-only: %v", err)
	}
	if err := d.Remove(ctx, ro, "public"); !rpc.IsStatus(err, rpc.StatusNoPermission) {
		t.Fatalf("remove with read-only: %v", err)
	}
}

func TestDestroyDir(t *testing.T) {
	ctx := context.Background()
	r := servertest.New(t, 0xD19)
	s := newServer(t, r)
	d := NewClient(r.Client)
	dir, err := d.CreateDir(ctx, s.PutPort())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Enter(ctx, dir, "x", cap.Capability{}); err != nil {
		t.Fatal(err)
	}
	if err := d.DestroyDir(ctx, dir); !rpc.IsStatus(err, rpc.StatusServerError) {
		t.Fatalf("destroy of non-empty dir: %v", err)
	}
	if err := d.Remove(ctx, dir, "x"); err != nil {
		t.Fatal(err)
	}
	if err := d.DestroyDir(ctx, dir); err != nil {
		t.Fatal(err)
	}
	if _, err := d.List(ctx, dir); !rpc.IsStatus(err, rpc.StatusBadCapability) {
		t.Fatalf("list of destroyed dir: %v", err)
	}
}

func TestPathLookupSingleServer(t *testing.T) {
	ctx := context.Background()
	r := servertest.New(t, 0xD20)
	s := newServer(t, r)
	d := NewClient(r.Client)
	root, err := d.CreateDir(ctx, s.PutPort())
	if err != nil {
		t.Fatal(err)
	}
	a, err := d.CreateDir(ctx, s.PutPort())
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.CreateDir(ctx, s.PutPort())
	if err != nil {
		t.Fatal(err)
	}
	leaf := cap.Capability{Server: 0xF00D, Object: 3, Check: 0x77}
	if err := d.Enter(ctx, root, "a", a); err != nil {
		t.Fatal(err)
	}
	if err := d.Enter(ctx, a, "b", b); err != nil {
		t.Fatal(err)
	}
	if err := d.Enter(ctx, b, "c", leaf); err != nil {
		t.Fatal(err)
	}
	got, err := d.LookupPath(ctx, root, "a/b/c")
	if err != nil {
		t.Fatal(err)
	}
	if got != leaf {
		t.Fatalf("path lookup returned %v", got)
	}
	// Slash variants resolve identically.
	for _, p := range []string{"/a/b/c", "a//b/c/", "///a/b//c"} {
		got, err := d.LookupPath(ctx, root, p)
		if err != nil || got != leaf {
			t.Fatalf("path %q: %v %v", p, got, err)
		}
	}
}

func TestPathLookupAcrossServers(t *testing.T) {
	ctx := context.Background()
	// §3.4's scenario: path a/b where "a" lives on server 1 and its
	// entry "b" is a directory managed by server 2. "Unless the client
	// compared the SERVER fields ... it wouldn't even notice."
	r := servertest.New(t, 0xD21)
	s1 := newServer(t, r)
	s2 := newServer(t, r)
	d := NewClient(r.Client)

	root, err := d.CreateDir(ctx, s1.PutPort())
	if err != nil {
		t.Fatal(err)
	}
	remote, err := d.CreateDir(ctx, s2.PutPort())
	if err != nil {
		t.Fatal(err)
	}
	leaf := cap.Capability{Server: 0xF00D, Object: 3, Check: 0x99}
	if err := d.Enter(ctx, root, "a", remote); err != nil {
		t.Fatal(err)
	}
	if err := d.Enter(ctx, remote, "b", leaf); err != nil {
		t.Fatal(err)
	}
	got, err := d.LookupPath(ctx, root, "a/b")
	if err != nil {
		t.Fatal(err)
	}
	if got != leaf {
		t.Fatalf("cross-server path returned %v", got)
	}
	if root.Server == remote.Server {
		t.Fatal("test miswired: both directories on one server")
	}
}

func TestEnterRemovePathHelpers(t *testing.T) {
	ctx := context.Background()
	r := servertest.New(t, 0xD22)
	s := newServer(t, r)
	d := NewClient(r.Client)
	root, err := d.CreateDir(ctx, s.PutPort())
	if err != nil {
		t.Fatal(err)
	}
	sub, err := d.CreateDir(ctx, s.PutPort())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Enter(ctx, root, "docs", sub); err != nil {
		t.Fatal(err)
	}
	leaf := cap.Capability{Object: 42}
	if err := d.EnterPath(ctx, root, "docs/readme", leaf); err != nil {
		t.Fatal(err)
	}
	got, err := d.LookupPath(ctx, root, "docs/readme")
	if err != nil || got != leaf {
		t.Fatalf("EnterPath result: %v %v", got, err)
	}
	if err := d.RemovePath(ctx, root, "docs/readme"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.LookupPath(ctx, root, "docs/readme"); err == nil {
		t.Fatal("entry survived RemovePath")
	}
	if err := d.EnterPath(ctx, root, "", leaf); err == nil {
		t.Fatal("EnterPath with empty path succeeded")
	}
}

func TestLookupPathEmptyReturnsRoot(t *testing.T) {
	ctx := context.Background()
	r := servertest.New(t, 0xD23)
	s := newServer(t, r)
	d := NewClient(r.Client)
	root, err := d.CreateDir(ctx, s.PutPort())
	if err != nil {
		t.Fatal(err)
	}
	got, err := d.LookupPath(ctx, root, "/")
	if err != nil || got != root {
		t.Fatalf("LookupPath(root, \"/\") = %v, %v", got, err)
	}
}

func TestDirectoryGraphWithCycle(t *testing.T) {
	ctx := context.Background()
	// Directories are (name, capability) sets, so arbitrary graphs —
	// including cycles — are legal (§3.4 "arbitrary directory trees,
	// graphs, etc."). A path that walks the cycle must still resolve.
	r := servertest.New(t, 0xD24)
	s := newServer(t, r)
	d := NewClient(r.Client)
	a, err := d.CreateDir(ctx, s.PutPort())
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.CreateDir(ctx, s.PutPort())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Enter(ctx, a, "b", b); err != nil {
		t.Fatal(err)
	}
	if err := d.Enter(ctx, b, "a", a); err != nil { // cycle
		t.Fatal(err)
	}
	leaf := cap.Capability{Object: 77}
	if err := d.Enter(ctx, a, "leaf", leaf); err != nil {
		t.Fatal(err)
	}
	got, err := d.LookupPath(ctx, a, "b/a/b/a/leaf")
	if err != nil {
		t.Fatal(err)
	}
	if got != leaf {
		t.Fatalf("cyclic path resolved to %v", got)
	}
}

func TestDirectoryEntryForSelf(t *testing.T) {
	ctx := context.Background()
	// A directory may contain itself ("." semantics built by clients).
	r := servertest.New(t, 0xD25)
	s := newServer(t, r)
	d := NewClient(r.Client)
	dir, err := d.CreateDir(ctx, s.PutPort())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Enter(ctx, dir, "self", dir); err != nil {
		t.Fatal(err)
	}
	got, err := d.LookupPath(ctx, dir, "self/self/self")
	if err != nil || got != dir {
		t.Fatalf("self path: %v %v", got, err)
	}
}
