package dirsvr

import (
	"context"
	"testing"
	"time"

	"amoeba/internal/cap"
	"amoeba/internal/lease"
	"amoeba/internal/obs"
	"amoeba/internal/rpc"
	"amoeba/internal/server/servertest"
)

// leaseRig is a dirsvr with leases on plus a caching client driven by
// a fake clock.
type leaseRig struct {
	s     *Server
	d     *Client
	cache *lease.Cache
	ctr   lease.Counters
	clock *int64
}

func newLeaseRig(t *testing.T, seed uint64, dur time.Duration) *leaseRig {
	t.Helper()
	r := servertest.New(t, seed)
	s := newServer(t, r)
	s.SetLookupLease(dur)
	ctr := lease.Counters{
		Hits:        &obs.Counter{},
		Misses:      &obs.Counter{},
		Expired:     &obs.Counter{},
		Invalidated: &obs.Counter{},
	}
	cache := lease.New(0, ctr)
	clock := new(int64)
	cache.Now = func() int64 { return *clock }
	return &leaseRig{s: s, d: NewCachingClient(r.Client, cache), cache: cache, ctr: ctr, clock: clock}
}

func TestLeaseCachedLookupServesLocally(t *testing.T) {
	ctx := context.Background()
	rig := newLeaseRig(t, 0x1EA1, time.Minute)
	dir, err := rig.d.CreateDir(ctx, rig.s.PutPort())
	if err != nil {
		t.Fatal(err)
	}
	target := cap.Capability{Server: 0xBEEF, Object: 7, Rights: cap.RightRead, Check: 0x1234}
	if err := rig.d.Enter(ctx, dir, "report.txt", target); err != nil {
		t.Fatal(err)
	}
	if got, err := rig.d.Lookup(ctx, dir, "report.txt"); err != nil || got != target {
		t.Fatalf("first lookup: %v %v", got, err)
	}
	// The strongest possible "zero RPCs" proof: take the server away.
	rig.s.Close()
	for i := 0; i < 3; i++ {
		got, err := rig.d.Lookup(ctx, dir, "report.txt")
		if err != nil || got != target {
			t.Fatalf("cached lookup %d with server gone: %v %v", i, got, err)
		}
	}
	if hits := rig.ctr.Hits.Value(); hits != 3 {
		t.Fatalf("want 3 cache hits, counted %d", hits)
	}
}

func TestLeaseExpiryBoundsStaleness(t *testing.T) {
	ctx := context.Background()
	rig := newLeaseRig(t, 0x1EA2, 10*time.Millisecond)
	dir, err := rig.d.CreateDir(ctx, rig.s.PutPort())
	if err != nil {
		t.Fatal(err)
	}
	target := cap.Capability{Server: 0xBEEF, Object: 7, Rights: cap.RightRead, Check: 0x1234}
	if err := rig.d.Enter(ctx, dir, "f", target); err != nil {
		t.Fatal(err)
	}
	if _, err := rig.d.Lookup(ctx, dir, "f"); err != nil {
		t.Fatal(err)
	}
	if _, err := rig.d.Lookup(ctx, dir, "f"); err != nil {
		t.Fatal(err) // still under lease: a hit
	}
	*rig.clock += int64(10 * time.Millisecond) // lease lapses exactly
	if _, err := rig.d.Lookup(ctx, dir, "f"); err != nil {
		t.Fatal(err) // re-fetched from the server, new lease banked
	}
	if exp := rig.ctr.Expired.Value(); exp != 1 {
		t.Fatalf("want 1 expired binding, counted %d", exp)
	}
	if _, err := rig.d.Lookup(ctx, dir, "f"); err != nil {
		t.Fatal(err)
	}
	if hits := rig.ctr.Hits.Value(); hits != 2 {
		t.Fatalf("want 2 hits (before expiry, after refetch), counted %d", hits)
	}
}

func TestLeaseOwnWritesInvalidatePrecisely(t *testing.T) {
	ctx := context.Background()
	rig := newLeaseRig(t, 0x1EA3, time.Hour) // lease far too long to save us
	dir, err := rig.d.CreateDir(ctx, rig.s.PutPort())
	if err != nil {
		t.Fatal(err)
	}
	other, err := rig.d.CreateDir(ctx, rig.s.PutPort())
	if err != nil {
		t.Fatal(err)
	}
	oldCap := cap.Capability{Server: 0xBEEF, Object: 1, Rights: cap.RightRead, Check: 0x1111}
	newCap := cap.Capability{Server: 0xBEEF, Object: 2, Rights: cap.RightRead, Check: 0x2222}
	for _, e := range []struct {
		d    cap.Capability
		n    string
		c    cap.Capability
	}{{dir, "f", oldCap}, {other, "g", oldCap}} {
		if err := rig.d.Enter(ctx, e.d, e.n, e.c); err != nil {
			t.Fatal(err)
		}
	}
	// Warm both bindings.
	if _, err := rig.d.Lookup(ctx, dir, "f"); err != nil {
		t.Fatal(err)
	}
	if _, err := rig.d.Lookup(ctx, other, "g"); err != nil {
		t.Fatal(err)
	}
	// Rename f through this very client: remove + enter. The mutation
	// replies carry the bumped generation, so the cached binding for
	// dir must stop being served instantly — no lease wait.
	if err := rig.d.Remove(ctx, dir, "f"); err != nil {
		t.Fatal(err)
	}
	if err := rig.d.Enter(ctx, dir, "f", newCap); err != nil {
		t.Fatal(err)
	}
	got, err := rig.d.Lookup(ctx, dir, "f")
	if err != nil {
		t.Fatal(err)
	}
	if got != newCap {
		t.Fatalf("read my own write back as %v, want %v", got, newCap)
	}
	if inv := rig.ctr.Invalidated.Value(); inv == 0 {
		t.Fatal("own write did not invalidate the cached binding")
	}
	// Precision: the untouched directory's binding still serves locally.
	hitsBefore := rig.ctr.Hits.Value()
	if _, err := rig.d.Lookup(ctx, other, "g"); err != nil {
		t.Fatal(err)
	}
	if rig.ctr.Hits.Value() != hitsBefore+1 {
		t.Fatal("a write to one directory invalidated another's binding")
	}
}

func TestLeasePathWalkMergesEveryStep(t *testing.T) {
	ctx := context.Background()
	rig := newLeaseRig(t, 0x1EA4, time.Minute)
	root, err := rig.d.CreateDir(ctx, rig.s.PutPort())
	if err != nil {
		t.Fatal(err)
	}
	// root/a/b/c → leaf
	cur := root
	for _, name := range []string{"a", "b", "c"} {
		sub, err := rig.d.CreateDir(ctx, rig.s.PutPort())
		if err != nil {
			t.Fatal(err)
		}
		if err := rig.d.Enter(ctx, cur, name, sub); err != nil {
			t.Fatal(err)
		}
		cur = sub
	}
	leaf := cap.Capability{Server: 0xBEEF, Object: 9, Rights: cap.RightRead, Check: 0x9999}
	if err := rig.d.Enter(ctx, cur, "leaf", leaf); err != nil {
		t.Fatal(err)
	}
	got, err := rig.d.LookupPath(ctx, root, "a/b/c/leaf")
	if err != nil || got != leaf {
		t.Fatalf("warm walk: %v %v", got, err)
	}
	if n := rig.cache.Len(); n != 4 {
		t.Fatalf("walk cached %d bindings, want all 4 steps", n)
	}
	// Every subsequent walk — and every prefix of it — is local.
	rig.s.Close()
	if got, err := rig.d.LookupPath(ctx, root, "a/b/c/leaf"); err != nil || got != leaf {
		t.Fatalf("cached walk with server gone: %v %v", got, err)
	}
	if got, err := rig.d.LookupPath(ctx, root, "//a//b/"); err != nil || got == cap.Nil {
		t.Fatalf("cached prefix walk: %v %v", got, err)
	}
	if hits := rig.ctr.Hits.Value(); hits != 6 {
		t.Fatalf("want 6 hits (4-step walk + 2-step prefix), counted %d", hits)
	}
}

// TestLeaseOffKeepsLegacyWire pins that a zero lease duration leaves
// the reply wire format byte-identical: a caching client against a
// lease-less server caches nothing and falls through to RPCs.
func TestLeaseOffKeepsLegacyWire(t *testing.T) {
	ctx := context.Background()
	r := servertest.New(t, 0x1EA5)
	s := newServer(t, r) // lease never set
	d := NewCachingClient(r.Client, lease.New(0, lease.Counters{}))
	dir, err := d.CreateDir(ctx, s.PutPort())
	if err != nil {
		t.Fatal(err)
	}
	target := cap.Capability{Server: 0xBEEF, Object: 7, Rights: cap.RightRead, Check: 0x1234}
	if err := d.Enter(ctx, dir, "f", target); err != nil {
		t.Fatal(err)
	}
	rep, err := r.Client.Call(ctx, dir, OpLookup, []byte("f"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Data) != 0 {
		t.Fatalf("lease-less lookup reply carries %d data bytes, want 0", len(rep.Data))
	}
	if _, err := d.Lookup(ctx, dir, "f"); err != nil {
		t.Fatal(err)
	}
	if n := d.cache.Len(); n != 0 {
		t.Fatalf("cache banked %d bindings from a lease-less server", n)
	}
	rep, err = r.Client.Call(ctx, dir, OpLookupPath, []byte("f"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Data) != 2+cap.Size {
		t.Fatalf("lease-less lookup-path reply is %d bytes, want %d", len(rep.Data), 2+cap.Size)
	}
}

// TestLeaseRevokedCapabilityFailsClosed pins the revocation story: a
// cached capability is only a NAME — presenting it still runs the
// server's secret check, so once the directory's capability is revoked
// (re-keyed), the cached walk's next RPC is refused.
func TestLeaseRevokedCapabilityFailsClosed(t *testing.T) {
	ctx := context.Background()
	rig := newLeaseRig(t, 0x1EA6, time.Hour)
	root, err := rig.d.CreateDir(ctx, rig.s.PutPort())
	if err != nil {
		t.Fatal(err)
	}
	sub, err := rig.d.CreateDir(ctx, rig.s.PutPort())
	if err != nil {
		t.Fatal(err)
	}
	if err := rig.d.Enter(ctx, root, "sub", sub); err != nil {
		t.Fatal(err)
	}
	// Warm: the binding root/"sub" → sub is now cached.
	if _, err := rig.d.Lookup(ctx, root, "sub"); err != nil {
		t.Fatal(err)
	}
	// Revoke sub's capability (re-key its secret server-side).
	if _, err := rig.s.Table().Revoke(sub); err != nil {
		t.Fatal(err)
	}
	// The cache still serves the stale NAME — harmless...
	got, err := rig.d.Lookup(ctx, root, "sub")
	if err != nil {
		t.Fatal(err)
	}
	// ...because USING it fails closed at the server.
	if _, err := rig.d.Lookup(ctx, got, "anything"); err == nil || !rpc.IsStatus(err, rpc.StatusBadCapability) {
		t.Fatalf("revoked cached capability was honored: %v", err)
	}
}
