package dirsvr

import (
	"context"
	"fmt"
	"testing"
	"time"

	"amoeba/internal/cap"
	"amoeba/internal/repl"
	"amoeba/internal/server/servertest"
	"amoeba/internal/vdisk"
	"amoeba/internal/wal"
)

// TestPromotionCrashMatrix extends TestCrashMatrixReplay to the
// hot-standby pair: the same scripted 100-op workload runs against a
// REPLICATED primary, and after every acknowledged operation the
// BACKUP's write-ahead disk is frozen. Killing the primary at that
// boundary and promoting the standby must yield exactly the model
// state — and because the receiver only acknowledges records its own
// log has committed (and the primary only replies after that
// acknowledgement), even the harsher composite failure "primary dies
// AND the standby restarts from ITS disk" loses nothing: every frozen
// backup image is recovered into a fresh server and diffed against the
// model at that boundary.
func TestPromotionCrashMatrix(t *testing.T) {
	ctx := context.Background()
	r := servertest.New(t, 0xF0A7)
	scheme, err := cap.NewScheme(cap.SchemeOneWay)
	if err != nil {
		t.Fatal(err)
	}

	// Primary, on its own machine and disk.
	pdisk, err := vdisk.New(1024, 512)
	if err != nil {
		t.Fatal(err)
	}
	plog, err := wal.Open(pdisk, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	primaryFB := r.NewFBox(t)
	primary, err := NewDurable(primaryFB, scheme, r.Src, plog, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := primary.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { primary.Close() })

	// Standby: same get-port, own machine, own disk, never Started.
	bdisk, err := vdisk.New(1024, 512)
	if err != nil {
		t.Fatal(err)
	}
	blog, err := wal.Open(bdisk, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	backupFB := r.NewFBox(t)
	backup, err := NewDurable(backupFB, scheme, r.Src, blog, primary.GetPort())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { backup.Close() })
	recv := repl.NewReceiver(backupFB, r.Src, backup.Kernel, backup.ReplayFn())
	if err := recv.Start(); err != nil {
		t.Fatal(err)
	}
	ship, err := repl.Attach(primary.Kernel, r.NewClient(t), recv.Port(), repl.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ship.Stop)

	nops := 100
	if testing.Short() {
		nops = 30
	}
	dc := NewClient(r.Client)
	images := make([]*vdisk.Disk, 0, nops)
	models := runScriptedWorkload(t, dc, primary.PutPort(), nops, func() {
		// The op is acknowledged, so (synchronous shipping) the backup
		// has already committed its record to its OWN disk: freeze the
		// bytes a primary-kill-plus-standby-crash would leave there.
		images = append(images, bdisk.Clone())
	})

	// The live standby must track the primary exactly at the final
	// boundary even before any promotion.
	if err := backup.matches(models[len(models)-1]); err != nil {
		t.Fatalf("live standby diverged: %v", err)
	}
	if lag := ship.Lag(); lag != 0 {
		t.Fatalf("synchronous stream lags %d records", lag)
	}

	// Kill the primary at every record boundary: recover that
	// boundary's frozen BACKUP image into a fresh server and diff.
	replayFB := r.NewFBox(t)
	for i, img := range images {
		rlog, err := wal.Open(img, wal.Options{})
		if err != nil {
			t.Fatalf("boundary %d: %v", i, err)
		}
		rs, err := NewDurable(replayFB, scheme, r.Src, rlog, primary.GetPort())
		if err != nil {
			t.Fatalf("boundary %d: recover: %v", i, err)
		}
		if err := rs.matches(models[i]); err != nil {
			t.Fatalf("promote after op %d: %v", i, err)
		}
		if err := rlog.Close(); err != nil {
			t.Fatalf("boundary %d: close: %v", i, err)
		}
	}

	// Finally the real thing at the last boundary: kill the primary,
	// promote the live standby, and use it through RPC — same put-port,
	// all acknowledged state, capabilities still valid.
	ship.Stop()
	primaryFB.Close()
	if err := primary.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := recv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := backup.Start(); err != nil {
		t.Fatal(err)
	}
	if backup.PutPort() != primary.PutPort() {
		t.Fatal("promotion changed the put-port")
	}
	root, err := dc.CreateDir(ctx, backup.PutPort())
	if err != nil {
		t.Fatalf("create against promoted standby: %v", err)
	}
	entry := cap.Capability{Server: 1, Object: 2, Rights: cap.RightRead, Check: 3}
	if err := dc.Enter(ctx, root, "promoted", entry); err != nil {
		t.Fatalf("enter against promoted standby: %v", err)
	}
	got, err := dc.Lookup(ctx, root, "promoted")
	if err != nil || got != entry {
		t.Fatalf("lookup against promoted standby: %v %+v", err, got)
	}
}

// TestPromotionShipsCheckpoints: a primary under log pressure
// checkpoints mid-stream; the checkpoint ships like any record, the
// standby compacts its OWN log behind it, and promotion at the end
// still lands on the acknowledged state.
func TestPromotionShipsCheckpoints(t *testing.T) {
	ctx := context.Background()
	r := servertest.New(t, 0xF0A8)
	scheme, err := cap.NewScheme(cap.SchemeOneWay)
	if err != nil {
		t.Fatal(err)
	}
	// Deliberately tiny logs on BOTH sides: the workload forces repeated
	// checkpoint+truncate cycles through the replication stream.
	pdisk, err := vdisk.New(64, 256)
	if err != nil {
		t.Fatal(err)
	}
	plog, err := wal.Open(pdisk, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	primary, err := NewDurable(r.NewFBox(t), scheme, r.Src, plog, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := primary.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { primary.Close() })

	bdisk, err := vdisk.New(64, 256)
	if err != nil {
		t.Fatal(err)
	}
	blog, err := wal.Open(bdisk, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	backupFB := r.NewFBox(t)
	backup, err := NewDurable(backupFB, scheme, r.Src, blog, primary.GetPort())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { backup.Close() })
	recv := repl.NewReceiver(backupFB, r.Src, backup.Kernel, backup.ReplayFn())
	if err := recv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { recv.Close() })
	ship, err := repl.Attach(primary.Kernel, r.NewClient(t), recv.Port(), repl.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ship.Stop)

	dc := NewClient(r.Client)
	root, err := dc.CreateDir(ctx, primary.PutPort())
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]cap.Capability{}
	for i := 0; i < 200; i++ {
		name := fmt.Sprintf("n%03d", i)
		entry := cap.Capability{Server: 1, Object: uint32(i), Rights: cap.RightRead, Check: uint64(i)}
		if err := dc.Enter(ctx, root, name, entry); err != nil {
			// ErrFull between pressure and the async checkpoint is
			// legal; the client-side answer is a retry.
			i--
			continue
		}
		want[name] = entry
		if i%3 == 0 {
			if err := dc.Remove(ctx, root, name); err != nil {
				t.Fatalf("remove %d: %v", i, err)
			}
			delete(want, name)
		}
	}
	// The pressure-driven checkpoint is asynchronous; give it a beat to
	// cross the stream.
	deadline := time.Now().Add(5 * time.Second)
	for recv.Stats().Checkpoints == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no checkpoint crossed the stream: %+v", recv.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	if err := backup.matches(model{root.Object: want}); err != nil {
		t.Fatalf("standby diverged across shipped checkpoints: %v", err)
	}
}
