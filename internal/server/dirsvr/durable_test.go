package dirsvr

import (
	"context"
	"encoding/binary"
	"fmt"
	"strings"
	"testing"
	"time"

	"amoeba/internal/cap"
	"amoeba/internal/server/servertest"
	"amoeba/internal/svc"
	"amoeba/internal/vdisk"
	"amoeba/internal/wal"
)

// model mirrors the acknowledged directory state: directory object
// numbers to their entries.
type model map[uint32]map[string]cap.Capability

func (m model) clone() model {
	c := make(model, len(m))
	for obj, entries := range m {
		e := make(map[string]cap.Capability, len(entries))
		for k, v := range entries {
			e[k] = v
		}
		c[obj] = e
	}
	return c
}

// matches compares a replayed server's state to the model.
func (s *Server) matches(m model) error {
	var err error
	seen := 0
	s.dirs.Range(func(obj uint32, d *directory) bool {
		seen++
		want, ok := m[obj]
		if !ok {
			err = fmt.Errorf("replay resurrected directory %d", obj)
			return false
		}
		if len(d.entries) != len(want) {
			err = fmt.Errorf("directory %d has %d entries, want %d", obj, len(d.entries), len(want))
			return false
		}
		for name, c := range d.entries {
			if want[name] != c {
				err = fmt.Errorf("directory %d entry %q diverged", obj, name)
				return false
			}
		}
		return true
	})
	if err != nil {
		return err
	}
	if seen != len(m) {
		return fmt.Errorf("replay has %d directories, want %d", seen, len(m))
	}
	return nil
}

// runScriptedWorkload drives the deterministic 100-op mix (creates,
// enters, removes, destroys) the crash and promotion matrices share:
// after every acknowledged op it calls freeze (the caller clones
// whichever disk it is auditing) and snapshots the model. It returns
// the model at every boundary.
func runScriptedWorkload(t *testing.T, dc *Client, port cap.Port, nops int, freeze func()) []model {
	t.Helper()
	ctx := context.Background()
	live := make(model)
	var dirs []cap.Capability // created, not-yet-destroyed directories
	models := make([]model, 0, nops)
	for i := 0; i < nops; i++ {
		switch {
		case len(dirs) == 0 || i%7 == 0:
			d, err := dc.CreateDir(ctx, port)
			if err != nil {
				t.Fatalf("op %d create: %v", i, err)
			}
			dirs = append(dirs, d)
			live[d.Object] = map[string]cap.Capability{}
		case i%11 == 0 && len(live[dirs[0].Object]) == 0 && len(dirs) > 1:
			// Destroy an empty directory (the oldest, if drained).
			d := dirs[0]
			if err := dc.DestroyDir(ctx, d); err != nil {
				t.Fatalf("op %d destroy: %v", i, err)
			}
			dirs = dirs[1:]
			delete(live, d.Object)
		case i%5 == 0 && len(live[dirs[len(dirs)-1].Object]) > 0:
			// Remove the lexically-first entry of the newest directory.
			d := dirs[len(dirs)-1]
			var name string
			for n := range live[d.Object] {
				if name == "" || n < name {
					name = n
				}
			}
			if err := dc.Remove(ctx, d, name); err != nil {
				t.Fatalf("op %d remove: %v", i, err)
			}
			delete(live[d.Object], name)
		default:
			d := dirs[len(dirs)-1]
			name := fmt.Sprintf("e%03d", i)
			entry := cap.Capability{Server: 0xBEEF, Object: uint32(i), Rights: cap.RightRead, Check: uint64(i) * 77}
			if err := dc.Enter(ctx, d, name, entry); err != nil {
				t.Fatalf("op %d enter: %v", i, err)
			}
			live[d.Object][name] = entry
		}
		freeze()
		models = append(models, live.clone())
	}
	return models
}

// TestCrashMatrixReplay drives a 100-op workload (creates, enters,
// removes, destroys) against a durable directory server, freezing the
// WAL disk's exact bytes after every
// acknowledged operation. It then simulates a crash at EVERY one of
// those record boundaries: each frozen image is recovered into a fresh
// server, whose state must equal the model at that point — no
// acknowledged op lost, no unacknowledged op visible.
func TestCrashMatrixReplay(t *testing.T) {
	r := servertest.New(t, 0xC7A5)
	scheme, err := cap.NewScheme(cap.SchemeOneWay)
	if err != nil {
		t.Fatal(err)
	}
	disk, err := vdisk.New(1024, 512)
	if err != nil {
		t.Fatal(err)
	}
	log, err := wal.Open(disk, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fb := r.NewFBox(t)
	s, err := NewDurable(fb, scheme, r.Src, log, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	dc := NewClient(r.Client)

	nops := 100
	if testing.Short() {
		nops = 30
	}

	// The scripted workload: a deterministic mix in which every op is
	// acknowledged before the disk image is frozen.
	images := make([]*vdisk.Disk, 0, nops)
	models := runScriptedWorkload(t, dc, s.PutPort(), nops, func() {
		// The reply for the op has been received, so its record is on
		// the "disk"; freeze the exact bytes a crash right now would
		// leave.
		images = append(images, disk.Clone())
	})

	// Crash at every record boundary: recover each frozen image into a
	// fresh (never Started) server and diff against the model.
	replayFB := r.NewFBox(t)
	for i, img := range images {
		rlog, err := wal.Open(img, wal.Options{})
		if err != nil {
			t.Fatalf("boundary %d: %v", i, err)
		}
		rs, err := NewDurable(replayFB, scheme, r.Src, rlog, s.GetPort())
		if err != nil {
			t.Fatalf("boundary %d: recover: %v", i, err)
		}
		if err := rs.matches(models[i]); err != nil {
			t.Fatalf("crash after op %d: %v", i, err)
		}
		if err := rlog.Close(); err != nil {
			t.Fatalf("boundary %d: close: %v", i, err)
		}
	}
}

// TestDurableRevokeSurvivesCrash: a revocation re-key must be replayed
// too — recovering the pre-revoke secret would resurrect every revoked
// capability.
func TestDurableRevokeSurvivesCrash(t *testing.T) {
	ctx := context.Background()
	r := servertest.New(t, 0xC7A6)
	scheme, err := cap.NewScheme(cap.SchemeOneWay)
	if err != nil {
		t.Fatal(err)
	}
	disk, err := vdisk.New(256, 512)
	if err != nil {
		t.Fatal(err)
	}
	log, err := wal.Open(disk, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewDurable(r.NewFBox(t), scheme, r.Src, log, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })

	dc := NewClient(r.Client)
	old, err := dc.CreateDir(ctx, s.PutPort())
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := r.Client.Revoke(ctx, old)
	if err != nil {
		t.Fatal(err)
	}

	// Crash and recover from the disk image.
	img := disk.Clone()
	rlog, err := wal.Open(img, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rlog.Close()
	rs, err := NewDurable(r.NewFBox(t), scheme, r.Src, rlog, s.GetPort())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rs.Table().Validate(fresh); err != nil {
		t.Fatalf("post-revoke capability invalid after replay: %v", err)
	}
	if _, err := rs.Table().Validate(old); err == nil {
		t.Fatal("revoked capability resurrected by replay")
	}
}

// TestReplayRevokeAfterDestroyDoesNotResurrect: a revoke record can
// trail the destroy record of the same object in the log (they stage
// under different locks); replaying it must not re-install the table
// entry for the destroyed object.
func TestReplayRevokeAfterDestroyDoesNotResurrect(t *testing.T) {
	r := servertest.New(t, 0xC7A8)
	scheme, err := cap.NewScheme(cap.SchemeOneWay)
	if err != nil {
		t.Fatal(err)
	}
	disk, err := vdisk.New(256, 512)
	if err != nil {
		t.Fatal(err)
	}
	// Hand-write the adversarial log: create(obj=9), destroy(obj=9),
	// then a kernel revoke record for obj=9.
	log, err := wal.Open(disk, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := log.Recover(nil, nil); err != nil {
		t.Fatal(err)
	}
	kernelRevoke := make([]byte, 13)
	kernelRevoke[0] = svc.RecKernel
	binary.BigEndian.PutUint32(kernelRevoke[1:], 9)
	binary.BigEndian.PutUint64(kernelRevoke[5:], 0xDEAD)
	for _, rec := range [][]byte{recCreateDir(9, 0xBEEF), recObj(recDestroy, 9), kernelRevoke} {
		tk, err := log.Append(rec)
		if err != nil {
			t.Fatal(err)
		}
		if err := tk.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	log.Close()

	rlog, err := wal.Open(disk, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rlog.Close()
	rs, err := NewDurable(r.NewFBox(t), scheme, r.Src, rlog, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n := rs.Table().Len(); n != 0 {
		t.Fatalf("replay resurrected %d destroyed object(s)", n)
	}
	if _, ok := rs.dirs.Get(9); ok {
		t.Fatal("replay resurrected the destroyed directory state")
	}
}

// TestDurableCheckpointCycle: pressure-driven checkpoints compact the
// log under a live workload, and recovery from the checkpointed log
// still lands on the acknowledged state.
func TestDurableCheckpointCycle(t *testing.T) {
	ctx := context.Background()
	r := servertest.New(t, 0xC7A7)
	scheme, err := cap.NewScheme(cap.SchemeOneWay)
	if err != nil {
		t.Fatal(err)
	}
	// A deliberately tiny log: the workload crosses the high-water mark
	// many times, forcing repeated checkpoint+truncate cycles.
	disk, err := vdisk.New(64, 256)
	if err != nil {
		t.Fatal(err)
	}
	log, err := wal.Open(disk, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewDurable(r.NewFBox(t), scheme, r.Src, log, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })

	dc := NewClient(r.Client)
	root, err := dc.CreateDir(ctx, s.PutPort())
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]cap.Capability{}
	for i := 0; i < 200; i++ {
		name := fmt.Sprintf("n%03d", i)
		entry := cap.Capability{Server: 1, Object: uint32(i), Rights: cap.RightRead, Check: uint64(i)}
		if err := dc.Enter(ctx, root, name, entry); err != nil {
			// ErrFull between pressure and the async checkpoint is
			// legal; the client-side answer is a retry.
			if strings.Contains(err.Error(), "full") {
				i--
				continue
			}
			t.Fatalf("enter %d: %v", i, err)
		}
		want[name] = entry
		if i%3 == 0 {
			if err := dc.Remove(ctx, root, name); err != nil {
				t.Fatalf("remove %d: %v", i, err)
			}
			delete(want, name)
		}
	}
	// The checkpoint is pressure-driven and asynchronous; give it a
	// beat to land.
	deadline := time.Now().Add(5 * time.Second)
	for log.Stats().Checkpoints == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("tiny log never checkpointed under 200 ops (stats %+v)", log.Stats())
		}
		time.Sleep(time.Millisecond)
	}

	img := disk.Clone()
	rlog, err := wal.Open(img, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rlog.Close()
	rs, err := NewDurable(r.NewFBox(t), scheme, r.Src, rlog, s.GetPort())
	if err != nil {
		t.Fatal(err)
	}
	if err := rs.matches(model{root.Object: want}); err != nil {
		t.Fatal(err)
	}
}
