package dirsvr

import (
	"context"
	"encoding/binary"
	"fmt"
	"strings"

	"amoeba/internal/cap"
	"amoeba/internal/lease"
	"amoeba/internal/rpc"
)

// Entry is one (name, capability) pair of a directory listing.
type Entry struct {
	Name string
	Cap  cap.Capability
}

// Client is the typed client for directory services. A single Client
// can traverse directories managed by *any number* of directory
// servers: every operation routes to the server named by the directory
// capability it is given, so cross-server graphs need nothing special.
type Client struct {
	c *rpc.Client
	// cache, when non-nil, holds lease-cached lookup bindings: reads
	// under an unexpired lease are answered locally with zero RPCs.
	// See package lease for the staleness contract.
	cache *lease.Cache
}

// NewClient builds a directory client over an RPC client.
func NewClient(c *rpc.Client) *Client { return &Client{c: c} }

// NewCachingClient builds a directory client that serves lookups from
// cache while a server-granted lease holds. The cache may be shared
// across clients (it is keyed by full capabilities, so rights never
// launder through it). The servers must have leases enabled
// (SetLookupLease > 0) for the cache to ever fill; against lease-less
// servers the client behaves exactly like NewClient.
func NewCachingClient(c *rpc.Client, cache *lease.Cache) *Client {
	return &Client{c: c, cache: cache}
}

// CreateDir creates an empty directory on the directory server at
// port and returns its capability.
func (d *Client) CreateDir(ctx context.Context, port cap.Port) (cap.Capability, error) {
	rep, err := d.c.Trans(ctx, port, rpc.Request{Op: OpCreateDir})
	if err != nil {
		return cap.Nil, err
	}
	if rep.Status != rpc.StatusOK {
		return cap.Nil, &rpc.StatusError{Status: rep.Status, Detail: string(rep.Data)}
	}
	return rep.Cap, nil
}

// Lookup returns the capability stored under name in dir. With a
// cache attached, a binding under an unexpired lease is returned
// locally; a miss pays the round trip and banks the server's grant.
// The lease window is stamped from a clock read taken BEFORE the
// request is sent, so the client's window sits strictly inside the
// server's.
func (d *Client) Lookup(ctx context.Context, dir cap.Capability, name string) (cap.Capability, error) {
	var preSend int64
	if d.cache != nil {
		preSend = d.cache.Now()
		if c, ok := d.cache.Get(dir, name, preSend); ok {
			return c, nil
		}
	}
	rep, err := d.c.Call(ctx, dir, OpLookup, []byte(name))
	if err != nil {
		return cap.Nil, err
	}
	if d.cache != nil && len(rep.Data) == 12 {
		gen := binary.BigEndian.Uint64(rep.Data)
		if us := binary.BigEndian.Uint32(rep.Data[8:]); us > 0 {
			d.cache.Put(dir, name, rep.Cap, gen, preSend+int64(us)*1e3)
		}
	}
	return rep.Cap, nil
}

// observeMutation advances the cache's write floor from a mutation
// reply carrying the post-mutation directory generation.
func (d *Client) observeMutation(dir cap.Capability, replyData []byte) {
	if d.cache != nil && len(replyData) == 8 {
		d.cache.Observe(dir.Server, dir.Object, binary.BigEndian.Uint64(replyData))
	}
}

// Enter stores (name, entry) in dir.
func (d *Client) Enter(ctx context.Context, dir cap.Capability, name string, entry cap.Capability) error {
	var nl [2]byte
	binary.BigEndian.PutUint16(nl[:], uint16(len(name)))
	w := entry.Encode()
	rep, err := d.c.CallParts(ctx, dir, OpEnter, nl[:], []byte(name), w[:])
	if err != nil {
		return err
	}
	d.observeMutation(dir, rep.Data)
	return nil
}

// Remove deletes the entry under name in dir.
func (d *Client) Remove(ctx context.Context, dir cap.Capability, name string) error {
	rep, err := d.c.Call(ctx, dir, OpRemove, []byte(name))
	if err != nil {
		return err
	}
	d.observeMutation(dir, rep.Data)
	return nil
}

// List returns dir's entries sorted by name.
func (d *Client) List(ctx context.Context, dir cap.Capability) ([]Entry, error) {
	rep, err := d.c.Call(ctx, dir, OpList, nil)
	if err != nil {
		return nil, err
	}
	buf := rep.Data
	if len(buf) < 2 {
		return nil, fmt.Errorf("dirsvr: list reply %d bytes", len(buf))
	}
	n := int(binary.BigEndian.Uint16(buf))
	buf = buf[2:]
	out := make([]Entry, 0, n)
	for i := 0; i < n; i++ {
		if len(buf) < 2 {
			return nil, fmt.Errorf("dirsvr: list reply truncated at entry %d", i)
		}
		nl := int(binary.BigEndian.Uint16(buf))
		buf = buf[2:]
		if len(buf) < nl+cap.Size {
			return nil, fmt.Errorf("dirsvr: list reply truncated at entry %d", i)
		}
		name := string(buf[:nl])
		c, err := cap.Decode(buf[nl : nl+cap.Size])
		if err != nil {
			return nil, err
		}
		out = append(out, Entry{Name: name, Cap: c})
		buf = buf[nl+cap.Size:]
	}
	return out, nil
}

// DestroyDir destroys an empty directory.
func (d *Client) DestroyDir(ctx context.Context, dir cap.Capability) error {
	_, err := d.c.Call(ctx, dir, OpDestroyDir, nil)
	if err == nil && d.cache != nil {
		// Forget the directory entirely, floor included: the object
		// number may be reused by a fresh directory whose generations
		// restart at zero. (A destroyed directory was empty, and every
		// removal that emptied it already advanced the floor, so there
		// is nothing live to forget — this is pure hygiene.)
		d.cache.Drop(dir.Server, dir.Object)
	}
	return err
}

// Restrict fabricates a weaker capability via the managing server.
func (d *Client) Restrict(ctx context.Context, c cap.Capability, mask cap.Rights) (cap.Capability, error) {
	return d.c.Restrict(ctx, c, mask)
}

// LookupPath resolves a slash-separated path relative to root. All
// components managed by one server resolve in a single OpLookupPath
// transaction; when an intermediate capability names a directory on a
// different server, the walk simply continues there — §3.4's
// transparent distribution — so a path crossing k servers costs k
// round trips, not one per component. Empty components (leading,
// trailing or doubled slashes) are ignored. Servers predating
// OpLookupPath are handled by falling back to per-component Lookup.
func (d *Client) LookupPath(ctx context.Context, root cap.Capability, path string) (cap.Capability, error) {
	cur, rest := root, path
	if d.cache != nil {
		// Cache-first walk: consume leading components whose bindings
		// hold an unexpired lease. One clock read and one lock cycle
		// cover the whole walk; a full hit resolves the path with zero
		// RPCs and zero allocations.
		cur, rest, _ = d.cache.ResolvePath(root, path, d.cache.Now())
		if rest == "" {
			return cur, nil
		}
	}
	return d.lookupPathRemote(ctx, cur, rest, path)
}

// lookupPathRemote resolves the remainder of a walk against the
// servers, banking every step's lease grant so the next walk starts
// further along (or skips the network entirely).
func (d *Client) lookupPathRemote(ctx context.Context, cur cap.Capability, path, full string) (cap.Capability, error) {
	comps := splitComponents(path)
	for len(comps) > 0 {
		var preSend int64
		if d.cache != nil {
			preSend = d.cache.Now()
		}
		rep, err := d.c.Call(ctx, cur, OpLookupPath, []byte(strings.Join(comps, "/")))
		if err != nil {
			if rpc.IsStatus(err, rpc.StatusNoSuchOp) {
				return d.lookupPathIterative(ctx, cur, comps, full)
			}
			return cap.Nil, fmt.Errorf("dirsvr: resolving %q: %w", full, err)
		}
		if len(rep.Data) < 2+cap.Size {
			return cap.Nil, fmt.Errorf("dirsvr: lookup-path reply %d bytes", len(rep.Data))
		}
		consumed := int(binary.BigEndian.Uint16(rep.Data))
		next, err := cap.Decode(rep.Data[2 : 2+cap.Size])
		if err != nil {
			return cap.Nil, err
		}
		if consumed == 0 || consumed > len(comps) {
			return cap.Nil, fmt.Errorf("dirsvr: lookup-path consumed %d of %d components", consumed, len(comps))
		}
		if d.cache != nil && len(rep.Data) > 2+cap.Size {
			d.mergeWalk(cur, comps, consumed, rep.Data[2+cap.Size:], preSend)
		}
		cur = next
		comps = comps[consumed:]
	}
	return cur, nil
}

// mergeWalk banks a lookup-path reply's lease trailer — leaseUs(4) ∥
// consumed × (dirGen(8) ∥ stepCap(16)) — as one cache entry per
// consumed component. Step i's directory capability is step i-1's
// result; the client holds both ends, so the trailer only needs the
// generations and the intermediate capabilities. A malformed trailer
// is ignored: caching is an optimization, never a correctness input.
func (d *Client) mergeWalk(dir cap.Capability, comps []string, consumed int, trailer []byte, preSend int64) {
	if len(trailer) != 4+consumed*(8+cap.Size) {
		return
	}
	leaseUs := binary.BigEndian.Uint32(trailer)
	if leaseUs == 0 {
		return
	}
	expiry := preSend + int64(leaseUs)*1e3
	at := 4
	for i := 0; i < consumed; i++ {
		gen := binary.BigEndian.Uint64(trailer[at:])
		step, err := cap.Decode(trailer[at+8 : at+8+cap.Size])
		if err != nil {
			return
		}
		d.cache.Put(dir, comps[i], step, gen, expiry)
		dir = step
		at += 8 + cap.Size
	}
}

// lookupPathIterative is the pre-OpLookupPath walk: one Lookup per
// component.
func (d *Client) lookupPathIterative(ctx context.Context, cur cap.Capability, comps []string, path string) (cap.Capability, error) {
	for _, comp := range comps {
		next, err := d.Lookup(ctx, cur, comp)
		if err != nil {
			return cap.Nil, fmt.Errorf("dirsvr: resolving %q at %q: %w", path, comp, err)
		}
		cur = next
	}
	return cur, nil
}

// splitComponents returns path's non-empty components.
func splitComponents(path string) []string {
	comps := make([]string, 0, 8)
	for _, comp := range strings.Split(path, "/") {
		if comp != "" {
			comps = append(comps, comp)
		}
	}
	return comps
}

// EnterPath resolves the directory part of path and enters the final
// component there.
func (d *Client) EnterPath(ctx context.Context, root cap.Capability, path string, entry cap.Capability) error {
	dir, base, err := d.splitPath(ctx, root, path)
	if err != nil {
		return err
	}
	return d.Enter(ctx, dir, base, entry)
}

// RemovePath resolves the directory part of path and removes the final
// component's entry.
func (d *Client) RemovePath(ctx context.Context, root cap.Capability, path string) error {
	dir, base, err := d.splitPath(ctx, root, path)
	if err != nil {
		return err
	}
	return d.Remove(ctx, dir, base)
}

func (d *Client) splitPath(ctx context.Context, root cap.Capability, path string) (dir cap.Capability, base string, err error) {
	comps := splitComponents(path)
	if len(comps) == 0 {
		return cap.Nil, "", fmt.Errorf("dirsvr: path %q has no components", path)
	}
	dir = root
	if len(comps) > 1 {
		dir, err = d.LookupPath(ctx, root, strings.Join(comps[:len(comps)-1], "/"))
		if err != nil {
			return cap.Nil, "", err
		}
	}
	return dir, comps[len(comps)-1], nil
}
