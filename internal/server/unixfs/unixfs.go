// Package unixfs is the paper's "third file system": "a
// capability-based UNIX file system, to ease the problem of moving
// existing applications from UNIX to Amoeba" (§3.5). It is a
// client-side compatibility layer that composes the directory server
// (for the namespace) and the flat file server (for file bodies) into
// a familiar path-based API: Mkdir, Create, Open-style handles,
// ReadAt/WriteAt, Unlink, Rename, Stat, ReadDir.
//
// There is no server in this package — a deliberate reproduction of
// the Amoeba philosophy that new file-system semantics are built *by
// clients* out of capability-protected building blocks, with no kernel
// or privileged code involved.
package unixfs

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"amoeba/internal/cap"
	"amoeba/internal/rpc"
	"amoeba/internal/server/dirsvr"
	"amoeba/internal/server/flatfs"
)

// Errors.
var (
	// ErrNotFound is returned when a path component does not exist.
	ErrNotFound = errors.New("unixfs: no such file or directory")
	// ErrExists is returned when creating over an existing name.
	ErrExists = errors.New("unixfs: file exists")
	// ErrIsDirectory is returned for file operations on directories.
	ErrIsDirectory = errors.New("unixfs: is a directory")
	// ErrNotDirectory is returned for directory operations on files.
	ErrNotDirectory = errors.New("unixfs: not a directory")
)

// FS is a UNIX-like view rooted at a directory capability. The
// directory tree may span any number of directory servers; file bodies
// live on the flat file server the FS was built with (files linked
// from elsewhere still work — every capability names its own server).
type FS struct {
	dirs  *dirsvr.Client
	files *flatfs.Client
	root  cap.Capability
}

// New builds a UNIX-like view: namespace under root (a directory
// capability), new file bodies on files.
func New(dirs *dirsvr.Client, files *flatfs.Client, root cap.Capability) *FS {
	return &FS{dirs: dirs, files: files, root: root}
}

// Root returns the root directory capability.
func (fs *FS) Root() cap.Capability { return fs.root }

// Stat describes a name.
type Stat struct {
	// Cap is the object's capability.
	Cap cap.Capability
	// IsDir reports whether the object is a directory.
	IsDir bool
	// Size is the byte size (0 for directories).
	Size uint64
}

// Mkdir creates a directory at path (parents must exist). The new
// directory is created on the same directory server as its parent, so
// subtrees stay local to their server unless explicitly linked
// elsewhere.
func (fs *FS) Mkdir(ctx context.Context, path string) (cap.Capability, error) {
	parent, base, err := fs.parent(ctx, path)
	if err != nil {
		return cap.Nil, err
	}
	if _, err := fs.dirs.Lookup(ctx, parent, base); err == nil {
		return cap.Nil, fmt.Errorf("%w: %s", ErrExists, path)
	}
	dir, err := fs.dirs.CreateDir(ctx, parent.Server)
	if err != nil {
		return cap.Nil, err
	}
	if err := fs.dirs.Enter(ctx, parent, base, dir); err != nil {
		return cap.Nil, err
	}
	return dir, nil
}

// Create makes an empty file at path and returns its capability.
func (fs *FS) Create(ctx context.Context, path string) (cap.Capability, error) {
	parent, base, err := fs.parent(ctx, path)
	if err != nil {
		return cap.Nil, err
	}
	if _, err := fs.dirs.Lookup(ctx, parent, base); err == nil {
		return cap.Nil, fmt.Errorf("%w: %s", ErrExists, path)
	}
	f, err := fs.files.Create(ctx)
	if err != nil {
		return cap.Nil, err
	}
	if err := fs.dirs.Enter(ctx, parent, base, f); err != nil {
		return cap.Nil, err
	}
	return f, nil
}

// Lookup resolves a path to its capability.
func (fs *FS) Lookup(ctx context.Context, path string) (cap.Capability, error) {
	c, err := fs.dirs.LookupPath(ctx, fs.root, path)
	if err != nil {
		return cap.Nil, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	return c, nil
}

// WriteFile writes data at offset into the file at path.
func (fs *FS) WriteFile(ctx context.Context, path string, offset uint64, data []byte) error {
	c, err := fs.Lookup(ctx, path)
	if err != nil {
		return err
	}
	if err := fs.files.WriteAt(ctx, c, offset, data); err != nil {
		return fs.translate(c, err)
	}
	return nil
}

// ReadFile reads up to length bytes at offset from the file at path.
func (fs *FS) ReadFile(ctx context.Context, path string, offset uint64, length uint32) ([]byte, error) {
	c, err := fs.Lookup(ctx, path)
	if err != nil {
		return nil, err
	}
	data, err := fs.files.ReadAt(ctx, c, offset, length)
	if err != nil {
		return nil, fs.translate(c, err)
	}
	return data, nil
}

// translate maps "wrong object kind" RPC failures to UNIX-flavoured
// errors: using a directory capability on the file server yields
// StatusBadCapability (different server or unknown object).
func (fs *FS) translate(c cap.Capability, err error) error {
	if rpc.IsStatus(err, rpc.StatusBadCapability) && c.Server != fs.files.Port() {
		return fmt.Errorf("%w (object on %s)", ErrIsDirectory, c.Server)
	}
	return err
}

// Stat describes the object at path.
func (fs *FS) Stat(ctx context.Context, path string) (Stat, error) {
	c, err := fs.Lookup(ctx, path)
	if err != nil {
		return Stat{}, err
	}
	// A directory answers List; a file answers Size. Try the cheap
	// file path first when the capability names our file server.
	if c.Server == fs.files.Port() {
		size, err := fs.files.Size(ctx, c)
		if err == nil {
			return Stat{Cap: c, Size: size}, nil
		}
	}
	if _, err := fs.dirs.List(ctx, c); err == nil {
		return Stat{Cap: c, IsDir: true}, nil
	}
	return Stat{}, fmt.Errorf("%w: %s is neither file nor directory here", ErrNotFound, path)
}

// ReadDir lists the directory at path, names sorted.
func (fs *FS) ReadDir(ctx context.Context, path string) ([]string, error) {
	c, err := fs.Lookup(ctx, path)
	if err != nil {
		return nil, err
	}
	entries, err := fs.dirs.List(ctx, c)
	if err != nil {
		return nil, fmt.Errorf("%w: %s", ErrNotDirectory, path)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.Name)
	}
	sort.Strings(names)
	return names, nil
}

// Unlink removes the name at path; if it named a file on our file
// server, the file body is destroyed too (no hard links in this
// layer).
func (fs *FS) Unlink(ctx context.Context, path string) error {
	parent, base, err := fs.parent(ctx, path)
	if err != nil {
		return err
	}
	c, err := fs.dirs.Lookup(ctx, parent, base)
	if err != nil {
		return fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	if err := fs.dirs.Remove(ctx, parent, base); err != nil {
		return err
	}
	if c.Server == fs.files.Port() {
		// Best effort: the name is already gone, so the body cleanup
		// must not be cut short by the caller's deadline (the nested
		// transaction stays bounded by the client's own timeout).
		_ = fs.files.Destroy(rpc.WithoutDeadline(ctx), c)
	}
	return nil
}

// Rmdir removes an empty directory at path.
func (fs *FS) Rmdir(ctx context.Context, path string) error {
	parent, base, err := fs.parent(ctx, path)
	if err != nil {
		return err
	}
	c, err := fs.dirs.Lookup(ctx, parent, base)
	if err != nil {
		return fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	if err := fs.dirs.DestroyDir(ctx, c); err != nil {
		return err // not empty, or not a directory
	}
	// The directory object is destroyed; removing the now-dangling name
	// is past the point of no return and must outlive the deadline (a
	// repeat Rmdir would fail at DestroyDir before ever reaching Remove).
	return fs.dirs.Remove(rpc.WithoutDeadline(ctx), parent, base)
}

// Rename moves the entry at oldPath to newPath. Pure namespace
// surgery: the object capability moves between directories; the object
// itself is untouched (and may live on any server).
func (fs *FS) Rename(ctx context.Context, oldPath, newPath string) error {
	oldParent, oldBase, err := fs.parent(ctx, oldPath)
	if err != nil {
		return err
	}
	c, err := fs.dirs.Lookup(ctx, oldParent, oldBase)
	if err != nil {
		return fmt.Errorf("%w: %s", ErrNotFound, oldPath)
	}
	newParent, newBase, err := fs.parent(ctx, newPath)
	if err != nil {
		return err
	}
	if _, err := fs.dirs.Lookup(ctx, newParent, newBase); err == nil {
		return fmt.Errorf("%w: %s", ErrExists, newPath)
	}
	if err := fs.dirs.Enter(ctx, newParent, newBase, c); err != nil {
		return err
	}
	// The entry is committed at its new name; unlinking the old one is
	// past the point of no return and must outlive the caller's
	// deadline, or a half-renamed object ends up with two names.
	return fs.dirs.Remove(rpc.WithoutDeadline(ctx), oldParent, oldBase)
}

// parent resolves the directory containing path's final component.
// The walk goes through LookupPath, so a same-server prefix costs one
// round trip — and with lease caching on, a warm prefix costs none.
func (fs *FS) parent(ctx context.Context, path string) (cap.Capability, string, error) {
	comps := make([]string, 0, 8)
	for _, c := range strings.Split(path, "/") {
		if c != "" {
			comps = append(comps, c)
		}
	}
	if len(comps) == 0 {
		return cap.Nil, "", fmt.Errorf("unixfs: empty path")
	}
	cur := fs.root
	if len(comps) > 1 {
		dir, err := fs.dirs.LookupPath(ctx, cur, strings.Join(comps[:len(comps)-1], "/"))
		if err != nil {
			return cap.Nil, "", fmt.Errorf("%w: %s", ErrNotFound, path)
		}
		cur = dir
	}
	return cur, comps[len(comps)-1], nil
}
