package unixfs

import (
	"bytes"
	"context"
	"errors"
	"io"
	"testing"
)

func TestFileSequentialReadWrite(t *testing.T) {
	ctx := context.Background()
	fs := newFS(t)
	f, err := fs.OpenCreate(ctx, "seq.txt")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("first ")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("second")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(f)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "first second" {
		t.Fatalf("read %q", got)
	}
}

func TestFileSeekWhence(t *testing.T) {
	ctx := context.Background()
	fs := newFS(t)
	f, err := fs.OpenCreate(ctx, "seek.txt")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	pos, err := f.Seek(-3, io.SeekEnd)
	if err != nil {
		t.Fatal(err)
	}
	if pos != 7 {
		t.Fatalf("SeekEnd pos = %d", pos)
	}
	buf := make([]byte, 3)
	if _, err := io.ReadFull(f, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "789" {
		t.Fatalf("tail read %q", buf)
	}
	if _, err := f.Seek(-2, io.SeekCurrent); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(f, buf[:2]); err != nil {
		t.Fatal(err)
	}
	if string(buf[:2]) != "89" {
		t.Fatalf("current-relative read %q", buf[:2])
	}
	if _, err := f.Seek(-1, io.SeekStart); err == nil {
		t.Fatal("negative seek accepted")
	}
	if _, err := f.Seek(0, 99); err == nil {
		t.Fatal("bad whence accepted")
	}
}

func TestFileReadAtWriteAt(t *testing.T) {
	ctx := context.Background()
	fs := newFS(t)
	f, err := fs.OpenCreate(ctx, "at.txt")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("XYZ"), 5); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 3)
	if _, err := f.ReadAt(buf, 5); err != nil && !errors.Is(err, io.EOF) {
		t.Fatal(err)
	}
	if string(buf) != "XYZ" {
		t.Fatalf("ReadAt %q", buf)
	}
	// Short read at EOF returns io.EOF.
	n, err := f.ReadAt(make([]byte, 10), 6)
	if n != 2 || !errors.Is(err, io.EOF) {
		t.Fatalf("short ReadAt: n=%d err=%v", n, err)
	}
	if _, err := f.ReadAt(buf, -1); err == nil {
		t.Fatal("negative ReadAt offset accepted")
	}
	if _, err := f.WriteAt(buf, -1); err == nil {
		t.Fatal("negative WriteAt offset accepted")
	}
}

func TestFileEOF(t *testing.T) {
	ctx := context.Background()
	fs := newFS(t)
	f, err := fs.OpenCreate(ctx, "eof.txt")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("ab")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(f) // must terminate at EOF
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "ab" {
		t.Fatalf("read %q", got)
	}
	if n, err := f.Read(make([]byte, 4)); n != 0 || !errors.Is(err, io.EOF) {
		t.Fatalf("read past EOF: n=%d err=%v", n, err)
	}
	if n, err := f.Read(nil); n != 0 || err != nil {
		t.Fatalf("zero-length read: n=%d err=%v", n, err)
	}
}

func TestFileCopySemantics(t *testing.T) {
	ctx := context.Background()
	// io.Copy between two handles exercises Reader+Writer together.
	fs := newFS(t)
	src, err := fs.OpenCreate(ctx, "src.txt")
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("amoeba "), 100)
	if _, err := src.Write(payload); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Seek(0, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	dst, err := fs.OpenCreate(ctx, "dst.txt")
	if err != nil {
		t.Fatal(err)
	}
	n, err := io.Copy(dst, src)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(payload)) {
		t.Fatalf("copied %d of %d", n, len(payload))
	}
	got, err := fs.ReadFile(ctx, "dst.txt", 0, uint32(len(payload)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("copy corrupted data")
	}
}

func TestOpenMissing(t *testing.T) {
	ctx := context.Background()
	fs := newFS(t)
	if _, err := fs.Open(ctx, "ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Open missing: %v", err)
	}
}

func TestOpenCreateExisting(t *testing.T) {
	ctx := context.Background()
	fs := newFS(t)
	f1, err := fs.OpenCreate(ctx, "x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f1.Write([]byte("keep")); err != nil {
		t.Fatal(err)
	}
	f2, err := fs.OpenCreate(ctx, "x") // existing: opens, does not truncate
	if err != nil {
		t.Fatal(err)
	}
	size, err := f2.Size()
	if err != nil {
		t.Fatal(err)
	}
	if size != 4 {
		t.Fatalf("OpenCreate truncated existing file: size %d", size)
	}
	if f2.Cap() != f1.Cap() {
		t.Fatal("OpenCreate returned a different object")
	}
	if err := f2.Truncate(2); err != nil {
		t.Fatal(err)
	}
	size, err = f1.Size()
	if err != nil || size != 2 {
		t.Fatalf("truncate not visible through other handle: %d %v", size, err)
	}
}
