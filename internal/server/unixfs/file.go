package unixfs

import (
	"context"
	"fmt"
	"io"

	"amoeba/internal/cap"
)

// File is a sequential handle on a flat file, the UNIX-ish veneer over
// the paper's stateless file server. The *handle* (offset bookkeeping)
// lives entirely in the client — the server still has no concept of an
// open file; every Read/Write is an independent capability-checked
// transaction. File implements io.Reader, io.Writer, io.Seeker,
// io.ReaderAt and io.WriterAt.
//
// Those io interfaces cannot carry a context, so the handle captures
// the context it was opened with and every transaction it issues runs
// under it; derive a handle with a different lifetime via WithContext.
type File struct {
	fs     *FS
	ctx    context.Context
	cap    cap.Capability
	offset uint64
}

// Open returns a handle on the file at path, positioned at byte 0.
// The handle's transactions run under ctx (see File).
func (fs *FS) Open(ctx context.Context, path string) (*File, error) {
	c, err := fs.Lookup(ctx, path)
	if err != nil {
		return nil, err
	}
	return &File{fs: fs, ctx: ctx, cap: c}, nil
}

// OpenCreate opens the file at path, creating it if absent.
func (fs *FS) OpenCreate(ctx context.Context, path string) (*File, error) {
	c, err := fs.Create(ctx, path)
	if err == nil {
		return &File{fs: fs, ctx: ctx, cap: c}, nil
	}
	f, lerr := fs.Open(ctx, path)
	if lerr != nil {
		return nil, err // report the create failure, it is more precise
	}
	return f, nil
}

// WithContext returns an independent handle on the same file whose
// transactions run under ctx. The offset is copied at derivation time
// and the two handles advance separately thereafter.
func (f *File) WithContext(ctx context.Context) *File {
	nf := *f
	nf.ctx = ctx
	return &nf
}

// Cap returns the underlying capability (shareable like any other).
func (f *File) Cap() cap.Capability { return f.cap }

// Read implements io.Reader.
func (f *File) Read(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	data, err := f.fs.files.ReadAt(f.ctx, f.cap, f.offset, clampUint32(len(p)))
	if err != nil {
		return 0, err
	}
	n := copy(p, data)
	f.offset += uint64(n)
	if n == 0 {
		return 0, io.EOF
	}
	return n, nil
}

// Write implements io.Writer.
func (f *File) Write(p []byte) (int, error) {
	if err := f.fs.files.WriteAt(f.ctx, f.cap, f.offset, p); err != nil {
		return 0, err
	}
	f.offset += uint64(len(p))
	return len(p), nil
}

// ReadAt implements io.ReaderAt.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("unixfs: negative offset %d", off)
	}
	data, err := f.fs.files.ReadAt(f.ctx, f.cap, uint64(off), clampUint32(len(p)))
	if err != nil {
		return 0, err
	}
	n := copy(p, data)
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// WriteAt implements io.WriterAt.
func (f *File) WriteAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("unixfs: negative offset %d", off)
	}
	if err := f.fs.files.WriteAt(f.ctx, f.cap, uint64(off), p); err != nil {
		return 0, err
	}
	return len(p), nil
}

// Seek implements io.Seeker.
func (f *File) Seek(offset int64, whence int) (int64, error) {
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = int64(f.offset)
	case io.SeekEnd:
		size, err := f.fs.files.Size(f.ctx, f.cap)
		if err != nil {
			return 0, err
		}
		base = int64(size)
	default:
		return 0, fmt.Errorf("unixfs: bad whence %d", whence)
	}
	pos := base + offset
	if pos < 0 {
		return 0, fmt.Errorf("unixfs: seek to negative position %d", pos)
	}
	f.offset = uint64(pos)
	return pos, nil
}

// Size returns the current file size.
func (f *File) Size() (uint64, error) { return f.fs.files.Size(f.ctx, f.cap) }

// Truncate sets the file size.
func (f *File) Truncate(size uint64) error { return f.fs.files.Truncate(f.ctx, f.cap, size) }

func clampUint32(n int) uint32 {
	if n < 0 {
		return 0
	}
	if n > int(^uint32(0)>>1) {
		return ^uint32(0) >> 1
	}
	return uint32(n)
}
