package unixfs

import (
	"context"
	"errors"
	"testing"

	"amoeba/internal/cap"
	"amoeba/internal/server/blocksvr"
	"amoeba/internal/server/dirsvr"
	"amoeba/internal/server/flatfs"
	"amoeba/internal/server/servertest"
	"amoeba/internal/vdisk"
)

func newFS(t *testing.T) *FS {
	ctx := context.Background()
	t.Helper()
	r := servertest.New(t, 0x0F5)
	scheme, err := cap.NewScheme(cap.SchemeOneWay)
	if err != nil {
		t.Fatal(err)
	}
	disk, err := vdisk.New(512, 128)
	if err != nil {
		t.Fatal(err)
	}
	bs, err := blocksvr.New(r.NewFBox(t), scheme, r.Src, disk)
	if err != nil {
		t.Fatal(err)
	}
	if err := bs.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { bs.Close() })

	fsrv, err := flatfs.New(ctx, r.NewFBox(t), scheme, r.Src, blocksvr.NewClient(r.NewClient(t), bs.PutPort()))
	if err != nil {
		t.Fatal(err)
	}
	if err := fsrv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fsrv.Close() })

	dsrv := dirsvr.New(r.NewFBox(t), scheme, r.Src)
	if err := dsrv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dsrv.Close() })

	dirs := dirsvr.NewClient(r.Client)
	root, err := dirs.CreateDir(ctx, dsrv.PutPort())
	if err != nil {
		t.Fatal(err)
	}
	return New(dirs, flatfs.NewClient(r.Client, fsrv.PutPort()), root)
}

func TestCreateWriteReadFile(t *testing.T) {
	ctx := context.Background()
	fs := newFS(t)
	if _, err := fs.Mkdir(ctx, "home"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Mkdir(ctx, "home/ast"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create(ctx, "home/ast/paper.txt"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(ctx, "home/ast/paper.txt", 0, []byte("sparse capabilities")); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile(ctx, "home/ast/paper.txt", 7, 12)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "capabilities" {
		t.Fatalf("read %q", got)
	}
}

func TestMkdirSemantics(t *testing.T) {
	ctx := context.Background()
	fs := newFS(t)
	if _, err := fs.Mkdir(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Mkdir(ctx, "a"); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate mkdir: %v", err)
	}
	if _, err := fs.Mkdir(ctx, "missing/sub"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("mkdir without parent: %v", err)
	}
	if _, err := fs.Mkdir(ctx, ""); err == nil {
		t.Fatal("empty mkdir succeeded")
	}
}

func TestStat(t *testing.T) {
	ctx := context.Background()
	fs := newFS(t)
	if _, err := fs.Mkdir(ctx, "dir"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create(ctx, "file"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(ctx, "file", 0, []byte("12345")); err != nil {
		t.Fatal(err)
	}
	st, err := fs.Stat(ctx, "dir")
	if err != nil {
		t.Fatal(err)
	}
	if !st.IsDir {
		t.Fatal("dir not reported as directory")
	}
	st, err = fs.Stat(ctx, "file")
	if err != nil {
		t.Fatal(err)
	}
	if st.IsDir || st.Size != 5 {
		t.Fatalf("file stat %+v", st)
	}
	if _, err := fs.Stat(ctx, "ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("stat of missing: %v", err)
	}
}

func TestReadDir(t *testing.T) {
	ctx := context.Background()
	fs := newFS(t)
	if _, err := fs.Mkdir(ctx, "d"); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"zz", "aa", "mm"} {
		if _, err := fs.Create(ctx, "d/"+name); err != nil {
			t.Fatal(err)
		}
	}
	names, err := fs.ReadDir(ctx, "d")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 3 || names[0] != "aa" || names[2] != "zz" {
		t.Fatalf("ReadDir %v", names)
	}
	if _, err := fs.ReadDir(ctx, "d/aa"); !errors.Is(err, ErrNotDirectory) {
		t.Fatalf("ReadDir of file: %v", err)
	}
}

func TestUnlink(t *testing.T) {
	ctx := context.Background()
	fs := newFS(t)
	if _, err := fs.Create(ctx, "doomed"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Unlink(ctx, "doomed"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Lookup(ctx, "doomed"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("lookup after unlink: %v", err)
	}
	if err := fs.Unlink(ctx, "doomed"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double unlink: %v", err)
	}
}

func TestRmdir(t *testing.T) {
	ctx := context.Background()
	fs := newFS(t)
	if _, err := fs.Mkdir(ctx, "d"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create(ctx, "d/f"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rmdir(ctx, "d"); err == nil {
		t.Fatal("rmdir of non-empty directory succeeded")
	}
	if err := fs.Unlink(ctx, "d/f"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rmdir(ctx, "d"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Lookup(ctx, "d"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("lookup after rmdir: %v", err)
	}
}

func TestRename(t *testing.T) {
	ctx := context.Background()
	fs := newFS(t)
	if _, err := fs.Mkdir(ctx, "src"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Mkdir(ctx, "dst"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create(ctx, "src/f"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(ctx, "src/f", 0, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename(ctx, "src/f", "dst/g"); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile(ctx, "dst/g", 0, 7)
	if err != nil || string(got) != "payload" {
		t.Fatalf("after rename: %q %v", got, err)
	}
	if _, err := fs.Lookup(ctx, "src/f"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("old name survives: %v", err)
	}
	// Rename onto an existing name fails.
	if _, err := fs.Create(ctx, "src/f2"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename(ctx, "src/f2", "dst/g"); !errors.Is(err, ErrExists) {
		t.Fatalf("rename onto existing: %v", err)
	}
}

func TestCreateCollision(t *testing.T) {
	ctx := context.Background()
	fs := newFS(t)
	if _, err := fs.Create(ctx, "x"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create(ctx, "x"); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate create: %v", err)
	}
}

func TestFileOpsOnDirectory(t *testing.T) {
	ctx := context.Background()
	fs := newFS(t)
	if _, err := fs.Mkdir(ctx, "d"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(ctx, "d", 0, []byte("x")); err == nil {
		t.Fatal("write to directory succeeded")
	}
	if _, err := fs.ReadFile(ctx, "d", 0, 1); err == nil {
		t.Fatal("read of directory succeeded")
	}
}
