package flatfs

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"amoeba/internal/rpc"
	"amoeba/internal/server/servertest"
	"amoeba/internal/wire"
)

// TestSoakConcurrentClients hammers the flat file server (and,
// through it, the block server) with 64 concurrent client machines,
// each working a private multi-block file — the full nested-RPC,
// batched-transfer path. Run under -race.
func TestSoakConcurrentClients(t *testing.T) {
	r, f, _ := newStack(t, 8192, 128)
	port := f.Port()
	r.Soak(t, servertest.SoakClients, 4, func(ctx context.Context, c *rpc.Client, g, i int) error {
		fc := NewClient(c, port)
		fh, err := fc.Create(ctx)
		if err != nil {
			return err
		}
		// Spans several 128-byte blocks, written at an unaligned
		// offset so both RMW boundary paths run.
		payload := bytes.Repeat([]byte(fmt.Sprintf("<%d:%d>", g, i)), 64)
		if err := fc.WriteAt(ctx, fh, 37, payload); err != nil {
			return err
		}
		got, err := fc.ReadAt(ctx, fh, 37, uint32(len(payload)))
		if err != nil {
			return err
		}
		if !bytes.Equal(got, payload) {
			return fmt.Errorf("read back %d bytes, mismatch", len(got))
		}
		if err := fc.Truncate(ctx, fh, 64); err != nil {
			return err
		}
		if sz, err := fc.Size(ctx, fh); err != nil || sz != 64 {
			return fmt.Errorf("size %d after truncate: %v", sz, err)
		}
		return fc.Destroy(ctx, fh)
	})
}

// TestSoakWireDebugPoison re-runs the concurrent soak with the wire
// pool's poison-on-release mode armed: every released buffer is
// poisoned and checked at reuse, so a handler (or client) that
// retained a payload past its release and wrote through it panics the
// run. Combined with -race this is the buffer-lifetime proof for the
// whole stack — flat file server, nested block-server batches, pooled
// reply listeners and all.
func TestSoakWireDebugPoison(t *testing.T) {
	wire.SetDebug(true)
	t.Cleanup(func() { wire.SetDebug(false) })
	r, f, _ := newStack(t, 8192, 128)
	port := f.Port()
	r.Soak(t, servertest.SoakClients, 2, func(ctx context.Context, c *rpc.Client, g, i int) error {
		fc := NewClient(c, port)
		fh, err := fc.Create(ctx)
		if err != nil {
			return err
		}
		payload := bytes.Repeat([]byte(fmt.Sprintf("[%d:%d]", g, i)), 48)
		if err := fc.WriteAt(ctx, fh, 19, payload); err != nil {
			return err
		}
		got, err := fc.ReadAt(ctx, fh, 19, uint32(len(payload)))
		if err != nil {
			return err
		}
		if !bytes.Equal(got, payload) {
			return fmt.Errorf("read back %d bytes, mismatch", len(got))
		}
		return fc.Destroy(ctx, fh)
	})
}
