// Package flatfs implements the Amoeba flat file server (§3.3): files
// are linear byte sequences with CREATE FILE, DESTROY FILE, WRITE FILE
// and READ FILE, each operation naming the file by capability and a
// position by parameter. "The server does not have any concept of an
// 'open' file. One can operate on any file for which a valid
// capability can be presented."
//
// True to the modular design of §3.2, the flat file server stores its
// data through a *block server client*: it is itself an ordinary
// client of another capability-protected service, holding block
// capabilities in its file tables. The two servers may run on
// different machines; the file server neither knows nor cares.
package flatfs

import (
	"context"
	"encoding/binary"
	"fmt"
	"sync"

	"amoeba/internal/cap"
	"amoeba/internal/crypto"
	"amoeba/internal/fbox"
	"amoeba/internal/rpc"
	"amoeba/internal/server/blocksvr"
	"amoeba/internal/store"
	"amoeba/internal/svc"
)

// Operation codes.
const (
	// OpCreate creates an empty file and returns its capability.
	OpCreate uint16 = 0x0300 + iota
	// OpDestroy destroys the file, freeing its blocks. Needs
	// RightDestroy.
	OpDestroy
	// OpWrite writes at a position: data = pos(8) ∥ bytes. The file
	// grows as needed. Needs RightWrite.
	OpWrite
	// OpRead reads from a position: data = pos(8) ∥ length(4); returns
	// up to length bytes, short at end of file. Needs RightRead.
	OpRead
	// OpSize returns the file size (8 bytes). Needs RightRead.
	OpSize
	// OpTruncate sets the size: data = size(8). Shrinking frees whole
	// blocks beyond the new end. Needs RightWrite.
	OpTruncate
)

// MaxFileSize bounds a single file (256 MiB here; the object is to
// keep runaway tests honest, not to model 1986 drives).
const MaxFileSize = 256 << 20

// file is the per-file table entry: the block capabilities that make
// up the file, in order, plus the byte size.
type file struct {
	mu     sync.RWMutex
	size   uint64
	blocks []cap.Capability
}

// Server is a flat file server instance. The file index is a
// lock-striped map keyed by object number with a lock per file, so
// operations on different files proceed in parallel; block transfers
// to the block server ride OpBatch frames, so a spanning read or
// write costs one nested round trip instead of one per block.
type Server struct {
	*svc.Kernel
	table  *cap.Table
	blocks *blocksvr.Client
	bsize  uint64

	files *store.Map[*file]
}

// New builds a flat file server on the service kernel, storing data
// via blocks, whose block size it learns with a Stat transaction at
// construction time (bounded by ctx).
func New(ctx context.Context, fb *fbox.FBox, scheme cap.Scheme, src crypto.Source, blocks *blocksvr.Client) (*Server, error) {
	bs, _, _, err := blocks.Stat(ctx)
	if err != nil {
		return nil, fmt.Errorf("flatfs: probing block server: %w", err)
	}
	s := &Server{
		Kernel: svc.New(fb, scheme, src),
		blocks: blocks,
		bsize:  uint64(bs),
		files:  store.New[*file](0),
	}
	s.table = s.Table()
	s.Handle(OpCreate, s.create)
	s.Handle(OpDestroy, s.destroy)
	s.Handle(OpWrite, s.write)
	s.Handle(OpRead, s.read)
	s.Handle(OpSize, s.sizeOp)
	s.Handle(OpTruncate, s.truncate)
	return s, nil
}

func (s *Server) create(_ context.Context, _ rpc.Meta, _ rpc.Request) rpc.Reply {
	c, err := s.table.Create()
	if err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	s.files.Put(c.Object, &file{})
	return rpc.CapReply(c)
}

func (s *Server) lookup(c cap.Capability, need cap.Rights) (*file, error) {
	if _, err := s.table.Demand(c, need); err != nil {
		return nil, err
	}
	f, ok := s.files.Get(c.Object)
	if !ok {
		return nil, fmt.Errorf("flatfs: object %d: %w", c.Object, cap.ErrNoSuchObject)
	}
	return f, nil
}

func (s *Server) destroy(ctx context.Context, _ rpc.Meta, req rpc.Request) rpc.Reply {
	f, err := s.lookup(req.Cap, cap.RightDestroy)
	if err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	// Winning the state delete elects THE destroyer: state leaves the
	// map before the number can be reused, and only the winner retires
	// the (already Demand-checked) table entry — by number, so a
	// concurrent revoke cannot leave an orphaned entry behind.
	if _, ok := s.files.Delete(req.Cap.Object); !ok {
		return rpc.ErrReplyFromErr(fmt.Errorf("flatfs: object %d: %w", req.Cap.Object, cap.ErrNoSuchObject))
	}
	if err := s.table.DestroyObject(req.Cap.Object); err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	f.mu.Lock()
	blocks := f.blocks
	f.blocks = nil
	f.size = 0
	f.mu.Unlock()
	// Free the data blocks in batched frames; best effort (an
	// unreachable block server leaves orphans, the 1986 answer being a
	// scavenger pass). The file object is already gone, so this
	// cleanup must not be cut short by the caller's deadline — but it
	// still aborts on server shutdown.
	_ = s.blocks.FreeBatch(rpc.WithoutDeadline(ctx), blocks)
	return rpc.OkReply(nil)
}

func (s *Server) write(ctx context.Context, _ rpc.Meta, req rpc.Request) rpc.Reply {
	if len(req.Data) < 8 {
		return rpc.ErrReply(rpc.StatusBadRequest, "write wants pos(8) ∥ bytes")
	}
	f, err := s.lookup(req.Cap, cap.RightWrite)
	if err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	pos := binary.BigEndian.Uint64(req.Data)
	payload := req.Data[8:]
	if pos+uint64(len(payload)) > MaxFileSize {
		return rpc.ErrReply(rpc.StatusBadRequest, "file size limit exceeded")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	end := pos + uint64(len(payload))
	if err := s.growLocked(ctx, f, end); err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	// An empty write only extends the file (possibly growing it) —
	// there is no span to rewrite.
	if len(payload) == 0 {
		if end > f.size {
			f.size = end
		}
		return rpc.OkReply(nil)
	}
	// Read-modify-write, batched: only boundary blocks the payload
	// covers partially need their current contents fetched; interior
	// blocks are fully overwritten. All reads ride one batch frame,
	// then all writes ride another — two nested round trips for the
	// whole span instead of two per block.
	first := pos / s.bsize
	last := (end - 1) / s.bsize
	var partial []cap.Capability
	var partialIdx []uint64
	for bi := first; bi <= last; bi++ {
		bstart := bi * s.bsize
		if pos > bstart || end < bstart+s.bsize {
			partial = append(partial, f.blocks[bi])
			partialIdx = append(partialIdx, bi)
		}
	}
	old := make(map[uint64][]byte, len(partial))
	if len(partial) > 0 {
		blks, err := s.blocks.ReadBatch(ctx, partial)
		if err != nil {
			return rpc.ErrReplyFromErr(err)
		}
		for i, bi := range partialIdx {
			old[bi] = blks[i]
		}
	}
	caps := make([]cap.Capability, 0, last-first+1)
	images := make([][]byte, 0, last-first+1)
	for bi := first; bi <= last; bi++ {
		blk := old[bi]
		if blk == nil {
			blk = make([]byte, s.bsize)
		}
		bstart := bi * s.bsize
		lo := uint64(0)
		if pos > bstart {
			lo = pos - bstart
		}
		hi := s.bsize
		if end < bstart+s.bsize {
			hi = end - bstart
		}
		copy(blk[lo:hi], payload[bstart+lo-pos:])
		caps = append(caps, f.blocks[bi])
		images = append(images, blk)
	}
	if err := s.blocks.WriteBatch(ctx, caps, images); err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	if end > f.size {
		f.size = end
	}
	return rpc.OkReply(nil)
}

// growLocked extends the block list to cover [0, end), allocating all
// missing blocks in one batched transaction.
func (s *Server) growLocked(ctx context.Context, f *file, end uint64) error {
	need := int((end + s.bsize - 1) / s.bsize)
	if missing := need - len(f.blocks); missing > 0 {
		bs, err := s.blocks.AllocBatch(ctx, missing)
		// Keep whatever was allocated — it is tracked for later
		// freeing either way.
		f.blocks = append(f.blocks, bs...)
		if err != nil {
			return fmt.Errorf("flatfs: allocating %d blocks: %w", missing, err)
		}
	}
	return nil
}

func (s *Server) read(ctx context.Context, _ rpc.Meta, req rpc.Request) rpc.Reply {
	if len(req.Data) != 12 {
		return rpc.ErrReply(rpc.StatusBadRequest, "read wants pos(8) ∥ length(4)")
	}
	f, err := s.lookup(req.Cap, cap.RightRead)
	if err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	pos := binary.BigEndian.Uint64(req.Data)
	want := uint64(binary.BigEndian.Uint32(req.Data[8:]))
	f.mu.RLock()
	defer f.mu.RUnlock()
	if pos >= f.size {
		return rpc.OkReply(nil) // read at or past EOF: empty
	}
	if pos+want > f.size {
		want = f.size - pos
	}
	if want == 0 {
		return rpc.OkReply(nil)
	}
	// Fetch every spanned block in one batched transaction — the
	// headline win over a per-block read loop (see BenchmarkBatch_*).
	first := pos / s.bsize
	last := (pos + want - 1) / s.bsize
	blks, err := s.blocks.ReadBatch(ctx, f.blocks[first:last+1])
	if err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	// Assemble the span in a pooled reply buffer that ships on the
	// wire in place.
	out := rpc.NewReplyBuf(int(want))
	for off := pos; off < pos+want; {
		bi := off / s.bsize
		bo := off % s.bsize
		n := s.bsize - bo
		if n > pos+want-off {
			n = pos + want - off
		}
		out.AppendBytes(blks[bi-first][bo : bo+n])
		off += n
	}
	return rpc.OkReplyBuf(out)
}

func (s *Server) sizeOp(_ context.Context, _ rpc.Meta, req rpc.Request) rpc.Reply {
	f, err := s.lookup(req.Cap, cap.RightRead)
	if err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	var out [8]byte
	binary.BigEndian.PutUint64(out[:], f.size)
	return rpc.OkReply(out[:])
}

func (s *Server) truncate(ctx context.Context, _ rpc.Meta, req rpc.Request) rpc.Reply {
	if len(req.Data) != 8 {
		return rpc.ErrReply(rpc.StatusBadRequest, "truncate wants size(8)")
	}
	f, err := s.lookup(req.Cap, cap.RightWrite)
	if err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	newSize := binary.BigEndian.Uint64(req.Data)
	if newSize > MaxFileSize {
		return rpc.ErrReply(rpc.StatusBadRequest, "file size limit exceeded")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if newSize >= f.size {
		if err := s.growLocked(ctx, f, newSize); err != nil {
			return rpc.ErrReplyFromErr(err)
		}
		f.size = newSize
		return rpc.OkReply(nil)
	}
	keep := int((newSize + s.bsize - 1) / s.bsize)
	freed := append([]cap.Capability(nil), f.blocks[keep:]...)
	f.blocks = f.blocks[:keep]
	f.size = newSize
	// Past the point of no return: the frees and the tail zeroing run
	// under a context immune to the caller's deadline (see destroy).
	// Zeroing strictly after the size commit means a lost reply can at
	// worst leave stale bytes past EOF, never touch live data.
	cleanup := rpc.WithoutDeadline(ctx)
	_ = s.blocks.FreeBatch(cleanup, freed)
	// Zero the tail of the last kept block so regrowth reads zeros.
	if keep > 0 && newSize%s.bsize != 0 {
		blk, err := s.blocks.Read(cleanup, f.blocks[keep-1])
		if err != nil {
			return rpc.ErrReplyFromErr(err)
		}
		for i := newSize % s.bsize; i < s.bsize; i++ {
			blk[i] = 0
		}
		if err := s.blocks.Write(cleanup, f.blocks[keep-1], blk); err != nil {
			return rpc.ErrReplyFromErr(err)
		}
	}
	return rpc.OkReply(nil)
}

// Client is the typed client for a flat file server.
type Client struct {
	c    *rpc.Client
	port cap.Port
}

// NewClient builds a client speaking to the file server at port.
func NewClient(c *rpc.Client, port cap.Port) *Client {
	return &Client{c: c, port: port}
}

// Port returns the server's put-port.
func (f *Client) Port() cap.Port { return f.port }

// Create creates an empty file and returns its capability.
func (f *Client) Create(ctx context.Context) (cap.Capability, error) {
	rep, err := f.c.Trans(ctx, f.port, rpc.Request{Op: OpCreate})
	if err != nil {
		return cap.Nil, err
	}
	if rep.Status != rpc.StatusOK {
		return cap.Nil, &rpc.StatusError{Status: rep.Status, Detail: string(rep.Data)}
	}
	return rep.Cap, nil
}

// Destroy destroys the file.
func (f *Client) Destroy(ctx context.Context, fc cap.Capability) error {
	_, err := f.c.Call(ctx, fc, OpDestroy, nil)
	return err
}

// transferChunk bounds a single WRITE/READ transaction's data so
// requests stay well under the network MTU; larger operations are
// split into a succession of transactions, exactly the §2.3 example's
// "succession of data messages, each containing the capability and
// some data".
const transferChunk = 64 << 10

// WriteAt writes data at pos, growing the file as needed. Writes
// larger than one transaction's worth are split into a succession of
// messages; each chunk is atomic, the whole write is not (neither were
// the paper's).
func (f *Client) WriteAt(ctx context.Context, fc cap.Capability, pos uint64, data []byte) error {
	for {
		n := len(data)
		if n > transferChunk {
			n = transferChunk
		}
		var hdr [8]byte
		binary.BigEndian.PutUint64(hdr[:], pos)
		if _, err := f.c.CallParts(ctx, fc, OpWrite, hdr[:], data[:n]); err != nil {
			return err
		}
		pos += uint64(n)
		data = data[n:]
		if len(data) == 0 {
			return nil
		}
	}
}

// ReadAt reads up to length bytes at pos (short at EOF), splitting
// large reads into a succession of transactions.
func (f *Client) ReadAt(ctx context.Context, fc cap.Capability, pos uint64, length uint32) ([]byte, error) {
	var out []byte
	for length > 0 {
		n := length
		if n > transferChunk {
			n = transferChunk
		}
		var buf [12]byte
		binary.BigEndian.PutUint64(buf[0:], pos)
		binary.BigEndian.PutUint32(buf[8:], n)
		rep, err := f.c.Call(ctx, fc, OpRead, buf[:])
		if err != nil {
			return nil, err
		}
		if out == nil && uint32(len(rep.Data)) == length {
			return rep.Data, nil // common single-chunk case: no copy
		}
		out = append(out, rep.Data...)
		if uint32(len(rep.Data)) < n {
			break // EOF
		}
		pos += uint64(n)
		length -= n
	}
	return out, nil
}

// Size returns the file size.
func (f *Client) Size(ctx context.Context, fc cap.Capability) (uint64, error) {
	rep, err := f.c.Call(ctx, fc, OpSize, nil)
	if err != nil {
		return 0, err
	}
	if len(rep.Data) != 8 {
		return 0, fmt.Errorf("flatfs: size reply %d bytes", len(rep.Data))
	}
	return binary.BigEndian.Uint64(rep.Data), nil
}

// Truncate sets the file size.
func (f *Client) Truncate(ctx context.Context, fc cap.Capability, size uint64) error {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], size)
	_, err := f.c.Call(ctx, fc, OpTruncate, buf[:])
	return err
}

// Restrict fabricates a weaker capability via the server.
func (f *Client) Restrict(ctx context.Context, c cap.Capability, mask cap.Rights) (cap.Capability, error) {
	return f.c.Restrict(ctx, c, mask)
}

// Revoke re-keys the file object.
func (f *Client) Revoke(ctx context.Context, c cap.Capability) (cap.Capability, error) {
	return f.c.Revoke(ctx, c)
}
