// Package flatfs implements the Amoeba flat file server (§3.3): files
// are linear byte sequences with CREATE FILE, DESTROY FILE, WRITE FILE
// and READ FILE, each operation naming the file by capability and a
// position by parameter. "The server does not have any concept of an
// 'open' file. One can operate on any file for which a valid
// capability can be presented."
//
// True to the modular design of §3.2, the flat file server stores its
// data through a *block server client*: it is itself an ordinary
// client of another capability-protected service, holding block
// capabilities in its file tables. The two servers may run on
// different machines; the file server neither knows nor cares.
package flatfs

import (
	"context"
	"encoding/binary"
	"fmt"
	"sync"

	"amoeba/internal/cap"
	"amoeba/internal/crypto"
	"amoeba/internal/fbox"
	"amoeba/internal/rpc"
	"amoeba/internal/server/blocksvr"
)

// Operation codes.
const (
	// OpCreate creates an empty file and returns its capability.
	OpCreate uint16 = 0x0300 + iota
	// OpDestroy destroys the file, freeing its blocks. Needs
	// RightDestroy.
	OpDestroy
	// OpWrite writes at a position: data = pos(8) ∥ bytes. The file
	// grows as needed. Needs RightWrite.
	OpWrite
	// OpRead reads from a position: data = pos(8) ∥ length(4); returns
	// up to length bytes, short at end of file. Needs RightRead.
	OpRead
	// OpSize returns the file size (8 bytes). Needs RightRead.
	OpSize
	// OpTruncate sets the size: data = size(8). Shrinking frees whole
	// blocks beyond the new end. Needs RightWrite.
	OpTruncate
)

// MaxFileSize bounds a single file (256 MiB here; the object is to
// keep runaway tests honest, not to model 1986 drives).
const MaxFileSize = 256 << 20

// file is the per-file table entry: the block capabilities that make
// up the file, in order, plus the byte size.
type file struct {
	mu     sync.RWMutex
	size   uint64
	blocks []cap.Capability
}

// Server is a flat file server instance.
type Server struct {
	rpc    *rpc.Server
	table  *cap.Table
	blocks *blocksvr.Client
	bsize  uint64

	mu    sync.RWMutex
	files map[uint32]*file
}

// New builds a flat file server storing data via blocks, whose block
// size it learns with a Stat transaction at construction time (bounded
// by ctx).
func New(ctx context.Context, fb *fbox.FBox, scheme cap.Scheme, src crypto.Source, blocks *blocksvr.Client) (*Server, error) {
	bs, _, _, err := blocks.Stat(ctx)
	if err != nil {
		return nil, fmt.Errorf("flatfs: probing block server: %w", err)
	}
	s := &Server{
		blocks: blocks,
		bsize:  uint64(bs),
		files:  make(map[uint32]*file),
	}
	s.rpc = rpc.NewServer(fb, src)
	s.table = cap.NewTable(scheme, s.rpc.PutPort(), src)
	s.rpc.ServeTable(s.table)
	s.rpc.Handle(OpCreate, s.create)
	s.rpc.Handle(OpDestroy, s.destroy)
	s.rpc.Handle(OpWrite, s.write)
	s.rpc.Handle(OpRead, s.read)
	s.rpc.Handle(OpSize, s.sizeOp)
	s.rpc.Handle(OpTruncate, s.truncate)
	return s, nil
}

// Start begins serving.
func (s *Server) Start() error { return s.rpc.Start() }

// Close stops the server.
func (s *Server) Close() error { return s.rpc.Close() }

// PutPort returns the server's public put-port.
func (s *Server) PutPort() cap.Port { return s.rpc.PutPort() }

// Table exposes the object table.
func (s *Server) Table() *cap.Table { return s.table }

func (s *Server) create(_ context.Context, _ rpc.Meta, _ rpc.Request) rpc.Reply {
	c, err := s.table.Create()
	if err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	s.mu.Lock()
	s.files[c.Object] = &file{}
	s.mu.Unlock()
	return rpc.CapReply(c)
}

func (s *Server) lookup(c cap.Capability, need cap.Rights) (*file, error) {
	if _, err := s.table.Demand(c, need); err != nil {
		return nil, err
	}
	s.mu.RLock()
	f := s.files[c.Object]
	s.mu.RUnlock()
	if f == nil {
		return nil, fmt.Errorf("flatfs: object %d: %w", c.Object, cap.ErrNoSuchObject)
	}
	return f, nil
}

func (s *Server) destroy(ctx context.Context, _ rpc.Meta, req rpc.Request) rpc.Reply {
	f, err := s.lookup(req.Cap, cap.RightDestroy)
	if err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	if err := s.table.Destroy(req.Cap); err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	s.mu.Lock()
	delete(s.files, req.Cap.Object)
	s.mu.Unlock()
	f.mu.Lock()
	blocks := f.blocks
	f.blocks = nil
	f.size = 0
	f.mu.Unlock()
	// Free the data blocks; best effort (an unreachable block server
	// leaves orphans, the 1986 answer being a scavenger pass). The file
	// object is already gone, so this cleanup must not be cut short by
	// the caller's deadline — but it still aborts on server shutdown.
	cleanup := rpc.WithoutDeadline(ctx)
	for _, b := range blocks {
		_ = s.blocks.Free(cleanup, b)
	}
	return rpc.OkReply(nil)
}

func (s *Server) write(ctx context.Context, _ rpc.Meta, req rpc.Request) rpc.Reply {
	if len(req.Data) < 8 {
		return rpc.ErrReply(rpc.StatusBadRequest, "write wants pos(8) ∥ bytes")
	}
	f, err := s.lookup(req.Cap, cap.RightWrite)
	if err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	pos := binary.BigEndian.Uint64(req.Data)
	payload := req.Data[8:]
	if pos+uint64(len(payload)) > MaxFileSize {
		return rpc.ErrReply(rpc.StatusBadRequest, "file size limit exceeded")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	end := pos + uint64(len(payload))
	if err := s.growLocked(ctx, f, end); err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	// Read-modify-write each spanned block.
	for off := pos; off < end; {
		bi := off / s.bsize
		bo := off % s.bsize
		n := s.bsize - bo
		if n > end-off {
			n = end - off
		}
		blk, err := s.blocks.Read(ctx, f.blocks[bi])
		if err != nil {
			return rpc.ErrReplyFromErr(err)
		}
		copy(blk[bo:bo+n], payload[off-pos:])
		if err := s.blocks.Write(ctx, f.blocks[bi], blk); err != nil {
			return rpc.ErrReplyFromErr(err)
		}
		off += n
	}
	if end > f.size {
		f.size = end
	}
	return rpc.OkReply(nil)
}

// growLocked extends the block list to cover [0, end).
func (s *Server) growLocked(ctx context.Context, f *file, end uint64) error {
	need := int((end + s.bsize - 1) / s.bsize)
	for len(f.blocks) < need {
		b, err := s.blocks.Alloc(ctx)
		if err != nil {
			return fmt.Errorf("flatfs: allocating block: %w", err)
		}
		f.blocks = append(f.blocks, b)
	}
	return nil
}

func (s *Server) read(ctx context.Context, _ rpc.Meta, req rpc.Request) rpc.Reply {
	if len(req.Data) != 12 {
		return rpc.ErrReply(rpc.StatusBadRequest, "read wants pos(8) ∥ length(4)")
	}
	f, err := s.lookup(req.Cap, cap.RightRead)
	if err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	pos := binary.BigEndian.Uint64(req.Data)
	want := uint64(binary.BigEndian.Uint32(req.Data[8:]))
	f.mu.RLock()
	defer f.mu.RUnlock()
	if pos >= f.size {
		return rpc.OkReply(nil) // read at or past EOF: empty
	}
	if pos+want > f.size {
		want = f.size - pos
	}
	out := make([]byte, 0, want)
	for off := pos; off < pos+want; {
		bi := off / s.bsize
		bo := off % s.bsize
		n := s.bsize - bo
		if n > pos+want-off {
			n = pos + want - off
		}
		blk, err := s.blocks.Read(ctx, f.blocks[bi])
		if err != nil {
			return rpc.ErrReplyFromErr(err)
		}
		out = append(out, blk[bo:bo+n]...)
		off += n
	}
	return rpc.OkReply(out)
}

func (s *Server) sizeOp(_ context.Context, _ rpc.Meta, req rpc.Request) rpc.Reply {
	f, err := s.lookup(req.Cap, cap.RightRead)
	if err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	var out [8]byte
	binary.BigEndian.PutUint64(out[:], f.size)
	return rpc.OkReply(out[:])
}

func (s *Server) truncate(ctx context.Context, _ rpc.Meta, req rpc.Request) rpc.Reply {
	if len(req.Data) != 8 {
		return rpc.ErrReply(rpc.StatusBadRequest, "truncate wants size(8)")
	}
	f, err := s.lookup(req.Cap, cap.RightWrite)
	if err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	newSize := binary.BigEndian.Uint64(req.Data)
	if newSize > MaxFileSize {
		return rpc.ErrReply(rpc.StatusBadRequest, "file size limit exceeded")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if newSize >= f.size {
		if err := s.growLocked(ctx, f, newSize); err != nil {
			return rpc.ErrReplyFromErr(err)
		}
		f.size = newSize
		return rpc.OkReply(nil)
	}
	keep := int((newSize + s.bsize - 1) / s.bsize)
	freed := f.blocks[keep:]
	f.blocks = f.blocks[:keep]
	f.size = newSize
	// Past the point of no return: the frees and the tail zeroing run
	// under a context immune to the caller's deadline (see destroy).
	// Zeroing strictly after the size commit means a lost reply can at
	// worst leave stale bytes past EOF, never touch live data.
	cleanup := rpc.WithoutDeadline(ctx)
	for _, b := range freed {
		_ = s.blocks.Free(cleanup, b)
	}
	// Zero the tail of the last kept block so regrowth reads zeros.
	if keep > 0 && newSize%s.bsize != 0 {
		blk, err := s.blocks.Read(cleanup, f.blocks[keep-1])
		if err != nil {
			return rpc.ErrReplyFromErr(err)
		}
		for i := newSize % s.bsize; i < s.bsize; i++ {
			blk[i] = 0
		}
		if err := s.blocks.Write(cleanup, f.blocks[keep-1], blk); err != nil {
			return rpc.ErrReplyFromErr(err)
		}
	}
	return rpc.OkReply(nil)
}

// Client is the typed client for a flat file server.
type Client struct {
	c    *rpc.Client
	port cap.Port
}

// NewClient builds a client speaking to the file server at port.
func NewClient(c *rpc.Client, port cap.Port) *Client {
	return &Client{c: c, port: port}
}

// Port returns the server's put-port.
func (f *Client) Port() cap.Port { return f.port }

// Create creates an empty file and returns its capability.
func (f *Client) Create(ctx context.Context) (cap.Capability, error) {
	rep, err := f.c.Trans(ctx, f.port, rpc.Request{Op: OpCreate})
	if err != nil {
		return cap.Nil, err
	}
	if rep.Status != rpc.StatusOK {
		return cap.Nil, &rpc.StatusError{Status: rep.Status, Detail: string(rep.Data)}
	}
	return rep.Cap, nil
}

// Destroy destroys the file.
func (f *Client) Destroy(ctx context.Context, fc cap.Capability) error {
	_, err := f.c.Call(ctx, fc, OpDestroy, nil)
	return err
}

// transferChunk bounds a single WRITE/READ transaction's data so
// requests stay well under the network MTU; larger operations are
// split into a succession of transactions, exactly the §2.3 example's
// "succession of data messages, each containing the capability and
// some data".
const transferChunk = 64 << 10

// WriteAt writes data at pos, growing the file as needed. Writes
// larger than one transaction's worth are split into a succession of
// messages; each chunk is atomic, the whole write is not (neither were
// the paper's).
func (f *Client) WriteAt(ctx context.Context, fc cap.Capability, pos uint64, data []byte) error {
	for {
		n := len(data)
		if n > transferChunk {
			n = transferChunk
		}
		buf := make([]byte, 8+n)
		binary.BigEndian.PutUint64(buf, pos)
		copy(buf[8:], data[:n])
		if _, err := f.c.Call(ctx, fc, OpWrite, buf); err != nil {
			return err
		}
		pos += uint64(n)
		data = data[n:]
		if len(data) == 0 {
			return nil
		}
	}
}

// ReadAt reads up to length bytes at pos (short at EOF), splitting
// large reads into a succession of transactions.
func (f *Client) ReadAt(ctx context.Context, fc cap.Capability, pos uint64, length uint32) ([]byte, error) {
	var out []byte
	for length > 0 {
		n := length
		if n > transferChunk {
			n = transferChunk
		}
		var buf [12]byte
		binary.BigEndian.PutUint64(buf[0:], pos)
		binary.BigEndian.PutUint32(buf[8:], n)
		rep, err := f.c.Call(ctx, fc, OpRead, buf[:])
		if err != nil {
			return nil, err
		}
		if out == nil && uint32(len(rep.Data)) == length {
			return rep.Data, nil // common single-chunk case: no copy
		}
		out = append(out, rep.Data...)
		if uint32(len(rep.Data)) < n {
			break // EOF
		}
		pos += uint64(n)
		length -= n
	}
	return out, nil
}

// Size returns the file size.
func (f *Client) Size(ctx context.Context, fc cap.Capability) (uint64, error) {
	rep, err := f.c.Call(ctx, fc, OpSize, nil)
	if err != nil {
		return 0, err
	}
	if len(rep.Data) != 8 {
		return 0, fmt.Errorf("flatfs: size reply %d bytes", len(rep.Data))
	}
	return binary.BigEndian.Uint64(rep.Data), nil
}

// Truncate sets the file size.
func (f *Client) Truncate(ctx context.Context, fc cap.Capability, size uint64) error {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], size)
	_, err := f.c.Call(ctx, fc, OpTruncate, buf[:])
	return err
}

// Restrict fabricates a weaker capability via the server.
func (f *Client) Restrict(ctx context.Context, c cap.Capability, mask cap.Rights) (cap.Capability, error) {
	return f.c.Restrict(ctx, c, mask)
}

// Revoke re-keys the file object.
func (f *Client) Revoke(ctx context.Context, c cap.Capability) (cap.Capability, error) {
	return f.c.Revoke(ctx, c)
}

// SetSealer installs a §2.4 capability sealer on the server transport
// (call before Start).
func (s *Server) SetSealer(sealer rpc.CapSealer) { s.rpc.SetSealer(sealer) }
