package flatfs

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"amoeba/internal/cap"
	"amoeba/internal/rpc"
	"amoeba/internal/server/blocksvr"
	"amoeba/internal/server/servertest"
	"amoeba/internal/vdisk"
)

// newStack builds block server + flat file server on separate machines.
func newStack(t *testing.T, nblocks uint32, blockSize int) (*servertest.Rig, *Client, *blocksvr.Client) {
	ctx := context.Background()
	t.Helper()
	r := servertest.New(t, 0xF1A7)
	scheme, err := cap.NewScheme(cap.SchemeOneWay)
	if err != nil {
		t.Fatal(err)
	}
	disk, err := vdisk.New(nblocks, blockSize)
	if err != nil {
		t.Fatal(err)
	}
	bs, err := blocksvr.New(r.NewFBox(t), scheme, r.Src, disk)
	if err != nil {
		t.Fatal(err)
	}
	if err := bs.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { bs.Close() })

	// The file server is a *client* of the block server, on its own
	// machine with its own RPC client.
	fsFB := r.NewFBox(t)
	fsRPC := r.NewClient(t)
	bclient := blocksvr.NewClient(fsRPC, bs.PutPort())
	fs, err := New(ctx, fsFB, scheme, r.Src, bclient)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fs.Close() })
	return r, NewClient(r.Client, fs.PutPort()), blocksvr.NewClient(r.Client, bs.PutPort())
}

func TestCreateWriteRead(t *testing.T) {
	ctx := context.Background()
	_, fc, _ := newStack(t, 64, 64)
	f, err := fc.Create(ctx)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("files are linear byte sequences numbered from 0 to size-1")
	if err := fc.WriteAt(ctx, f, 0, msg); err != nil {
		t.Fatal(err)
	}
	got, err := fc.ReadAt(ctx, f, 0, uint32(len(msg)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("read %q", got)
	}
	size, err := fc.Size(ctx, f)
	if err != nil {
		t.Fatal(err)
	}
	if size != uint64(len(msg)) {
		t.Fatalf("size = %d", size)
	}
}

func TestWriteSpansBlocks(t *testing.T) {
	ctx := context.Background()
	_, fc, _ := newStack(t, 64, 16) // tiny blocks force spanning
	f, err := fc.Create(ctx)
	if err != nil {
		t.Fatal(err)
	}
	msg := bytes.Repeat([]byte("0123456789"), 10) // 100 bytes over 16-byte blocks
	if err := fc.WriteAt(ctx, f, 5, msg); err != nil {
		t.Fatal(err)
	}
	got, err := fc.ReadAt(ctx, f, 5, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("cross-block write corrupted data")
	}
	// Leading gap reads as zeros.
	head, err := fc.ReadAt(ctx, f, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(head, make([]byte, 5)) {
		t.Fatalf("hole read %v", head)
	}
}

func TestReadPastEOF(t *testing.T) {
	ctx := context.Background()
	_, fc, _ := newStack(t, 16, 32)
	f, err := fc.Create(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := fc.WriteAt(ctx, f, 0, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	got, err := fc.ReadAt(ctx, f, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "bc" {
		t.Fatalf("short read %q", got)
	}
	empty, err := fc.ReadAt(ctx, f, 50, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(empty) != 0 {
		t.Fatalf("read past EOF returned %d bytes", len(empty))
	}
}

func TestOverwrite(t *testing.T) {
	ctx := context.Background()
	_, fc, _ := newStack(t, 16, 32)
	f, err := fc.Create(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := fc.WriteAt(ctx, f, 0, []byte("aaaaaaaaaa")); err != nil {
		t.Fatal(err)
	}
	if err := fc.WriteAt(ctx, f, 3, []byte("BBB")); err != nil {
		t.Fatal(err)
	}
	got, err := fc.ReadAt(ctx, f, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "aaaBBBaaaa" {
		t.Fatalf("overwrite result %q", got)
	}
}

func TestDestroyFreesBlocks(t *testing.T) {
	ctx := context.Background()
	_, fc, bc := newStack(t, 8, 32)
	_, _, before, err := bc.Stat(ctx)
	if err != nil {
		t.Fatal(err)
	}
	f, err := fc.Create(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := fc.WriteAt(ctx, f, 0, make([]byte, 100)); err != nil { // 4 blocks
		t.Fatal(err)
	}
	_, _, during, err := bc.Stat(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if during != before-4 {
		t.Fatalf("blocks in use: %d -> %d, want 4 fewer", before, during)
	}
	if err := fc.Destroy(ctx, f); err != nil {
		t.Fatal(err)
	}
	_, _, after, err := bc.Stat(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if after != before {
		t.Fatalf("blocks leaked: before %d after %d", before, after)
	}
	if _, err := fc.ReadAt(ctx, f, 0, 1); !rpc.IsStatus(err, rpc.StatusBadCapability) {
		t.Fatalf("read of destroyed file: %v", err)
	}
}

func TestTruncate(t *testing.T) {
	ctx := context.Background()
	_, fc, bc := newStack(t, 16, 16)
	f, err := fc.Create(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := fc.WriteAt(ctx, f, 0, bytes.Repeat([]byte{0xAA}, 40)); err != nil {
		t.Fatal(err)
	}
	if err := fc.Truncate(ctx, f, 10); err != nil {
		t.Fatal(err)
	}
	size, err := fc.Size(ctx, f)
	if err != nil {
		t.Fatal(err)
	}
	if size != 10 {
		t.Fatalf("size after truncate = %d", size)
	}
	_, _, free, err := bc.Stat(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if free != 15 { // 40 bytes used 3 blocks; 10 bytes keeps 1
		t.Fatalf("free blocks after shrink = %d, want 15", free)
	}
	// Regrow: the tail must read as zeros, not stale 0xAA.
	if err := fc.Truncate(ctx, f, 16); err != nil {
		t.Fatal(err)
	}
	got, err := fc.ReadAt(ctx, f, 10, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, 6)) {
		t.Fatalf("regrown tail leaked data: %v", got)
	}
}

func TestFileRights(t *testing.T) {
	ctx := context.Background()
	_, fc, _ := newStack(t, 16, 32)
	f, err := fc.Create(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := fc.WriteAt(ctx, f, 0, []byte("private")); err != nil {
		t.Fatal(err)
	}
	// The paper's canonical example: pass read-only access to another
	// client.
	readOnly, err := fc.Restrict(ctx, f, cap.RightRead)
	if err != nil {
		t.Fatal(err)
	}
	got, err := fc.ReadAt(ctx, readOnly, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "private" {
		t.Fatalf("read %q", got)
	}
	if err := fc.WriteAt(ctx, readOnly, 0, []byte("X")); !rpc.IsStatus(err, rpc.StatusNoPermission) {
		t.Fatalf("write with read-only: %v", err)
	}
	if err := fc.Truncate(ctx, readOnly, 0); !rpc.IsStatus(err, rpc.StatusNoPermission) {
		t.Fatalf("truncate with read-only: %v", err)
	}
	if err := fc.Destroy(ctx, readOnly); !rpc.IsStatus(err, rpc.StatusNoPermission) {
		t.Fatalf("destroy with read-only: %v", err)
	}
}

func TestDiskExhaustionSurfaces(t *testing.T) {
	ctx := context.Background()
	_, fc, _ := newStack(t, 2, 16)
	f, err := fc.Create(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := fc.WriteAt(ctx, f, 0, make([]byte, 64)); !rpc.IsStatus(err, rpc.StatusServerError) {
		t.Fatalf("write beyond disk capacity: %v", err)
	}
}

func TestRevocationCutsOffReaders(t *testing.T) {
	ctx := context.Background()
	_, fc, _ := newStack(t, 16, 32)
	f, err := fc.Create(ctx)
	if err != nil {
		t.Fatal(err)
	}
	shared, err := fc.Restrict(ctx, f, cap.RightRead)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := fc.Revoke(ctx, f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fc.ReadAt(ctx, shared, 0, 1); !rpc.IsStatus(err, rpc.StatusBadCapability) {
		t.Fatalf("revoked share: %v", err)
	}
	if _, err := fc.Size(ctx, fresh); err != nil {
		t.Fatal(err)
	}
}

func TestLargeWriteReadChunked(t *testing.T) {
	ctx := context.Background()
	// A 300 KiB write exceeds one transaction's worth of data; the
	// client splits it into the paper's "succession of data messages".
	_, fc, _ := newStack(t, 1024, 1024)
	f, err := fc.Create(ctx)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 300<<10)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	if err := fc.WriteAt(ctx, f, 3, payload); err != nil {
		t.Fatal(err)
	}
	got, err := fc.ReadAt(ctx, f, 3, uint32(len(payload)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("large chunked transfer corrupted data")
	}
	size, err := fc.Size(ctx, f)
	if err != nil || size != uint64(len(payload))+3 {
		t.Fatalf("size %d %v", size, err)
	}
}

func TestZeroLengthOps(t *testing.T) {
	ctx := context.Background()
	_, fc, _ := newStack(t, 16, 32)
	f, err := fc.Create(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := fc.WriteAt(ctx, f, 0, nil); err != nil {
		t.Fatalf("zero-length write: %v", err)
	}
	got, err := fc.ReadAt(ctx, f, 0, 0)
	if err != nil || len(got) != 0 {
		t.Fatalf("zero-length read: %v %v", got, err)
	}
}

// TestCancelledContextAbortsFileOps proves the context flows through
// the typed client: an already-cancelled context never reaches the
// wire and surfaces ctx.Err().
func TestCancelledContextAbortsFileOps(t *testing.T) {
	ctx := context.Background()
	_, fc, _ := newStack(t, 64, 64)
	f, err := fc.Create(ctx)
	if err != nil {
		t.Fatal(err)
	}
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if err := fc.WriteAt(cancelled, f, 0, []byte("never")); !errors.Is(err, context.Canceled) {
		t.Fatalf("write err = %v, want context.Canceled", err)
	}
	if _, err := fc.ReadAt(cancelled, f, 0, 8); !errors.Is(err, context.Canceled) {
		t.Fatalf("read err = %v, want context.Canceled", err)
	}
	// The file is untouched: a normal read sees an empty file.
	if size, err := fc.Size(ctx, f); err != nil || size != 0 {
		t.Fatalf("size = %d, %v; want 0 after aborted write", size, err)
	}
}

// TestWriteDeadlinePropagatesToBlockServer drives a write whose parent
// deadline has already expired by the time the file server's nested
// block transactions run: the file server must report a failure rather
// than grinding through its block I/O without a bound.
func TestWriteDeadlinePropagatesToBlockServer(t *testing.T) {
	ctx := context.Background()
	_, fc, _ := newStack(t, 256, 64)
	f, err := fc.Create(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// A microscopic but non-zero budget: the client-side guard passes
	// (the context is live when Trans starts) while the nested block
	// RPC issued by the file server observes an expired deadline.
	tiny, cancel := context.WithTimeout(ctx, time.Microsecond)
	defer cancel()
	err = fc.WriteAt(tiny, f, 0, bytes.Repeat([]byte("x"), 4096))
	if err == nil {
		t.Fatal("write with expired deadline succeeded")
	}
	// Either the client's own deadline fired first, or the file server
	// reported the nested failure as a server error; both prove the
	// deadline bounded the call tree.
	if !errors.Is(err, context.DeadlineExceeded) && !rpc.IsStatus(err, rpc.StatusServerError) {
		t.Fatalf("err = %v, want deadline-bounded failure", err)
	}
}
