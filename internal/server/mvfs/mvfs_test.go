package mvfs

import (
	"bytes"
	"context"
	"testing"

	"amoeba/internal/cap"
	"amoeba/internal/rpc"
	"amoeba/internal/server/servertest"
)

func newServer(t *testing.T) (*servertest.Rig, *Client) {
	t.Helper()
	r := servertest.New(t, 0x3FF5)
	scheme, err := cap.NewScheme(cap.SchemeOneWay)
	if err != nil {
		t.Fatal(err)
	}
	s := New(r.NewFBox(t), scheme, r.Src)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return r, NewClient(r.Client, s.PutPort())
}

func TestVersionCommitCycle(t *testing.T) {
	ctx := context.Background()
	_, m := newServer(t)
	f, err := m.CreateFile(ctx)
	if err != nil {
		t.Fatal(err)
	}
	nv, np, ps, err := m.Stat(ctx, f)
	if err != nil {
		t.Fatal(err)
	}
	if nv != 1 || np != 0 || ps != PageSize {
		t.Fatalf("fresh file stat %d/%d/%d", nv, np, ps)
	}

	v, err := m.NewVersion(ctx, f)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.WritePage(ctx, v, 0, []byte("page zero")); err != nil {
		t.Fatal(err)
	}
	if err := m.WritePage(ctx, v, 5, []byte("page five")); err != nil {
		t.Fatal(err)
	}
	// Uncommitted changes are invisible through the file capability.
	page, err := m.ReadPage(ctx, f, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(page, make([]byte, PageSize)) {
		t.Fatal("uncommitted write visible through file capability")
	}
	// But visible through the version capability.
	page, err = m.ReadPage(ctx, v, 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(page[:9]) != "page zero" {
		t.Fatalf("version read %q", page[:9])
	}

	verNo, copied, err := m.Commit(ctx, v)
	if err != nil {
		t.Fatal(err)
	}
	if verNo != 1 || copied != 2 {
		t.Fatalf("commit -> version %d, %d pages copied", verNo, copied)
	}
	page, err = m.ReadPage(ctx, f, 5)
	if err != nil {
		t.Fatal(err)
	}
	if string(page[:9]) != "page five" {
		t.Fatalf("post-commit read %q", page[:9])
	}
	// The version capability is consumed by commit.
	if err := m.WritePage(ctx, v, 0, []byte("x")); !rpc.IsStatus(err, rpc.StatusBadCapability) {
		t.Fatalf("write to committed version: %v", err)
	}
}

func TestCopyOnWriteCopiesOnlyDirtyPages(t *testing.T) {
	ctx := context.Background()
	// The §3.5 claim: the new version "acts like it is a page-by-page
	// copy ... although in fact, pages are only copied when they are
	// changed".
	_, m := newServer(t)
	f, err := m.CreateFile(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Commit a 50-page base version.
	v, err := m.NewVersion(ctx, f)
	if err != nil {
		t.Fatal(err)
	}
	for p := uint32(0); p < 50; p++ {
		if err := m.WritePage(ctx, v, p, []byte{byte(p)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, copied, err := m.Commit(ctx, v); err != nil || copied != 50 {
		t.Fatalf("base commit copied %d (%v)", copied, err)
	}
	// New version touching one page: exactly one page copied.
	v2, err := m.NewVersion(ctx, f)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.WritePage(ctx, v2, 7, []byte("changed")); err != nil {
		t.Fatal(err)
	}
	if _, copied, err := m.Commit(ctx, v2); err != nil || copied != 1 {
		t.Fatalf("incremental commit copied %d (%v)", copied, err)
	}
	// Unchanged pages still readable; changed page updated.
	page, err := m.ReadPage(ctx, f, 3)
	if err != nil || page[0] != 3 {
		t.Fatalf("unchanged page: %v %v", page[0], err)
	}
	page, err = m.ReadPage(ctx, f, 7)
	if err != nil || string(page[:7]) != "changed" {
		t.Fatalf("changed page: %q %v", page[:7], err)
	}
}

func TestOldVersionsRemainReadable(t *testing.T) {
	ctx := context.Background()
	// "A file is thus a sequence of versions" — write-once media.
	_, m := newServer(t)
	f, err := m.CreateFile(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		v, err := m.NewVersion(ctx, f)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.WritePage(ctx, v, 0, []byte{byte('0' + i)}); err != nil {
			t.Fatal(err)
		}
		if _, _, err := m.Commit(ctx, v); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i <= 3; i++ {
		page, err := m.ReadPageVersion(ctx, f, 0, uint32(i))
		if err != nil {
			t.Fatal(err)
		}
		if page[0] != byte('0'+i) {
			t.Fatalf("version %d page reads %c", i, page[0])
		}
	}
	if _, err := m.ReadPageVersion(ctx, f, 0, 99); !rpc.IsStatus(err, rpc.StatusBadRequest) {
		t.Fatalf("read of nonexistent version: %v", err)
	}
}

func TestOptimisticConcurrencyConflict(t *testing.T) {
	ctx := context.Background()
	_, m := newServer(t)
	f, err := m.CreateFile(ctx)
	if err != nil {
		t.Fatal(err)
	}
	v1, err := m.NewVersion(ctx, f)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := m.NewVersion(ctx, f)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.WritePage(ctx, v1, 0, []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := m.WritePage(ctx, v2, 0, []byte("second")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Commit(ctx, v1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Commit(ctx, v2); !rpc.IsStatus(err, rpc.StatusServerError) {
		t.Fatalf("conflicting commit: %v", err)
	}
	// The winner's data is current.
	page, err := m.ReadPage(ctx, f, 0)
	if err != nil || string(page[:5]) != "first" {
		t.Fatalf("current page %q %v", page[:5], err)
	}
}

func TestAbort(t *testing.T) {
	ctx := context.Background()
	_, m := newServer(t)
	f, err := m.CreateFile(ctx)
	if err != nil {
		t.Fatal(err)
	}
	v, err := m.NewVersion(ctx, f)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.WritePage(ctx, v, 0, []byte("doomed")); err != nil {
		t.Fatal(err)
	}
	if err := m.Abort(ctx, v); err != nil {
		t.Fatal(err)
	}
	if err := m.WritePage(ctx, v, 0, []byte("x")); !rpc.IsStatus(err, rpc.StatusBadCapability) {
		t.Fatalf("write to aborted version: %v", err)
	}
	nv, _, _, err := m.Stat(ctx, f)
	if err != nil {
		t.Fatal(err)
	}
	if nv != 1 {
		t.Fatalf("aborted version committed: %d versions", nv)
	}
}

func TestVersionRights(t *testing.T) {
	ctx := context.Background()
	_, m := newServer(t)
	f, err := m.CreateFile(ctx)
	if err != nil {
		t.Fatal(err)
	}
	readOnly, err := m.Restrict(ctx, f, cap.RightRead)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.NewVersion(ctx, readOnly); !rpc.IsStatus(err, rpc.StatusNoPermission) {
		t.Fatalf("NewVersion with read-only file cap: %v", err)
	}
	if _, err := m.ReadPage(ctx, readOnly, 0); err != nil {
		t.Fatal(err)
	}
}

func TestWritePageValidation(t *testing.T) {
	ctx := context.Background()
	_, m := newServer(t)
	f, err := m.CreateFile(ctx)
	if err != nil {
		t.Fatal(err)
	}
	v, err := m.NewVersion(ctx, f)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.WritePage(ctx, v, 0, make([]byte, PageSize+1)); !rpc.IsStatus(err, rpc.StatusBadRequest) {
		t.Fatalf("oversized page write: %v", err)
	}
	if err := m.WritePage(ctx, v, MaxPages, []byte("x")); !rpc.IsStatus(err, rpc.StatusBadRequest) {
		t.Fatalf("page number too large: %v", err)
	}
	// Writing through the *file* capability is wrong: versions only.
	if err := m.WritePage(ctx, f, 0, []byte("x")); !rpc.IsStatus(err, rpc.StatusBadCapability) {
		t.Fatalf("WritePage on file capability: %v", err)
	}
}

func TestDestroyFileOrphansVersions(t *testing.T) {
	ctx := context.Background()
	_, m := newServer(t)
	f, err := m.CreateFile(ctx)
	if err != nil {
		t.Fatal(err)
	}
	v, err := m.NewVersion(ctx, f)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.DestroyFile(ctx, f); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ReadPage(ctx, f, 0); !rpc.IsStatus(err, rpc.StatusBadCapability) {
		t.Fatalf("read of destroyed file: %v", err)
	}
	if err := m.WritePage(ctx, v, 0, []byte("x")); !rpc.IsStatus(err, rpc.StatusBadCapability) {
		t.Fatalf("write to orphaned version: %v", err)
	}
}
