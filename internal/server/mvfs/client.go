package mvfs

import (
	"context"
	"encoding/binary"
	"fmt"

	"amoeba/internal/cap"
	"amoeba/internal/rpc"
)

// Client is the typed client for a multiversion file server.
type Client struct {
	c    *rpc.Client
	port cap.Port
}

// NewClient builds a client speaking to the server at port.
func NewClient(c *rpc.Client, port cap.Port) *Client {
	return &Client{c: c, port: port}
}

// Port returns the server's put-port.
func (m *Client) Port() cap.Port { return m.port }

// CreateFile creates a file (version 0 empty, committed).
func (m *Client) CreateFile(ctx context.Context) (cap.Capability, error) {
	rep, err := m.c.Trans(ctx, m.port, rpc.Request{Op: OpCreateFile})
	if err != nil {
		return cap.Nil, err
	}
	if rep.Status != rpc.StatusOK {
		return cap.Nil, &rpc.StatusError{Status: rep.Status, Detail: string(rep.Data)}
	}
	return rep.Cap, nil
}

// NewVersion starts an uncommitted version of the file.
func (m *Client) NewVersion(ctx context.Context, fileCap cap.Capability) (cap.Capability, error) {
	rep, err := m.c.Call(ctx, fileCap, OpNewVersion, nil)
	if err != nil {
		return cap.Nil, err
	}
	return rep.Cap, nil
}

// WritePage writes one page of an uncommitted version (data is
// zero-padded to PageSize). Header and page go straight into the
// pooled wire buffer.
func (m *Client) WritePage(ctx context.Context, verCap cap.Capability, pageNo uint32, data []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], pageNo)
	_, err := m.c.CallParts(ctx, verCap, OpWritePage, hdr[:], data)
	return err
}

// ReadPage reads a page of the file's current version (with a file
// capability) or of an uncommitted version (with a version capability).
func (m *Client) ReadPage(ctx context.Context, c cap.Capability, pageNo uint32) ([]byte, error) {
	var buf [4]byte
	binary.BigEndian.PutUint32(buf[:], pageNo)
	rep, err := m.c.Call(ctx, c, OpReadPage, buf[:])
	if err != nil {
		return nil, err
	}
	return rep.Data, nil
}

// ReadPageVersion reads a page of a specific committed version.
func (m *Client) ReadPageVersion(ctx context.Context, fileCap cap.Capability, pageNo, versionNo uint32) ([]byte, error) {
	var buf [8]byte
	binary.BigEndian.PutUint32(buf[0:], pageNo)
	binary.BigEndian.PutUint32(buf[4:], versionNo)
	rep, err := m.c.Call(ctx, fileCap, OpReadPage, buf[:])
	if err != nil {
		return nil, err
	}
	return rep.Data, nil
}

// Commit atomically publishes the version; returns its number and how
// many pages it actually copied.
func (m *Client) Commit(ctx context.Context, verCap cap.Capability) (versionNo, pagesCopied uint32, err error) {
	rep, err := m.c.Call(ctx, verCap, OpCommit, nil)
	if err != nil {
		return 0, 0, err
	}
	if len(rep.Data) != 8 {
		return 0, 0, fmt.Errorf("mvfs: commit reply %d bytes", len(rep.Data))
	}
	return binary.BigEndian.Uint32(rep.Data[0:]), binary.BigEndian.Uint32(rep.Data[4:]), nil
}

// Abort discards an uncommitted version.
func (m *Client) Abort(ctx context.Context, verCap cap.Capability) error {
	_, err := m.c.Call(ctx, verCap, OpAbort, nil)
	return err
}

// Stat returns the file's version count, current page count and page
// size.
func (m *Client) Stat(ctx context.Context, fileCap cap.Capability) (nversions, npages, pageSize uint32, err error) {
	rep, err := m.c.Call(ctx, fileCap, OpStatFile, nil)
	if err != nil {
		return 0, 0, 0, err
	}
	if len(rep.Data) != 12 {
		return 0, 0, 0, fmt.Errorf("mvfs: stat reply %d bytes", len(rep.Data))
	}
	return binary.BigEndian.Uint32(rep.Data[0:]),
		binary.BigEndian.Uint32(rep.Data[4:]),
		binary.BigEndian.Uint32(rep.Data[8:]), nil
}

// DestroyFile destroys the file and all of its versions.
func (m *Client) DestroyFile(ctx context.Context, fileCap cap.Capability) error {
	_, err := m.c.Call(ctx, fileCap, OpDestroyFile, nil)
	return err
}

// Restrict fabricates a weaker capability via the server.
func (m *Client) Restrict(ctx context.Context, c cap.Capability, mask cap.Rights) (cap.Capability, error) {
	return m.c.Restrict(ctx, c, mask)
}
