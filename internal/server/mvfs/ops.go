package mvfs

import "amoeba/internal/obs"

// The wire opcodes name themselves in the shared obs table — the one
// source metric labels and access-log dumps read, so a label can never
// drift from the opcode the const block defines.
func init() {
	obs.RegisterOps(map[uint16]string{
		OpCreateFile:  "mvfs.create_file",
		OpNewVersion:  "mvfs.new_version",
		OpWritePage:   "mvfs.write_page",
		OpReadPage:    "mvfs.read_page",
		OpCommit:      "mvfs.commit",
		OpAbort:       "mvfs.abort",
		OpStatFile:    "mvfs.stat_file",
		OpDestroyFile: "mvfs.destroy_file",
	})
}
