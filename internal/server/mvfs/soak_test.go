package mvfs

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"

	"amoeba/internal/rpc"
	"amoeba/internal/server/servertest"
)

func isCommitConflict(err error) bool {
	return err != nil && strings.Contains(err.Error(), "commit conflict")
}

// TestSoakConcurrentClients hammers the multiversion server with 64
// concurrent client machines: each runs full COW version cycles on a
// private file, and all of them race optimistic commits on one shared
// file (conflicts are the protocol working, not failures). Run under
// -race.
func TestSoakConcurrentClients(t *testing.T) {
	r, m := newServer(t)
	ctx := context.Background()
	shared, err := m.CreateFile(ctx)
	if err != nil {
		t.Fatal(err)
	}
	port := m.Port()
	r.Soak(t, servertest.SoakClients, 4, func(ctx context.Context, c *rpc.Client, g, i int) error {
		mc := NewClient(c, port)
		// Private file: deterministic COW cycle.
		f, err := mc.CreateFile(ctx)
		if err != nil {
			return err
		}
		v, err := mc.NewVersion(ctx, f)
		if err != nil {
			return err
		}
		page := bytes.Repeat([]byte{byte(g)}, 64)
		if err := mc.WritePage(ctx, v, uint32(i), page); err != nil {
			return err
		}
		if _, _, err := mc.Commit(ctx, v); err != nil {
			return err
		}
		got, err := mc.ReadPage(ctx, f, uint32(i))
		if err != nil {
			return err
		}
		if !bytes.Equal(got[:64], page) {
			return fmt.Errorf("committed page mismatch")
		}
		if err := mc.DestroyFile(ctx, f); err != nil {
			return err
		}
		// Shared file: optimistic concurrency race. A losing commit is
		// expected; anything else is a bug.
		sv, err := mc.NewVersion(ctx, shared)
		if err != nil {
			return err
		}
		if err := mc.WritePage(ctx, sv, 0, page); err != nil {
			return err
		}
		if _, _, err := mc.Commit(ctx, sv); err != nil && !isCommitConflict(err) {
			return err
		}
		return nil
	})
	// The shared file's current version must hold some client's page
	// intact (all-same-byte), never interleaved garbage.
	got, err := m.ReadPage(ctx, shared, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 64; i++ {
		if got[i] != got[0] {
			t.Fatalf("shared page torn at byte %d: %v vs %v", i, got[i], got[0])
		}
	}
}
