// Package mvfs implements the Amoeba multiversion file server (§3.5):
// files are trees of pages rather than byte sequences, and updates are
// atomic. A client asks for a new version of a file and receives a
// capability for it; the new version acts like a page-by-page copy of
// the original, "although in fact, pages are only copied when they are
// changed" (copy-on-write). The version is modified at will and then
// atomically committed, becoming the new file; committed versions are
// immutable — the design aimed at write-once media.
//
// Commit uses the optimistic concurrency control of the underlying
// technical report (Mullender & Tanenbaum 1982): several uncommitted
// versions may exist concurrently; a commit succeeds only if the
// version's base is still the file's current version, otherwise the
// committer has lost the race and must retry from a fresh version.
package mvfs

import (
	"context"

	"encoding/binary"
	"fmt"
	"sync"

	"amoeba/internal/cap"
	"amoeba/internal/crypto"
	"amoeba/internal/fbox"
	"amoeba/internal/rpc"
	"amoeba/internal/store"
	"amoeba/internal/svc"
)

// Operation codes.
const (
	// OpCreateFile creates a file whose version 0 is empty and
	// committed; returns the file capability.
	OpCreateFile uint16 = 0x0500 + iota
	// OpNewVersion starts an uncommitted version based on the file's
	// current version: cap = file, needs RightCreate. Returns the
	// version capability.
	OpNewVersion
	// OpWritePage writes one page of an uncommitted version:
	// cap = version, data = pageNo(4) ∥ bytes (≤ PageSize). Needs
	// RightWrite.
	OpWritePage
	// OpReadPage reads a page: cap = file (current version) or
	// version; data = pageNo(4), or pageNo(4) ∥ versionNo(4) with a
	// file capability to read an old version. Needs RightRead.
	OpReadPage
	// OpCommit atomically makes an uncommitted version the file's
	// current version. Needs RightWrite. Returns
	// versionNo(4) ∥ pagesCopied(4); fails with a conflict if another
	// version committed first.
	OpCommit
	// OpAbort discards an uncommitted version. Needs RightWrite.
	OpAbort
	// OpStatFile returns nversions(4) ∥ npagesCurrent(4) ∥ pageSize(4).
	// Needs RightRead.
	OpStatFile
	// OpDestroyFile destroys the file and all versions. Needs
	// RightDestroy.
	OpDestroyFile
)

// PageSize is the fixed page size.
const PageSize = 1024

// MaxPages bounds a file's page count.
const MaxPages = 1 << 20

// version is a page tree. Pages are immutable once the version
// commits; uncommitted versions share unchanged pages with their base
// (the slices are aliased, never written in place). Each version has
// its own lock, so concurrent clients building different versions
// never contend.
type version struct {
	fileObj uint32
	base    int // index in file.versions this version grew from

	mu      sync.RWMutex
	pages   map[uint32][]byte
	written map[uint32]bool // pages copied (written) in this version
}

type file struct {
	mu       sync.RWMutex
	versions []*version // committed, in order; last is current
}

// Server is a multiversion file server instance. Files and
// in-progress versions live in lock-striped maps keyed by object
// number; per-file and per-version locks cover their contents.
type Server struct {
	*svc.Kernel
	table *cap.Table

	files    *store.Map[*file]
	building *store.Map[*version] // uncommitted versions by object number
}

// New builds a multiversion file server on the service kernel.
func New(fb *fbox.FBox, scheme cap.Scheme, src crypto.Source) *Server {
	s := &Server{
		Kernel:   svc.New(fb, scheme, src),
		files:    store.New[*file](0),
		building: store.New[*version](0),
	}
	s.table = s.Table()
	s.Handle(OpCreateFile, s.createFile)
	s.Handle(OpNewVersion, s.newVersion)
	s.Handle(OpWritePage, s.writePage)
	s.Handle(OpReadPage, s.readPage)
	s.Handle(OpCommit, s.commit)
	s.Handle(OpAbort, s.abort)
	s.Handle(OpStatFile, s.statFile)
	s.Handle(OpDestroyFile, s.destroyFile)
	return s
}

func (s *Server) createFile(_ context.Context, _ rpc.Meta, _ rpc.Request) rpc.Reply {
	c, err := s.table.Create()
	if err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	v0 := &version{pages: make(map[uint32][]byte), written: make(map[uint32]bool)}
	s.files.Put(c.Object, &file{versions: []*version{v0}})
	return rpc.CapReply(c)
}

func (s *Server) fileFor(c cap.Capability, need cap.Rights) (*file, error) {
	if _, err := s.table.Demand(c, need); err != nil {
		return nil, err
	}
	f, ok := s.files.Get(c.Object)
	if !ok {
		return nil, fmt.Errorf("mvfs: object %d is not a file: %w", c.Object, cap.ErrNoSuchObject)
	}
	return f, nil
}

func (s *Server) versionFor(c cap.Capability, need cap.Rights) (*version, error) {
	if _, err := s.table.Demand(c, need); err != nil {
		return nil, err
	}
	v, ok := s.building.Get(c.Object)
	if !ok {
		return nil, fmt.Errorf("mvfs: object %d is not an uncommitted version: %w", c.Object, cap.ErrNoSuchObject)
	}
	return v, nil
}

func (s *Server) newVersion(_ context.Context, _ rpc.Meta, req rpc.Request) rpc.Reply {
	f, err := s.fileFor(req.Cap, cap.RightCreate)
	if err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	c, err := s.table.Create()
	if err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	f.mu.RLock()
	base := len(f.versions) - 1
	cur := f.versions[base]
	f.mu.RUnlock()
	cur.mu.RLock()
	pages := make(map[uint32][]byte, len(cur.pages))
	for n, p := range cur.pages {
		pages[n] = p // COW: share until written
	}
	cur.mu.RUnlock()
	v := &version{fileObj: req.Cap.Object, base: base, pages: pages, written: make(map[uint32]bool)}
	s.building.Put(c.Object, v)
	if _, live := s.files.Get(req.Cap.Object); !live {
		// The file was destroyed while we were building the version;
		// do not leave an orphan behind.
		s.building.Delete(c.Object)
		_ = s.table.DestroyObject(c.Object)
		return rpc.ErrReply(rpc.StatusBadCapability, "file destroyed")
	}
	return rpc.CapReply(c)
}

func (s *Server) writePage(_ context.Context, _ rpc.Meta, req rpc.Request) rpc.Reply {
	if len(req.Data) < 4 || len(req.Data) > 4+PageSize {
		return rpc.ErrReply(rpc.StatusBadRequest, "write page wants pageNo(4) ∥ ≤PageSize bytes")
	}
	v, err := s.versionFor(req.Cap, cap.RightWrite)
	if err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	pageNo := binary.BigEndian.Uint32(req.Data)
	if pageNo >= MaxPages {
		return rpc.ErrReply(rpc.StatusBadRequest, "page number too large")
	}
	// Copy-on-write: never touch the (possibly shared) old page.
	page := make([]byte, PageSize)
	copy(page, req.Data[4:])
	v.mu.Lock()
	v.pages[pageNo] = page
	v.written[pageNo] = true
	v.mu.Unlock()
	return rpc.OkReply(nil)
}

func (s *Server) readPage(_ context.Context, _ rpc.Meta, req rpc.Request) rpc.Reply {
	if len(req.Data) != 4 && len(req.Data) != 8 {
		return rpc.ErrReply(rpc.StatusBadRequest, "read page wants pageNo(4) [∥ versionNo(4)]")
	}
	pageNo := binary.BigEndian.Uint32(req.Data)

	// A version capability reads the in-progress version.
	_, isBuilding := s.building.Get(req.Cap.Object)
	if isBuilding && len(req.Data) == 4 {
		v, err := s.versionFor(req.Cap, cap.RightRead)
		if err != nil {
			return rpc.ErrReplyFromErr(err)
		}
		v.mu.RLock()
		page := v.pages[pageNo]
		v.mu.RUnlock()
		return clonePageReply(page)
	}

	f, err := s.fileFor(req.Cap, cap.RightRead)
	if err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	f.mu.RLock()
	idx := len(f.versions) - 1
	if len(req.Data) == 8 {
		idx = int(binary.BigEndian.Uint32(req.Data[4:]))
		if idx < 0 || idx >= len(f.versions) {
			f.mu.RUnlock()
			return rpc.ErrReply(rpc.StatusBadRequest, fmt.Sprintf("no version %d", idx))
		}
	}
	v := f.versions[idx]
	f.mu.RUnlock()
	v.mu.RLock()
	page := v.pages[pageNo]
	v.mu.RUnlock()
	return clonePageReply(page)
}

// clonePageReply returns a full-size copy of a page (zero page if nil)
// in a pooled reply buffer the transport releases after framing. The
// tail is zeroed explicitly: pooled memory arrives with recycled
// contents.
func clonePageReply(p []byte) rpc.Reply {
	out := rpc.NewReplyBuf(PageSize)
	buf := out.Extend(PageSize)
	tail := buf[copy(buf, p):]
	for i := range tail {
		tail[i] = 0
	}
	return rpc.OkReplyBuf(out)
}

func (s *Server) commit(_ context.Context, _ rpc.Meta, req rpc.Request) rpc.Reply {
	v, err := s.versionFor(req.Cap, cap.RightWrite)
	if err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	f, ok := s.files.Get(v.fileObj)
	if !ok {
		return rpc.ErrReply(rpc.StatusBadCapability, "file destroyed")
	}
	f.mu.Lock()
	if cur := len(f.versions) - 1; cur != v.base {
		f.mu.Unlock()
		// Optimistic concurrency: someone committed first.
		return rpc.ErrReply(rpc.StatusServerError,
			fmt.Sprintf("commit conflict: base is version %d, current is %d", v.base, cur))
	}
	f.versions = append(f.versions, v)
	verNo := uint32(len(f.versions) - 1)
	f.mu.Unlock()

	s.building.Delete(req.Cap.Object)
	// The version object is consumed by the commit: its capability is
	// retired (the file capability reads the new current version).
	if err := s.table.DestroyObject(req.Cap.Object); err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	v.mu.RLock()
	copied := uint32(len(v.written))
	v.mu.RUnlock()
	out := make([]byte, 8)
	binary.BigEndian.PutUint32(out[0:], verNo)
	binary.BigEndian.PutUint32(out[4:], copied)
	return rpc.OkReply(out)
}

func (s *Server) abort(_ context.Context, _ rpc.Meta, req rpc.Request) rpc.Reply {
	if _, err := s.versionFor(req.Cap, cap.RightWrite); err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	s.building.Delete(req.Cap.Object)
	if err := s.table.DestroyObject(req.Cap.Object); err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	return rpc.OkReply(nil)
}

func (s *Server) statFile(_ context.Context, _ rpc.Meta, req rpc.Request) rpc.Reply {
	f, err := s.fileFor(req.Cap, cap.RightRead)
	if err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	f.mu.RLock()
	nvers := uint32(len(f.versions))
	cur := f.versions[len(f.versions)-1]
	f.mu.RUnlock()
	cur.mu.RLock()
	npages := uint32(len(cur.pages))
	cur.mu.RUnlock()
	out := make([]byte, 12)
	binary.BigEndian.PutUint32(out[0:], nvers)
	binary.BigEndian.PutUint32(out[4:], npages)
	binary.BigEndian.PutUint32(out[8:], PageSize)
	return rpc.OkReply(out)
}

func (s *Server) destroyFile(_ context.Context, _ rpc.Meta, req rpc.Request) rpc.Reply {
	if _, err := s.fileFor(req.Cap, cap.RightDestroy); err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	// Winning the state delete elects THE destroyer: state leaves the
	// map before the number can be reused, and only the winner retires
	// the (already Demand-checked) table entry — by number, so a
	// concurrent revoke cannot leave an orphaned entry behind.
	if _, ok := s.files.Delete(req.Cap.Object); !ok {
		return rpc.ErrReplyFromErr(fmt.Errorf("mvfs: object %d is not a file: %w", req.Cap.Object, cap.ErrNoSuchObject))
	}
	if err := s.table.DestroyObject(req.Cap.Object); err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	// Orphan any in-progress versions of this file. (Collect first:
	// Range holds shard locks, so deletions happen after the sweep.
	// A version created concurrently removes itself when it sees the
	// file gone — see newVersion.)
	var orphans []uint32
	s.building.Range(func(obj uint32, v *version) bool {
		if v.fileObj == req.Cap.Object {
			orphans = append(orphans, obj)
		}
		return true
	})
	for _, obj := range orphans {
		if _, ok := s.building.Delete(obj); ok {
			_ = s.table.DestroyObject(obj)
		}
	}
	return rpc.OkReply(nil)
}
