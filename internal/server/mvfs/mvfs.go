// Package mvfs implements the Amoeba multiversion file server (§3.5):
// files are trees of pages rather than byte sequences, and updates are
// atomic. A client asks for a new version of a file and receives a
// capability for it; the new version acts like a page-by-page copy of
// the original, "although in fact, pages are only copied when they are
// changed" (copy-on-write). The version is modified at will and then
// atomically committed, becoming the new file; committed versions are
// immutable — the design aimed at write-once media.
//
// Commit uses the optimistic concurrency control of the underlying
// technical report (Mullender & Tanenbaum 1982): several uncommitted
// versions may exist concurrently; a commit succeeds only if the
// version's base is still the file's current version, otherwise the
// committer has lost the race and must retry from a fresh version.
package mvfs

import (
	"context"

	"encoding/binary"
	"fmt"
	"sync"

	"amoeba/internal/cap"
	"amoeba/internal/crypto"
	"amoeba/internal/fbox"
	"amoeba/internal/rpc"
)

// Operation codes.
const (
	// OpCreateFile creates a file whose version 0 is empty and
	// committed; returns the file capability.
	OpCreateFile uint16 = 0x0500 + iota
	// OpNewVersion starts an uncommitted version based on the file's
	// current version: cap = file, needs RightCreate. Returns the
	// version capability.
	OpNewVersion
	// OpWritePage writes one page of an uncommitted version:
	// cap = version, data = pageNo(4) ∥ bytes (≤ PageSize). Needs
	// RightWrite.
	OpWritePage
	// OpReadPage reads a page: cap = file (current version) or
	// version; data = pageNo(4), or pageNo(4) ∥ versionNo(4) with a
	// file capability to read an old version. Needs RightRead.
	OpReadPage
	// OpCommit atomically makes an uncommitted version the file's
	// current version. Needs RightWrite. Returns
	// versionNo(4) ∥ pagesCopied(4); fails with a conflict if another
	// version committed first.
	OpCommit
	// OpAbort discards an uncommitted version. Needs RightWrite.
	OpAbort
	// OpStatFile returns nversions(4) ∥ npagesCurrent(4) ∥ pageSize(4).
	// Needs RightRead.
	OpStatFile
	// OpDestroyFile destroys the file and all versions. Needs
	// RightDestroy.
	OpDestroyFile
)

// PageSize is the fixed page size.
const PageSize = 1024

// MaxPages bounds a file's page count.
const MaxPages = 1 << 20

// version is a page tree. Pages are immutable once the version
// commits; uncommitted versions share unchanged pages with their base
// (the slices are aliased, never written in place).
type version struct {
	fileObj uint32
	base    int // index in file.versions this version grew from
	pages   map[uint32][]byte
	written map[uint32]bool // pages copied (written) in this version
}

type file struct {
	mu       sync.RWMutex
	versions []*version // committed, in order; last is current
}

// Server is a multiversion file server instance.
type Server struct {
	rpc   *rpc.Server
	table *cap.Table

	mu       sync.RWMutex
	files    map[uint32]*file
	building map[uint32]*version // uncommitted versions by object number
}

// New builds a multiversion file server.
func New(fb *fbox.FBox, scheme cap.Scheme, src crypto.Source) *Server {
	s := &Server{
		files:    make(map[uint32]*file),
		building: make(map[uint32]*version),
	}
	s.rpc = rpc.NewServer(fb, src)
	s.table = cap.NewTable(scheme, s.rpc.PutPort(), src)
	s.rpc.ServeTable(s.table)
	s.rpc.Handle(OpCreateFile, s.createFile)
	s.rpc.Handle(OpNewVersion, s.newVersion)
	s.rpc.Handle(OpWritePage, s.writePage)
	s.rpc.Handle(OpReadPage, s.readPage)
	s.rpc.Handle(OpCommit, s.commit)
	s.rpc.Handle(OpAbort, s.abort)
	s.rpc.Handle(OpStatFile, s.statFile)
	s.rpc.Handle(OpDestroyFile, s.destroyFile)
	return s
}

// Start begins serving.
func (s *Server) Start() error { return s.rpc.Start() }

// Close stops the server.
func (s *Server) Close() error { return s.rpc.Close() }

// PutPort returns the server's public put-port.
func (s *Server) PutPort() cap.Port { return s.rpc.PutPort() }

// Table exposes the object table.
func (s *Server) Table() *cap.Table { return s.table }

func (s *Server) createFile(_ context.Context, _ rpc.Meta, _ rpc.Request) rpc.Reply {
	c, err := s.table.Create()
	if err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	v0 := &version{pages: make(map[uint32][]byte), written: make(map[uint32]bool)}
	s.mu.Lock()
	s.files[c.Object] = &file{versions: []*version{v0}}
	s.mu.Unlock()
	return rpc.CapReply(c)
}

func (s *Server) fileFor(c cap.Capability, need cap.Rights) (*file, error) {
	if _, err := s.table.Demand(c, need); err != nil {
		return nil, err
	}
	s.mu.RLock()
	f := s.files[c.Object]
	s.mu.RUnlock()
	if f == nil {
		return nil, fmt.Errorf("mvfs: object %d is not a file: %w", c.Object, cap.ErrNoSuchObject)
	}
	return f, nil
}

func (s *Server) versionFor(c cap.Capability, need cap.Rights) (*version, error) {
	if _, err := s.table.Demand(c, need); err != nil {
		return nil, err
	}
	s.mu.RLock()
	v := s.building[c.Object]
	s.mu.RUnlock()
	if v == nil {
		return nil, fmt.Errorf("mvfs: object %d is not an uncommitted version: %w", c.Object, cap.ErrNoSuchObject)
	}
	return v, nil
}

func (s *Server) newVersion(_ context.Context, _ rpc.Meta, req rpc.Request) rpc.Reply {
	f, err := s.fileFor(req.Cap, cap.RightCreate)
	if err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	c, err := s.table.Create()
	if err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	f.mu.RLock()
	base := len(f.versions) - 1
	cur := f.versions[base]
	pages := make(map[uint32][]byte, len(cur.pages))
	for n, p := range cur.pages {
		pages[n] = p // COW: share until written
	}
	f.mu.RUnlock()
	v := &version{fileObj: req.Cap.Object, base: base, pages: pages, written: make(map[uint32]bool)}
	s.mu.Lock()
	s.building[c.Object] = v
	s.mu.Unlock()
	return rpc.CapReply(c)
}

func (s *Server) writePage(_ context.Context, _ rpc.Meta, req rpc.Request) rpc.Reply {
	if len(req.Data) < 4 || len(req.Data) > 4+PageSize {
		return rpc.ErrReply(rpc.StatusBadRequest, "write page wants pageNo(4) ∥ ≤PageSize bytes")
	}
	v, err := s.versionFor(req.Cap, cap.RightWrite)
	if err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	pageNo := binary.BigEndian.Uint32(req.Data)
	if pageNo >= MaxPages {
		return rpc.ErrReply(rpc.StatusBadRequest, "page number too large")
	}
	// Copy-on-write: never touch the (possibly shared) old page.
	page := make([]byte, PageSize)
	copy(page, req.Data[4:])
	s.mu.Lock()
	v.pages[pageNo] = page
	v.written[pageNo] = true
	s.mu.Unlock()
	return rpc.OkReply(nil)
}

func (s *Server) readPage(_ context.Context, _ rpc.Meta, req rpc.Request) rpc.Reply {
	if len(req.Data) != 4 && len(req.Data) != 8 {
		return rpc.ErrReply(rpc.StatusBadRequest, "read page wants pageNo(4) [∥ versionNo(4)]")
	}
	pageNo := binary.BigEndian.Uint32(req.Data)

	// A version capability reads the in-progress version.
	s.mu.RLock()
	_, isBuilding := s.building[req.Cap.Object]
	s.mu.RUnlock()
	if isBuilding && len(req.Data) == 4 {
		v, err := s.versionFor(req.Cap, cap.RightRead)
		if err != nil {
			return rpc.ErrReplyFromErr(err)
		}
		s.mu.RLock()
		page := v.pages[pageNo]
		s.mu.RUnlock()
		return rpc.OkReply(clonePage(page))
	}

	f, err := s.fileFor(req.Cap, cap.RightRead)
	if err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	idx := len(f.versions) - 1
	if len(req.Data) == 8 {
		idx = int(binary.BigEndian.Uint32(req.Data[4:]))
		if idx < 0 || idx >= len(f.versions) {
			return rpc.ErrReply(rpc.StatusBadRequest, fmt.Sprintf("no version %d", idx))
		}
	}
	return rpc.OkReply(clonePage(f.versions[idx].pages[pageNo]))
}

// clonePage returns a full-size copy of a page (zero page if nil).
func clonePage(p []byte) []byte {
	out := make([]byte, PageSize)
	copy(out, p)
	return out
}

func (s *Server) commit(_ context.Context, _ rpc.Meta, req rpc.Request) rpc.Reply {
	v, err := s.versionFor(req.Cap, cap.RightWrite)
	if err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	s.mu.RLock()
	f := s.files[v.fileObj]
	s.mu.RUnlock()
	if f == nil {
		return rpc.ErrReply(rpc.StatusBadCapability, "file destroyed")
	}
	f.mu.Lock()
	if len(f.versions)-1 != v.base {
		f.mu.Unlock()
		// Optimistic concurrency: someone committed first.
		return rpc.ErrReply(rpc.StatusServerError,
			fmt.Sprintf("commit conflict: base is version %d, current is %d", v.base, len(f.versions)-1))
	}
	f.versions = append(f.versions, v)
	verNo := uint32(len(f.versions) - 1)
	f.mu.Unlock()

	s.mu.Lock()
	delete(s.building, req.Cap.Object)
	s.mu.Unlock()
	// The version object is consumed by the commit: its capability is
	// retired (the file capability reads the new current version).
	if err := s.table.DestroyObject(req.Cap.Object); err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	out := make([]byte, 8)
	binary.BigEndian.PutUint32(out[0:], verNo)
	binary.BigEndian.PutUint32(out[4:], uint32(len(v.written)))
	return rpc.OkReply(out)
}

func (s *Server) abort(_ context.Context, _ rpc.Meta, req rpc.Request) rpc.Reply {
	if _, err := s.versionFor(req.Cap, cap.RightWrite); err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	s.mu.Lock()
	delete(s.building, req.Cap.Object)
	s.mu.Unlock()
	if err := s.table.DestroyObject(req.Cap.Object); err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	return rpc.OkReply(nil)
}

func (s *Server) statFile(_ context.Context, _ rpc.Meta, req rpc.Request) rpc.Reply {
	f, err := s.fileFor(req.Cap, cap.RightRead)
	if err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make([]byte, 12)
	binary.BigEndian.PutUint32(out[0:], uint32(len(f.versions)))
	binary.BigEndian.PutUint32(out[4:], uint32(len(f.versions[len(f.versions)-1].pages)))
	binary.BigEndian.PutUint32(out[8:], PageSize)
	return rpc.OkReply(out)
}

func (s *Server) destroyFile(_ context.Context, _ rpc.Meta, req rpc.Request) rpc.Reply {
	if _, err := s.fileFor(req.Cap, cap.RightDestroy); err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	if err := s.table.Destroy(req.Cap); err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	s.mu.Lock()
	delete(s.files, req.Cap.Object)
	// Orphan any in-progress versions of this file.
	for obj, v := range s.building {
		if v.fileObj == req.Cap.Object {
			delete(s.building, obj)
			_ = s.table.DestroyObject(obj)
		}
	}
	s.mu.Unlock()
	return rpc.OkReply(nil)
}

// SetSealer installs a §2.4 capability sealer on the server transport
// (call before Start).
func (s *Server) SetSealer(sealer rpc.CapSealer) { s.rpc.SetSealer(sealer) }
