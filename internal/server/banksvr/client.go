package banksvr

import (
	"context"
	"encoding/binary"
	"fmt"

	"amoeba/internal/cap"
	"amoeba/internal/rpc"
)

// Client is the typed client for a bank server.
type Client struct {
	c    *rpc.Client
	port cap.Port
}

// NewClient builds a client speaking to the bank at port.
func NewClient(c *rpc.Client, port cap.Port) *Client {
	return &Client{c: c, port: port}
}

// Port returns the bank's put-port.
func (b *Client) Port() cap.Port { return b.port }

// CreateAccount opens an account with an initial grant in one currency
// and returns the owner capability.
func (b *Client) CreateAccount(ctx context.Context, currency string, amount int64) (cap.Capability, error) {
	data := appendCurrency(nil, currency)
	var amt [8]byte
	binary.BigEndian.PutUint64(amt[:], uint64(amount))
	data = append(data, amt[:]...)
	rep, err := b.c.Trans(ctx, b.port, rpc.Request{Op: OpCreateAccount, Data: data})
	if err != nil {
		return cap.Nil, err
	}
	if rep.Status != rpc.StatusOK {
		return cap.Nil, &rpc.StatusError{Status: rep.Status, Detail: string(rep.Data)}
	}
	return rep.Cap, nil
}

// Balance returns the account's balances by currency.
func (b *Client) Balance(ctx context.Context, acct cap.Capability) (map[string]int64, error) {
	rep, err := b.c.Call(ctx, acct, OpBalance, nil)
	if err != nil {
		return nil, err
	}
	buf := rep.Data
	if len(buf) < 2 {
		return nil, fmt.Errorf("banksvr: balance reply %d bytes", len(buf))
	}
	n := int(binary.BigEndian.Uint16(buf))
	buf = buf[2:]
	out := make(map[string]int64, n)
	for i := 0; i < n; i++ {
		if len(buf) < 1 {
			return nil, fmt.Errorf("banksvr: balance reply truncated")
		}
		cl := int(buf[0])
		if len(buf) < 1+cl+8 {
			return nil, fmt.Errorf("banksvr: balance reply truncated")
		}
		cur := string(buf[1 : 1+cl])
		out[cur] = int64(binary.BigEndian.Uint64(buf[1+cl:]))
		buf = buf[1+cl+8:]
	}
	return out, nil
}

// Transfer withdraws amount of currency from src (needs RightWrite)
// and deposits it into dest (needs RightCreate). The pieces go
// straight into the pooled wire buffer.
func (b *Client) Transfer(ctx context.Context, src, dest cap.Capability, currency string, amount int64) error {
	w := dest.Encode()
	var amt [8]byte
	binary.BigEndian.PutUint64(amt[:], uint64(amount))
	_, err := b.c.CallParts(ctx, src, OpTransfer, w[:], currencyField(currency), amt[:])
	return err
}

// Convert exchanges amount of from-currency into to-currency within
// one account, at the bank's posted rate.
func (b *Client) Convert(ctx context.Context, acct cap.Capability, from, to string, amount int64) error {
	var amt [8]byte
	binary.BigEndian.PutUint64(amt[:], uint64(amount))
	_, err := b.c.CallParts(ctx, acct, OpConvert, currencyField(from), currencyField(to), amt[:])
	return err
}

// DestroyAccount closes the account; remaining funds return to the
// bank's treasury.
func (b *Client) DestroyAccount(ctx context.Context, acct cap.Capability) error {
	_, err := b.c.Call(ctx, acct, OpDestroyAccount, nil)
	return err
}

// Restrict fabricates a weaker capability via the bank. A deposit-only
// capability is Restrict(acct, cap.RightCreate).
func (b *Client) Restrict(ctx context.Context, c cap.Capability, mask cap.Rights) (cap.Capability, error) {
	return b.c.Restrict(ctx, c, mask)
}

func appendCurrency(dst []byte, c string) []byte {
	dst = append(dst, byte(len(c)))
	return append(dst, c...)
}

// currencyField encodes one len-prefixed currency name.
func currencyField(c string) []byte { return appendCurrency(make([]byte, 0, 1+len(c)), c) }
