package banksvr

import (
	"context"
	"testing"

	"amoeba/internal/cap"
	"amoeba/internal/rpc"
	"amoeba/internal/server/servertest"
)

func newBank(t *testing.T, cfg Config) (*servertest.Rig, *Client) {
	t.Helper()
	r := servertest.New(t, 0xBA4C)
	scheme, err := cap.NewScheme(cap.SchemeOneWay)
	if err != nil {
		t.Fatal(err)
	}
	s := New(r.NewFBox(t), scheme, r.Src, cfg)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return r, NewClient(r.Client, s.PutPort())
}

func defaultCfg() Config {
	return Config{
		Treasury: map[string]int64{"dollar": 10000, "franc": 5000},
		Rates: map[[2]string]Rate{
			{"dollar", "franc"}: {Num: 5, Den: 1},
			{"franc", "dollar"}: {Num: 1, Den: 5},
		},
	}
}

func TestCreateAndBalance(t *testing.T) {
	ctx := context.Background()
	_, b := newBank(t, defaultCfg())
	acct, err := b.CreateAccount(ctx, "dollar", 100)
	if err != nil {
		t.Fatal(err)
	}
	bal, err := b.Balance(ctx, acct)
	if err != nil {
		t.Fatal(err)
	}
	if bal["dollar"] != 100 {
		t.Fatalf("balance %v", bal)
	}
}

func TestTreasuryBacksGrants(t *testing.T) {
	ctx := context.Background()
	_, b := newBank(t, Config{Treasury: map[string]int64{"dollar": 150}})
	if _, err := b.CreateAccount(ctx, "dollar", 100); err != nil {
		t.Fatal(err)
	}
	// Only 50 left.
	if _, err := b.CreateAccount(ctx, "dollar", 100); !rpc.IsStatus(err, rpc.StatusServerError) {
		t.Fatalf("over-treasury grant: %v", err)
	}
	if _, err := b.CreateAccount(ctx, "dollar", 50); err != nil {
		t.Fatal(err)
	}
}

func TestMintingAllowed(t *testing.T) {
	ctx := context.Background()
	_, b := newBank(t, Config{MintingAllowed: true})
	acct, err := b.CreateAccount(ctx, "yen", 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	bal, err := b.Balance(ctx, acct)
	if err != nil || bal["yen"] != 1_000_000 {
		t.Fatalf("balance %v %v", bal, err)
	}
}

func TestTransfer(t *testing.T) {
	ctx := context.Background()
	// The §3.6 scenario: client pays the file server for a file.
	_, b := newBank(t, defaultCfg())
	client, err := b.CreateAccount(ctx, "dollar", 100)
	if err != nil {
		t.Fatal(err)
	}
	fileServer, err := b.CreateAccount(ctx, "dollar", 0)
	if err != nil {
		t.Fatal(err)
	}
	// The file server publishes a deposit-only capability.
	depositOnly, err := b.Restrict(ctx, fileServer, cap.RightCreate)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Transfer(ctx, client, depositOnly, "dollar", 30); err != nil {
		t.Fatal(err)
	}
	cb, err := b.Balance(ctx, client)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := b.Balance(ctx, fileServer)
	if err != nil {
		t.Fatal(err)
	}
	if cb["dollar"] != 70 || fb["dollar"] != 30 {
		t.Fatalf("balances %v %v", cb, fb)
	}
}

func TestTransferRequiresRights(t *testing.T) {
	ctx := context.Background()
	_, b := newBank(t, defaultCfg())
	src, err := b.CreateAccount(ctx, "dollar", 100)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := b.CreateAccount(ctx, "dollar", 0)
	if err != nil {
		t.Fatal(err)
	}
	// A deposit-only capability cannot withdraw.
	depositOnly, err := b.Restrict(ctx, src, cap.RightCreate)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Transfer(ctx, depositOnly, dst, "dollar", 10); !rpc.IsStatus(err, rpc.StatusNoPermission) {
		t.Fatalf("withdraw with deposit-only: %v", err)
	}
	// A read-only destination cannot receive.
	readOnly, err := b.Restrict(ctx, dst, cap.RightRead)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Transfer(ctx, src, readOnly, "dollar", 10); !rpc.IsStatus(err, rpc.StatusNoPermission) {
		t.Fatalf("deposit without RightCreate: %v", err)
	}
}

func TestInsufficientFunds(t *testing.T) {
	ctx := context.Background()
	_, b := newBank(t, defaultCfg())
	src, err := b.CreateAccount(ctx, "dollar", 10)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := b.CreateAccount(ctx, "dollar", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Transfer(ctx, src, dst, "dollar", 11); !rpc.IsStatus(err, rpc.StatusServerError) {
		t.Fatalf("overdraft: %v", err)
	}
	// Money is conserved: failed transfer moved nothing.
	sb, err := b.Balance(ctx, src)
	if err != nil || sb["dollar"] != 10 {
		t.Fatalf("source balance %v %v", sb, err)
	}
}

func TestTransferValidation(t *testing.T) {
	ctx := context.Background()
	_, b := newBank(t, defaultCfg())
	src, err := b.CreateAccount(ctx, "dollar", 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Transfer(ctx, src, src, "dollar", 1); !rpc.IsStatus(err, rpc.StatusBadRequest) {
		t.Fatalf("self transfer: %v", err)
	}
	forged := src
	forged.Object ^= 1
	if err := b.Transfer(ctx, src, forged, "dollar", 1); !rpc.IsStatus(err, rpc.StatusBadCapability) {
		t.Fatalf("forged destination: %v", err)
	}
	if err := b.Transfer(ctx, src, src, "", 1); !rpc.IsStatus(err, rpc.StatusBadRequest) {
		t.Fatalf("empty currency: %v", err)
	}
}

func TestConvert(t *testing.T) {
	ctx := context.Background()
	// "CPU time could be charged in francs, phototypesetter pages in
	// yen": currencies are separate, with posted conversion rates.
	_, b := newBank(t, defaultCfg())
	acct, err := b.CreateAccount(ctx, "dollar", 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Convert(ctx, acct, "dollar", "franc", 20); err != nil {
		t.Fatal(err)
	}
	bal, err := b.Balance(ctx, acct)
	if err != nil {
		t.Fatal(err)
	}
	if bal["dollar"] != 80 || bal["franc"] != 100 {
		t.Fatalf("after convert: %v", bal)
	}
}

func TestInconvertibleCurrency(t *testing.T) {
	ctx := context.Background()
	_, b := newBank(t, defaultCfg())
	acct, err := b.CreateAccount(ctx, "dollar", 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Convert(ctx, acct, "dollar", "yen", 10); !rpc.IsStatus(err, rpc.StatusServerError) {
		t.Fatalf("inconvertible pair: %v", err)
	}
}

func TestQuotaScenario(t *testing.T) {
	ctx := context.Background()
	// "quotas can be implemented by limiting how many dollars each
	// client has": a client with 3 dollars at 1 dollar per block can
	// pay for exactly 3 blocks.
	_, b := newBank(t, defaultCfg())
	client, err := b.CreateAccount(ctx, "dollar", 3)
	if err != nil {
		t.Fatal(err)
	}
	fileServer, err := b.CreateAccount(ctx, "dollar", 0)
	if err != nil {
		t.Fatal(err)
	}
	deposit, err := b.Restrict(ctx, fileServer, cap.RightCreate)
	if err != nil {
		t.Fatal(err)
	}
	blocks := 0
	for i := 0; i < 5; i++ {
		if err := b.Transfer(ctx, client, deposit, "dollar", 1); err != nil {
			break
		}
		blocks++
	}
	if blocks != 3 {
		t.Fatalf("client bought %d blocks with 3 dollars", blocks)
	}
}

func TestDestroyAccountReturnsFundsToTreasury(t *testing.T) {
	ctx := context.Background()
	_, b := newBank(t, Config{Treasury: map[string]int64{"dollar": 100}})
	acct, err := b.CreateAccount(ctx, "dollar", 100)
	if err != nil {
		t.Fatal(err)
	}
	// Treasury empty now.
	if _, err := b.CreateAccount(ctx, "dollar", 1); !rpc.IsStatus(err, rpc.StatusServerError) {
		t.Fatalf("grant from empty treasury: %v", err)
	}
	if err := b.DestroyAccount(ctx, acct); err != nil {
		t.Fatal(err)
	}
	// Funds are back.
	if _, err := b.CreateAccount(ctx, "dollar", 100); err != nil {
		t.Fatalf("grant after destroy: %v", err)
	}
	if _, err := b.Balance(ctx, acct); !rpc.IsStatus(err, rpc.StatusBadCapability) {
		t.Fatalf("balance of destroyed account: %v", err)
	}
}

func TestPrepayPattern(t *testing.T) {
	ctx := context.Background()
	// "the client can pre-pay for a substantial amount of work": one
	// large transfer, then the server tracks consumption itself.
	_, b := newBank(t, defaultCfg())
	client, err := b.CreateAccount(ctx, "dollar", 500)
	if err != nil {
		t.Fatal(err)
	}
	server, err := b.CreateAccount(ctx, "dollar", 0)
	if err != nil {
		t.Fatal(err)
	}
	deposit, err := b.Restrict(ctx, server, cap.RightCreate)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Transfer(ctx, client, deposit, "dollar", 500); err != nil {
		t.Fatal(err)
	}
	sb, err := b.Balance(ctx, server)
	if err != nil || sb["dollar"] != 500 {
		t.Fatalf("server balance %v %v", sb, err)
	}
}

func TestRefundFlow(t *testing.T) {
	ctx := context.Background()
	// §3.6: "returning the resource might result in the client getting
	// his money": the file server (holding write rights on its own
	// account) transfers back to the client's deposit capability.
	_, b := newBank(t, defaultCfg())
	client, err := b.CreateAccount(ctx, "dollar", 10)
	if err != nil {
		t.Fatal(err)
	}
	server, err := b.CreateAccount(ctx, "dollar", 0)
	if err != nil {
		t.Fatal(err)
	}
	serverDeposit, err := b.Restrict(ctx, server, cap.RightCreate)
	if err != nil {
		t.Fatal(err)
	}
	clientDeposit, err := b.Restrict(ctx, client, cap.RightCreate)
	if err != nil {
		t.Fatal(err)
	}
	// Client pays for 5 blocks, then frees 2: server refunds 2.
	if err := b.Transfer(ctx, client, serverDeposit, "dollar", 5); err != nil {
		t.Fatal(err)
	}
	if err := b.Transfer(ctx, server, clientDeposit, "dollar", 2); err != nil {
		t.Fatal(err)
	}
	cb, err := b.Balance(ctx, client)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := b.Balance(ctx, server)
	if err != nil {
		t.Fatal(err)
	}
	if cb["dollar"] != 7 || sb["dollar"] != 3 {
		t.Fatalf("balances after refund: client %v server %v", cb, sb)
	}
}
