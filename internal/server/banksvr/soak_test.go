package banksvr

import (
	"context"
	"fmt"
	"testing"

	"amoeba/internal/cap"
	"amoeba/internal/rpc"
	"amoeba/internal/server/servertest"
)

// TestSoakConcurrentClients hammers the bank with 64 concurrent
// client machines transferring between a ring of accounts — the
// ordered two-lock path — and asserts money is conserved exactly.
// Run under -race.
func TestSoakConcurrentClients(t *testing.T) {
	r, b := newBank(t, Config{MintingAllowed: true})
	ctx := context.Background()
	const clients = servertest.SoakClients
	const grant = 1000
	accounts := make([]cap.Capability, clients)
	for g := range accounts {
		var err error
		accounts[g], err = b.CreateAccount(ctx, "dollar", grant)
		if err != nil {
			t.Fatal(err)
		}
	}
	port := b.Port()
	r.Soak(t, clients, 6, func(ctx context.Context, c *rpc.Client, g, i int) error {
		bc := NewClient(c, port)
		// Withdraw from the client's own account into neighbours at
		// varying strides, so lock pairs cross shards in both orders.
		dest := accounts[(g+i+1)%clients]
		if err := bc.Transfer(ctx, accounts[g], dest, "dollar", 1); err != nil {
			return fmt.Errorf("transfer: %w", err)
		}
		if _, err := bc.Balance(ctx, accounts[g]); err != nil {
			return fmt.Errorf("balance: %w", err)
		}
		return nil
	})
	// Conservation: every dollar is in some account.
	total := int64(0)
	for _, acct := range accounts {
		bal, err := b.Balance(ctx, acct)
		if err != nil {
			t.Fatal(err)
		}
		total += bal["dollar"]
	}
	if total != clients*grant {
		t.Fatalf("money not conserved: %d, want %d", total, clients*grant)
	}
}
