package banksvr

import (
	"context"
	"testing"

	"amoeba/internal/cap"
	"amoeba/internal/server/servertest"
	"amoeba/internal/vdisk"
	"amoeba/internal/wal"
)

// newDurableBank boots a durable bank over a fresh WAL disk.
func newDurableBank(t *testing.T, r *servertest.Rig, cfg Config) (*Server, *vdisk.Disk) {
	t.Helper()
	scheme, err := cap.NewScheme(cap.SchemeOneWay)
	if err != nil {
		t.Fatal(err)
	}
	disk, err := vdisk.New(512, 512)
	if err != nil {
		t.Fatal(err)
	}
	log, err := wal.Open(disk, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewDurable(r.NewFBox(t), scheme, r.Src, cfg, log, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, disk
}

// replayBank recovers a frozen disk image into a fresh, never-started
// server for white-box inspection.
func replayBank(t *testing.T, r *servertest.Rig, s *Server, cfg Config, img *vdisk.Disk) *Server {
	t.Helper()
	scheme, err := cap.NewScheme(cap.SchemeOneWay)
	if err != nil {
		t.Fatal(err)
	}
	rlog, err := wal.Open(img, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rlog.Close() })
	rs, err := NewDurable(r.NewFBox(t), scheme, r.Src, cfg, rlog, s.GetPort())
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

// moneySupply sums a currency over the treasury and every account.
func (s *Server) moneySupply(cur string) int64 {
	total := s.treasury[cur]
	s.accounts.Range(func(_ uint32, a *account) bool {
		total += a.balances[cur]
		return true
	})
	return total
}

// TestDurableTreasuryBackedReplay: with minting OFF, every grant,
// transfer, conversion and destruction must replay to the exact
// balances — and the total money supply (treasury included) must be
// identical before and after the crash.
func TestDurableTreasuryBackedReplay(t *testing.T) {
	ctx := context.Background()
	r := servertest.New(t, 0xBA9C)
	cfg := Config{
		Treasury: map[string]int64{"dollar": 10_000, "franc": 500},
		Rates: map[[2]string]Rate{
			{"dollar", "franc"}: {Num: 5, Den: 1},
		},
	}
	s, disk := newDurableBank(t, r, cfg)
	bc := NewClient(r.Client, s.PutPort())

	a, err := bc.CreateAccount(ctx, "dollar", 600)
	if err != nil {
		t.Fatal(err)
	}
	b, err := bc.CreateAccount(ctx, "dollar", 400)
	if err != nil {
		t.Fatal(err)
	}
	dead, err := bc.CreateAccount(ctx, "dollar", 50)
	if err != nil {
		t.Fatal(err)
	}
	if err := bc.Transfer(ctx, a, b, "dollar", 150); err != nil {
		t.Fatal(err)
	}
	if err := bc.Convert(ctx, b, "dollar", "franc", 100); err != nil {
		t.Fatal(err)
	}
	if err := bc.DestroyAccount(ctx, dead); err != nil {
		t.Fatal(err)
	}

	rs := replayBank(t, r, s, cfg, disk.Clone())
	// Balances: a = 600-150 = 450 dollars; b = 400+150-100 = 450
	// dollars + 500 francs.
	ra, _ := rs.accounts.Get(a.Object)
	if ra == nil || ra.balances["dollar"] != 450 {
		t.Fatalf("account a replayed wrong: %+v", ra)
	}
	rb, _ := rs.accounts.Get(b.Object)
	if rb == nil || rb.balances["dollar"] != 450 || rb.balances["franc"] != 500 {
		t.Fatalf("account b replayed wrong: %+v", rb)
	}
	if _, ok := rs.accounts.Get(dead.Object); ok {
		t.Fatal("destroyed account resurrected by replay")
	}
	// The destroyed account's 50 dollars went back to the treasury:
	// 10000 - 600 - 400 - 50 + 50 = 9000.
	if rs.treasury["dollar"] != 9000 {
		t.Fatalf("treasury replayed to %d dollars, want 9000", rs.treasury["dollar"])
	}
	// Dollar supply shrinks only by conversion (100), never by crash.
	if got := rs.moneySupply("dollar"); got != 10_000-100 {
		t.Fatalf("dollar supply %d after replay, want %d", got, 10_000-100)
	}
	// Replayed capabilities still validate.
	if _, err := rs.Table().Demand(a, cap.RightWrite); err != nil {
		t.Fatalf("pre-crash capability rejected after replay: %v", err)
	}
}

// TestDurableUnackedOpInvisible: an operation whose record never made
// it to the disk image (the crash window before group commit) must not
// appear in the replay — the model is exactly the acknowledged state.
func TestDurableUnackedOpInvisible(t *testing.T) {
	ctx := context.Background()
	r := servertest.New(t, 0xBA9D)
	cfg := Config{MintingAllowed: true}
	s, disk := newDurableBank(t, r, cfg)
	bc := NewClient(r.Client, s.PutPort())

	a, err := bc.CreateAccount(ctx, "dollar", 100)
	if err != nil {
		t.Fatal(err)
	}
	img := disk.Clone() // crash point: before the transfer below
	b, err := bc.CreateAccount(ctx, "dollar", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := bc.Transfer(ctx, a, b, "dollar", 30); err != nil {
		t.Fatal(err)
	}

	rs := replayBank(t, r, s, cfg, img)
	ra, _ := rs.accounts.Get(a.Object)
	if ra == nil || ra.balances["dollar"] != 100 {
		t.Fatalf("crash-point replay saw post-crash ops: %+v", ra)
	}
	if _, ok := rs.accounts.Get(b.Object); ok {
		t.Fatal("account created after the crash point exists in replay")
	}
}
