// Package banksvr implements the Amoeba bank server (§3.6): the basis
// for resource control and accounting. It manages "bank account"
// objects holding virtual money in multiple, possibly convertible,
// possibly inconvertible currencies; the principal operation transfers
// virtual money between accounts. Servers charge for resources (the
// file server charging x dollars per kiloblock implements quotas), and
// clients may pre-pay a server "to eliminate the overhead of going
// back to the bank on each request".
//
// Rights on account capabilities: RightRead shows balances, RightWrite
// withdraws (transfers out), RightCreate deposits (transfers in). A
// deposit-only capability (RightCreate alone) is what a server
// publishes so anyone can pay it.
package banksvr

import (
	"context"

	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"amoeba/internal/cap"
	"amoeba/internal/crypto"
	"amoeba/internal/fbox"
	"amoeba/internal/rpc"
	"amoeba/internal/store"
)

// Operation codes.
const (
	// OpCreateAccount creates an account: data = curLen(1) ∥ currency ∥
	// amount(8) initial grant. The initial grant is bank policy: the
	// production configuration (MintingAllowed=false) only honours it
	// from the treasury's own balance. Returns the account capability.
	OpCreateAccount uint16 = 0x0600 + iota
	// OpBalance returns the account's balances:
	// count(2) ∥ count × (curLen(1) ∥ currency ∥ amount(8)).
	// Needs RightRead.
	OpBalance
	// OpTransfer moves money: cap = source account (needs RightWrite);
	// data = destination capability(16) ∥ curLen(1) ∥ currency ∥
	// amount(8). The destination capability needs RightCreate.
	OpTransfer
	// OpConvert exchanges currency within one account: data =
	// fromLen(1) ∥ from ∥ toLen(1) ∥ to ∥ amount(8). Uses the bank's
	// exchange-rate table; inconvertible pairs fail. Needs RightWrite.
	OpConvert
	// OpDestroyAccount destroys an account; any remaining balance
	// returns to the treasury. Needs RightDestroy.
	OpDestroyAccount
)

// MaxCurrency bounds a currency name.
const MaxCurrency = 32

// Rate is an exchange rate between two currencies: Amount in the
// destination currency per unit of the source currency, as a rational
// (Num/Den) so the arithmetic stays exact.
type Rate struct {
	Num uint64
	Den uint64
}

// Config sets bank policy.
type Config struct {
	// Treasury is the initial money supply, per currency, owned by the
	// bank itself and granted to newly created accounts.
	Treasury map[string]int64
	// Rates maps "from/to" currency pairs to exchange rates. Pairs not
	// present are inconvertible (the paper allows both kinds).
	Rates map[[2]string]Rate
	// MintingAllowed, if true, lets CreateAccount grant money that is
	// not backed by the treasury (convenient for examples; off in
	// quota-enforcing configurations).
	MintingAllowed bool
}

type account struct {
	mu sync.Mutex
	// dead marks an account destroyed between a map lookup and the
	// lock acquisition; operations that find it fail as if the lookup
	// had missed.
	dead     bool
	balances map[string]int64
}

// Server is a bank server instance. Accounts live in a lock-striped
// map with a lock per account, so transfers between disjoint account
// pairs run in parallel; a transfer locks its two accounts in object-
// number order (no deadlock), and only the treasury keeps a global
// lock — it is touched only by account creation and destruction.
type Server struct {
	rpc   *rpc.Server
	table *cap.Table
	cfg   Config

	treasuryMu sync.Mutex
	treasury   map[string]int64

	accounts *store.Map[*account]
}

// New builds a bank server. Call Start to begin serving.
func New(fb *fbox.FBox, scheme cap.Scheme, src crypto.Source, cfg Config) *Server {
	treasury := make(map[string]int64, len(cfg.Treasury))
	for c, v := range cfg.Treasury {
		treasury[c] = v
	}
	s := &Server{
		cfg:      cfg,
		treasury: treasury,
		accounts: store.New[*account](0),
	}
	s.rpc = rpc.NewServer(fb, src)
	s.table = cap.NewTable(scheme, s.rpc.PutPort(), src)
	s.rpc.ServeTable(s.table)
	s.rpc.Handle(OpCreateAccount, s.createAccount)
	s.rpc.Handle(OpBalance, s.balance)
	s.rpc.Handle(OpTransfer, s.transfer)
	s.rpc.Handle(OpConvert, s.convert)
	s.rpc.Handle(OpDestroyAccount, s.destroyAccount)
	return s
}

// Start begins serving.
func (s *Server) Start() error { return s.rpc.Start() }

// Close stops the server.
func (s *Server) Close() error { return s.rpc.Close() }

// PutPort returns the server's public put-port.
func (s *Server) PutPort() cap.Port { return s.rpc.PutPort() }

// Table exposes the object table.
func (s *Server) Table() *cap.Table { return s.table }

func validCurrency(c string) error {
	if c == "" || len(c) > MaxCurrency {
		return fmt.Errorf("banksvr: bad currency %q", c)
	}
	return nil
}

func (s *Server) createAccount(_ context.Context, _ rpc.Meta, req rpc.Request) rpc.Reply {
	currency, rest, err := takeCurrency(req.Data)
	if err != nil {
		return rpc.ErrReply(rpc.StatusBadRequest, err.Error())
	}
	if len(rest) != 8 {
		return rpc.ErrReply(rpc.StatusBadRequest, "create account wants currency ∥ amount(8)")
	}
	amount := int64(binary.BigEndian.Uint64(rest))
	if amount < 0 {
		return rpc.ErrReply(rpc.StatusBadRequest, "negative initial grant")
	}
	if !s.cfg.MintingAllowed {
		s.treasuryMu.Lock()
		if s.treasury[currency] < amount {
			have := s.treasury[currency]
			s.treasuryMu.Unlock()
			return rpc.ErrReply(rpc.StatusServerError,
				fmt.Sprintf("treasury has %d %s, grant wants %d", have, currency, amount))
		}
		s.treasury[currency] -= amount
		s.treasuryMu.Unlock()
	}
	c, err := s.table.Create()
	if err != nil {
		if !s.cfg.MintingAllowed {
			s.treasuryMu.Lock()
			s.treasury[currency] += amount // roll the debit back
			s.treasuryMu.Unlock()
		}
		return rpc.ErrReplyFromErr(err)
	}
	acct := &account{balances: make(map[string]int64)}
	if amount > 0 {
		acct.balances[currency] = amount
	}
	s.accounts.Put(c.Object, acct)
	return rpc.CapReply(c)
}

// acct fetches a live account. The caller locks it before use and
// must re-check the dead flag under the lock.
func (s *Server) acct(obj uint32) (*account, error) {
	a, ok := s.accounts.Get(obj)
	if !ok {
		return nil, fmt.Errorf("banksvr: object %d: %w", obj, cap.ErrNoSuchObject)
	}
	return a, nil
}

// errDead is the lookup-raced-with-destroy error.
func errDead(obj uint32) rpc.Reply {
	return rpc.ErrReplyFromErr(fmt.Errorf("banksvr: object %d: %w", obj, cap.ErrNoSuchObject))
}

func (s *Server) balance(_ context.Context, _ rpc.Meta, req rpc.Request) rpc.Reply {
	if _, err := s.table.Demand(req.Cap, cap.RightRead); err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	a, err := s.acct(req.Cap.Object)
	if err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.dead {
		return errDead(req.Cap.Object)
	}
	currencies := make([]string, 0, len(a.balances))
	for c := range a.balances {
		currencies = append(currencies, c)
	}
	sort.Strings(currencies)
	out := make([]byte, 2)
	binary.BigEndian.PutUint16(out, uint16(len(currencies)))
	for _, c := range currencies {
		out = append(out, byte(len(c)))
		out = append(out, c...)
		var amt [8]byte
		binary.BigEndian.PutUint64(amt[:], uint64(a.balances[c]))
		out = append(out, amt[:]...)
	}
	return rpc.OkReply(out)
}

func (s *Server) transfer(_ context.Context, _ rpc.Meta, req rpc.Request) rpc.Reply {
	// Withdrawal needs RightWrite on the source.
	if _, err := s.table.Demand(req.Cap, cap.RightWrite); err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	if len(req.Data) < cap.Size+1 {
		return rpc.ErrReply(rpc.StatusBadRequest, "transfer wants dest cap(16) ∥ currency ∥ amount(8)")
	}
	dest, err := cap.Decode(req.Data[:cap.Size])
	if err != nil {
		return rpc.ErrReply(rpc.StatusBadRequest, err.Error())
	}
	currency, rest, err := takeCurrency(req.Data[cap.Size:])
	if err != nil {
		return rpc.ErrReply(rpc.StatusBadRequest, err.Error())
	}
	if len(rest) != 8 {
		return rpc.ErrReply(rpc.StatusBadRequest, "transfer wants amount(8)")
	}
	amount := int64(binary.BigEndian.Uint64(rest))
	if amount <= 0 {
		return rpc.ErrReply(rpc.StatusBadRequest, "transfer amount must be positive")
	}
	// Deposit needs RightCreate on the destination. The destination
	// must be an account at this bank.
	if _, err := s.table.Demand(dest, cap.RightCreate); err != nil {
		return rpc.ErrReplyFromErr(fmt.Errorf("destination: %w", err))
	}
	if dest.Object == req.Cap.Object {
		return rpc.ErrReply(rpc.StatusBadRequest, "transfer to self")
	}
	from, err := s.acct(req.Cap.Object)
	if err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	to, err := s.acct(dest.Object)
	if err != nil {
		return rpc.ErrReplyFromErr(fmt.Errorf("destination: %w", err))
	}
	// Lock both accounts in object-number order so concurrent
	// transfers over the same pair (in either direction) cannot
	// deadlock.
	first, second := from, to
	if dest.Object < req.Cap.Object {
		first, second = to, from
	}
	first.mu.Lock()
	defer first.mu.Unlock()
	second.mu.Lock()
	defer second.mu.Unlock()
	if from.dead {
		return errDead(req.Cap.Object)
	}
	if to.dead {
		return rpc.ErrReplyFromErr(fmt.Errorf("destination: banksvr: object %d: %w", dest.Object, cap.ErrNoSuchObject))
	}
	if from.balances[currency] < amount {
		return rpc.ErrReply(rpc.StatusServerError,
			fmt.Sprintf("insufficient funds: have %d %s, need %d", from.balances[currency], currency, amount))
	}
	from.balances[currency] -= amount
	to.balances[currency] += amount
	return rpc.OkReply(nil)
}

func (s *Server) convert(_ context.Context, _ rpc.Meta, req rpc.Request) rpc.Reply {
	if _, err := s.table.Demand(req.Cap, cap.RightWrite); err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	fromCur, rest, err := takeCurrency(req.Data)
	if err != nil {
		return rpc.ErrReply(rpc.StatusBadRequest, err.Error())
	}
	toCur, rest, err := takeCurrency(rest)
	if err != nil {
		return rpc.ErrReply(rpc.StatusBadRequest, err.Error())
	}
	if len(rest) != 8 {
		return rpc.ErrReply(rpc.StatusBadRequest, "convert wants amount(8)")
	}
	amount := int64(binary.BigEndian.Uint64(rest))
	if amount <= 0 {
		return rpc.ErrReply(rpc.StatusBadRequest, "convert amount must be positive")
	}
	rate, ok := s.cfg.Rates[[2]string{fromCur, toCur}]
	if !ok {
		return rpc.ErrReply(rpc.StatusServerError,
			fmt.Sprintf("%s is not convertible to %s", fromCur, toCur))
	}
	out := int64(uint64(amount) * rate.Num / rate.Den)
	a, err := s.acct(req.Cap.Object)
	if err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.dead {
		return errDead(req.Cap.Object)
	}
	if a.balances[fromCur] < amount {
		return rpc.ErrReply(rpc.StatusServerError,
			fmt.Sprintf("insufficient funds: have %d %s, need %d", a.balances[fromCur], fromCur, amount))
	}
	a.balances[fromCur] -= amount
	a.balances[toCur] += out
	return rpc.OkReply(nil)
}

func (s *Server) destroyAccount(_ context.Context, _ rpc.Meta, req rpc.Request) rpc.Reply {
	if _, err := s.table.Demand(req.Cap, cap.RightDestroy); err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	a, err := s.acct(req.Cap.Object)
	if err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	a.mu.Lock()
	if a.dead {
		a.mu.Unlock()
		return errDead(req.Cap.Object)
	}
	// Once dead is set (under the account lock), racing transfers
	// fail cleanly and no deposit can slip in after the balance
	// snapshot below.
	a.dead = true
	remaining := a.balances
	a.balances = nil
	a.mu.Unlock()
	// Setting dead above elected THE destroyer. The account leaves the
	// map before the table frees the number (a delete after Destroy
	// could clobber a new account that reused it), and the winner
	// retires the (already Demand-checked) table entry by number, so a
	// concurrent revoke cannot leave an orphaned entry behind.
	s.accounts.Delete(req.Cap.Object)
	s.treasuryMu.Lock()
	for c, v := range remaining {
		s.treasury[c] += v
	}
	s.treasuryMu.Unlock()
	if err := s.table.DestroyObject(req.Cap.Object); err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	return rpc.OkReply(nil)
}

// takeCurrency parses curLen(1) ∥ currency from data, returning the
// currency and the remainder.
func takeCurrency(data []byte) (string, []byte, error) {
	if len(data) < 1 {
		return "", nil, fmt.Errorf("banksvr: missing currency")
	}
	n := int(data[0])
	if len(data) < 1+n {
		return "", nil, fmt.Errorf("banksvr: truncated currency")
	}
	c := string(data[1 : 1+n])
	if err := validCurrency(c); err != nil {
		return "", nil, err
	}
	return c, data[1+n:], nil
}

// SetSealer installs a §2.4 capability sealer on the server transport
// (call before Start).
func (s *Server) SetSealer(sealer rpc.CapSealer) { s.rpc.SetSealer(sealer) }

// SetMaxInflight resizes the transport worker pool (call before
// Start); see rpc.ServerConfig.MaxInflight.
func (s *Server) SetMaxInflight(n int) { s.rpc.SetMaxInflight(n) }
