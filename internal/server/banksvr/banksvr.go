// Package banksvr implements the Amoeba bank server (§3.6): the basis
// for resource control and accounting. It manages "bank account"
// objects holding virtual money in multiple, possibly convertible,
// possibly inconvertible currencies; the principal operation transfers
// virtual money between accounts. Servers charge for resources (the
// file server charging x dollars per kiloblock implements quotas), and
// clients may pre-pay a server "to eliminate the overhead of going
// back to the bank on each request".
//
// Rights on account capabilities: RightRead shows balances, RightWrite
// withdraws (transfers out), RightCreate deposits (transfers in). A
// deposit-only capability (RightCreate alone) is what a server
// publishes so anyone can pay it.
package banksvr

import (
	"context"

	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"amoeba/internal/cap"
	"amoeba/internal/crypto"
	"amoeba/internal/fbox"
	"amoeba/internal/rpc"
	"amoeba/internal/store"
	"amoeba/internal/svc"
	"amoeba/internal/wal"
)

// Operation codes.
const (
	// OpCreateAccount creates an account: data = curLen(1) ∥ currency ∥
	// amount(8) initial grant. The initial grant is bank policy: the
	// production configuration (MintingAllowed=false) only honours it
	// from the treasury's own balance. Returns the account capability.
	OpCreateAccount uint16 = 0x0600 + iota
	// OpBalance returns the account's balances:
	// count(2) ∥ count × (curLen(1) ∥ currency ∥ amount(8)).
	// Needs RightRead.
	OpBalance
	// OpTransfer moves money: cap = source account (needs RightWrite);
	// data = destination capability(16) ∥ curLen(1) ∥ currency ∥
	// amount(8). The destination capability needs RightCreate.
	OpTransfer
	// OpConvert exchanges currency within one account: data =
	// fromLen(1) ∥ from ∥ toLen(1) ∥ to ∥ amount(8). Uses the bank's
	// exchange-rate table; inconvertible pairs fail. Needs RightWrite.
	OpConvert
	// OpDestroyAccount destroys an account; any remaining balance
	// returns to the treasury. Needs RightDestroy.
	OpDestroyAccount
)

// MaxCurrency bounds a currency name.
const MaxCurrency = 32

// Rate is an exchange rate between two currencies: Amount in the
// destination currency per unit of the source currency, as a rational
// (Num/Den) so the arithmetic stays exact.
type Rate struct {
	Num uint64
	Den uint64
}

// Config sets bank policy.
type Config struct {
	// Treasury is the initial money supply, per currency, owned by the
	// bank itself and granted to newly created accounts.
	Treasury map[string]int64
	// Rates maps "from/to" currency pairs to exchange rates. Pairs not
	// present are inconvertible (the paper allows both kinds).
	Rates map[[2]string]Rate
	// MintingAllowed, if true, lets CreateAccount grant money that is
	// not backed by the treasury (convenient for examples; off in
	// quota-enforcing configurations).
	MintingAllowed bool
}

type account struct {
	mu sync.Mutex
	// dead marks an account destroyed between a map lookup and the
	// lock acquisition; operations that find it fail as if the lookup
	// had missed.
	dead     bool
	balances map[string]int64
}

// Server is a bank server instance on the service kernel. Accounts
// live in a lock-striped map with a lock per account, so transfers
// between disjoint account pairs run in parallel; a transfer locks its
// two accounts in object-number order (no deadlock), and only the
// treasury keeps a global lock — it is touched only by account
// creation and destruction.
//
// Money is the invariant a crash must not bend: built with NewDurable,
// every transfer, conversion, creation and destruction is written
// ahead to a log before its reply, and a restarted bank replays to
// exactly the balances its clients saw acknowledged — conservation
// holds across the crash.
type Server struct {
	*svc.Kernel
	table *cap.Table
	cfg   Config

	treasuryMu sync.Mutex
	treasury   map[string]int64

	accounts *store.Map[*account]
}

// New builds a volatile bank server. Call Start to begin serving.
func New(fb *fbox.FBox, scheme cap.Scheme, src crypto.Source, cfg Config) *Server {
	s, err := NewDurable(fb, scheme, src, cfg, nil, 0)
	if err != nil { // unreachable: no log means no recovery to fail
		panic(err)
	}
	return s
}

// NewDurable builds a bank server whose mutations are written ahead to
// log (nil for a volatile server), recovering any state a previous
// incarnation logged before it returns. g pins the secret get-port so
// the restarted bank reappears at the put-port every outstanding
// account capability names (zero draws a fresh one).
func NewDurable(fb *fbox.FBox, scheme cap.Scheme, src crypto.Source, cfg Config, log *wal.Log, g cap.Port) (*Server, error) {
	treasury := make(map[string]int64, len(cfg.Treasury))
	for c, v := range cfg.Treasury {
		treasury[c] = v
	}
	s := &Server{
		cfg:      cfg,
		treasury: treasury,
		accounts: store.New[*account](0),
	}
	s.Kernel = svc.NewWithConfig(fb, scheme, svc.Config{
		Source:        src,
		Port:          g,
		Log:           log,
		Snapshot:      s.snapshot,
		Restore:       s.restoreSnapshot,
		ExtractObject: s.extractObject,
		InstallObject: s.installObject,
		RemoveObject:  s.removeObject,
	})
	s.table = s.Table()
	s.Handle(OpCreateAccount, s.createAccount)
	s.Handle(OpBalance, s.balance)
	s.Handle(OpTransfer, s.transfer)
	s.Handle(OpConvert, s.convert)
	s.Handle(OpDestroyAccount, s.destroyAccount)
	if err := s.Recover(s.apply); err != nil {
		return nil, fmt.Errorf("banksvr: recovering: %w", err)
	}
	return s, nil
}

// ReplayFn exposes the redo-record applier for a hot-standby receiver
// (repl.NewReceiver): the standby applies the primary's shipped records
// through exactly the code path crash recovery replays them through.
func (s *Server) ReplayFn() func(rec []byte) error { return s.apply }

// Redo-record tags (first byte; svc.RecKernel is reserved).
const (
	recCreate   byte = 0x01 // obj(4) secret(8) curLen(1) cur amount(8)
	recTransfer byte = 0x02 // from(4) to(4) curLen(1) cur amount(8)
	recConvert  byte = 0x03 // obj(4) fromLen(1) from toLen(1) to amount(8) out(8)
	recDestroy  byte = 0x04 // obj(4)
)

func appendU64(rec []byte, v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return append(rec, b[:]...)
}

func recCreateAccount(obj uint32, secret uint64, cur string, amount int64) []byte {
	rec := make([]byte, 5, 22+len(cur))
	rec[0] = recCreate
	binary.BigEndian.PutUint32(rec[1:], obj)
	rec = appendU64(rec, secret)
	rec = appendCurrency(rec, cur)
	return appendU64(rec, uint64(amount))
}

func recTransferMoney(from, to uint32, cur string, amount int64) []byte {
	rec := make([]byte, 9, 18+len(cur))
	rec[0] = recTransfer
	binary.BigEndian.PutUint32(rec[1:], from)
	binary.BigEndian.PutUint32(rec[5:], to)
	rec = appendCurrency(rec, cur)
	return appendU64(rec, uint64(amount))
}

// recConvertMoney logs the computed output amount too, so replay does
// not depend on the (config-supplied, possibly changed) rate table.
func recConvertMoney(obj uint32, from, to string, amount, out int64) []byte {
	rec := make([]byte, 5, 23+len(from)+len(to))
	rec[0] = recConvert
	binary.BigEndian.PutUint32(rec[1:], obj)
	rec = appendCurrency(rec, from)
	rec = appendCurrency(rec, to)
	rec = appendU64(rec, uint64(amount))
	return appendU64(rec, uint64(out))
}

func recDestroyAccount(obj uint32) []byte {
	rec := make([]byte, 5)
	rec[0] = recDestroy
	binary.BigEndian.PutUint32(rec[1:], obj)
	return rec
}

// apply replays one redo record. The log is trusted (every record was
// validated before it was written) and its order is the live commit
// order, so replay applies mutations without re-checking funds.
func (s *Server) apply(rec []byte) error {
	if len(rec) < 5 {
		return fmt.Errorf("banksvr: short record (%d bytes)", len(rec))
	}
	obj := binary.BigEndian.Uint32(rec[1:])
	switch rec[0] {
	case recCreate:
		if len(rec) < 13 {
			return fmt.Errorf("banksvr: malformed create record")
		}
		secret := binary.BigEndian.Uint64(rec[5:])
		cur, rest, err := takeCurrency(rec[13:])
		if err != nil || len(rest) != 8 {
			return fmt.Errorf("banksvr: malformed create record")
		}
		amount := int64(binary.BigEndian.Uint64(rest))
		if !s.cfg.MintingAllowed {
			s.treasury[cur] -= amount // it was debited live, re-debit
		}
		s.table.InstallSecret(obj, secret)
		acct := &account{balances: make(map[string]int64)}
		if amount > 0 {
			acct.balances[cur] = amount
		}
		s.accounts.Put(obj, acct)
	case recTransfer:
		if len(rec) < 9 {
			return fmt.Errorf("banksvr: malformed transfer record")
		}
		to := binary.BigEndian.Uint32(rec[5:])
		cur, rest, err := takeCurrency(rec[9:])
		if err != nil || len(rest) != 8 {
			return fmt.Errorf("banksvr: malformed transfer record")
		}
		amount := int64(binary.BigEndian.Uint64(rest))
		from, ok := s.accounts.Get(obj)
		if !ok {
			return fmt.Errorf("banksvr: transfer record names unknown account %d", obj)
		}
		dest, ok := s.accounts.Get(to)
		if !ok {
			return fmt.Errorf("banksvr: transfer record names unknown account %d", to)
		}
		from.balances[cur] -= amount
		dest.balances[cur] += amount
	case recConvert:
		from, rest, err := takeCurrency(rec[5:])
		if err != nil {
			return fmt.Errorf("banksvr: malformed convert record")
		}
		to, rest, err := takeCurrency(rest)
		if err != nil || len(rest) != 16 {
			return fmt.Errorf("banksvr: malformed convert record")
		}
		amount := int64(binary.BigEndian.Uint64(rest))
		out := int64(binary.BigEndian.Uint64(rest[8:]))
		a, ok := s.accounts.Get(obj)
		if !ok {
			return fmt.Errorf("banksvr: convert record names unknown account %d", obj)
		}
		a.balances[from] -= amount
		a.balances[to] += out
	case recDestroy:
		a, ok := s.accounts.Delete(obj)
		if ok {
			for c, v := range a.balances {
				s.treasury[c] += v
			}
		}
		_ = s.table.DestroyObject(obj)
	default:
		return fmt.Errorf("banksvr: unknown record tag %#02x", rec[0])
	}
	return nil
}

// snapshot serializes the treasury and every account for a checkpoint.
// It runs quiesced, so the cut conserves money exactly.
func (s *Server) snapshot() []byte {
	out := make([]byte, 4)
	binary.BigEndian.PutUint32(out, uint32(len(s.treasury)))
	for c, v := range s.treasury {
		out = appendCurrency(out, c)
		out = appendU64(out, uint64(v))
	}
	at := len(out)
	out = append(out, 0, 0, 0, 0)
	count := 0
	s.accounts.Range(func(obj uint32, a *account) bool {
		count++
		var hdr [6]byte
		binary.BigEndian.PutUint32(hdr[0:], obj)
		binary.BigEndian.PutUint16(hdr[4:], uint16(len(a.balances)))
		out = append(out, hdr[:]...)
		for c, v := range a.balances {
			out = appendCurrency(out, c)
			out = appendU64(out, uint64(v))
		}
		return true
	})
	binary.BigEndian.PutUint32(out[at:], uint32(count))
	return out
}

// extractObject pulls one account out of the server for live
// migration: nbal(2) ∥ nbal × (currency ∥ amount(8)) — the same
// per-account body the snapshot writes. The dead flag is set under the
// account lock, so a transfer racing the migration fails cleanly
// instead of mutating state the destination already owns. The treasury
// stays put: it is this instance's money supply, not the account's
// (cross-shard transfers settle against the destination shard's
// treasury — a documented non-goal to unify).
func (s *Server) extractObject(obj uint32) ([]byte, error) {
	a, ok := s.accounts.Get(obj)
	if !ok {
		return nil, fmt.Errorf("banksvr: no account %d", obj)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.dead {
		return nil, fmt.Errorf("banksvr: account %d destroyed", obj)
	}
	state := make([]byte, 2, 2+len(a.balances)*12)
	binary.BigEndian.PutUint16(state, uint16(len(a.balances)))
	for c, v := range a.balances {
		state = appendCurrency(state, c)
		state = appendU64(state, uint64(v))
	}
	a.dead = true
	a.balances = nil
	s.accounts.Delete(obj)
	return state, nil
}

// installObject installs a migrated-in account.
func (s *Server) installObject(obj uint32, state []byte) error {
	if len(state) < 2 {
		return fmt.Errorf("banksvr: truncated migrated account %d", obj)
	}
	nbal := binary.BigEndian.Uint16(state)
	rest := state[2:]
	a := &account{balances: make(map[string]int64, nbal)}
	for i := uint16(0); i < nbal; i++ {
		cur, r, err := takeCurrency(rest)
		if err != nil || len(r) < 8 {
			return fmt.Errorf("banksvr: truncated migrated account %d", obj)
		}
		a.balances[cur] = int64(binary.BigEndian.Uint64(r))
		rest = r[8:]
	}
	s.accounts.Put(obj, a)
	return nil
}

// removeObject drops an account whose migrate-out committed (replay
// path); absence is fine — the in-memory extract already removed it.
func (s *Server) removeObject(obj uint32) {
	a, ok := s.accounts.Get(obj)
	if !ok {
		return
	}
	a.mu.Lock()
	a.dead = true
	a.balances = nil
	a.mu.Unlock()
	s.accounts.Delete(obj)
}

// restoreSnapshot replaces the treasury and account state.
func (s *Server) restoreSnapshot(snap []byte) error {
	bad := fmt.Errorf("banksvr: truncated snapshot")
	if len(snap) < 4 {
		return bad
	}
	ncur := binary.BigEndian.Uint32(snap)
	rest := snap[4:]
	treasury := make(map[string]int64, ncur)
	for i := uint32(0); i < ncur; i++ {
		cur, r, err := takeCurrency(rest)
		if err != nil || len(r) < 8 {
			return bad
		}
		treasury[cur] = int64(binary.BigEndian.Uint64(r))
		rest = r[8:]
	}
	if len(rest) < 4 {
		return bad
	}
	naccts := binary.BigEndian.Uint32(rest)
	rest = rest[4:]
	accounts := store.New[*account](0)
	for i := uint32(0); i < naccts; i++ {
		if len(rest) < 6 {
			return bad
		}
		obj := binary.BigEndian.Uint32(rest)
		nbal := binary.BigEndian.Uint16(rest[4:])
		rest = rest[6:]
		a := &account{balances: make(map[string]int64, nbal)}
		for j := uint16(0); j < nbal; j++ {
			cur, r, err := takeCurrency(rest)
			if err != nil || len(r) < 8 {
				return bad
			}
			a.balances[cur] = int64(binary.BigEndian.Uint64(r))
			rest = r[8:]
		}
		accounts.Put(obj, a)
	}
	s.treasury = treasury
	s.accounts = accounts
	return nil
}

func validCurrency(c string) error {
	if c == "" || len(c) > MaxCurrency {
		return fmt.Errorf("banksvr: bad currency %q", c)
	}
	return nil
}

func (s *Server) createAccount(_ context.Context, _ rpc.Meta, req rpc.Request) rpc.Reply {
	currency, rest, err := takeCurrency(req.Data)
	if err != nil {
		return rpc.ErrReply(rpc.StatusBadRequest, err.Error())
	}
	if len(rest) != 8 {
		return rpc.ErrReply(rpc.StatusBadRequest, "create account wants currency ∥ amount(8)")
	}
	amount := int64(binary.BigEndian.Uint64(rest))
	if amount < 0 {
		return rpc.ErrReply(rpc.StatusBadRequest, "negative initial grant")
	}
	if !s.cfg.MintingAllowed {
		s.treasuryMu.Lock()
		if s.treasury[currency] < amount {
			have := s.treasury[currency]
			s.treasuryMu.Unlock()
			return rpc.ErrReply(rpc.StatusServerError,
				fmt.Sprintf("treasury has %d %s, grant wants %d", have, currency, amount))
		}
		s.treasury[currency] -= amount
		s.treasuryMu.Unlock()
	}
	refund := func() {
		if !s.cfg.MintingAllowed {
			s.treasuryMu.Lock()
			s.treasury[currency] += amount // roll the debit back
			s.treasuryMu.Unlock()
		}
	}
	c, secret, err := s.table.CreateRecorded()
	if err != nil {
		refund()
		return rpc.ErrReplyFromErr(err)
	}
	acct := &account{balances: make(map[string]int64)}
	if amount > 0 {
		acct.balances[currency] = amount
	}
	s.accounts.Put(c.Object, acct)
	t, err := s.Append(recCreateAccount(c.Object, secret, currency, amount))
	if err != nil {
		// Unlogged: roll the whole creation back.
		s.accounts.Delete(c.Object)
		_ = s.table.DestroyObject(c.Object)
		refund()
		return rpc.ErrReplyFromErr(err)
	}
	if err := t.Wait(); err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	return rpc.CapReply(c)
}

// acct fetches a live account. The caller locks it before use and
// must re-check the dead flag under the lock.
func (s *Server) acct(obj uint32) (*account, error) {
	a, ok := s.accounts.Get(obj)
	if !ok {
		return nil, fmt.Errorf("banksvr: object %d: %w", obj, cap.ErrNoSuchObject)
	}
	return a, nil
}

// errDead is the lookup-raced-with-destroy error.
func errDead(obj uint32) rpc.Reply {
	return rpc.ErrReplyFromErr(fmt.Errorf("banksvr: object %d: %w", obj, cap.ErrNoSuchObject))
}

func (s *Server) balance(_ context.Context, _ rpc.Meta, req rpc.Request) rpc.Reply {
	if _, err := s.table.Demand(req.Cap, cap.RightRead); err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	a, err := s.acct(req.Cap.Object)
	if err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.dead {
		return errDead(req.Cap.Object)
	}
	currencies := make([]string, 0, len(a.balances))
	for c := range a.balances {
		currencies = append(currencies, c)
	}
	sort.Strings(currencies)
	out := make([]byte, 2)
	binary.BigEndian.PutUint16(out, uint16(len(currencies)))
	for _, c := range currencies {
		out = append(out, byte(len(c)))
		out = append(out, c...)
		var amt [8]byte
		binary.BigEndian.PutUint64(amt[:], uint64(a.balances[c]))
		out = append(out, amt[:]...)
	}
	return rpc.OkReply(out)
}

func (s *Server) transfer(_ context.Context, _ rpc.Meta, req rpc.Request) rpc.Reply {
	// Withdrawal needs RightWrite on the source.
	if _, err := s.table.Demand(req.Cap, cap.RightWrite); err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	if len(req.Data) < cap.Size+1 {
		return rpc.ErrReply(rpc.StatusBadRequest, "transfer wants dest cap(16) ∥ currency ∥ amount(8)")
	}
	dest, err := cap.Decode(req.Data[:cap.Size])
	if err != nil {
		return rpc.ErrReply(rpc.StatusBadRequest, err.Error())
	}
	currency, rest, err := takeCurrency(req.Data[cap.Size:])
	if err != nil {
		return rpc.ErrReply(rpc.StatusBadRequest, err.Error())
	}
	if len(rest) != 8 {
		return rpc.ErrReply(rpc.StatusBadRequest, "transfer wants amount(8)")
	}
	amount := int64(binary.BigEndian.Uint64(rest))
	if amount <= 0 {
		return rpc.ErrReply(rpc.StatusBadRequest, "transfer amount must be positive")
	}
	// Deposit needs RightCreate on the destination. The destination
	// must be an account at this bank.
	if _, err := s.table.Demand(dest, cap.RightCreate); err != nil {
		return rpc.ErrReplyFromErr(fmt.Errorf("destination: %w", err))
	}
	if dest.Object == req.Cap.Object {
		return rpc.ErrReply(rpc.StatusBadRequest, "transfer to self")
	}
	from, err := s.acct(req.Cap.Object)
	if err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	to, err := s.acct(dest.Object)
	if err != nil {
		return rpc.ErrReplyFromErr(fmt.Errorf("destination: %w", err))
	}
	// Lock both accounts in object-number order so concurrent
	// transfers over the same pair (in either direction) cannot
	// deadlock.
	first, second := from, to
	if dest.Object < req.Cap.Object {
		first, second = to, from
	}
	// The redo record is staged under both account locks — commit order
	// must match balance-mutation order per account, or a replay could
	// see a withdrawal before the deposit that funded it — but the
	// group-commit wait happens after unlock, so hot accounts share
	// disk syncs instead of serializing on them.
	var t *wal.Ticket
	rep := func() rpc.Reply {
		first.mu.Lock()
		defer first.mu.Unlock()
		second.mu.Lock()
		defer second.mu.Unlock()
		if from.dead {
			return errDead(req.Cap.Object)
		}
		if to.dead {
			return rpc.ErrReplyFromErr(fmt.Errorf("destination: banksvr: object %d: %w", dest.Object, cap.ErrNoSuchObject))
		}
		if from.balances[currency] < amount {
			return rpc.ErrReply(rpc.StatusServerError,
				fmt.Sprintf("insufficient funds: have %d %s, need %d", from.balances[currency], currency, amount))
		}
		var aerr error
		if t, aerr = s.Append(recTransferMoney(req.Cap.Object, dest.Object, currency, amount)); aerr != nil {
			return rpc.ErrReplyFromErr(aerr)
		}
		from.balances[currency] -= amount
		to.balances[currency] += amount
		return rpc.OkReply(nil)
	}()
	if rep.Status != rpc.StatusOK {
		return rep
	}
	if err := t.Wait(); err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	return rep
}

func (s *Server) convert(_ context.Context, _ rpc.Meta, req rpc.Request) rpc.Reply {
	if _, err := s.table.Demand(req.Cap, cap.RightWrite); err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	fromCur, rest, err := takeCurrency(req.Data)
	if err != nil {
		return rpc.ErrReply(rpc.StatusBadRequest, err.Error())
	}
	toCur, rest, err := takeCurrency(rest)
	if err != nil {
		return rpc.ErrReply(rpc.StatusBadRequest, err.Error())
	}
	if len(rest) != 8 {
		return rpc.ErrReply(rpc.StatusBadRequest, "convert wants amount(8)")
	}
	amount := int64(binary.BigEndian.Uint64(rest))
	if amount <= 0 {
		return rpc.ErrReply(rpc.StatusBadRequest, "convert amount must be positive")
	}
	rate, ok := s.cfg.Rates[[2]string{fromCur, toCur}]
	if !ok {
		return rpc.ErrReply(rpc.StatusServerError,
			fmt.Sprintf("%s is not convertible to %s", fromCur, toCur))
	}
	out := int64(uint64(amount) * rate.Num / rate.Den)
	a, err := s.acct(req.Cap.Object)
	if err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	var t *wal.Ticket
	rep := func() rpc.Reply {
		a.mu.Lock()
		defer a.mu.Unlock()
		if a.dead {
			return errDead(req.Cap.Object)
		}
		if a.balances[fromCur] < amount {
			return rpc.ErrReply(rpc.StatusServerError,
				fmt.Sprintf("insufficient funds: have %d %s, need %d", a.balances[fromCur], fromCur, amount))
		}
		var aerr error
		if t, aerr = s.Append(recConvertMoney(req.Cap.Object, fromCur, toCur, amount, out)); aerr != nil {
			return rpc.ErrReplyFromErr(aerr)
		}
		a.balances[fromCur] -= amount
		a.balances[toCur] += out
		return rpc.OkReply(nil)
	}()
	if rep.Status != rpc.StatusOK {
		return rep
	}
	if err := t.Wait(); err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	return rep
}

func (s *Server) destroyAccount(_ context.Context, _ rpc.Meta, req rpc.Request) rpc.Reply {
	if _, err := s.table.Demand(req.Cap, cap.RightDestroy); err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	a, err := s.acct(req.Cap.Object)
	if err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	a.mu.Lock()
	if a.dead {
		a.mu.Unlock()
		return errDead(req.Cap.Object)
	}
	// The destroy record is staged under the account lock, after every
	// transfer that touched the account and before any that would have
	// failed against the dead flag set below.
	t, aerr := s.Append(recDestroyAccount(req.Cap.Object))
	if aerr != nil {
		a.mu.Unlock()
		return rpc.ErrReplyFromErr(aerr)
	}
	// Once dead is set (under the account lock), racing transfers
	// fail cleanly and no deposit can slip in after the balance
	// snapshot below.
	a.dead = true
	remaining := a.balances
	a.balances = nil
	a.mu.Unlock()
	// Setting dead above elected THE destroyer. The account leaves the
	// map before the table frees the number (a delete after Destroy
	// could clobber a new account that reused it), and the winner
	// retires the (already Demand-checked) table entry by number, so a
	// concurrent revoke cannot leave an orphaned entry behind.
	s.accounts.Delete(req.Cap.Object)
	s.treasuryMu.Lock()
	for c, v := range remaining {
		s.treasury[c] += v
	}
	s.treasuryMu.Unlock()
	if err := s.table.DestroyObject(req.Cap.Object); err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	if err := t.Wait(); err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	return rpc.OkReply(nil)
}

// takeCurrency parses curLen(1) ∥ currency from data, returning the
// currency and the remainder.
func takeCurrency(data []byte) (string, []byte, error) {
	if len(data) < 1 {
		return "", nil, fmt.Errorf("banksvr: missing currency")
	}
	n := int(data[0])
	if len(data) < 1+n {
		return "", nil, fmt.Errorf("banksvr: truncated currency")
	}
	c := string(data[1 : 1+n])
	if err := validCurrency(c); err != nil {
		return "", nil, err
	}
	return c, data[1+n:], nil
}
