// Package servertest provides the shared wiring used by every server
// package's tests and by the experiment harness: a simulated network
// with one machine per server plus a client machine, F-boxes
// everywhere, and an rpc.Client with a fast locate configuration —
// plus the race-soak harness (Soak) every service uses to prove its
// sharded object store safe under heavy client concurrency.
package servertest

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"amoeba/internal/amnet"
	"amoeba/internal/crypto"
	"amoeba/internal/fbox"
	"amoeba/internal/locate"
	"amoeba/internal/rpc"
)

// Rig is a little cluster for tests.
type Rig struct {
	Net    *amnet.SimNet
	Client *rpc.Client
	// Src is a deterministic randomness source shared by the rig.
	Src *crypto.SeededSource

	clientFB *fbox.FBox
}

// New builds a rig with a client machine attached. Servers attach via
// NewFBox.
func New(t *testing.T, seed uint64) *Rig {
	t.Helper()
	n := amnet.NewSimNet(amnet.SimConfig{})
	t.Cleanup(func() { n.Close() })
	r := &Rig{Net: n, Src: crypto.NewSeededSource(seed)}
	r.clientFB = r.NewFBox(t)
	res := locate.New(r.clientFB, locate.Config{Timeout: 200 * time.Millisecond, Attempts: 3})
	r.Client = rpc.NewClient(r.clientFB, res, rpc.ClientConfig{
		Timeout: 750 * time.Millisecond,
		Retries: 2,
		Source:  r.Src,
	})
	return r
}

// NewFBox attaches a fresh machine and wraps it in an F-box, cleaned
// up with the test.
func (r *Rig) NewFBox(t *testing.T) *fbox.FBox {
	t.Helper()
	nic, err := r.Net.Attach()
	if err != nil {
		t.Fatal(err)
	}
	fb := fbox.New(nic, nil)
	t.Cleanup(func() { fb.Close() })
	return fb
}

// NewClient builds an additional independent RPC client on its own
// machine (for multi-client tests).
func (r *Rig) NewClient(t *testing.T) *rpc.Client {
	t.Helper()
	fb := r.NewFBox(t)
	res := locate.New(fb, locate.Config{Timeout: 200 * time.Millisecond, Attempts: 3})
	return rpc.NewClient(fb, res, rpc.ClientConfig{
		Timeout: 750 * time.Millisecond,
		Retries: 2,
		Source:  r.Src,
	})
}

// SoakClients is the default client count for Soak: enough concurrent
// machines to light up every shard of a striped object store.
const SoakClients = 64

// Soak is the shared race-soak harness: it attaches `clients`
// independent client machines and runs fn from each concurrently,
// `iters` times per client, failing the test on the first error. Run
// it under -race — its whole purpose is to drive every service's
// sharded stores and per-object locks hard enough that the race
// detector sees any unsynchronized access. Under -short the client
// count is reduced.
func (r *Rig) Soak(t *testing.T, clients, iters int, fn func(ctx context.Context, c *rpc.Client, client, iter int) error) {
	t.Helper()
	if testing.Short() && clients > 8 {
		clients = 8
	}
	ctx := context.Background()
	// Clients are created on the test goroutine (NewClient registers
	// cleanups), then handed to the workers.
	cs := make([]*rpc.Client, clients)
	for g := range cs {
		cs[g] = r.NewClient(t)
	}
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if err := fn(ctx, cs[g], g, i); err != nil {
					errs <- fmt.Errorf("client %d iter %d: %w", g, i, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
