// Package servertest provides the shared wiring used by every server
// package's tests and by the experiment harness: a simulated network
// with one machine per server plus a client machine, F-boxes
// everywhere, and an rpc.Client with a fast locate configuration.
package servertest

import (
	"testing"
	"time"

	"amoeba/internal/amnet"
	"amoeba/internal/crypto"
	"amoeba/internal/fbox"
	"amoeba/internal/locate"
	"amoeba/internal/rpc"
)

// Rig is a little cluster for tests.
type Rig struct {
	Net    *amnet.SimNet
	Client *rpc.Client
	// Src is a deterministic randomness source shared by the rig.
	Src *crypto.SeededSource

	clientFB *fbox.FBox
}

// New builds a rig with a client machine attached. Servers attach via
// NewFBox.
func New(t *testing.T, seed uint64) *Rig {
	t.Helper()
	n := amnet.NewSimNet(amnet.SimConfig{})
	t.Cleanup(func() { n.Close() })
	r := &Rig{Net: n, Src: crypto.NewSeededSource(seed)}
	r.clientFB = r.NewFBox(t)
	res := locate.New(r.clientFB, locate.Config{Timeout: 200 * time.Millisecond, Attempts: 3})
	r.Client = rpc.NewClient(r.clientFB, res, rpc.ClientConfig{
		Timeout: 750 * time.Millisecond,
		Retries: 2,
		Source:  r.Src,
	})
	return r
}

// NewFBox attaches a fresh machine and wraps it in an F-box, cleaned
// up with the test.
func (r *Rig) NewFBox(t *testing.T) *fbox.FBox {
	t.Helper()
	nic, err := r.Net.Attach()
	if err != nil {
		t.Fatal(err)
	}
	fb := fbox.New(nic, nil)
	t.Cleanup(func() { fb.Close() })
	return fb
}

// NewClient builds an additional independent RPC client on its own
// machine (for multi-client tests).
func (r *Rig) NewClient(t *testing.T) *rpc.Client {
	t.Helper()
	fb := r.NewFBox(t)
	res := locate.New(fb, locate.Config{Timeout: 200 * time.Millisecond, Attempts: 3})
	return rpc.NewClient(fb, res, rpc.ClientConfig{
		Timeout: 750 * time.Millisecond,
		Retries: 2,
		Source:  r.Src,
	})
}
