// Package memsvr implements the Amoeba memory server (§3.1): the
// process that "manages physical memory and processes at the lowest
// level". Clients CREATE SEGMENTs, WRITE data into them, READ them
// back, and combine segment capabilities into a process with MAKE
// PROCESS, receiving a process capability with which the child can be
// started, stopped and generally manipulated. A large segment used
// directly through READ/WRITE is the paper's "electronic disk".
//
// In the paper the memory server is part of each kernel but speaks the
// normal message protocol "so that its clients do not perceive it as
// being special in any way"; here it is an ordinary rpc.Server, which
// is exactly that property.
package memsvr

import (
	"context"

	"encoding/binary"
	"fmt"
	"sync"

	"amoeba/internal/cap"
	"amoeba/internal/crypto"
	"amoeba/internal/fbox"
	"amoeba/internal/rpc"
	"amoeba/internal/store"
	"amoeba/internal/svc"
)

// Operation codes.
const (
	// OpCreateSegment creates a segment: data = size(4). Returns the
	// segment capability.
	OpCreateSegment uint16 = 0x0100 + iota
	// OpWriteSeg writes into a segment: data = offset(4) ∥ bytes.
	// Needs RightWrite.
	OpWriteSeg
	// OpReadSeg reads from a segment: data = offset(4) ∥ length(4).
	// Needs RightRead.
	OpReadSeg
	// OpSegSize returns the segment size (4 bytes). Needs RightRead.
	OpSegSize
	// OpDeleteSegment destroys a segment. Needs RightDestroy.
	OpDeleteSegment
	// OpMakeProcess builds a process from segments: data = count(2) ∥
	// count × capability. Every segment capability must be valid and
	// carry RightRead. Returns the process capability.
	OpMakeProcess
	// OpStartProcess moves a process to running. Needs RightWrite.
	OpStartProcess
	// OpStopProcess moves a process to stopped. Needs RightWrite.
	OpStopProcess
	// OpStatProcess returns state(1) ∥ nsegs(2). Needs RightRead.
	OpStatProcess
	// OpDeleteProcess destroys a process object. Needs RightDestroy.
	OpDeleteProcess
)

// Process states.
const (
	// StateBuilt is a process made but never started.
	StateBuilt uint8 = iota + 1
	// StateRunning is a started process.
	StateRunning
	// StateStopped is a stopped process.
	StateStopped
)

// MaxSegment bounds a single segment (16 MiB), mirroring the bound a
// 1986 memory server would enforce and keeping the simulation honest.
const MaxSegment = 16 << 20

type segment struct {
	mu   sync.RWMutex
	data []byte
}

type process struct {
	mu    sync.Mutex
	state uint8
	segs  []uint32 // object numbers of the member segments
}

// Executor is the machine's "CPU": when a process is started, the
// executor receives the process object number and a copy of each
// member segment's contents (text, data, stack — in MAKE PROCESS
// order). The paper's memory server hands the segments to real
// hardware; the simulation hands them to a Go function. Executors run
// synchronously inside the start operation: keep them short or hand
// off internally.
type Executor func(proc uint32, segments [][]byte)

// Server is a memory server instance on the service kernel (the
// scaffolding — transport, object table, lifecycle — lives in
// internal/svc). Segment and process state live in lock-striped maps
// (see internal/store) keyed by object number, so operations on
// independent objects never contend; each segment and process carries
// its own lock for its contents.
type Server struct {
	*svc.Kernel
	table *cap.Table

	execMu   sync.RWMutex
	executor Executor

	segments  *store.Map[*segment]
	processes *store.Map[*process]
}

// New builds a memory server on fb protecting its objects with scheme.
// Call Start to begin serving.
func New(fb *fbox.FBox, scheme cap.Scheme, src crypto.Source) *Server {
	s := &Server{
		Kernel:    svc.New(fb, scheme, src),
		segments:  store.New[*segment](0),
		processes: store.New[*process](0),
	}
	s.table = s.Table()
	s.Handle(OpCreateSegment, s.createSegment)
	s.Handle(OpWriteSeg, s.writeSeg)
	s.Handle(OpReadSeg, s.readSeg)
	s.Handle(OpSegSize, s.segSize)
	s.Handle(OpDeleteSegment, s.deleteSegment)
	s.Handle(OpMakeProcess, s.makeProcess)
	s.Handle(OpStartProcess, s.startProcess)
	s.Handle(OpStopProcess, s.stopProcess)
	s.Handle(OpStatProcess, s.statProcess)
	s.Handle(OpDeleteProcess, s.deleteProcess)
	return s
}

func (s *Server) createSegment(_ context.Context, _ rpc.Meta, req rpc.Request) rpc.Reply {
	if len(req.Data) != 4 {
		return rpc.ErrReply(rpc.StatusBadRequest, "create segment wants size(4)")
	}
	size := binary.BigEndian.Uint32(req.Data)
	if size > MaxSegment {
		return rpc.ErrReply(rpc.StatusBadRequest, fmt.Sprintf("segment size %d exceeds %d", size, MaxSegment))
	}
	c, err := s.table.Create()
	if err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	s.segments.Put(c.Object, &segment{data: make([]byte, size)})
	return rpc.CapReply(c)
}

// seg validates the capability against need and returns the segment.
func (s *Server) seg(c cap.Capability, need cap.Rights) (*segment, rpc.Reply, bool) {
	if _, err := s.table.Demand(c, need); err != nil {
		return nil, rpc.ErrReplyFromErr(err), false
	}
	sg, ok := s.segments.Get(c.Object)
	if !ok {
		return nil, rpc.ErrReply(rpc.StatusBadCapability, "not a segment"), false
	}
	return sg, rpc.Reply{}, true
}

func (s *Server) writeSeg(_ context.Context, _ rpc.Meta, req rpc.Request) rpc.Reply {
	if len(req.Data) < 4 {
		return rpc.ErrReply(rpc.StatusBadRequest, "write wants offset(4) ∥ bytes")
	}
	sg, errRep, ok := s.seg(req.Cap, cap.RightWrite)
	if !ok {
		return errRep
	}
	off := binary.BigEndian.Uint32(req.Data)
	payload := req.Data[4:]
	sg.mu.Lock()
	defer sg.mu.Unlock()
	if int64(off)+int64(len(payload)) > int64(len(sg.data)) {
		return rpc.ErrReply(rpc.StatusBadRequest,
			fmt.Sprintf("write [%d,%d) exceeds segment size %d", off, int64(off)+int64(len(payload)), len(sg.data)))
	}
	copy(sg.data[off:], payload)
	return rpc.OkReply(nil)
}

func (s *Server) readSeg(_ context.Context, _ rpc.Meta, req rpc.Request) rpc.Reply {
	if len(req.Data) != 8 {
		return rpc.ErrReply(rpc.StatusBadRequest, "read wants offset(4) ∥ length(4)")
	}
	sg, errRep, ok := s.seg(req.Cap, cap.RightRead)
	if !ok {
		return errRep
	}
	off := binary.BigEndian.Uint32(req.Data[0:4])
	n := binary.BigEndian.Uint32(req.Data[4:8])
	sg.mu.RLock()
	defer sg.mu.RUnlock()
	if int64(off)+int64(n) > int64(len(sg.data)) {
		return rpc.ErrReply(rpc.StatusBadRequest,
			fmt.Sprintf("read [%d,%d) exceeds segment size %d", off, int64(off)+int64(n), len(sg.data)))
	}
	// Copy into a pooled reply buffer that ships on the wire in place
	// — one copy out of the segment, none after.
	out := rpc.NewReplyBuf(int(n))
	out.AppendBytes(sg.data[off : int64(off)+int64(n)])
	return rpc.OkReplyBuf(out)
}

func (s *Server) segSize(_ context.Context, _ rpc.Meta, req rpc.Request) rpc.Reply {
	sg, errRep, ok := s.seg(req.Cap, cap.RightRead)
	if !ok {
		return errRep
	}
	sg.mu.RLock()
	defer sg.mu.RUnlock()
	var out [4]byte
	binary.BigEndian.PutUint32(out[:], uint32(len(sg.data)))
	return rpc.OkReply(out[:])
}

func (s *Server) deleteSegment(_ context.Context, _ rpc.Meta, req rpc.Request) rpc.Reply {
	if _, errRep, ok := s.seg(req.Cap, cap.RightDestroy); !ok {
		return errRep
	}
	// Winning the state delete elects THE destroyer: state leaves the
	// map before the number can be reused, and only the winner retires
	// the (already Demand-checked) table entry — by number, so a
	// concurrent revoke cannot leave an orphaned entry behind.
	if _, ok := s.segments.Delete(req.Cap.Object); !ok {
		return rpc.ErrReply(rpc.StatusBadCapability, "not a segment")
	}
	if err := s.table.DestroyObject(req.Cap.Object); err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	return rpc.OkReply(nil)
}

func (s *Server) makeProcess(_ context.Context, _ rpc.Meta, req rpc.Request) rpc.Reply {
	if len(req.Data) < 2 {
		return rpc.ErrReply(rpc.StatusBadRequest, "make process wants count(2) ∥ caps")
	}
	n := int(binary.BigEndian.Uint16(req.Data))
	if len(req.Data) != 2+n*cap.Size {
		return rpc.ErrReply(rpc.StatusBadRequest, "segment capability list truncated")
	}
	if n == 0 {
		return rpc.ErrReply(rpc.StatusBadRequest, "a process needs at least one segment")
	}
	segs := make([]uint32, 0, n)
	for i := 0; i < n; i++ {
		sc, err := cap.Decode(req.Data[2+i*cap.Size : 2+(i+1)*cap.Size])
		if err != nil {
			return rpc.ErrReply(rpc.StatusBadRequest, err.Error())
		}
		// Every constituent segment capability must be genuine and
		// readable: the process is built from memory its creator could
		// read anyway.
		if _, err := s.table.Demand(sc, cap.RightRead); err != nil {
			return rpc.ErrReplyFromErr(fmt.Errorf("segment %d: %w", i, err))
		}
		if _, isSeg := s.segments.Get(sc.Object); !isSeg {
			return rpc.ErrReply(rpc.StatusBadCapability, fmt.Sprintf("capability %d is not a segment", i))
		}
		segs = append(segs, sc.Object)
	}
	c, err := s.table.Create()
	if err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	s.processes.Put(c.Object, &process{state: StateBuilt, segs: segs})
	return rpc.CapReply(c)
}

// proc validates the capability against need and returns the process.
func (s *Server) proc(c cap.Capability, need cap.Rights) (*process, rpc.Reply, bool) {
	if _, err := s.table.Demand(c, need); err != nil {
		return nil, rpc.ErrReplyFromErr(err), false
	}
	p, ok := s.processes.Get(c.Object)
	if !ok {
		return nil, rpc.ErrReply(rpc.StatusBadCapability, "not a process"), false
	}
	return p, rpc.Reply{}, true
}

// SetExecutor installs the process-start hook (nil removes it).
func (s *Server) SetExecutor(fn Executor) {
	s.execMu.Lock()
	defer s.execMu.Unlock()
	s.executor = fn
}

func (s *Server) startProcess(_ context.Context, _ rpc.Meta, req rpc.Request) rpc.Reply {
	p, errRep, ok := s.proc(req.Cap, cap.RightWrite)
	if !ok {
		return errRep
	}
	p.mu.Lock()
	if p.state == StateRunning {
		p.mu.Unlock()
		return rpc.ErrReply(rpc.StatusServerError, "process already running")
	}
	p.state = StateRunning
	segObjs := append([]uint32(nil), p.segs...)
	p.mu.Unlock()

	s.execMu.RLock()
	exec := s.executor
	s.execMu.RUnlock()
	if exec != nil {
		// Snapshot the segments: the executor sees the memory image as
		// of the start, like a loaded program.
		images := make([][]byte, 0, len(segObjs))
		for _, obj := range segObjs {
			sg, ok := s.segments.Get(obj)
			if !ok {
				images = append(images, nil) // segment deleted meanwhile
				continue
			}
			sg.mu.RLock()
			img := make([]byte, len(sg.data))
			copy(img, sg.data)
			sg.mu.RUnlock()
			images = append(images, img)
		}
		exec(req.Cap.Object, images)
	}
	return rpc.OkReply(nil)
}

func (s *Server) stopProcess(_ context.Context, _ rpc.Meta, req rpc.Request) rpc.Reply {
	p, errRep, ok := s.proc(req.Cap, cap.RightWrite)
	if !ok {
		return errRep
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.state != StateRunning {
		return rpc.ErrReply(rpc.StatusServerError, "process not running")
	}
	p.state = StateStopped
	return rpc.OkReply(nil)
}

func (s *Server) statProcess(_ context.Context, _ rpc.Meta, req rpc.Request) rpc.Reply {
	p, errRep, ok := s.proc(req.Cap, cap.RightRead)
	if !ok {
		return errRep
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]byte, 3)
	out[0] = p.state
	binary.BigEndian.PutUint16(out[1:], uint16(len(p.segs)))
	return rpc.OkReply(out)
}

func (s *Server) deleteProcess(_ context.Context, _ rpc.Meta, req rpc.Request) rpc.Reply {
	if _, errRep, ok := s.proc(req.Cap, cap.RightDestroy); !ok {
		return errRep
	}
	// See deleteSegment for the winner-elect ordering.
	if _, ok := s.processes.Delete(req.Cap.Object); !ok {
		return rpc.ErrReply(rpc.StatusBadCapability, "not a process")
	}
	if err := s.table.DestroyObject(req.Cap.Object); err != nil {
		return rpc.ErrReplyFromErr(err)
	}
	return rpc.OkReply(nil)
}
