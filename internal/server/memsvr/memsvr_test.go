package memsvr

import (
	"bytes"
	"context"
	"testing"

	"amoeba/internal/cap"
	"amoeba/internal/rpc"
	"amoeba/internal/server/servertest"
)

func newServer(t *testing.T) (*servertest.Rig, *Client) {
	t.Helper()
	r := servertest.New(t, 0x3E3)
	scheme, err := cap.NewScheme(cap.SchemeOneWay)
	if err != nil {
		t.Fatal(err)
	}
	s := New(r.NewFBox(t), scheme, r.Src)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return r, NewClient(r.Client, s.PutPort())
}

func TestSegmentLifecycle(t *testing.T) {
	ctx := context.Background()
	_, m := newServer(t)
	seg, err := m.CreateSegment(ctx, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Write(ctx, seg, 100, []byte("the child's text segment")); err != nil {
		t.Fatal(err)
	}
	got, err := m.Read(ctx, seg, 100, 24)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("the child's text segment")) {
		t.Fatalf("read back %q", got)
	}
	size, err := m.Size(ctx, seg)
	if err != nil {
		t.Fatal(err)
	}
	if size != 1024 {
		t.Fatalf("size = %d", size)
	}
	if err := m.DeleteSegment(ctx, seg); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Read(ctx, seg, 0, 1); err == nil {
		t.Fatal("read from deleted segment succeeded")
	}
}

func TestSegmentBounds(t *testing.T) {
	ctx := context.Background()
	_, m := newServer(t)
	seg, err := m.CreateSegment(ctx, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Write(ctx, seg, 10, make([]byte, 7)); !rpc.IsStatus(err, rpc.StatusBadRequest) {
		t.Fatalf("overrun write: %v", err)
	}
	if _, err := m.Read(ctx, seg, 12, 5); !rpc.IsStatus(err, rpc.StatusBadRequest) {
		t.Fatalf("overrun read: %v", err)
	}
	// Boundary-exact operations succeed.
	if err := m.Write(ctx, seg, 8, make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Read(ctx, seg, 0, 16); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentTooLarge(t *testing.T) {
	ctx := context.Background()
	_, m := newServer(t)
	if _, err := m.CreateSegment(ctx, MaxSegment+1); !rpc.IsStatus(err, rpc.StatusBadRequest) {
		t.Fatalf("oversized segment: %v", err)
	}
}

func TestRightsEnforced(t *testing.T) {
	ctx := context.Background()
	_, m := newServer(t)
	seg, err := m.CreateSegment(ctx, 64)
	if err != nil {
		t.Fatal(err)
	}
	readOnly, err := m.Restrict(ctx, seg, cap.RightRead)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Read(ctx, readOnly, 0, 8); err != nil {
		t.Fatalf("read with read-only cap: %v", err)
	}
	if err := m.Write(ctx, readOnly, 0, []byte("x")); !rpc.IsStatus(err, rpc.StatusNoPermission) {
		t.Fatalf("write with read-only cap: %v", err)
	}
	if err := m.DeleteSegment(ctx, readOnly); !rpc.IsStatus(err, rpc.StatusNoPermission) {
		t.Fatalf("delete with read-only cap: %v", err)
	}
}

func TestElectronicDisk(t *testing.T) {
	ctx := context.Background()
	// §3.1: a segment used as an "electronic disk": create and do
	// block-sized random reads and writes.
	_, m := newServer(t)
	disk, err := m.CreateSegment(ctx, 64*1024)
	if err != nil {
		t.Fatal(err)
	}
	block := bytes.Repeat([]byte{0x5A}, 512)
	for _, blockNo := range []uint32{0, 7, 127} {
		if err := m.Write(ctx, disk, blockNo*512, block); err != nil {
			t.Fatal(err)
		}
	}
	got, err := m.Read(ctx, disk, 7*512, 512)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, block) {
		t.Fatal("electronic disk corrupted a block")
	}
}

func TestMakeProcess(t *testing.T) {
	ctx := context.Background()
	// The §3.1 parent-process pattern: text, data, stack segments, then
	// MAKE PROCESS with their capabilities.
	_, m := newServer(t)
	var segs []cap.Capability
	for _, content := range []string{"text", "data", "stack"} {
		seg, err := m.CreateSegment(ctx, 64)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Write(ctx, seg, 0, []byte(content)); err != nil {
			t.Fatal(err)
		}
		segs = append(segs, seg)
	}
	proc, err := m.MakeProcess(ctx, segs...)
	if err != nil {
		t.Fatal(err)
	}
	state, nsegs, err := m.Stat(ctx, proc)
	if err != nil {
		t.Fatal(err)
	}
	if state != StateBuilt || nsegs != 3 {
		t.Fatalf("stat = state %d nsegs %d", state, nsegs)
	}
	if err := m.Start(ctx, proc); err != nil {
		t.Fatal(err)
	}
	state, _, err = m.Stat(ctx, proc)
	if err != nil {
		t.Fatal(err)
	}
	if state != StateRunning {
		t.Fatalf("state after start = %d", state)
	}
	if err := m.Start(ctx, proc); err == nil {
		t.Fatal("double start succeeded")
	}
	if err := m.Stop(ctx, proc); err != nil {
		t.Fatal(err)
	}
	state, _, err = m.Stat(ctx, proc)
	if err != nil {
		t.Fatal(err)
	}
	if state != StateStopped {
		t.Fatalf("state after stop = %d", state)
	}
	if err := m.Stop(ctx, proc); err == nil {
		t.Fatal("stop of stopped process succeeded")
	}
	if err := m.DeleteProcess(ctx, proc); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Stat(ctx, proc); err == nil {
		t.Fatal("stat of deleted process succeeded")
	}
}

func TestMakeProcessValidatesSegments(t *testing.T) {
	ctx := context.Background()
	_, m := newServer(t)
	seg, err := m.CreateSegment(ctx, 8)
	if err != nil {
		t.Fatal(err)
	}
	forged := seg
	forged.Check ^= 1
	if _, err := m.MakeProcess(ctx, forged); !rpc.IsStatus(err, rpc.StatusBadCapability) {
		t.Fatalf("forged segment accepted: %v", err)
	}
	if _, err := m.MakeProcess(ctx); err == nil {
		t.Fatal("empty MakeProcess succeeded")
	}
	// A process capability is not a segment capability.
	proc, err := m.MakeProcess(ctx, seg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.MakeProcess(ctx, proc); !rpc.IsStatus(err, rpc.StatusBadCapability) {
		t.Fatalf("process cap accepted as segment: %v", err)
	}
	// Segment ops on a process capability must fail too.
	if _, err := m.Read(ctx, proc, 0, 1); !rpc.IsStatus(err, rpc.StatusBadCapability) {
		t.Fatalf("segment read of process object: %v", err)
	}
}

func TestRevokeSegment(t *testing.T) {
	ctx := context.Background()
	_, m := newServer(t)
	seg, err := m.CreateSegment(ctx, 8)
	if err != nil {
		t.Fatal(err)
	}
	shared, err := m.Restrict(ctx, seg, cap.RightRead)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := m.Revoke(ctx, seg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Read(ctx, shared, 0, 1); !rpc.IsStatus(err, rpc.StatusBadCapability) {
		t.Fatalf("revoked share still reads: %v", err)
	}
	if _, err := m.Read(ctx, fresh, 0, 1); err != nil {
		t.Fatalf("fresh capability broken: %v", err)
	}
}

func TestExecutorReceivesSegmentImages(t *testing.T) {
	ctx := context.Background()
	r := servertest.New(t, 0xE6EC)
	scheme, err := cap.NewScheme(cap.SchemeOneWay)
	if err != nil {
		t.Fatal(err)
	}
	s := New(r.NewFBox(t), scheme, r.Src)
	type started struct {
		proc   uint32
		images [][]byte
	}
	got := make(chan started, 1)
	s.SetExecutor(func(proc uint32, segments [][]byte) {
		got <- started{proc: proc, images: segments}
	})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	m := NewClient(r.Client, s.PutPort())

	text, err := m.CreateSegment(ctx, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Write(ctx, text, 0, []byte("program text")); err != nil {
		t.Fatal(err)
	}
	data, err := m.CreateSegment(ctx, 8)
	if err != nil {
		t.Fatal(err)
	}
	proc, err := m.MakeProcess(ctx, text, data)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(ctx, proc); err != nil {
		t.Fatal(err)
	}
	st := <-got
	if st.proc != proc.Object {
		t.Fatalf("executor saw process %d, want %d", st.proc, proc.Object)
	}
	if len(st.images) != 2 {
		t.Fatalf("executor got %d segments", len(st.images))
	}
	if string(st.images[0][:12]) != "program text" {
		t.Fatalf("text image %q", st.images[0][:12])
	}
	if len(st.images[1]) != 8 {
		t.Fatalf("data image %d bytes", len(st.images[1]))
	}
	// The executor got a snapshot: later writes don't alias it.
	if err := m.Write(ctx, text, 0, []byte("OVERWRITTEN!")); err != nil {
		t.Fatal(err)
	}
	if string(st.images[0][:12]) != "program text" {
		t.Fatal("executor image aliases live segment memory")
	}
}
