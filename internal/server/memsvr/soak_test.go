package memsvr

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"amoeba/internal/rpc"
	"amoeba/internal/server/servertest"
)

// TestSoakConcurrentClients hammers the memory server with 64
// concurrent client machines, each cycling private segments while
// reading a shared one — the sharded-store workload. Run under -race.
func TestSoakConcurrentClients(t *testing.T) {
	r, m := newServer(t)
	ctx := context.Background()
	shared, err := m.CreateSegment(ctx, 512)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Write(ctx, shared, 0, []byte("shared text")); err != nil {
		t.Fatal(err)
	}
	port := m.Port()
	r.Soak(t, servertest.SoakClients, 6, func(ctx context.Context, c *rpc.Client, g, i int) error {
		mc := NewClient(c, port)
		seg, err := mc.CreateSegment(ctx, 256)
		if err != nil {
			return err
		}
		payload := []byte(fmt.Sprintf("client %d iter %d", g, i))
		if err := mc.Write(ctx, seg, uint32(g%32), payload); err != nil {
			return err
		}
		got, err := mc.Read(ctx, seg, uint32(g%32), uint32(len(payload)))
		if err != nil {
			return err
		}
		if !bytes.Equal(got, payload) {
			return fmt.Errorf("read back %q, want %q", got, payload)
		}
		if sh, err := mc.Read(ctx, shared, 0, 11); err != nil {
			return err
		} else if string(sh) != "shared text" {
			return fmt.Errorf("shared segment corrupted: %q", sh)
		}
		return mc.DeleteSegment(ctx, seg)
	})
}
