package memsvr

import (
	"context"
	"encoding/binary"
	"fmt"

	"amoeba/internal/cap"
	"amoeba/internal/rpc"
)

// Client is the typed client for a memory server. The parent-process
// pattern of §3.1 — create segments, load them, MAKE PROCESS — maps
// directly onto its methods, and by pointing a Client at a memory
// server on a remote machine "the parent can create the child wherever
// it wants to".
type Client struct {
	c    *rpc.Client
	port cap.Port
}

// NewClient builds a client speaking to the memory server at port.
func NewClient(c *rpc.Client, port cap.Port) *Client {
	return &Client{c: c, port: port}
}

// Port returns the server's put-port.
func (m *Client) Port() cap.Port { return m.port }

// CreateSegment creates a segment of the given size and returns its
// capability.
func (m *Client) CreateSegment(ctx context.Context, size uint32) (cap.Capability, error) {
	var data [4]byte
	binary.BigEndian.PutUint32(data[:], size)
	rep, err := m.c.Trans(ctx, m.port, rpc.Request{Op: OpCreateSegment, Data: data[:]})
	if err != nil {
		return cap.Nil, err
	}
	if err := statusErr(rep); err != nil {
		return cap.Nil, err
	}
	return rep.Cap, nil
}

// Write loads data into the segment at offset. The parameter header
// and the payload are laid into the pooled wire buffer directly — no
// intermediate concatenation.
func (m *Client) Write(ctx context.Context, seg cap.Capability, offset uint32, data []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], offset)
	_, err := m.c.CallParts(ctx, seg, OpWriteSeg, hdr[:], data)
	return err
}

// Read returns length bytes from the segment at offset.
func (m *Client) Read(ctx context.Context, seg cap.Capability, offset, length uint32) ([]byte, error) {
	var buf [8]byte
	binary.BigEndian.PutUint32(buf[0:], offset)
	binary.BigEndian.PutUint32(buf[4:], length)
	rep, err := m.c.Call(ctx, seg, OpReadSeg, buf[:])
	if err != nil {
		return nil, err
	}
	return rep.Data, nil
}

// Size returns the segment's size.
func (m *Client) Size(ctx context.Context, seg cap.Capability) (uint32, error) {
	rep, err := m.c.Call(ctx, seg, OpSegSize, nil)
	if err != nil {
		return 0, err
	}
	if len(rep.Data) != 4 {
		return 0, fmt.Errorf("memsvr: size reply %d bytes", len(rep.Data))
	}
	return binary.BigEndian.Uint32(rep.Data), nil
}

// DeleteSegment destroys a segment.
func (m *Client) DeleteSegment(ctx context.Context, seg cap.Capability) error {
	_, err := m.c.Call(ctx, seg, OpDeleteSegment, nil)
	return err
}

// MakeProcess combines segments into a new process and returns the
// process capability.
func (m *Client) MakeProcess(ctx context.Context, segs ...cap.Capability) (cap.Capability, error) {
	if len(segs) == 0 {
		return cap.Nil, fmt.Errorf("memsvr: MakeProcess needs at least one segment")
	}
	buf := make([]byte, 2, 2+len(segs)*cap.Size)
	binary.BigEndian.PutUint16(buf, uint16(len(segs)))
	for _, sc := range segs {
		buf = sc.AppendTo(buf)
	}
	rep, err := m.c.Trans(ctx, m.port, rpc.Request{Op: OpMakeProcess, Data: buf})
	if err != nil {
		return cap.Nil, err
	}
	if err := statusErr(rep); err != nil {
		return cap.Nil, err
	}
	return rep.Cap, nil
}

// Start starts a process.
func (m *Client) Start(ctx context.Context, proc cap.Capability) error {
	_, err := m.c.Call(ctx, proc, OpStartProcess, nil)
	return err
}

// Stop stops a running process.
func (m *Client) Stop(ctx context.Context, proc cap.Capability) error {
	_, err := m.c.Call(ctx, proc, OpStopProcess, nil)
	return err
}

// Stat returns a process's state and segment count.
func (m *Client) Stat(ctx context.Context, proc cap.Capability) (state uint8, nsegs int, err error) {
	rep, err := m.c.Call(ctx, proc, OpStatProcess, nil)
	if err != nil {
		return 0, 0, err
	}
	if len(rep.Data) != 3 {
		return 0, 0, fmt.Errorf("memsvr: stat reply %d bytes", len(rep.Data))
	}
	return rep.Data[0], int(binary.BigEndian.Uint16(rep.Data[1:])), nil
}

// DeleteProcess destroys a process object.
func (m *Client) DeleteProcess(ctx context.Context, proc cap.Capability) error {
	_, err := m.c.Call(ctx, proc, OpDeleteProcess, nil)
	return err
}

// Restrict, Revoke and Validate are inherited capability maintenance.
func (m *Client) Restrict(ctx context.Context, c cap.Capability, mask cap.Rights) (cap.Capability, error) {
	return m.c.Restrict(ctx, c, mask)
}

// Revoke re-keys the object, invalidating all outstanding capabilities.
func (m *Client) Revoke(ctx context.Context, c cap.Capability) (cap.Capability, error) {
	return m.c.Revoke(ctx, c)
}

// statusErr converts a non-OK reply obtained via Trans into an error
// (Call already does this; Trans paths need it explicitly).
func statusErr(rep rpc.Reply) error {
	if rep.Status == rpc.StatusOK {
		return nil
	}
	return &rpc.StatusError{Status: rep.Status, Detail: string(rep.Data)}
}
