package memsvr

import "amoeba/internal/obs"

// The wire opcodes name themselves in the shared obs table — the one
// source metric labels and access-log dumps read, so a label can never
// drift from the opcode the const block defines.
func init() {
	obs.RegisterOps(map[uint16]string{
		OpCreateSegment: "mem.create_segment",
		OpWriteSeg:      "mem.write_seg",
		OpReadSeg:       "mem.read_seg",
		OpSegSize:       "mem.seg_size",
		OpDeleteSegment: "mem.delete_segment",
		OpMakeProcess:   "mem.make_process",
		OpStartProcess:  "mem.start_process",
		OpStopProcess:   "mem.stop_process",
		OpStatProcess:   "mem.stat_process",
		OpDeleteProcess: "mem.delete_process",
	})
}
