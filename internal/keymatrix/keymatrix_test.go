package keymatrix

import (
	"errors"
	"testing"

	"amoeba/internal/amnet"
	"amoeba/internal/cap"
	"amoeba/internal/crypto"
)

const (
	mClient   amnet.MachineID = 1
	mServer   amnet.MachineID = 2
	mIntruder amnet.MachineID = 3
)

func testCap() cap.Capability {
	return cap.Capability{Server: 0xabc, Object: 42, Rights: cap.RightRead, Check: 0x123456789a}
}

func testGuards(t *testing.T) (client, server, intruder *Guard) {
	t.Helper()
	m := NewMatrix(crypto.NewSeededSource(0x2461))
	peers := []amnet.MachineID{mClient, mServer, mIntruder}
	return m.Guard(mClient, peers, nil), m.Guard(mServer, peers, nil), m.Guard(mIntruder, peers, nil)
}

func TestSealOpenRoundTrip(t *testing.T) {
	client, server, _ := testGuards(t)
	c := testCap()
	enc, err := client.Seal(c, mServer)
	if err != nil {
		t.Fatal(err)
	}
	if enc == c.Encode() {
		t.Fatal("sealing left the capability in the clear")
	}
	got, err := server.Open(enc, mClient)
	if err != nil {
		t.Fatal(err)
	}
	if got != c {
		t.Fatalf("round trip: got %v want %v", got, c)
	}
}

func TestReplayFromOtherMachineYieldsGarbage(t *testing.T) {
	// The core §2.4 claim: intruder I captures C→S traffic and plays it
	// back; S sees source I and decrypts under M[I][S], producing a
	// capability that "fails to make sense".
	client, server, _ := testGuards(t)
	c := testCap()
	enc, err := client.Seal(c, mServer)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := server.Open(enc, mIntruder) // source says I, not C
	if err != nil {
		t.Fatal(err)
	}
	if replayed == c {
		t.Fatal("replay from another machine decrypted to the real capability")
	}
}

func TestDirectionalKeys(t *testing.T) {
	// M[C][S] and M[S][C] are independent: a capability sealed C→S does
	// not open as S→C traffic.
	client, server, _ := testGuards(t)
	c := testCap()
	encCS, err := client.Seal(c, mServer)
	if err != nil {
		t.Fatal(err)
	}
	got, err := client.Open(encCS, mServer) // pretend it came back S→C
	if err != nil {
		t.Fatal(err)
	}
	if got == c {
		t.Fatal("directional keys are not independent")
	}
	_ = server
}

func TestSealCacheHits(t *testing.T) {
	client, server, _ := testGuards(t)
	c := testCap()
	for i := 0; i < 5; i++ {
		if _, err := client.Seal(c, mServer); err != nil {
			t.Fatal(err)
		}
	}
	s := client.Stats()
	if s.SealMisses != 1 || s.SealHits != 4 {
		t.Fatalf("seal stats %+v", s)
	}

	enc, err := client.Seal(c, mServer)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := server.Open(enc, mClient); err != nil {
			t.Fatal(err)
		}
	}
	st := server.Stats()
	if st.OpenMisses != 1 || st.OpenHits != 4 {
		t.Fatalf("open stats %+v", st)
	}
}

func TestFlushCaches(t *testing.T) {
	client, _, _ := testGuards(t)
	c := testCap()
	if _, err := client.Seal(c, mServer); err != nil {
		t.Fatal(err)
	}
	client.FlushCaches()
	if _, err := client.Seal(c, mServer); err != nil {
		t.Fatal(err)
	}
	if s := client.Stats(); s.SealMisses != 2 {
		t.Fatalf("stats after flush %+v", s)
	}
}

func TestNoKeyInstalled(t *testing.T) {
	g := NewGuard(mClient, nil)
	var wantErr *ErrNoKey
	if _, err := g.Seal(testCap(), mServer); !errors.As(err, &wantErr) {
		t.Fatalf("Seal without key: %v", err)
	}
	if _, err := g.Open([16]byte{}, mServer); !errors.As(err, &wantErr) {
		t.Fatalf("Open without key: %v", err)
	}
	if g.HasKeys(mServer) {
		t.Fatal("HasKeys true on empty guard")
	}
}

func TestSetKeyInvalidatesCaches(t *testing.T) {
	client, server, _ := testGuards(t)
	c := testCap()
	enc, err := client.Seal(c, mServer)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := server.Open(enc, mClient); err != nil {
		t.Fatal(err)
	}
	// Re-key the link (as after a reboot handshake): cached seal for the
	// old key must not be reused.
	client.SetSendKey(mServer, 0xDEAD)
	server.SetRecvKey(mClient, 0xDEAD)
	enc2, err := client.Seal(c, mServer)
	if err != nil {
		t.Fatal(err)
	}
	if enc2 == enc {
		t.Fatal("stale sealed capability served from cache after re-key")
	}
	got, err := server.Open(enc2, mClient)
	if err != nil {
		t.Fatal(err)
	}
	if got != c {
		t.Fatal("round trip broken after re-key")
	}
}

func TestMatrixKeyStable(t *testing.T) {
	m := NewMatrix(crypto.NewSeededSource(1))
	if m.Key(1, 2) != m.Key(1, 2) {
		t.Fatal("matrix key not stable")
	}
	if m.Key(1, 2) == m.Key(2, 1) {
		t.Fatal("directional keys collided (astronomically unlikely)")
	}
}

func TestGuardMachine(t *testing.T) {
	g := NewGuard(7, nil)
	if g.Machine() != 7 {
		t.Fatalf("Machine() = %v", g.Machine())
	}
}

func TestErrNoKeyMessage(t *testing.T) {
	e := &ErrNoKey{Peer: 5}
	if e.Error() != "keymatrix: no key installed for m5" {
		t.Errorf("Error() = %q", e.Error())
	}
}

func TestEndToEndWithObjectTable(t *testing.T) {
	// Full integration: a genuine sealed capability passes the server's
	// table check; a replayed one decrypts to garbage and fails it.
	client, server, _ := testGuards(t)
	scheme, err := cap.NewScheme(cap.SchemeOneWay)
	if err != nil {
		t.Fatal(err)
	}
	table := cap.NewTable(scheme, 0xabc, crypto.NewSeededSource(5))
	owner, err := table.Create()
	if err != nil {
		t.Fatal(err)
	}

	enc, err := client.Seal(owner, mServer)
	if err != nil {
		t.Fatal(err)
	}
	genuine, err := server.Open(enc, mClient)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := table.Validate(genuine); err != nil {
		t.Fatalf("genuine sealed capability rejected: %v", err)
	}

	replayed, err := server.Open(enc, mIntruder)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := table.Validate(replayed); err == nil {
		t.Fatal("replayed capability validated")
	}
}

func TestDynamicGuard(t *testing.T) {
	m := NewMatrix(crypto.NewSeededSource(0xD1A))
	client := m.DynamicGuard(mClient, nil)
	server := m.DynamicGuard(mServer, nil)
	c := testCap()
	// No keys pre-installed: the dynamic guard pulls them from the
	// matrix on demand.
	enc, err := client.Seal(c, mServer)
	if err != nil {
		t.Fatal(err)
	}
	got, err := server.Open(enc, mClient)
	if err != nil {
		t.Fatal(err)
	}
	if got != c {
		t.Fatal("dynamic guards do not share matrix keys")
	}
	// Still directional.
	wrongWay, err := client.Open(enc, mServer)
	if err != nil {
		t.Fatal(err)
	}
	if wrongWay == c {
		t.Fatal("dynamic guard lost key directionality")
	}
}

func TestDynamicGuardReplayStillFails(t *testing.T) {
	m := NewMatrix(crypto.NewSeededSource(0xD1B))
	client := m.DynamicGuard(mClient, nil)
	server := m.DynamicGuard(mServer, nil)
	enc, err := client.Seal(testCap(), mServer)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := server.Open(enc, mIntruder)
	if err != nil {
		t.Fatal(err)
	}
	if replayed == testCap() {
		t.Fatal("replay from intruder decrypted correctly")
	}
}
