package keymatrix

import (
	"errors"
	"testing"

	"amoeba/internal/crypto"
)

func handshakeKey(t *testing.T) *crypto.RSAPrivateKey {
	t.Helper()
	key, err := crypto.GenerateRSA(512, nil)
	if err != nil {
		t.Fatal(err)
	}
	return key
}

func TestHandshakeInstallsWorkingKeys(t *testing.T) {
	priv := handshakeKey(t)
	client := NewGuard(mClient, nil)
	server := NewGuard(mServer, nil)
	if err := Bootstrap(client, server, priv, crypto.NewSeededSource(1)); err != nil {
		t.Fatal(err)
	}
	if !client.HasKeys(mServer) || !server.HasKeys(mClient) {
		t.Fatal("handshake did not install both directions")
	}
	c := testCap()
	enc, err := client.Seal(c, mServer)
	if err != nil {
		t.Fatal(err)
	}
	got, err := server.Open(enc, mClient)
	if err != nil {
		t.Fatal(err)
	}
	if got != c {
		t.Fatal("keys installed by handshake do not round-trip")
	}
	// Reverse direction too.
	enc2, err := server.Seal(c, mClient)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := client.Open(enc2, mServer)
	if err != nil {
		t.Fatal(err)
	}
	if got2 != c {
		t.Fatal("reverse keys do not round-trip")
	}
}

func TestHandshakeStepByStep(t *testing.T) {
	priv := handshakeKey(t)
	src := crypto.NewSeededSource(2)
	k, req, err := NewKeyRequest(&priv.RSAPublicKey, src)
	if err != nil {
		t.Fatal(err)
	}
	kSrv, kRev, rep, err := HandleKeyRequest(priv, req, src)
	if err != nil {
		t.Fatal(err)
	}
	if kSrv != k {
		t.Fatalf("server decrypted K = %#x, want %#x", kSrv, k)
	}
	kRevClient, err := OpenKeyReply(&priv.RSAPublicKey, k, rep)
	if err != nil {
		t.Fatal(err)
	}
	if kRevClient != kRev {
		t.Fatalf("client got K' = %#x, want %#x", kRevClient, kRev)
	}
}

func TestHandshakeRejectsImpostorServer(t *testing.T) {
	// An impostor who does not own the private key cannot produce a
	// verifiable reply: signature check fails.
	priv := handshakeKey(t)
	impostor := handshakeKey(t)
	src := crypto.NewSeededSource(3)
	k, req, err := NewKeyRequest(&priv.RSAPublicKey, src)
	if err != nil {
		t.Fatal(err)
	}
	// The impostor cannot even decrypt the request; suppose he makes up
	// a reply with his own key pair.
	_, _, rep, err := HandleKeyRequest(impostor, KeyRequest{Ciphertext: mustEncrypt(t, impostor, 0x1234)}, src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenKeyReply(&priv.RSAPublicKey, k, rep); !errors.Is(err, ErrHandshake) {
		t.Fatalf("impostor reply accepted: %v", err)
	}
	_ = req
}

func mustEncrypt(t *testing.T, key *crypto.RSAPrivateKey, k uint64) []byte {
	t.Helper()
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(k >> (56 - 8*i))
	}
	ct, err := key.RSAPublicKey.Encrypt(nil, buf[:])
	if err != nil {
		t.Fatal(err)
	}
	return ct
}

func TestHandshakeRejectsTamperedReply(t *testing.T) {
	priv := handshakeKey(t)
	src := crypto.NewSeededSource(4)
	k, req, err := NewKeyRequest(&priv.RSAPublicKey, src)
	if err != nil {
		t.Fatal(err)
	}
	_, _, rep, err := HandleKeyRequest(priv, req, src)
	if err != nil {
		t.Fatal(err)
	}
	rep.Ciphertext[3] ^= 1
	if _, err := OpenKeyReply(&priv.RSAPublicKey, k, rep); !errors.Is(err, ErrHandshake) {
		t.Fatalf("tampered reply accepted: %v", err)
	}
}

func TestHandshakeRejectsReplayedOldReply(t *testing.T) {
	// Replay across reboots: the client's fresh K differs, so an old
	// reply (sealed under the previous K) fails the echo check.
	priv := handshakeKey(t)
	src := crypto.NewSeededSource(5)
	kOld, reqOld, err := NewKeyRequest(&priv.RSAPublicKey, src)
	if err != nil {
		t.Fatal(err)
	}
	_, _, oldReply, err := HandleKeyRequest(priv, reqOld, src)
	if err != nil {
		t.Fatal(err)
	}
	// New session: new K.
	kNew, _, err := NewKeyRequest(&priv.RSAPublicKey, src)
	if err != nil {
		t.Fatal(err)
	}
	if kNew == kOld {
		t.Skip("seeded key collision")
	}
	if _, err := OpenKeyReply(&priv.RSAPublicKey, kNew, oldReply); !errors.Is(err, ErrHandshake) {
		t.Fatalf("old reply replayed into new session accepted: %v", err)
	}
}

func TestHandshakeMalformedInputs(t *testing.T) {
	priv := handshakeKey(t)
	if _, _, _, err := HandleKeyRequest(priv, KeyRequest{Ciphertext: []byte{1, 2, 3}}, nil); !errors.Is(err, ErrHandshake) {
		t.Fatalf("garbage request: %v", err)
	}
	if _, err := OpenKeyReply(&priv.RSAPublicKey, 1, KeyReply{Ciphertext: []byte{1}}); !errors.Is(err, ErrHandshake) {
		t.Fatalf("short reply: %v", err)
	}
}
