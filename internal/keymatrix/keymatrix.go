// Package keymatrix implements §2.4, "Protection without F-Boxes": a
// conceptual matrix M of conventional encryption keys, rows labelled by
// source machine and columns by destination machine, selecting a unique
// key for encrypting the capabilities in any message. The defence
// rests on the network's unforgeable source address: an intruder I who
// captures a message from client C to server S and plays it back will
// have it decrypted under M[I][S] instead of M[C][S], yielding garbage
// capabilities that fail the server's check.
//
// Each machine holds only its own row and column of the matrix (its
// Guard). To avoid running the cipher on every message, guards keep
// the paper's hashed caches: clients cache (unencrypted capability,
// destination, encrypted capability) triples; servers cache (encrypted
// capability, source, unencrypted capability) triples.
//
// The matrix is populated by the public-key bootstrap handshake in
// handshake.go.
package keymatrix

import (
	"sync"

	"amoeba/internal/amnet"
	"amoeba/internal/cap"
	"amoeba/internal/crypto"
)

// Matrix is the full conceptual key matrix. Only tests and single-
// process simulations hold a whole Matrix; a real deployment gives
// each machine a Guard populated by handshakes, holding just one row
// and one column.
type Matrix struct {
	src crypto.Source

	mu   sync.Mutex
	keys map[[2]amnet.MachineID]uint64
}

// NewMatrix builds an empty matrix drawing keys from src (nil selects
// crypto/rand).
func NewMatrix(src crypto.Source) *Matrix {
	if src == nil {
		src = crypto.SystemSource()
	}
	return &Matrix{src: src, keys: make(map[[2]amnet.MachineID]uint64)}
}

// Key returns M[from][to], creating it on first use. Directional:
// M[a][b] and M[b][a] are independent keys (the paper's "possibly
// symmetric" matrix; directional is the stronger choice).
func (m *Matrix) Key(from, to amnet.MachineID) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	k, ok := m.keys[[2]amnet.MachineID{from, to}]
	if !ok {
		k = m.src.Uint64()
		m.keys[[2]amnet.MachineID{from, to}] = k
	}
	return k
}

// Guard builds machine's view of the matrix: its row (keys for
// sending) and column (keys for receiving) against every machine in
// peers. A nil factory selects the Feistel cipher.
func (m *Matrix) Guard(machine amnet.MachineID, peers []amnet.MachineID, factory crypto.CipherFactory) *Guard {
	g := NewGuard(machine, factory)
	for _, p := range peers {
		g.SetSendKey(p, m.Key(machine, p))
		g.SetRecvKey(p, m.Key(p, machine))
	}
	return g
}

// DynamicGuard returns a guard that fetches missing keys from the
// matrix on demand. Only single-process simulations can use it (it
// holds the whole matrix); distributed deployments install keys via
// the bootstrap handshake instead.
func (m *Matrix) DynamicGuard(machine amnet.MachineID, factory crypto.CipherFactory) *Guard {
	g := NewGuard(machine, factory)
	g.lookup = m.Key
	return g
}

// Guard is one machine's holdings: M[me][X] and M[X][me] for all X,
// plus the capability caches. Safe for concurrent use.
type Guard struct {
	machine amnet.MachineID
	factory crypto.CipherFactory
	// lookup, if set, supplies keys missing from the maps (dynamic
	// guards over a full Matrix).
	lookup func(from, to amnet.MachineID) uint64

	mu       sync.Mutex
	sendKeys map[amnet.MachineID]uint64 // M[me][dst]
	recvKeys map[amnet.MachineID]uint64 // M[src][me]
	ciphers  map[uint64]crypto.BlockCipher64

	sealCache map[sealKey][cap.Size]byte
	openCache map[openKey]cap.Capability
	stats     CacheStats
}

type sealKey struct {
	plain cap.Capability
	dst   amnet.MachineID
}

type openKey struct {
	enc [cap.Size]byte
	src amnet.MachineID
}

// CacheStats counts cache effectiveness for experiment E8.
type CacheStats struct {
	SealHits   uint64
	SealMisses uint64
	OpenHits   uint64
	OpenMisses uint64
}

// NewGuard builds an empty guard for machine (keys installed later by
// handshakes). A nil factory selects the Feistel cipher.
func NewGuard(machine amnet.MachineID, factory crypto.CipherFactory) *Guard {
	if factory == nil {
		factory = crypto.FeistelFactory
	}
	return &Guard{
		machine:   machine,
		factory:   factory,
		sendKeys:  make(map[amnet.MachineID]uint64),
		recvKeys:  make(map[amnet.MachineID]uint64),
		ciphers:   make(map[uint64]crypto.BlockCipher64),
		sealCache: make(map[sealKey][cap.Size]byte),
		openCache: make(map[openKey]cap.Capability),
	}
}

// Machine returns the machine this guard belongs to.
func (g *Guard) Machine() amnet.MachineID { return g.machine }

// SetSendKey installs M[me][dst], clearing any cached seals for dst.
func (g *Guard) SetSendKey(dst amnet.MachineID, key uint64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.sendKeys[dst] = key
	for k := range g.sealCache {
		if k.dst == dst {
			delete(g.sealCache, k)
		}
	}
}

// SetRecvKey installs M[src][me], clearing any cached opens for src.
func (g *Guard) SetRecvKey(src amnet.MachineID, key uint64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.recvKeys[src] = key
	for k := range g.openCache {
		if k.src == src {
			delete(g.openCache, k)
		}
	}
}

// HasKeys reports whether both directions to peer are installed.
func (g *Guard) HasKeys(peer amnet.MachineID) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	_, s := g.sendKeys[peer]
	_, r := g.recvKeys[peer]
	return s && r
}

// cipherFor returns (creating if needed) the cipher for a key.
// Callers hold g.mu.
func (g *Guard) cipherFor(key uint64) crypto.BlockCipher64 {
	c, ok := g.ciphers[key]
	if !ok {
		c = g.factory(key)
		g.ciphers[key] = c
	}
	return c
}

// ErrNoKey is returned when no key is installed for the peer.
type ErrNoKey struct {
	Peer amnet.MachineID
}

// Error implements error.
func (e *ErrNoKey) Error() string {
	return "keymatrix: no key installed for " + e.Peer.String()
}

// Seal encrypts a capability for transmission to dst under M[me][dst],
// consulting the client-side cache first. The 16-byte result replaces
// the capability on the wire; the data need not be encrypted (§2.4).
func (g *Guard) Seal(c cap.Capability, dst amnet.MachineID) ([cap.Size]byte, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if enc, ok := g.sealCache[sealKey{plain: c, dst: dst}]; ok {
		g.stats.SealHits++
		return enc, nil
	}
	key, ok := g.sendKeys[dst]
	if !ok {
		if g.lookup == nil {
			return [cap.Size]byte{}, &ErrNoKey{Peer: dst}
		}
		key = g.lookup(g.machine, dst)
		g.sendKeys[dst] = key
	}
	g.stats.SealMisses++
	enc := c.Encode()
	// Two 8-byte blocks; see crypto.EncryptBytes for the mode note.
	if err := crypto.EncryptBytes(g.cipherFor(key), enc[:]); err != nil {
		return [cap.Size]byte{}, err
	}
	g.sealCache[sealKey{plain: c, dst: dst}] = enc
	return enc, nil
}

// Open decrypts a received 16-byte capability under M[src][me],
// consulting the server-side cache first. Note that Open cannot itself
// detect forgery or replay: a wrong key simply yields a garbage
// capability, which the object server's table check then rejects —
// exactly the paper's argument.
func (g *Guard) Open(enc [cap.Size]byte, src amnet.MachineID) (cap.Capability, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.openCache[openKey{enc: enc, src: src}]; ok {
		g.stats.OpenHits++
		return c, nil
	}
	key, ok := g.recvKeys[src]
	if !ok {
		if g.lookup == nil {
			return cap.Nil, &ErrNoKey{Peer: src}
		}
		key = g.lookup(src, g.machine)
		g.recvKeys[src] = key
	}
	g.stats.OpenMisses++
	buf := enc
	if err := crypto.DecryptBytes(g.cipherFor(key), buf[:]); err != nil {
		return cap.Nil, err
	}
	c, err := cap.Decode(buf[:])
	if err != nil {
		return cap.Nil, err
	}
	g.openCache[openKey{enc: enc, src: src}] = c
	return c, nil
}

// Stats returns a snapshot of the cache counters.
func (g *Guard) Stats() CacheStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.stats
}

// FlushCaches empties both capability caches (benchmarks use it to
// measure the miss path).
func (g *Guard) FlushCaches() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.sealCache = make(map[sealKey][cap.Size]byte)
	g.openCache = make(map[openKey]cap.Capability)
}
