package wire

import (
	"bytes"
	"testing"
)

func TestExtendAppendPrepend(t *testing.T) {
	b := Get(DefaultHeadroom, 16)
	if b.Len() != 0 || b.Headroom() != DefaultHeadroom {
		t.Fatalf("fresh buf: len %d headroom %d", b.Len(), b.Headroom())
	}
	copy(b.Extend(3), "abc")
	b.AppendBytes([]byte("def"))
	hdr := b.Prepend(2)
	hdr[0], hdr[1] = 'x', 'y'
	if !bytes.Equal(b.Bytes(), []byte("xyabcdef")) {
		t.Fatalf("payload %q", b.Bytes())
	}
	if b.Headroom() != DefaultHeadroom-2 {
		t.Fatalf("headroom after prepend: %d", b.Headroom())
	}
	b.Release()
}

func TestPrependBeyondHeadroomReshapes(t *testing.T) {
	b := Get(2, 8)
	b.AppendBytes([]byte("payload!"))
	hdr := b.Prepend(19) // only 2 bytes of headroom: must re-home
	for i := range hdr {
		hdr[i] = byte(i)
	}
	if got := b.Bytes(); len(got) != 19+8 || !bytes.Equal(got[19:], []byte("payload!")) {
		t.Fatalf("after reshape: %q", got)
	}
	b.Release()
}

func TestExtendBeyondClassGrows(t *testing.T) {
	b := Get(0, 16)
	b.AppendBytes(bytes.Repeat([]byte{7}, 16))
	b.AppendBytes(bytes.Repeat([]byte{9}, 4096)) // overflows the 256 class
	got := b.Bytes()
	if len(got) != 16+4096 || got[0] != 7 || got[4111] != 9 {
		t.Fatalf("grown payload wrong: len %d", len(got))
	}
	b.Release()
}

func TestCloneIsIndependent(t *testing.T) {
	b := Get(DefaultHeadroom, 4)
	b.AppendBytes([]byte("orig"))
	c := b.Clone()
	b.Bytes()[0] = 'X'
	if string(c.Bytes()) != "orig" {
		t.Fatalf("clone aliased original: %q", c.Bytes())
	}
	b.Release()
	c.Release()
}

func TestOversizeUnpooled(t *testing.T) {
	n := classSizes[len(classSizes)-1] + 1
	b := Get(0, n)
	if b.class != -1 {
		t.Fatalf("oversize buf got class %d", b.class)
	}
	b.Extend(n)
	b.Release() // must not panic or pool
}

func TestDoubleReleasePanics(t *testing.T) {
	b := Get(0, 8)
	b.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("second Release did not panic")
		}
	}()
	b.Release()
}

// TestPoisonDetectsWriteAfterRelease is the aliasing canary: a
// goroutine that keeps a slice into a released buffer and writes
// through it must be caught when the buffer is recycled. The check is
// exercised directly on the released shell (not via a pool
// round-trip: sync.Pool intentionally drops items under the race
// detector, which would make resurfacing nondeterministic).
func TestPoisonDetectsWriteAfterRelease(t *testing.T) {
	SetDebug(true)
	defer SetDebug(false)
	b := Get(0, 100)
	alias := b.Extend(8)
	b.Release() // poisons the buffer
	if !b.poisoned {
		t.Fatal("released buffer not poisoned in debug mode")
	}
	alias[3] = 0xFF // the bug under test: write through a stale alias
	defer func() {
		if recover() == nil {
			t.Fatal("recycling a corrupted buffer did not panic")
		}
		// Repair the poison before returning: Release already put the
		// buffer in the (global) pool, and a corrupted entry would
		// panic whichever later Get happens to recycle it.
		alias[3] = poisonByte
	}()
	checkPoison(b) // what Get runs on every recycled buffer
	t.Fatal("disturbed poison went undetected")
}

// TestPoisonCleanRecycle: an untouched released buffer recycles
// without complaint in debug mode.
func TestPoisonCleanRecycle(t *testing.T) {
	SetDebug(true)
	defer SetDebug(false)
	for i := 0; i < 64; i++ {
		b := Get(0, 100)
		b.AppendBytes([]byte("hello"))
		b.Release()
	}
}
