// Package wire provides the pooled message buffer the transport stack
// shares: one Buf is allocated (or recycled) when a message is born at
// the RPC layer and the same backing array rides through the F-box
// framing, the network and the receiver's decode — the skbuff
// discipline of kernel networking applied to the Amoeba stack.
//
// # Headroom
//
// A Buf reserves headroom in front of its payload so lower layers can
// *prepend* their headers in place instead of copying the payload into
// a bigger allocation: the RPC layer encodes a request at offset
// DefaultHeadroom, the F-box prepends its 19-byte frame header with
// Prepend, and the TCP transport prepends its 14-byte length header in
// the same backing array. No layer copies.
//
// # Ownership
//
// A Buf has exactly one owner at a time. Passing a Buf to a consuming
// API (amnet.NIC.SendBuf, fbox.PutBuf) transfers ownership: the caller
// must not touch the Buf afterwards. The final owner calls Release to
// return the buffer to its size-class pool. Releasing is an
// optimization, not an obligation — a Buf that is simply dropped is
// garbage-collected like any slice — but every hot path releases, which
// is what makes the pool effective.
//
// # Poison-on-release debugging
//
// SetDebug(true) arms lifetime checking: Release fills the buffer with
// a poison pattern, a second Release panics, and a recycled buffer
// whose poison has been disturbed panics at Get — catching any code
// that kept an alias to a released payload and wrote through it. The
// race-soak tests run with debug mode on.
package wire

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// DefaultHeadroom is the headroom message builders reserve for the
// layers below them: the F-box frame header (19 bytes) plus the TCP
// transport header (14 bytes), rounded up generously.
const DefaultHeadroom = 64

// classSizes are the pooled size classes (backing-array sizes,
// headroom included). The largest holds a full network MTU frame plus
// headroom; anything bigger is allocated exactly and not pooled.
var classSizes = [...]int{256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, (1 << 17) + 256}

var pools [len(classSizes)]sync.Pool

// debug arms poison-on-release lifetime checking (see SetDebug).
var debug atomic.Bool

// SetDebug toggles poison-on-release debugging globally. Intended for
// tests; the checks cost a full buffer scan per Get/Release.
func SetDebug(on bool) { debug.Store(on) }

// DebugEnabled reports whether poison-on-release checking is armed.
func DebugEnabled() bool { return debug.Load() }

// poisonByte fills released buffers in debug mode. Any deviation found
// at reuse time proves a write-after-release.
const poisonByte = 0xA5

// Buf is a pooled wire buffer: a backing array with the live payload
// at [off, end) and headroom in front for lower-layer headers.
type Buf struct {
	data     []byte
	off, end int
	class    int // index into pools; -1 = oversize, not pooled
	dead     bool
	poisoned bool
}

// classFor returns the smallest class index fitting n bytes, or -1.
func classFor(n int) int {
	for i, sz := range classSizes {
		if n <= sz {
			return i
		}
	}
	return -1
}

// Get returns an empty Buf with the given headroom reserved and
// capacity for at least `capacity` appended bytes.
func Get(headroom, capacity int) *Buf {
	need := headroom + capacity
	cls := classFor(need)
	if cls < 0 {
		return &Buf{data: make([]byte, need), off: headroom, end: headroom, class: -1}
	}
	if v := pools[cls].Get(); v != nil {
		b := v.(*Buf)
		if debug.Load() {
			checkPoison(b)
		}
		b.off, b.end, b.dead, b.poisoned = headroom, headroom, false, false
		return b
	}
	return &Buf{data: make([]byte, classSizes[cls]), off: headroom, end: headroom, class: cls}
}

// NewFrom returns a Buf with DefaultHeadroom whose payload is a copy
// of p — the bridge from ordinary slices into the pooled path.
func NewFrom(p []byte) *Buf {
	b := Get(DefaultHeadroom, len(p))
	b.AppendBytes(p)
	return b
}

// Bytes returns the live payload. The slice aliases the Buf: it is
// valid only until the Buf is released or passed to a consuming API.
func (b *Buf) Bytes() []byte { return b.data[b.off:b.end] }

// Len returns the payload length.
func (b *Buf) Len() int { return b.end - b.off }

// Headroom returns the bytes available for Prepend.
func (b *Buf) Headroom() int { return b.off }

// Extend appends n uninitialized bytes to the payload and returns the
// slice covering them, for the caller to fill in place. The bytes may
// contain recycled garbage and must be fully overwritten.
func (b *Buf) Extend(n int) []byte {
	if b.end+n > len(b.data) {
		b.grow(b.Len() + n)
	}
	s := b.data[b.end : b.end+n]
	b.end += n
	return s
}

// AppendBytes appends a copy of p to the payload.
func (b *Buf) AppendBytes(p []byte) {
	copy(b.Extend(len(p)), p)
}

// Prepend grows the payload n bytes at the *front* — into the reserved
// headroom when available, via a copy into a roomier buffer otherwise —
// and returns the slice covering the new front bytes.
func (b *Buf) Prepend(n int) []byte {
	if b.off < n {
		b.reshape(n+DefaultHeadroom, b.Len())
	}
	b.off -= n
	return b.data[b.off : b.off+n]
}

// grow moves the payload into a backing array with room for a payload
// of newLen, preserving the current headroom.
func (b *Buf) grow(newLen int) {
	b.reshape(b.off, newLen)
}

// reshape re-homes the payload into a backing array with the given
// headroom and payload capacity, recycling the old array.
func (b *Buf) reshape(headroom, capacity int) {
	old := *b
	n := old.Len()
	if capacity < n {
		capacity = n
	}
	nb := Get(headroom, capacity)
	copy(nb.Extend(n), old.data[old.off:old.end])
	*b = *nb
	// nb's shell is garbage now; put the old array back in its pool by
	// rebuilding a shell around it (the struct identity b must survive
	// for the caller, so the old array gets a fresh shell).
	if old.class >= 0 {
		releaseShell(&Buf{data: old.data, class: old.class})
	}
}

// Clone returns an independent pooled copy (same headroom, same
// payload). Fault-injection paths that must deliver one frame twice
// clone it so each recipient owns its copy.
func (b *Buf) Clone() *Buf {
	nb := Get(b.off, b.Len())
	nb.AppendBytes(b.Bytes())
	return nb
}

// Release returns the Buf to its pool. The Buf and every slice
// obtained from it are invalid afterwards. Releasing twice is a bug:
// it is detected (best effort — reliably in debug mode) and panics.
func (b *Buf) Release() {
	if b.dead {
		panic("wire: Buf released twice")
	}
	b.dead = true
	releaseShell(b)
}

// checkPoison panics if a poisoned buffer's pattern was disturbed —
// proof that someone kept an alias past Release and wrote through it.
func checkPoison(b *Buf) {
	if !b.poisoned {
		return
	}
	for i, c := range b.data {
		if c != poisonByte {
			panic(fmt.Sprintf("wire: buffer written after Release (class %d, offset %d)", b.class, i))
		}
	}
}

func releaseShell(b *Buf) {
	if b.class < 0 {
		return // oversize: let the GC have it
	}
	b.dead = true
	if debug.Load() {
		for i := range b.data {
			b.data[i] = poisonByte
		}
		b.poisoned = true
	} else {
		b.poisoned = false
	}
	pools[b.class].Put(b)
}
