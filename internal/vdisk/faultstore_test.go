package vdisk

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

func faultDisk(t *testing.T) (*Disk, *FaultStore) {
	t.Helper()
	d, err := New(16, 64)
	if err != nil {
		t.Fatal(err)
	}
	return d, NewFaultStore(d, 42)
}

func TestFaultStorePassThrough(t *testing.T) {
	_, fs := faultDisk(t)
	blk := bytes.Repeat([]byte{0xAB}, fs.BlockSize())
	if err := fs.Write(3, blk); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	got, err := fs.Read(3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, blk) {
		t.Fatal("healthy FaultStore corrupted a round trip")
	}
	if err := fs.Zero(3); err != nil {
		t.Fatal(err)
	}
	if got, _ := fs.Read(3); !bytes.Equal(got, make([]byte, fs.BlockSize())) {
		t.Fatal("Zero did not zero")
	}
	if s := fs.FaultStats(); s != (FaultStats{}) {
		t.Fatalf("healthy store charged faults: %+v", s)
	}
}

func TestFaultStoreEIOAfterN(t *testing.T) {
	_, fs := faultDisk(t)
	blk := make([]byte, fs.BlockSize())
	fs.FailWritesAfter(2)
	if err := fs.Write(0, blk); err != nil {
		t.Fatalf("write 1 of 2 before the fault: %v", err)
	}
	if err := fs.Write(1, blk); err != nil {
		t.Fatalf("write 2 of 2 before the fault: %v", err)
	}
	if err := fs.Write(2, blk); !errors.Is(err, ErrInjectedIO) {
		t.Fatalf("write after countdown: %v, want ErrInjectedIO", err)
	}
	if err := fs.Sync(); !errors.Is(err, ErrInjectedIO) {
		t.Fatalf("sync on a dead disk: %v, want ErrInjectedIO", err)
	}
	if err := fs.Zero(0); !errors.Is(err, ErrInjectedIO) {
		t.Fatalf("zero on a dead disk: %v, want ErrInjectedIO", err)
	}
	// Reads survive: the failure is gray, not fail-stop.
	if _, err := fs.Read(0); err != nil {
		t.Fatalf("read on a write-dead disk: %v", err)
	}
	fs.Heal()
	if err := fs.Write(2, blk); err != nil {
		t.Fatalf("write after Heal: %v", err)
	}
}

func TestFaultStoreENOSPC(t *testing.T) {
	_, fs := faultDisk(t)
	blk := make([]byte, fs.BlockSize())
	fs.SetENOSPC(true)
	if err := fs.Write(0, blk); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("write on a full disk: %v, want ErrNoSpace", err)
	}
	// Already-written data stays durable: sync and reads still work.
	if err := fs.Sync(); err != nil {
		t.Fatalf("sync on a full disk: %v", err)
	}
	if _, err := fs.Read(0); err != nil {
		t.Fatalf("read on a full disk: %v", err)
	}
	fs.SetENOSPC(false)
	if err := fs.Write(0, blk); err != nil {
		t.Fatalf("write after space freed: %v", err)
	}
}

func TestFaultStoreTornWrite(t *testing.T) {
	inner, fs := faultDisk(t)
	full := bytes.Repeat([]byte{0xFF}, fs.BlockSize())
	fs.TearNextWrite()
	if err := fs.Write(5, full); !errors.Is(err, ErrInjectedIO) {
		t.Fatalf("torn write reported %v, want ErrInjectedIO", err)
	}
	got, err := inner.Read(5)
	if err != nil {
		t.Fatal(err)
	}
	half := fs.BlockSize() / 2
	if !bytes.Equal(got[:half], full[:half]) {
		t.Fatal("torn write lost its first half")
	}
	if !bytes.Equal(got[half:], make([]byte, fs.BlockSize()-half)) {
		t.Fatal("torn write persisted its second half")
	}
	// One-shot: the next write is whole.
	if err := fs.Write(5, full); err != nil {
		t.Fatalf("write after the tear: %v", err)
	}
	if got, _ := inner.Read(5); !bytes.Equal(got, full) {
		t.Fatal("post-tear write did not land whole")
	}
}

func TestFaultStoreBitRotDeterministic(t *testing.T) {
	run := func(seed uint64) []byte {
		d, err := New(16, 64)
		if err != nil {
			t.Fatal(err)
		}
		fs := NewFaultStore(d, seed)
		blk := bytes.Repeat([]byte{0x55}, fs.BlockSize())
		if err := fs.Write(0, blk); err != nil {
			t.Fatal(err)
		}
		fs.SetBitRot(1.0)
		got, err := fs.Read(0)
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Equal(got, blk) {
			t.Fatal("bit rot at rate 1.0 returned clean data")
		}
		if s := fs.FaultStats(); s.RottenReads != 1 {
			t.Fatalf("RottenReads = %d, want 1", s.RottenReads)
		}
		// The store itself is clean — rereads without the fault match.
		fs.SetBitRot(0)
		clean, err := fs.Read(0)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(clean, blk) {
			t.Fatal("bit rot modified the store, not just the read")
		}
		return got
	}
	a, b := run(7), run(7)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different rot")
	}
	// Exactly one bit differs from the clean image.
	clean := bytes.Repeat([]byte{0x55}, len(a))
	bits := 0
	for i := range a {
		for d := a[i] ^ clean[i]; d != 0; d &= d - 1 {
			bits++
		}
	}
	if bits != 1 {
		t.Fatalf("rot flipped %d bits, want exactly 1", bits)
	}
}

func TestFaultStoreSlow(t *testing.T) {
	_, fs := faultDisk(t)
	fs.SetSlow(5 * time.Millisecond)
	start := time.Now()
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 5*time.Millisecond {
		t.Fatalf("slow sync returned in %v, want ≥ 5ms", d)
	}
}
