// Package vdisk is a fixed-geometry virtual disk: the storage substrate
// under the block server (§3.2). The paper's block server managed real
// drives; an in-memory disk with the same interface (numbered
// fixed-size blocks, whole-block reads and writes) preserves the
// behaviour the capability layer cares about. Fault injection hooks
// let tests exercise server error paths.
package vdisk

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Errors.
var (
	// ErrOutOfRange is returned for block numbers beyond the geometry.
	ErrOutOfRange = errors.New("vdisk: block number out of range")
	// ErrBadSize is returned when a write is not exactly one block.
	ErrBadSize = errors.New("vdisk: write must be exactly one block")
)

// FaultFunc may be installed to inject I/O errors: it is consulted
// before every operation with the opcode ("read"/"write") and block
// number; a non-nil return aborts the operation with that error.
type FaultFunc func(op string, block uint32) error

// Stats counts disk activity.
type Stats struct {
	Reads  uint64
	Writes uint64
	Syncs  uint64
}

// Disk is an in-memory virtual disk. Safe for concurrent use:
// independent block reads proceed in parallel under the read lock,
// with the activity counters kept atomic so they do not reintroduce
// write sharing on the read path.
type Disk struct {
	blockSize int
	nblocks   uint32

	reads  atomic.Uint64
	writes atomic.Uint64
	syncs  atomic.Uint64

	mu    sync.RWMutex
	data  []byte
	fault FaultFunc
}

// New creates a disk with nblocks blocks of blockSize bytes.
func New(nblocks uint32, blockSize int) (*Disk, error) {
	if nblocks == 0 || blockSize <= 0 {
		return nil, fmt.Errorf("vdisk: bad geometry %d×%d", nblocks, blockSize)
	}
	const maxBytes = 1 << 31
	if int64(nblocks)*int64(blockSize) > maxBytes {
		return nil, fmt.Errorf("vdisk: geometry %d×%d exceeds %d bytes", nblocks, blockSize, maxBytes)
	}
	return &Disk{
		blockSize: blockSize,
		nblocks:   nblocks,
		data:      make([]byte, int64(nblocks)*int64(blockSize)),
	}, nil
}

// BlockSize returns the block size in bytes.
func (d *Disk) BlockSize() int { return d.blockSize }

// NBlocks returns the number of blocks.
func (d *Disk) NBlocks() uint32 { return d.nblocks }

// SetFault installs (or clears, with nil) the fault-injection hook.
func (d *Disk) SetFault(f FaultFunc) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.fault = f
}

// Read copies block n into a fresh buffer.
func (d *Disk) Read(n uint32) ([]byte, error) {
	buf := make([]byte, d.blockSize)
	if err := d.ReadInto(n, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// ReadInto copies block n into dst, which must be exactly one block —
// the allocation-free read path (callers hand in pooled or reused
// buffers; the block server reads straight into its wire buffer).
func (d *Disk) ReadInto(n uint32, dst []byte) error {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if n >= d.nblocks {
		return fmt.Errorf("%w: %d of %d", ErrOutOfRange, n, d.nblocks)
	}
	if len(dst) != d.blockSize {
		return fmt.Errorf("%w: got %d bytes, block is %d", ErrBadSize, len(dst), d.blockSize)
	}
	if d.fault != nil {
		if err := d.fault("read", n); err != nil {
			return err
		}
	}
	copy(dst, d.data[int(n)*d.blockSize:])
	d.reads.Add(1)
	return nil
}

// Write replaces block n. data must be exactly one block.
func (d *Disk) Write(n uint32, data []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if n >= d.nblocks {
		return fmt.Errorf("%w: %d of %d", ErrOutOfRange, n, d.nblocks)
	}
	if len(data) != d.blockSize {
		return fmt.Errorf("%w: got %d bytes, block is %d", ErrBadSize, len(data), d.blockSize)
	}
	if d.fault != nil {
		if err := d.fault("write", n); err != nil {
			return err
		}
	}
	copy(d.data[int(n)*d.blockSize:], data)
	d.writes.Add(1)
	return nil
}

// Zero clears block n (deallocation hygiene: freed blocks must not
// leak their previous contents to the next allocator).
func (d *Disk) Zero(n uint32) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if n >= d.nblocks {
		return fmt.Errorf("%w: %d of %d", ErrOutOfRange, n, d.nblocks)
	}
	if d.fault != nil {
		if err := d.fault("write", n); err != nil {
			return err
		}
	}
	start := int(n) * d.blockSize
	for i := start; i < start+d.blockSize; i++ {
		d.data[i] = 0
	}
	d.writes.Add(1)
	return nil
}

// Sync implements Store. Memory is as stable as this disk gets, so it
// is a no-op; it exists so the write-ahead log can force durability
// through the same interface on any backing store. The syncs counter
// still advances, letting tests assert group-commit batching.
func (d *Disk) Sync() error {
	d.syncs.Add(1)
	return nil
}

// Clone returns an independent deep copy of the disk's current
// contents — the crash-matrix tests use it to freeze the exact bytes
// "on disk" at an instant and replay recovery from them.
func (d *Disk) Clone() *Disk {
	d.mu.RLock()
	defer d.mu.RUnlock()
	c := &Disk{
		blockSize: d.blockSize,
		nblocks:   d.nblocks,
		data:      append([]byte(nil), d.data...),
	}
	return c
}

// Stats returns a snapshot of the counters.
func (d *Disk) Stats() Stats {
	return Stats{Reads: d.reads.Load(), Writes: d.writes.Load(), Syncs: d.syncs.Load()}
}
