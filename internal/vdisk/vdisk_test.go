package vdisk

import (
	"bytes"
	"errors"
	"sync"
	"testing"
)

func TestReadWriteRoundTrip(t *testing.T) {
	d, err := New(8, 64)
	if err != nil {
		t.Fatal(err)
	}
	blk := bytes.Repeat([]byte{0xAB}, 64)
	if err := d.Write(3, blk); err != nil {
		t.Fatal(err)
	}
	got, err := d.Read(3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, blk) {
		t.Fatal("read back wrong data")
	}
}

func TestFreshDiskIsZeroed(t *testing.T) {
	d, err := New(4, 32)
	if err != nil {
		t.Fatal(err)
	}
	got, err := d.Read(0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, 32)) {
		t.Fatal("fresh disk not zeroed")
	}
}

func TestGeometryValidation(t *testing.T) {
	if _, err := New(0, 64); err == nil {
		t.Error("accepted 0 blocks")
	}
	if _, err := New(4, 0); err == nil {
		t.Error("accepted 0 block size")
	}
	if _, err := New(1<<24, 1<<10); err == nil {
		t.Error("accepted 16GiB disk")
	}
}

func TestOutOfRange(t *testing.T) {
	d, _ := New(4, 16)
	if _, err := d.Read(4); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("Read: %v", err)
	}
	if err := d.Write(99, make([]byte, 16)); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("Write: %v", err)
	}
	if err := d.Zero(4); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("Zero: %v", err)
	}
}

func TestWriteSizeEnforced(t *testing.T) {
	d, _ := New(4, 16)
	if err := d.Write(0, make([]byte, 15)); !errors.Is(err, ErrBadSize) {
		t.Errorf("short write: %v", err)
	}
	if err := d.Write(0, make([]byte, 17)); !errors.Is(err, ErrBadSize) {
		t.Errorf("long write: %v", err)
	}
}

func TestZero(t *testing.T) {
	d, _ := New(4, 16)
	if err := d.Write(1, bytes.Repeat([]byte{0xFF}, 16)); err != nil {
		t.Fatal(err)
	}
	if err := d.Zero(1); err != nil {
		t.Fatal(err)
	}
	got, err := d.Read(1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, 16)) {
		t.Fatal("Zero left data behind")
	}
}

func TestReadIsolation(t *testing.T) {
	// Mutating a returned buffer must not corrupt the disk.
	d, _ := New(2, 8)
	if err := d.Write(0, []byte("12345678")); err != nil {
		t.Fatal(err)
	}
	buf, err := d.Read(0)
	if err != nil {
		t.Fatal(err)
	}
	copy(buf, "XXXXXXXX")
	again, err := d.Read(0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, []byte("12345678")) {
		t.Fatal("Read buffer aliased disk storage")
	}
}

func TestFaultInjection(t *testing.T) {
	d, _ := New(4, 16)
	boom := errors.New("head crash")
	d.SetFault(func(op string, block uint32) error {
		if op == "read" && block == 2 {
			return boom
		}
		return nil
	})
	if _, err := d.Read(2); !errors.Is(err, boom) {
		t.Errorf("fault not injected: %v", err)
	}
	if _, err := d.Read(1); err != nil {
		t.Errorf("unfaulted block errored: %v", err)
	}
	d.SetFault(nil)
	if _, err := d.Read(2); err != nil {
		t.Errorf("fault survived removal: %v", err)
	}
}

func TestStats(t *testing.T) {
	d, _ := New(4, 16)
	_ = d.Write(0, make([]byte, 16))
	_, _ = d.Read(0)
	_, _ = d.Read(0)
	_ = d.Zero(1)
	s := d.Stats()
	if s.Reads != 2 || s.Writes != 2 {
		t.Fatalf("stats %+v", s)
	}
}

func TestConcurrentAccess(t *testing.T) {
	d, _ := New(64, 32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			blk := bytes.Repeat([]byte{byte(g)}, 32)
			for i := 0; i < 50; i++ {
				n := uint32((g*50 + i) % 64)
				if err := d.Write(n, blk); err != nil {
					t.Errorf("write: %v", err)
					return
				}
				if _, err := d.Read(n); err != nil {
					t.Errorf("read: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestAccessors(t *testing.T) {
	d, _ := New(7, 128)
	if d.NBlocks() != 7 || d.BlockSize() != 128 {
		t.Fatalf("geometry %d×%d", d.NBlocks(), d.BlockSize())
	}
}
