package vdisk

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"sync"
)

// FileDisk is a Disk-shaped virtual disk backed by an ordinary file,
// so a block server survives daemon restarts. The file starts with a
// small superblock recording the geometry; block n lives at
// headerSize + n*blockSize. Writes go straight through (a 1986 disk
// had no volatile cache worth modelling); Sync is provided for
// explicit durability points.
type FileDisk struct {
	blockSize int
	nblocks   uint32

	mu    sync.Mutex
	f     *os.File
	fault FaultFunc
	stats Stats
}

// Store is the common interface of Disk and FileDisk; the block server
// and the write-ahead log accept either.
type Store interface {
	BlockSize() int
	NBlocks() uint32
	Read(n uint32) ([]byte, error)
	// ReadInto reads block n into dst (exactly one block): the
	// allocation-free path under batched reads.
	ReadInto(n uint32, dst []byte) error
	Write(n uint32, data []byte) error
	Zero(n uint32) error
	// Sync forces every completed write onto stable storage before
	// returning — the durability point the write-ahead log builds its
	// group commit on. A no-op on the memory disk.
	Sync() error
	Stats() Stats
}

var (
	_ Store = (*Disk)(nil)
	_ Store = (*FileDisk)(nil)
)

const (
	fileMagic  = 0xA0EBAD15C0000001
	headerSize = 16 // magic(8) nblocks(4) blockSize(4)
)

// ErrGeometryMismatch is returned when opening an existing disk file
// whose recorded geometry differs from the requested one.
var ErrGeometryMismatch = errors.New("vdisk: existing file has different geometry")

// OpenFile opens (creating if absent) a file-backed disk at path with
// the given geometry. Reopening an existing file checks the recorded
// geometry and preserves all block contents.
func OpenFile(path string, nblocks uint32, blockSize int) (*FileDisk, error) {
	if nblocks == 0 || blockSize <= 0 {
		return nil, fmt.Errorf("vdisk: bad geometry %d×%d", nblocks, blockSize)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o600)
	if err != nil {
		return nil, fmt.Errorf("vdisk: open %s: %w", path, err)
	}
	d := &FileDisk{blockSize: blockSize, nblocks: nblocks, f: f}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("vdisk: stat %s: %w", path, err)
	}
	if info.Size() == 0 {
		if err := d.format(); err != nil {
			f.Close()
			return nil, err
		}
		return d, nil
	}
	if err := d.checkHeader(); err != nil {
		f.Close()
		return nil, err
	}
	return d, nil
}

func (d *FileDisk) format() error {
	var hdr [headerSize]byte
	binary.BigEndian.PutUint64(hdr[0:], fileMagic)
	binary.BigEndian.PutUint32(hdr[8:], d.nblocks)
	binary.BigEndian.PutUint32(hdr[12:], uint32(d.blockSize))
	if _, err := d.f.WriteAt(hdr[:], 0); err != nil {
		return fmt.Errorf("vdisk: writing superblock: %w", err)
	}
	// Extend to full size so later reads of untouched blocks see zeros.
	end := int64(headerSize) + int64(d.nblocks)*int64(d.blockSize)
	if err := d.f.Truncate(end); err != nil {
		return fmt.Errorf("vdisk: sizing disk file: %w", err)
	}
	return nil
}

func (d *FileDisk) checkHeader() error {
	var hdr [headerSize]byte
	if _, err := d.f.ReadAt(hdr[:], 0); err != nil {
		return fmt.Errorf("vdisk: reading superblock: %w", err)
	}
	if binary.BigEndian.Uint64(hdr[0:]) != fileMagic {
		return errors.New("vdisk: not a disk file (bad magic)")
	}
	gotBlocks := binary.BigEndian.Uint32(hdr[8:])
	gotSize := int(binary.BigEndian.Uint32(hdr[12:]))
	if gotBlocks != d.nblocks || gotSize != d.blockSize {
		return fmt.Errorf("%w: file has %d×%d, want %d×%d",
			ErrGeometryMismatch, gotBlocks, gotSize, d.nblocks, d.blockSize)
	}
	return nil
}

// BlockSize implements Store.
func (d *FileDisk) BlockSize() int { return d.blockSize }

// NBlocks implements Store.
func (d *FileDisk) NBlocks() uint32 { return d.nblocks }

// SetFault installs (or clears) the fault-injection hook.
func (d *FileDisk) SetFault(f FaultFunc) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.fault = f
}

func (d *FileDisk) offset(n uint32) int64 {
	return int64(headerSize) + int64(n)*int64(d.blockSize)
}

// Read implements Store.
func (d *FileDisk) Read(n uint32) ([]byte, error) {
	buf := make([]byte, d.blockSize)
	if err := d.ReadInto(n, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// ReadInto implements Store: the file read lands directly in dst.
func (d *FileDisk) ReadInto(n uint32, dst []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if n >= d.nblocks {
		return fmt.Errorf("%w: %d of %d", ErrOutOfRange, n, d.nblocks)
	}
	if len(dst) != d.blockSize {
		return fmt.Errorf("%w: got %d bytes, block is %d", ErrBadSize, len(dst), d.blockSize)
	}
	if d.fault != nil {
		if err := d.fault("read", n); err != nil {
			return err
		}
	}
	if _, err := d.f.ReadAt(dst, d.offset(n)); err != nil {
		return fmt.Errorf("vdisk: reading block %d: %w", n, err)
	}
	d.stats.Reads++
	return nil
}

// Write implements Store.
func (d *FileDisk) Write(n uint32, data []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if n >= d.nblocks {
		return fmt.Errorf("%w: %d of %d", ErrOutOfRange, n, d.nblocks)
	}
	if len(data) != d.blockSize {
		return fmt.Errorf("%w: got %d bytes, block is %d", ErrBadSize, len(data), d.blockSize)
	}
	if d.fault != nil {
		if err := d.fault("write", n); err != nil {
			return err
		}
	}
	if _, err := d.f.WriteAt(data, d.offset(n)); err != nil {
		return fmt.Errorf("vdisk: writing block %d: %w", n, err)
	}
	d.stats.Writes++
	return nil
}

// Zero implements Store.
func (d *FileDisk) Zero(n uint32) error {
	return d.Write(n, make([]byte, d.blockSize))
}

// Stats implements Store.
func (d *FileDisk) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// Sync implements Store: an fsync of the backing file.
func (d *FileDisk) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats.Syncs++
	return d.f.Sync()
}

// Close syncs and closes the backing file.
func (d *FileDisk) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.f.Sync(); err != nil {
		d.f.Close()
		return err
	}
	return d.f.Close()
}

// openRW opens an existing file read-write (test helper kept here to
// avoid exporting os details from the tests).
func openRW(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_RDWR, 0o600)
}
