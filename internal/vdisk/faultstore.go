package vdisk

import (
	"errors"
	"sync"
	"time"
)

// Injected fault errors. They are distinct from the organic vdisk
// errors so tests can assert an observed failure is the one they
// planted, and so upper layers (the WAL wedge path) can report what
// actually killed the disk.
var (
	// ErrInjectedIO models a drive returning EIO: the operation did not
	// happen (or, for a torn write, only partially happened).
	ErrInjectedIO = errors.New("vdisk: injected I/O error")
	// ErrNoSpace models ENOSPC: writes fail, reads still work.
	ErrNoSpace = errors.New("vdisk: injected ENOSPC (no space left on device)")
)

// FaultStats counts the faults a FaultStore actually delivered.
type FaultStats struct {
	WriteErrs   uint64 // writes/zeros/syncs failed with ErrInjectedIO or ErrNoSpace
	TornWrites  uint64
	RottenReads uint64 // reads returned with a flipped bit
}

// FaultStore wraps any Store with deterministic, seedable fault
// injection: the gray-failure half of the chaos harness. The network
// side (SimNet) can lose and reorder frames; this side can make the
// disk under a WAL return EIO after N more writes, report ENOSPC,
// tear a write in half, rot bits on the way back out, or just get
// slow. All faults are armed at runtime, so a chaos test can kill a
// specific machine's disk mid-soak.
//
// Determinism: the only randomized fault is bit rot, driven by a
// splitmix64 stream from the seed — same seed, same operation
// sequence, same flipped bits.
type FaultStore struct {
	inner Store

	mu         sync.Mutex
	rng        uint64 // splitmix64 state, seeded
	writesLeft int64  // writes until EIO; -1 = healthy
	enospc     bool
	tornNext   bool
	rotRate    float64 // per-read probability of one flipped bit
	slow       time.Duration
	stats      FaultStats
}

var _ Store = (*FaultStore)(nil)

// NewFaultStore wraps inner. With no faults armed it is a transparent
// pass-through.
func NewFaultStore(inner Store, seed uint64) *FaultStore {
	return &FaultStore{inner: inner, rng: seed ^ 0x9E37_79B9_7F4A_7C15, writesLeft: -1}
}

// FailWritesAfter arms the EIO fault: the next n writes (including
// zeros and syncs reached after them) succeed, every write after that
// fails with ErrInjectedIO. n = 0 kills the disk's write path
// immediately — the canonical "WAL disk died mid-soak" fault.
func (d *FaultStore) FailWritesAfter(n int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.writesLeft = int64(n)
}

// SetENOSPC arms (or clears) the full-disk fault: writes fail with
// ErrNoSpace, reads are untouched.
func (d *FaultStore) SetENOSPC(on bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.enospc = on
}

// TearNextWrite arms a torn write: the next Write persists only the
// first half of the block, then reports ErrInjectedIO — the bytes a
// power cut leaves behind mid-sector. One-shot.
func (d *FaultStore) TearNextWrite() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.tornNext = true
}

// SetBitRot arms silent read corruption: each ReadInto flips one
// random bit of the returned buffer with probability rate. The store
// itself is not modified — rereads may see clean data, like a marginal
// head. rate 0 clears the fault.
func (d *FaultStore) SetBitRot(rate float64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.rotRate = rate
}

// SetSlow adds latency to every operation: the disk that is not dead,
// just dying. d = 0 clears it.
func (d *FaultStore) SetSlow(delay time.Duration) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.slow = delay
}

// Heal clears every armed fault.
func (d *FaultStore) Heal() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.writesLeft = -1
	d.enospc = false
	d.tornNext = false
	d.rotRate = 0
	d.slow = 0
}

// FaultStats returns how many faults have been delivered.
func (d *FaultStore) FaultStats() FaultStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// next is a splitmix64 step; callers hold d.mu.
func (d *FaultStore) next() uint64 {
	d.rng += 0x9E37_79B9_7F4A_7C15
	z := d.rng
	z = (z ^ (z >> 30)) * 0xBF58_476D_1CE4_E5B9
	z = (z ^ (z >> 27)) * 0x94D0_49BB_1331_11EB
	return z ^ (z >> 31)
}

// chance reports true with probability p; callers hold d.mu.
func (d *FaultStore) chance(p float64) bool {
	if p <= 0 {
		return false
	}
	return float64(d.next()>>11)/(1<<53) < p
}

// writeFault decides the fate of one write-path operation and charges
// the stats; callers hold d.mu. torn reports whether the write should
// half-land before failing.
func (d *FaultStore) writeFault() (err error, torn bool) {
	if d.tornNext {
		d.tornNext = false
		d.stats.TornWrites++
		d.stats.WriteErrs++
		return ErrInjectedIO, true
	}
	if d.enospc {
		d.stats.WriteErrs++
		return ErrNoSpace, false
	}
	if d.writesLeft == 0 {
		d.stats.WriteErrs++
		return ErrInjectedIO, false
	}
	if d.writesLeft > 0 {
		d.writesLeft--
	}
	return nil, false
}

// BlockSize implements Store.
func (d *FaultStore) BlockSize() int { return d.inner.BlockSize() }

// NBlocks implements Store.
func (d *FaultStore) NBlocks() uint32 { return d.inner.NBlocks() }

// Read implements Store.
func (d *FaultStore) Read(n uint32) ([]byte, error) {
	buf := make([]byte, d.inner.BlockSize())
	if err := d.ReadInto(n, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// ReadInto implements Store. Bit rot corrupts the returned copy, not
// the store, after the real read succeeds.
func (d *FaultStore) ReadInto(n uint32, dst []byte) error {
	d.mu.Lock()
	slow := d.slow
	rot := d.rotRate > 0 && d.chance(d.rotRate)
	var bit uint64
	if rot {
		bit = d.next()
		d.stats.RottenReads++
	}
	d.mu.Unlock()
	if slow > 0 {
		time.Sleep(slow)
	}
	if err := d.inner.ReadInto(n, dst); err != nil {
		return err
	}
	if rot && len(dst) > 0 {
		i := int(bit/8) % len(dst)
		dst[i] ^= 1 << (bit % 8)
	}
	return nil
}

// Write implements Store. A torn write persists only the first half of
// the block before reporting failure.
func (d *FaultStore) Write(n uint32, data []byte) error {
	d.mu.Lock()
	slow := d.slow
	err, torn := d.writeFault()
	d.mu.Unlock()
	if slow > 0 {
		time.Sleep(slow)
	}
	if err != nil {
		if torn && len(data) >= 2 {
			half := append(make([]byte, 0, len(data)), data[:len(data)/2]...)
			half = append(half, make([]byte, len(data)-len(data)/2)...)
			d.inner.Write(n, half) // best effort: the tear is the point
		}
		return err
	}
	return d.inner.Write(n, data)
}

// Zero implements Store: a write, for fault accounting.
func (d *FaultStore) Zero(n uint32) error {
	d.mu.Lock()
	slow := d.slow
	err, _ := d.writeFault()
	d.mu.Unlock()
	if slow > 0 {
		time.Sleep(slow)
	}
	if err != nil {
		return err
	}
	return d.inner.Zero(n)
}

// Sync implements Store. A disk that cannot write cannot promise
// durability either: the EIO fault (but not ENOSPC — the data already
// written is safe) fails syncs too.
func (d *FaultStore) Sync() error {
	d.mu.Lock()
	slow := d.slow
	var err error
	if d.writesLeft == 0 {
		d.stats.WriteErrs++
		err = ErrInjectedIO
	}
	d.mu.Unlock()
	if slow > 0 {
		time.Sleep(slow)
	}
	if err != nil {
		return err
	}
	return d.inner.Sync()
}

// Stats implements Store, delegating to the wrapped store.
func (d *FaultStore) Stats() Stats { return d.inner.Stats() }
