package vdisk

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"
)

func testPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "disk.img")
}

func TestFileDiskReadWrite(t *testing.T) {
	d, err := OpenFile(testPath(t), 8, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	blk := bytes.Repeat([]byte{0xCD}, 64)
	if err := d.Write(3, blk); err != nil {
		t.Fatal(err)
	}
	got, err := d.Read(3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, blk) {
		t.Fatal("round trip failed")
	}
	// Untouched blocks read as zeros.
	zero, err := d.Read(7)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(zero, make([]byte, 64)) {
		t.Fatal("fresh block not zeroed")
	}
}

func TestFileDiskPersistsAcrossReopen(t *testing.T) {
	path := testPath(t)
	d, err := OpenFile(path, 8, 64)
	if err != nil {
		t.Fatal(err)
	}
	blk := bytes.Repeat([]byte{0x42}, 64)
	if err := d.Write(5, blk); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := OpenFile(path, 8, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	got, err := d2.Read(5)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, blk) {
		t.Fatal("contents lost across reopen")
	}
}

func TestFileDiskGeometryMismatch(t *testing.T) {
	path := testPath(t)
	d, err := OpenFile(path, 8, 64)
	if err != nil {
		t.Fatal(err)
	}
	d.Close()
	if _, err := OpenFile(path, 16, 64); !errors.Is(err, ErrGeometryMismatch) {
		t.Fatalf("nblocks mismatch: %v", err)
	}
	if _, err := OpenFile(path, 8, 128); !errors.Is(err, ErrGeometryMismatch) {
		t.Fatalf("block size mismatch: %v", err)
	}
}

func TestFileDiskRejectsGarbageFile(t *testing.T) {
	path := testPath(t)
	d, err := OpenFile(path, 4, 32)
	if err != nil {
		t.Fatal(err)
	}
	d.Close()
	// Corrupt the magic.
	raw := []byte("this is not a disk file at all!!")
	if err := writeFilePrefix(path, raw); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(path, 4, 32); err == nil {
		t.Fatal("garbage file accepted")
	}
}

func TestFileDiskBounds(t *testing.T) {
	d, err := OpenFile(testPath(t), 4, 32)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if _, err := d.Read(4); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("Read: %v", err)
	}
	if err := d.Write(0, make([]byte, 31)); !errors.Is(err, ErrBadSize) {
		t.Errorf("short Write: %v", err)
	}
}

func TestFileDiskZeroAndStats(t *testing.T) {
	d, err := OpenFile(testPath(t), 4, 32)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.Write(1, bytes.Repeat([]byte{0xFF}, 32)); err != nil {
		t.Fatal(err)
	}
	if err := d.Zero(1); err != nil {
		t.Fatal(err)
	}
	got, err := d.Read(1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, 32)) {
		t.Fatal("Zero left data")
	}
	s := d.Stats()
	if s.Writes != 2 || s.Reads != 1 {
		t.Fatalf("stats %+v", s)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestFileDiskFaultInjection(t *testing.T) {
	d, err := OpenFile(testPath(t), 4, 32)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	boom := errors.New("bad sector")
	d.SetFault(func(op string, block uint32) error {
		if block == 2 {
			return boom
		}
		return nil
	})
	if _, err := d.Read(2); !errors.Is(err, boom) {
		t.Errorf("read fault: %v", err)
	}
	if err := d.Write(2, make([]byte, 32)); !errors.Is(err, boom) {
		t.Errorf("write fault: %v", err)
	}
}

// writeFilePrefix overwrites the start of a file in place.
func writeFilePrefix(path string, data []byte) error {
	f, err := openRW(path)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.WriteAt(data, 0)
	return err
}
