package crypto

import (
	"bytes"
	"crypto/sha256"
	"testing"
)

// testKeyBits keeps RSA tests fast; the math is size-independent.
const testKeyBits = 512

func testKey(t *testing.T) *RSAPrivateKey {
	t.Helper()
	key, err := GenerateRSA(testKeyBits, nil)
	if err != nil {
		t.Fatalf("GenerateRSA: %v", err)
	}
	return key
}

func TestRSAEncryptDecrypt(t *testing.T) {
	key := testKey(t)
	for _, msg := range [][]byte{
		[]byte("k"),
		[]byte("a fresh conventional key K"),
		{0, 0, 0, 1},
		{},
	} {
		ct, err := key.RSAPublicKey.Encrypt(nil, msg)
		if err != nil {
			t.Fatalf("Encrypt(%q): %v", msg, err)
		}
		pt, err := key.Decrypt(ct)
		if err != nil {
			t.Fatalf("Decrypt(%q): %v", msg, err)
		}
		if !bytes.Equal(pt, msg) {
			t.Fatalf("round trip: got %q want %q", pt, msg)
		}
	}
}

func TestRSAEncryptionIsRandomized(t *testing.T) {
	key := testKey(t)
	msg := []byte("same plaintext")
	a, err := key.RSAPublicKey.Encrypt(nil, msg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := key.RSAPublicKey.Encrypt(nil, msg)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, b) {
		t.Fatal("two encryptions of the same plaintext were identical")
	}
}

func TestRSAMessageTooLong(t *testing.T) {
	key := testKey(t)
	long := make([]byte, testKeyBits/8)
	if _, err := key.RSAPublicKey.Encrypt(nil, long); err != ErrMessageTooLong {
		t.Fatalf("want ErrMessageTooLong, got %v", err)
	}
}

func TestRSASignVerify(t *testing.T) {
	key := testKey(t)
	digest := sha256.Sum256([]byte("the reply containing K and the reverse key"))
	sig, err := key.Sign(digest[:])
	if err != nil {
		t.Fatal(err)
	}
	if !key.RSAPublicKey.Verify(digest[:], sig) {
		t.Fatal("valid signature rejected")
	}
	other := sha256.Sum256([]byte("different message"))
	if key.RSAPublicKey.Verify(other[:], sig) {
		t.Fatal("signature verified against wrong digest")
	}
	sig[3] ^= 1
	if key.RSAPublicKey.Verify(digest[:], sig) {
		t.Fatal("tampered signature verified")
	}
}

func TestRSAVerifyWrongKey(t *testing.T) {
	a, b := testKey(t), testKey(t)
	digest := sha256.Sum256([]byte("msg"))
	sig, err := a.Sign(digest[:])
	if err != nil {
		t.Fatal(err)
	}
	if b.RSAPublicKey.Verify(digest[:], sig) {
		t.Fatal("signature verified under an unrelated key")
	}
}

func TestRSADecryptGarbage(t *testing.T) {
	key := testKey(t)
	if _, err := key.Decrypt(make([]byte, testKeyBits/8)); err == nil {
		t.Fatal("decrypting all-zeros succeeded")
	}
	huge := bytes.Repeat([]byte{0xff}, testKeyBits/8)
	if _, err := key.Decrypt(huge); err == nil {
		t.Fatal("ciphertext ≥ modulus accepted")
	}
}

func TestRSAMinimumKeySize(t *testing.T) {
	if _, err := GenerateRSA(64, nil); err == nil {
		t.Fatal("GenerateRSA accepted a 64-bit modulus")
	}
}

func TestRSAPublicKeyEqual(t *testing.T) {
	a, b := testKey(t), testKey(t)
	if !a.RSAPublicKey.Equal(&a.RSAPublicKey) {
		t.Error("key not equal to itself")
	}
	if a.RSAPublicKey.Equal(&b.RSAPublicKey) {
		t.Error("distinct keys compared equal")
	}
	if a.RSAPublicKey.Equal(nil) {
		t.Error("Equal(nil) = true")
	}
}
