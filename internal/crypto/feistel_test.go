package crypto

import (
	"bytes"
	"math/bits"
	"testing"
	"testing/quick"
)

func TestFeistelRoundTrip(t *testing.T) {
	f := NewFeistelUint64(0x1234567890ab)
	prop := func(block uint64) bool { return f.Decrypt(f.Encrypt(block)) == block }
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFeistelKeysDiffer(t *testing.T) {
	a := NewFeistelUint64(1)
	b := NewFeistelUint64(2)
	same := 0
	for x := uint64(0); x < 256; x++ {
		if a.Encrypt(x) == b.Encrypt(x) {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different keys agreed on %d/256 blocks", same)
	}
}

func TestFeistelAvalanche(t *testing.T) {
	// Flipping one plaintext bit should flip roughly half the
	// ciphertext bits — the paper's "mixes the bits thoroughly".
	f := NewFeistelUint64(0xfeedface)
	totalFlips := 0
	const trials = 256
	for i := 0; i < trials; i++ {
		x := uint64(i) * 0x9e3779b97f4a7c15
		c0 := f.Encrypt(x)
		c1 := f.Encrypt(x ^ 1<<(i%64))
		totalFlips += bits.OnesCount64(c0 ^ c1)
	}
	avg := float64(totalFlips) / trials
	if avg < 24 || avg > 40 {
		t.Fatalf("avalanche average %.1f bits flipped of 64; want ≈32", avg)
	}
}

func TestFeistelVariableLengthKeys(t *testing.T) {
	a := NewFeistel([]byte("short"))
	b := NewFeistel([]byte("a considerably longer key with more than thirty-two bytes in it"))
	if a.Encrypt(42) == b.Encrypt(42) {
		t.Fatal("distinct string keys produced equal ciphertext")
	}
	if got := a.Decrypt(a.Encrypt(42)); got != 42 {
		t.Fatalf("round trip failed: %d", got)
	}
}

func TestXORCipherRoundTrip(t *testing.T) {
	c := XORCipher{Pad: 0xabcdef}
	prop := func(block uint64) bool { return c.Decrypt(c.Encrypt(block)) == block }
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestXORCipherIsMalleable(t *testing.T) {
	// The property the paper warns about: bit flips in ciphertext
	// translate to the same bit flips in plaintext.
	c := XORCipher{Pad: 0x1122334455667788}
	pt := uint64(0x00ff00ff00ff00ff)
	ct := c.Encrypt(pt)
	tampered := c.Decrypt(ct ^ (1 << 50))
	if tampered != pt^(1<<50) {
		t.Fatal("XOR cipher unexpectedly non-malleable")
	}
}

func TestFeistelIsNotMalleable(t *testing.T) {
	// Contrast with XOR: a ciphertext bit flip scrambles the plaintext.
	f := NewFeistelUint64(0x1122334455667788)
	pt := uint64(0x00ff00ff00ff00ff)
	ct := f.Encrypt(pt)
	tampered := f.Decrypt(ct ^ (1 << 50))
	if tampered == pt^(1<<50) || tampered == pt {
		t.Fatal("Feistel behaved malleably under a ciphertext bit flip")
	}
	if n := bits.OnesCount64(tampered ^ pt); n < 16 {
		t.Fatalf("ciphertext bit flip changed only %d plaintext bits", n)
	}
}

func TestEncryptDecryptBytes(t *testing.T) {
	f := NewFeistelUint64(99)
	msg := []byte("sixteen by bytes") // 16 bytes, two blocks
	buf := append([]byte(nil), msg...)
	if err := EncryptBytes(f, buf); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(buf, msg) {
		t.Fatal("encryption left buffer unchanged")
	}
	if err := DecryptBytes(f, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, msg) {
		t.Fatalf("round trip mismatch: %q", buf)
	}
}

func TestEncryptBytesAlignment(t *testing.T) {
	f := NewFeistelUint64(1)
	if err := EncryptBytes(f, make([]byte, 7)); err == nil {
		t.Error("EncryptBytes accepted a 7-byte buffer")
	}
	if err := DecryptBytes(f, make([]byte, 9)); err == nil {
		t.Error("DecryptBytes accepted a 9-byte buffer")
	}
	if err := EncryptBytes(f, nil); err != nil {
		t.Errorf("EncryptBytes(nil) = %v, want nil (zero blocks)", err)
	}
}

func TestCipherFactories(t *testing.T) {
	if FeistelFactory(5).Name() != "feistel16-sha256" {
		t.Error("FeistelFactory wrong cipher")
	}
	if XORFactory(5).Name() != "xor (insecure)" {
		t.Error("XORFactory wrong cipher")
	}
	if XORFactory(7).Encrypt(0) != 7 {
		t.Error("XORFactory did not key the pad")
	}
}

func TestFeistelBlockSizes(t *testing.T) {
	for _, bitsN := range []int{16, 24, 48, 56, 64} {
		f, err := NewFeistelBlock([]byte("key"), bitsN)
		if err != nil {
			t.Fatalf("block %d: %v", bitsN, err)
		}
		if f.BlockBits() != bitsN {
			t.Fatalf("BlockBits = %d, want %d", f.BlockBits(), bitsN)
		}
		mask := uint64(1)<<uint(bitsN) - 1
		if bitsN == 64 {
			mask = ^uint64(0)
		}
		for x := uint64(0); x < 1000; x++ {
			v := x * 0x9e3779b97f4a7c15 & mask
			ct := f.Encrypt(v)
			if ct&^mask != 0 {
				t.Fatalf("block %d: ciphertext %#x exceeds block", bitsN, ct)
			}
			if got := f.Decrypt(ct); got != v {
				t.Fatalf("block %d: round trip %#x -> %#x", bitsN, v, got)
			}
		}
	}
}

func TestFeistelBlockSizeValidation(t *testing.T) {
	for _, bad := range []int{0, 8, 15, 17, 66, -2} {
		if _, err := NewFeistelBlock([]byte("k"), bad); err == nil {
			t.Errorf("NewFeistelBlock accepted block size %d", bad)
		}
	}
}

func TestFeistelBlockSizesIndependent(t *testing.T) {
	// Same key, different block sizes must not produce related outputs.
	f56, err := NewFeistelBlock([]byte("k"), 56)
	if err != nil {
		t.Fatal(err)
	}
	f64 := NewFeistel([]byte("k"))
	if f56.Encrypt(12345) == f64.Encrypt(12345)&(1<<56-1) {
		t.Fatal("block sizes share keystream structure")
	}
}

func TestFeistelHighInputBitsIgnored(t *testing.T) {
	f, err := NewFeistelBlock([]byte("k"), 56)
	if err != nil {
		t.Fatal(err)
	}
	if f.Encrypt(5) != f.Encrypt(5|1<<60) {
		t.Fatal("bits above block size affected ciphertext")
	}
}
