package crypto

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"sync"
)

// Source yields the sparse random values the whole design lives on:
// secret get-ports, object check numbers, signatures, conventional
// keys. The default source is crypto/rand; tests and experiments use
// the deterministic source for reproducibility.
type Source interface {
	// Uint64 returns a uniformly random 64-bit value.
	Uint64() uint64
}

// Rand48 draws a 48-bit sparse value from s.
func Rand48(s Source) uint64 { return s.Uint64() & Mask48 }

// systemSource reads from crypto/rand.
type systemSource struct{}

// SystemSource returns the cryptographically secure default source.
func SystemSource() Source { return systemSource{} }

func (systemSource) Uint64() uint64 {
	var buf [8]byte
	if _, err := rand.Read(buf[:]); err != nil {
		// crypto/rand never fails on the supported platforms; if the
		// kernel CSPRNG is broken there is no meaningful recovery.
		panic(fmt.Sprintf("crypto: system randomness unavailable: %v", err))
	}
	return binary.BigEndian.Uint64(buf[:])
}

// SeededSource is a deterministic Source for tests and experiments
// (SplitMix64). It is safe for concurrent use.
type SeededSource struct {
	mu    sync.Mutex
	state uint64
}

var _ Source = (*SeededSource)(nil)

// NewSeededSource returns a deterministic source seeded with seed.
func NewSeededSource(seed uint64) *SeededSource {
	return &SeededSource{state: seed}
}

// Uint64 implements Source using the SplitMix64 generator.
func (s *SeededSource) Uint64() uint64 {
	s.mu.Lock()
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	s.mu.Unlock()
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
