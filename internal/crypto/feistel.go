package crypto

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sync"
)

// BlockCipher64 is a keyed permutation of 64-bit blocks. Scheme 1
// encrypts the concatenated RIGHTS (8 bits) and known-constant (48
// bits) fields — 56 bits, carried in a 64-bit block — under a
// per-object key; the §2.4 key matrix encrypts whole capabilities block
// by block under per-(source, destination) keys. The paper used DES;
// any 64-bit block cipher that "mixes the bits thoroughly" serves.
type BlockCipher64 interface {
	Encrypt(block uint64) uint64
	Decrypt(block uint64) uint64
	Name() string
}

// Feistel is a 16-round balanced Feistel cipher with a SHA-256-based
// round function, on blocks of 2k bits for any k in [8, 32] (so block
// sizes 16..64 bits, even). It is the library's stand-in for DES:
// structurally faithful (16-round Feistel), thoroughly mixing, and a
// permutation by construction for any round function. Rights-protection
// scheme 1 uses a 56-bit block (8 rights bits ∥ 48-bit constant); the
// §2.4 key matrix uses 64-bit blocks.
type Feistel struct {
	subkeys   [feistelRounds][32]byte
	halfBits  uint   // k: bits per half
	halfMask  uint32 // (1<<k)-1
	blockBits int
}

const feistelRounds = 16

var _ BlockCipher64 = (*Feistel)(nil)

// NewFeistel derives 16 round subkeys from an arbitrary-length key and
// returns a 64-bit-block cipher.
func NewFeistel(key []byte) *Feistel {
	f, err := NewFeistelBlock(key, 64)
	if err != nil {
		panic("crypto: NewFeistel: " + err.Error()) // 64 always valid
	}
	return f
}

// NewFeistelBlock is NewFeistel with an explicit block size in bits.
// blockBits must be even and in [16, 64].
func NewFeistelBlock(key []byte, blockBits int) (*Feistel, error) {
	f := new(Feistel)
	if err := f.rekey(key, blockBits); err != nil {
		return nil, err
	}
	return f, nil
}

// rekey re-derives the cipher in place — the scratch-reuse primitive
// under the pooled acquire path: no allocation, just the key schedule.
func (f *Feistel) rekey(key []byte, blockBits int) error {
	if blockBits < 16 || blockBits > 64 || blockBits%2 != 0 {
		return fmt.Errorf("crypto: Feistel block size must be even and in [16,64], got %d", blockBits)
	}
	f.halfBits = uint(blockBits / 2)
	f.blockBits = blockBits
	f.halfMask = uint32((uint64(1) << f.halfBits) - 1)
	h := sha256.Sum256(key)
	for r := 0; r < feistelRounds; r++ {
		var buf [34]byte
		copy(buf[:32], h[:])
		buf[32] = byte(r)
		buf[33] = byte(blockBits) // bind subkeys to the block size
		f.subkeys[r] = sha256.Sum256(buf[:])
	}
	return nil
}

// feistelPool recycles Feistel scratch instances for callers that key
// a cipher per operation — capability scheme 1 derives one per mint or
// validate, which used to cost a 576-byte allocation every time.
var feistelPool = sync.Pool{New: func() any { return new(Feistel) }}

// AcquireFeistel returns a pooled Feistel cipher rekeyed for a 64-bit
// key and the given block size. Pair with ReleaseFeistel; the caller
// must not use the cipher after releasing it.
func AcquireFeistel(key uint64, blockBits int) (*Feistel, error) {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], key)
	f := feistelPool.Get().(*Feistel)
	if err := f.rekey(buf[:], blockBits); err != nil {
		feistelPool.Put(f)
		return nil, err
	}
	return f, nil
}

// ReleaseFeistel returns a pooled cipher for reuse. The subkeys are
// left in place (they are re-derived at the next acquire).
func ReleaseFeistel(f *Feistel) { feistelPool.Put(f) }

// NewFeistelUint64 is a convenience for fixed-width keys (per-object
// random numbers are 48-bit values).
func NewFeistelUint64(key uint64) *Feistel {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], key)
	return NewFeistel(buf[:])
}

// NewFeistelUint64Block combines NewFeistelUint64 and NewFeistelBlock.
func NewFeistelUint64Block(key uint64, blockBits int) (*Feistel, error) {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], key)
	return NewFeistelBlock(buf[:], blockBits)
}

// BlockBits returns the cipher's block size in bits.
func (f *Feistel) BlockBits() int { return f.blockBits }

// round is the Feistel round function: the low k bits of
// SHA-256(subkey ∥ half).
func (f *Feistel) round(r int, half uint32) uint32 {
	var buf [36]byte
	copy(buf[:32], f.subkeys[r][:])
	binary.BigEndian.PutUint32(buf[32:], half)
	sum := sha256.Sum256(buf[:])
	return binary.BigEndian.Uint32(sum[:4]) & f.halfMask
}

// Encrypt implements BlockCipher64. Bits of the input above the block
// size are ignored; the output always fits in the block size.
func (f *Feistel) Encrypt(block uint64) uint64 {
	l := uint32(block>>f.halfBits) & f.halfMask
	r := uint32(block) & f.halfMask
	for i := 0; i < feistelRounds; i++ {
		l, r = r, l^f.round(i, r)
	}
	// Swap halves on output, the standard final-permutation trick that
	// makes decryption the same network with reversed subkeys.
	return uint64(r)<<f.halfBits | uint64(l)
}

// Decrypt implements BlockCipher64.
func (f *Feistel) Decrypt(block uint64) uint64 {
	l := uint32(block>>f.halfBits) & f.halfMask
	r := uint32(block) & f.halfMask
	for i := feistelRounds - 1; i >= 0; i-- {
		l, r = r, l^f.round(i, r)
	}
	return uint64(r)<<f.halfBits | uint64(l)
}

// Name implements BlockCipher64.
func (f *Feistel) Name() string { return "feistel16-sha256" }

// XORCipher is the deliberately broken cipher the paper warns about:
// "EXCLUSIVE-OR'ing a constant with the concatenated RIGHTS and RANDOM
// fields will not do." It is provided solely so experiment E2 can
// demonstrate the attack: flipping a rights bit in the ciphertext flips
// exactly that bit in the plaintext without disturbing the known
// constant, so tampering goes undetected.
type XORCipher struct {
	// Pad is the 64-bit XOR pad acting as the "key".
	Pad uint64
}

var _ BlockCipher64 = XORCipher{}

// Encrypt implements BlockCipher64.
func (c XORCipher) Encrypt(block uint64) uint64 { return block ^ c.Pad }

// Decrypt implements BlockCipher64.
func (c XORCipher) Decrypt(block uint64) uint64 { return block ^ c.Pad }

// Name implements BlockCipher64.
func (c XORCipher) Name() string { return "xor (insecure)" }

// CipherFactory constructs a BlockCipher64 from a 64-bit key. The
// capability schemes and the key matrix are parameterized by a factory
// so experiments can swap ciphers.
type CipherFactory func(key uint64) BlockCipher64

// FeistelFactory is the default CipherFactory.
func FeistelFactory(key uint64) BlockCipher64 { return NewFeistelUint64(key) }

// XORFactory builds the insecure XOR cipher; for experiment E2 only.
func XORFactory(key uint64) BlockCipher64 { return XORCipher{Pad: key} }

// EncryptBytes applies the cipher in ECB fashion over an 8-byte-aligned
// buffer. The §2.4 key matrix encrypts 16-byte capabilities as two
// blocks. ECB over two high-entropy blocks (each contains part of a
// 48-bit sparse value) matches the paper's "encrypt the capabilities in
// any message" without inventing modes the paper does not discuss.
func EncryptBytes(c BlockCipher64, buf []byte) error {
	if len(buf)%8 != 0 {
		return fmt.Errorf("crypto: EncryptBytes needs 8-byte-aligned buffer, got %d bytes", len(buf))
	}
	for i := 0; i < len(buf); i += 8 {
		binary.BigEndian.PutUint64(buf[i:], c.Encrypt(binary.BigEndian.Uint64(buf[i:])))
	}
	return nil
}

// DecryptBytes inverts EncryptBytes.
func DecryptBytes(c BlockCipher64, buf []byte) error {
	if len(buf)%8 != 0 {
		return fmt.Errorf("crypto: DecryptBytes needs 8-byte-aligned buffer, got %d bytes", len(buf))
	}
	for i := 0; i < len(buf); i += 8 {
		binary.BigEndian.PutUint64(buf[i:], c.Decrypt(binary.BigEndian.Uint64(buf[i:])))
	}
	return nil
}
