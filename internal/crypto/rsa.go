package crypto

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"
)

// The §2.4 bootstrap handshake needs exactly two public-key operations:
// encrypt-to-a-public-key (a client sends a fresh conventional key K to
// the file server under the server's public key) and
// sign-with-a-private-key (the server's reply is transformed "with the
// inverse of F's public key" so anyone can verify it came from the key
// owner). Textbook RSA over math/big provides both. Key sizes are a
// parameter; tests use small keys for speed, the daemon defaults to
// 2048 bits.

// RSAPublicKey is an RSA public key (N, E).
type RSAPublicKey struct {
	N *big.Int
	E *big.Int
}

// RSAPrivateKey is an RSA key pair.
type RSAPrivateKey struct {
	RSAPublicKey
	D *big.Int
}

// ErrMessageTooLong is returned when a plaintext does not fit under the
// modulus.
var ErrMessageTooLong = errors.New("crypto: RSA message too long for modulus")

// GenerateRSA produces an RSA key pair with a modulus of the given bit
// length (minimum 128 for this library; real deployments use ≥ 2048).
// Randomness is drawn from r, or crypto/rand if r is nil.
func GenerateRSA(bitsLen int, r io.Reader) (*RSAPrivateKey, error) {
	if bitsLen < 128 {
		return nil, fmt.Errorf("crypto: RSA modulus must be at least 128 bits, got %d", bitsLen)
	}
	if r == nil {
		r = rand.Reader
	}
	e := big.NewInt(65537)
	one := big.NewInt(1)
	for {
		p, err := rand.Prime(r, bitsLen/2)
		if err != nil {
			return nil, fmt.Errorf("crypto: generating RSA prime: %w", err)
		}
		q, err := rand.Prime(r, bitsLen-bitsLen/2)
		if err != nil {
			return nil, fmt.Errorf("crypto: generating RSA prime: %w", err)
		}
		if p.Cmp(q) == 0 {
			continue
		}
		n := new(big.Int).Mul(p, q)
		pm1 := new(big.Int).Sub(p, one)
		qm1 := new(big.Int).Sub(q, one)
		phi := new(big.Int).Mul(pm1, qm1)
		d := new(big.Int).ModInverse(e, phi)
		if d == nil {
			continue // e not invertible mod phi; re-draw primes
		}
		return &RSAPrivateKey{
			RSAPublicKey: RSAPublicKey{N: n, E: new(big.Int).Set(e)},
			D:            d,
		}, nil
	}
}

// Encrypt encrypts msg to the public key. msg must be shorter than the
// modulus; the library's callers encrypt short symmetric keys and
// nonces only. A random non-zero prefix byte is prepended so that equal
// plaintexts encrypt differently across calls (a minimal randomized
// padding in the spirit of the era; not OAEP).
func (pub *RSAPublicKey) Encrypt(r io.Reader, msg []byte) ([]byte, error) {
	if r == nil {
		r = rand.Reader
	}
	k := (pub.N.BitLen() + 7) / 8
	if len(msg) > k-2 {
		return nil, ErrMessageTooLong
	}
	// Pad: [random nonzero byte | zero bytes | 0x01 | msg].
	buf := make([]byte, k-1)
	for {
		if _, err := io.ReadFull(r, buf[:1]); err != nil {
			return nil, fmt.Errorf("crypto: RSA padding: %w", err)
		}
		if buf[0] != 0 {
			break
		}
	}
	buf[len(buf)-len(msg)-1] = 0x01
	copy(buf[len(buf)-len(msg):], msg)
	m := new(big.Int).SetBytes(buf)
	c := new(big.Int).Exp(m, pub.E, pub.N)
	return c.FillBytes(make([]byte, k)), nil
}

// Decrypt inverts Encrypt.
func (priv *RSAPrivateKey) Decrypt(ct []byte) ([]byte, error) {
	c := new(big.Int).SetBytes(ct)
	if c.Cmp(priv.N) >= 0 {
		return nil, errors.New("crypto: RSA ciphertext out of range")
	}
	m := new(big.Int).Exp(c, priv.D, priv.N)
	k := (priv.N.BitLen() + 7) / 8
	// A well-formed plaintext occupies at most k-1 bytes; decode into k
	// and demand a leading zero so garbage ciphertexts fail cleanly.
	full := m.FillBytes(make([]byte, k))
	if full[0] != 0 {
		return nil, errors.New("crypto: RSA decryption failed (bad padding)")
	}
	buf := full[1:]
	if buf[0] == 0 {
		return nil, errors.New("crypto: RSA decryption failed (bad padding)")
	}
	// Skip the random byte, then zeros, then the 0x01 separator.
	i := 1
	for i < len(buf) && buf[i] == 0 {
		i++
	}
	if i == len(buf) || buf[i] != 0x01 {
		return nil, errors.New("crypto: RSA decryption failed (bad padding)")
	}
	out := make([]byte, len(buf)-i-1)
	copy(out, buf[i+1:])
	return out, nil
}

// Sign produces a signature over digest: the RSA private operation on
// the digest (which must be shorter than the modulus). Callers hash
// first; the bootstrap protocol signs SHA-256 digests.
func (priv *RSAPrivateKey) Sign(digest []byte) ([]byte, error) {
	k := (priv.N.BitLen() + 7) / 8
	if len(digest) > k-1 {
		return nil, ErrMessageTooLong
	}
	m := new(big.Int).SetBytes(digest)
	s := new(big.Int).Exp(m, priv.D, priv.N)
	return s.FillBytes(make([]byte, k)), nil
}

// Verify checks a signature produced by Sign against the digest.
func (pub *RSAPublicKey) Verify(digest, sig []byte) bool {
	s := new(big.Int).SetBytes(sig)
	if s.Cmp(pub.N) >= 0 {
		return false
	}
	m := new(big.Int).Exp(s, pub.E, pub.N)
	return m.Cmp(new(big.Int).SetBytes(digest)) == 0
}

// Equal reports whether two public keys are the same key.
func (pub *RSAPublicKey) Equal(other *RSAPublicKey) bool {
	return pub != nil && other != nil && pub.N.Cmp(other.N) == 0 && pub.E.Cmp(other.E) == 0
}
