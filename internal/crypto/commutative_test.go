package crypto

import (
	"testing"
	"testing/quick"
)

func TestCommutativePairwise(t *testing.T) {
	c := DefaultCommutative()
	x := c.SampleDomain(0xdeadbeef)
	for i := 0; i < c.Size(); i++ {
		for j := 0; j < c.Size(); j++ {
			ij := c.Apply(i, c.Apply(j, x))
			ji := c.Apply(j, c.Apply(i, x))
			if ij != ji {
				t.Fatalf("F%d∘F%d ≠ F%d∘F%d at x=%d: %d vs %d", i, j, j, i, x, ij, ji)
			}
		}
	}
}

func TestCommutativeAnyOrderProperty(t *testing.T) {
	// The core scheme-3 invariant: applying any subset of the family in
	// any order gives the same result as ApplySet with that subset.
	c := DefaultCommutative()
	prop := func(seed uint64, mask uint8, perm uint8) bool {
		x := c.SampleDomain(seed)
		want := c.ApplySet(uint64(mask), x)
		// Apply the same set bits in a rotated order.
		got := x
		order := make([]int, 0, 8)
		for k := 0; k < 8; k++ {
			if mask&(1<<k) != 0 {
				order = append(order, k)
			}
		}
		rot := 0
		if len(order) > 0 {
			rot = int(perm) % len(order)
		}
		for i := range order {
			got = c.Apply(order[(i+rot)%len(order)], got)
		}
		return got == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCommutativeApplySetEmptyMask(t *testing.T) {
	c := DefaultCommutative()
	x := c.SampleDomain(42)
	if got := c.ApplySet(0, x); got != x {
		t.Fatalf("ApplySet(0, x) = %d, want x = %d", got, x)
	}
}

func TestCommutativeOutputsStayInDomain(t *testing.T) {
	c := DefaultCommutative()
	prop := func(seed uint64, k uint8) bool {
		x := c.SampleDomain(seed)
		y := c.Apply(int(k)%c.Size(), x)
		return y < c.Modulus() && y&^Mask48 == 0
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCommutativeIsPermutationOnUnits(t *testing.T) {
	// With gcd(e_k, λ(n)) = 1 each F_k permutes the units; check the
	// default exponents are coprime to λ(n) and spot-check injectivity.
	lam := Lambda24()
	c := DefaultCommutative()
	for k := 0; k < c.Size(); k++ {
		if gcd(c.Exponent(k), lam) != 1 {
			t.Errorf("exponent e_%d = %d shares a factor with λ(n) = %d", k, c.Exponent(k), lam)
		}
	}
	seen := make(map[uint64]uint64, 2000)
	for seed := uint64(0); seed < 2000; seed++ {
		x := c.SampleDomain(seed*7919 + 1)
		y := c.Apply(0, x)
		if prev, dup := seen[y]; dup && prev != x {
			t.Fatalf("F0 not injective: F0(%d) = F0(%d) = %d", prev, x, y)
		}
		seen[y] = x
	}
}

func TestSampleDomainCoprime(t *testing.T) {
	c := DefaultCommutative()
	prop := func(r uint64) bool {
		x := c.SampleDomain(r)
		return x >= 2 && x < c.Modulus() && gcd(x, c.Modulus()) == 1
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewCommutativeValidation(t *testing.T) {
	tests := []struct {
		name    string
		modulus uint64
		nfuncs  int
		wantErr bool
	}{
		{"even modulus", 100, 4, true},
		{"tiny modulus", 3, 4, true},
		{"zero funcs", DefaultModulus48, 0, true},
		{"too many funcs", DefaultModulus48, 65, true},
		{"valid", DefaultModulus48, 8, false},
		{"single func", 15, 1, false},
		{"max funcs", DefaultModulus48, 64, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			c, err := NewCommutative(tc.modulus, tc.nfuncs, 0)
			if (err != nil) != tc.wantErr {
				t.Fatalf("NewCommutative(%d, %d) error = %v, wantErr %v", tc.modulus, tc.nfuncs, err, tc.wantErr)
			}
			if err == nil && c.Size() != tc.nfuncs {
				t.Errorf("Size() = %d, want %d", c.Size(), tc.nfuncs)
			}
		})
	}
}

func TestDefaultModulusIsTheDocumentedSemiprime(t *testing.T) {
	const p, q = uint64(16777213), uint64(16777199)
	if !isSmallPrime(p) || !isSmallPrime(q) {
		t.Fatal("documented factors are not prime")
	}
	if DefaultModulus48 != p*q {
		t.Fatalf("DefaultModulus48 = %d, want %d", DefaultModulus48, p*q)
	}
	if DefaultModulus48&^Mask48 != 0 {
		t.Fatal("default modulus does not fit in 48 bits")
	}
}

func TestCommutativeExponentsAreDistinctPrimes(t *testing.T) {
	c := DefaultCommutative()
	seen := map[uint64]bool{}
	for k := 0; k < c.Size(); k++ {
		e := c.Exponent(k)
		if !isSmallPrime(e) {
			t.Errorf("exponent %d not prime", e)
		}
		if seen[e] {
			t.Errorf("exponent %d repeated", e)
		}
		seen[e] = true
	}
}
