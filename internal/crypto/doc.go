// Package crypto provides the cryptographic primitives that the Amoeba
// sparse-capability design builds on: public one-way functions (used by
// the F-box port transformation and by rights-protection scheme 2), a
// family of commutative one-way functions (rights-protection scheme 3),
// a 64-bit block cipher (rights-protection scheme 1 and the §2.4 key
// matrix), textbook RSA (the §2.4 public-key bootstrap handshake), and
// randomness sources for minting sparse values.
//
// Everything here is implemented from scratch on the Go standard
// library. The primitives are parameterized so that tests can run with
// small, fast instances while the defaults match the paper's field
// widths (48-bit ports and check fields).
//
// Security note: the paper's protection rests on *sparseness* — an
// intruder must guess a 48-bit value to forge anything. 48-bit
// primitives are not cryptographically strong by modern standards; the
// library faithfully reproduces the 1986 design rather than hardening
// it. The one place this matters is the commutative family (scheme 3),
// whose modulus fits in the 48-bit check field and could be factored by
// a modern adversary; see Commutative for discussion.
package crypto
