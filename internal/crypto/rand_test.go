package crypto

import (
	"sync"
	"testing"
)

func TestSystemSourceProducesVariedValues(t *testing.T) {
	s := SystemSource()
	seen := make(map[uint64]bool, 64)
	for i := 0; i < 64; i++ {
		seen[s.Uint64()] = true
	}
	if len(seen) < 64 {
		t.Fatalf("system source repeated values: %d distinct of 64", len(seen))
	}
}

func TestSeededSourceDeterministic(t *testing.T) {
	a, b := NewSeededSource(7), NewSeededSource(7)
	for i := 0; i < 100; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("same seed diverged at step %d: %d vs %d", i, av, bv)
		}
	}
}

func TestSeededSourceSeedsDiffer(t *testing.T) {
	a, b := NewSeededSource(1), NewSeededSource(2)
	if a.Uint64() == b.Uint64() {
		t.Fatal("different seeds produced the same first value")
	}
}

func TestSeededSourceConcurrentSafety(t *testing.T) {
	s := NewSeededSource(99)
	var wg sync.WaitGroup
	out := make([][]uint64, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			vals := make([]uint64, 0, 100)
			for i := 0; i < 100; i++ {
				vals = append(vals, s.Uint64())
			}
			out[g] = vals
		}(g)
	}
	wg.Wait()
	seen := make(map[uint64]bool, 800)
	for _, vals := range out {
		for _, v := range vals {
			if seen[v] {
				t.Fatal("concurrent draws repeated a value; state update raced")
			}
			seen[v] = true
		}
	}
}

func TestRand48Width(t *testing.T) {
	s := NewSeededSource(5)
	for i := 0; i < 1000; i++ {
		if v := Rand48(s); v&^Mask48 != 0 {
			t.Fatalf("Rand48 produced %#x with high bits set", v)
		}
	}
}
