package crypto

import (
	"fmt"
	"testing"
)

// Per-primitive costs feeding the experiment tables: the F-box pays
// one OneWay per transformed field, scheme 1 pays two Feistel blocks,
// scheme 3 pays one modular exponentiation per deleted right.

var benchSink uint64

func BenchmarkOneWay(b *testing.B) {
	for _, f := range []OneWay{SHA48{}, SHA48{Tag: 1}, Purdy{}} {
		b.Run(f.Name(), func(b *testing.B) {
			b.ReportAllocs()
			x := uint64(0x1234)
			for i := 0; i < b.N; i++ {
				x = f.F(x)
			}
			benchSink = x
		})
	}
}

func BenchmarkFeistelEncrypt(b *testing.B) {
	for _, bitsN := range []int{56, 64} {
		f, err := NewFeistelBlock([]byte("bench key"), bitsN)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("block=%d", bitsN), func(b *testing.B) {
			b.ReportAllocs()
			x := uint64(0x5a5a5a5a)
			for i := 0; i < b.N; i++ {
				x = f.Encrypt(x)
			}
			benchSink = x
		})
	}
}

func BenchmarkFeistelKeySchedule(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f := NewFeistelUint64(uint64(i))
		benchSink = f.Encrypt(0)
	}
}

func BenchmarkCommutativeApply(b *testing.B) {
	c := DefaultCommutative()
	x := c.SampleDomain(0xBEEF)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x = c.Apply(i%c.Size(), x)
	}
	benchSink = x
}

func BenchmarkCommutativeApplySet(b *testing.B) {
	c := DefaultCommutative()
	x := c.SampleDomain(0xBEEF)
	for _, bits := range []uint64{0x01, 0x0F, 0xFF} {
		b.Run(fmt.Sprintf("mask=%02x", bits), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				benchSink = c.ApplySet(bits, x)
			}
		})
	}
}

func BenchmarkMulMod(b *testing.B) {
	b.ReportAllocs()
	x := uint64(0x123456789)
	for i := 0; i < b.N; i++ {
		x = MulMod(x, 0x9e3779b97f4a7c15, purdyP)
	}
	benchSink = x
}

func BenchmarkRSA(b *testing.B) {
	key, err := GenerateRSA(1024, nil)
	if err != nil {
		b.Fatal(err)
	}
	msg := []byte("conventional key")
	ct, err := key.RSAPublicKey.Encrypt(nil, msg)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("encrypt", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := key.RSAPublicKey.Encrypt(nil, msg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decrypt", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := key.Decrypt(ct); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkSeededSource(b *testing.B) {
	s := NewSeededSource(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchSink = s.Uint64()
	}
}

func BenchmarkSystemSource(b *testing.B) {
	s := SystemSource()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchSink = s.Uint64()
	}
}
