package crypto

import "fmt"

// Commutative is a family of N pairwise-commuting one-way functions
// F0..F(N-1) on 48-bit values, as required by rights-protection scheme
// 3 (§2.3): a client deletes right k from a capability by replacing the
// check field R with Fk(R), with no server round trip; the server
// re-applies the functions for every cleared rights bit and compares.
// Commutativity (Fi∘Fj = Fj∘Fi) makes the result independent of the
// order in which rights were deleted.
//
// The construction is the classic one from the literature the paper
// cites (Mullender's thesis): modular exponentiation to fixed distinct
// prime exponents over a fixed RSA-style modulus n = p*q whose
// factorization is discarded,
//
//	Fk(x) = x^{e_k} mod n.
//
// Exponentiation commutes ((x^a)^b = x^{ab} = (x^b)^a), and computing
// e_k-th roots modulo a composite of unknown factorization is the RSA
// problem. Because the paper fixes the check field at 48 bits, the
// default modulus also fits in 48 bits — trivially factorable by a
// modern adversary, but exactly as strong as the 48-bit sparseness that
// protects every other part of the design. NewCommutative accepts any
// modulus so deployments with wider check fields can use real RSA
// moduli.
type Commutative struct {
	n    uint64   // composite modulus, fits in 48 bits for the default
	exps []uint64 // one exponent per rights bit, pairwise coprime primes
}

// DefaultModulus48 is the default scheme-3 modulus: the product of the
// two 24-bit primes 16777213 and 16777199 (the two largest primes below
// 2^24), giving a 48-bit semiprime. The factorization above is of
// course public here; see the Commutative doc for the security
// discussion.
const DefaultModulus48 = uint64(16777213) * 16777199

// NewCommutative returns a commutative family of nfuncs functions over
// the given modulus. The modulus must be odd and > 3; nfuncs must be
// between 1 and 64. The exponents are the first nfuncs odd primes,
// skipping any that divide lambda (pass λ(n) = lcm(p-1, q-1) if known
// so that every F_k is a permutation of the units; pass 0 if λ is
// unknown — validation only requires determinism, not bijectivity).
func NewCommutative(modulus uint64, nfuncs int, lambda uint64) (*Commutative, error) {
	if modulus <= 3 || modulus%2 == 0 {
		return nil, fmt.Errorf("crypto: commutative modulus must be odd and > 3, got %d", modulus)
	}
	if nfuncs < 1 || nfuncs > 64 {
		return nil, fmt.Errorf("crypto: commutative family size must be in [1,64], got %d", nfuncs)
	}
	exps := make([]uint64, 0, nfuncs)
	for p := uint64(5); len(exps) < nfuncs; p += 2 {
		if !isSmallPrime(p) {
			continue
		}
		if lambda != 0 && lambda%p == 0 {
			continue // p divides λ(n): x^p would not permute the units
		}
		exps = append(exps, p)
	}
	return &Commutative{n: modulus, exps: exps}, nil
}

// DefaultCommutative returns the family used by capability scheme 3:
// eight functions (one per rights bit) over DefaultModulus48, with
// exponents chosen coprime to λ(n) so each is a permutation.
func DefaultCommutative() *Commutative {
	c, err := NewCommutative(DefaultModulus48, 8, Lambda24())
	if err != nil {
		// The default parameters are compile-time constants that satisfy
		// NewCommutative's contract; failure is a programming error.
		panic("crypto: default commutative family invalid: " + err.Error())
	}
	return c
}

// Size returns the number of functions in the family.
func (c *Commutative) Size() int { return len(c.exps) }

// Modulus returns the family's modulus.
func (c *Commutative) Modulus() uint64 { return c.n }

// Apply returns Fk(x) = x^{e_k} mod n. k must be in [0, Size()).
func (c *Commutative) Apply(k int, x uint64) uint64 {
	return PowMod(x%c.n, c.exps[k], c.n)
}

// ApplySet applies Fk for every set bit k of mask, in ascending bit
// order; by commutativity the order is irrelevant. Bits at or above
// Size() must be clear.
func (c *Commutative) ApplySet(mask uint64, x uint64) uint64 {
	x %= c.n
	for k := 0; mask != 0; k++ {
		if mask&1 == 1 {
			x = PowMod(x, c.exps[k], c.n)
		}
		mask >>= 1
	}
	return x
}

// SampleDomain maps an arbitrary 48-bit random value into the usable
// domain: a unit of Z_n in [2, n-1]. Servers mint object random
// numbers through this so that repeated application of the family never
// collapses to the fixed points 0 and 1.
func (c *Commutative) SampleDomain(r uint64) uint64 {
	x := r % (c.n - 3) // [0, n-4]
	x += 2             // [2, n-2]
	for gcd(x, c.n) != 1 {
		x++
		if x >= c.n-1 {
			x = 2
		}
	}
	return x
}

func gcd(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// isSmallPrime reports whether p is prime, by trial division; used only
// for generating small exponent tables at construction time.
func isSmallPrime(p uint64) bool {
	if p < 2 {
		return false
	}
	for d := uint64(2); d*d <= p; d++ {
		if p%d == 0 {
			return false
		}
	}
	return true
}

// Lambda24 reports λ(n) for the default modulus so tests can verify
// that the default exponents are coprime to it: λ(pq) = lcm(p-1, q-1).
func Lambda24() uint64 {
	const p, q = uint64(16777213), uint64(16777199)
	return (p - 1) / gcd(p-1, q-1) * (q - 1)
}

// Exponent returns e_k, exported for experiment output.
func (c *Commutative) Exponent(k int) uint64 { return c.exps[k] }
