package crypto

import (
	"crypto/sha256"
	"encoding/binary"
	"math/bits"
)

// Mask48 selects the low 48 bits of a uint64. Ports, check fields and
// signatures in the paper are 48-bit quantities carried here in the low
// bits of a uint64.
const Mask48 = (uint64(1) << 48) - 1

// OneWay is a public one-way function on 48-bit values, the F of the
// paper: given G it is straightforward to compute P = F(G), but given P
// it is infeasible to find G. The F-box applies it to get-ports,
// reply ports, and signatures; rights-protection scheme 2 applies it to
// the object random number XORed with the rights byte.
//
// Implementations must be deterministic and must only produce values
// with the high 16 bits clear.
type OneWay interface {
	// F maps a 48-bit value to a 48-bit value.
	F(x uint64) uint64
	// Name identifies the function (for tooling and experiment output).
	Name() string
}

// SHA48 is the default OneWay: SHA-256 over the 8-byte big-endian
// encoding of the input together with a fixed domain-separation tag,
// truncated to 48 bits. Preimage resistance reduces to that of
// SHA-256.
type SHA48 struct {
	// Tag separates independent uses of the function (port transform
	// vs. signature transform vs. capability check). Distinct tags
	// give independent random oracles. The zero value is usable.
	Tag byte
}

var _ OneWay = SHA48{}

// F implements OneWay.
func (s SHA48) F(x uint64) uint64 {
	var buf [9]byte
	buf[0] = s.Tag
	binary.BigEndian.PutUint64(buf[1:], x&Mask48)
	sum := sha256.Sum256(buf[:])
	return binary.BigEndian.Uint64(sum[:8]) & Mask48
}

// Name implements OneWay.
func (s SHA48) Name() string {
	if s.Tag == 0 {
		return "sha48"
	}
	return "sha48/" + string('0'+s.Tag%10)
}

// Purdy is a historical one-way function in the style of Purdy (1974),
// which the paper cites: a sparse high-degree polynomial over GF(p),
//
//	F(x) = x^e + a4*x^4 + a3*x^3 + a2*x^2 + a1*x + a0  (mod p)
//
// with p a prime just below 2^48 and e a large exponent chosen so that
// inverting requires root-finding of an astronomically high-degree
// polynomial. Purdy used p = 2^64 - 59; we use the largest prime below
// 2^48 so the output fits the paper's 48-bit fields.
//
// Purdy is included for fidelity to the 1986 toolbox and for the
// experiment comparing one-way function costs; SHA48 is the default.
type Purdy struct{}

var _ OneWay = Purdy{}

// purdyP is the largest prime below 2^48: 2^48 - 59.
const purdyP = (uint64(1) << 48) - 59

// purdyExp is the large exponent of the leading term. Purdy suggests
// e = 2^24 + 17 scale; gcd(e, p-1) need not be 1 (the function need
// not be a permutation, only hard to invert).
const purdyExp = (uint64(1) << 24) + 17

// Polynomial coefficients: arbitrary odd constants, fixed for all time
// ("nothing up my sleeve": decimal digits of pi).
const (
	purdyA4 = 3141592653589793 % purdyP
	purdyA3 = 2384626433832795 % purdyP
	purdyA2 = 288419716939937 % purdyP
	purdyA1 = 5105820974944592 % purdyP
	purdyA0 = 3078164062862089 % purdyP
)

// F implements OneWay.
func (Purdy) F(x uint64) uint64 {
	x &= Mask48
	x %= purdyP
	r := PowMod(x, purdyExp, purdyP)
	x2 := MulMod(x, x, purdyP)
	x3 := MulMod(x2, x, purdyP)
	x4 := MulMod(x3, x, purdyP)
	r = addMod(r, MulMod(purdyA4, x4, purdyP), purdyP)
	r = addMod(r, MulMod(purdyA3, x3, purdyP), purdyP)
	r = addMod(r, MulMod(purdyA2, x2, purdyP), purdyP)
	r = addMod(r, MulMod(purdyA1, x, purdyP), purdyP)
	r = addMod(r, purdyA0, purdyP)
	return r & Mask48
}

// Name implements OneWay.
func (Purdy) Name() string { return "purdy48" }

// MulMod returns a*b mod m using a 128-bit intermediate product, for
// any m > 0. It never overflows.
func MulMod(a, b, m uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	_, rem := bits.Div64(hi%m, lo, m)
	return rem
}

// PowMod returns base^exp mod m by square-and-multiply. m must be > 1.
func PowMod(base, exp, m uint64) uint64 {
	base %= m
	result := uint64(1) % m
	for exp > 0 {
		if exp&1 == 1 {
			result = MulMod(result, base, m)
		}
		base = MulMod(base, base, m)
		exp >>= 1
	}
	return result
}

func addMod(a, b, m uint64) uint64 {
	a %= m
	b %= m
	s, carry := bits.Add64(a, b, 0)
	if carry != 0 || s >= m {
		s -= m
	}
	return s
}
