package crypto

import (
	"testing"
	"testing/quick"
)

func TestSHA48Deterministic(t *testing.T) {
	f := SHA48{}
	if f.F(12345) != f.F(12345) {
		t.Fatal("SHA48 not deterministic")
	}
}

func TestSHA48Output48Bits(t *testing.T) {
	f := SHA48{}
	prop := func(x uint64) bool { return f.F(x)&^Mask48 == 0 }
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSHA48IgnoresHighBits(t *testing.T) {
	// Inputs are 48-bit quantities; high input bits must not matter.
	f := SHA48{}
	prop := func(x uint64) bool { return f.F(x) == f.F(x&Mask48) }
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSHA48TagsAreIndependent(t *testing.T) {
	a, b := SHA48{Tag: 1}, SHA48{Tag: 2}
	same := 0
	for x := uint64(0); x < 1000; x++ {
		if a.F(x) == b.F(x) {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("tagged SHA48 collided on %d/1000 inputs; tags not separating domains", same)
	}
}

func TestSHA48NoTrivialFixedPoint(t *testing.T) {
	f := SHA48{}
	for _, x := range []uint64{0, 1, Mask48} {
		if f.F(x) == x {
			t.Errorf("F(%#x) = %#x is a fixed point", x, x)
		}
	}
}

func TestPurdyOutput48Bits(t *testing.T) {
	f := Purdy{}
	prop := func(x uint64) bool { return f.F(x)&^Mask48 == 0 }
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPurdyDeterministicAndSpreading(t *testing.T) {
	f := Purdy{}
	seen := make(map[uint64]int, 4096)
	for x := uint64(0); x < 4096; x++ {
		y := f.F(x)
		if y2 := f.F(x); y2 != y {
			t.Fatalf("Purdy not deterministic at %d: %d vs %d", x, y, y2)
		}
		seen[y]++
	}
	// A degree-2^24 polynomial over a 48-bit field should essentially
	// never collide on 4096 consecutive inputs.
	if len(seen) < 4090 {
		t.Fatalf("Purdy collided heavily: %d distinct outputs of 4096", len(seen))
	}
}

func TestOneWayNames(t *testing.T) {
	if (SHA48{}).Name() != "sha48" {
		t.Errorf("SHA48 name = %q", SHA48{}.Name())
	}
	if (Purdy{}).Name() != "purdy48" {
		t.Errorf("Purdy name = %q", Purdy{}.Name())
	}
	if (SHA48{Tag: 3}).Name() == "sha48" {
		t.Error("tagged SHA48 should not share the untagged name")
	}
}

func TestMulMod(t *testing.T) {
	tests := []struct {
		a, b, m, want uint64
	}{
		{0, 0, 1, 0},
		{7, 8, 5, 1},
		{Mask48, Mask48, purdyP, func() uint64 {
			// (2^48-1)^2 mod (2^48-59): compute independently via
			// (m+58)^2 = m^2 + 116m + 3364 ≡ 3364 (mod m).
			return 3364 % purdyP
		}()},
		{^uint64(0), ^uint64(0), ^uint64(0) - 58, 58 * 58},
	}
	for _, tc := range tests {
		if got := MulMod(tc.a, tc.b, tc.m); got != tc.want {
			t.Errorf("MulMod(%d,%d,%d) = %d, want %d", tc.a, tc.b, tc.m, got, tc.want)
		}
	}
}

func TestMulModMatchesNaive(t *testing.T) {
	// For small operands the naive product fits in uint64; cross-check.
	prop := func(a, b uint32, m uint32) bool {
		if m == 0 {
			m = 1
		}
		return MulMod(uint64(a), uint64(b), uint64(m)) == uint64(a)*uint64(b)%uint64(m)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPowMod(t *testing.T) {
	tests := []struct {
		b, e, m, want uint64
	}{
		{2, 10, 1 << 20, 1024},
		{3, 0, 7, 1},
		{0, 5, 7, 0},
		{5, 1, 7, 5},
		{2, 64, 1<<61 - 1, PowMod(PowMod(2, 32, 1<<61-1), 2, 1<<61-1)},
	}
	for _, tc := range tests {
		if got := PowMod(tc.b, tc.e, tc.m); got != tc.want {
			t.Errorf("PowMod(%d,%d,%d) = %d, want %d", tc.b, tc.e, tc.m, got, tc.want)
		}
	}
}

func TestPowModFermat(t *testing.T) {
	// Fermat's little theorem: a^(p-1) ≡ 1 mod p for prime p, a ≠ 0.
	const p = purdyP
	for _, a := range []uint64{2, 3, 12345, Mask48 - 1} {
		if got := PowMod(a, p-1, p); got != 1 {
			t.Errorf("a=%d: a^(p-1) mod p = %d, want 1", a, got)
		}
	}
}

func TestAddMod(t *testing.T) {
	// Overflow path: a+b wraps uint64.
	m := ^uint64(0) - 4
	if got := addMod(m-1, m-2, m); got != (m-3)%m {
		t.Errorf("addMod overflow path wrong: got %d", got)
	}
	if got := addMod(3, 4, 5); got != 2 {
		t.Errorf("addMod(3,4,5) = %d, want 2", got)
	}
}
