// Package wal is a write-ahead log over a virtual disk: the durability
// layer under the Amoeba services. The paper's services survive machine
// crashes because their state lives behind a server that can be
// restarted and relocated (§2.2's LOCATE re-broadcast exists precisely
// so clients find a re-incarnated server); this log is what makes the
// restarted server remember.
//
// Layout: block 0 is a superblock; the remaining blocks form a circular
// byte arena of CRC-framed records addressed by monotonically
// increasing offsets. Appends are group-committed — concurrent
// appenders share one Store.Sync — and a reply is only sent once Wait
// returns, so every capability a client holds names durable state.
// Checkpoint writes a state snapshot into the log and advances the
// superblock's start pointer past everything the snapshot covers,
// reclaiming the space behind it. Recovery scans from the start
// pointer, restoring the newest checkpoint it meets and re-applying the
// records after it; a torn tail (a crash mid-write) fails the CRC or
// sequence check and is cleanly truncated.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
	"time"

	"amoeba/internal/obs"
	"amoeba/internal/vdisk"
)

// Errors.
var (
	// ErrFull is returned when an append would overwrite live records;
	// a checkpoint reclaims space.
	ErrFull = errors.New("wal: log full (checkpoint to reclaim space)")
	// ErrClosed is returned after Close.
	ErrClosed = errors.New("wal: closed")
	// ErrTooLarge is returned for records beyond Options.MaxRecord.
	ErrTooLarge = errors.New("wal: record too large")
	// ErrNotRecovered is returned by Append before Recover has run:
	// appending into an unscanned log would clobber the tail.
	ErrNotRecovered = errors.New("wal: Recover must run before Append")
	// ErrCorrupt is returned for an unusable superblock.
	ErrCorrupt = errors.New("wal: corrupt superblock")
	// ErrSeqTruncated is returned by ReadFrom when the requested
	// sequence number lies before the log's start pointer: a checkpoint
	// reclaimed it, so a replica that far behind needs a fresh base
	// snapshot, not a record stream.
	ErrSeqTruncated = errors.New("wal: sequence reclaimed by a checkpoint")
	// ErrWedged wraps the I/O failure that wedged the log: a failed
	// commit (or superblock write) makes the log permanently read-only,
	// and every Append, Barrier and Close after it returns an error
	// satisfying errors.Is(err, ErrWedged). The gray-failure contract
	// is built on this sentinel — a machine whose WAL is wedged still
	// answers the network, so upper layers (kernel fencing, replica
	// self-demotion) key off the typed error, not off silence.
	ErrWedged = errors.New("wal: wedged (I/O failure; log is read-only)")
)

// Record is one log record as seen by a replication sink or a ReadFrom
// scan: the payload plus the metadata that orders and classifies it.
type Record struct {
	// Seq is the record's log sequence number (contiguous; gaps on the
	// receiving side mean lost shipments).
	Seq uint64
	// Checkpoint marks a checkpoint snapshot record; Data is then the
	// full state envelope, not a redo record.
	Checkpoint bool
	// Data is the record payload. Sink callbacks own it (it is copied
	// out of the staging buffer).
	Data []byte
}

const (
	superMagic   = 0xA0EBA1A5_0000_0001
	superVersion = 1
	superSize    = 40 // magic(8) ver(4) nblocks(4) bs(4) start(8) seq(8) crc(4)

	// frame: size(4) seq(8) kind(1) crc(4) ∥ payload. The CRC covers
	// the first 13 header bytes and the payload.
	frameHeader = 17

	kindData       = 0x01
	kindCheckpoint = 0x02
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Options tunes a log. The zero value gets sensible defaults.
type Options struct {
	// MaxRecord bounds one record's payload (default: the smaller of
	// 1 MiB and a quarter of the arena, so a checkpoint always fits).
	MaxRecord int
	// HighWater is the used-bytes fraction past which the Pressure
	// channel fires (default 0.5).
	HighWater float64
	// Metrics, when set, has the commit path observe its group
	// commits: the wall time of each write+sync pass and how many
	// records it covered. Sync latency is the floor under every
	// durable operation's tail, and batch size is whether group commit
	// is actually grouping — the two numbers that tell an overloaded
	// durable service apart from a slow disk.
	Metrics *Metrics
}

// Metrics receives commit-path observations (see Options.Metrics).
// Either histogram may be nil to skip it.
type Metrics struct {
	// SyncLatency observes nanoseconds per group commit (arena write
	// plus Store.Sync).
	SyncLatency *obs.Histogram
	// BatchRecords observes records per group commit.
	BatchRecords *obs.Histogram
}

// Stats counts log activity.
type Stats struct {
	Appends     uint64 // records staged
	Commits     uint64 // group commits (one Store.Sync each)
	Checkpoints uint64
	Used        uint64 // live bytes (head - start)
	Capacity    uint64 // arena bytes usable before ErrFull
}

// Ticket is a commit handle: Wait blocks until every record staged in
// the ticket's batch is on stable storage.
type Ticket struct {
	done chan struct{}
	err  error
	// flush, when set (replicated logs), lets the first waiter LEAD the
	// commit on its own goroutine instead of waiting out the committer's
	// wake-up — see Wait.
	flush func()
}

// Wait blocks for the group commit. A nil ticket (from a volatile
// kernel) returns immediately.
//
// On a replicated log the ticket's latency already contains a network
// round trip (the batch ships to the standby before tickets complete),
// so Wait runs the commit pass inline on the caller's goroutine when it
// can claim it — leader-led group commit. The first waiter commits and
// ships the whole staged batch; later waiters find nothing staged and
// fall through to the channel. Batching is preserved (one sync and one
// ship per batch, whoever leads), and two scheduler hand-offs leave the
// acknowledgement path of every replicated operation.
func (t *Ticket) Wait() error {
	if t == nil {
		return nil
	}
	if t.flush != nil {
		select {
		case <-t.done: // already committed
		default:
			t.flush()
		}
	}
	<-t.done
	return t.err
}

// Log is a write-ahead log over one vdisk.Store. Safe for concurrent
// appenders; a single committer goroutine batches their syncs.
type Log struct {
	store     vdisk.Store
	bs        uint64 // block size
	arena     uint64 // arena bytes (blocks 1..n-1)
	maxRecord int
	highWater uint64
	metrics   *Metrics

	mu         sync.Mutex
	recovered  bool
	closed     bool
	abandoned  bool  // Abandon: skip the final flush, drop staged bytes
	ioErr      error // a failed commit wedges the log read-only (wraps ErrWedged)
	onWedge    []func(err error)
	start      uint64
	startSeq   uint64
	head       uint64 // absolute append offset
	flushed    uint64 // bytes < flushed are on stable storage
	seq        uint64 // next sequence number
	buf        []byte // staged bytes [bufStart, bufStart+len(buf))
	bufStart   uint64 // block-aligned
	ticket     *Ticket
	signaled   bool // pressure sent since the last checkpoint
	stats      Stats
	sink       func(recs []Record) // commit sink (replication shipper)
	pending    []Record            // staged-but-uncommitted sink records
	stagedRecs uint64              // records in the staged batch (metrics)

	ckMu sync.Mutex // serializes Checkpoint

	// commitMu serializes commit passes: the committer goroutine and
	// Flush callers never write the arena concurrently.
	commitMu sync.Mutex

	pressure chan struct{}
	kick     chan struct{}
	stop     chan struct{}
	done     chan struct{}
}

// Open attaches a log to a store, formatting it when empty. Call
// Recover before the first Append — it is what finds the tail.
func Open(store vdisk.Store, opts Options) (*Log, error) {
	bs := uint64(store.BlockSize())
	if store.NBlocks() < 5 {
		return nil, fmt.Errorf("wal: store has %d blocks, need at least 5", store.NBlocks())
	}
	l := &Log{
		store:    store,
		bs:       bs,
		arena:    uint64(store.NBlocks()-1) * bs,
		pressure: make(chan struct{}, 1),
		kick:     make(chan struct{}, 1),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	l.metrics = opts.Metrics
	l.maxRecord = opts.MaxRecord
	if l.maxRecord <= 0 {
		l.maxRecord = 1 << 20
	}
	if max := int(l.arena / 4); l.maxRecord > max {
		l.maxRecord = max
	}
	hw := opts.HighWater
	if hw <= 0 || hw >= 1 {
		hw = 0.5
	}
	l.highWater = uint64(float64(l.capacity()) * hw)
	if err := l.loadSuper(); err != nil {
		return nil, err
	}
	go l.committer()
	return l, nil
}

// capacity is the byte budget before ErrFull: one block is reserved so
// the zero-padded tail block can never alias the start block.
func (l *Log) capacity() uint64 { return l.arena - l.bs }

func (l *Log) loadSuper() error {
	blk, err := l.store.Read(0)
	if err != nil {
		return fmt.Errorf("wal: reading superblock: %w", err)
	}
	if binary.BigEndian.Uint64(blk) == superMagic {
		if crc32.Checksum(blk[:superSize-4], crcTable) != binary.BigEndian.Uint32(blk[superSize-4:]) {
			return fmt.Errorf("%w: bad CRC", ErrCorrupt)
		}
		if v := binary.BigEndian.Uint32(blk[8:]); v != superVersion {
			return fmt.Errorf("%w: version %d", ErrCorrupt, v)
		}
		nb := binary.BigEndian.Uint32(blk[12:])
		gbs := binary.BigEndian.Uint32(blk[16:])
		if nb != l.store.NBlocks() || uint64(gbs) != l.bs {
			return fmt.Errorf("%w: geometry %d×%d, store is %d×%d",
				ErrCorrupt, nb, gbs, l.store.NBlocks(), l.bs)
		}
		l.start = binary.BigEndian.Uint64(blk[20:])
		l.startSeq = binary.BigEndian.Uint64(blk[28:])
		return nil
	}
	for _, b := range blk {
		if b != 0 {
			return fmt.Errorf("%w: not a write-ahead log", ErrCorrupt)
		}
	}
	// Fresh store: format.
	l.start, l.startSeq = 0, 1
	return l.writeSuper()
}

// writeSuper persists the (start, startSeq) pointers; called at format
// and after every checkpoint, each time with its own sync.
func (l *Log) writeSuper() error {
	blk := make([]byte, l.bs)
	binary.BigEndian.PutUint64(blk[0:], superMagic)
	binary.BigEndian.PutUint32(blk[8:], superVersion)
	binary.BigEndian.PutUint32(blk[12:], l.store.NBlocks())
	binary.BigEndian.PutUint32(blk[16:], uint32(l.bs))
	binary.BigEndian.PutUint64(blk[20:], l.start)
	binary.BigEndian.PutUint64(blk[28:], l.startSeq)
	binary.BigEndian.PutUint32(blk[superSize-4:], crc32.Checksum(blk[:superSize-4], crcTable))
	if err := l.store.Write(0, blk); err != nil {
		return fmt.Errorf("wal: writing superblock: %w", err)
	}
	if err := l.store.Sync(); err != nil {
		return fmt.Errorf("wal: syncing superblock: %w", err)
	}
	return nil
}

// blockOf maps an absolute arena offset to its physical block number.
func (l *Log) blockOf(off uint64) uint32 { return 1 + uint32((off%l.arena)/l.bs) }

// Recover scans the log from the superblock's start pointer: the
// newest checkpoint snapshot (if any) is handed to restore, every
// record after it to apply, in log order. The scan stops — and the log
// tail is truncated — at the first frame that fails its length, kind,
// sequence or CRC check: a torn tail from a crash mid-commit. Recover
// must run (exactly once) before the first Append.
func (l *Log) Recover(restore func(snap []byte) error, apply func(rec []byte) error) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if l.recovered {
		l.mu.Unlock()
		return errors.New("wal: already recovered")
	}
	off, seq := l.start, l.startSeq
	l.mu.Unlock()

	s := &scanner{l: l, block: ^uint32(0)}
	for {
		rec, kind, next, ok := s.frame(off, seq)
		if !ok {
			break
		}
		var err error
		switch kind {
		case kindCheckpoint:
			if restore != nil {
				err = restore(rec)
			}
		default:
			if apply != nil {
				err = apply(rec)
			}
		}
		if err != nil {
			return fmt.Errorf("wal: replaying record %d: %w", seq, err)
		}
		off, seq = next, seq+1
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	l.head, l.flushed, l.seq = off, off, seq
	l.bufStart = off - off%l.bs
	l.buf = l.buf[:0]
	if off > l.bufStart {
		// Cache the partial tail block so later appends rewrite it
		// with the earlier bytes intact.
		blk, err := l.store.Read(l.blockOf(l.bufStart))
		if err != nil {
			return fmt.Errorf("wal: reading tail block: %w", err)
		}
		l.buf = append(l.buf, blk[:off-l.bufStart]...)
	}
	l.recovered = true
	return nil
}

// scanner reads frames sequentially with a one-block cache.
type scanner struct {
	l     *Log
	cache []byte
	block uint32
}

// read copies [off, off+len(dst)) arena bytes into dst.
func (s *scanner) read(off uint64, dst []byte) bool {
	for len(dst) > 0 {
		b := s.l.blockOf(off)
		if b != s.block {
			blk, err := s.l.store.Read(b)
			if err != nil {
				return false
			}
			s.cache, s.block = blk, b
		}
		at := off % s.l.bs
		n := copy(dst, s.cache[at:])
		dst = dst[n:]
		off += uint64(n)
	}
	return true
}

// frame decodes the frame at off, expecting sequence number seq. It
// returns the payload, the kind, and the next frame's offset; ok is
// false at the log's tail (any malformed, stale or torn frame).
func (s *scanner) frame(off, seq uint64) (rec []byte, kind byte, next uint64, ok bool) {
	l := s.l
	var hdr [frameHeader]byte
	// Header and payload must fit the capacity measured from start.
	if off-l.start+frameHeader > l.capacity() || !s.read(off, hdr[:]) {
		return nil, 0, 0, false
	}
	size := uint64(binary.BigEndian.Uint32(hdr[0:]))
	k := hdr[12]
	if size == 0 || size > uint64(l.maxRecord) ||
		off-l.start+frameHeader+size > l.capacity() {
		return nil, 0, 0, false
	}
	if k != kindData && k != kindCheckpoint {
		return nil, 0, 0, false
	}
	if binary.BigEndian.Uint64(hdr[4:]) != seq {
		return nil, 0, 0, false // stale frame from a previous arena lap
	}
	rec = make([]byte, size)
	if !s.read(off+frameHeader, rec) {
		return nil, 0, 0, false
	}
	crc := crc32.Checksum(hdr[:13], crcTable)
	crc = crc32.Update(crc, crcTable, rec)
	if crc != binary.BigEndian.Uint32(hdr[13:]) {
		return nil, 0, 0, false
	}
	return rec, k, off + frameHeader + size, true
}

// Append stages one record and returns the batch's commit ticket; the
// record is durable once Ticket.Wait returns nil. Callers ordering
// matters to (a service appending under its object lock) rely on stage
// order being commit order, which the single staging buffer guarantees.
func (l *Log) Append(rec []byte) (*Ticket, error) {
	t, _, _, err := l.stage(kindData, rec)
	if err != nil {
		return nil, err
	}
	// A flush-capable ticket's waiter leads the commit itself (see
	// Ticket.Wait); kicking the committer too would only race it for
	// commitMu and re-add the scheduler hop the lead exists to remove.
	// The committer still covers stragglers at Close.
	if t.flush == nil {
		l.kickCommitter()
	}
	return t, nil
}

// stage frames rec into the staging buffer under the lock, returning
// the frame's offset and sequence number.
func (l *Log) stage(kind byte, rec []byte) (*Ticket, uint64, uint64, error) {
	if len(rec) == 0 {
		return nil, 0, 0, errors.New("wal: empty record")
	}
	if len(rec) > l.maxRecord {
		return nil, 0, 0, fmt.Errorf("%w: %d bytes (max %d)", ErrTooLarge, len(rec), l.maxRecord)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	switch {
	case l.closed:
		return nil, 0, 0, ErrClosed
	case !l.recovered:
		return nil, 0, 0, ErrNotRecovered
	case l.ioErr != nil:
		return nil, 0, 0, l.ioErr
	}
	frameLen := uint64(frameHeader + len(rec))
	if l.head+frameLen-l.start > l.capacity() {
		l.signalPressure()
		return nil, 0, 0, ErrFull
	}
	var hdr [frameHeader]byte
	binary.BigEndian.PutUint32(hdr[0:], uint32(len(rec)))
	binary.BigEndian.PutUint64(hdr[4:], l.seq)
	hdr[12] = kind
	crc := crc32.Checksum(hdr[:13], crcTable)
	crc = crc32.Update(crc, crcTable, rec)
	binary.BigEndian.PutUint32(hdr[13:], crc)
	at, seq := l.head, l.seq
	l.buf = append(l.buf, hdr[:]...)
	l.buf = append(l.buf, rec...)
	l.head += frameLen
	l.seq++
	l.stats.Appends++
	l.stagedRecs++
	if l.sink != nil {
		// The sink sees the record after its batch commits; copy now so
		// the caller may reuse rec.
		l.pending = append(l.pending, Record{
			Seq:        seq,
			Checkpoint: kind == kindCheckpoint,
			Data:       append([]byte(nil), rec...),
		})
	}
	if l.ticket == nil {
		l.ticket = &Ticket{done: make(chan struct{})}
		if l.sink != nil {
			l.ticket.flush = l.Flush
		}
	}
	if l.head-l.start > l.highWater {
		l.signalPressure()
	}
	return l.ticket, at, seq, nil
}

// signalPressure nudges the checkpoint listener once per high-water
// crossing. Callers hold l.mu.
func (l *Log) signalPressure() {
	if l.signaled {
		return
	}
	l.signaled = true
	select {
	case l.pressure <- struct{}{}:
	default:
	}
}

func (l *Log) kickCommitter() {
	select {
	case l.kick <- struct{}{}:
	default:
	}
}

// committer is the single group-commit goroutine: each run writes every
// staged byte and issues ONE Store.Sync for the whole batch, then wakes
// every appender that staged into it.
func (l *Log) committer() {
	defer close(l.done)
	for {
		select {
		case <-l.kick:
			l.commit()
		case <-l.stop:
			l.mu.Lock()
			abandoned := l.abandoned
			l.mu.Unlock()
			if !abandoned {
				l.commit() // final flush for any staged stragglers
			}
			return
		}
	}
}

func (l *Log) commit() {
	l.commitMu.Lock()
	defer l.commitMu.Unlock()
	l.mu.Lock()
	t := l.ticket
	if l.abandoned {
		// A kick can still be pending when Abandon lands; the crash
		// contract says staged bytes never reach the store after it.
		l.ticket = nil
		l.mu.Unlock()
		if t != nil {
			t.err = ErrClosed
			close(t.done)
		}
		return
	}
	if l.ioErr != nil {
		// The log is wedged: a failed batch must NEVER be retried onto
		// the disk (its appenders were already told it failed), so no
		// further bytes are written — pending waiters get the error.
		err := l.ioErr
		l.ticket = nil
		l.mu.Unlock()
		if t != nil {
			t.err = err
			close(t.done)
		}
		return
	}
	if t == nil && l.head == l.flushed {
		l.mu.Unlock()
		return
	}
	l.ticket = nil
	data := append([]byte(nil), l.buf...)
	ds, nf := l.bufStart, l.head
	ship, sink := l.pending, l.sink
	l.pending = nil
	batchRecs := l.stagedRecs
	l.stagedRecs = 0
	l.mu.Unlock()

	var syncStart time.Time
	if l.metrics != nil {
		syncStart = time.Now()
	}
	err := l.writeRange(ds, data)
	if err == nil {
		err = l.store.Sync()
	}
	if err == nil && l.metrics != nil && batchRecs > 0 {
		if h := l.metrics.SyncLatency; h != nil {
			h.ObserveDuration(time.Since(syncStart))
		}
		if h := l.metrics.BatchRecords; h != nil {
			h.Observe(batchRecs)
		}
	}
	// Ship the batch AFTER local durability and BEFORE waking its
	// appenders: a handler's reply — sent after Ticket.Wait — then
	// implies the record is on local stable storage AND acknowledged by
	// the backup, which is what makes failover lossless. The sink rides
	// the group commit (one call per batch), so replication adds no
	// fsyncs on the primary.
	if err == nil && sink != nil && len(ship) > 0 {
		sink(ship)
	}
	l.finishCommit(t, err, nf)
}

// wedge makes the failed operation's error the log's permanent state:
// ioErr is set (wrapping ErrWedged) and the registered wedge callbacks
// fire, each on its own goroutine so a callback that takes locks (a
// replica self-demoting, a cluster tearing the machine down) cannot
// deadlock the commit path. Only the FIRST failure wedges; callers
// hold l.mu. The wedged error is returned for the caller to report.
func (l *Log) wedge(cause error) error {
	if l.ioErr != nil {
		return l.ioErr
	}
	l.ioErr = fmt.Errorf("%w: %w", ErrWedged, cause)
	fire := l.onWedge
	l.onWedge = nil
	for _, fn := range fire {
		go fn(l.ioErr)
	}
	return l.ioErr
}

// finishCommit records the commit's outcome and wakes the batch.
func (l *Log) finishCommit(t *Ticket, err error, nf uint64) {
	l.mu.Lock()
	if err != nil {
		err = l.wedge(err)
		l.pending = nil // a failed batch is never shipped (nor retried)
	} else {
		l.stats.Commits++
		if nf > l.flushed {
			l.flushed = nf
		}
		// Trim the buffer down to the partial tail block.
		nb := l.flushed - l.flushed%l.bs
		if nb > l.bufStart {
			drop := nb - l.bufStart
			l.buf = append(l.buf[:0], l.buf[drop:]...)
			l.bufStart = nb
		}
	}
	l.mu.Unlock()
	if t != nil {
		t.err = err
		close(t.done)
	}
}

// writeRange writes the staged bytes [ds, ds+len(data)) block by block,
// zero-padding the partial tail block (the pad is rewritten by the next
// commit; a crash leaves zeros the scanner treats as the tail).
func (l *Log) writeRange(ds uint64, data []byte) error {
	blk := make([]byte, l.bs)
	for i := 0; i < len(data); i += int(l.bs) {
		chunk := data[i:min(i+int(l.bs), len(data))]
		out := chunk
		if len(chunk) < int(l.bs) {
			copy(blk, chunk)
			clear(blk[len(chunk):])
			out = blk
		}
		if err := l.store.Write(l.blockOf(ds+uint64(i)), out); err != nil {
			return fmt.Errorf("wal: writing log block: %w", err)
		}
	}
	return nil
}

// Checkpoint writes snap as a checkpoint record, commits it, and
// advances the superblock's start pointer to it: every byte before the
// checkpoint is reclaimed, and the next Recover restores snap first.
// The caller must guarantee snap is consistent with every record
// already staged (the service kernel quiesces its handlers around this
// call).
func (l *Log) Checkpoint(snap []byte) error {
	l.ckMu.Lock()
	defer l.ckMu.Unlock()
	// A failed checkpoint re-arms the pressure signal, so the next
	// append re-triggers a retry instead of leaving the log to fill
	// in silence.
	rearm := func() {
		l.mu.Lock()
		l.signaled = false
		l.mu.Unlock()
	}
	t, at, seq, err := l.stage(kindCheckpoint, snap)
	if err != nil {
		rearm()
		return err
	}
	l.kickCommitter()
	if err := t.Wait(); err != nil {
		rearm()
		return err
	}
	l.mu.Lock()
	l.start, l.startSeq = at, seq
	l.mu.Unlock()
	if err := l.writeSuper(); err != nil {
		l.mu.Lock()
		err = l.wedge(err)
		l.mu.Unlock()
		return err
	}
	l.mu.Lock()
	l.signaled = false
	l.stats.Checkpoints++
	l.mu.Unlock()
	return nil
}

// SetSink installs fn as the log's commit sink: after every successful
// group commit, the committer hands fn the batch's records — in stage
// (= commit = replay) order, from the single committer goroutine, and
// BEFORE the batch's tickets complete, so a handler that replies after
// Ticket.Wait knows the sink has seen its record. Only records staged
// after the sink is installed are delivered (a replica attaching
// mid-life gets the earlier state from a base snapshot instead). A nil
// fn detaches. The sink must not append to this log.
func (l *Log) SetSink(fn func(recs []Record)) {
	l.mu.Lock()
	l.sink = fn
	if fn == nil {
		l.pending = nil
	}
	l.mu.Unlock()
}

// NextSeq returns the sequence number the next staged record will get.
func (l *Log) NextSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// ReadFrom streams every committed record with sequence number ≥ from
// to fn, in log order — the catch-up path for a replica that fell
// behind. It scans stable storage only (staged-but-unsynced bytes are
// invisible), and is safe to run concurrently with appends. A from
// before the start pointer returns ErrSeqTruncated: those records were
// reclaimed by a checkpoint and the replica needs a fresh base.
func (l *Log) ReadFrom(from uint64, fn func(r Record) error) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if !l.recovered {
		l.mu.Unlock()
		return ErrNotRecovered
	}
	off, seq, flushed := l.start, l.startSeq, l.flushed
	l.mu.Unlock()
	if from < seq {
		return fmt.Errorf("%w: want %d, log starts at %d", ErrSeqTruncated, from, seq)
	}
	s := &scanner{l: l, block: ^uint32(0)}
	for {
		rec, kind, next, ok := s.frame(off, seq)
		if !ok || next > flushed {
			// Tail, or a frame not yet on stable storage: the scan is
			// complete. Seq contiguity below `flushed` is guaranteed by
			// the frame seq check itself (a gap reads as a stale frame
			// and stops the scan), so a clean stop IS gap-free.
			return nil
		}
		if seq >= from {
			if err := fn(Record{Seq: seq, Checkpoint: kind == kindCheckpoint, Data: rec}); err != nil {
				return err
			}
		}
		off, seq = next, seq+1
	}
}

// Barrier returns once every record staged BEFORE the call is on
// stable storage and — on a replicated log — delivered to the commit
// sink. It is the read-your-writes fence for replies that OBSERVE
// state rather than mutate it: a duplicate-suppression error ("entry
// exists"), a read, an absence. Such a reply acknowledges state whose
// record may still be in flight; sending it early would let a client
// learn state that a crash-plus-failover forgets. With no batch in
// flight Barrier is two uncontended mutex hops.
func (l *Log) Barrier() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	t := l.ticket
	l.mu.Unlock()
	if t != nil {
		// The observed record is in this batch or an earlier one;
		// commits are ordered, so this ticket covers it. Wait
		// PASSIVELY — leading the commit here (Ticket.Wait's flush)
		// would split group-commit batches early and charge observers
		// an extra sync+ship; the batch's own appenders lead it, and
		// every staged record has an appender about to Wait.
		<-t.done
		return t.err
	}
	// No pending ticket: the record's batch is either done or mid-pass
	// (claimed); taking commitMu waits any in-flight pass out.
	l.commitMu.Lock()
	defer l.commitMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ioErr
}

// Wedged reports whether the log has wedged read-only after an I/O
// failure. A wedged log never recovers in place: the process must
// restart onto a healthy store (or a replica must take over).
func (l *Log) Wedged() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ioErr != nil
}

// OnWedge registers fn to run when the log wedges, with the ErrWedged
// error that did it. Callbacks fire exactly once, each on its own
// goroutine (they may take arbitrary locks — the commit path does not
// wait for them). Registering on an already-wedged log fires fn
// immediately. This is the health signal gray-failure handling hangs
// off: the disk died but the machine still talks, so somebody has to
// say so out loud.
func (l *Log) OnWedge(fn func(err error)) {
	l.mu.Lock()
	if l.ioErr != nil {
		err := l.ioErr
		l.mu.Unlock()
		go fn(err)
		return
	}
	l.onWedge = append(l.onWedge, fn)
	l.mu.Unlock()
}

// Flush runs a group-commit pass on the CALLER's goroutine instead of
// waiting for the committer to wake: the staged batch (if any) is on
// stable storage — and its tickets complete — before Flush returns.
// The low-latency path for a single-writer caller like the replication
// receiver, whose acknowledgement gates the primary's reply; under
// concurrent appenders it simply becomes one more committer.
func (l *Log) Flush() {
	l.mu.Lock()
	ok := l.recovered && !l.closed
	l.mu.Unlock()
	if ok {
		l.commit()
	}
}

// Pressure signals (at most once per checkpoint cycle) when the log
// crosses its high-water mark; the kernel's checkpoint loop listens.
func (l *Log) Pressure() <-chan struct{} { return l.pressure }

// Stats returns a snapshot of the counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := l.stats
	s.Used = l.head - l.start
	s.Capacity = l.capacity()
	return s
}

// Close flushes staged records and stops the committer. Records whose
// tickets were never waited on are still made durable — a crash (see
// Abandon) loses them instead, which is safe because their replies
// were never sent.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	close(l.stop)
	<-l.done
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ioErr
}

// Abandon closes the log the way a machine crash would: staged records
// that have not yet group-committed are DROPPED — no final flush — and
// any waiters on the pending batch fail with ErrClosed. Only records
// whose Wait already returned nil are on the store. The kernel's Crash
// path uses it so kill/restart tests exercise a genuinely unflushed
// tail.
func (l *Log) Abandon() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.abandoned = true
	t := l.ticket
	l.ticket = nil
	l.mu.Unlock()
	close(l.stop)
	<-l.done
	// Fence in-flight commit passes: a ticket waiter can LEAD a commit
	// (Ticket.Wait's flush) and be mid-write when Abandon lands —
	// draining the committer goroutine alone does not cover it. Taking
	// commitMu waits any such pass out, so when Abandon returns no
	// goroutine is writing the store (a Restart may reopen the disk
	// immediately); a leader that had not yet passed the abandoned
	// check drops its batch instead (see commit).
	l.commitMu.Lock()
	l.commitMu.Unlock() //nolint:staticcheck // empty critical section IS the fence
	if t != nil {
		t.err = ErrClosed
		close(t.done)
	}
	return nil
}
