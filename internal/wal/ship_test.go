package wal

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"amoeba/internal/vdisk"
)

func openShipLog(t *testing.T, blocks uint32) (*Log, *vdisk.Disk) {
	t.Helper()
	disk, err := vdisk.New(blocks, 256)
	if err != nil {
		t.Fatal(err)
	}
	l, err := Open(disk, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	if err := l.Recover(nil, nil); err != nil {
		t.Fatal(err)
	}
	return l, disk
}

// TestSinkSeesCommitsBeforeTickets: the commit sink receives every
// record of a batch — tagged with its sequence, in stage order — before
// the batch's ticket completes, and only records staged after the sink
// was installed are delivered.
func TestSinkSeesCommitsBeforeTickets(t *testing.T) {
	l, _ := openShipLog(t, 128)
	// A record from before the sink: never delivered.
	tk, err := l.Append([]byte("early"))
	if err != nil {
		t.Fatal(err)
	}
	if err := tk.Wait(); err != nil {
		t.Fatal(err)
	}

	var got []Record
	shipped := make(chan struct{}, 16)
	l.SetSink(func(recs []Record) {
		got = append(got, recs...)
		shipped <- struct{}{}
	})
	for i := 0; i < 3; i++ {
		tk, err := l.Append([]byte(fmt.Sprintf("r%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if err := tk.Wait(); err != nil {
			t.Fatal(err)
		}
		// The sink ran strictly before Wait returned (same goroutine
		// ordering in the committer), so the record is already here.
		select {
		case <-shipped:
		default:
			t.Fatalf("record %d: ticket completed before the sink ran", i)
		}
	}
	if len(got) != 3 {
		t.Fatalf("sink saw %d records, want 3", len(got))
	}
	for i, r := range got {
		if r.Seq != uint64(i+2) || r.Checkpoint || string(r.Data) != fmt.Sprintf("r%d", i) {
			t.Fatalf("record %d: %+v", i, r)
		}
	}

	// Checkpoints ship through the same sink, flagged.
	if err := l.Checkpoint([]byte("snap")); err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 || !got[3].Checkpoint || string(got[3].Data) != "snap" {
		t.Fatalf("checkpoint not shipped: %+v", got)
	}

	// Detach: later commits stay local.
	l.SetSink(nil)
	tk, _ = l.Append([]byte("quiet"))
	tk.Wait()
	if len(got) != 4 {
		t.Fatal("detached sink still receives records")
	}
}

// TestReadFromStreamsCommittedTail: ReadFrom replays exactly the
// committed records ≥ from, and a from below the checkpointed start is
// ErrSeqTruncated.
func TestReadFromStreamsCommittedTail(t *testing.T) {
	l, _ := openShipLog(t, 128)
	for i := 0; i < 6; i++ {
		tk, err := l.Append([]byte(fmt.Sprintf("rec%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if err := tk.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	collect := func(from uint64) []Record {
		var out []Record
		if err := l.ReadFrom(from, func(r Record) error {
			r.Data = append([]byte(nil), r.Data...)
			out = append(out, r)
			return nil
		}); err != nil {
			t.Fatalf("ReadFrom(%d): %v", from, err)
		}
		return out
	}
	all := collect(1)
	if len(all) != 6 {
		t.Fatalf("full scan found %d records, want 6", len(all))
	}
	for i, r := range all {
		if r.Seq != uint64(i+1) || !bytes.Equal(r.Data, []byte(fmt.Sprintf("rec%d", i))) {
			t.Fatalf("record %d: %+v", i, r)
		}
	}
	tail := collect(4)
	if len(tail) != 3 || tail[0].Seq != 4 {
		t.Fatalf("tail scan: %+v", tail)
	}
	if got := collect(100); len(got) != 0 {
		t.Fatalf("future scan returned %d records", len(got))
	}

	// Early-stop propagates the callback's error.
	stop := errors.New("stop")
	n := 0
	if err := l.ReadFrom(1, func(Record) error { n++; return stop }); !errors.Is(err, stop) {
		t.Fatalf("callback error lost: %v", err)
	}
	if n != 1 {
		t.Fatalf("scan continued after error (%d records)", n)
	}

	// Checkpoint truncates; the reclaimed range is unreadable.
	if err := l.Checkpoint([]byte("snap")); err != nil {
		t.Fatal(err)
	}
	if err := l.ReadFrom(3, func(Record) error { return nil }); !errors.Is(err, ErrSeqTruncated) {
		t.Fatalf("reclaimed scan: %v, want ErrSeqTruncated", err)
	}
	post := collect(7) // the checkpoint record itself
	if len(post) != 1 || !post[0].Checkpoint {
		t.Fatalf("post-checkpoint scan: %+v", post)
	}
}

// TestReadFromSkipsUnflushedTail: records staged but not yet synced are
// invisible to ReadFrom (a replica must never receive bytes the primary
// could still lose).
func TestReadFromSkipsUnflushedTail(t *testing.T) {
	l, _ := openShipLog(t, 128)
	tk, err := l.Append([]byte("committed"))
	if err != nil {
		t.Fatal(err)
	}
	if err := tk.Wait(); err != nil {
		t.Fatal(err)
	}
	// Stage without waiting: the record may sit unflushed; grab the
	// committed view immediately.
	if _, err := l.Append([]byte("staged")); err != nil {
		t.Fatal(err)
	}
	var n int
	var flushed uint64
	l.mu.Lock()
	flushed = l.flushed
	l.mu.Unlock()
	if err := l.ReadFrom(1, func(r Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	// Whatever the committer managed to flush is fine; the scan must
	// never exceed it. With flushed == first record only, n == 1.
	if flushed < 40 && n != 1 { // first frame is 17+9=26 bytes
		t.Fatalf("scan saw %d records with flushed=%d", n, flushed)
	}
}

// gatedDisk blocks every Sync until the test feeds it a token, so a
// batch can be held mid-commit deterministically.
type gatedDisk struct {
	*vdisk.Disk
	gate chan struct{}
}

func (d *gatedDisk) Sync() error {
	<-d.gate
	return d.Disk.Sync()
}

// TestBarrierCoversInFlightBatch: Barrier must not return while a
// batch staged before the call is still being committed — it is the
// fence that keeps observing replies ("entry exists", reads) from
// acknowledging state a crash would forget.
func TestBarrierCoversInFlightBatch(t *testing.T) {
	disk, err := vdisk.New(128, 256)
	if err != nil {
		t.Fatal(err)
	}
	g := &gatedDisk{Disk: disk, gate: make(chan struct{}, 1)}
	g.gate <- struct{}{} // the format-time superblock sync
	l, err := Open(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		close(g.gate) // let teardown syncs through
		l.Close()
	})
	if err := l.Recover(nil, nil); err != nil {
		t.Fatal(err)
	}

	// An empty log: Barrier is free.
	if err := l.Barrier(); err != nil {
		t.Fatal(err)
	}

	tk, err := l.Append([]byte("observed-by-a-duplicate"))
	if err != nil {
		t.Fatal(err)
	}
	barrier := make(chan error, 1)
	go func() { barrier <- l.Barrier() }()
	select {
	case err := <-barrier:
		t.Fatalf("barrier returned (%v) while the batch was mid-commit", err)
	case <-time.After(30 * time.Millisecond):
	}
	g.gate <- struct{}{} // release the sync
	if err := <-barrier; err != nil {
		t.Fatalf("barrier after release: %v", err)
	}
	if err := tk.Wait(); err != nil {
		t.Fatal(err)
	}
}
