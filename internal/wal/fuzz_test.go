package wal

import (
	"bytes"
	"testing"

	"amoeba/internal/vdisk"
)

// FuzzRecoverArbitraryBytes writes arbitrary fuzz input over the log
// arena (superblock intact) and recovers: the record decoder must never
// panic, must terminate, and must leave the log appendable — torn or
// garbage tails truncate cleanly.
func FuzzRecoverArbitraryBytes(f *testing.F) {
	f.Add([]byte{}, uint64(0), uint64(1))
	f.Add(bytes.Repeat([]byte{0xFF}, 300), uint64(0), uint64(1))
	f.Add([]byte{0, 0, 0, 3, 0, 0, 0, 0, 0, 0, 0, 1, 1, 0xde, 0xad, 0xbe, 0xef, 'a', 'b', 'c'}, uint64(0), uint64(1))
	// A start offset deep into the arena exercises wrap-around reads.
	f.Add(bytes.Repeat([]byte{0x11, 0x00}, 200), uint64(900), uint64(7))
	f.Fuzz(func(t *testing.T, arena []byte, start, startSeq uint64) {
		const nblocks, bs = 16, 64
		d, err := vdisk.New(nblocks, bs)
		if err != nil {
			t.Fatal(err)
		}
		l, err := Open(d, Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		// Plant the fuzz bytes across the arena from the (arbitrary)
		// start offset, then point the superblock at it.
		l.mu.Lock()
		l.start, l.startSeq = start, startSeq
		l.mu.Unlock()
		if err := l.writeSuper(); err != nil {
			t.Fatal(err)
		}
		off := start
		for i := 0; i < len(arena); {
			b := l.blockOf(off)
			blk, err := d.Read(b)
			if err != nil {
				t.Fatal(err)
			}
			at := off % l.bs
			n := copy(blk[at:], arena[i:])
			if err := d.Write(b, blk); err != nil {
				t.Fatal(err)
			}
			i += n
			off += uint64(n)
		}
		var recs, snaps int
		if err := l.Recover(
			func([]byte) error { snaps++; return nil },
			func([]byte) error { recs++; return nil },
		); err != nil {
			t.Fatal(err)
		}
		// Whatever the scan salvaged, the log must accept new records
		// and replay them back.
		tk, err := l.Append([]byte("post-recovery"))
		if err != nil {
			t.Fatal(err)
		}
		if err := tk.Wait(); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzFrameRoundTrip appends fuzz payloads and replays them: every
// committed record must come back byte-identical, in order.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add([]byte("hello"), []byte("world"))
	f.Add([]byte{0}, bytes.Repeat([]byte{0xA5}, 100))
	f.Fuzz(func(t *testing.T, a, b []byte) {
		d, err := vdisk.New(64, 128)
		if err != nil {
			t.Fatal(err)
		}
		l, err := Open(d, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Recover(nil, nil); err != nil {
			t.Fatal(err)
		}
		var want [][]byte
		for _, p := range [][]byte{a, b} {
			tk, err := l.Append(p)
			if err != nil {
				continue // empty or oversized: rejected is fine
			}
			if err := tk.Wait(); err != nil {
				t.Fatal(err)
			}
			want = append(want, p)
		}
		l.Close()
		l2, err := Open(d, Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer l2.Close()
		var got [][]byte
		if err := l2.Recover(nil, func(r []byte) error {
			got = append(got, append([]byte(nil), r...))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("replayed %d records, want %d", len(got), len(want))
		}
		for i := range want {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("record %d diverged", i)
			}
		}
	})
}
