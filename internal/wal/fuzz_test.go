package wal

import (
	"bytes"
	"testing"

	"amoeba/internal/vdisk"
)

// FuzzRecoverArbitraryBytes writes arbitrary fuzz input over the log
// arena (superblock intact) and recovers: the record decoder must never
// panic, must terminate, and must leave the log appendable — torn or
// garbage tails truncate cleanly.
func FuzzRecoverArbitraryBytes(f *testing.F) {
	f.Add([]byte{}, uint64(0), uint64(1))
	f.Add(bytes.Repeat([]byte{0xFF}, 300), uint64(0), uint64(1))
	f.Add([]byte{0, 0, 0, 3, 0, 0, 0, 0, 0, 0, 0, 1, 1, 0xde, 0xad, 0xbe, 0xef, 'a', 'b', 'c'}, uint64(0), uint64(1))
	// A start offset deep into the arena exercises wrap-around reads.
	f.Add(bytes.Repeat([]byte{0x11, 0x00}, 200), uint64(900), uint64(7))
	f.Fuzz(func(t *testing.T, arena []byte, start, startSeq uint64) {
		const nblocks, bs = 16, 64
		d, err := vdisk.New(nblocks, bs)
		if err != nil {
			t.Fatal(err)
		}
		l, err := Open(d, Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		// Plant the fuzz bytes across the arena from the (arbitrary)
		// start offset, then point the superblock at it.
		l.mu.Lock()
		l.start, l.startSeq = start, startSeq
		l.mu.Unlock()
		if err := l.writeSuper(); err != nil {
			t.Fatal(err)
		}
		off := start
		for i := 0; i < len(arena); {
			b := l.blockOf(off)
			blk, err := d.Read(b)
			if err != nil {
				t.Fatal(err)
			}
			at := off % l.bs
			n := copy(blk[at:], arena[i:])
			if err := d.Write(b, blk); err != nil {
				t.Fatal(err)
			}
			i += n
			off += uint64(n)
		}
		var recs, snaps int
		if err := l.Recover(
			func([]byte) error { snaps++; return nil },
			func([]byte) error { recs++; return nil },
		); err != nil {
			t.Fatal(err)
		}
		// Whatever the scan salvaged, the log must accept new records
		// and replay them back.
		tk, err := l.Append([]byte("post-recovery"))
		if err != nil {
			t.Fatal(err)
		}
		if err := tk.Wait(); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzFrameRoundTrip appends fuzz payloads and replays them: every
// committed record must come back byte-identical, in order.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add([]byte("hello"), []byte("world"))
	f.Add([]byte{0}, bytes.Repeat([]byte{0xA5}, 100))
	f.Fuzz(func(t *testing.T, a, b []byte) {
		d, err := vdisk.New(64, 128)
		if err != nil {
			t.Fatal(err)
		}
		l, err := Open(d, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Recover(nil, nil); err != nil {
			t.Fatal(err)
		}
		var want [][]byte
		for _, p := range [][]byte{a, b} {
			tk, err := l.Append(p)
			if err != nil {
				continue // empty or oversized: rejected is fine
			}
			if err := tk.Wait(); err != nil {
				t.Fatal(err)
			}
			want = append(want, p)
		}
		l.Close()
		l2, err := Open(d, Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer l2.Close()
		var got [][]byte
		if err := l2.Recover(nil, func(r []byte) error {
			got = append(got, append([]byte(nil), r...))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("replayed %d records, want %d", len(got), len(want))
		}
		for i := range want {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("record %d diverged", i)
			}
		}
	})
}

// FuzzRecoverBitFlips corrupts a COMMITTED log image — up to three bit
// flips at fuzz-chosen arena positions — and recovers: apply must only
// ever see an exact byte-for-byte prefix of the committed records,
// never a corrupted one. Three flips is deliberate: CRC-32C detects
// every ≤3-bit error at these frame lengths, so the guarantee under
// test is absolute, not probabilistic — a flip inside a frame
// truncates the replay there, a flip past the tail changes nothing.
func FuzzRecoverBitFlips(f *testing.F) {
	f.Add(uint8(3), uint64(1), uint32(40), uint32(900), uint32(77), uint8(3))
	f.Add(uint8(1), uint64(7), uint32(0), uint32(0), uint32(0), uint8(1))
	f.Add(uint8(8), uint64(42), uint32(5000), uint32(5001), uint32(5002), uint8(3))
	f.Fuzz(func(t *testing.T, n uint8, seed uint64, p1, p2, p3 uint32, nflips uint8) {
		const nblocks, bs = 64, 128
		nrec := int(n%8) + 1
		d, err := vdisk.New(nblocks, bs)
		if err != nil {
			t.Fatal(err)
		}
		l, err := Open(d, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Recover(nil, nil); err != nil {
			t.Fatal(err)
		}
		committed := make([][]byte, nrec)
		for i := range committed {
			rec := make([]byte, 8+int((seed>>(i%8))%64))
			for j := range rec {
				rec[j] = byte(seed>>uint(j%8)*8) + byte(i*31+j)
			}
			committed[i] = rec
			tk, err := l.Append(rec)
			if err != nil {
				t.Fatal(err)
			}
			if err := tk.Wait(); err != nil {
				t.Fatal(err)
			}
		}
		l.Close()

		// Flip up to three bits anywhere in the arena (blocks 1..n-1).
		arenaBits := uint32(nblocks-1) * bs * 8
		for _, p := range [][2]uint32{{1, p1}, {2, p2}, {3, p3}}[:int(nflips%3)+1] {
			bit := p[1] % arenaBits
			blk := 1 + bit/8/bs
			buf, err := d.Read(blk)
			if err != nil {
				t.Fatal(err)
			}
			buf[bit/8%bs] ^= 1 << (bit % 8)
			if err := d.Write(blk, buf); err != nil {
				t.Fatal(err)
			}
		}

		l2, err := Open(d, Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer l2.Close()
		var got [][]byte
		err = l2.Recover(
			func([]byte) error {
				t.Fatal("recovery restored a checkpoint nobody wrote")
				return nil
			},
			func(r []byte) error {
				got = append(got, append([]byte(nil), r...))
				return nil
			})
		if err != nil {
			return // rejecting the image outright is within contract
		}
		if len(got) > len(committed) {
			t.Fatalf("replayed %d records, committed only %d", len(got), len(committed))
		}
		for i := range got {
			if !bytes.Equal(got[i], committed[i]) {
				t.Fatalf("record %d replayed corrupted after bit flips", i)
			}
		}
	})
}
