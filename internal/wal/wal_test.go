package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"amoeba/internal/vdisk"
)

func newDisk(t *testing.T, nblocks uint32, bs int) *vdisk.Disk {
	t.Helper()
	d, err := vdisk.New(nblocks, bs)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func openLog(t *testing.T, d *vdisk.Disk, opts Options) *Log {
	t.Helper()
	l, err := Open(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

// recoverAll recovers l, returning the restored snapshot (nil if none)
// and the replayed records.
func recoverAll(t *testing.T, l *Log) ([]byte, [][]byte) {
	t.Helper()
	var snap []byte
	var recs [][]byte
	err := l.Recover(
		func(s []byte) error {
			snap = append([]byte(nil), s...)
			recs = nil // a newer checkpoint supersedes earlier records
			return nil
		},
		func(r []byte) error {
			recs = append(recs, append([]byte(nil), r...))
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	return snap, recs
}

func mustAppend(t *testing.T, l *Log, rec []byte) {
	t.Helper()
	tk, err := l.Append(rec)
	if err != nil {
		t.Fatal(err)
	}
	if err := tk.Wait(); err != nil {
		t.Fatal(err)
	}
}

func rec(i int) []byte {
	b := make([]byte, 8+i%23)
	binary.BigEndian.PutUint64(b, uint64(i))
	return b
}

func TestAppendReplayRoundTrip(t *testing.T) {
	d := newDisk(t, 64, 128)
	l := openLog(t, d, Options{})
	recoverAll(t, l)
	const n = 40
	for i := 0; i < n; i++ {
		mustAppend(t, l, rec(i))
	}
	l.Close()

	l2 := openLog(t, d, Options{})
	snap, recs := recoverAll(t, l2)
	if snap != nil {
		t.Fatalf("unexpected snapshot")
	}
	if len(recs) != n {
		t.Fatalf("replayed %d records, want %d", len(recs), n)
	}
	for i, r := range recs {
		if !bytes.Equal(r, rec(i)) {
			t.Fatalf("record %d diverged", i)
		}
	}
	// The reopened log must keep appending where the old one stopped.
	mustAppend(t, l2, rec(n))
	l2.Close()
	l3 := openLog(t, d, Options{})
	_, recs = recoverAll(t, l3)
	if len(recs) != n+1 {
		t.Fatalf("after reopen+append: %d records, want %d", len(recs), n+1)
	}
}

func TestCheckpointTruncatesAndRestores(t *testing.T) {
	d := newDisk(t, 64, 128)
	l := openLog(t, d, Options{})
	recoverAll(t, l)
	for i := 0; i < 10; i++ {
		mustAppend(t, l, rec(i))
	}
	if err := l.Checkpoint([]byte("state@10")); err != nil {
		t.Fatal(err)
	}
	for i := 10; i < 15; i++ {
		mustAppend(t, l, rec(i))
	}
	l.Close()

	l2 := openLog(t, d, Options{})
	snap, recs := recoverAll(t, l2)
	if string(snap) != "state@10" {
		t.Fatalf("snapshot %q, want state@10", snap)
	}
	if len(recs) != 5 {
		t.Fatalf("replayed %d records after checkpoint, want 5", len(recs))
	}
	if !bytes.Equal(recs[0], rec(10)) {
		t.Fatal("first post-checkpoint record wrong")
	}
}

// TestCheckpointMidLogSupersedes: a crash between the checkpoint commit
// and the superblock update leaves the scan starting BEFORE the
// checkpoint; the mid-log checkpoint frame must reset replay state.
func TestCheckpointMidLogSupersedes(t *testing.T) {
	d := newDisk(t, 64, 128)
	l := openLog(t, d, Options{})
	recoverAll(t, l)
	mustAppend(t, l, []byte("before"))
	// Stage a checkpoint frame by hand, committing it WITHOUT the
	// superblock update — exactly the torn crash window.
	tk, _, _, err := l.stage(kindCheckpoint, []byte("snap"))
	if err != nil {
		t.Fatal(err)
	}
	l.kickCommitter()
	if err := tk.Wait(); err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, []byte("after"))
	l.Close()

	l2 := openLog(t, d, Options{})
	snap, recs := recoverAll(t, l2)
	if string(snap) != "snap" {
		t.Fatalf("snapshot %q, want snap", snap)
	}
	if len(recs) != 1 || string(recs[0]) != "after" {
		t.Fatalf("recs %q, want [after]", recs)
	}
}

func TestWrapAroundWithCheckpoints(t *testing.T) {
	d := newDisk(t, 16, 64) // tiny: 15 arena blocks × 64 B
	l := openLog(t, d, Options{})
	recoverAll(t, l)
	payload := bytes.Repeat([]byte{0xAB}, 48)
	var kept int
	for i := 0; i < 200; i++ {
		r := append(payload[:len(payload):len(payload)], byte(i))
		tk, err := l.Append(r)
		if err == ErrFull {
			if err := l.Checkpoint([]byte{byte(kept)}); err != nil {
				t.Fatal(err)
			}
			kept = 0
			tk, err = l.Append(r)
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := tk.Wait(); err != nil {
			t.Fatal(err)
		}
		kept++
	}
	l.Close()
	l2 := openLog(t, d, Options{})
	_, recs := recoverAll(t, l2)
	if len(recs) != kept {
		t.Fatalf("replayed %d records, want %d since the last checkpoint", len(recs), kept)
	}
}

func TestTornTailTruncates(t *testing.T) {
	for _, tear := range []string{"flip-byte", "zero-tail", "garbage-tail"} {
		t.Run(tear, func(t *testing.T) {
			d := newDisk(t, 64, 128)
			l := openLog(t, d, Options{})
			recoverAll(t, l)
			for i := 0; i < 8; i++ {
				mustAppend(t, l, rec(i))
			}
			head := l.head
			l.Close()

			// Corrupt the bytes of the LAST record on a clone.
			c := d.Clone()
			last := head - uint64(frameHeader+len(rec(7)))
			mangle := func(off uint64, b byte, xor bool) {
				blk, err := c.Read(l.blockOf(off))
				if err != nil {
					t.Fatal(err)
				}
				if xor {
					blk[off%l.bs] ^= b
				} else {
					blk[off%l.bs] = b
				}
				if err := c.Write(l.blockOf(off), blk); err != nil {
					t.Fatal(err)
				}
			}
			switch tear {
			case "flip-byte":
				mangle(last+frameHeader, 0x5A, true)
			case "zero-tail":
				for o := last; o < head; o++ {
					mangle(o, 0, false)
				}
			case "garbage-tail":
				for o := last; o < head; o++ {
					mangle(o, byte(0x33+o), false)
				}
			}
			lr, err := Open(c, Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer lr.Close()
			_, recs := recoverAll(t, lr)
			if len(recs) != 7 {
				t.Fatalf("replayed %d records, want 7 (torn tail truncated)", len(recs))
			}
			// The truncated log accepts fresh appends over the tear.
			mustAppend(t, lr, []byte("fresh"))
		})
	}
}

// slowSync models a disk whose durability point costs real time (a
// disk flush); it is what makes group-commit batching observable.
type slowSync struct {
	*vdisk.Disk
	delay time.Duration
}

func (s *slowSync) Sync() error {
	time.Sleep(s.delay)
	return s.Disk.Sync()
}

func TestGroupCommitBatchesSyncs(t *testing.T) {
	d := newDisk(t, 256, 256)
	l, err := Open(&slowSync{Disk: d, delay: 200 * time.Microsecond}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	recoverAll(t, l)
	const writers, per = 16, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tk, err := l.Append(rec(w*per + i))
				if err != nil {
					t.Error(err)
					return
				}
				if err := tk.Wait(); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	s := l.Stats()
	if s.Appends != writers*per {
		t.Fatalf("appends %d, want %d", s.Appends, writers*per)
	}
	if s.Commits >= s.Appends {
		t.Fatalf("group commit did not batch: %d commits for %d appends", s.Commits, s.Appends)
	}
	t.Logf("%d appends in %d commits (%.1f records/sync)",
		s.Appends, s.Commits, float64(s.Appends)/float64(s.Commits))
	l.Close()
	l2 := openLog(t, d, Options{})
	_, recs := recoverAll(t, l2)
	if len(recs) != writers*per {
		t.Fatalf("replayed %d records, want %d", len(recs), writers*per)
	}
}

func TestFullLogRejectsAppends(t *testing.T) {
	d := newDisk(t, 8, 64)
	l := openLog(t, d, Options{})
	recoverAll(t, l)
	var got bool
	for i := 0; i < 100; i++ {
		_, err := l.Append(bytes.Repeat([]byte{1}, 40))
		if err == ErrFull {
			got = true
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !got {
		t.Fatal("never saw ErrFull")
	}
	select {
	case <-l.Pressure():
	default:
		t.Fatal("no pressure signal at high water")
	}
}

func TestAppendBeforeRecoverFails(t *testing.T) {
	d := newDisk(t, 16, 64)
	l := openLog(t, d, Options{})
	if _, err := l.Append([]byte("x")); err != ErrNotRecovered {
		t.Fatalf("got %v, want ErrNotRecovered", err)
	}
}

func TestGeometryMismatchRejected(t *testing.T) {
	d := newDisk(t, 64, 128)
	l := openLog(t, d, Options{})
	recoverAll(t, l)
	l.Close()
	d2 := newDisk(t, 64, 128)
	// Transplant the superblock with a lying geometry field, re-CRC'd
	// so the geometry check (not the CRC) is what rejects it.
	blk, _ := d.Read(0)
	binary.BigEndian.PutUint32(blk[12:], 99)
	binary.BigEndian.PutUint32(blk[superSize-4:], crc32.Checksum(blk[:superSize-4], crcTable))
	if err := d2.Write(0, blk); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(d2, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("got %v, want ErrCorrupt", err)
	}
	// A flipped CRC is also rejected.
	blk[superSize-4]++
	d3 := newDisk(t, 64, 128)
	if err := d3.Write(0, blk); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(d3, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("got %v, want ErrCorrupt", err)
	}
}

func TestRecoveryReplayManyRecords(t *testing.T) {
	// Acceptance: replaying ≥10k records must be fast; this test only
	// asserts correctness of a large replay (the benchmark times it).
	d := newDisk(t, 4096, 1024)
	l := openLog(t, d, Options{})
	recoverAll(t, l)
	const n = 10000
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < n/8; i++ {
				tk, err := l.Append(rec(w*(n/8) + i))
				if err != nil {
					t.Error(err)
					return
				}
				if err := tk.Wait(); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	l.Close()
	l2 := openLog(t, d, Options{})
	_, recs := recoverAll(t, l2)
	if len(recs) != n {
		t.Fatalf("replayed %d, want %d", len(recs), n)
	}
	seen := make(map[uint64]bool, n)
	for _, r := range recs {
		seen[binary.BigEndian.Uint64(r)] = true
	}
	if len(seen) != n {
		t.Fatalf("lost records: %d unique of %d", len(seen), n)
	}
}

func TestStatsUsed(t *testing.T) {
	d := newDisk(t, 64, 128)
	l := openLog(t, d, Options{})
	recoverAll(t, l)
	mustAppend(t, l, []byte("abc"))
	s := l.Stats()
	if want := uint64(frameHeader + 3); s.Used != want {
		t.Fatalf("used %d, want %d", s.Used, want)
	}
	if s.Capacity == 0 {
		t.Fatal("zero capacity")
	}
	if err := l.Checkpoint([]byte("s")); err != nil {
		t.Fatal(err)
	}
	if got := l.Stats().Checkpoints; got != 1 {
		t.Fatalf("checkpoints %d, want 1", got)
	}
}

func TestCloseFlushesStragglers(t *testing.T) {
	d := newDisk(t, 64, 128)
	l := openLog(t, d, Options{})
	recoverAll(t, l)
	// Append without waiting, then close: the final flush must land it.
	if _, err := l.Append([]byte("straggler")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	l2 := openLog(t, d, Options{})
	_, recs := recoverAll(t, l2)
	if len(recs) != 1 || string(recs[0]) != "straggler" {
		t.Fatalf("straggler lost: %q", recs)
	}
}

// gateSync, once armed, blocks Sync until released — freezing the
// committer mid-batch so a test can pile up genuinely staged-but-
// uncommitted records.
type gateSync struct {
	*vdisk.Disk
	armed atomic.Bool
	gate  chan struct{}
}

func (g *gateSync) Sync() error {
	if g.armed.Load() {
		<-g.gate
	}
	return g.Disk.Sync()
}

// TestAbandonDropsStagedRecords: Abandon is the crash path — records
// whose group commit had not completed must NOT reach the store (Close
// would flush them), and their waiters must fail with ErrClosed.
func TestAbandonDropsStagedRecords(t *testing.T) {
	d := newDisk(t, 64, 128)
	g := &gateSync{Disk: d, gate: make(chan struct{})}
	l, err := Open(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	recoverAll(t, l)
	g.armed.Store(true)
	// First record: its batch's Sync blocks on the gate.
	t1, err := l.Append([]byte("committed"))
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the committer to take the first batch, so the second
	// record lands in a distinct, never-committed batch.
	for {
		l.mu.Lock()
		taken := l.ticket == nil
		l.mu.Unlock()
		if taken {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
	// Second record: staged behind the stuck batch, never committed.
	t2, err := l.Append([]byte("staged-only"))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- l.Abandon() }()
	// Only release the stuck batch once Abandon has marked the log
	// (otherwise the committer could legitimately commit the second
	// batch before the "crash" happens).
	for {
		l.mu.Lock()
		closed := l.closed
		l.mu.Unlock()
		if closed {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
	close(g.gate) // let the in-flight batch finish; the staged one must not follow
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if err := t1.Wait(); err != nil {
		t.Fatalf("in-flight batch: %v", err)
	}
	if err := t2.Wait(); err != ErrClosed {
		t.Fatalf("staged batch Wait = %v, want ErrClosed", err)
	}
	l2 := openLog(t, d, Options{})
	_, recs := recoverAll(t, l2)
	if len(recs) != 1 || string(recs[0]) != "committed" {
		t.Fatalf("replayed %q, want only the committed record", recs)
	}
}

func TestOpenTinyStoreRejected(t *testing.T) {
	d := newDisk(t, 4, 64)
	if _, err := Open(d, Options{}); err == nil {
		t.Fatal("4-block store accepted")
	}
}

func TestFaultyDiskWedgesLog(t *testing.T) {
	d := newDisk(t, 64, 128)
	l := openLog(t, d, Options{})
	recoverAll(t, l)
	mustAppend(t, l, []byte("ok"))
	d.SetFault(func(op string, block uint32) error {
		if op == "write" {
			return fmt.Errorf("injected write fault")
		}
		return nil
	})
	tk, err := l.Append([]byte("doomed"))
	if err != nil {
		t.Fatal(err)
	}
	if err := tk.Wait(); err == nil {
		t.Fatal("commit over a failing disk reported success")
	}
	d.SetFault(nil)
	if _, err := l.Append([]byte("next")); err == nil {
		t.Fatal("wedged log accepted a new append")
	}
}

func TestWedgeTypedErrorAndCallback(t *testing.T) {
	d := newDisk(t, 64, 128)
	l := openLog(t, d, Options{})
	recoverAll(t, l)
	mustAppend(t, l, []byte("ok"))

	fired := make(chan error, 2)
	l.OnWedge(func(err error) { fired <- err })
	if l.Wedged() {
		t.Fatal("healthy log reports wedged")
	}

	injected := fmt.Errorf("injected write fault")
	d.SetFault(func(op string, block uint32) error {
		if op == "write" {
			return injected
		}
		return nil
	})
	tk, err := l.Append([]byte("doomed"))
	if err != nil {
		t.Fatal(err)
	}
	werr := tk.Wait()
	if werr == nil {
		t.Fatal("commit over a failing disk reported success")
	}
	if !errors.Is(werr, ErrWedged) {
		t.Fatalf("failed commit returned %v, want ErrWedged", werr)
	}
	if !errors.Is(werr, injected) {
		t.Fatalf("wedge error %v lost its cause", werr)
	}
	if !l.Wedged() {
		t.Fatal("log not wedged after failed commit")
	}

	select {
	case cb := <-fired:
		if !errors.Is(cb, ErrWedged) {
			t.Fatalf("callback got %v, want ErrWedged", cb)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("wedge callback never fired")
	}

	// Registering after the fact fires immediately; the original
	// callback does not fire twice.
	l.OnWedge(func(err error) { fired <- err })
	select {
	case <-fired:
	case <-time.After(2 * time.Second):
		t.Fatal("late OnWedge registration never fired")
	}

	// Everything downstream sees the typed error, even after the disk
	// heals — a failed batch is never retried.
	d.SetFault(nil)
	if _, err := l.Append([]byte("next")); !errors.Is(err, ErrWedged) {
		t.Fatalf("append on wedged log: %v, want ErrWedged", err)
	}
	if err := l.Barrier(); !errors.Is(err, ErrWedged) {
		t.Fatalf("barrier on wedged log: %v, want ErrWedged", err)
	}
	select {
	case err := <-fired:
		t.Fatalf("wedge callback fired twice: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestWedgeOnCheckpointFailure(t *testing.T) {
	d := newDisk(t, 64, 128)
	l := openLog(t, d, Options{})
	recoverAll(t, l)
	mustAppend(t, l, []byte("ok"))
	fired := make(chan error, 1)
	l.OnWedge(func(err error) { fired <- err })
	// Fail only the superblock write: the checkpoint record commits,
	// then advancing the start pointer wedges.
	d.SetFault(func(op string, block uint32) error {
		if op == "write" && block == 0 {
			return fmt.Errorf("superblock dead")
		}
		return nil
	})
	if err := l.Checkpoint([]byte("snap")); !errors.Is(err, ErrWedged) {
		t.Fatalf("checkpoint over dead superblock: %v, want ErrWedged", err)
	}
	select {
	case <-fired:
	case <-time.After(2 * time.Second):
		t.Fatal("wedge callback never fired for checkpoint failure")
	}
}
