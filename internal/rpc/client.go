package rpc

import (
	"errors"
	"fmt"
	"time"

	"amoeba/internal/amnet"
	"amoeba/internal/cap"
	"amoeba/internal/crypto"
	"amoeba/internal/fbox"
	"amoeba/internal/locate"
)

// ErrTimeout is returned when a transaction exhausts its retries
// without a reply.
var ErrTimeout = errors.New("rpc: transaction timed out")

// ClientConfig tunes a Client. The zero value gets sensible defaults.
type ClientConfig struct {
	// Timeout bounds each attempt's wait for a reply (default 1s).
	Timeout time.Duration
	// Retries is how many additional attempts follow a timeout
	// (default 2). Each retry re-locates the destination port, so a
	// migrated or restarted server is found again.
	Retries int
	// Source supplies reply-port randomness (default crypto/rand).
	Source crypto.Source
	// Sealer, if set, encrypts the capability in every request header
	// under the §2.4 key matrix (and decrypts capabilities in replies).
	// The server must share the matrix (Server.SetSealer).
	Sealer CapSealer
}

func (c ClientConfig) withDefaults() ClientConfig {
	if c.Timeout <= 0 {
		c.Timeout = time.Second
	}
	if c.Retries < 0 {
		c.Retries = 0
	} else if c.Retries == 0 {
		c.Retries = 2
	}
	if c.Source == nil {
		c.Source = crypto.SystemSource()
	}
	return c
}

// Client performs blocking transactions through an F-box. It is safe
// for concurrent use; each transaction has its own one-shot reply port.
type Client struct {
	fb  *fbox.FBox
	res *locate.Resolver
	cfg ClientConfig
}

// NewClient builds a client over fb, resolving ports with res.
func NewClient(fb *fbox.FBox, res *locate.Resolver, cfg ClientConfig) *Client {
	return &Client{fb: fb, res: res, cfg: cfg.withDefaults()}
}

// Resolver exposes the client's locate cache (for seeding and stats).
func (c *Client) Resolver() *locate.Resolver { return c.res }

// Trans performs one blocking transaction: locate the server machine,
// PUT the request at the destination port with a fresh reply port, and
// wait for the reply. On timeout the locate cache entry is invalidated
// and the transaction retried.
func (c *Client) Trans(dest cap.Port, req Request) (Reply, error) {
	return c.trans(dest, req, 0)
}

// TransSigned is Trans with a signature: the signer's secret rides in
// the message header and is transformed to F(S) by the F-box (§2.2).
func (c *Client) TransSigned(dest cap.Port, req Request, signer fbox.Signer) (Reply, error) {
	return c.trans(dest, req, signer.Secret())
}

func (c *Client) trans(dest cap.Port, req Request, sig cap.Port) (Reply, error) {
	var lastErr error
	for attempt := 0; attempt <= c.cfg.Retries; attempt++ {
		machine, err := c.res.Lookup(dest)
		if err != nil {
			return Reply{}, fmt.Errorf("rpc: locating %v: %w", dest, err)
		}
		sealed, err := sealRequestCap(c.cfg.Sealer, req, machine)
		if err != nil {
			return Reply{}, fmt.Errorf("rpc: sealing capability: %w", err)
		}
		rep, err := c.attempt(machine, dest, EncodeRequest(sealed), sig)
		if err == nil {
			return rep, nil
		}
		lastErr = err
		if errors.Is(err, ErrTimeout) {
			// The server may have moved or restarted: forget the
			// cached location and re-broadcast on the next attempt.
			c.res.Invalidate(dest)
			continue
		}
		return Reply{}, err
	}
	return Reply{}, fmt.Errorf("rpc: %v after %d attempts: %w", dest, c.cfg.Retries+1, lastErr)
}

// attempt sends one request and waits one timeout for the reply.
func (c *Client) attempt(machine amnet.MachineID, dest cap.Port, payload []byte, sig cap.Port) (Reply, error) {
	// Fresh one-shot reply port per attempt: stray replies from a
	// previous timed-out attempt cannot be confused with this one.
	gPrime := cap.Port(crypto.Rand48(c.cfg.Source))
	l, err := c.fb.Get(gPrime, false)
	if err != nil {
		return Reply{}, fmt.Errorf("rpc: reply port: %w", err)
	}
	defer l.Close()

	msg := fbox.Message{Dest: dest, Reply: gPrime, Sig: sig, Payload: payload}
	if err := c.fb.Put(machine, msg); err != nil {
		return Reply{}, fmt.Errorf("rpc: put: %w", err)
	}
	select {
	case m, ok := <-l.Recv():
		if !ok {
			return Reply{}, fbox.ErrClosed
		}
		rep, err := DecodeReply(m.Payload)
		if err != nil {
			return Reply{}, err
		}
		rep, err = openReplyCap(c.cfg.Sealer, rep, m.From)
		if err != nil {
			return Reply{}, fmt.Errorf("rpc: opening reply capability: %w", err)
		}
		return rep, nil
	case <-time.After(c.cfg.Timeout):
		return Reply{}, ErrTimeout
	}
}

// Call is the convenience most callers want: it sends op on the
// object named by capability c0 (routing to c0.Server) and converts
// non-OK statuses into *StatusError values.
func (c *Client) Call(c0 cap.Capability, op uint16, data []byte) (Reply, error) {
	rep, err := c.Trans(c0.Server, Request{Cap: c0, Op: op, Data: data})
	if err != nil {
		return Reply{}, err
	}
	if rep.Status != StatusOK {
		return rep, &StatusError{Status: rep.Status, Detail: string(rep.Data)}
	}
	return rep, nil
}

// Restrict asks the server to fabricate a weaker capability (OpRestrict).
func (c *Client) Restrict(c0 cap.Capability, mask cap.Rights) (cap.Capability, error) {
	rep, err := c.Call(c0, OpRestrict, []byte{byte(mask)})
	if err != nil {
		return cap.Nil, err
	}
	return rep.Cap, nil
}

// Revoke asks the server to re-key the object (OpRevoke), invalidating
// every outstanding capability; the fresh owner capability is returned.
func (c *Client) Revoke(c0 cap.Capability) (cap.Capability, error) {
	rep, err := c.Call(c0, OpRevoke, nil)
	if err != nil {
		return cap.Nil, err
	}
	return rep.Cap, nil
}

// Validate asks the server which rights the capability conveys
// (OpValidate).
func (c *Client) Validate(c0 cap.Capability) (cap.Rights, error) {
	rep, err := c.Call(c0, OpValidate, nil)
	if err != nil {
		return 0, err
	}
	if len(rep.Data) != 1 {
		return 0, fmt.Errorf("%w: validate reply %d bytes", ErrBadMessage, len(rep.Data))
	}
	return cap.Rights(rep.Data[0]), nil
}
