package rpc

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"amoeba/internal/amnet"
	"amoeba/internal/cap"
	"amoeba/internal/crypto"
	"amoeba/internal/fbox"
	"amoeba/internal/locate"
	"amoeba/internal/wire"
)

// ErrTimeout is returned when a transaction exhausts its retries
// without a reply.
var ErrTimeout = errors.New("rpc: transaction timed out")

// NoRetries is the ClientConfig.Retries sentinel for "no retries at
// all": a zero value means "use the default" (2), so configurations
// that genuinely want a single attempt say Retries: NoRetries.
// Per-call, WithRetries(0) expresses the same thing exactly.
const NoRetries = -1

// ClientConfig tunes a Client. The zero value gets sensible defaults
// (see the package documentation for the full default table).
type ClientConfig struct {
	// Timeout bounds each attempt's wait for a reply (default 1s).
	Timeout time.Duration
	// Retries is how many additional attempts follow a timeout
	// (default 2; NoRetries for none). Each retry re-locates the
	// destination port, so a migrated or restarted server is found
	// again.
	Retries int
	// RetryBackoff is an optional pause inserted before each retry
	// (default 0). The pause is cut short if the call's context is
	// cancelled.
	RetryBackoff time.Duration
	// Source supplies reply-port randomness (default crypto/rand).
	Source crypto.Source
	// Sealer, if set, encrypts the capability in every request header
	// under the §2.4 key matrix (and decrypts capabilities in replies).
	// The server must share the matrix (Server.SetSealer).
	Sealer CapSealer
}

func (c ClientConfig) withDefaults() ClientConfig {
	if c.Timeout <= 0 {
		c.Timeout = time.Second
	}
	switch {
	case c.Retries < 0:
		// NoRetries (or any negative): exactly one attempt.
		c.Retries = 0
	case c.Retries == 0:
		c.Retries = 2
	}
	if c.RetryBackoff < 0 {
		c.RetryBackoff = 0
	}
	if c.Source == nil {
		c.Source = crypto.SystemSource()
	}
	return c
}

// callOptions is the per-transaction view of the configuration after
// CallOptions are applied.
type callOptions struct {
	timeout  time.Duration
	retries  int
	backoff  time.Duration
	sig      cap.Port
	rawStale bool
}

// CallOption tunes one transaction, overriding the client-wide
// configuration for that call only.
type CallOption func(*callOptions)

// WithTimeout bounds each attempt's wait for a reply on this call.
func WithTimeout(d time.Duration) CallOption {
	return func(o *callOptions) {
		if d > 0 {
			o.timeout = d
		}
	}
}

// WithRetries sets how many additional attempts follow a timeout on
// this call. WithRetries(0) means exactly one attempt — unlike the
// zero value of ClientConfig.Retries, it is honoured literally.
func WithRetries(n int) CallOption {
	return func(o *callOptions) {
		if n < 0 {
			n = 0
		}
		o.retries = n
	}
}

// WithSigner signs the transaction: the signer's secret rides in the
// message header and is transformed to F(S) by the F-box (§2.2).
// It absorbs the old TransSigned entry point.
func WithSigner(s fbox.Signer) CallOption {
	return func(o *callOptions) { o.sig = s.Secret() }
}

// WithRawStale disables the client's automatic StatusStale failover
// (evict the cached route and retry elsewhere) for this call: the
// stale reply is handed back as-is. Protocols that USE StatusStale as
// a first-class answer — the replication stream, where a stale ack is
// how a deposed shipper learns about the new term — must see it raw,
// not have the transport chase a successor on their behalf.
func WithRawStale() CallOption {
	return func(o *callOptions) { o.rawStale = true }
}

// Client performs blocking transactions through an F-box. It is safe
// for concurrent use; each transaction has its own one-shot reply port.
type Client struct {
	fb  *fbox.FBox
	res *locate.Resolver
	cfg ClientConfig
	// reqID mints wire request identifiers: seeded with process
	// randomness in the high bits so IDs from different client
	// processes don't collide in a merged access log, incremented per
	// transaction.
	reqID atomic.Uint64
}

// NewClient builds a client over fb, resolving ports with res.
func NewClient(fb *fbox.FBox, res *locate.Resolver, cfg ClientConfig) *Client {
	c := &Client{fb: fb, res: res, cfg: cfg.withDefaults()}
	c.reqID.Store(crypto.Rand48(c.cfg.Source) << 16)
	return c
}

// reqIDCtxKey carries a request ID through a handler's context so
// nested RPC reuses the originating request's identifier.
type reqIDCtxKey struct{}

// ContextWithRequestID tags ctx with a wire request ID. The rpc server
// does this for every budgeted request it dispatches; clients inside
// handlers then mint nothing and the whole call tree shares one ID.
func ContextWithRequestID(ctx context.Context, id uint64) context.Context {
	return context.WithValue(ctx, reqIDCtxKey{}, id)
}

// RequestIDFromContext returns the request ID riding ctx (0 if none).
func RequestIDFromContext(ctx context.Context) uint64 {
	id, _ := ctx.Value(reqIDCtxKey{}).(uint64)
	return id
}

// requestID picks the wire ID for a transaction: the explicit one if
// the caller set it, the originating request's if we are inside a
// handler, a freshly minted one otherwise.
func (c *Client) requestID(ctx context.Context, explicit uint64) uint64 {
	if explicit != 0 {
		return explicit
	}
	if id := RequestIDFromContext(ctx); id != 0 {
		return id
	}
	return c.reqID.Add(1)
}

// Resolver exposes the client's locate cache (for seeding and stats).
func (c *Client) Resolver() *locate.Resolver { return c.res }

// options applies the per-call options over the client defaults.
func (c *Client) options(opts []CallOption) callOptions {
	o := callOptions{
		timeout: c.cfg.Timeout,
		retries: c.cfg.Retries,
		backoff: c.cfg.RetryBackoff,
	}
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// Trans performs one blocking transaction: locate the server machine,
// PUT the request at the destination port with a fresh reply port, and
// wait for the reply. On timeout the locate cache entry is invalidated
// and the transaction retried.
//
// The context governs the whole transaction: cancellation or deadline
// expiry aborts the locate, the reply wait and any retry backoff,
// returning ctx.Err(). When the context carries a deadline, the
// remaining budget also rides in the request header so servers that
// issue nested RPC inherit it (see Request.Budget).
func (c *Client) Trans(ctx context.Context, dest cap.Port, req Request, opts ...CallOption) (Reply, error) {
	rep, _, err := c.transact(ctx, dest, opts, routeOf(dest, req.Cap), func(machine amnet.MachineID) (*wire.Buf, error) {
		return c.encodeRequest(ctx, req, machine, nil)
	})
	return rep, err
}

// route is the shard-routing key of a transaction: the object number
// the request names, when it names one on the destination port. The
// resolver routes (port, object) to the object's home shard; an
// objectless request (object creation, echo) is spread round-robin.
type route struct {
	obj    uint32
	hasObj bool
}

// routeOf derives the routing key from the request's capability.
func routeOf(dest cap.Port, c0 cap.Capability) route {
	if c0 != cap.Nil && c0.Server == dest {
		return route{obj: c0.Object, hasObj: true}
	}
	return route{}
}

// encodeRequest seals and encodes a request into a pooled buffer with
// headroom for the layers below. The request data is req.Data followed
// by parts, appended straight into the buffer.
func (c *Client) encodeRequest(ctx context.Context, req Request, machine amnet.MachineID, parts [][]byte) (*wire.Buf, error) {
	sealed, err := sealRequestCap(c.cfg.Sealer, req, machine)
	if err != nil {
		return nil, fmt.Errorf("rpc: sealing capability: %w", err)
	}
	sealed.Budget = remainingBudget(ctx)
	sealed.ID = c.requestID(ctx, req.ID)
	size := reqHeader + len(sealed.Data)
	for _, p := range parts {
		size += len(p)
	}
	b := wire.Get(wire.DefaultHeadroom, size)
	appendRequest(b, sealed, parts...)
	return b, nil
}

// transact is the engine under Trans and Batch: locate the server
// machine, build the payload for it (sealing needs the destination
// machine, so the payload is rebuilt per attempt), PUT, await the
// reply, retry on timeout. It returns the machine that answered so
// callers can open per-item sealed capabilities.
func (c *Client) transact(ctx context.Context, dest cap.Port, opts []CallOption, rt route, build func(amnet.MachineID) (*wire.Buf, error)) (Reply, amnet.MachineID, error) {
	o := c.options(opts)
	var lastErr error
	// backoffNext marks retries that genuinely wait something out — a
	// timeout, a no-route, an unanswered LOCATE — as the only ones that
	// sleep RetryBackoff before the next attempt. StatusStale and
	// StatusWrongShard retries re-route immediately (their "no backoff"
	// promise used to be broken by an unconditional top-of-loop sleep),
	// and StatusOverload paces itself with overloadBackoff below.
	backoffNext := false
	// locRetries budgets the extra LOCATE rounds after ErrNotFound. One
	// per authority: a StatusStale eviction re-arms it, so a broadcast
	// burned on the old topology (say, a WrongShard refresh landing
	// mid-election) cannot starve the re-locate the NEW primary needs.
	locRetries := 1
	for attempt := 0; attempt <= o.retries; attempt++ {
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return Reply{}, 0, fmt.Errorf("rpc: %v after %d attempts: %w (last error: %v)", dest, attempt, err, lastErr)
			}
			return Reply{}, 0, fmt.Errorf("rpc: %v: %w", dest, err)
		}
		if backoffNext && o.backoff > 0 {
			if err := sleepCtx(ctx, o.backoff); err != nil {
				return Reply{}, 0, fmt.Errorf("rpc: %v: %w", dest, err)
			}
		}
		backoffNext = false
		machine, err := c.res.LookupObject(ctx, dest, rt.obj, rt.hasObj)
		if err != nil {
			lastErr = fmt.Errorf("rpc: locating %v: %w", dest, err)
			if errors.Is(err, locate.ErrNotFound) && locRetries > 0 && attempt < o.retries {
				// Nobody answered the broadcast — the failover window
				// between a crash and its standby's promotion looks
				// exactly like this. One extra round of LOCATE attempts
				// (the resolver already retried internally) often lands
				// after the promotion; more per authority would multiply
				// the locate budget by the retry count for genuinely-gone
				// servers. Promotions take real time, so this retry DOES
				// back off.
				locRetries--
				backoffNext = true
				continue
			}
			return Reply{}, 0, lastErr
		}
		payload, err := build(machine)
		if err != nil {
			return Reply{}, 0, err
		}
		rep, err := c.attempt(ctx, machine, dest, payload, o)
		if err == nil {
			if rep.Status == StatusStale && !o.rawStale && attempt < o.retries {
				// The answering machine's authority is gone for good — a
				// fenced or deposed old primary after a failover. Unlike
				// overload there is nothing to wait out, so skip the
				// backoff: evict the cached route and re-LOCATE at once.
				// By now the successor answers the broadcast, so the
				// client fails over in one extra round trip instead of
				// camping on the corpse until its deadline lapses. The
				// authority changed, so the locate budget re-arms: any
				// broadcast burned before this reply went to a topology
				// that no longer exists.
				c.res.Evict(dest, machine)
				if locRetries < 1 {
					locRetries = 1
				}
				lastErr = &StatusError{Status: StatusStale, Detail: string(rep.Data)}
				continue
			}
			if rep.Status == StatusWrongShard {
				// We routed on a stale shard map — the object migrated,
				// or the map changed under us. Nothing was executed.
				// The reply carries the server's current generation;
				// record both sides' generations so an exhausted call
				// reports how far behind the client was, not a blind
				// status.
				srvGen := WrongShardGen(rep.Data)
				cliGen := c.res.MapGen(dest)
				lastErr = &StatusError{
					Status: StatusWrongShard,
					Detail: fmt.Sprintf("server map generation %d, client had %d at send", srvGen, cliGen),
				}
				if attempt >= o.retries {
					break
				}
				// Refresh the cached map (no broadcast) and re-route; no
				// backoff, the next attempt routes on a map at least
				// that new.
				c.res.Refresh(dest, srvGen)
				continue
			}
			if rep.Status != StatusOverload || attempt >= o.retries {
				return rep, machine, nil
			}
			// The server shed the request before executing it, so a
			// retry is always safe — but only worth the wire time if
			// the caller's deadline can still be met. When the budget
			// is nearly gone, hand the shed reply back instead of
			// burning the last of the deadline on backoff.
			d := overloadBackoff(o.backoff, attempt)
			if dl, ok := ctx.Deadline(); ok {
				left := time.Until(dl)
				if left <= minOverloadRetryBudget {
					return rep, machine, nil
				}
				if d > left/4 {
					d = left / 4
				}
			}
			lastErr = &StatusError{Status: StatusOverload, Detail: string(rep.Data)}
			if d > 0 {
				if serr := sleepCtx(ctx, d); serr != nil {
					return rep, machine, nil // deadline hit mid-backoff
				}
			}
			continue
		}
		lastErr = err
		if errors.Is(err, ErrTimeout) || errors.Is(err, amnet.ErrNoRoute) {
			// The server may have moved or restarted: forget the cached
			// location and re-broadcast on the next attempt. A crashed
			// machine shows up either as silence (timeout) or, on the
			// simulated LAN, as no-route — both mean the same thing.
			// Evict, not Invalidate: only the machine THIS attempt
			// failed against is suspect; an entry a concurrent lookup
			// refreshed to the server's new home stays. This is the
			// wait-something-out case RetryBackoff exists for.
			c.res.Evict(dest, machine)
			backoffNext = true
			continue
		}
		return Reply{}, 0, err
	}
	return Reply{}, 0, fmt.Errorf("rpc: %v after %d attempts: %w", dest, o.retries+1, lastErr)
}

// Batch performs several sub-requests in ONE transaction frame: the
// requests are packed into an OpBatch message, the server fans them
// out across its worker pool, and the replies come back together, in
// order. A multi-object operation — the flat file server fetching
// every block of a file — costs one network round trip instead of N.
//
// The whole frame shares one reply port, one timeout and one retry
// budget: a retry re-sends (and the server re-executes) every
// sub-request, so batches of non-idempotent operations carry the same
// at-least-once caveat as single transactions. Per-sub-request
// failures are reported in each Reply.Status; Batch itself returns an
// error only for transport-level failures or a rejected batch frame.
//
// The packed payload must fit the network MTU; callers splitting bulk
// work should size against MaxBatchBytes and MaxBatchItems.
func (c *Client) Batch(ctx context.Context, dest cap.Port, reqs []Request, opts ...CallOption) ([]Reply, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	if len(reqs) > MaxBatchItems {
		return nil, fmt.Errorf("rpc: batch of %d requests exceeds %d", len(reqs), MaxBatchItems)
	}
	// A batch routes on its first item's capability: mixed-shard
	// batches are a documented non-goal (callers split per shard).
	rep, machine, err := c.transact(ctx, dest, opts, routeOf(dest, reqs[0].Cap), func(machine amnet.MachineID) (*wire.Buf, error) {
		budget := remainingBudget(ctx)
		// One wire ID for the frame and every item in it: the batch is
		// one logical request as far as correlation goes.
		id := c.requestID(ctx, 0)
		size := 0
		for _, r := range reqs {
			size += reqHeader + len(r.Data)
		}
		if size > MaxBatchBytes {
			return nil, fmt.Errorf("rpc: batch payload %d bytes exceeds %d", size, MaxBatchBytes)
		}
		// The whole frame — outer request, item count, every sealed
		// sub-request — is encoded into one pooled buffer; no
		// intermediate per-item slices.
		dataLen := 2 + size + 4*len(reqs)
		b := wire.Get(wire.DefaultHeadroom, reqHeader+dataLen)
		appendRequestHeader(b, OpBatch, cap.Nil, budget, id, dataLen)
		appendBatchCount(b, len(reqs))
		for i, r := range reqs {
			sealed, err := sealRequestCap(c.cfg.Sealer, r, machine)
			if err != nil {
				b.Release()
				return nil, fmt.Errorf("rpc: sealing batch item %d: %w", i, err)
			}
			sealed.Budget = budget
			sealed.ID = id
			appendBatchItemHeader(b, reqHeader+len(sealed.Data))
			appendRequest(b, sealed)
		}
		return b, nil
	})
	if err != nil {
		return nil, err
	}
	if rep.Status != StatusOK {
		return nil, &StatusError{Status: rep.Status, Detail: string(rep.Data)}
	}
	raw, err := DecodeBatchItems(rep.Data)
	if err != nil {
		return nil, err
	}
	if len(raw) != len(reqs) {
		return nil, fmt.Errorf("%w: batch reply has %d items, want %d", ErrBadMessage, len(raw), len(reqs))
	}
	out := make([]Reply, len(raw))
	for i, b := range raw {
		sub, err := DecodeReply(b)
		if err != nil {
			return nil, fmt.Errorf("rpc: batch reply item %d: %w", i, err)
		}
		sub, err = openReplyCap(c.cfg.Sealer, sub, machine)
		if err != nil {
			return nil, fmt.Errorf("rpc: opening batch reply capability %d: %w", i, err)
		}
		out[i] = sub
	}
	return out, nil
}

// minOverloadRetryBudget is the deadline budget below which a shed
// reply is returned rather than retried: too little time remains for a
// retry to plausibly queue, execute and reply.
const minOverloadRetryBudget = 2 * time.Millisecond

// overloadBackoff is the pause before retrying a shed request:
// exponential from the configured backoff (or a small default), capped
// so a burst of sheds converges on a spread-out retry pattern instead
// of a synchronized stampede back into the queue.
func overloadBackoff(base time.Duration, attempt int) time.Duration {
	if base <= 0 {
		base = 2 * time.Millisecond
	}
	d := base << uint(attempt)
	if d > 50*time.Millisecond {
		d = 50 * time.Millisecond
	}
	return d
}

// remainingBudget converts a context deadline into the wire budget: the
// time left until the deadline, or 0 when the context has none.
func remainingBudget(ctx context.Context) time.Duration {
	dl, ok := ctx.Deadline()
	if !ok {
		return 0
	}
	if left := time.Until(dl); left > 0 {
		return left
	}
	return time.Nanosecond // expired: smallest non-zero budget
}

// sleepCtx waits d, returning early with ctx.Err() on cancellation.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// timerPool recycles attempt timers: with Go's post-1.23 timer
// semantics Reset after Stop is race-free, so one timer serves many
// transactions instead of three allocations per attempt.
var timerPool sync.Pool

func startTimer(d time.Duration) *time.Timer {
	if t, ok := timerPool.Get().(*time.Timer); ok {
		t.Reset(d)
		return t
	}
	return time.NewTimer(d)
}

func stopTimer(t *time.Timer) {
	t.Stop()
	timerPool.Put(t)
}

// attempt sends one request and waits one timeout for the reply. It
// owns payload: the buffer is consumed by the PUT (or released on the
// paths that never reach it).
func (c *Client) attempt(ctx context.Context, machine amnet.MachineID, dest cap.Port, payload *wire.Buf, o callOptions) (Reply, error) {
	// Fresh one-shot reply port per attempt: stray replies from a
	// previous timed-out attempt cannot be confused with this one.
	gPrime := cap.Port(crypto.Rand48(c.cfg.Source))
	l, err := c.fb.GetReply(gPrime)
	if err != nil {
		payload.Release()
		return Reply{}, fmt.Errorf("rpc: reply port: %w", err)
	}
	defer l.Close()

	if err := c.fb.PutBuf(machine, dest, gPrime, o.sig, payload); err != nil {
		return Reply{}, fmt.Errorf("rpc: put: %w", err)
	}
	timer := startTimer(o.timeout)
	defer stopTimer(timer)
	select {
	case m, ok := <-l.Recv():
		if !ok {
			return Reply{}, fbox.ErrClosed
		}
		rep, err := DecodeReply(m.Payload)
		if err != nil {
			m.Release()
			return Reply{}, err
		}
		rep, err = openReplyCap(c.cfg.Sealer, rep, m.From)
		if err != nil {
			m.Release()
			return Reply{}, fmt.Errorf("rpc: opening reply capability: %w", err)
		}
		// Copy the results out of the pooled frame before releasing
		// it: the caller owns rep.Data outright.
		rep.Data = append([]byte(nil), rep.Data...)
		m.Release()
		return rep, nil
	case <-ctx.Done():
		return Reply{}, fmt.Errorf("rpc: %v: %w", dest, ctx.Err())
	case <-timer.C:
		return Reply{}, ErrTimeout
	}
}

// Call is the convenience most callers want: it sends op on the
// object named by capability c0 (routing to c0.Server) and converts
// non-OK statuses into *StatusError values.
func (c *Client) Call(ctx context.Context, c0 cap.Capability, op uint16, data []byte, opts ...CallOption) (Reply, error) {
	rep, err := c.Trans(ctx, c0.Server, Request{Cap: c0, Op: op, Data: data}, opts...)
	if err != nil {
		return Reply{}, err
	}
	if rep.Status != StatusOK {
		return rep, &StatusError{Status: rep.Status, Detail: string(rep.Data)}
	}
	return rep, nil
}

// CallParts is Call with a vectored payload: the request data is the
// concatenation of parts, appended piece by piece into the pooled wire
// buffer. Typed service clients use it to lay a small parameter header
// (a stack array) in front of bulk data without first gluing them into
// a fresh intermediate slice.
func (c *Client) CallParts(ctx context.Context, c0 cap.Capability, op uint16, parts ...[]byte) (Reply, error) {
	req := Request{Cap: c0, Op: op}
	rep, _, err := c.transact(ctx, c0.Server, nil, routeOf(c0.Server, c0), func(machine amnet.MachineID) (*wire.Buf, error) {
		return c.encodeRequest(ctx, req, machine, parts)
	})
	if err != nil {
		return Reply{}, err
	}
	if rep.Status != StatusOK {
		return rep, &StatusError{Status: rep.Status, Detail: string(rep.Data)}
	}
	return rep, nil
}

// TransSigned is Trans with a signature.
//
// Deprecated: use Trans(ctx, dest, req, WithSigner(signer)), which
// also accepts a context.
func (c *Client) TransSigned(dest cap.Port, req Request, signer fbox.Signer) (Reply, error) {
	return c.Trans(context.Background(), dest, req, WithSigner(signer))
}

// Restrict asks the server to fabricate a weaker capability (OpRestrict).
func (c *Client) Restrict(ctx context.Context, c0 cap.Capability, mask cap.Rights, opts ...CallOption) (cap.Capability, error) {
	rep, err := c.Call(ctx, c0, OpRestrict, []byte{byte(mask)}, opts...)
	if err != nil {
		return cap.Nil, err
	}
	return rep.Cap, nil
}

// Revoke asks the server to re-key the object (OpRevoke), invalidating
// every outstanding capability; the fresh owner capability is returned.
func (c *Client) Revoke(ctx context.Context, c0 cap.Capability, opts ...CallOption) (cap.Capability, error) {
	rep, err := c.Call(ctx, c0, OpRevoke, nil, opts...)
	if err != nil {
		return cap.Nil, err
	}
	return rep.Cap, nil
}

// Validate asks the server which rights the capability conveys
// (OpValidate).
func (c *Client) Validate(ctx context.Context, c0 cap.Capability, opts ...CallOption) (cap.Rights, error) {
	rep, err := c.Call(ctx, c0, OpValidate, nil, opts...)
	if err != nil {
		return 0, err
	}
	if len(rep.Data) != 1 {
		return 0, fmt.Errorf("%w: validate reply %d bytes", ErrBadMessage, len(rep.Data))
	}
	return cap.Rights(rep.Data[0]), nil
}
