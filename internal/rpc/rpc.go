// Package rpc implements the Amoeba remote-operation model of §2.1:
// clients perform operations on objects by sending a request message to
// the object's server and blocking until the reply arrives — "a simple
// remote procedure call mechanism" with no connections, virtual
// circuits, or any long-lived communication structure.
//
// The standard message format provides a place for one capability in
// the header (the object operated on), an operation code, and
// parameters; additional capabilities travel in the data field as the
// application sees fit.
//
// Each transaction uses a fresh one-shot reply port: the client picks a
// random get-port G', includes it in the request (the F-box transmits
// P' = F(G') per §2.2), and the server PUTs the reply to P'.
//
// # Context-first API
//
// Every client entry point takes a context.Context first and accepts
// per-call options: Trans(ctx, dest, req, opts...) and
// Call(ctx, c0, op, data, opts...). Cancellation or deadline expiry
// aborts the locate broadcast, the reply wait and any retry backoff,
// returning ctx.Err(). A context deadline additionally rides in the
// request header as a remaining-time budget (Request.Budget), so a
// server handler that issues nested RPC — the flat file server calling
// the block server, say — inherits the original caller's deadline.
//
// # Configuration defaults
//
// ClientConfig zero values mean "use the default"; explicit per-call
// options are honoured literally:
//
//	Setting               Zero value means        Express "none"/override
//	ClientConfig.Timeout       1s                 WithTimeout(d) per call
//	ClientConfig.Retries       2                  Retries: NoRetries, or WithRetries(0)
//	ClientConfig.RetryBackoff  0 (no backoff)     —
//	ClientConfig.Source        crypto/rand        any crypto.Source
//	ClientConfig.Sealer        nil (no sealing)   any CapSealer
//
// The Retries zero value historically swallowed an explicit 0; use the
// NoRetries sentinel (client-wide) or WithRetries(0) (per call) for
// single-attempt transactions.
package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"amoeba/internal/amnet"
	"amoeba/internal/cap"
	"amoeba/internal/obs"
	"amoeba/internal/wire"
)

// Status is the outcome of a transaction, carried in every reply.
// StatusOK is deliberately the zero value so a zero Reply is a success.
type Status uint16

const (
	// StatusOK means the operation succeeded.
	StatusOK Status = iota
	// StatusBadCapability means the capability failed validation:
	// forged, tampered, revoked, or for an unknown object.
	StatusBadCapability
	// StatusNoPermission means the capability is genuine but lacks a
	// right the operation demands.
	StatusNoPermission
	// StatusBadRequest means the parameters were malformed.
	StatusBadRequest
	// StatusNoSuchOp means the server has no handler for the opcode.
	StatusNoSuchOp
	// StatusServerError means the operation failed inside the server.
	StatusServerError
	// StatusConflict means the request is out of step with the server's
	// state and retrying it unchanged cannot help; the reply data says
	// where the server stands (the replication channel uses it for
	// sequence gaps).
	StatusConflict
	// StatusOverload means admission control refused the request before
	// it touched the worker pool: either its remaining deadline budget
	// could not survive the current queue wait, or the server is
	// draining. The work was NOT executed — retrying (elsewhere, or
	// after backoff) is always safe. Clients surface it as ErrOverload.
	StatusOverload
	// StatusStale means the sender's authority is out of date: a newer
	// epoch has superseded it (the replication channel uses it to fence
	// a deposed primary's stream). Retrying unchanged cannot help.
	StatusStale
	// StatusWrongShard means this machine does not own the object the
	// capability names: the client routed on a stale shard map. The
	// reply data carries the server's current map generation (8 bytes,
	// big-endian); the client refreshes its map and retries against
	// the right shard. The work was NOT executed.
	StatusWrongShard
)

// String renders the status.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusBadCapability:
		return "bad capability"
	case StatusNoPermission:
		return "no permission"
	case StatusBadRequest:
		return "bad request"
	case StatusNoSuchOp:
		return "no such operation"
	case StatusServerError:
		return "server error"
	case StatusConflict:
		return "conflict"
	case StatusOverload:
		return "overload"
	case StatusStale:
		return "stale epoch"
	case StatusWrongShard:
		return "wrong shard"
	default:
		return fmt.Sprintf("status(%d)", uint16(s))
	}
}

// Err converts a non-OK status into an error (nil for StatusOK).
func (s Status) Err() error {
	if s == StatusOK {
		return nil
	}
	return &StatusError{Status: s}
}

// ErrOverload is the typed face of StatusOverload: admission control
// shed the request before executing it. Test with errors.Is; the
// match works through the *StatusError the client returns.
var ErrOverload = errors.New("rpc: overloaded (request shed before execution)")

// ErrStaleAuthority is the typed face of StatusStale on the serving
// side: the answering server's AUTHORITY is gone — deposed, sealed, a
// lapsed lease, a wedged log — and no amount of retrying against the
// same machine can help. Fence and admission-gate predicates wrap this
// sentinel (errors.Is) to tell the transport "shed me as StatusStale,
// not StatusOverload", which in turn tells clients to evict the cached
// route and re-LOCATE immediately instead of backing off against a
// machine that will never acknowledge again.
var ErrStaleAuthority = errors.New("rpc: stale authority (superseded by a newer epoch)")

// StatusError wraps a non-OK Status as a Go error.
type StatusError struct {
	Status Status
	// Detail optionally carries the server's message (reply data).
	Detail string
}

// Error implements error.
func (e *StatusError) Error() string {
	if e.Detail != "" {
		return fmt.Sprintf("rpc: %s: %s", e.Status, e.Detail)
	}
	return "rpc: " + e.Status.String()
}

// Is maps overload statuses onto ErrOverload (and stale ones onto
// ErrStaleAuthority) so callers can write errors.Is(err, rpc.ErrOverload)
// without fishing out the status.
func (e *StatusError) Is(target error) bool {
	switch target {
	case ErrOverload:
		return e.Status == StatusOverload
	case ErrStaleAuthority:
		return e.Status == StatusStale
	}
	return false
}

// IsStatus reports whether err is a StatusError with the given status.
func IsStatus(err error, s Status) bool {
	var se *StatusError
	return errors.As(err, &se) && se.Status == s
}

// StatusFromErr maps the capability-layer errors onto wire statuses.
// Servers use it so every handler reports uniformly.
func StatusFromErr(err error) Status {
	switch {
	case err == nil:
		return StatusOK
	case errors.Is(err, cap.ErrPermission):
		return StatusNoPermission
	case errors.Is(err, cap.ErrInvalidCapability), errors.Is(err, cap.ErrNoSuchObject):
		return StatusBadCapability
	default:
		return StatusServerError
	}
}

// Request is a client's transaction request.
type Request struct {
	// Cap names (and authorizes the operation on) the object.
	Cap cap.Capability
	// Op is the operation code; its meaning is private to the server.
	Op uint16
	// ID is the client-minted request identifier riding the wire
	// header so one logical request can be correlated across machines
	// (access logs, metrics, nested calls). The transport mints one
	// when it is zero — and reuses the originating request's ID for
	// nested RPC issued from inside a handler — so application code
	// never sets it.
	ID uint64
	// Budget is the time remaining until the caller's deadline, set by
	// the transport from the call's context (0 = no deadline). It is
	// carried on the wire with millisecond resolution so a handler that
	// performs nested RPC can bound the whole call tree by the original
	// caller's deadline. Application code never sets it.
	Budget time.Duration
	// Data carries the parameters.
	Data []byte
}

// Reply is a server's transaction reply.
type Reply struct {
	// Status reports the outcome.
	Status Status
	// Cap optionally carries a capability (e.g. for a created object).
	Cap cap.Capability
	// Data carries the results; for non-OK statuses it may carry a
	// human-readable detail string.
	Data []byte
	// Buf, when set by a server handler (OkReplyBuf), is the pooled
	// buffer backing Data; the transport releases it after encoding the
	// reply onto the wire, so handlers can serve results out of pooled
	// scratch instead of fresh allocations. Never set on the client
	// side: replies returned from Trans/Call own their Data outright.
	Buf *wire.Buf
}

// ErrReply builds an error reply with a detail message.
func ErrReply(s Status, detail string) Reply {
	return Reply{Status: s, Data: []byte(detail)}
}

// ErrReplyFromErr builds an error reply from a Go error.
func ErrReplyFromErr(err error) Reply {
	return Reply{Status: StatusFromErr(err), Data: []byte(err.Error())}
}

// OkReply builds a success reply carrying data.
func OkReply(data []byte) Reply { return Reply{Status: StatusOK, Data: data} }

// NewReplyBuf returns a pooled buffer sized for a handler result of
// `capacity` bytes, with headroom reserved for the reply header and
// the frame headers below it — so a reply built here ships on the
// wire from this very backing array, never copied again. Pair with
// OkReplyBuf.
func NewReplyBuf(capacity int) *wire.Buf {
	return wire.Get(wire.DefaultHeadroom+wireHeader, capacity)
}

// OkReplyBuf builds a success reply whose data lives in a pooled
// buffer (ideally from NewReplyBuf) that the transport consumes when
// the reply is framed — the zero-copy path for handlers producing
// bulk results (the block server reads disk blocks straight into one).
func OkReplyBuf(b *wire.Buf) Reply {
	return Reply{Status: StatusOK, Data: b.Bytes(), Buf: b}
}

// releaseBuf returns a handler reply's pooled scratch, if any.
func (r Reply) releaseBuf() {
	if r.Buf != nil {
		r.Buf.Release()
	}
}

// CapReply builds a success reply carrying a capability.
func CapReply(c cap.Capability) Reply { return Reply{Status: StatusOK, Cap: c} }

// WrongShardReply builds a StatusWrongShard reply stamped with the
// server's current shard-map generation. Only the misroute path pays
// the 8-byte allocation.
func WrongShardReply(gen uint64) Reply {
	data := make([]byte, 8)
	binary.BigEndian.PutUint64(data, gen)
	return Reply{Status: StatusWrongShard, Data: data}
}

// WrongShardGen extracts the map generation from a StatusWrongShard
// reply's data (0 if the payload is malformed — older, still valid).
func WrongShardGen(data []byte) uint64 {
	if len(data) < 8 {
		return 0
	}
	return binary.BigEndian.Uint64(data)
}

// Standard opcodes offered by every server that calls
// Server.ServeTable: capability maintenance is uniform across services.
const (
	// OpRestrict asks the server to fabricate a capability with fewer
	// rights: data is a one-byte mask; the new capability returns in
	// Reply.Cap (§2.3: "send the capability back to the server along
	// with a bit mask").
	OpRestrict uint16 = 0xfff0
	// OpRevoke asks the server to replace the object's random number,
	// invalidating all outstanding capabilities; the fresh owner
	// capability returns in Reply.Cap.
	OpRevoke uint16 = 0xfff1
	// OpValidate asks the server to validate the capability and report
	// the rights it conveys (one byte). Tooling uses it.
	OpValidate uint16 = 0xfff2
	// OpEcho returns the request data unchanged (diagnostics, benches).
	OpEcho uint16 = 0xfffe
	// OpBatch packs several sub-requests into one transaction frame:
	// data is count(2) followed by count length-prefixed encoded
	// requests; the reply data is count(2) followed by count
	// length-prefixed encoded replies in the same order. The server
	// implements it natively (fanning the sub-requests out across its
	// worker pool); Handle refuses to register it. Batches may not
	// nest. See Client.Batch.
	OpBatch uint16 = 0xfff3
)

func init() {
	// The standard opcodes name themselves in the shared obs table, the
	// one source metrics labels and access-log dumps both read.
	obs.RegisterOps(map[uint16]string{
		OpRestrict: "restrict",
		OpRevoke:   "revoke",
		OpValidate: "validate",
		OpBatch:    "batch",
		OpEcho:     "echo",
	})
}

// StatusName renders a wire status value for metric and log labels —
// the func(uint16) obs wants, so obs itself stays below rpc.
func StatusName(st uint16) string { return Status(st).String() }

// MaxBatchItems bounds the sub-requests in one batch (the wire count
// is 16-bit; the practical bound is the network MTU anyway).
const MaxBatchItems = 1 << 12

// MaxBatchBytes is the largest total payload a batch should carry:
// the network MTU less headroom for the outer request header and
// per-item framing. Clients splitting bulk transfers into batches
// (the flat file server's block fetches) size against it.
const MaxBatchBytes = amnet.MTU - 1024

// EncodeBatchItems packs length-prefixed items into a batch payload:
// count(2) ∥ count × (len(4) ∥ item).
func EncodeBatchItems(items [][]byte) []byte {
	size := 2
	for _, it := range items {
		size += 4 + len(it)
	}
	buf := make([]byte, 0, size)
	var cnt [2]byte
	binary.BigEndian.PutUint16(cnt[:], uint16(len(items)))
	buf = append(buf, cnt[:]...)
	for _, it := range items {
		var l [4]byte
		binary.BigEndian.PutUint32(l[:], uint32(len(it)))
		buf = append(buf, l[:]...)
		buf = append(buf, it...)
	}
	return buf
}

// appendBatchCount writes a batch payload's leading item count into
// the pooled buffer — the zero-alloc twin of EncodeBatchItems' count
// field; keep the layouts in lockstep.
func appendBatchCount(b *wire.Buf, n int) {
	binary.BigEndian.PutUint16(b.Extend(2), uint16(n))
}

// appendBatchItemHeader writes one item's length prefix; the caller
// appends exactly n bytes of encoded item after it (the layout
// EncodeBatchItems documents and DecodeBatchItems expects).
func appendBatchItemHeader(b *wire.Buf, n int) {
	binary.BigEndian.PutUint32(b.Extend(4), uint32(n))
}

// DecodeBatchItems unpacks a batch payload into its items.
func DecodeBatchItems(buf []byte) ([][]byte, error) {
	if len(buf) < 2 {
		return nil, fmt.Errorf("%w: batch of %d bytes", ErrBadMessage, len(buf))
	}
	n := int(binary.BigEndian.Uint16(buf))
	buf = buf[2:]
	items := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		if len(buf) < 4 {
			return nil, fmt.Errorf("%w: batch item %d truncated", ErrBadMessage, i)
		}
		l := binary.BigEndian.Uint32(buf)
		buf = buf[4:]
		if uint32(len(buf)) < l {
			return nil, fmt.Errorf("%w: batch item %d wants %d bytes, have %d", ErrBadMessage, i, l, len(buf))
		}
		items = append(items, buf[:l])
		buf = buf[l:]
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after batch", ErrBadMessage, len(buf))
	}
	return items, nil
}

// Wire formats. Request: op(2) cap(16) budget(4, ms) rid(8) dlen(4)
// data. Reply: status(2) cap(16) dlen(4) data.
const (
	reqHeader  = 2 + cap.Size + 4 + 8 + 4
	wireHeader = 2 + cap.Size + 4 // reply header
)

// ErrBadMessage is returned for undecodable request/reply payloads.
var ErrBadMessage = errors.New("rpc: malformed message")

// budgetToWire converts a deadline budget to wire milliseconds,
// rounding up so a small positive budget never becomes "no deadline".
func budgetToWire(d time.Duration) uint32 {
	if d <= 0 {
		return 0
	}
	ms := (d + time.Millisecond - 1) / time.Millisecond
	if ms > time.Duration(^uint32(0)) {
		return ^uint32(0)
	}
	return uint32(ms)
}

// EncodeRequest serializes a request for the F-box payload into a
// fresh slice the caller owns. The transport itself encodes into
// pooled buffers via appendRequest; this entry point serves tests and
// tools.
func EncodeRequest(req Request) []byte {
	buf := make([]byte, 0, reqHeader+len(req.Data))
	var op [2]byte
	binary.BigEndian.PutUint16(op[:], req.Op)
	buf = append(buf, op[:]...)
	buf = req.Cap.AppendTo(buf)
	var bd [4]byte
	binary.BigEndian.PutUint32(bd[:], budgetToWire(req.Budget))
	buf = append(buf, bd[:]...)
	var rid [8]byte
	binary.BigEndian.PutUint64(rid[:], req.ID)
	buf = append(buf, rid[:]...)
	var dl [4]byte
	binary.BigEndian.PutUint32(dl[:], uint32(len(req.Data)))
	buf = append(buf, dl[:]...)
	return append(buf, req.Data...)
}

// appendRequest encodes req into the pooled buffer. The request data
// is req.Data followed by the extra parts, so callers can assemble a
// payload from scattered pieces (header array + bulk data) without an
// intermediate allocation.
func appendRequest(b *wire.Buf, req Request, parts ...[]byte) {
	dataLen := len(req.Data)
	for _, p := range parts {
		dataLen += len(p)
	}
	appendRequestHeader(b, req.Op, req.Cap, req.Budget, req.ID, dataLen)
	b.AppendBytes(req.Data)
	for _, p := range parts {
		b.AppendBytes(p)
	}
}

// appendRequestHeader writes just the fixed request header; the caller
// appends exactly dataLen bytes of request data after it.
func appendRequestHeader(b *wire.Buf, op uint16, c cap.Capability, budget time.Duration, id uint64, dataLen int) {
	hdr := b.Extend(reqHeader)
	binary.BigEndian.PutUint16(hdr[0:2], op)
	w := c.Encode()
	copy(hdr[2:2+cap.Size], w[:])
	binary.BigEndian.PutUint32(hdr[2+cap.Size:], budgetToWire(budget))
	binary.BigEndian.PutUint64(hdr[2+cap.Size+4:], id)
	binary.BigEndian.PutUint32(hdr[2+cap.Size+4+8:], uint32(dataLen))
}

// DecodeRequest parses a request payload.
func DecodeRequest(buf []byte) (Request, error) {
	if len(buf) < reqHeader {
		return Request{}, fmt.Errorf("%w: %d bytes", ErrBadMessage, len(buf))
	}
	op := binary.BigEndian.Uint16(buf[0:2])
	c, err := cap.Decode(buf[2 : 2+cap.Size])
	if err != nil {
		return Request{}, fmt.Errorf("%w: %v", ErrBadMessage, err)
	}
	budget := time.Duration(binary.BigEndian.Uint32(buf[2+cap.Size:2+cap.Size+4])) * time.Millisecond
	id := binary.BigEndian.Uint64(buf[2+cap.Size+4 : 2+cap.Size+4+8])
	n := binary.BigEndian.Uint32(buf[2+cap.Size+4+8 : reqHeader])
	if uint32(len(buf)-reqHeader) != n {
		return Request{}, fmt.Errorf("%w: data length %d, have %d", ErrBadMessage, n, len(buf)-reqHeader)
	}
	return Request{Cap: c, Op: op, Budget: budget, ID: id, Data: buf[reqHeader:]}, nil
}

// EncodeReply serializes a reply for the F-box payload into a fresh
// slice the caller owns (see EncodeRequest; the transport uses
// appendReply).
func EncodeReply(rep Reply) []byte {
	buf := make([]byte, 0, wireHeader+len(rep.Data))
	var st [2]byte
	binary.BigEndian.PutUint16(st[:], uint16(rep.Status))
	buf = append(buf, st[:]...)
	buf = rep.Cap.AppendTo(buf)
	var dl [4]byte
	binary.BigEndian.PutUint32(dl[:], uint32(len(rep.Data)))
	buf = append(buf, dl[:]...)
	return append(buf, rep.Data...)
}

// appendReply encodes rep into the pooled buffer.
func appendReply(b *wire.Buf, rep Reply) {
	putReplyHeader(b.Extend(wireHeader), rep)
	b.AppendBytes(rep.Data)
}

// putReplyHeader lays the fixed reply header into hdr (wireHeader
// bytes): status(2) cap(16) dlen(4).
func putReplyHeader(hdr []byte, rep Reply) {
	binary.BigEndian.PutUint16(hdr[0:2], uint16(rep.Status))
	w := rep.Cap.Encode()
	copy(hdr[2:2+cap.Size], w[:])
	binary.BigEndian.PutUint32(hdr[2+cap.Size:], uint32(len(rep.Data)))
}

// DecodeReply parses a reply payload.
func DecodeReply(buf []byte) (Reply, error) {
	if len(buf) < wireHeader {
		return Reply{}, fmt.Errorf("%w: %d bytes", ErrBadMessage, len(buf))
	}
	status := Status(binary.BigEndian.Uint16(buf[0:2]))
	c, err := cap.Decode(buf[2 : 2+cap.Size])
	if err != nil {
		return Reply{}, fmt.Errorf("%w: %v", ErrBadMessage, err)
	}
	n := binary.BigEndian.Uint32(buf[2+cap.Size : wireHeader])
	if uint32(len(buf)-wireHeader) != n {
		return Reply{}, fmt.Errorf("%w: data length %d, have %d", ErrBadMessage, n, len(buf)-wireHeader)
	}
	return Reply{Status: status, Cap: c, Data: buf[wireHeader:]}, nil
}
