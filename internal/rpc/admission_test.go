package rpc

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"amoeba/internal/cap"
	"amoeba/internal/obs"
)

// occupyWorker parks one request in the server's (single-worker) pool
// and returns a release function plus a channel that yields the
// occupying call's result.
func occupyWorker(t *testing.T, r *testRig, op uint16) (release func(), done chan error) {
	t.Helper()
	block := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	r.server.Handle(op, func(_ context.Context, _ Meta, _ Request) Reply {
		once.Do(func() { close(entered) })
		<-block
		return OkReply([]byte("held"))
	})
	r.start(t)
	done = make(chan error, 1)
	go func() {
		rep, err := r.client.Trans(context.Background(), r.server.PutPort(), Request{Op: op},
			WithTimeout(5*time.Second), WithRetries(0))
		if err == nil && rep.Status != StatusOK {
			err = rep.Status.Err()
		}
		done <- err
	}()
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("occupying request never reached the handler")
	}
	var releaseOnce sync.Once
	return func() { releaseOnce.Do(func() { close(block) }) }, done
}

// A budgeted request that cannot survive the current queue is refused
// with StatusOverload before touching the pool; an unbudgeted request
// is never deadline-shed.
func TestAdmissionShedsDoomedRequests(t *testing.T) {
	r := newTestRig(t, cap.SchemeOneWay)
	r.server.SetMaxInflight(1)
	stats := obs.NewServerStats(obs.NewRegistry(), nil, "test", StatusName)
	r.server.SetObserver(stats)
	release, done := occupyWorker(t, r, 0x0001)
	defer release()

	// The pool is saturated (inflight == poolSize == 1); make the
	// smoothed queue wait say "a second" so any sane budget is doomed.
	r.server.ewmaWait.Store(int64(time.Second))

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	rep, err := r.client.Trans(ctx, r.server.PutPort(), Request{Op: OpEcho}, WithRetries(0))
	if err != nil {
		t.Fatalf("Trans: %v", err)
	}
	if rep.Status != StatusOverload {
		t.Fatalf("budgeted request got %v, want overload", rep.Status)
	}
	if got := stats.ShedCount(); got != 1 {
		t.Fatalf("shed count = %d, want 1", got)
	}

	// Same conditions, no deadline: the request must NOT be shed — it
	// queues behind the busy worker and completes once it frees up.
	unbudgeted := make(chan error, 1)
	go func() {
		rep, err := r.client.Trans(context.Background(), r.server.PutPort(),
			Request{Op: OpEcho, Data: []byte("x")}, WithTimeout(5*time.Second), WithRetries(0))
		if err == nil && rep.Status != StatusOK {
			err = rep.Status.Err()
		}
		unbudgeted <- err
	}()
	time.Sleep(20 * time.Millisecond) // let it reach (and pass) admission
	release()
	for i, ch := range []chan error{done, unbudgeted} {
		select {
		case err := <-ch:
			if err != nil {
				t.Fatalf("request %d: %v", i, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("request %d never completed", i)
		}
	}
	if got := stats.ShedCount(); got != 1 {
		t.Fatalf("shed count after unbudgeted request = %d, want still 1", got)
	}
}

// Drain sheds everything new while in-flight work runs to completion.
func TestDrainFinishesInflightAndShedsNew(t *testing.T) {
	r := newTestRig(t, cap.SchemeOneWay)
	r.server.SetMaxInflight(1)
	release, done := occupyWorker(t, r, 0x0001)

	drained := make(chan struct{})
	go func() {
		r.server.Drain()
		close(drained)
	}()
	// Draining flips synchronously-enough for new arrivals; poll until
	// the server reports it rather than racing the goroutine.
	for !r.server.Draining() {
		time.Sleep(time.Millisecond)
	}

	_, err := r.client.Call(context.Background(), cap.Capability{Server: r.server.PutPort()}, OpEcho, nil, WithRetries(0))
	if !errors.Is(err, ErrOverload) {
		t.Fatalf("call during drain: %v, want ErrOverload", err)
	}
	select {
	case <-drained:
		t.Fatal("Drain returned while a request was still in flight")
	default:
	}

	release()
	if err := <-done; err != nil {
		t.Fatalf("in-flight request failed across drain: %v", err)
	}
	select {
	case <-drained:
	case <-time.After(5 * time.Second):
		t.Fatal("Drain never returned after in-flight work finished")
	}
}

// SetMaxInflight resizes the pool while traffic is running: no lost
// or failed requests, and the new size takes effect.
func TestSetMaxInflightLiveResize(t *testing.T) {
	r := newTestRig(t, cap.SchemeOneWay)
	r.server.SetMaxInflight(2)
	r.start(t)

	const workers, iters = 8, 40
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				payload := []byte(fmt.Sprintf("w%d-%d", w, i))
				rep, err := r.client.Trans(context.Background(), r.server.PutPort(),
					Request{Op: OpEcho, Data: payload}, WithTimeout(5*time.Second))
				if err != nil {
					errs <- fmt.Errorf("worker %d iter %d: %w", w, i, err)
					return
				}
				if rep.Status != StatusOK || string(rep.Data) != string(payload) {
					errs <- fmt.Errorf("worker %d iter %d: bad reply %v %q", w, i, rep.Status, rep.Data)
					return
				}
			}
		}(w)
	}
	for _, n := range []int{8, 1, 4} {
		time.Sleep(10 * time.Millisecond)
		r.server.SetMaxInflight(n)
		if got := r.server.MaxInflight(); got != n {
			t.Fatalf("MaxInflight after resize = %d, want %d", got, n)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// The server still serves after all the churn.
	rep, err := r.client.Trans(context.Background(), r.server.PutPort(), Request{Op: OpEcho, Data: []byte("after")})
	if err != nil || rep.Status != StatusOK {
		t.Fatalf("post-resize call: %v %v", rep.Status, err)
	}
}

// Resizing before Start still just records the size (the regression
// this satellite fixes is the post-Start panic; pre-Start behaviour
// must not change).
func TestSetMaxInflightBeforeStart(t *testing.T) {
	r := newTestRig(t, cap.SchemeOneWay)
	r.server.SetMaxInflight(3)
	if got := r.server.MaxInflight(); got != 3 {
		t.Fatalf("MaxInflight = %d, want 3", got)
	}
	r.server.SetMaxInflight(0) // no-op, keeps current
	if got := r.server.MaxInflight(); got != 3 {
		t.Fatalf("MaxInflight after SetMaxInflight(0) = %d, want 3", got)
	}
	r.start(t)
}

// A shed must never burn the caller's whole deadline: against a
// draining (always-shedding) server, the client retries with bounded
// backoff and hands back ErrOverload with most of the budget unspent.
func TestOverloadRetryPreservesDeadline(t *testing.T) {
	r := newTestRig(t, cap.SchemeOneWay)
	stats := obs.NewServerStats(obs.NewRegistry(), nil, "test", StatusName)
	r.server.SetObserver(stats)
	r.start(t)
	r.server.Drain() // no in-flight work: returns at once, sheds forever after

	const deadline = 500 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()
	start := time.Now()
	_, err := r.client.Call(ctx, cap.Capability{Server: r.server.PutPort()}, OpEcho, nil)
	elapsed := time.Since(start)

	if !errors.Is(err, ErrOverload) {
		t.Fatalf("err = %v, want ErrOverload", err)
	}
	if elapsed > deadline/2 {
		t.Fatalf("shed burned %v of a %v deadline", elapsed, deadline)
	}
	// The rig default is 2 retries: the server must have seen (and
	// shed) all three attempts — proof the client did retry rather
	// than give up on the first refusal.
	if got := stats.ShedCount(); got != 3 {
		t.Fatalf("server shed %d requests, want 3 (initial + 2 retries)", got)
	}
}

// Request IDs ride the wire: handlers see the client-minted ID in
// Meta, and budgeted requests carry it in the context for nested RPC.
func TestRequestIDReachesHandler(t *testing.T) {
	r := newTestRig(t, cap.SchemeOneWay)
	type seen struct{ meta, ctx uint64 }
	got := make(chan seen, 1)
	r.server.Handle(0x0002, func(ctx context.Context, md Meta, _ Request) Reply {
		got <- seen{meta: md.ReqID, ctx: RequestIDFromContext(ctx)}
		return OkReply(nil)
	})
	r.start(t)

	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, err := r.client.Trans(ctx, r.server.PutPort(), Request{Op: 0x0002}); err != nil {
		t.Fatal(err)
	}
	s := <-got
	if s.meta == 0 {
		t.Fatal("Meta.ReqID is zero; the wire ID was lost")
	}
	if s.ctx != s.meta {
		t.Fatalf("context ID %d != Meta ID %d", s.ctx, s.meta)
	}

	// A handler-side client reuses the originating ID for nested RPC.
	nested := ContextWithRequestID(context.Background(), 424242)
	if id := r.client.requestID(nested, 0); id != 424242 {
		t.Fatalf("nested requestID = %d, want 424242", id)
	}
	// An explicit ID wins over everything.
	if id := r.client.requestID(nested, 7); id != 7 {
		t.Fatalf("explicit requestID = %d, want 7", id)
	}
	// Freshly minted IDs are distinct and nonzero.
	a := r.client.requestID(context.Background(), 0)
	b := r.client.requestID(context.Background(), 0)
	if a == 0 || b == 0 || a == b {
		t.Fatalf("minted IDs %d, %d", a, b)
	}
}
