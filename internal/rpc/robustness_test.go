package rpc

import (
	"context"
	"sync"
	"testing"
	"time"

	"amoeba/internal/amnet"
	"amoeba/internal/cap"
	"amoeba/internal/crypto"
	"amoeba/internal/fbox"
	"amoeba/internal/locate"
)

// lossyRig builds a client/server pair over a network that drops
// frames.
func lossyRig(t *testing.T, lossRate float64, seed uint64) (*Client, *Server, *amnet.SimNet) {
	t.Helper()
	n := amnet.NewSimNet(amnet.SimConfig{LossRate: lossRate, Seed: seed})
	t.Cleanup(func() { n.Close() })
	attach := func() *fbox.FBox {
		nic, err := n.Attach()
		if err != nil {
			t.Fatal(err)
		}
		fb := fbox.New(nic, nil)
		t.Cleanup(func() { fb.Close() })
		return fb
	}
	clientFB, serverFB := attach(), attach()
	src := crypto.NewSeededSource(seed)
	server := NewServer(serverFB, src)
	server.Handle(OpEcho, func(_ context.Context, _ Meta, req Request) Reply { return OkReply(req.Data) })
	if err := server.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { server.Close() })
	res := locate.New(clientFB, locate.Config{Timeout: 100 * time.Millisecond, Attempts: 10})
	client := NewClient(clientFB, res, ClientConfig{
		Timeout: 150 * time.Millisecond,
		Retries: 10,
		Source:  src,
	})
	return client, server, n
}

func TestTransSurvivesFrameLoss(t *testing.T) {
	ctx := context.Background()
	// 30% loss on every frame (requests, replies, LOCATEs): the
	// client's retry loop must still complete every transaction.
	client, server, _ := lossyRig(t, 0.30, 0x1055)
	for i := 0; i < 20; i++ {
		rep, err := client.Trans(ctx, server.PutPort(), Request{Op: OpEcho, Data: []byte{byte(i)}})
		if err != nil {
			t.Fatalf("transaction %d failed under loss: %v", i, err)
		}
		if len(rep.Data) != 1 || rep.Data[0] != byte(i) {
			t.Fatalf("transaction %d corrupted: %v", i, rep.Data)
		}
	}
}

func TestTransFailsCleanlyUnderPartition(t *testing.T) {
	ctx := context.Background()
	client, server, n := lossyRig(t, 0, 0xBAD)
	// Warm the locate cache.
	if _, err := client.Trans(ctx, server.PutPort(), Request{Op: OpEcho}); err != nil {
		t.Fatal(err)
	}
	// Cut the link between the two machines.
	n.Partition(1, 2)
	start := time.Now()
	_, err := client.Trans(ctx, server.PutPort(), Request{Op: OpEcho})
	if err == nil {
		t.Fatal("transaction crossed a partition")
	}
	if time.Since(start) > 10*time.Second {
		t.Fatal("partition failure took unreasonably long")
	}
	// Heal and confirm recovery.
	n.Heal(1, 2)
	if _, err := client.Trans(ctx, server.PutPort(), Request{Op: OpEcho}); err != nil {
		t.Fatalf("transaction after heal: %v", err)
	}
}

func TestTwoServersOneMachine(t *testing.T) {
	ctx := context.Background()
	// "Every server has one or more ports": multiple services share a
	// machine (and its F-box), each with its own get-port.
	n := amnet.NewSimNet(amnet.SimConfig{})
	t.Cleanup(func() { n.Close() })
	nic1, err := n.Attach()
	if err != nil {
		t.Fatal(err)
	}
	hostFB := fbox.New(nic1, nil)
	t.Cleanup(func() { hostFB.Close() })
	nic2, err := n.Attach()
	if err != nil {
		t.Fatal(err)
	}
	clientFB := fbox.New(nic2, nil)
	t.Cleanup(func() { clientFB.Close() })

	src := crypto.NewSeededSource(0x251)
	s1 := NewServer(hostFB, src)
	s1.Handle(OpEcho, func(_ context.Context, _ Meta, req Request) Reply {
		return OkReply(append([]byte("one:"), req.Data...))
	})
	s2 := NewServer(hostFB, src)
	s2.Handle(OpEcho, func(_ context.Context, _ Meta, req Request) Reply {
		return OkReply(append([]byte("two:"), req.Data...))
	})
	if err := s1.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s1.Close() })
	if err := s2.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s2.Close() })
	if s1.PutPort() == s2.PutPort() {
		t.Fatal("two servers share a put-port")
	}

	res := locate.New(clientFB, locate.Config{Timeout: 200 * time.Millisecond})
	client := NewClient(clientFB, res, ClientConfig{Source: src})
	rep1, err := client.Trans(ctx, s1.PutPort(), Request{Op: OpEcho, Data: []byte("x")})
	if err != nil || string(rep1.Data) != "one:x" {
		t.Fatalf("server one: %q %v", rep1.Data, err)
	}
	rep2, err := client.Trans(ctx, s2.PutPort(), Request{Op: OpEcho, Data: []byte("x")})
	if err != nil || string(rep2.Data) != "two:x" {
		t.Fatalf("server two: %q %v", rep2.Data, err)
	}
}

func TestConcurrentClientsOneServer(t *testing.T) {
	ctx := context.Background()
	n := amnet.NewSimNet(amnet.SimConfig{})
	t.Cleanup(func() { n.Close() })
	attach := func() *fbox.FBox {
		nic, err := n.Attach()
		if err != nil {
			t.Fatal(err)
		}
		fb := fbox.New(nic, nil)
		t.Cleanup(func() { fb.Close() })
		return fb
	}
	src := crypto.NewSeededSource(0xC0C0)
	serverFB := attach()
	server := NewServer(serverFB, src)
	scheme, err := cap.NewScheme(cap.SchemeCommutative)
	if err != nil {
		t.Fatal(err)
	}
	table := cap.NewTable(scheme, server.PutPort(), src)
	server.ServeTable(table)
	if err := server.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { server.Close() })

	const clients = 6
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		fb := attach()
		res := locate.New(fb, locate.Config{Timeout: 300 * time.Millisecond})
		client := NewClient(fb, res, ClientConfig{Source: src, Timeout: time.Second})
		wg.Add(1)
		go func(g int, client *Client) {
			defer wg.Done()
			owner, err := table.Create()
			if err != nil {
				t.Errorf("client %d create: %v", g, err)
				return
			}
			for i := 0; i < 20; i++ {
				weak, err := client.Restrict(ctx, owner, cap.RightRead)
				if err != nil {
					t.Errorf("client %d restrict: %v", g, err)
					return
				}
				rights, err := client.Validate(ctx, weak)
				if err != nil || rights != cap.RightRead {
					t.Errorf("client %d validate: %v %v", g, rights, err)
					return
				}
			}
		}(g, client)
	}
	wg.Wait()
}
