package rpc

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"amoeba/internal/amnet"
	"amoeba/internal/cap"
	"amoeba/internal/crypto"
	"amoeba/internal/fbox"
	"amoeba/internal/locate"
)

// blackHole registers a handler for op that counts arrivals and never
// replies within any useful time: it parks on the handler context,
// which fires on the request's deadline budget or on server Close.
func blackHole(s *Server, op uint16, hits *atomic.Int64) {
	s.Handle(op, func(ctx context.Context, _ Meta, _ Request) Reply {
		if hits != nil {
			hits.Add(1)
		}
		<-ctx.Done()
		return ErrReply(StatusServerError, "gave up")
	})
}

func TestCancelMidTransactionReturnsPromptly(t *testing.T) {
	r := newTestRig(t, cap.SchemeOneWay)
	blackHole(r.server, 0x77, nil)
	r.start(t)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	// Generous per-attempt timeout and retries: only cancellation can
	// end this transaction quickly.
	_, err := r.client.Trans(ctx, r.server.PutPort(), Request{Op: 0x77},
		WithTimeout(5*time.Second), WithRetries(3))
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > time.Second {
		t.Fatalf("cancellation took %v, want prompt return", elapsed)
	}
}

func TestDeadlineAbortsBeforeRetryBudget(t *testing.T) {
	// The simulated network adds more latency than the context allows:
	// the transaction must stop at the deadline instead of burning
	// through every per-attempt timeout.
	n := amnet.NewSimNet(amnet.SimConfig{Latency: 300 * time.Millisecond, Seed: 7})
	t.Cleanup(func() { n.Close() })
	attach := func() *fbox.FBox {
		nic, err := n.Attach()
		if err != nil {
			t.Fatal(err)
		}
		fb := fbox.New(nic, nil)
		t.Cleanup(func() { fb.Close() })
		return fb
	}
	src := crypto.NewSeededSource(0xDEAD)
	serverFB := attach()
	server := NewServer(serverFB, src)
	server.Handle(OpEcho, func(_ context.Context, _ Meta, req Request) Reply { return OkReply(req.Data) })
	if err := server.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { server.Close() })

	clientFB := attach()
	res := locate.New(clientFB, locate.Config{Timeout: time.Second, Attempts: 3})
	client := NewClient(clientFB, res, ClientConfig{Timeout: 250 * time.Millisecond, Retries: 5, Source: src})

	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := client.Trans(ctx, server.PutPort(), Request{Op: OpEcho, Data: []byte("slow")})
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	// Six attempts at 250ms each would be 1.5s; the deadline must cut
	// the transaction off far earlier.
	if elapsed > 750*time.Millisecond {
		t.Fatalf("deadline took %v to fire; retry budget was not abandoned", elapsed)
	}
}

func TestWithRetriesZeroMeansSingleAttempt(t *testing.T) {
	r := newTestRig(t, cap.SchemeOneWay)
	var hits atomic.Int64
	blackHole(r.server, 0x78, &hits)
	r.start(t)

	ctx := context.Background()
	_, err := r.client.Trans(ctx, r.server.PutPort(), Request{Op: 0x78},
		WithTimeout(100*time.Millisecond), WithRetries(0))
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("server saw %d attempts, want exactly 1", got)
	}
}

func TestClientConfigNoRetriesSentinel(t *testing.T) {
	cfg := ClientConfig{Retries: NoRetries}.withDefaults()
	if cfg.Retries != 0 {
		t.Fatalf("NoRetries resolved to %d retries, want 0", cfg.Retries)
	}
	if def := (ClientConfig{}).withDefaults(); def.Retries != 2 {
		t.Fatalf("zero value resolved to %d retries, want default 2", def.Retries)
	}
}

func TestRetryBackoffHonoursCancellation(t *testing.T) {
	r := newTestRig(t, cap.SchemeOneWay)
	blackHole(r.server, 0x79, nil)
	r.start(t)
	res := locate.New(r.clientFB, locate.Config{Timeout: 200 * time.Millisecond, Attempts: 3})
	client := NewClient(r.clientFB, res, ClientConfig{
		Timeout:      100 * time.Millisecond,
		Retries:      3,
		RetryBackoff: 10 * time.Second, // cancellation must cut this short
		Source:       crypto.NewSeededSource(3),
	})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(200 * time.Millisecond) // after the first timeout, inside the backoff
		cancel()
	}()
	start := time.Now()
	_, err := client.Trans(ctx, r.server.PutPort(), Request{Op: 0x79})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("backoff ignored cancellation (took %v)", elapsed)
	}
}

// TestNestedCallInheritsDeadline proves the wire budget: a handler on
// server A issues a nested transaction to server B, forwarding its
// handler context; B must observe a request deadline bounded by the
// original caller's.
func TestNestedCallInheritsDeadline(t *testing.T) {
	n := amnet.NewSimNet(amnet.SimConfig{})
	t.Cleanup(func() { n.Close() })
	attach := func() *fbox.FBox {
		nic, err := n.Attach()
		if err != nil {
			t.Fatal(err)
		}
		fb := fbox.New(nic, nil)
		t.Cleanup(func() { fb.Close() })
		return fb
	}
	src := crypto.NewSeededSource(0xBEEF)

	// Server B records the budget that arrived on the wire.
	bFB := attach()
	b := NewServer(bFB, src)
	budgetSeen := make(chan time.Duration, 1)
	b.Handle(OpEcho, func(_ context.Context, _ Meta, req Request) Reply {
		select {
		case budgetSeen <- req.Budget:
		default:
		}
		return OkReply(req.Data)
	})
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })

	// Server A forwards its handler context into a nested call to B.
	aFB := attach()
	aClient := NewClient(aFB, locate.New(aFB, locate.Config{Timeout: 200 * time.Millisecond}), ClientConfig{Source: src})
	a := NewServer(aFB, src)
	a.Handle(0x11, func(ctx context.Context, _ Meta, req Request) Reply {
		if _, ok := ctx.Deadline(); !ok {
			return ErrReply(StatusServerError, "handler context has no deadline")
		}
		rep, err := aClient.Trans(ctx, b.PutPort(), Request{Op: OpEcho, Data: req.Data})
		if err != nil {
			return ErrReply(StatusServerError, err.Error())
		}
		return rep
	})
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })

	clientFB := attach()
	client := NewClient(clientFB, locate.New(clientFB, locate.Config{Timeout: 200 * time.Millisecond}), ClientConfig{Source: src})

	const parentBudget = 2 * time.Second
	ctx, cancel := context.WithTimeout(context.Background(), parentBudget)
	defer cancel()
	rep, err := client.Trans(ctx, a.PutPort(), Request{Op: 0x11, Data: []byte("deep")})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != StatusOK || string(rep.Data) != "deep" {
		t.Fatalf("nested reply %+v", rep)
	}
	select {
	case got := <-budgetSeen:
		if got <= 0 {
			t.Fatal("nested request carried no deadline budget")
		}
		if got > parentBudget {
			t.Fatalf("nested budget %v exceeds parent deadline %v", got, parentBudget)
		}
	default:
		t.Fatal("server B never saw the nested request")
	}
}

// TestServerCloseCancelsHandlers proves graceful shutdown: handlers in
// flight observe cancellation when the server closes.
func TestServerCloseCancelsHandlers(t *testing.T) {
	r := newTestRig(t, cap.SchemeOneWay)
	entered := make(chan struct{})
	done := make(chan error, 1)
	r.server.Handle(0x7a, func(ctx context.Context, _ Meta, _ Request) Reply {
		close(entered)
		select {
		case <-ctx.Done():
			done <- ctx.Err()
		case <-time.After(5 * time.Second):
			done <- errors.New("handler never cancelled")
		}
		return ErrReply(StatusServerError, "shutting down")
	})
	r.start(t)

	go func() {
		// Fire-and-forget transaction to get the handler running.
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_, _ = r.client.Trans(ctx, r.server.PutPort(), Request{Op: 0x7a}, WithRetries(0))
	}()
	<-entered
	if err := r.server.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("handler saw %v, want cancellation", err)
	}
}

// TestWithoutDeadlineKeepsShutdownCancellation proves the cleanup
// context: inside a handler, WithoutDeadline sheds the request budget
// but still cancels when the server closes, so post-commit cleanup
// cannot block shutdown.
func TestWithoutDeadlineKeepsShutdownCancellation(t *testing.T) {
	r := newTestRig(t, cap.SchemeOneWay)
	type obs struct {
		hadDeadline     bool
		cleanupDeadline bool
		cancelled       bool
	}
	done := make(chan obs, 1)
	entered := make(chan struct{})
	r.server.Handle(0x7b, func(ctx context.Context, _ Meta, _ Request) Reply {
		cleanup := WithoutDeadline(ctx)
		_, had := ctx.Deadline()
		_, cd := cleanup.Deadline()
		close(entered)
		select {
		case <-cleanup.Done():
			done <- obs{had, cd, true}
		case <-time.After(5 * time.Second):
			done <- obs{had, cd, false}
		}
		return ErrReply(StatusServerError, "shutting down")
	})
	r.start(t)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_, _ = r.client.Trans(ctx, r.server.PutPort(), Request{Op: 0x7b}, WithRetries(0))
	}()
	<-entered
	if err := r.server.Close(); err != nil {
		t.Fatal(err)
	}
	got := <-done
	if !got.hadDeadline {
		t.Error("handler ctx was missing the request-budget deadline")
	}
	if got.cleanupDeadline {
		t.Error("WithoutDeadline kept the request deadline")
	}
	if !got.cancelled {
		t.Error("WithoutDeadline context was not cancelled by Server.Close")
	}
}
