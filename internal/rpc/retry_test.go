package rpc

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"amoeba/internal/amnet"
	"amoeba/internal/crypto"
	"amoeba/internal/fbox"
	"amoeba/internal/locate"
)

// retryRig builds a client/server pair where the server's OpEcho
// handler is swappable, for driving the retry engine through specific
// status sequences.
func retryRig(t *testing.T, backoff time.Duration, retries int) (*Client, *Server, *atomic.Value) {
	t.Helper()
	n := amnet.NewSimNet(amnet.SimConfig{})
	t.Cleanup(func() { n.Close() })
	attach := func() *fbox.FBox {
		nic, err := n.Attach()
		if err != nil {
			t.Fatal(err)
		}
		fb := fbox.New(nic, nil)
		t.Cleanup(func() { fb.Close() })
		return fb
	}
	clientFB, serverFB := attach(), attach()
	src := crypto.NewSeededSource(0x0E7)
	server := NewServer(serverFB, src)
	var handler atomic.Value // of func(Request) Reply
	handler.Store(func(req Request) Reply { return OkReply(req.Data) })
	server.Handle(OpEcho, func(_ context.Context, _ Meta, req Request) Reply {
		return handler.Load().(func(Request) Reply)(req)
	})
	if err := server.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { server.Close() })
	res := locate.New(clientFB, locate.Config{Timeout: 100 * time.Millisecond, Attempts: 2})
	client := NewClient(clientFB, res, ClientConfig{
		Timeout:      time.Second,
		Retries:      retries,
		RetryBackoff: backoff,
		Source:       src,
	})
	return client, server, &handler
}

// TestStaleRetryNoBackoff pins the "no backoff" promise on the
// StatusStale path: a stale-authority reply must trigger an immediate
// evict-and-re-locate, not a RetryBackoff sleep. The backoff is set to
// two seconds — absurdly larger than the sub-millisecond SimNet round
// trips — so an elapsed-time bound separates "slept" from "didn't"
// with a huge margin either way.
func TestStaleRetryNoBackoff(t *testing.T) {
	client, server, handler := retryRig(t, 2*time.Second, 4)
	var calls atomic.Int32
	handler.Store(func(req Request) Reply {
		if calls.Add(1) == 1 {
			return ErrReply(StatusStale, "deposed")
		}
		return OkReply(req.Data)
	})
	start := time.Now()
	rep, err := client.Trans(context.Background(), server.PutPort(), Request{Op: OpEcho, Data: []byte("x")})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("transaction failed: %v", err)
	}
	if rep.Status != StatusOK || string(rep.Data) != "x" {
		t.Fatalf("unexpected reply: %v %q", rep.Status, rep.Data)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("server saw %d calls, want 2 (stale then retry)", got)
	}
	if elapsed >= time.Second {
		t.Fatalf("stale-authority retry took %v — the 2s RetryBackoff slept on a path that promises none", elapsed)
	}
}

// TestWrongShardRetryNoBackoff is the same pin for the StatusWrongShard
// path: a stale-map bounce refreshes and re-routes at once.
func TestWrongShardRetryNoBackoff(t *testing.T) {
	client, server, handler := retryRig(t, 2*time.Second, 4)
	var calls atomic.Int32
	handler.Store(func(req Request) Reply {
		if calls.Add(1) == 1 {
			return WrongShardReply(7)
		}
		return OkReply(req.Data)
	})
	start := time.Now()
	rep, err := client.Trans(context.Background(), server.PutPort(), Request{Op: OpEcho, Data: []byte("y")})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("transaction failed: %v", err)
	}
	if rep.Status != StatusOK || string(rep.Data) != "y" {
		t.Fatalf("unexpected reply: %v %q", rep.Status, rep.Data)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("server saw %d calls, want 2 (wrong-shard then retry)", got)
	}
	if elapsed >= time.Second {
		t.Fatalf("wrong-shard retry took %v — the 2s RetryBackoff slept on a path that promises none", elapsed)
	}
}

// TestTimeoutRetryStillBacksOff guards the flip side of the backoff
// restructure: timeout retries are the wait-something-out case and must
// keep sleeping RetryBackoff.
func TestTimeoutRetryStillBacksOff(t *testing.T) {
	client, server, handler := retryRig(t, 120*time.Millisecond, 4)
	var calls atomic.Int32
	handler.Store(func(req Request) Reply {
		if calls.Add(1) == 1 {
			time.Sleep(300 * time.Millisecond) // past the attempt timeout below
		}
		return OkReply(req.Data)
	})
	start := time.Now()
	_, err := client.Trans(context.Background(), server.PutPort(), Request{Op: OpEcho},
		WithTimeout(100*time.Millisecond))
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("transaction failed: %v", err)
	}
	// One timed-out attempt (100ms) + one backoff (120ms) at minimum.
	if elapsed < 220*time.Millisecond {
		t.Fatalf("timed-out retry completed in %v — the RetryBackoff sleep is gone from the timeout path", elapsed)
	}
}

// TestWrongShardExhaustionDetail pins that a call exhausting its
// retries behind a churning shard map reports both generations — the
// server's and the client's at send time — instead of a blind status.
func TestWrongShardExhaustionDetail(t *testing.T) {
	client, server, handler := retryRig(t, 0, 1)
	handler.Store(func(Request) Reply { return WrongShardReply(42) })
	_, err := client.Trans(context.Background(), server.PutPort(), Request{Op: OpEcho})
	if err == nil {
		t.Fatal("exhausted wrong-shard call succeeded")
	}
	var se *StatusError
	if !errors.As(err, &se) || se.Status != StatusWrongShard {
		t.Fatalf("want StatusWrongShard error, got %v", err)
	}
	if !strings.Contains(se.Detail, "server map generation 42") || !strings.Contains(se.Detail, "client had 0") {
		t.Fatalf("wrong-shard exhaustion detail is blind: %q", se.Detail)
	}
}

// TestLocateBudgetRearmsOnAuthorityChange drives the exact sequence
// the one-shot locate budget used to lose: the call's only extra
// LOCATE round is burned early (nobody up yet — a promotion in
// progress), then a deposed old primary answers StatusStale (an
// authority change), the old primary drops off the network, and the
// successor appears only after one more failed broadcast. The
// authority change must re-arm the budget or the call dies with
// retries to spare — which is exactly what the one-shot version did.
func TestLocateBudgetRearmsOnAuthorityChange(t *testing.T) {
	n := amnet.NewSimNet(amnet.SimConfig{Latency: 2 * time.Millisecond})
	t.Cleanup(func() { n.Close() })
	attach := func() *fbox.FBox {
		nic, err := n.Attach()
		if err != nil {
			t.Fatal(err)
		}
		fb := fbox.New(nic, nil)
		t.Cleanup(func() { fb.Close() })
		return fb
	}
	src := crypto.NewSeededSource(0xA17)
	clientFB := attach()
	res := locate.New(clientFB, locate.Config{Timeout: 80 * time.Millisecond, Attempts: 1})
	client := NewClient(clientFB, res, ClientConfig{
		Timeout:      250 * time.Millisecond,
		Retries:      100,
		RetryBackoff: 300 * time.Millisecond,
		Source:       src,
	})

	// The deposed old primary: it will answer every broadcast and reply
	// StatusStale to every request — but it is NOT up yet when the call
	// starts, so the first broadcast fails and burns the initial locate
	// budget (the promotion window the budget exists for).
	staleFB := attach()
	stale := NewServer(staleFB, src)
	var staleServed atomic.Int32
	stale.Handle(OpEcho, func(_ context.Context, _ Meta, _ Request) Reply {
		staleServed.Add(1)
		return ErrReply(StatusStale, "deposed")
	})
	t.Cleanup(func() { stale.Close() })
	port := stale.PutPort()

	done := make(chan error, 1)
	go func() {
		_, err := client.Trans(context.Background(), port, Request{Op: OpEcho})
		done <- err
	}()

	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(20 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(time.Millisecond)
		}
	}

	// Phase 1: the first broadcast fails (nobody up) — initial locate
	// budget spent. The retry backs off 300ms, which is the window the
	// old primary comes up in.
	waitFor("first failed broadcast", func() bool { return res.Stats().Failures >= 1 })
	if err := stale.Start(); err != nil {
		t.Fatal(err)
	}

	// Phase 2: the client finds the old primary and gets StatusStale —
	// the authority change. Let a few stale cycles complete so the
	// evict-and-re-arm has definitely processed client-side (serve N's
	// reply may still be in flight when we observe it; serve N-1's has
	// been answered and acted on).
	waitFor("stale authority to answer repeatedly", func() bool { return staleServed.Load() >= 3 })

	// Phase 3: the old primary drops off the network (partition, not
	// close: in-flight frames die silently, like a crashed machine).
	// The next broadcast fails — the round the re-armed budget pays
	// for. The successor attaches only after that failure is observed,
	// so it is found by the round after, never the first.
	f0 := res.Stats().Failures
	n.Partition(clientFB.Machine(), staleFB.Machine())
	waitFor("a post-partition failed broadcast", func() bool { return res.Stats().Failures > f0 })
	succFB := attach()
	succ := NewServerWithPort(succFB, stale.GetPort())
	succ.Handle(OpEcho, func(_ context.Context, _ Meta, req Request) Reply { return OkReply(req.Data) })
	if err := succ.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { succ.Close() })

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("call died despite retries to spare: %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("call never completed")
	}
}
