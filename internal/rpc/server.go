package rpc

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"amoeba/internal/amnet"
	"amoeba/internal/cap"
	"amoeba/internal/crypto"
	"amoeba/internal/fbox"
)

// Handler processes one request and produces the reply. Handlers run
// on their own goroutine, so a handler may itself perform RPC (the
// flat file server does, for nested block-server transactions).
//
// The context is cancelled when the server shuts down, and carries a
// deadline when the client's request arrived with a remaining-time
// budget (Request.Budget); handlers that issue nested RPC should pass
// it on so the caller's deadline bounds the whole call tree.
type Handler func(ctx context.Context, md Meta, req Request) Reply

// Meta carries per-message transport metadata into handlers.
type Meta struct {
	// From is the hardware source machine of the request.
	From amnet.MachineID
	// Sig is the F-transformed signature F(S) of the request, or zero
	// if unsigned; compare with a published value via fbox.VerifySignature.
	Sig cap.Port
}

// baseCtxKey lets WithoutDeadline recover the server's base context
// from a handler context that carries a request-budget deadline.
type baseCtxKey struct{}

// WithoutDeadline returns a context for work that is past the point of
// no return — cleanup after an irreversible state change — and must
// therefore outlive the caller's deadline. Inside a handler it returns
// the server's base context, which is still cancelled on Server.Close
// so shutdown is not blocked; outside a handler it falls back to
// context.WithoutCancel.
func WithoutDeadline(ctx context.Context) context.Context {
	if base, ok := ctx.Value(baseCtxKey{}).(context.Context); ok {
		return base
	}
	return context.WithoutCancel(ctx)
}

// Server is an Amoeba service process: it chooses a secret get-port G,
// does GET(G) through its F-box, and dispatches arriving requests to
// registered handlers. "Every server has one or more ports to which
// client processes can send messages to contact the service" (§2.2).
type Server struct {
	fb  *fbox.FBox
	get cap.Port

	mu       sync.Mutex
	handlers map[uint16]Handler
	table    *cap.Table
	sealer   CapSealer
	listener *fbox.Listener
	started  bool
	closed   bool
	baseCtx  context.Context
	cancel   context.CancelFunc
	wg       sync.WaitGroup
}

// NewServer creates a server with a fresh secret get-port drawn from
// src (nil selects crypto/rand). The put-port P = F(G) is available
// from PutPort for distribution to clients.
func NewServer(fb *fbox.FBox, src crypto.Source) *Server {
	if src == nil {
		src = crypto.SystemSource()
	}
	return &Server{
		fb:       fb,
		get:      cap.Port(crypto.Rand48(src)),
		handlers: make(map[uint16]Handler),
	}
}

// NewServerWithPort creates a server listening on a specific secret
// get-port (services that must reappear at a well-known put-port after
// a restart persist G and pass it here).
func NewServerWithPort(fb *fbox.FBox, g cap.Port) *Server {
	return &Server{fb: fb, get: g, handlers: make(map[uint16]Handler)}
}

// PutPort returns the public put-port P = F(G).
func (s *Server) PutPort() cap.Port { return s.fb.F(s.get) }

// GetPort returns the secret get-port G. Callers must keep it secret;
// it exists so a service can persist its identity across restarts.
func (s *Server) GetPort() cap.Port { return s.get }

// Handle registers a handler for an opcode. It must be called before
// Start; registering twice for one opcode panics (a wiring bug).
func (s *Server) Handle(op uint16, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		panic("rpc: Handle after Start")
	}
	if _, dup := s.handlers[op]; dup {
		panic(fmt.Sprintf("rpc: duplicate handler for op %#04x", op))
	}
	s.handlers[op] = h
}

// ServeTable wires the standard capability-maintenance opcodes
// (OpRestrict, OpRevoke, OpValidate, OpEcho) to a capability table.
// Every Amoeba service calls this; it is what makes capability
// handling uniform across services.
func (s *Server) ServeTable(t *cap.Table) {
	s.mu.Lock()
	s.table = t
	s.mu.Unlock()
	s.Handle(OpRestrict, func(_ context.Context, _ Meta, req Request) Reply {
		if len(req.Data) != 1 {
			return ErrReply(StatusBadRequest, "restrict wants a 1-byte mask")
		}
		nc, err := t.Restrict(req.Cap, cap.Rights(req.Data[0]))
		if err != nil {
			return ErrReplyFromErr(err)
		}
		return CapReply(nc)
	})
	s.Handle(OpRevoke, func(_ context.Context, _ Meta, req Request) Reply {
		nc, err := t.Revoke(req.Cap)
		if err != nil {
			return ErrReplyFromErr(err)
		}
		return CapReply(nc)
	})
	s.Handle(OpValidate, func(_ context.Context, _ Meta, req Request) Reply {
		rights, err := t.Validate(req.Cap)
		if err != nil {
			return ErrReplyFromErr(err)
		}
		return OkReply([]byte{byte(rights)})
	})
	s.Handle(OpEcho, func(_ context.Context, _ Meta, req Request) Reply {
		return OkReply(req.Data)
	})
}

// Table returns the table registered via ServeTable (nil if none).
func (s *Server) Table() *cap.Table {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.table
}

// SetSealer installs a §2.4 capability sealer: request capabilities
// are decrypted under M[source][me] before dispatch, and capabilities
// in replies are encrypted under M[me][source]. Clients must share the
// matrix (ClientConfig.Sealer). Call before Start.
func (s *Server) SetSealer(sealer CapSealer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		panic("rpc: SetSealer after Start")
	}
	s.sealer = sealer
}

// Start performs GET(G) and begins dispatching. The server advertises
// its port for LOCATE broadcasts. The base context handed to every
// handler is cancelled when Close is called, so in-flight handlers
// (and any nested RPC they issue) shut down gracefully.
func (s *Server) Start() error {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return errors.New("rpc: server already started")
	}
	if s.closed {
		s.mu.Unlock()
		return fbox.ErrClosed
	}
	l, err := s.fb.Get(s.get, true)
	if err != nil {
		s.mu.Unlock()
		return fmt.Errorf("rpc: GET(G): %w", err)
	}
	s.listener = l
	s.started = true
	s.baseCtx, s.cancel = context.WithCancel(context.Background())
	s.mu.Unlock()

	s.wg.Add(1)
	go s.loop(l)
	return nil
}

func (s *Server) loop(l *fbox.Listener) {
	defer s.wg.Done()
	for m := range l.Recv() {
		req, err := DecodeRequest(m.Payload)
		if err != nil {
			s.reply(m, ErrReply(StatusBadRequest, err.Error()))
			continue
		}
		s.mu.Lock()
		h := s.handlers[req.Op]
		sealer := s.sealer
		base := s.baseCtx
		s.mu.Unlock()
		if sealer != nil {
			// A failed Open yields a garbage capability rather than an
			// error (wrong keys are indistinguishable from forgery);
			// genuine errors here mean no key is installed for the
			// source machine.
			req, err = openRequestCap(sealer, req, m.From)
			if err != nil {
				s.reply(m, ErrReply(StatusBadCapability, err.Error()))
				continue
			}
		}
		if h == nil {
			s.reply(m, ErrReply(StatusNoSuchOp, fmt.Sprintf("op %#04x", req.Op)))
			continue
		}
		s.wg.Add(1)
		go func(m fbox.Received, req Request) {
			defer s.wg.Done()
			// The caller's remaining deadline budget (if any) bounds
			// this handler and every nested RPC it issues; the base
			// context stays reachable for WithoutDeadline cleanup.
			ctx := base
			if req.Budget > 0 {
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(base, req.Budget)
				defer cancel()
			}
			ctx = context.WithValue(ctx, baseCtxKey{}, base)
			s.reply(m, h(ctx, Meta{From: m.From, Sig: m.Sig}, req))
		}(m, req)
	}
}

func (s *Server) reply(m fbox.Received, rep Reply) {
	if m.Reply == 0 {
		return // no reply requested
	}
	s.mu.Lock()
	sealer := s.sealer
	s.mu.Unlock()
	if sealer != nil {
		sealed, err := sealReplyCap(sealer, rep, m.From)
		if err != nil {
			rep = ErrReply(StatusServerError, "sealing reply capability: "+err.Error())
		} else {
			rep = sealed
		}
	}
	// Best effort: an unreachable client retries with a new port.
	_ = s.fb.Put(m.From, fbox.Message{Dest: m.Reply, Payload: EncodeReply(rep)})
}

// Close stops the dispatch loop, cancels the context handed to every
// running handler, and waits for them to finish. It does not close the
// F-box (several servers may share one machine).
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	l := s.listener
	cancel := s.cancel
	s.mu.Unlock()
	if l != nil {
		l.Close()
	}
	if cancel != nil {
		cancel()
	}
	s.wg.Wait()
	return nil
}
