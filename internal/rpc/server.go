package rpc

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"amoeba/internal/amnet"
	"amoeba/internal/cap"
	"amoeba/internal/crypto"
	"amoeba/internal/fbox"
	"amoeba/internal/obs"
	"amoeba/internal/wire"
)

// Handler processes one request and produces the reply. Handlers run
// on a bounded worker pool, so a handler may itself perform RPC (the
// flat file server does, for nested block-server transactions) — but a
// handler must never send a request back to its *own* server, which
// could starve the pool.
//
// The context is cancelled when the server shuts down, and carries a
// deadline when the client's request arrived with a remaining-time
// budget (Request.Budget); handlers that issue nested RPC should pass
// it on so the caller's deadline bounds the whole call tree.
type Handler func(ctx context.Context, md Meta, req Request) Reply

// Meta carries per-message transport metadata into handlers.
type Meta struct {
	// From is the hardware source machine of the request.
	From amnet.MachineID
	// Sig is the F-transformed signature F(S) of the request, or zero
	// if unsigned; compare with a published value via fbox.VerifySignature.
	Sig cap.Port
	// ReqID is the client-minted request identifier from the wire
	// header (zero for legacy callers); it ties this request to access
	// log records on every machine it touched.
	ReqID uint64
}

// baseCtxKey lets WithoutDeadline recover the server's base context
// from a handler context that carries a request-budget deadline.
type baseCtxKey struct{}

// WithoutDeadline returns a context for work that is past the point of
// no return — cleanup after an irreversible state change — and must
// therefore outlive the caller's deadline. Inside a handler it returns
// the server's base context, which is still cancelled on Server.Close
// so shutdown is not blocked; outside a handler it falls back to
// context.WithoutCancel.
func WithoutDeadline(ctx context.Context) context.Context {
	if base, ok := ctx.Value(baseCtxKey{}).(context.Context); ok {
		return base
	}
	return context.WithoutCancel(ctx)
}

// ServerConfig tunes a Server. The zero value gets sensible defaults.
type ServerConfig struct {
	// Source supplies the secret get-port randomness (nil selects
	// crypto/rand). Ignored when Port is set.
	Source crypto.Source
	// Port pins the secret get-port G (services that must reappear at
	// a well-known put-port after a restart persist G and pass it
	// here). Zero draws a fresh port from Source.
	Port cap.Port
	// MaxInflight bounds the number of concurrently executing
	// handlers — the worker pool size (default GOMAXPROCS×4). When
	// every worker is busy the dispatch loop stops pulling from the
	// listener, the NIC queue fills, and excess load is shed at the
	// wire instead of as unbounded goroutines. Clients see a timeout
	// and retry, exactly as for a lost frame.
	MaxInflight int
}

// DefaultMaxInflight returns the worker-pool size used when
// ServerConfig.MaxInflight is zero.
func DefaultMaxInflight() int { return 4 * runtime.GOMAXPROCS(0) }

// Server is an Amoeba service process: it chooses a secret get-port G,
// does GET(G) through its F-box, and dispatches arriving requests to
// registered handlers. "Every server has one or more ports to which
// client processes can send messages to contact the service" (§2.2).
//
// Dispatch is bounded: requests run on a pool of MaxInflight workers
// with backpressure, not a goroutine per request.
type Server struct {
	fb          *fbox.FBox
	get         cap.Port
	maxInflight int

	mu       sync.Mutex
	handlers map[uint16]Handler
	inline   map[uint16]bool
	table    *cap.Table
	sealer   CapSealer
	listener *fbox.Listener
	started  bool
	closed   bool
	baseCtx  context.Context
	cancel   context.CancelFunc
	// handlerCtx is baseCtx pre-wrapped with the WithoutDeadline key,
	// built once at Start so the no-deadline dispatch path allocates no
	// context per request.
	handlerCtx context.Context

	// gate is the quiesce point: every accepted request holds it
	// shared for its whole execution (a batch counts once, for all its
	// sub-requests), and Quiesce takes it exclusively — the consistent
	// instant a durable service's checkpoint needs. Handlers never
	// re-enter their own server, so the single shared acquisition per
	// request cannot deadlock against a pending writer.
	gate sync.RWMutex

	// work hands requests to pool workers. It is unbuffered on
	// purpose: a send succeeds only when a worker is actually free,
	// which is what makes batch fan-out (trySubmit-or-inline)
	// deadlock-free.
	work    chan job
	stop    chan struct{}
	tasks   sync.WaitGroup // accepted requests in flight
	loopWG  sync.WaitGroup // the dispatch loop
	workers sync.WaitGroup // pool workers

	// stats, when set before Start, observes every admitted and shed
	// request (SetObserver). Frozen at Start like the handlers.
	stats *obs.ServerStats

	// Admission-control state, all read lock-free on the dispatch path:
	// poolSize mirrors maxInflight for readers outside mu; inflight
	// counts requests handed to (or queued for) the pool; ewmaWait is
	// an EWMA of recent queue waits in nanoseconds (α = 1/8, updated at
	// worker pickup); draining sheds everything once set.
	poolSize atomic.Int64
	inflight atomic.Int64
	ewmaWait atomic.Int64
	draining atomic.Bool

	// admitGate, when set, is consulted before every pool admission; a
	// non-nil error sheds the request with StatusOverload. The serving
	// lease installs itself here so a deposed primary refuses new work
	// at the door. Settable after Start (replication attaches late).
	admitGate atomic.Value // of func() error
}

// job is one unit of worker-pool work: either a decoded request (the
// common case — carried by value so dispatch allocates nothing) or a
// batch sub-request closure.
type job struct {
	fn  func() // batch fan-out; nil for ordinary requests
	m   fbox.Received
	req Request
	enq time.Time // when dispatch queued it (feeds the queue-wait EWMA)
}

// NewServer creates a server with a fresh secret get-port drawn from
// src (nil selects crypto/rand) and the default worker pool. The
// put-port P = F(G) is available from PutPort for distribution to
// clients.
func NewServer(fb *fbox.FBox, src crypto.Source) *Server {
	return NewServerWithConfig(fb, ServerConfig{Source: src})
}

// NewServerWithPort creates a server listening on a specific secret
// get-port (services that must reappear at a well-known put-port after
// a restart persist G and pass it here).
func NewServerWithPort(fb *fbox.FBox, g cap.Port) *Server {
	return NewServerWithConfig(fb, ServerConfig{Port: g})
}

// NewServerWithConfig creates a server with explicit tuning.
func NewServerWithConfig(fb *fbox.FBox, cfg ServerConfig) *Server {
	g := cfg.Port
	if g == 0 {
		src := cfg.Source
		if src == nil {
			src = crypto.SystemSource()
		}
		g = cap.Port(crypto.Rand48(src))
	}
	n := cfg.MaxInflight
	if n <= 0 {
		n = DefaultMaxInflight()
	}
	s := &Server{
		fb:          fb,
		get:         g,
		maxInflight: n,
		handlers:    make(map[uint16]Handler),
	}
	s.poolSize.Store(int64(n))
	return s
}

// MaxInflight returns the worker-pool size.
func (s *Server) MaxInflight() int { return int(s.poolSize.Load()) }

// SetMaxInflight resizes the worker pool (n <= 0 keeps the current
// size). Before Start it simply records the size. After Start it
// resizes LIVE: the server quiesces (every in-flight handler
// finishes), the old workers are told to retire, and n fresh workers
// take over the same work channel — so an operator (or an admission
// controller) can grow or shrink concurrency under load without
// restarting the service. Requests arriving during the resize queue
// behind the quiesce gate exactly as they do for a checkpoint.
func (s *Server) SetMaxInflight(n int) {
	if n <= 0 {
		return
	}
	s.mu.Lock()
	if !s.started || s.closed {
		s.maxInflight = n
		s.poolSize.Store(int64(n))
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()

	// Live resize. The quiesce gate is the barrier: once held, no
	// handler is mid-flight, so every live worker is either idle in its
	// select or parked on the gate with a claimed job — both exit (or
	// proceed and then exit) cleanly when their stop channel closes.
	resume := s.Quiesce()
	defer resume()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || n == s.maxInflight {
		return
	}
	close(s.stop) // retire the old generation as it drains
	s.stop = make(chan struct{})
	s.maxInflight = n
	s.poolSize.Store(int64(n))
	for i := 0; i < n; i++ {
		s.workers.Add(1)
		go s.worker(s.stop)
	}
}

// PutPort returns the public put-port P = F(G).
func (s *Server) PutPort() cap.Port { return s.fb.F(s.get) }

// GetPort returns the secret get-port G. Callers must keep it secret;
// it exists so a service can persist its identity across restarts.
func (s *Server) GetPort() cap.Port { return s.get }

// Handle registers a handler for an opcode. It must be called before
// Start; registering twice for one opcode panics (a wiring bug), as
// does registering the reserved OpBatch.
func (s *Server) Handle(op uint16, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		panic("rpc: Handle after Start")
	}
	if op == OpBatch {
		panic("rpc: OpBatch is reserved (the server implements it)")
	}
	if _, dup := s.handlers[op]; dup {
		panic(fmt.Sprintf("rpc: duplicate handler for op %#04x", op))
	}
	s.handlers[op] = h
}

// HandleInline registers a handler executed directly on the dispatch
// loop — no worker-pool handoff, saving two goroutine switches per
// request. ONLY for services that are inherently serial (the
// replication receiver, whose mutex would serialize pool workers
// anyway): an inline handler blocks ALL of this server's dispatch for
// as long as it runs, and it must never issue RPC back through a loop
// it is standing on. Call before Start.
func (s *Server) HandleInline(op uint16, h Handler) {
	s.Handle(op, h)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.inline == nil {
		s.inline = make(map[uint16]bool)
	}
	s.inline[op] = true
}

// ServeTable wires the standard capability-maintenance opcodes
// (OpRestrict, OpRevoke, OpValidate, OpEcho) to a capability table.
// Every Amoeba service calls this (via the svc kernel); it is what
// makes capability handling uniform across services.
func (s *Server) ServeTable(t *cap.Table) {
	s.ServeTableWithRevoke(t, func(_ context.Context, _ Meta, req Request) Reply {
		nc, err := t.Revoke(req.Cap)
		if err != nil {
			return ErrReplyFromErr(err)
		}
		return CapReply(nc)
	})
}

// ServeTableWithRevoke is ServeTable with a custom OpRevoke handler —
// revocation is the one table op that mutates server state, so durable
// services substitute a handler that writes the re-key ahead to their
// log before replying.
func (s *Server) ServeTableWithRevoke(t *cap.Table, revoke Handler) {
	s.ServeTableWith(t, revoke, nil)
}

// ServeTableWith is the fully-general wiring: a custom revoke handler
// plus an optional wrapper applied to every table handler (the service
// kernel passes its durability barrier, so even a Validate reply —
// which observes table secrets whose re-key record may still be in
// flight — waits for the log).
func (s *Server) ServeTableWith(t *cap.Table, revoke Handler, wrap func(Handler) Handler) {
	if wrap == nil {
		wrap = func(h Handler) Handler { return h }
	}
	s.mu.Lock()
	s.table = t
	s.mu.Unlock()
	s.Handle(OpRestrict, wrap(func(_ context.Context, _ Meta, req Request) Reply {
		if len(req.Data) != 1 {
			return ErrReply(StatusBadRequest, "restrict wants a 1-byte mask")
		}
		nc, err := t.Restrict(req.Cap, cap.Rights(req.Data[0]))
		if err != nil {
			return ErrReplyFromErr(err)
		}
		return CapReply(nc)
	}))
	s.Handle(OpRevoke, wrap(revoke))
	s.Handle(OpValidate, wrap(func(_ context.Context, _ Meta, req Request) Reply {
		rights, err := t.Validate(req.Cap)
		if err != nil {
			return ErrReplyFromErr(err)
		}
		return OkReply([]byte{byte(rights)})
	}))
	s.Handle(OpEcho, wrap(func(_ context.Context, _ Meta, req Request) Reply {
		return OkReply(req.Data)
	}))
}

// Table returns the table registered via ServeTable (nil if none).
func (s *Server) Table() *cap.Table {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.table
}

// SetSealer installs a §2.4 capability sealer: request capabilities
// are decrypted under M[source][me] before dispatch, and capabilities
// in replies are encrypted under M[me][source]. Clients must share the
// matrix (ClientConfig.Sealer). Call before Start.
func (s *Server) SetSealer(sealer CapSealer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		panic("rpc: SetSealer after Start")
	}
	s.sealer = sealer
}

// SetObserver installs the instrumentation handle that records every
// admitted and shed request (metrics + access log). Like the handlers
// and the sealer it is frozen at Start — the per-opcode metric
// families register then — so the dispatch path reads it lock-free.
func (s *Server) SetObserver(st *obs.ServerStats) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		panic("rpc: SetObserver after Start")
	}
	s.stats = st
}

// Start performs GET(G) and begins dispatching. The server advertises
// its port for LOCATE broadcasts. The base context handed to every
// handler is cancelled when Close is called, so in-flight handlers
// (and any nested RPC they issue) shut down gracefully.
//
// Handlers and the sealer are frozen at Start (Handle and SetSealer
// panic afterwards), so the dispatch path reads them without locking.
func (s *Server) Start() error {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return errors.New("rpc: server already started")
	}
	if s.closed {
		s.mu.Unlock()
		return fbox.ErrClosed
	}
	l, err := s.fb.Get(s.get, true)
	if err != nil {
		s.mu.Unlock()
		return fmt.Errorf("rpc: GET(G): %w", err)
	}
	s.listener = l
	s.started = true
	s.baseCtx, s.cancel = context.WithCancel(context.Background())
	s.handlerCtx = context.WithValue(s.baseCtx, baseCtxKey{}, s.baseCtx)
	s.work = make(chan job)
	s.stop = make(chan struct{})
	if s.stats != nil {
		// Freeze the per-opcode metric families now, so the hot path
		// only ever reads the stats maps.
		ops := make([]uint16, 0, len(s.handlers)+1)
		for op := range s.handlers {
			ops = append(ops, op)
		}
		ops = append(ops, OpBatch)
		s.stats.Freeze(ops)
	}
	s.mu.Unlock()

	for i := 0; i < s.maxInflight; i++ {
		s.workers.Add(1)
		go s.worker(s.stop)
	}
	s.loopWG.Add(1)
	go s.loop(l)
	return nil
}

// worker runs pool jobs until its generation's stop channel closes.
// stop is an argument, not the field: a live SetMaxInflight swaps the
// field for the next generation while this one drains.
func (s *Server) worker(stop chan struct{}) {
	defer s.workers.Done()
	for {
		select {
		case j := <-s.work:
			if j.fn != nil {
				j.fn()
				continue
			}
			// Fold this job's queue wait into the EWMA admission
			// control reads (α = 1/8; the racy load/store loses an
			// occasional update, which a smoothed estimate absorbs).
			wait := time.Since(j.enq)
			old := s.ewmaWait.Load()
			s.ewmaWait.Store(old + (int64(wait)-old)/8)
			s.serve(j.m, j.req, wait)
			s.inflight.Add(-1)
			s.tasks.Done()
		case <-stop:
			return
		}
	}
}

func (s *Server) loop(l *fbox.Listener) {
	defer s.loopWG.Done()
	// Handlers and the sealer are frozen at Start; read them lock-free.
	sealer := s.sealer
	for m := range l.Recv() {
		req, err := DecodeRequest(m.Payload)
		if err != nil {
			s.reply(sealer, m, ErrReply(StatusBadRequest, err.Error()))
			m.Release()
			continue
		}
		if sealer != nil {
			// A failed Open yields a garbage capability rather than an
			// error (wrong keys are indistinguishable from forgery);
			// genuine errors here mean no key is installed for the
			// source machine.
			req, err = openRequestCap(sealer, req, m.From)
			if err != nil {
				s.reply(sealer, m, ErrReply(StatusBadCapability, err.Error()))
				m.Release()
				continue
			}
		}
		if req.Op != OpBatch && s.handlers[req.Op] == nil {
			s.reply(sealer, m, ErrReply(StatusNoSuchOp, fmt.Sprintf("op %#04x", req.Op)))
			m.Release()
			continue
		}
		if s.draining.Load() {
			// Graceful drain: everything new is refused — cheaply, with
			// a status that tells the client the work was never started.
			s.shed(sealer, m, req, shedDraining)
			m.Release()
			continue
		}
		if s.inline[req.Op] {
			// Inline fast path (HandleInline): serve on the dispatch
			// loop itself. tasks accounting keeps Close's drain exact.
			s.tasks.Add(1)
			s.serve(m, req, 0)
			s.tasks.Done()
			continue
		}
		if g, _ := s.admitGate.Load().(func() error); g != nil {
			if err := g(); err != nil {
				// A gate refusing because its authority is GONE (deposed,
				// sealed, wedged — never coming back) says so with
				// StatusStale, so clients re-LOCATE at once instead of
				// politely backing off against a corpse.
				if errors.Is(err, ErrStaleAuthority) {
					s.shedStatus(sealer, m, req, StatusStale, []byte(err.Error()))
				} else {
					s.shed(sealer, m, req, []byte(err.Error()))
				}
				m.Release()
				continue
			}
		}
		// Queue wait starts when the frame came off the NIC, not when
		// dispatch got around to it: under a deep burst the listener
		// queue itself holds requests for most of their budget, and an
		// EWMA that ignored that time admitted doomed requests.
		enq := m.At
		if enq.IsZero() {
			enq = time.Now() // hand-built Received (tests, loopback)
		}
		// Deadline-aware admission: if the pool is saturated and recent
		// queue waits already exceed this request's REMAINING budget —
		// budget minus what the listener queue has already consumed —
		// the request would time out in the queue. Executing it then
		// wastes a worker, disk bandwidth and possibly a WAL write on a
		// reply nobody is waiting for. Refuse it NOW, before it costs
		// anything, with a status the client can tell apart from loss.
		if req.Budget > 0 {
			remaining := req.Budget - time.Since(enq)
			if remaining <= 0 || (s.inflight.Load() >= s.poolSize.Load() &&
				time.Duration(s.ewmaWait.Load()) >= remaining) {
				s.shed(sealer, m, req, shedQueueWait)
				m.Release()
				continue
			}
		}
		s.tasks.Add(1)
		s.inflight.Add(1)
		// Backpressure: when every worker is busy this send blocks,
		// the listener queue and then the NIC queue fill, and excess
		// load is shed at the wire — clients time out and retry.
		// Ownership of m's frame buffer rides into the job; the worker
		// releases it once the reply is on the wire.
		s.work <- job{m: m, req: req, enq: enq}
	}
}

// Static shed details: the refusal path must stay cheap under the very
// overload it exists to survive.
var (
	shedDraining  = []byte("server draining")
	shedQueueWait = []byte("queue wait exceeds deadline budget")
)

// shed refuses a request with StatusOverload before it touches the
// worker pool, and counts the refusal.
func (s *Server) shed(sealer CapSealer, m fbox.Received, req Request, detail []byte) {
	s.shedStatus(sealer, m, req, StatusOverload, detail)
}

// shedStatus is shed with an explicit refusal status (StatusStale for
// a gate whose authority is permanently gone).
func (s *Server) shedStatus(sealer CapSealer, m fbox.Received, req Request, status Status, detail []byte) {
	if st := s.stats; st != nil {
		st.ObserveShed(req.Op, req.ID, uint32(m.From), uint16(status),
			time.Duration(s.ewmaWait.Load()))
	}
	s.reply(sealer, m, Reply{Status: status, Data: detail})
}

// serve runs one accepted request on a pool worker. It owns m's frame
// buffer: req.Data (and any reply aliasing it, like OpEcho's) stays
// valid until the reply has been encoded, then the buffer is released.
// wait is how long the request queued before pickup (0 for inline).
func (s *Server) serve(m fbox.Received, req Request, wait time.Duration) {
	defer m.Release()
	s.gate.RLock()
	defer s.gate.RUnlock()
	// The caller's remaining deadline budget (if any) bounds this
	// handler and every nested RPC it issues; the base context stays
	// reachable for WithoutDeadline cleanup. The request ID rides the
	// same context so nested RPC reuses it — the deadline path already
	// allocates a context, so correlation is free where it matters and
	// absent (like the deadline) where the caller declined to pay.
	ctx := s.handlerCtx
	if req.Budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, req.Budget)
		defer cancel()
		if req.ID != 0 {
			ctx = ContextWithRequestID(ctx, req.ID)
		}
	}
	md := Meta{From: m.From, Sig: m.Sig, ReqID: req.ID}
	st := s.stats
	var start time.Time
	if st != nil {
		start = time.Now()
	}
	var rep Reply
	if req.Op == OpBatch {
		rep = s.serveBatch(ctx, s.sealer, md, req)
	} else {
		rep = s.handlers[req.Op](ctx, md, req)
	}
	status := rep.Status
	s.reply(s.sealer, m, rep)
	if st != nil {
		st.Observe(req.Op, req.ID, uint32(m.From), uint16(status), wait, time.Since(start))
	}
}

// serveBatch fans an OpBatch frame's sub-requests out across the
// worker pool and packs the replies, preserving order. Sub-requests
// run concurrently when workers are idle and inline on the batch's own
// worker otherwise, so a pool saturated with batches still makes
// progress (no nested-dispatch deadlock).
func (s *Server) serveBatch(ctx context.Context, sealer CapSealer, md Meta, req Request) Reply {
	raw, err := DecodeBatchItems(req.Data)
	if err != nil {
		return ErrReply(StatusBadRequest, err.Error())
	}
	subs := make([]Request, len(raw))
	for i, b := range raw {
		sub, err := DecodeRequest(b)
		if err != nil {
			return ErrReply(StatusBadRequest, fmt.Sprintf("batch item %d: %v", i, err))
		}
		if sub.Op == OpBatch {
			return ErrReply(StatusBadRequest, "batch transactions may not nest")
		}
		if sealer != nil {
			sub, err = openRequestCap(sealer, sub, md.From)
			if err != nil {
				return ErrReply(StatusBadCapability, fmt.Sprintf("batch item %d: %v", i, err))
			}
		}
		subs[i] = sub
	}
	replies := make([]Reply, len(subs))
	var wg sync.WaitGroup
	for i := range subs {
		i := i
		run := func() {
			defer wg.Done()
			h := s.handlers[subs[i].Op]
			if h == nil {
				replies[i] = ErrReply(StatusNoSuchOp, fmt.Sprintf("op %#04x", subs[i].Op))
				return
			}
			replies[i] = h(ctx, md, subs[i])
		}
		wg.Add(1)
		select {
		case s.work <- job{fn: run}: // an idle worker took it
		default:
			run() // pool busy: the batch's own slot guarantees progress
		}
	}
	wg.Wait()
	size := 0
	for i := range replies {
		if sealer != nil {
			sealed, err := sealReplyCap(sealer, replies[i], md.From)
			if err != nil {
				replies[i].releaseBuf()
				replies[i] = ErrReply(StatusServerError, "sealing reply capability: "+err.Error())
			} else {
				replies[i] = sealed
			}
		}
		size += wireHeader + len(replies[i].Data)
	}
	// An over-MTU reply frame would be dropped by the wire and the
	// client would retry (re-executing the batch) forever; fail loudly
	// instead so the caller learns to chunk.
	if size > MaxBatchBytes {
		for i := range replies {
			replies[i].releaseBuf()
		}
		return ErrReply(StatusBadRequest,
			fmt.Sprintf("batch reply of %d bytes exceeds %d; split the batch", size, MaxBatchBytes))
	}
	// Pack every sub-reply into one pooled buffer handed onward to the
	// reply path, which ships it as the reply frame in place.
	out := NewReplyBuf(2 + size + 4*len(replies))
	appendBatchCount(out, len(replies))
	for i := range replies {
		appendBatchItemHeader(out, wireHeader+len(replies[i].Data))
		appendReply(out, replies[i])
		replies[i].releaseBuf()
	}
	return Reply{Status: StatusOK, Data: out.Bytes(), Buf: out}
}

func (s *Server) reply(sealer CapSealer, m fbox.Received, rep Reply) {
	if m.Reply == 0 {
		rep.releaseBuf()
		return // no reply requested
	}
	if sealer != nil {
		sealed, err := sealReplyCap(sealer, rep, m.From)
		if err != nil {
			rep.releaseBuf()
			rep = ErrReply(StatusServerError, "sealing reply capability: "+err.Error())
		} else {
			rep = sealed // the pooled Buf (if any) rides along
		}
	}
	var b *wire.Buf
	if rep.Buf != nil && replyDataIsBuf(rep) {
		// Zero-copy: the handler built its result in a pooled buffer
		// (NewReplyBuf reserves header headroom); the reply header is
		// prepended in place and the same backing array ships.
		b = rep.Buf
		putReplyHeader(b.Prepend(wireHeader), rep)
	} else {
		// Encode into a pooled frame buffer with headroom for the
		// F-box header, then retire the handler's scratch.
		b = wire.Get(wire.DefaultHeadroom, wireHeader+len(rep.Data))
		appendReply(b, rep)
		rep.releaseBuf()
	}
	// Best effort: an unreachable client retries with a new port.
	_ = s.fb.PutBuf(m.From, m.Reply, 0, 0, b)
}

// replyDataIsBuf reports whether rep.Data is exactly the live payload
// of rep.Buf — the precondition for shipping the handler's buffer
// directly (a sliced or swapped Data falls back to the copying path).
func replyDataIsBuf(rep Reply) bool {
	bb := rep.Buf.Bytes()
	if len(rep.Data) != len(bb) {
		return false
	}
	return len(bb) == 0 || &rep.Data[0] == &bb[0]
}

// SetAdmitGate installs (or, with nil, removes) a predicate consulted
// before every pool admission; a non-nil error sheds the request with
// StatusOverload carrying the error text. Unlike the handlers it may be
// installed or swapped after Start — replication attaches to a running
// kernel — and it must be cheap and non-blocking: it runs on the
// dispatch loop under the very overload it exists to manage.
func (s *Server) SetAdmitGate(g func() error) {
	s.admitGate.Store(g)
}

// Quiesce blocks new request execution and waits for every in-flight
// handler (and its replies) to finish, returning the resume function.
// While quiesced the server's state is still — the window in which a
// durable service snapshots itself for a checkpoint. Dispatch resumes
// when the returned function is called; requests arriving meanwhile
// queue up behind the gate (and, past the queues, shed at the wire).
func (s *Server) Quiesce() (resume func()) {
	s.gate.Lock()
	return s.gate.Unlock
}

// Drain flips the server into refuse-everything mode — every request
// arriving from now on is shed with StatusOverload, never executed —
// and waits for the requests already admitted to finish. The listener
// stays up (clients get a crisp refusal rather than silence) and the
// server's state stops changing, which is the moment a graceful
// shutdown wants for its final checkpoint. Drain does not reverse;
// the only exit is Close.
func (s *Server) Drain() {
	s.draining.Store(true)
	s.tasks.Wait()
}

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// QueueWaitEWMA returns the smoothed recent queue wait admission
// control compares deadline budgets against.
func (s *Server) QueueWaitEWMA() time.Duration {
	return time.Duration(s.ewmaWait.Load())
}

// Inflight returns the number of requests currently queued for or
// occupying pool workers (the queue-depth gauge).
func (s *Server) Inflight() int { return int(s.inflight.Load()) }

// Close stops the dispatch loop, cancels the context handed to every
// running handler, waits for accepted requests to finish, and retires
// the worker pool. It does not close the F-box (several servers may
// share one machine).
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	l := s.listener
	cancel := s.cancel
	stop := s.stop
	s.mu.Unlock()
	if l != nil {
		l.Close()
	}
	if cancel != nil {
		cancel()
	}
	s.loopWG.Wait() // drains any remaining queued messages to workers
	s.tasks.Wait()  // every accepted request has replied
	if stop != nil {
		close(stop)
	}
	s.workers.Wait()
	return nil
}
