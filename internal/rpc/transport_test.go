package rpc

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"amoeba/internal/amnet"
	"amoeba/internal/cap"
	"amoeba/internal/crypto"
	"amoeba/internal/fbox"
	"amoeba/internal/locate"
)

// testRig wires a client and a server machine on a simnet.
type testRig struct {
	net      *amnet.SimNet
	clientFB *fbox.FBox
	serverFB *fbox.FBox
	client   *Client
	server   *Server
	table    *cap.Table
}

func newTestRig(t *testing.T, schemeID cap.SchemeID) *testRig {
	t.Helper()
	n := amnet.NewSimNet(amnet.SimConfig{})
	t.Cleanup(func() { n.Close() })
	attach := func() *fbox.FBox {
		nic, err := n.Attach()
		if err != nil {
			t.Fatal(err)
		}
		fb := fbox.New(nic, nil)
		t.Cleanup(func() { fb.Close() })
		return fb
	}
	r := &testRig{net: n, clientFB: attach(), serverFB: attach()}

	src := crypto.NewSeededSource(0x5EED)
	r.server = NewServer(r.serverFB, src)
	scheme, err := cap.NewScheme(schemeID)
	if err != nil {
		t.Fatal(err)
	}
	r.table = cap.NewTable(scheme, r.server.PutPort(), src)
	r.server.ServeTable(r.table)

	res := locate.New(r.clientFB, locate.Config{Timeout: 200 * time.Millisecond, Attempts: 3})
	r.client = NewClient(r.clientFB, res, ClientConfig{Timeout: 500 * time.Millisecond, Retries: 2, Source: src})
	return r
}

func (r *testRig) start(t *testing.T) {
	t.Helper()
	if err := r.server.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.server.Close() })
}

func TestTransEcho(t *testing.T) {
	ctx := context.Background()
	r := newTestRig(t, cap.SchemeOneWay)
	r.start(t)
	rep, err := r.client.Trans(ctx, r.server.PutPort(), Request{Op: OpEcho, Data: []byte("ping")})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != StatusOK || string(rep.Data) != "ping" {
		t.Fatalf("reply %+v", rep)
	}
}

func TestTransUnknownOp(t *testing.T) {
	ctx := context.Background()
	r := newTestRig(t, cap.SchemeOneWay)
	r.start(t)
	rep, err := r.client.Trans(ctx, r.server.PutPort(), Request{Op: 0x1234})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != StatusNoSuchOp {
		t.Fatalf("status %v", rep.Status)
	}
}

func TestCallConvertsStatus(t *testing.T) {
	ctx := context.Background()
	r := newTestRig(t, cap.SchemeOneWay)
	r.start(t)
	_, err := r.client.Call(ctx, cap.Capability{Server: r.server.PutPort()}, 0x1234, nil)
	if !IsStatus(err, StatusNoSuchOp) {
		t.Fatalf("err = %v", err)
	}
}

func TestEndToEndCapabilityLifecycle(t *testing.T) {
	ctx := context.Background()
	// Create (server-side), validate, restrict, revoke over the wire.
	for _, id := range cap.AllSchemeIDs() {
		t.Run(id.String(), func(t *testing.T) {
			r := newTestRig(t, id)
			r.start(t)

			owner, err := r.table.Create()
			if err != nil {
				t.Fatal(err)
			}
			rights, err := r.client.Validate(ctx, owner)
			if err != nil {
				t.Fatal(err)
			}
			if rights != cap.AllRights {
				t.Fatalf("owner rights %v", rights)
			}

			if id != cap.SchemeCompare {
				weak, err := r.client.Restrict(ctx, owner, cap.RightRead)
				if err != nil {
					t.Fatal(err)
				}
				wr, err := r.client.Validate(ctx, weak)
				if err != nil {
					t.Fatal(err)
				}
				if wr != cap.RightRead {
					t.Fatalf("restricted rights %v", wr)
				}
				fresh, err := r.client.Revoke(ctx, owner)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := r.client.Validate(ctx, weak); !IsStatus(err, StatusBadCapability) {
					t.Fatalf("revoked cap still validates: %v", err)
				}
				if _, err := r.client.Validate(ctx, fresh); err != nil {
					t.Fatalf("fresh cap: %v", err)
				}
			}
		})
	}
}

func TestForgedCapabilityRejectedOverWire(t *testing.T) {
	ctx := context.Background()
	r := newTestRig(t, cap.SchemeOneWay)
	r.start(t)
	owner, err := r.table.Create()
	if err != nil {
		t.Fatal(err)
	}
	forged := owner
	forged.Check ^= 0x1
	if _, err := r.client.Validate(ctx, forged); !IsStatus(err, StatusBadCapability) {
		t.Fatalf("forged capability: %v", err)
	}
}

func TestTransTimeoutWhenServerDown(t *testing.T) {
	ctx := context.Background()
	r := newTestRig(t, cap.SchemeOneWay)
	r.start(t)
	// Resolve once so the port is cached, then kill the server.
	if _, err := r.client.Trans(ctx, r.server.PutPort(), Request{Op: OpEcho}); err != nil {
		t.Fatal(err)
	}
	r.server.Close()
	_, err := r.client.Trans(ctx, r.server.PutPort(), Request{Op: OpEcho})
	if err == nil {
		t.Fatal("transaction to dead server succeeded")
	}
}

func TestServerRestartFoundByRetry(t *testing.T) {
	ctx := context.Background()
	// A restarted server (same get-port, different machine) is found
	// again because timeout invalidates the locate cache.
	r := newTestRig(t, cap.SchemeOneWay)
	r.start(t)
	g := r.server.GetPort()
	if _, err := r.client.Trans(ctx, r.server.PutPort(), Request{Op: OpEcho}); err != nil {
		t.Fatal(err)
	}
	r.server.Close()

	nic, err := r.net.Attach()
	if err != nil {
		t.Fatal(err)
	}
	fb2 := fbox.New(nic, nil)
	t.Cleanup(func() { fb2.Close() })
	s2 := NewServerWithPort(fb2, g)
	s2.Handle(OpEcho, func(_ context.Context, _ Meta, req Request) Reply { return OkReply(req.Data) })
	if err := s2.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s2.Close() })

	rep, err := r.client.Trans(ctx, s2.PutPort(), Request{Op: OpEcho, Data: []byte("again")})
	if err != nil {
		t.Fatal(err)
	}
	if string(rep.Data) != "again" {
		t.Fatalf("reply %+v", rep)
	}
}

func TestConcurrentTransactions(t *testing.T) {
	ctx := context.Background()
	r := newTestRig(t, cap.SchemeOneWay)
	r.start(t)
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rep, err := r.client.Trans(ctx, r.server.PutPort(), Request{Op: OpEcho, Data: []byte{byte(i)}})
			if err != nil {
				errs <- err
				return
			}
			if len(rep.Data) != 1 || rep.Data[0] != byte(i) {
				errs <- errors.New("reply cross-wired between transactions")
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestSignedTransaction(t *testing.T) {
	r := newTestRig(t, cap.SchemeOneWay)
	signer := fbox.NewSigner(crypto.NewSeededSource(77), nil)
	sigSeen := make(chan cap.Port, 1)
	r.server.Handle(0x42, func(_ context.Context, md Meta, _ Request) Reply {
		select {
		case sigSeen <- md.Sig:
		default:
		}
		return OkReply(nil)
	})
	r.start(t)
	if _, err := r.client.TransSigned(r.server.PutPort(), Request{Op: 0x42}, signer); err != nil {
		t.Fatal(err)
	}
	got := <-sigSeen
	if got != signer.Public() {
		t.Fatalf("server saw signature %v, want published %v", got, signer.Public())
	}
}

func TestHandlerPanicsOnDuplicates(t *testing.T) {
	r := newTestRig(t, cap.SchemeOneWay)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Handle did not panic")
		}
	}()
	r.server.Handle(OpEcho, func(context.Context, Meta, Request) Reply { return Reply{} })
}

func TestServerDoubleStart(t *testing.T) {
	r := newTestRig(t, cap.SchemeOneWay)
	r.start(t)
	if err := r.server.Start(); err == nil {
		t.Fatal("second Start succeeded")
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	r := newTestRig(t, cap.SchemeOneWay)
	r.start(t)
	if err := r.server.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.server.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestMalformedRequestGetsBadRequest(t *testing.T) {
	ctx := context.Background()
	// Drive the F-box directly with a garbage payload; the server must
	// answer StatusBadRequest rather than dropping or crashing.
	r := newTestRig(t, cap.SchemeOneWay)
	r.start(t)
	g := cap.Port(crypto.Rand48(crypto.NewSeededSource(9)))
	l, err := r.clientFB.Get(g, false)
	if err != nil {
		t.Fatal(err)
	}
	res := locate.New(r.clientFB, locate.Config{Timeout: 200 * time.Millisecond})
	machine, err := res.Lookup(ctx, r.server.PutPort())
	if err != nil {
		t.Fatal(err)
	}
	err = r.clientFB.Put(machine, fbox.Message{
		Dest:    r.server.PutPort(),
		Reply:   g,
		Payload: []byte("not an rpc"),
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-l.Recv():
		rep, err := DecodeReply(m.Payload)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Status != StatusBadRequest {
			t.Fatalf("status %v", rep.Status)
		}
	case <-time.After(time.Second):
		t.Fatal("no reply to malformed request")
	}
}

func TestClientConfigDefaults(t *testing.T) {
	cfg := ClientConfig{}.withDefaults()
	if cfg.Timeout <= 0 || cfg.Retries == 0 || cfg.Source == nil {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	noRetry := ClientConfig{Retries: -1}.withDefaults()
	if noRetry.Retries != 0 {
		t.Fatalf("Retries=-1 should mean zero retries, got %d", noRetry.Retries)
	}
}
