package rpc

import (
	"amoeba/internal/amnet"
	"amoeba/internal/cap"
)

// CapSealer encrypts capabilities in flight, keyed by the pair of
// machines involved — the §2.4 key matrix. keymatrix.Guard implements
// it. When a sealer is installed on a Client and a Server, the
// capability in every request header travels as M[src][dst]-encrypted
// bytes, and capabilities in replies travel encrypted the other way;
// the data fields stay in the clear ("the data need not be
// encrypted"). A wiretapper sees only ciphertext, and a replay from a
// different machine decrypts to garbage that fails the object-table
// check.
//
// Sealing composes with, and is independent of, the F-box: the paper
// offers the two mechanisms as alternatives, and this library lets
// either or both run.
//
// Scope: only the header capability slot is sealed. Capabilities that
// applications embed in the *data* field (directory Enter, bank
// Transfer destinations, MAKE PROCESS segment lists) are opaque bytes
// to this layer; applications needing them protected in flight seal
// them explicitly with the same Guard before embedding, or rely on the
// F-box. The paper's header format has the same property: the one
// architectural capability slot is what the system knows about.
type CapSealer interface {
	// Seal encrypts c for transmission to machine dst.
	Seal(c cap.Capability, dst amnet.MachineID) ([cap.Size]byte, error)
	// Open decrypts a received capability from machine src.
	Open(enc [cap.Size]byte, src amnet.MachineID) (cap.Capability, error)
}

// sealRequestCap returns req with its capability sealed for dst.
// The nil capability is never sealed: operations that name no object
// (OpEcho, block-server OpStat, create calls) keep a zero slot, and
// the receiver skips opening it. This leaks one bit (object vs no
// object), not any capability material.
func sealRequestCap(s CapSealer, req Request, dst amnet.MachineID) (Request, error) {
	if s == nil || req.Cap.IsNil() {
		return req, nil
	}
	enc, err := s.Seal(req.Cap, dst)
	if err != nil {
		return Request{}, err
	}
	c, err := cap.Decode(enc[:])
	if err != nil {
		return Request{}, err
	}
	req.Cap = c
	return req, nil
}

// openRequestCap inverts sealRequestCap on the server.
func openRequestCap(s CapSealer, req Request, src amnet.MachineID) (Request, error) {
	if s == nil || req.Cap.IsNil() {
		return req, nil
	}
	plain, err := s.Open(req.Cap.Encode(), src)
	if err != nil {
		return Request{}, err
	}
	req.Cap = plain
	return req, nil
}

// sealReplyCap seals the capability a reply carries toward dst.
func sealReplyCap(s CapSealer, rep Reply, dst amnet.MachineID) (Reply, error) {
	if s == nil || rep.Cap.IsNil() {
		return rep, nil
	}
	enc, err := s.Seal(rep.Cap, dst)
	if err != nil {
		return Reply{}, err
	}
	c, err := cap.Decode(enc[:])
	if err != nil {
		return Reply{}, err
	}
	rep.Cap = c
	return rep, nil
}

// openReplyCap inverts sealReplyCap on the client.
func openReplyCap(s CapSealer, rep Reply, src amnet.MachineID) (Reply, error) {
	if s == nil || rep.Cap.IsNil() {
		return rep, nil
	}
	plain, err := s.Open(rep.Cap.Encode(), src)
	if err != nil {
		return Reply{}, err
	}
	rep.Cap = plain
	return rep, nil
}
