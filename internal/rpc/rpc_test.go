package rpc

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"amoeba/internal/cap"
)

func TestRequestCodecRoundTrip(t *testing.T) {
	prop := func(op uint16, server uint64, object uint32, rights uint8, check uint64, data []byte) bool {
		req := Request{
			Cap: cap.Capability{
				Server: cap.Port(server) & cap.PortMask,
				Object: object & cap.ObjectMask,
				Rights: cap.Rights(rights),
				Check:  check & cap.CheckMask,
			},
			Op:   op,
			Data: data,
		}
		dec, err := DecodeRequest(EncodeRequest(req))
		return err == nil && dec.Op == req.Op && dec.Cap == req.Cap && bytes.Equal(dec.Data, req.Data)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReplyCodecRoundTrip(t *testing.T) {
	prop := func(status uint16, check uint64, data []byte) bool {
		rep := Reply{
			Status: Status(status),
			Cap:    cap.Capability{Check: check & cap.CheckMask},
			Data:   data,
		}
		dec, err := DecodeReply(EncodeReply(rep))
		return err == nil && dec.Status == rep.Status && dec.Cap == rep.Cap && bytes.Equal(dec.Data, rep.Data)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	if _, err := DecodeRequest([]byte{1, 2, 3}); !errors.Is(err, ErrBadMessage) {
		t.Errorf("short request: %v", err)
	}
	if _, err := DecodeReply(nil); !errors.Is(err, ErrBadMessage) {
		t.Errorf("nil reply: %v", err)
	}
	// Length field inconsistent with actual data.
	good := EncodeRequest(Request{Data: []byte("abc")})
	if _, err := DecodeRequest(good[:len(good)-1]); !errors.Is(err, ErrBadMessage) {
		t.Errorf("truncated request: %v", err)
	}
	grown := append(EncodeReply(Reply{}), 0xff)
	if _, err := DecodeReply(grown); !errors.Is(err, ErrBadMessage) {
		t.Errorf("padded reply: %v", err)
	}
}

func TestStatusStrings(t *testing.T) {
	tests := []struct {
		s    Status
		want string
	}{
		{StatusOK, "ok"},
		{StatusBadCapability, "bad capability"},
		{StatusNoPermission, "no permission"},
		{StatusBadRequest, "bad request"},
		{StatusNoSuchOp, "no such operation"},
		{StatusServerError, "server error"},
		{Status(42), "status(42)"},
	}
	for _, tc := range tests {
		if got := tc.s.String(); got != tc.want {
			t.Errorf("%d: %q want %q", tc.s, got, tc.want)
		}
	}
}

func TestStatusErr(t *testing.T) {
	if err := StatusOK.Err(); err != nil {
		t.Fatalf("StatusOK.Err() = %v", err)
	}
	err := StatusNoPermission.Err()
	if err == nil || !IsStatus(err, StatusNoPermission) {
		t.Fatalf("Err/IsStatus mismatch: %v", err)
	}
	if IsStatus(err, StatusBadCapability) {
		t.Fatal("IsStatus matched the wrong status")
	}
	if IsStatus(errors.New("other"), StatusOK) {
		t.Fatal("IsStatus matched a non-status error")
	}
}

func TestStatusErrorDetail(t *testing.T) {
	e := &StatusError{Status: StatusServerError, Detail: "disk on fire"}
	if e.Error() != "rpc: server error: disk on fire" {
		t.Errorf("Error() = %q", e.Error())
	}
	bare := &StatusError{Status: StatusBadRequest}
	if bare.Error() != "rpc: bad request" {
		t.Errorf("Error() = %q", bare.Error())
	}
}

func TestStatusFromErr(t *testing.T) {
	tests := []struct {
		err  error
		want Status
	}{
		{nil, StatusOK},
		{cap.ErrPermission, StatusNoPermission},
		{cap.ErrInvalidCapability, StatusBadCapability},
		{cap.ErrNoSuchObject, StatusBadCapability},
		{errors.New("anything else"), StatusServerError},
	}
	for _, tc := range tests {
		if got := StatusFromErr(tc.err); got != tc.want {
			t.Errorf("StatusFromErr(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}

func TestReplyHelpers(t *testing.T) {
	if r := OkReply([]byte("x")); r.Status != StatusOK || string(r.Data) != "x" {
		t.Errorf("OkReply = %+v", r)
	}
	c := cap.Capability{Object: 5}
	if r := CapReply(c); r.Status != StatusOK || r.Cap != c {
		t.Errorf("CapReply = %+v", r)
	}
	if r := ErrReply(StatusBadRequest, "why"); r.Status != StatusBadRequest || string(r.Data) != "why" {
		t.Errorf("ErrReply = %+v", r)
	}
	if r := ErrReplyFromErr(cap.ErrPermission); r.Status != StatusNoPermission {
		t.Errorf("ErrReplyFromErr = %+v", r)
	}
}
