package rpc

import (
	"context"
	"testing"
	"time"

	"amoeba/internal/amnet"
	"amoeba/internal/cap"
	"amoeba/internal/crypto"
	"amoeba/internal/fbox"
	"amoeba/internal/keymatrix"
	"amoeba/internal/locate"
)

// sealedRig wires a client and server sharing a key matrix, plus an
// intruder machine with its own guard (he is *in* the matrix — the
// danger is replay, not missing keys).
type sealedRig struct {
	net      *amnet.SimNet
	client   *Client
	server   *Server
	table    *cap.Table
	clientFB *fbox.FBox
	serverFB *fbox.FBox
	cGuard   *keymatrix.Guard
	sGuard   *keymatrix.Guard
}

func newSealedRig(t *testing.T) *sealedRig {
	t.Helper()
	n := amnet.NewSimNet(amnet.SimConfig{})
	t.Cleanup(func() { n.Close() })
	attach := func() *fbox.FBox {
		nic, err := n.Attach()
		if err != nil {
			t.Fatal(err)
		}
		fb := fbox.New(nic, nil)
		t.Cleanup(func() { fb.Close() })
		return fb
	}
	r := &sealedRig{net: n, clientFB: attach(), serverFB: attach()}

	src := crypto.NewSeededSource(0x5EA1)
	matrix := keymatrix.NewMatrix(src)
	peers := []amnet.MachineID{r.clientFB.Machine(), r.serverFB.Machine()}
	r.cGuard = matrix.Guard(r.clientFB.Machine(), peers, nil)
	r.sGuard = matrix.Guard(r.serverFB.Machine(), peers, nil)

	r.server = NewServer(r.serverFB, src)
	scheme, err := cap.NewScheme(cap.SchemeOneWay)
	if err != nil {
		t.Fatal(err)
	}
	r.table = cap.NewTable(scheme, r.server.PutPort(), src)
	r.server.ServeTable(r.table)
	r.server.SetSealer(r.sGuard)

	res := locate.New(r.clientFB, locate.Config{Timeout: 200 * time.Millisecond})
	r.client = NewClient(r.clientFB, res, ClientConfig{
		Timeout: 750 * time.Millisecond,
		Source:  src,
		Sealer:  r.cGuard,
	})
	if err := r.server.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.server.Close() })
	return r
}

func TestSealedTransactionWorks(t *testing.T) {
	ctx := context.Background()
	r := newSealedRig(t)
	owner, err := r.table.Create()
	if err != nil {
		t.Fatal(err)
	}
	rights, err := r.client.Validate(ctx, owner)
	if err != nil {
		t.Fatal(err)
	}
	if rights != cap.AllRights {
		t.Fatalf("rights %v", rights)
	}
	// Reply capabilities (restrict) are sealed server→client and
	// opened transparently.
	weak, err := r.client.Restrict(ctx, owner, cap.RightRead)
	if err != nil {
		t.Fatal(err)
	}
	wr, err := r.client.Validate(ctx, weak)
	if err != nil {
		t.Fatal(err)
	}
	if wr != cap.RightRead {
		t.Fatalf("restricted rights %v", wr)
	}
}

func TestSealedCapabilityNeverInClearOnWire(t *testing.T) {
	ctx := context.Background()
	r := newSealedRig(t)
	owner, err := r.table.Create()
	if err != nil {
		t.Fatal(err)
	}
	tap, err := r.net.Tap()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.client.Validate(ctx, owner); err != nil {
		t.Fatal(err)
	}
	wire := owner.Encode()
	deadline := time.After(200 * time.Millisecond)
	frames := 0
	for {
		select {
		case f := <-tap.Recv():
			frames++
			for i := 0; i+cap.Size <= len(f.Payload); i++ {
				if string(f.Payload[i:i+cap.Size]) == string(wire[:]) {
					t.Fatal("plaintext capability observed on the wire")
				}
			}
		case <-deadline:
			if frames == 0 {
				t.Fatal("tap captured nothing")
			}
			return
		}
	}
}

func TestSealedMismatchRejected(t *testing.T) {
	ctx := context.Background()
	// A client without the matrix (no sealer) sends plaintext
	// capabilities; the sealed server decrypts them into garbage and
	// the table rejects them. Two protection layers composing.
	r := newSealedRig(t)
	owner, err := r.table.Create()
	if err != nil {
		t.Fatal(err)
	}
	res := locate.New(r.clientFB, locate.Config{Timeout: 200 * time.Millisecond})
	plainClient := NewClient(r.clientFB, res, ClientConfig{
		Timeout: 750 * time.Millisecond,
		Source:  crypto.NewSeededSource(2),
		// no Sealer
	})
	if _, err := plainClient.Validate(ctx, owner); !IsStatus(err, StatusBadCapability) {
		t.Fatalf("plaintext capability against sealed server: %v", err)
	}
}

func TestSealedNilCapabilityPassesThrough(t *testing.T) {
	ctx := context.Background()
	// Echo carries no capability; sealing must not mangle it.
	r := newSealedRig(t)
	rep, err := r.client.Trans(ctx, r.server.PutPort(), Request{Op: OpEcho, Data: []byte("ping")})
	if err != nil || rep.Status != StatusOK || string(rep.Data) != "ping" {
		t.Fatalf("echo: %v %v %q", err, rep.Status, rep.Data)
	}
}

func TestSealedReplayFromOtherMachineFails(t *testing.T) {
	ctx := context.Background()
	// The full §2.4 replay over a real (simulated) wire: the intruder
	// captures a sealed request frame and re-transmits it verbatim
	// from his own machine. The server decrypts the capability under
	// M[intruder][server] and the object table rejects it.
	r := newSealedRig(t)
	owner, err := r.table.Create()
	if err != nil {
		t.Fatal(err)
	}
	// Intruder taps the wire and has a NIC of his own.
	tap, err := r.net.Tap()
	if err != nil {
		t.Fatal(err)
	}
	intNIC, err := r.net.Attach()
	if err != nil {
		t.Fatal(err)
	}
	defer intNIC.Close()
	// The server must know keys for the intruder machine, else the
	// replay fails for the boring reason "no key". Install some.
	r.sGuard.SetRecvKey(intNIC.ID(), 0xD00D)
	r.sGuard.SetSendKey(intNIC.ID(), 0xD00E)

	if _, err := r.client.Validate(ctx, owner); err != nil {
		t.Fatal(err)
	}
	// Find the captured request frame (client → server).
	var captured amnet.Frame
	deadline := time.After(500 * time.Millisecond)
capture:
	for {
		select {
		case f := <-tap.Recv():
			if f.Src == r.clientFB.Machine() && f.Dst == r.serverFB.Machine() {
				captured = f
				break capture
			}
		case <-deadline:
			t.Fatal("no frame captured")
		}
	}

	// Replay it byte-for-byte from the intruder's machine, with a
	// listener for the reply (the reply port inside the frame is the
	// original client's, so watch the client's machine get the answer
	// — but the answer must be a rejection).
	// Simpler and stronger: replace the reply port with one the
	// intruder owns, keeping the sealed capability bytes intact.
	g := cap.Port(0xD5)
	il := fbox.New(intNIC, nil)
	defer il.Close()
	lst, err := il.Get(g, false)
	if err != nil {
		t.Fatal(err)
	}
	// Reconstruct the frame: kind(1) dest(6) reply(6) sig(6) payload.
	payload := append([]byte(nil), captured.Payload...)
	if len(payload) < 19 {
		t.Fatal("captured frame too short")
	}
	// Overwrite the (transformed) reply port field with F(g) — computed
	// by the intruder's own F-box semantics via Put below. We inject at
	// the NIC level to keep the sealed bytes verbatim, so transform
	// manually using the same public F.
	fp := il.F(g)
	payload[7] = byte(fp >> 40)
	payload[8] = byte(fp >> 32)
	payload[9] = byte(fp >> 24)
	payload[10] = byte(fp >> 16)
	payload[11] = byte(fp >> 8)
	payload[12] = byte(fp)
	if err := intNIC.Send(r.serverFB.Machine(), payload); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-lst.Recv():
		rep, err := DecodeReply(m.Payload)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Status != StatusBadCapability {
			t.Fatalf("replayed request got status %v; the key matrix failed", rep.Status)
		}
	case <-time.After(time.Second):
		t.Fatal("no reply to replay")
	}
}
