package rpc

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"amoeba/internal/amnet"
	"amoeba/internal/cap"
	"amoeba/internal/crypto"
	"amoeba/internal/fbox"
	"amoeba/internal/locate"
)

func TestBatchEchoRoundTrip(t *testing.T) {
	ctx := context.Background()
	r := newTestRig(t, cap.SchemeOneWay)
	r.start(t)
	reqs := make([]Request, 10)
	for i := range reqs {
		reqs[i] = Request{Op: OpEcho, Data: []byte(fmt.Sprintf("item-%d", i))}
	}
	reps, err := r.client.Batch(ctx, r.server.PutPort(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != len(reqs) {
		t.Fatalf("got %d replies, want %d", len(reps), len(reqs))
	}
	for i, rep := range reps {
		if rep.Status != StatusOK || string(rep.Data) != fmt.Sprintf("item-%d", i) {
			t.Fatalf("reply %d out of order or failed: %+v", i, rep)
		}
	}
}

func TestBatchMixedStatuses(t *testing.T) {
	ctx := context.Background()
	r := newTestRig(t, cap.SchemeOneWay)
	r.start(t)
	owner, err := r.table.Create()
	if err != nil {
		t.Fatal(err)
	}
	forged := owner
	forged.Check ^= 1
	reqs := []Request{
		{Cap: owner, Op: OpValidate},
		{Cap: forged, Op: OpValidate},
		{Op: 0x7777}, // unregistered
		{Op: OpEcho, Data: []byte("ok")},
	}
	reps, err := r.client.Batch(ctx, r.server.PutPort(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	want := []Status{StatusOK, StatusBadCapability, StatusNoSuchOp, StatusOK}
	for i, rep := range reps {
		if rep.Status != want[i] {
			t.Errorf("item %d: status %v, want %v", i, rep.Status, want[i])
		}
	}
}

func TestBatchCarriesCapabilities(t *testing.T) {
	ctx := context.Background()
	r := newTestRig(t, cap.SchemeOneWay)
	r.start(t)
	owner, err := r.table.Create()
	if err != nil {
		t.Fatal(err)
	}
	reps, err := r.client.Batch(ctx, r.server.PutPort(), []Request{
		{Cap: owner, Op: OpRestrict, Data: []byte{byte(cap.RightRead)}},
		{Cap: owner, Op: OpRestrict, Data: []byte{byte(cap.RightWrite)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, wantRights := range []cap.Rights{cap.RightRead, cap.RightWrite} {
		if reps[i].Status != StatusOK {
			t.Fatalf("item %d: %+v", i, reps[i])
		}
		got, err := r.table.Validate(reps[i].Cap)
		if err != nil || got != wantRights {
			t.Fatalf("item %d: restricted cap validates to %v, %v", i, got, err)
		}
	}
}

func TestBatchRejectsNesting(t *testing.T) {
	ctx := context.Background()
	r := newTestRig(t, cap.SchemeOneWay)
	r.start(t)
	inner := EncodeBatchItems([][]byte{EncodeRequest(Request{Op: OpEcho})})
	_, err := r.client.Batch(ctx, r.server.PutPort(), []Request{{Op: OpBatch, Data: inner}})
	if !IsStatus(err, StatusBadRequest) {
		t.Fatalf("nested batch: %v", err)
	}
}

func TestBatchEmptyAndOversize(t *testing.T) {
	ctx := context.Background()
	r := newTestRig(t, cap.SchemeOneWay)
	r.start(t)
	reps, err := r.client.Batch(ctx, r.server.PutPort(), nil)
	if err != nil || reps != nil {
		t.Fatalf("empty batch: %v, %v", reps, err)
	}
	big := make([]Request, 2)
	for i := range big {
		big[i] = Request{Op: OpEcho, Data: make([]byte, MaxBatchBytes/2+1024)}
	}
	if _, err := r.client.Batch(ctx, r.server.PutPort(), big); err == nil {
		t.Fatal("oversize batch accepted")
	}
	many := make([]Request, MaxBatchItems+1)
	for i := range many {
		many[i] = Request{Op: OpEcho}
	}
	if _, err := r.client.Batch(ctx, r.server.PutPort(), many); err == nil {
		t.Fatal("over-count batch accepted")
	}
}

func TestBatchItemsCodec(t *testing.T) {
	items := [][]byte{[]byte("a"), {}, []byte("longer item")}
	got, err := DecodeBatchItems(EncodeBatchItems(items))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(items) {
		t.Fatalf("%d items", len(got))
	}
	for i := range items {
		if string(got[i]) != string(items[i]) {
			t.Fatalf("item %d: %q", i, got[i])
		}
	}
	for _, bad := range [][]byte{
		{},
		{0, 1},                                // count 1, no items
		{0, 1, 0, 0, 0, 9, 1},                 // truncated item
		append(EncodeBatchItems(items), 0xFF), // trailing bytes
	} {
		if _, err := DecodeBatchItems(bad); err == nil {
			t.Fatalf("malformed batch %v accepted", bad)
		}
	}
}

func TestHandleRefusesOpBatch(t *testing.T) {
	r := newTestRig(t, cap.SchemeOneWay)
	defer func() {
		if recover() == nil {
			t.Fatal("Handle(OpBatch) did not panic")
		}
	}()
	r.server.Handle(OpBatch, func(context.Context, Meta, Request) Reply { return Reply{} })
}

// TestBatchUnderSaturatedPool proves the fan-out cannot deadlock: a
// tiny pool is filled entirely with batches, whose sub-requests must
// then run inline on the batch's own worker.
func TestBatchUnderSaturatedPool(t *testing.T) {
	ctx := context.Background()
	r := newPoolRig(t, 2)
	r.start(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			reqs := make([]Request, 16)
			for i := range reqs {
				reqs[i] = Request{Op: OpEcho, Data: []byte{byte(g), byte(i)}}
			}
			reps, err := r.client.Batch(ctx, r.server.PutPort(), reqs, WithTimeout(5*time.Second), WithRetries(0))
			if err != nil {
				t.Errorf("goroutine %d: %v", g, err)
				return
			}
			for i, rep := range reps {
				if rep.Status != StatusOK || len(rep.Data) != 2 || rep.Data[0] != byte(g) || rep.Data[1] != byte(i) {
					t.Errorf("goroutine %d item %d: %+v", g, i, rep)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// newPoolRig is newTestRig with an explicit MaxInflight.
func newPoolRig(t *testing.T, maxInflight int) *testRig {
	t.Helper()
	n := amnet.NewSimNet(amnet.SimConfig{})
	t.Cleanup(func() { n.Close() })
	attach := func() *fbox.FBox {
		nic, err := n.Attach()
		if err != nil {
			t.Fatal(err)
		}
		fb := fbox.New(nic, nil)
		t.Cleanup(func() { fb.Close() })
		return fb
	}
	r := &testRig{net: n, clientFB: attach(), serverFB: attach()}
	src := crypto.NewSeededSource(0x900F)
	r.server = NewServerWithConfig(r.serverFB, ServerConfig{Source: src, MaxInflight: maxInflight})
	scheme, err := cap.NewScheme(cap.SchemeOneWay)
	if err != nil {
		t.Fatal(err)
	}
	r.table = cap.NewTable(scheme, r.server.PutPort(), src)
	r.server.ServeTable(r.table)
	res := locate.New(r.clientFB, locate.Config{Timeout: 200 * time.Millisecond, Attempts: 3})
	r.client = NewClient(r.clientFB, res, ClientConfig{Timeout: 2 * time.Second, Retries: 2, Source: src})
	return r
}

// TestPoolBoundsConcurrency verifies MaxInflight is a hard ceiling on
// concurrently executing handlers.
func TestPoolBoundsConcurrency(t *testing.T) {
	ctx := context.Background()
	const limit = 3
	r := newPoolRig(t, limit)
	var cur, peak atomic.Int64
	release := make(chan struct{})
	r.server.Handle(0x42, func(_ context.Context, _ Meta, _ Request) Reply {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		<-release
		cur.Add(-1)
		return OkReply(nil)
	})
	r.start(t)

	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Long timeout: requests beyond the pool limit queue at the
			// listener until workers free up.
			_, err := r.client.Trans(ctx, r.server.PutPort(), Request{Op: 0x42},
				WithTimeout(10*time.Second), WithRetries(0))
			if err != nil {
				t.Error(err)
			}
		}()
	}
	// Let the pool fill, then let everything through.
	time.Sleep(300 * time.Millisecond)
	close(release)
	wg.Wait()
	if got := peak.Load(); got > limit {
		t.Fatalf("peak concurrency %d exceeds MaxInflight %d", got, limit)
	}
	if got := peak.Load(); got != limit {
		t.Fatalf("peak concurrency %d never reached MaxInflight %d", got, limit)
	}
}

// TestCloseWaitsForPool: Close returns only after every accepted
// request has replied, and the worker pool shuts down.
func TestCloseWaitsForPool(t *testing.T) {
	ctx := context.Background()
	r := newPoolRig(t, 2)
	started := make(chan struct{}, 8)
	var done atomic.Int32
	r.server.Handle(0x42, func(ctx context.Context, _ Meta, _ Request) Reply {
		started <- struct{}{}
		<-ctx.Done() // runs until Close cancels
		done.Add(1)
		return OkReply(nil)
	})
	r.start(t)
	for i := 0; i < 2; i++ {
		go r.client.Trans(ctx, r.server.PutPort(), Request{Op: 0x42}, WithTimeout(5*time.Second), WithRetries(0))
	}
	<-started
	<-started
	if err := r.server.Close(); err != nil {
		t.Fatal(err)
	}
	if got := done.Load(); got != 2 {
		t.Fatalf("Close returned with %d of 2 handlers finished", got)
	}
}

// TestBackpressureShedsExcessLoad: with a pool of 1 and a slow
// handler, a flood of one-shot requests must not spawn unbounded
// work — excess requests queue and then drop at the NIC; the server
// stays alive and serves afterwards.
func TestBackpressureShedsExcessLoad(t *testing.T) {
	ctx := context.Background()
	r := newPoolRig(t, 1)
	r.server.Handle(0x42, func(_ context.Context, _ Meta, _ Request) Reply {
		time.Sleep(10 * time.Millisecond)
		return OkReply(nil)
	})
	r.start(t)
	// Flood without waiting for replies.
	for i := 0; i < 600; i++ {
		_, _ = r.client.Trans(ctx, r.server.PutPort(), Request{Op: OpEcho},
			WithTimeout(10*time.Millisecond), WithRetries(0))
	}
	// The server must still answer.
	rep, err := r.client.Trans(ctx, r.server.PutPort(), Request{Op: OpEcho, Data: []byte("alive")},
		WithTimeout(5*time.Second))
	if err != nil || string(rep.Data) != "alive" {
		t.Fatalf("server unresponsive after flood: %v %+v", err, rep)
	}
}

// TestBatchReplyOverflowRejected: a batch whose packed replies would
// exceed the MTU must fail loudly with StatusBadRequest instead of
// being dropped on the wire (which would retry-loop forever).
func TestBatchReplyOverflowRejected(t *testing.T) {
	ctx := context.Background()
	r := newTestRig(t, cap.SchemeOneWay)
	big := make([]byte, 8<<10)
	r.server.Handle(0x50, func(context.Context, Meta, Request) Reply { return OkReply(big) })
	r.start(t)
	reqs := make([]Request, 20) // 20 × 8 KiB replies > MaxBatchBytes
	for i := range reqs {
		reqs[i] = Request{Op: 0x50}
	}
	_, err := r.client.Batch(ctx, r.server.PutPort(), reqs)
	if !IsStatus(err, StatusBadRequest) {
		t.Fatalf("oversize batch reply: %v", err)
	}
}
