package store

import (
	"sync"
	"testing"
)

func TestBasicOps(t *testing.T) {
	m := New[string](8)
	if _, ok := m.Get(1); ok {
		t.Fatal("empty map returned a value")
	}
	m.Put(1, "one")
	m.Put(2, "two")
	if v, ok := m.Get(1); !ok || v != "one" {
		t.Fatalf("Get(1) = %q, %v", v, ok)
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m.Len())
	}
	m.Put(1, "uno")
	if v, _ := m.Get(1); v != "uno" {
		t.Fatalf("Put did not replace: %q", v)
	}
	if v, ok := m.Delete(1); !ok || v != "uno" {
		t.Fatalf("Delete(1) = %q, %v", v, ok)
	}
	if _, ok := m.Get(1); ok {
		t.Fatal("deleted key still present")
	}
	if _, ok := m.Delete(1); ok {
		t.Fatal("double delete reported present")
	}
}

func TestPutIfAbsent(t *testing.T) {
	m := New[int](4)
	if !m.PutIfAbsent(7, 70) {
		t.Fatal("first PutIfAbsent failed")
	}
	if m.PutIfAbsent(7, 71) {
		t.Fatal("second PutIfAbsent claimed an occupied key")
	}
	if v, _ := m.Get(7); v != 70 {
		t.Fatalf("value overwritten: %d", v)
	}
}

func TestShardRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{1, 1}, {2, 2}, {3, 4}, {5, 8}, {8, 8}, {200, 256},
	} {
		m := New[int](tc.in)
		if len(m.shards) != tc.want {
			t.Errorf("New(%d): %d shards, want %d", tc.in, len(m.shards), tc.want)
		}
	}
	if got := New[int](0); len(got.shards) != DefaultShards() {
		t.Errorf("New(0): %d shards, want DefaultShards()=%d", len(got.shards), DefaultShards())
	}
}

func TestRangeAndKeys(t *testing.T) {
	m := New[uint32](16)
	want := map[uint32]bool{}
	for k := uint32(0); k < 1000; k++ {
		m.Put(k, k*2)
		want[k] = true
	}
	seen := map[uint32]bool{}
	m.Range(func(k, v uint32) bool {
		if v != k*2 {
			t.Fatalf("Range(%d) = %d", k, v)
		}
		seen[k] = true
		return true
	})
	if len(seen) != len(want) {
		t.Fatalf("Range visited %d keys, want %d", len(seen), len(want))
	}
	if got := len(m.Keys()); got != 1000 {
		t.Fatalf("Keys len = %d", got)
	}
	// Early exit.
	n := 0
	m.Range(func(_, _ uint32) bool { n++; return n < 10 })
	if n != 10 {
		t.Fatalf("Range did not stop early: %d", n)
	}
}

func TestKeysSpreadAcrossShards(t *testing.T) {
	m := New[int](8)
	for k := uint32(0); k < 4096; k++ {
		m.Put(k, 0)
	}
	for i := range m.shards {
		n := len(m.shards[i].m)
		// A perfectly even split is 512 per shard; any shard 4x off
		// means the mixer is broken for sequential keys.
		if n < 128 || n > 2048 {
			t.Fatalf("shard %d holds %d of 4096 keys", i, n)
		}
	}
}

// TestConcurrent hammers the map from many goroutines; run with -race.
func TestConcurrent(t *testing.T) {
	m := New[int](0)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := uint32(g * 10000)
			for i := uint32(0); i < 500; i++ {
				k := base + i
				m.Put(k, int(i))
				if v, ok := m.Get(k); !ok || v != int(i) {
					t.Errorf("lost write for %d", k)
					return
				}
				if i%3 == 0 {
					m.Delete(k)
				}
				m.PutIfAbsent(k, -1)
			}
		}(g)
	}
	// Concurrent readers over the whole map.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				m.Len()
				m.Range(func(_ uint32, _ int) bool { return true })
			}
		}()
	}
	wg.Wait()
}
