// Package store provides the lock-striped object maps that back every
// Amoeba service's hot path. A server's object table is keyed by the
// 24-bit object number of §2.3; with a single mutex, two clients
// operating on unrelated objects serialize on the map even though the
// objects themselves are independent. Map stripes the key space over a
// power-of-two number of shards, each with its own RWMutex, so
// operations on different objects almost never contend — the property
// the paper's "entire campus of workstations" load profile demands.
//
// Map stores only the index; per-object state keeps its own lock (the
// usual pattern: look the object up under the shard lock, then operate
// under the object's lock). Nothing in this package ever holds a shard
// lock across a callback except Range, which documents it.
package store

import (
	"runtime"
	"sync"
)

// DefaultShards returns the shard count New uses for n <= 0: the
// smallest power of two ≥ 4×GOMAXPROCS, capped at 256. More shards than
// that stop paying for themselves on a 24-bit key space.
func DefaultShards() int {
	n := 4 * runtime.GOMAXPROCS(0)
	if n > 256 {
		n = 256
	}
	return ceilPow2(n)
}

func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Map is a lock-striped map from 24-bit object numbers to V. The zero
// value is not usable; call New. All methods are safe for concurrent
// use.
type Map[V any] struct {
	shards []shard[V]
	mask   uint32
}

type shard[V any] struct {
	mu sync.RWMutex
	m  map[uint32]V
	// Padding out to a cache line would be the next step; the map
	// header and mutex already keep shards on separate lines in
	// practice for the shard counts DefaultShards picks.
}

// New builds a map with the given shard count, rounded up to a power of
// two; n <= 0 selects DefaultShards().
func New[V any](n int) *Map[V] {
	if n <= 0 {
		n = DefaultShards()
	}
	n = ceilPow2(n)
	m := &Map[V]{shards: make([]shard[V], n), mask: uint32(n - 1)}
	for i := range m.shards {
		m.shards[i].m = make(map[uint32]V)
	}
	return m
}

// shardFor mixes the key before masking: object numbers are allocated
// sequentially, and taking low bits directly would still spread them,
// but mixing keeps the distribution flat for callers with structured
// keys (block numbers, striped allocators).
func (m *Map[V]) shardFor(key uint32) *shard[V] {
	h := key
	h ^= h >> 16
	h *= 0x7feb352d
	h ^= h >> 15
	h *= 0x846ca68b
	h ^= h >> 16
	return &m.shards[h&m.mask]
}

// Get returns the value for key and whether it is present.
func (m *Map[V]) Get(key uint32) (V, bool) {
	s := m.shardFor(key)
	s.mu.RLock()
	v, ok := s.m[key]
	s.mu.RUnlock()
	return v, ok
}

// Put stores value under key, replacing any previous value.
func (m *Map[V]) Put(key uint32, value V) {
	s := m.shardFor(key)
	s.mu.Lock()
	s.m[key] = value
	s.mu.Unlock()
}

// PutIfAbsent stores value under key only if the key is not present,
// reporting whether it stored. Allocators use it to claim an object
// number atomically.
func (m *Map[V]) PutIfAbsent(key uint32, value V) bool {
	s := m.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, live := s.m[key]; live {
		return false
	}
	s.m[key] = value
	return true
}

// Replace stores value under key only if the key is present, reporting
// whether it stored. Re-keying an object (§2.3 revocation) uses it so a
// concurrent destroy cannot be resurrected by the new value.
func (m *Map[V]) Replace(key uint32, value V) bool {
	s := m.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, live := s.m[key]; !live {
		return false
	}
	s.m[key] = value
	return true
}

// Delete removes key, returning the previous value and whether it was
// present.
func (m *Map[V]) Delete(key uint32) (V, bool) {
	s := m.shardFor(key)
	s.mu.Lock()
	v, ok := s.m[key]
	if ok {
		delete(s.m, key)
	}
	s.mu.Unlock()
	return v, ok
}

// Len returns the number of stored keys. It locks each shard in turn,
// so the count is a consistent-per-shard snapshot, not a global one.
func (m *Map[V]) Len() int {
	n := 0
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}

// Range calls fn for every entry until fn returns false. The shard
// holding the entry is read-locked during the call: fn must not call
// back into the Map for keys that may live in the same shard (Get of
// an unrelated key is fine in practice but Put/Delete will deadlock).
// Entries added or removed concurrently in unvisited shards may or may
// not be seen.
func (m *Map[V]) Range(fn func(key uint32, value V) bool) {
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.RLock()
		for k, v := range s.m {
			if !fn(k, v) {
				s.mu.RUnlock()
				return
			}
		}
		s.mu.RUnlock()
	}
}

// Keys returns the stored keys (unordered), snapshotted shard by shard.
func (m *Map[V]) Keys() []uint32 {
	out := make([]uint32, 0, m.Len())
	m.Range(func(k uint32, _ V) bool {
		out = append(out, k)
		return true
	})
	return out
}
