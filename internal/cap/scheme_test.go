package cap

import (
	"errors"
	"testing"
	"testing/quick"

	"amoeba/internal/crypto"
)

// allSchemes instantiates every scheme with default primitives.
func allSchemes(t *testing.T) []Scheme {
	t.Helper()
	schemes := make([]Scheme, 0, 4)
	for _, id := range AllSchemeIDs() {
		s, err := NewScheme(id)
		if err != nil {
			t.Fatalf("NewScheme(%v): %v", id, err)
		}
		if s.ID() != id {
			t.Fatalf("NewScheme(%v).ID() = %v", id, s.ID())
		}
		schemes = append(schemes, s)
	}
	return schemes
}

const testPort = Port(0x123456789abc)

func TestAllSchemesMintValidate(t *testing.T) {
	src := crypto.NewSeededSource(1)
	for _, s := range allSchemes(t) {
		t.Run(s.ID().String(), func(t *testing.T) {
			secret := s.PrepareSecret(crypto.Rand48(src))
			c := s.Mint(testPort, 17, secret)
			if !c.Valid() {
				t.Fatalf("minted capability has out-of-width fields: %v", c)
			}
			if c.Server != testPort || c.Object != 17 {
				t.Fatalf("minted capability misnames the object: %v", c)
			}
			rights, err := s.Validate(c, secret)
			if err != nil {
				t.Fatalf("freshly minted capability invalid: %v", err)
			}
			if rights != AllRights {
				t.Fatalf("minted rights = %v, want all", rights)
			}
		})
	}
}

func TestAllSchemesRejectWrongSecret(t *testing.T) {
	src := crypto.NewSeededSource(2)
	for _, s := range allSchemes(t) {
		t.Run(s.ID().String(), func(t *testing.T) {
			secret := s.PrepareSecret(crypto.Rand48(src))
			other := s.PrepareSecret(crypto.Rand48(src))
			if secret == other {
				t.Skip("seeded collision (astronomically unlikely)")
			}
			c := s.Mint(testPort, 1, secret)
			if _, err := s.Validate(c, other); !errors.Is(err, ErrInvalidCapability) {
				t.Fatalf("validated against wrong secret: %v", err)
			}
		})
	}
}

func TestAllSchemesDetectCheckTampering(t *testing.T) {
	src := crypto.NewSeededSource(3)
	for _, s := range allSchemes(t) {
		t.Run(s.ID().String(), func(t *testing.T) {
			secret := s.PrepareSecret(crypto.Rand48(src))
			c := s.Mint(testPort, 1, secret)
			for bit := 0; bit < 48; bit += 7 {
				bad := c
				bad.Check ^= 1 << uint(bit)
				if _, err := s.Validate(bad, secret); err == nil {
					t.Fatalf("check-field bit %d flip went undetected", bit)
				}
			}
		})
	}
}

func TestRightsTamperingDetected(t *testing.T) {
	// Schemes 1-3 must detect plaintext/ciphertext rights tampering.
	// (Scheme 0 carries no protected rights: excluded by design.)
	src := crypto.NewSeededSource(4)
	for _, s := range allSchemes(t) {
		if s.ID() == SchemeCompare {
			continue
		}
		t.Run(s.ID().String(), func(t *testing.T) {
			secret := s.PrepareSecret(crypto.Rand48(src))
			c := s.Mint(testPort, 1, secret)
			// Weaken to read-only via the legitimate path...
			weak, err := s.Restrict(c, RightRead, secret)
			if err != nil {
				t.Fatalf("Restrict: %v", err)
			}
			// ...then try to claw back rights by flipping rights bits.
			for bit := 0; bit < 8; bit++ {
				bad := weak
				bad.Rights ^= 1 << uint(bit)
				if bad.Rights == weak.Rights {
					continue
				}
				got, err := s.Validate(bad, secret)
				if err == nil && got.Has(bad.Rights) && bad.Rights&^weak.Rights != 0 {
					t.Fatalf("rights bit %d forgery accepted: conveys %v", bit, got)
				}
			}
		})
	}
}

func TestScheme0ConveysAllRightsRegardless(t *testing.T) {
	// The paper: the simple system "does not distinguish between READ,
	// WRITE, DELETE"; a valid capability conveys everything even if the
	// holder zeroes the rights field.
	s := CompareScheme{}
	secret := s.PrepareSecret(12345)
	c := s.Mint(testPort, 1, secret)
	c.Rights = 0
	rights, err := s.Validate(c, secret)
	if err != nil {
		t.Fatal(err)
	}
	if rights != AllRights {
		t.Fatalf("scheme 0 rights = %v, want all", rights)
	}
	if _, err := s.Restrict(c, RightRead, secret); err == nil {
		t.Fatal("scheme 0 claimed to restrict rights")
	}
}

func TestSchemesRestrictViaServer(t *testing.T) {
	src := crypto.NewSeededSource(5)
	for _, s := range allSchemes(t) {
		if s.ID() == SchemeCompare {
			continue
		}
		t.Run(s.ID().String(), func(t *testing.T) {
			secret := s.PrepareSecret(crypto.Rand48(src))
			c := s.Mint(testPort, 9, secret)
			weak, err := s.Restrict(c, RightRead|RightWrite, secret)
			if err != nil {
				t.Fatal(err)
			}
			rights, err := s.Validate(weak, secret)
			if err != nil {
				t.Fatalf("restricted capability invalid: %v", err)
			}
			if rights != RightRead|RightWrite {
				t.Fatalf("restricted rights = %v", rights)
			}
			// Restriction only intersects: restricting the weak cap with
			// a mask containing more rights must not add any.
			again, err := s.Restrict(weak, AllRights, secret)
			if err != nil {
				t.Fatal(err)
			}
			rights, err = s.Validate(again, secret)
			if err != nil || rights != RightRead|RightWrite {
				t.Fatalf("restrict-with-wider-mask escalated to %v (err %v)", rights, err)
			}
		})
	}
}

func TestOnlyScheme3RestrictsLocally(t *testing.T) {
	for _, s := range allSchemes(t) {
		want := s.ID() == SchemeCommutative
		if got := s.CanRestrictLocally(); got != want {
			t.Errorf("%v.CanRestrictLocally() = %v, want %v", s.ID(), got, want)
		}
		if !want {
			if _, err := s.RestrictLocal(Capability{}, RightRead); !errors.Is(err, ErrNeedsServer) {
				t.Errorf("%v.RestrictLocal error = %v, want ErrNeedsServer", s.ID(), err)
			}
		}
	}
}

func TestScheme3LocalRestriction(t *testing.T) {
	s := NewCommutativeScheme(nil)
	secret := s.PrepareSecret(777)
	c := s.Mint(testPort, 3, secret)

	readOnly, err := s.RestrictLocal(c, RightRead)
	if err != nil {
		t.Fatal(err)
	}
	rights, err := s.Validate(readOnly, secret)
	if err != nil {
		t.Fatalf("locally restricted capability rejected: %v", err)
	}
	if rights != RightRead {
		t.Fatalf("rights = %v, want read-only", rights)
	}
}

func TestScheme3RestrictionOrderIrrelevant(t *testing.T) {
	// Drop write then destroy, and destroy then write: identical caps.
	s := NewCommutativeScheme(nil)
	secret := s.PrepareSecret(4242)
	c := s.Mint(testPort, 3, secret)

	a, err := s.RestrictLocal(c, AllRights&^RightWrite)
	if err != nil {
		t.Fatal(err)
	}
	a, err = s.RestrictLocal(a, AllRights&^(RightWrite|RightDestroy))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.RestrictLocal(c, AllRights&^RightDestroy)
	if err != nil {
		t.Fatal(err)
	}
	b, err = s.RestrictLocal(b, AllRights&^(RightWrite|RightDestroy))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("deletion order changed the capability:\n a=%v\n b=%v", a, b)
	}
	if a, err2 := s.RestrictLocal(c, AllRights&^(RightWrite|RightDestroy)); err2 != nil || a != b {
		t.Fatalf("single-step restriction differs from two-step: %v vs %v (%v)", a, b, err2)
	}
}

func TestScheme3CannotRegainRights(t *testing.T) {
	// Turning a rights bit back on without inverting Fk must fail.
	s := NewCommutativeScheme(nil)
	secret := s.PrepareSecret(31337)
	c := s.Mint(testPort, 3, secret)
	weak, err := s.RestrictLocal(c, RightRead)
	if err != nil {
		t.Fatal(err)
	}
	forged := weak
	forged.Rights |= RightWrite
	if _, err := s.Validate(forged, secret); !errors.Is(err, ErrInvalidCapability) {
		t.Fatalf("re-added rights bit accepted: %v", err)
	}
}

func TestScheme3ExhaustiveValidation(t *testing.T) {
	// E5: the rights field is an optimization; the server can recover
	// the rights by trying all 2^N deleted-sets.
	s := NewCommutativeScheme(nil)
	secret := s.PrepareSecret(99)
	c := s.Mint(testPort, 3, secret)
	weak, err := s.RestrictLocal(c, RightRead|RightCreate)
	if err != nil {
		t.Fatal(err)
	}
	// Erase the rights field entirely.
	blind := weak
	blind.Rights = 0xAA // garbage
	rights, err := s.ValidateExhaustive(blind, secret)
	if err != nil {
		t.Fatalf("exhaustive validation failed: %v", err)
	}
	if rights != RightRead|RightCreate {
		t.Fatalf("exhaustive validation recovered %v, want %v", rights, RightRead|RightCreate)
	}
	// A forged check must fail even exhaustively.
	blind.Check ^= 1
	if _, err := s.ValidateExhaustive(blind, secret); !errors.Is(err, ErrInvalidCapability) {
		t.Fatalf("exhaustive validation accepted forged check: %v", err)
	}
}

func TestScheme1XORCipherIsInsufficient(t *testing.T) {
	// E2: the paper's warning. With the XOR "cipher", a holder can flip
	// rights bits in the ciphertext and the known constant still
	// decrypts correctly, so the forgery is accepted.
	s := NewXOREncryptedScheme()
	secret := s.PrepareSecret(0xBEEF)
	c := s.Mint(testPort, 1, secret)
	weak, err := s.Restrict(c, RightRead, secret)
	if err != nil {
		t.Fatal(err)
	}
	// The ciphertext's high 8 bits correspond positionally to the
	// rights byte; flip the Write bit there.
	forged := weak
	forged.Rights ^= RightWrite
	rights, err := s.Validate(forged, secret)
	if err != nil {
		t.Fatal("XOR scheme rejected the bit-flip forgery; expected it to be fooled")
	}
	if !rights.Has(RightWrite) {
		t.Fatal("forgery accepted but did not escalate; test is miswired")
	}

	// The Feistel cipher must NOT be fooled by the same attack.
	f, err := NewEncryptedScheme(nil)
	if err != nil {
		t.Fatal(err)
	}
	fc := f.Mint(testPort, 1, secret)
	fweak, err := f.Restrict(fc, RightRead, secret)
	if err != nil {
		t.Fatal(err)
	}
	fforged := fweak
	fforged.Rights ^= RightWrite
	if _, err := f.Validate(fforged, secret); !errors.Is(err, ErrInvalidCapability) {
		t.Fatalf("Feistel scheme accepted the bit-flip forgery: %v", err)
	}
}

func TestForgeryProbabilityIsSparse(t *testing.T) {
	// E9 (miniature): random check guesses essentially never validate.
	src := crypto.NewSeededSource(6)
	for _, s := range allSchemes(t) {
		t.Run(s.ID().String(), func(t *testing.T) {
			secret := s.PrepareSecret(crypto.Rand48(src))
			c := s.Mint(testPort, 1, secret)
			hits := 0
			for i := 0; i < 20000; i++ {
				guess := c
				guess.Check = crypto.Rand48(src)
				if s.ID() == SchemeEncrypted {
					guess.Rights = Rights(src.Uint64())
				}
				if _, err := s.Validate(guess, secret); err == nil {
					if guess == c {
						continue // drew the real capability by luck
					}
					hits++
				}
			}
			if hits > 0 {
				t.Fatalf("%d/20000 random guesses validated; check field is not sparse", hits)
			}
		})
	}
}

func TestSchemeIDStrings(t *testing.T) {
	tests := []struct {
		id   SchemeID
		want string
	}{
		{SchemeCompare, "scheme0-compare"},
		{SchemeEncrypted, "scheme1-encrypted"},
		{SchemeOneWay, "scheme2-oneway"},
		{SchemeCommutative, "scheme3-commutative"},
		{SchemeID(99), "scheme(99)"},
	}
	for _, tc := range tests {
		if got := tc.id.String(); got != tc.want {
			t.Errorf("%d.String() = %q, want %q", tc.id, got, tc.want)
		}
	}
	if _, err := NewScheme(SchemeID(99)); err == nil {
		t.Error("NewScheme accepted unknown id")
	}
}

func TestScheme2CustomOneWay(t *testing.T) {
	s := NewOneWayScheme(crypto.Purdy{})
	secret := s.PrepareSecret(123)
	c := s.Mint(testPort, 1, secret)
	if _, err := s.Validate(c, secret); err != nil {
		t.Fatalf("Purdy-backed scheme 2 failed: %v", err)
	}
}

func TestScheme3PropertyRandomMasks(t *testing.T) {
	s := NewCommutativeScheme(nil)
	prop := func(seed uint64, m1, m2 uint8) bool {
		secret := s.PrepareSecret(seed)
		c := s.Mint(testPort, 1, secret)
		w1, err := s.RestrictLocal(c, Rights(m1))
		if err != nil {
			return false
		}
		w2, err := s.RestrictLocal(w1, Rights(m2))
		if err != nil {
			return false
		}
		rights, err := s.Validate(w2, secret)
		return err == nil && rights == Rights(m1)&Rights(m2)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRestrictNeverEscalates(t *testing.T) {
	// Property: under every scheme, any chain of restrictions conveys
	// exactly the intersection of all masks — never more.
	for _, s := range allSchemes(t) {
		if s.ID() == SchemeCompare {
			continue
		}
		s := s
		t.Run(s.ID().String(), func(t *testing.T) {
			prop := func(seed uint64, m1, m2, m3 uint8) bool {
				secret := s.PrepareSecret(seed | 1)
				c := s.Mint(testPort, 1, secret)
				for _, m := range []Rights{Rights(m1), Rights(m2), Rights(m3)} {
					var err error
					c, err = s.Restrict(c, m, secret)
					if err != nil {
						return false
					}
				}
				rights, err := s.Validate(c, secret)
				return err == nil && rights == AllRights&Rights(m1)&Rights(m2)&Rights(m3)
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestDecodeArbitraryBytesNeverPanics(t *testing.T) {
	// Fuzz-flavoured: any 16 bytes decode into a structurally valid
	// capability (all fields within Fig. 2 widths) and re-encode to the
	// same bytes.
	prop := func(raw [16]byte) bool {
		c, err := Decode(raw[:])
		if err != nil {
			return false
		}
		if !c.Valid() {
			return false
		}
		return c.Encode() == raw
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
