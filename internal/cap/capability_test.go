package cap

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestWireFormatIsFig2(t *testing.T) {
	// Fig. 2: 48-bit server port, 24-bit object, 8-bit rights, 48-bit
	// check; 16 bytes total, in that order, big-endian.
	c := Capability{
		Server: 0x010203040506,
		Object: 0x0a0b0c,
		Rights: 0xd5,
		Check:  0x111213141516,
	}
	w := c.Encode()
	want := []byte{
		0x01, 0x02, 0x03, 0x04, 0x05, 0x06, // server port
		0x0a, 0x0b, 0x0c, // object
		0xd5,                               // rights
		0x11, 0x12, 0x13, 0x14, 0x15, 0x16, // check
	}
	if !bytes.Equal(w[:], want) {
		t.Fatalf("wire layout mismatch:\n got %x\nwant %x", w, want)
	}
	if Size != 16 {
		t.Fatalf("capability Size = %d, want 16", Size)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	prop := func(server uint64, object uint32, rights uint8, check uint64) bool {
		c := Capability{
			Server: Port(server) & PortMask,
			Object: object & ObjectMask,
			Rights: Rights(rights),
			Check:  check & CheckMask,
		}
		w := c.Encode()
		dec, err := Decode(w[:])
		return err == nil && dec == c
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsWrongSizes(t *testing.T) {
	for _, n := range []int{0, 1, 15, 17, 32} {
		if _, err := Decode(make([]byte, n)); err == nil {
			t.Errorf("Decode accepted %d bytes", n)
		}
	}
}

func TestBinaryMarshalerRoundTrip(t *testing.T) {
	c := Capability{Server: 42, Object: 7, Rights: RightRead | RightWrite, Check: 0xabc}
	data, err := c.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var dec Capability
	if err := dec.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if dec != c {
		t.Fatalf("round trip: got %v want %v", dec, c)
	}
	if err := dec.UnmarshalBinary([]byte{1, 2, 3}); err == nil {
		t.Fatal("UnmarshalBinary accepted 3 bytes")
	}
}

func TestAppendTo(t *testing.T) {
	c := Capability{Server: 1, Object: 2, Rights: 3, Check: 4}
	buf := c.AppendTo([]byte("prefix"))
	if len(buf) != 6+Size {
		t.Fatalf("AppendTo length = %d", len(buf))
	}
	dec, err := Decode(buf[6:])
	if err != nil || dec != c {
		t.Fatalf("AppendTo did not append the wire form: %v %v", dec, err)
	}
}

func TestCapabilityValid(t *testing.T) {
	tests := []struct {
		name string
		c    Capability
		want bool
	}{
		{"zero", Capability{}, true},
		{"max fields", Capability{Server: PortMask, Object: ObjectMask, Rights: 0xff, Check: CheckMask}, true},
		{"port too wide", Capability{Server: PortMask + 1}, false},
		{"object too wide", Capability{Object: ObjectMask + 1}, false},
		{"check too wide", Capability{Check: CheckMask + 1}, false},
	}
	for _, tc := range tests {
		if got := tc.c.Valid(); got != tc.want {
			t.Errorf("%s: Valid() = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestNilCapability(t *testing.T) {
	if !Nil.IsNil() {
		t.Fatal("Nil.IsNil() = false")
	}
	if (Capability{Check: 1}).IsNil() {
		t.Fatal("non-zero capability claims to be nil")
	}
}

func TestRightsHas(t *testing.T) {
	r := RightRead | RightWrite
	if !r.Has(RightRead) || !r.Has(RightRead|RightWrite) {
		t.Error("Has missed present rights")
	}
	if r.Has(RightDestroy) || r.Has(RightRead|RightDestroy) {
		t.Error("Has granted absent rights")
	}
	if !r.Has(0) {
		t.Error("Has(0) should always be true")
	}
}

func TestRightsString(t *testing.T) {
	tests := []struct {
		r    Rights
		want string
	}{
		{0, "--------"},
		{AllRights, "v321cdwr"},
		{RightRead, "-------r"},
		{RightRevoke, "v-------"},
		{RightRead | RightWrite | RightDestroy, "-----dwr"},
	}
	for _, tc := range tests {
		if got := tc.r.String(); got != tc.want {
			t.Errorf("Rights(%#02x).String() = %q, want %q", uint8(tc.r), got, tc.want)
		}
	}
}

func TestPortString(t *testing.T) {
	if got := Port(0xABCDEF012345).String(); got != "abcdef012345" {
		t.Errorf("Port.String() = %q", got)
	}
	if got := Port(1).String(); got != "000000000001" {
		t.Errorf("Port.String() = %q", got)
	}
}

func TestCapabilityString(t *testing.T) {
	c := Capability{Server: 0xff, Object: 1, Rights: RightRead, Check: 2}
	want := "0000000000ff/000001(-------r)000000000002"
	if got := c.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestRightConstantsAreDistinctBits(t *testing.T) {
	rights := []Rights{RightRead, RightWrite, RightDestroy, RightCreate, RightX1, RightX2, RightX3, RightRevoke}
	var all Rights
	for i, r := range rights {
		if r == 0 || r&(r-1) != 0 {
			t.Errorf("right %d is not a single bit: %#02x", i, uint8(r))
		}
		if all&r != 0 {
			t.Errorf("right %d overlaps earlier rights", i)
		}
		all |= r
	}
	if all != AllRights {
		t.Errorf("rights do not cover all 8 bits: %#02x", uint8(all))
	}
}
