package cap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"amoeba/internal/crypto"
	"amoeba/internal/store"
)

// ErrNoSuchObject is returned when a capability names an object number
// the server has no entry for (never created, or destroyed).
var ErrNoSuchObject = errors.New("cap: no such object")

// ErrTableFull is returned when all 2^24 object numbers are live.
var ErrTableFull = errors.New("cap: object table full (2^24 objects)")

// Table is the per-server object table of §2.3: for every live object
// it stores the random number ("the server would then pick a random
// number, store this number in its object table"). Servers embed one
// Table and key their own object state by object number.
//
// Table is safe for concurrent use, and — since it sits on every
// operation's hot path via Demand — the secrets live in a lock-striped
// store.Map, so validations of independent objects do not contend.
// Only the allocator (object-number assignment and the free list) is
// behind a single small mutex, and it does no I/O.
type Table struct {
	scheme Scheme
	server Port
	src    crypto.Source

	secrets *store.Map[uint64]

	allocMu sync.Mutex
	next    uint32
	free    []uint32 // destroyed object numbers available for reuse
	// allocFilter, when set, restricts which object numbers the
	// allocator may claim — a sharded server passes its shard view's
	// Owns so every shard mints numbers it actually serves, and a
	// migrated-away number (no longer owned) can never be re-minted
	// here. Read and written under allocMu.
	allocFilter func(uint32) bool
}

// NewTable builds an object table for a server listening on the given
// put-port, protecting its objects with the given scheme. A nil source
// selects crypto/rand.
func NewTable(scheme Scheme, server Port, src crypto.Source) *Table {
	if src == nil {
		src = crypto.SystemSource()
	}
	return &Table{
		scheme:  scheme,
		server:  server & PortMask,
		src:     src,
		secrets: store.New[uint64](0),
	}
}

// Scheme returns the table's protection scheme.
func (t *Table) Scheme() Scheme { return t.scheme }

// Server returns the put-port capabilities minted here name.
func (t *Table) Server() Port { return t.server }

// Len returns the number of live objects.
func (t *Table) Len() int { return t.secrets.Len() }

// Create allocates a fresh object number, picks and stores its random
// number, and mints the owner capability (all rights).
func (t *Table) Create() (Capability, error) {
	secret := t.scheme.PrepareSecret(crypto.Rand48(t.src))
	obj, err := t.alloc(secret)
	if err != nil {
		return Nil, err
	}
	return t.scheme.Mint(t.server, obj, secret), nil
}

// CreateRecorded is Create, additionally returning the stored random
// number so a durable service can write it ahead to its log: replaying
// the record with InstallSecret re-mints the very capability the
// original reply carried, keeping client-held capabilities valid across
// a server reincarnation. The secret is as sensitive as the log that
// stores it.
func (t *Table) CreateRecorded() (Capability, uint64, error) {
	secret := t.scheme.PrepareSecret(crypto.Rand48(t.src))
	obj, err := t.alloc(secret)
	if err != nil {
		return Nil, 0, err
	}
	return t.scheme.Mint(t.server, obj, secret), secret, nil
}

// InstallSecret installs a known (object, secret) pair — the log-replay
// path for object creation. Replay is trusted: an existing entry is
// overwritten.
func (t *Table) InstallSecret(obj uint32, secret uint64) {
	t.secrets.Put(obj&ObjectMask, secret)
}

// ReplaceSecret replaces obj's secret only if the object is live — the
// log-replay path for revocation re-keys. A revoke record that trails
// a destroy record (the two stage under different locks, so that order
// is possible) must be a no-op, not a resurrection.
func (t *Table) ReplaceSecret(obj uint32, secret uint64) {
	t.secrets.Replace(obj&ObjectMask, secret)
}

// RevokeRecorded is Revoke, additionally returning the replacement
// random number for the durable services' logs.
func (t *Table) RevokeRecorded(c Capability) (Capability, uint64, error) {
	if _, err := t.Demand(c, RightRevoke); err != nil {
		return Nil, 0, err
	}
	secret := t.scheme.PrepareSecret(crypto.Rand48(t.src))
	obj := c.Object & ObjectMask
	// Replace, not Put: a destroy that races the re-key must win, or
	// the revoke would resurrect a dead object.
	if !t.secrets.Replace(obj, secret) {
		return Nil, 0, fmt.Errorf("cap: object %d: %w", obj, ErrNoSuchObject)
	}
	return t.scheme.Mint(t.server, obj, secret), secret, nil
}

// CreateObject is Create with a caller-chosen object number (servers
// whose objects have natural numbers — the block server's block
// numbers, for instance — keep capability object numbers aligned with
// them). Fails if the number is live.
func (t *Table) CreateObject(obj uint32) (Capability, error) {
	if obj&^ObjectMask != 0 {
		return Nil, fmt.Errorf("cap: object number %d exceeds 24 bits", obj)
	}
	secret := t.scheme.PrepareSecret(crypto.Rand48(t.src))
	if !t.secrets.PutIfAbsent(obj, secret) {
		return Nil, fmt.Errorf("cap: object %d already live", obj)
	}
	return t.scheme.Mint(t.server, obj, secret), nil
}

// alloc claims an unused 24-bit object number and installs the secret
// under it in one atomic step (PutIfAbsent), so concurrent Create and
// CreateObject calls can never claim the same number.
func (t *Table) alloc(secret uint64) (uint32, error) {
	t.allocMu.Lock()
	defer t.allocMu.Unlock()
	for n := len(t.free); n > 0; n = len(t.free) {
		obj := t.free[n-1]
		t.free = t.free[:n-1]
		if t.allocFilter != nil && !t.allocFilter(obj) {
			continue
		}
		// Free-list numbers are normally dead, but CreateObject may
		// have re-claimed one explicitly; skip those.
		if t.secrets.PutIfAbsent(obj, secret) {
			return obj, nil
		}
	}
	for tries := uint32(0); tries <= ObjectMask; tries++ {
		obj := t.next & ObjectMask
		t.next++
		if t.allocFilter != nil && !t.allocFilter(obj) {
			continue
		}
		if t.secrets.PutIfAbsent(obj, secret) {
			return obj, nil
		}
	}
	return 0, ErrTableFull
}

// SetAllocFilter restricts future allocations to object numbers the
// filter accepts (nil clears it). Sharded servers install their
// shard view's ownership predicate so each shard mints numbers that
// route back to it.
func (t *Table) SetAllocFilter(f func(uint32) bool) {
	t.allocMu.Lock()
	t.allocFilter = f
	t.allocMu.Unlock()
}

// Validate checks a presented capability: the object must exist here
// (right server, live object number) and the scheme check must pass.
// On success it returns the rights the capability conveys.
func (t *Table) Validate(c Capability) (Rights, error) {
	if c.Server != t.server {
		return 0, fmt.Errorf("cap: capability for server %s presented to %s: %w",
			c.Server, t.server, ErrInvalidCapability)
	}
	secret, ok := t.secrets.Get(c.Object & ObjectMask)
	if !ok {
		return 0, fmt.Errorf("cap: object %d: %w", c.Object, ErrNoSuchObject)
	}
	return t.scheme.Validate(c, secret)
}

// Demand validates c and then requires every right in need, returning
// ErrPermission if any is missing. It is the one-call guard servers
// put at the top of each operation.
func (t *Table) Demand(c Capability, need Rights) (Rights, error) {
	rights, err := t.Validate(c)
	if err != nil {
		return 0, err
	}
	if !rights.Has(need) {
		return 0, fmt.Errorf("cap: have %s, need %s: %w", rights, need, ErrPermission)
	}
	return rights, nil
}

// ErrPermission is returned by Demand when the capability is genuine
// but lacks a required right.
var ErrPermission = errors.New("cap: permission denied")

// Restrict fabricates a new capability for the same object carrying
// rights ∩ mask, the server-side path: "the process must send the
// capability back to the server along with a bit mask and a request to
// fabricate a new capability with fewer rights."
func (t *Table) Restrict(c Capability, mask Rights) (Capability, error) {
	if c.Server != t.server {
		return Nil, fmt.Errorf("cap: capability for server %s presented to %s: %w",
			c.Server, t.server, ErrInvalidCapability)
	}
	secret, ok := t.secrets.Get(c.Object & ObjectMask)
	if !ok {
		return Nil, fmt.Errorf("cap: object %d: %w", c.Object, ErrNoSuchObject)
	}
	return t.scheme.Restrict(c, mask, secret)
}

// Revoke implements §2.3 revocation: holders of the RightRevoke bit ask
// the server to replace the object's random number; every outstanding
// capability for the object is instantly invalidated and a fresh owner
// capability is returned.
func (t *Table) Revoke(c Capability) (Capability, error) {
	nc, _, err := t.RevokeRecorded(c)
	return nc, err
}

// Destroy removes the object's entry entirely (the object is gone, not
// just re-keyed). The capability must carry RightDestroy.
func (t *Table) Destroy(c Capability) error {
	if _, err := t.Demand(c, RightDestroy); err != nil {
		return err
	}
	return t.DestroyObject(c.Object)
}

// DestroyObject removes an object by number without a capability
// check; servers use it for internal garbage collection (e.g. the
// multiversion server discarding an aborted version).
func (t *Table) DestroyObject(obj uint32) error {
	obj &= ObjectMask
	if _, ok := t.secrets.Delete(obj); !ok {
		return fmt.Errorf("cap: object %d: %w", obj, ErrNoSuchObject)
	}
	t.allocMu.Lock()
	t.free = append(t.free, obj)
	t.allocMu.Unlock()
	return nil
}

// SecretOf returns obj's stored random number — the migration path
// reads it to re-install the SAME secret on the destination shard, so
// client-held capabilities stay valid across the move.
func (t *Table) SecretOf(obj uint32) (uint64, bool) {
	return t.secrets.Get(obj & ObjectMask)
}

// ForgetObject drops obj's entry WITHOUT recycling its number: the
// object still exists, it just lives on another shard now. Unlike
// DestroyObject the number never enters the free list — re-minting a
// migrated-away number here would hand two shards the same identity.
func (t *Table) ForgetObject(obj uint32) {
	t.secrets.Delete(obj & ObjectMask)
}

// Snapshot serializes the table's object secrets so a service can
// persist them and, after a restart, honour capabilities it minted in
// a previous life (a block server with a persistent disk needs this —
// fresh random numbers would instantly revoke every stored block's
// capability). The snapshot contains the secrets: protect it like the
// objects themselves. Entries created or destroyed concurrently with
// the snapshot may or may not be included.
func (t *Table) Snapshot() []byte {
	t.allocMu.Lock()
	next := t.next
	t.allocMu.Unlock()
	type entry struct {
		obj    uint32
		secret uint64
	}
	var entries []entry
	t.secrets.Range(func(obj uint32, secret uint64) bool {
		entries = append(entries, entry{obj, secret})
		return true
	})
	buf := make([]byte, 0, 12+len(entries)*12)
	var hdr [12]byte
	binary.BigEndian.PutUint32(hdr[0:], tableSnapMagic)
	binary.BigEndian.PutUint32(hdr[4:], uint32(len(entries)))
	binary.BigEndian.PutUint32(hdr[8:], next)
	buf = append(buf, hdr[:]...)
	for _, e := range entries {
		var w [12]byte
		binary.BigEndian.PutUint32(w[0:], e.obj)
		binary.BigEndian.PutUint64(w[4:], e.secret)
		buf = append(buf, w[:]...)
	}
	return buf
}

const tableSnapMagic = 0xA0EB7AB1

// Restore rebuilds the secrets from a Snapshot, replacing any current
// contents. The scheme and server port must match the snapshotting
// table's or restored capabilities will not validate. Restore must run
// before the table starts serving requests; it is not atomic against
// concurrent operations.
func (t *Table) Restore(data []byte) error {
	if len(data) < 12 || binary.BigEndian.Uint32(data) != tableSnapMagic {
		return errors.New("cap: not a table snapshot")
	}
	n := binary.BigEndian.Uint32(data[4:])
	next := binary.BigEndian.Uint32(data[8:])
	if uint32(len(data)-12) != n*12 {
		return fmt.Errorf("cap: snapshot truncated: %d entries, %d bytes", n, len(data))
	}
	secrets := store.New[uint64](0)
	for i := uint32(0); i < n; i++ {
		e := data[12+i*12:]
		secrets.Put(binary.BigEndian.Uint32(e), binary.BigEndian.Uint64(e[4:]))
	}
	t.allocMu.Lock()
	t.secrets = secrets
	t.next = next
	t.free = nil
	t.allocMu.Unlock()
	return nil
}

// Objects returns the live object numbers (unordered). Servers use it
// after Restore to rebuild their own per-object state indexes.
func (t *Table) Objects() []uint32 { return t.secrets.Keys() }
