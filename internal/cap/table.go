package cap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"amoeba/internal/crypto"
)

// ErrNoSuchObject is returned when a capability names an object number
// the server has no entry for (never created, or destroyed).
var ErrNoSuchObject = errors.New("cap: no such object")

// ErrTableFull is returned when all 2^24 object numbers are live.
var ErrTableFull = errors.New("cap: object table full (2^24 objects)")

// Table is the per-server object table of §2.3: for every live object
// it stores the random number ("the server would then pick a random
// number, store this number in its object table"). Servers embed one
// Table and key their own object state by object number. Table is safe
// for concurrent use.
type Table struct {
	scheme Scheme
	server Port
	src    crypto.Source

	mu      sync.RWMutex
	secrets map[uint32]uint64
	next    uint32
	free    []uint32 // destroyed object numbers available for reuse
}

// NewTable builds an object table for a server listening on the given
// put-port, protecting its objects with the given scheme. A nil source
// selects crypto/rand.
func NewTable(scheme Scheme, server Port, src crypto.Source) *Table {
	if src == nil {
		src = crypto.SystemSource()
	}
	return &Table{
		scheme:  scheme,
		server:  server & PortMask,
		src:     src,
		secrets: make(map[uint32]uint64),
	}
}

// Scheme returns the table's protection scheme.
func (t *Table) Scheme() Scheme { return t.scheme }

// Server returns the put-port capabilities minted here name.
func (t *Table) Server() Port { return t.server }

// Len returns the number of live objects.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.secrets)
}

// Create allocates a fresh object number, picks and stores its random
// number, and mints the owner capability (all rights).
func (t *Table) Create() (Capability, error) {
	secret := t.scheme.PrepareSecret(crypto.Rand48(t.src))
	t.mu.Lock()
	defer t.mu.Unlock()
	obj, err := t.allocLocked()
	if err != nil {
		return Nil, err
	}
	t.secrets[obj] = secret
	return t.scheme.Mint(t.server, obj, secret), nil
}

// CreateObject is Create with a caller-chosen object number (servers
// whose objects have natural numbers — the block server's block
// numbers, for instance — keep capability object numbers aligned with
// them). Fails if the number is live.
func (t *Table) CreateObject(obj uint32) (Capability, error) {
	if obj&^ObjectMask != 0 {
		return Nil, fmt.Errorf("cap: object number %d exceeds 24 bits", obj)
	}
	secret := t.scheme.PrepareSecret(crypto.Rand48(t.src))
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, live := t.secrets[obj]; live {
		return Nil, fmt.Errorf("cap: object %d already live", obj)
	}
	t.secrets[obj] = secret
	return t.scheme.Mint(t.server, obj, secret), nil
}

// allocLocked picks an unused 24-bit object number.
func (t *Table) allocLocked() (uint32, error) {
	if n := len(t.free); n > 0 {
		obj := t.free[n-1]
		t.free = t.free[:n-1]
		return obj, nil
	}
	for tries := uint32(0); tries <= ObjectMask; tries++ {
		obj := t.next & ObjectMask
		t.next++
		if _, live := t.secrets[obj]; !live {
			return obj, nil
		}
	}
	return 0, ErrTableFull
}

// Validate checks a presented capability: the object must exist here
// (right server, live object number) and the scheme check must pass.
// On success it returns the rights the capability conveys.
func (t *Table) Validate(c Capability) (Rights, error) {
	if c.Server != t.server {
		return 0, fmt.Errorf("cap: capability for server %s presented to %s: %w",
			c.Server, t.server, ErrInvalidCapability)
	}
	t.mu.RLock()
	secret, ok := t.secrets[c.Object&ObjectMask]
	t.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("cap: object %d: %w", c.Object, ErrNoSuchObject)
	}
	return t.scheme.Validate(c, secret)
}

// Demand validates c and then requires every right in need, returning
// ErrPermission if any is missing. It is the one-call guard servers
// put at the top of each operation.
func (t *Table) Demand(c Capability, need Rights) (Rights, error) {
	rights, err := t.Validate(c)
	if err != nil {
		return 0, err
	}
	if !rights.Has(need) {
		return 0, fmt.Errorf("cap: have %s, need %s: %w", rights, need, ErrPermission)
	}
	return rights, nil
}

// ErrPermission is returned by Demand when the capability is genuine
// but lacks a required right.
var ErrPermission = errors.New("cap: permission denied")

// Restrict fabricates a new capability for the same object carrying
// rights ∩ mask, the server-side path: "the process must send the
// capability back to the server along with a bit mask and a request to
// fabricate a new capability with fewer rights."
func (t *Table) Restrict(c Capability, mask Rights) (Capability, error) {
	if c.Server != t.server {
		return Nil, fmt.Errorf("cap: capability for server %s presented to %s: %w",
			c.Server, t.server, ErrInvalidCapability)
	}
	t.mu.RLock()
	secret, ok := t.secrets[c.Object&ObjectMask]
	t.mu.RUnlock()
	if !ok {
		return Nil, fmt.Errorf("cap: object %d: %w", c.Object, ErrNoSuchObject)
	}
	return t.scheme.Restrict(c, mask, secret)
}

// Revoke implements §2.3 revocation: holders of the RightRevoke bit ask
// the server to replace the object's random number; every outstanding
// capability for the object is instantly invalidated and a fresh owner
// capability is returned.
func (t *Table) Revoke(c Capability) (Capability, error) {
	if _, err := t.Demand(c, RightRevoke); err != nil {
		return Nil, err
	}
	secret := t.scheme.PrepareSecret(crypto.Rand48(t.src))
	obj := c.Object & ObjectMask
	t.mu.Lock()
	if _, live := t.secrets[obj]; !live {
		t.mu.Unlock()
		return Nil, fmt.Errorf("cap: object %d: %w", obj, ErrNoSuchObject)
	}
	t.secrets[obj] = secret
	t.mu.Unlock()
	return t.scheme.Mint(t.server, obj, secret), nil
}

// Destroy removes the object's entry entirely (the object is gone, not
// just re-keyed). The capability must carry RightDestroy.
func (t *Table) Destroy(c Capability) error {
	if _, err := t.Demand(c, RightDestroy); err != nil {
		return err
	}
	obj := c.Object & ObjectMask
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, live := t.secrets[obj]; !live {
		return fmt.Errorf("cap: object %d: %w", obj, ErrNoSuchObject)
	}
	delete(t.secrets, obj)
	t.free = append(t.free, obj)
	return nil
}

// DestroyObject removes an object by number without a capability
// check; servers use it for internal garbage collection (e.g. the
// multiversion server discarding an aborted version).
func (t *Table) DestroyObject(obj uint32) error {
	obj &= ObjectMask
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, live := t.secrets[obj]; !live {
		return fmt.Errorf("cap: object %d: %w", obj, ErrNoSuchObject)
	}
	delete(t.secrets, obj)
	t.free = append(t.free, obj)
	return nil
}

// Snapshot serializes the table's object secrets so a service can
// persist them and, after a restart, honour capabilities it minted in
// a previous life (a block server with a persistent disk needs this —
// fresh random numbers would instantly revoke every stored block's
// capability). The snapshot contains the secrets: protect it like the
// objects themselves.
func (t *Table) Snapshot() []byte {
	t.mu.RLock()
	defer t.mu.RUnlock()
	buf := make([]byte, 0, 12+len(t.secrets)*12)
	var hdr [12]byte
	binary.BigEndian.PutUint32(hdr[0:], tableSnapMagic)
	binary.BigEndian.PutUint32(hdr[4:], uint32(len(t.secrets)))
	binary.BigEndian.PutUint32(hdr[8:], t.next)
	buf = append(buf, hdr[:]...)
	for obj, secret := range t.secrets {
		var e [12]byte
		binary.BigEndian.PutUint32(e[0:], obj)
		binary.BigEndian.PutUint64(e[4:], secret)
		buf = append(buf, e[:]...)
	}
	return buf
}

const tableSnapMagic = 0xA0EB7AB1

// Restore rebuilds the secrets from a Snapshot, replacing any current
// contents. The scheme and server port must match the snapshotting
// table's or restored capabilities will not validate.
func (t *Table) Restore(data []byte) error {
	if len(data) < 12 || binary.BigEndian.Uint32(data) != tableSnapMagic {
		return errors.New("cap: not a table snapshot")
	}
	n := binary.BigEndian.Uint32(data[4:])
	next := binary.BigEndian.Uint32(data[8:])
	if uint32(len(data)-12) != n*12 {
		return fmt.Errorf("cap: snapshot truncated: %d entries, %d bytes", n, len(data))
	}
	secrets := make(map[uint32]uint64, n)
	for i := uint32(0); i < n; i++ {
		e := data[12+i*12:]
		secrets[binary.BigEndian.Uint32(e)] = binary.BigEndian.Uint64(e[4:])
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.secrets = secrets
	t.next = next
	t.free = nil
	return nil
}

// Objects returns the live object numbers (unordered). Servers use it
// after Restore to rebuild their own per-object state indexes.
func (t *Table) Objects() []uint32 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]uint32, 0, len(t.secrets))
	for obj := range t.secrets {
		out = append(out, obj)
	}
	return out
}
