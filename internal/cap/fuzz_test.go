package cap

import (
	"bytes"
	"testing"

	"amoeba/internal/crypto"
)

// FuzzCapWire fuzzes the Fig. 2 wire codec: any 16-byte buffer must
// decode without panicking, and decode∘encode must be the identity in
// both directions (every decoded capability re-encodes to the same
// bytes; every in-range capability survives a round trip).
func FuzzCapWire(f *testing.F) {
	f.Add(make([]byte, Size))
	f.Add(bytes.Repeat([]byte{0xFF}, Size))
	f.Add([]byte{0x12, 0x34, 0x56, 0x78, 0x9a, 0xbc, 0xAB, 0xCD, 0xEF, 0x5A, 0x0F, 0x0E, 0x0D, 0x0C, 0x0B, 0x0A})
	f.Fuzz(func(t *testing.T, buf []byte) {
		c, err := Decode(buf)
		if len(buf) != Size {
			if err == nil {
				t.Fatalf("Decode accepted %d bytes", len(buf))
			}
			return
		}
		if err != nil {
			t.Fatalf("Decode rejected a 16-byte buffer: %v", err)
		}
		if !c.Valid() {
			t.Fatalf("decoded capability out of field range: %+v", c)
		}
		w := c.Encode()
		if !bytes.Equal(w[:], buf) {
			t.Fatalf("encode(decode(%x)) = %x", buf, w)
		}
		c2, err := Decode(w[:])
		if err != nil || c2 != c {
			t.Fatalf("round trip changed the capability: %+v vs %+v (%v)", c, c2, err)
		}
	})
}

// FuzzRightsRestrict fuzzes the §2.3 schemes' security invariant:
// however an owner capability is restricted (any chain of masks, via
// the server path and — for scheme 3 — the client path), validating
// the result never grants a right the parent lacked, and tampering
// with the rights field alone never validates.
func FuzzRightsRestrict(f *testing.F) {
	f.Add(uint64(12345), uint8(0x0F), uint8(0xF0), uint8(0xFF))
	f.Add(uint64(0), uint8(0), uint8(1), uint8(2))
	f.Add(uint64(0xFFFFFFFFFFFF), uint8(0xAA), uint8(0x55), uint8(0x01))
	f.Fuzz(func(t *testing.T, raw uint64, m1, m2, forged uint8) {
		for _, id := range AllSchemeIDs() {
			if id == SchemeCompare {
				continue // scheme 0 has no rights distinction by design
			}
			s, err := NewScheme(id)
			if err != nil {
				t.Fatal(err)
			}
			secret := s.PrepareSecret(raw & crypto.Mask48)
			owner := s.Mint(Port(0xABC), 7, secret)
			if got, err := s.Validate(owner, secret); err != nil || got != AllRights {
				t.Fatalf("%v: owner validates to %v, %v", id, got, err)
			}

			// Chain two restrictions through the server path.
			c1, err := s.Restrict(owner, Rights(m1), secret)
			if err != nil {
				t.Fatalf("%v: restrict: %v", id, err)
			}
			r1, err := s.Validate(c1, secret)
			if err != nil {
				t.Fatalf("%v: restricted cap does not validate: %v", id, err)
			}
			if r1&^Rights(m1) != 0 {
				t.Fatalf("%v: restrict granted %v outside mask %v", id, r1, Rights(m1))
			}
			c2, err := s.Restrict(c1, Rights(m2), secret)
			if err != nil {
				t.Fatalf("%v: second restrict: %v", id, err)
			}
			r2, err := s.Validate(c2, secret)
			if err != nil {
				t.Fatalf("%v: twice-restricted cap does not validate: %v", id, err)
			}
			if r2&^r1 != 0 {
				t.Fatalf("%v: restriction escalated %v beyond parent %v", id, r2, r1)
			}

			// Scheme 3's client-side restriction must obey the same law.
			if s.CanRestrictLocally() {
				l1, err := s.RestrictLocal(owner, Rights(m1))
				if err != nil {
					t.Fatalf("%v: local restrict: %v", id, err)
				}
				lr, err := s.Validate(l1, secret)
				if err != nil {
					t.Fatalf("%v: locally restricted cap does not validate: %v", id, err)
				}
				if lr&^Rights(m1) != 0 {
					t.Fatalf("%v: local restrict granted %v outside mask %v", id, lr, Rights(m1))
				}
			}

			// Flipping the rights field without the secret must fail:
			// claiming MORE rights than the capability carries is
			// forgery under every scheme.
			tampered := c1
			tampered.Rights = r1 | ^r1&Rights(forged)
			if tampered.Rights != r1 {
				if got, err := s.Validate(tampered, secret); err == nil && got&^r1 != 0 {
					t.Fatalf("%v: tampered rights %v validated to %v (parent had %v)",
						id, tampered.Rights, got, r1)
				}
			}
		}
	})
}
