package cap

import (
	"errors"
	"fmt"

	"amoeba/internal/crypto"
)

// SchemeID numbers the four §2.3 rights-protection algorithms in the
// order the paper presents them.
type SchemeID uint8

const (
	// SchemeCompare is the simplest system: the check field is the
	// object's random number; equality means genuine, and "all
	// operations on the file are allowed" — no rights distinction.
	SchemeCompare SchemeID = iota + 1
	// SchemeEncrypted is the first rights-protecting algorithm: the
	// RIGHTS ∥ KNOWN-CONSTANT block is encrypted under a per-object key.
	SchemeEncrypted
	// SchemeOneWay is the second: CHECK = F(random XOR rights) with
	// plaintext rights. Restriction requires the server.
	SchemeOneWay
	// SchemeCommutative is the third: deleting right k replaces the
	// check R with Fk(R) client-side; the Fk commute.
	SchemeCommutative
)

// String returns the paper's name for the scheme.
func (id SchemeID) String() string {
	switch id {
	case SchemeCompare:
		return "scheme0-compare"
	case SchemeEncrypted:
		return "scheme1-encrypted"
	case SchemeOneWay:
		return "scheme2-oneway"
	case SchemeCommutative:
		return "scheme3-commutative"
	default:
		return fmt.Sprintf("scheme(%d)", uint8(id))
	}
}

// Errors shared by every scheme.
var (
	// ErrInvalidCapability means the check failed: the capability is
	// forged, tampered with, revoked, or for a deleted object.
	ErrInvalidCapability = errors.New("cap: invalid capability")
	// ErrNeedsServer is returned by RestrictLocal for schemes in which
	// fabricating a sub-capability requires the object's secret, i.e. a
	// round trip to the server.
	ErrNeedsServer = errors.New("cap: restriction requires the server for this scheme")
)

// Scheme is one of the four §2.3 algorithms. A Scheme is a pure
// strategy: all object state (the per-object random number, the
// "secret") lives in the server's Table. Secrets are 48-bit values;
// scheme 3 additionally requires them to be sampled into its
// commutative domain, which Table handles via PrepareSecret.
type Scheme interface {
	// ID identifies the algorithm.
	ID() SchemeID

	// PrepareSecret maps a raw 48-bit random value to a usable
	// per-object secret (identity for all schemes except 3, which needs
	// a unit of its modular domain).
	PrepareSecret(raw uint64) uint64

	// Mint builds the owner capability (all rights) for a new object
	// with the given secret.
	Mint(server Port, object uint32, secret uint64) Capability

	// Validate checks c against the object's secret and returns the
	// rights the capability actually conveys, or ErrInvalidCapability.
	Validate(c Capability, secret uint64) (Rights, error)

	// Restrict fabricates, with the object's secret, a capability
	// carrying rights ∩ mask. This is the server-side path available
	// under every scheme.
	Restrict(c Capability, mask Rights, secret uint64) (Capability, error)

	// CanRestrictLocally reports whether holders can fabricate weaker
	// capabilities without the server (true only for scheme 3).
	CanRestrictLocally() bool

	// RestrictLocal fabricates a weaker capability client-side, or
	// returns ErrNeedsServer.
	RestrictLocal(c Capability, mask Rights) (Capability, error)
}

// NewScheme constructs the identified scheme with default primitives:
// SHA-48 one-way function, Feistel cipher, default commutative family.
func NewScheme(id SchemeID) (Scheme, error) {
	switch id {
	case SchemeCompare:
		return CompareScheme{}, nil
	case SchemeEncrypted:
		return NewEncryptedScheme(nil)
	case SchemeOneWay:
		return NewOneWayScheme(nil), nil
	case SchemeCommutative:
		return NewCommutativeScheme(nil), nil
	default:
		return nil, fmt.Errorf("cap: unknown scheme id %d", uint8(id))
	}
}

// AllSchemeIDs lists the four algorithms in paper order, for
// experiments that sweep schemes.
func AllSchemeIDs() []SchemeID {
	return []SchemeID{SchemeCompare, SchemeEncrypted, SchemeOneWay, SchemeCommutative}
}

// ---------------------------------------------------------------------
// Scheme 0: compare the random number.

// CompareScheme implements SchemeCompare. The check field carries the
// object's random number in the clear (sparse, so unguessable); a
// matching check conveys all rights. The rights field is carried but
// not protected: the server must ignore it, and Validate always
// returns AllRights on success, faithfully reproducing the paper's
// "does not distinguish between READ, WRITE, DELETE".
type CompareScheme struct{}

var _ Scheme = CompareScheme{}

// ID implements Scheme.
func (CompareScheme) ID() SchemeID { return SchemeCompare }

// PrepareSecret implements Scheme.
func (CompareScheme) PrepareSecret(raw uint64) uint64 { return raw & CheckMask }

// Mint implements Scheme.
func (CompareScheme) Mint(server Port, object uint32, secret uint64) Capability {
	return Capability{Server: server, Object: object & ObjectMask, Rights: AllRights, Check: secret & CheckMask}
}

// Validate implements Scheme.
func (CompareScheme) Validate(c Capability, secret uint64) (Rights, error) {
	if c.Check != secret&CheckMask {
		return 0, ErrInvalidCapability
	}
	return AllRights, nil
}

// Restrict implements Scheme. Scheme 0 cannot express restricted
// rights: any valid capability conveys everything, so restriction is
// meaningless and the paper's simple system simply does not offer it.
func (CompareScheme) Restrict(c Capability, mask Rights, secret uint64) (Capability, error) {
	if _, err := (CompareScheme{}).Validate(c, secret); err != nil {
		return Nil, err
	}
	return Nil, fmt.Errorf("cap: %s cannot restrict rights: %w", SchemeCompare, ErrNeedsServer)
}

// CanRestrictLocally implements Scheme.
func (CompareScheme) CanRestrictLocally() bool { return false }

// RestrictLocal implements Scheme.
func (CompareScheme) RestrictLocal(Capability, Rights) (Capability, error) {
	return Nil, ErrNeedsServer
}

// ---------------------------------------------------------------------
// Scheme 1: encrypt RIGHTS ∥ KNOWN-CONSTANT under a per-object key.

// KnownConstant is the 48-bit constant whose survival through
// decryption proves the capability genuine under scheme 1. The paper
// suggests "a known constant, say, 0".
const KnownConstant uint64 = 0

// EncryptedScheme implements SchemeEncrypted. The per-object secret is
// used as the key of a 56-bit block cipher; the ciphertext of
// RIGHTS(8) ∥ KNOWN-CONSTANT(48) is carried in the capability's
// combined Rights+Check fields. An encryption function that "mixes the
// bits thoroughly" is required — constructing the scheme with the XOR
// cipher reproduces the paper's warning (see experiment E2).
type EncryptedScheme struct {
	factory func(key uint64) (crypto.BlockCipher64, error)
	// pooled marks the default Feistel configuration, which runs each
	// seal/validate on a pooled rekeyed-in-place cipher: zero
	// allocations per operation instead of one 576-byte key schedule.
	pooled bool
}

var _ Scheme = EncryptedScheme{}

// NewEncryptedScheme builds scheme 1 with the given 56-bit block
// cipher factory, or the default Feistel cipher if factory is nil.
func NewEncryptedScheme(factory func(key uint64) (crypto.BlockCipher64, error)) (EncryptedScheme, error) {
	if factory == nil {
		return EncryptedScheme{pooled: true}, nil
	}
	// Fail fast on a broken factory.
	if _, err := factory(0); err != nil {
		return EncryptedScheme{}, fmt.Errorf("cap: scheme 1 cipher factory: %w", err)
	}
	return EncryptedScheme{factory: factory}, nil
}

// NewXOREncryptedScheme builds scheme 1 with the insecure XOR cipher,
// solely so experiment E2 can demonstrate the paper's warning that
// XORing a constant "will not do".
func NewXOREncryptedScheme() EncryptedScheme {
	s, err := NewEncryptedScheme(func(key uint64) (crypto.BlockCipher64, error) {
		return crypto.XORCipher{Pad: key & (1<<56 - 1)}, nil
	})
	if err != nil {
		panic("cap: XOR factory cannot fail: " + err.Error())
	}
	return s
}

// ID implements Scheme.
func (EncryptedScheme) ID() SchemeID { return SchemeEncrypted }

// PrepareSecret implements Scheme.
func (EncryptedScheme) PrepareSecret(raw uint64) uint64 { return raw & CheckMask }

func (s EncryptedScheme) cipher(secret uint64) crypto.BlockCipher64 {
	c, err := s.factory(secret)
	if err != nil {
		// The factory was validated at construction; per-key failure is
		// a programming error in the factory.
		panic("cap: scheme 1 cipher factory failed: " + err.Error())
	}
	return c
}

// crypt runs one block through the per-secret cipher: a pooled Feistel
// scratch on the default path (no allocation), the custom factory
// otherwise.
func (s EncryptedScheme) crypt(secret, block uint64, decrypt bool) uint64 {
	if s.pooled {
		f, err := crypto.AcquireFeistel(secret, 56)
		if err != nil {
			panic("cap: scheme 1 pooled cipher: " + err.Error()) // 56 is always valid
		}
		defer crypto.ReleaseFeistel(f)
		if decrypt {
			return f.Decrypt(block)
		}
		return f.Encrypt(block)
	}
	c := s.cipher(secret)
	if decrypt {
		return c.Decrypt(block)
	}
	return c.Encrypt(block)
}

// seal encrypts rights into the combined 56-bit field and splits it
// across the capability's Rights and Check fields.
func (s EncryptedScheme) seal(c Capability, rights Rights, secret uint64) Capability {
	block := uint64(rights)<<48 | (KnownConstant & CheckMask)
	ct := s.crypt(secret, block, false)
	c.Rights = Rights(ct >> 48)
	c.Check = ct & CheckMask
	return c
}

// Mint implements Scheme.
func (s EncryptedScheme) Mint(server Port, object uint32, secret uint64) Capability {
	return s.seal(Capability{Server: server, Object: object & ObjectMask}, AllRights, secret)
}

// Validate implements Scheme.
func (s EncryptedScheme) Validate(c Capability, secret uint64) (Rights, error) {
	ct := uint64(c.Rights)<<48 | c.Check
	pt := s.crypt(secret, ct, true)
	if pt&CheckMask != KnownConstant&CheckMask {
		return 0, ErrInvalidCapability
	}
	return Rights(pt >> 48), nil
}

// Restrict implements Scheme: decrypt, intersect, re-encrypt.
func (s EncryptedScheme) Restrict(c Capability, mask Rights, secret uint64) (Capability, error) {
	rights, err := s.Validate(c, secret)
	if err != nil {
		return Nil, err
	}
	return s.seal(c, rights&mask, secret), nil
}

// CanRestrictLocally implements Scheme.
func (EncryptedScheme) CanRestrictLocally() bool { return false }

// RestrictLocal implements Scheme.
func (EncryptedScheme) RestrictLocal(Capability, Rights) (Capability, error) {
	return Nil, ErrNeedsServer
}

// ---------------------------------------------------------------------
// Scheme 2: CHECK = F(random XOR rights), rights in plaintext.

// OneWayScheme implements SchemeOneWay.
type OneWayScheme struct {
	f crypto.OneWay
}

var _ Scheme = OneWayScheme{}

// NewOneWayScheme builds scheme 2 over the given one-way function, or
// SHA-48 if f is nil.
func NewOneWayScheme(f crypto.OneWay) OneWayScheme {
	if f == nil {
		f = crypto.SHA48{Tag: 2}
	}
	return OneWayScheme{f: f}
}

// ID implements Scheme.
func (OneWayScheme) ID() SchemeID { return SchemeOneWay }

// PrepareSecret implements Scheme.
func (OneWayScheme) PrepareSecret(raw uint64) uint64 { return raw & CheckMask }

func (s OneWayScheme) check(secret uint64, rights Rights) uint64 {
	return s.f.F((secret ^ uint64(rights)) & CheckMask)
}

// Mint implements Scheme.
func (s OneWayScheme) Mint(server Port, object uint32, secret uint64) Capability {
	return Capability{
		Server: server,
		Object: object & ObjectMask,
		Rights: AllRights,
		Check:  s.check(secret, AllRights),
	}
}

// Validate implements Scheme. "Although a user can tamper with the
// plaintext RIGHTS field, such tampering will result in the server
// ultimately rejecting the capability."
func (s OneWayScheme) Validate(c Capability, secret uint64) (Rights, error) {
	if s.check(secret, c.Rights) != c.Check {
		return 0, ErrInvalidCapability
	}
	return c.Rights, nil
}

// Restrict implements Scheme: the server recomputes F over the new
// rights. This is the round trip scheme 3 exists to avoid.
func (s OneWayScheme) Restrict(c Capability, mask Rights, secret uint64) (Capability, error) {
	rights, err := s.Validate(c, secret)
	if err != nil {
		return Nil, err
	}
	c.Rights = rights & mask
	c.Check = s.check(secret, c.Rights)
	return c, nil
}

// CanRestrictLocally implements Scheme.
func (OneWayScheme) CanRestrictLocally() bool { return false }

// RestrictLocal implements Scheme.
func (OneWayScheme) RestrictLocal(Capability, Rights) (Capability, error) {
	return Nil, ErrNeedsServer
}

// ---------------------------------------------------------------------
// Scheme 3: commutative one-way functions; client-side restriction.

// CommutativeScheme implements SchemeCommutative. The object's secret
// is a unit of the family's modular domain; the freshly minted
// capability carries it in the clear with all rights set. Any holder
// deletes right k by replacing the check R with Fk(R) and clearing bit
// k — no server involvement; commutativity makes the deletion order
// irrelevant. The server validates by applying the functions for every
// cleared bit to its stored secret and comparing.
type CommutativeScheme struct {
	fam *crypto.Commutative
}

var _ Scheme = CommutativeScheme{}

// NewCommutativeScheme builds scheme 3 over the given family, or the
// default 8-function family if fam is nil. The family must have at
// least 8 functions (one per rights bit).
func NewCommutativeScheme(fam *crypto.Commutative) CommutativeScheme {
	if fam == nil {
		fam = crypto.DefaultCommutative()
	}
	if fam.Size() < 8 {
		panic(fmt.Sprintf("cap: scheme 3 needs ≥8 commutative functions, got %d", fam.Size()))
	}
	return CommutativeScheme{fam: fam}
}

// Family exposes the commutative family for experiments.
func (s CommutativeScheme) Family() *crypto.Commutative { return s.fam }

// ID implements Scheme.
func (CommutativeScheme) ID() SchemeID { return SchemeCommutative }

// PrepareSecret implements Scheme: secrets must be units of Z_n.
func (s CommutativeScheme) PrepareSecret(raw uint64) uint64 {
	return s.fam.SampleDomain(raw)
}

// Mint implements Scheme.
func (s CommutativeScheme) Mint(server Port, object uint32, secret uint64) Capability {
	return Capability{
		Server: server,
		Object: object & ObjectMask,
		Rights: AllRights,
		Check:  secret & CheckMask,
	}
}

// Validate implements Scheme: apply Fk for every deleted right to the
// stored secret; accept on match. Cost grows with the number of
// deleted rights (experiment E4).
func (s CommutativeScheme) Validate(c Capability, secret uint64) (Rights, error) {
	deleted := uint64(AllRights &^ c.Rights)
	if s.fam.ApplySet(deleted, secret) != c.Check {
		return 0, ErrInvalidCapability
	}
	return c.Rights, nil
}

// ValidateExhaustive validates ignoring the plaintext rights field, by
// trying all 2^N combinations of deleted rights — the paper's remark
// that "the RIGHTS field is not even needed, since the server could try
// all 2^N combinations... Its presence merely speeds up the checking."
// It returns the rights actually encoded in the check field.
func (s CommutativeScheme) ValidateExhaustive(c Capability, secret uint64) (Rights, error) {
	for deleted := uint64(0); deleted < 256; deleted++ {
		if s.fam.ApplySet(deleted, secret) == c.Check {
			return AllRights &^ Rights(deleted), nil
		}
	}
	return 0, ErrInvalidCapability
}

// Restrict implements Scheme. Even though holders can restrict
// locally, the server path also exists (an owner may prefer it); it
// validates first, then applies the local derivation.
func (s CommutativeScheme) Restrict(c Capability, mask Rights, secret uint64) (Capability, error) {
	if _, err := s.Validate(c, secret); err != nil {
		return Nil, err
	}
	return s.RestrictLocal(c, mask)
}

// CanRestrictLocally implements Scheme.
func (CommutativeScheme) CanRestrictLocally() bool { return true }

// RestrictLocal implements Scheme: for every right present in c but
// absent from mask, apply the corresponding one-way function to the
// check field and clear the bit. Purely client-side.
func (s CommutativeScheme) RestrictLocal(c Capability, mask Rights) (Capability, error) {
	drop := uint64(c.Rights &^ mask)
	c.Check = s.fam.ApplySet(drop, c.Check)
	c.Rights &= mask
	return c, nil
}
