package cap

import (
	"errors"
	"sync"
	"testing"

	"amoeba/internal/crypto"
)

func newTestTable(t *testing.T, id SchemeID) *Table {
	t.Helper()
	s, err := NewScheme(id)
	if err != nil {
		t.Fatal(err)
	}
	return NewTable(s, testPort, crypto.NewSeededSource(uint64(id)*1000+7))
}

func TestTableCreateValidate(t *testing.T) {
	for _, id := range AllSchemeIDs() {
		t.Run(id.String(), func(t *testing.T) {
			tb := newTestTable(t, id)
			c, err := tb.Create()
			if err != nil {
				t.Fatal(err)
			}
			rights, err := tb.Validate(c)
			if err != nil {
				t.Fatal(err)
			}
			if rights != AllRights {
				t.Fatalf("owner rights = %v", rights)
			}
			if tb.Len() != 1 {
				t.Fatalf("Len = %d", tb.Len())
			}
		})
	}
}

func TestTableRejectsForeignServer(t *testing.T) {
	tb := newTestTable(t, SchemeOneWay)
	c, err := tb.Create()
	if err != nil {
		t.Fatal(err)
	}
	c.Server ^= 1
	if _, err := tb.Validate(c); !errors.Is(err, ErrInvalidCapability) {
		t.Fatalf("foreign-server capability: %v", err)
	}
}

func TestTableRejectsUnknownObject(t *testing.T) {
	tb := newTestTable(t, SchemeOneWay)
	c, err := tb.Create()
	if err != nil {
		t.Fatal(err)
	}
	c.Object = 999
	if _, err := tb.Validate(c); !errors.Is(err, ErrNoSuchObject) {
		t.Fatalf("unknown object: %v", err)
	}
}

func TestTableDemand(t *testing.T) {
	tb := newTestTable(t, SchemeOneWay)
	c, err := tb.Create()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Demand(c, RightRead|RightWrite); err != nil {
		t.Fatalf("owner Demand failed: %v", err)
	}
	weak, err := tb.Restrict(c, RightRead)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Demand(weak, RightRead); err != nil {
		t.Fatalf("read Demand on read-only cap: %v", err)
	}
	if _, err := tb.Demand(weak, RightWrite); !errors.Is(err, ErrPermission) {
		t.Fatalf("write Demand on read-only cap: %v", err)
	}
}

func TestTableRevocationInvalidatesAll(t *testing.T) {
	// E6: revocation under every scheme kills every outstanding
	// capability, including restricted copies, and yields a working
	// replacement.
	for _, id := range AllSchemeIDs() {
		t.Run(id.String(), func(t *testing.T) {
			tb := newTestTable(t, id)
			owner, err := tb.Create()
			if err != nil {
				t.Fatal(err)
			}
			var copies []Capability
			copies = append(copies, owner)
			if id != SchemeCompare {
				weak, err := tb.Restrict(owner, RightRead|RightRevoke)
				if err != nil {
					t.Fatal(err)
				}
				copies = append(copies, weak)
			}
			fresh, err := tb.Revoke(owner)
			if err != nil {
				t.Fatal(err)
			}
			for i, old := range copies {
				if _, err := tb.Validate(old); !errors.Is(err, ErrInvalidCapability) {
					t.Errorf("copy %d survived revocation: %v", i, err)
				}
			}
			if _, err := tb.Validate(fresh); err != nil {
				t.Errorf("replacement capability invalid: %v", err)
			}
		})
	}
}

func TestTableRevokeNeedsRevokeRight(t *testing.T) {
	tb := newTestTable(t, SchemeOneWay)
	owner, err := tb.Create()
	if err != nil {
		t.Fatal(err)
	}
	weak, err := tb.Restrict(owner, RightRead)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Revoke(weak); !errors.Is(err, ErrPermission) {
		t.Fatalf("revoke without RightRevoke: %v", err)
	}
}

func TestTableDestroy(t *testing.T) {
	tb := newTestTable(t, SchemeCommutative)
	c, err := tb.Create()
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Destroy(c); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Validate(c); !errors.Is(err, ErrNoSuchObject) {
		t.Fatalf("destroyed object still validates: %v", err)
	}
	if err := tb.Destroy(c); err == nil {
		t.Fatal("double destroy succeeded")
	}
	if tb.Len() != 0 {
		t.Fatalf("Len = %d after destroy", tb.Len())
	}
}

func TestTableDestroyNeedsRight(t *testing.T) {
	tb := newTestTable(t, SchemeOneWay)
	owner, err := tb.Create()
	if err != nil {
		t.Fatal(err)
	}
	weak, err := tb.Restrict(owner, RightRead)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Destroy(weak); !errors.Is(err, ErrPermission) {
		t.Fatalf("destroy without RightDestroy: %v", err)
	}
}

func TestTableObjectNumberReuse(t *testing.T) {
	tb := newTestTable(t, SchemeOneWay)
	a, err := tb.Create()
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Destroy(a); err != nil {
		t.Fatal(err)
	}
	b, err := tb.Create()
	if err != nil {
		t.Fatal(err)
	}
	if b.Object != a.Object {
		t.Fatalf("freed object number not reused: %d then %d", a.Object, b.Object)
	}
	// Stale capability for the reused number must not validate: the
	// new object has a fresh random number.
	if _, err := tb.Validate(a); err == nil {
		t.Fatal("stale capability validated against recycled object number")
	}
}

func TestTableDestroyObjectInternal(t *testing.T) {
	tb := newTestTable(t, SchemeOneWay)
	c, err := tb.Create()
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.DestroyObject(c.Object); err != nil {
		t.Fatal(err)
	}
	if err := tb.DestroyObject(c.Object); err == nil {
		t.Fatal("double DestroyObject succeeded")
	}
}

func TestTableConcurrentCreateValidate(t *testing.T) {
	tb := newTestTable(t, SchemeOneWay)
	var wg sync.WaitGroup
	const goroutines, per = 8, 50
	caps := make([][]Capability, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c, err := tb.Create()
				if err != nil {
					t.Errorf("Create: %v", err)
					return
				}
				caps[g] = append(caps[g], c)
				if _, err := tb.Validate(c); err != nil {
					t.Errorf("Validate: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if tb.Len() != goroutines*per {
		t.Fatalf("Len = %d, want %d", tb.Len(), goroutines*per)
	}
	// All object numbers distinct.
	seen := make(map[uint32]bool, goroutines*per)
	for _, list := range caps {
		for _, c := range list {
			if seen[c.Object] {
				t.Fatalf("object number %d allocated twice", c.Object)
			}
			seen[c.Object] = true
		}
	}
}

func TestTableAccessors(t *testing.T) {
	tb := newTestTable(t, SchemeCommutative)
	if tb.Server() != testPort {
		t.Errorf("Server() = %v", tb.Server())
	}
	if tb.Scheme().ID() != SchemeCommutative {
		t.Errorf("Scheme() = %v", tb.Scheme().ID())
	}
}

func TestTableNilSourceDefaultsToSystem(t *testing.T) {
	s, err := NewScheme(SchemeOneWay)
	if err != nil {
		t.Fatal(err)
	}
	tb := NewTable(s, testPort, nil)
	if _, err := tb.Create(); err != nil {
		t.Fatalf("Create with system randomness: %v", err)
	}
}

func TestTableCreateObject(t *testing.T) {
	tb := newTestTable(t, SchemeOneWay)
	c, err := tb.CreateObject(123)
	if err != nil {
		t.Fatal(err)
	}
	if c.Object != 123 {
		t.Fatalf("Object = %d", c.Object)
	}
	if _, err := tb.Validate(c); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.CreateObject(123); err == nil {
		t.Fatal("duplicate object number accepted")
	}
	if _, err := tb.CreateObject(ObjectMask + 1); err == nil {
		t.Fatal("25-bit object number accepted")
	}
	// Destroy then re-create the same number: fresh secret.
	if err := tb.DestroyObject(123); err != nil {
		t.Fatal(err)
	}
	c2, err := tb.CreateObject(123)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Validate(c); err == nil {
		t.Fatal("stale capability validated after recreate")
	}
	if _, err := tb.Validate(c2); err != nil {
		t.Fatal(err)
	}
}

func TestTableSnapshotRestore(t *testing.T) {
	tb := newTestTable(t, SchemeOneWay)
	var caps []Capability
	for i := 0; i < 10; i++ {
		c, err := tb.Create()
		if err != nil {
			t.Fatal(err)
		}
		caps = append(caps, c)
	}
	if err := tb.Destroy(caps[3]); err != nil {
		t.Fatal(err)
	}
	snap := tb.Snapshot()

	// A "restarted" server: fresh table, same scheme and port.
	s, err := NewScheme(SchemeOneWay)
	if err != nil {
		t.Fatal(err)
	}
	tb2 := NewTable(s, testPort, crypto.NewSeededSource(999))
	if err := tb2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	for i, c := range caps {
		_, err := tb2.Validate(c)
		if i == 3 {
			if err == nil {
				t.Error("destroyed object revived by restore")
			}
			continue
		}
		if err != nil {
			t.Errorf("capability %d rejected after restore: %v", i, err)
		}
	}
	// New objects keep allocating from where the old table left off.
	c, err := tb2.Create()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb2.Validate(c); err != nil {
		t.Fatal(err)
	}
}

func TestTableRestoreRejectsGarbage(t *testing.T) {
	tb := newTestTable(t, SchemeOneWay)
	if err := tb.Restore([]byte("junk")); err == nil {
		t.Fatal("garbage restore accepted")
	}
	snap := tb.Snapshot()
	if err := tb.Restore(snap[:len(snap)-1]); err == nil && len(snap) > 12 {
		t.Fatal("truncated restore accepted")
	}
}
