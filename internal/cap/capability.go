// Package cap implements Amoeba sparse capabilities: the 128-bit
// capability format of the paper's Fig. 2 and the four rights-protection
// algorithms of §2.3, together with the server-side object tables that
// mint, validate, restrict and revoke capabilities.
//
// A capability is a bearer token held directly in user address space.
// The kernel neither stores nor interprets it; forgery is prevented by
// the sparseness of its 48-bit check field (and of the 48-bit server
// port), plus one of four cryptographic schemes that bind the rights
// bits to the check field.
package cap

import (
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"strings"
)

// Port is a 48-bit Amoeba port carried in the low bits of a uint64.
// The Server field of every capability is the put-port of the server
// managing the object. (Get-ports and the F-box transformation live in
// package fbox; a Port value itself is just a sparse 48-bit number.)
type Port uint64

// PortMask selects the valid bits of a Port.
const PortMask = Port(1)<<48 - 1

// String renders the port as 12 hex digits.
func (p Port) String() string {
	var buf [6]byte
	binary.BigEndian.PutUint16(buf[0:], uint16(p>>32))
	binary.BigEndian.PutUint32(buf[2:], uint32(p))
	return hex.EncodeToString(buf[:])
}

// Valid reports whether the port fits in 48 bits.
func (p Port) Valid() bool { return p&^PortMask == 0 }

// Rights is the 8-bit rights field: one bit per permitted operation.
// The named constants are the library-wide conventions; each server
// documents which bits its operations demand (e.g. the directory
// server's lookup demands RightRead).
type Rights uint8

const (
	// RightRead permits reading the object (READ FILE, lookup, ...).
	RightRead Rights = 1 << iota
	// RightWrite permits modifying the object.
	RightWrite
	// RightDestroy permits destroying/deallocating the object.
	RightDestroy
	// RightCreate permits creating subordinate objects (e.g. directory
	// entries, new file versions, account withdrawals).
	RightCreate
	// RightX1, RightX2, RightX3 are server-specific.
	RightX1
	RightX2
	RightX3
	// RightRevoke permits replacing the object's random number,
	// instantly invalidating all outstanding capabilities (§2.3).
	RightRevoke
)

// AllRights has every bit set; newly minted capabilities are owner
// capabilities carrying all rights.
const AllRights Rights = 0xff

// Has reports whether r includes every right in want.
func (r Rights) Has(want Rights) bool { return r&want == want }

// String renders the rights as the paper would: a bitmap, MSB first.
func (r Rights) String() string {
	var b strings.Builder
	names := [8]byte{'v', '3', '2', '1', 'c', 'd', 'w', 'r'} // bit 7..0
	for i := 7; i >= 0; i-- {
		if r&(1<<uint(i)) != 0 {
			b.WriteByte(names[7-i])
		} else {
			b.WriteByte('-')
		}
	}
	return b.String()
}

// ObjectMask selects the valid bits of the 24-bit object number.
const ObjectMask uint32 = 1<<24 - 1

// CheckMask selects the valid bits of the 48-bit check field.
const CheckMask uint64 = 1<<48 - 1

// Size is the wire size of a capability in bytes: 48+24+8+48 bits
// (paper Fig. 2).
const Size = 16

// Capability is the paper's Fig. 2 token:
//
//	Server Port | Object | Rights | Check Field
//	48 bits     | 24     | 8      | 48
//
// Under schemes 0, 2 and 3 the Check field carries (a function of) the
// object's random number and Rights is plaintext. Under scheme 1 the
// Rights and Check fields together carry the 56-bit ciphertext of
// RIGHTS ∥ KNOWN-CONSTANT.
type Capability struct {
	Server Port   // put-port of the managing server (48 bits)
	Object uint32 // object number, meaningful only to the server (24 bits)
	Rights Rights // one bit per permitted operation (8 bits)
	Check  uint64 // the cryptographic protection field (48 bits)
}

// Nil is the zero capability, used to mean "no capability" in message
// slots that do not carry one.
var Nil Capability

// IsNil reports whether c is the zero capability.
func (c Capability) IsNil() bool { return c == Nil }

// Valid reports whether every field fits its Fig. 2 width.
func (c Capability) Valid() bool {
	return c.Server.Valid() && c.Object&^ObjectMask == 0 && c.Check&^CheckMask == 0
}

// ErrBadWireSize is returned by Decode for buffers that are not
// exactly 16 bytes.
var ErrBadWireSize = errors.New("cap: capability wire size must be 16 bytes")

// Encode serializes the capability into its 16-byte wire format:
// big-endian server port (6), object (3), rights (1), check (6).
func (c Capability) Encode() [Size]byte {
	var w [Size]byte
	binary.BigEndian.PutUint16(w[0:], uint16(c.Server>>32))
	binary.BigEndian.PutUint32(w[2:], uint32(c.Server))
	w[6] = byte(c.Object >> 16)
	w[7] = byte(c.Object >> 8)
	w[8] = byte(c.Object)
	w[9] = byte(c.Rights)
	binary.BigEndian.PutUint16(w[10:], uint16(c.Check>>32))
	binary.BigEndian.PutUint32(w[12:], uint32(c.Check))
	return w
}

// AppendTo appends the wire encoding to dst and returns the result.
func (c Capability) AppendTo(dst []byte) []byte {
	w := c.Encode()
	return append(dst, w[:]...)
}

// Decode parses a 16-byte wire capability.
func Decode(buf []byte) (Capability, error) {
	if len(buf) != Size {
		return Nil, fmt.Errorf("%w: got %d", ErrBadWireSize, len(buf))
	}
	var c Capability
	c.Server = Port(binary.BigEndian.Uint16(buf[0:]))<<32 | Port(binary.BigEndian.Uint32(buf[2:]))
	c.Object = uint32(buf[6])<<16 | uint32(buf[7])<<8 | uint32(buf[8])
	c.Rights = Rights(buf[9])
	c.Check = uint64(binary.BigEndian.Uint16(buf[10:]))<<32 | uint64(binary.BigEndian.Uint32(buf[12:]))
	return c, nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (c Capability) MarshalBinary() ([]byte, error) {
	w := c.Encode()
	return w[:], nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (c *Capability) UnmarshalBinary(data []byte) error {
	dec, err := Decode(data)
	if err != nil {
		return err
	}
	*c = dec
	return nil
}

// String renders the capability like the tooling does:
// "port/object(rights)check".
func (c Capability) String() string {
	return fmt.Sprintf("%s/%06x(%s)%012x", c.Server, c.Object, c.Rights, c.Check)
}
