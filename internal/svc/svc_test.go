package svc

import (
	"context"
	"encoding/binary"
	"sync"
	"testing"

	"amoeba/internal/amnet"
	"amoeba/internal/cap"
	"amoeba/internal/crypto"
	"amoeba/internal/fbox"
	"amoeba/internal/locate"
	"amoeba/internal/rpc"
	"amoeba/internal/vdisk"
	"amoeba/internal/wal"
)

// counter is a minimal durable service over the kernel: one op that
// increments a named counter, logged as tag 0x01 ∥ nameLen-free name.
type counter struct {
	*Kernel
	mu sync.Mutex
	n  map[string]uint64
}

const opInc uint16 = 0x0900

func newCounter(t *testing.T, fb *fbox.FBox, log *wal.Log, g cap.Port) *counter {
	t.Helper()
	scheme, err := cap.NewScheme(cap.SchemeOneWay)
	if err != nil {
		t.Fatal(err)
	}
	c := &counter{n: make(map[string]uint64)}
	c.Kernel = NewWithConfig(fb, scheme, Config{
		Source: crypto.NewSeededSource(7),
		Port:   g,
		Log:    log,
		Snapshot: func() []byte {
			out := make([]byte, 4)
			binary.BigEndian.PutUint32(out, uint32(len(c.n)))
			for name, v := range c.n {
				out = append(out, byte(len(name)))
				out = append(out, name...)
				var b [8]byte
				binary.BigEndian.PutUint64(b[:], v)
				out = append(out, b[:]...)
			}
			return out
		},
		Restore: func(snap []byte) error {
			m := make(map[string]uint64)
			cnt := binary.BigEndian.Uint32(snap)
			at := 4
			for i := uint32(0); i < cnt; i++ {
				nl := int(snap[at])
				name := string(snap[at+1 : at+1+nl])
				m[name] = binary.BigEndian.Uint64(snap[at+1+nl:])
				at += 9 + nl
			}
			c.n = m
			return nil
		},
	})
	c.Handle(opInc, func(_ context.Context, _ rpc.Meta, req rpc.Request) rpc.Reply {
		rec := append([]byte{0x01}, req.Data...)
		c.mu.Lock()
		tk, err := c.Append(rec)
		if err != nil {
			c.mu.Unlock()
			return rpc.ErrReplyFromErr(err)
		}
		c.n[string(req.Data)]++
		v := c.n[string(req.Data)]
		c.mu.Unlock()
		if err := tk.Wait(); err != nil {
			return rpc.ErrReplyFromErr(err)
		}
		var out [8]byte
		binary.BigEndian.PutUint64(out[:], v)
		return rpc.OkReply(out[:])
	})
	if err := c.Recover(func(rec []byte) error {
		c.n[string(rec[1:])]++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return c
}

type rig struct {
	net    *amnet.SimNet
	client *rpc.Client
}

func newRig(t *testing.T) (*rig, *fbox.FBox) {
	t.Helper()
	n := amnet.NewSimNet(amnet.SimConfig{})
	t.Cleanup(func() { n.Close() })
	attach := func() *fbox.FBox {
		nic, err := n.Attach()
		if err != nil {
			t.Fatal(err)
		}
		fb := fbox.New(nic, nil)
		t.Cleanup(func() { fb.Close() })
		return fb
	}
	cfb := attach()
	res := locate.New(cfb, locate.Config{})
	return &rig{
		net:    n,
		client: rpc.NewClient(cfb, res, rpc.ClientConfig{Source: crypto.NewSeededSource(9)}),
	}, attach()
}

func TestKernelDurableRoundTrip(t *testing.T) {
	ctx := context.Background()
	r, serverFB := newRig(t)
	disk, err := vdisk.New(128, 256)
	if err != nil {
		t.Fatal(err)
	}
	log, err := wal.Open(disk, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := newCounter(t, serverFB, log, 0)
	if !c.Durable() {
		t.Fatal("kernel with a log reports volatile")
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		rep, err := r.client.Trans(ctx, c.PutPort(), rpc.Request{Op: opInc, Data: []byte("x")})
		if err != nil || rep.Status != rpc.StatusOK {
			t.Fatalf("inc %d: %v %+v", i, err, rep)
		}
	}
	// Echo rides the kernel's standard table wiring.
	rep, err := r.client.Trans(ctx, c.PutPort(), rpc.Request{Op: rpc.OpEcho, Data: []byte("ping")})
	if err != nil || string(rep.Data) != "ping" {
		t.Fatalf("echo: %v %+v", err, rep)
	}
	g := c.GetPort()
	if err := c.Crash(); err != nil {
		t.Fatal(err)
	}
	// Close after Crash is a no-op, not a second teardown.
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// Reincarnate from the log on a fresh machine, same get-port.
	_, fb2 := newRig(t)
	log2, err := wal.Open(disk, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c2 := newCounter(t, fb2, log2, g)
	defer c2.Close()
	if c2.n["x"] != 5 {
		t.Fatalf("replayed counter %d, want 5", c2.n["x"])
	}
	if c2.PutPort() != c.PutPort() {
		t.Fatal("reincarnation changed put-port despite pinned get-port")
	}
}

func TestKernelCheckpointCompacts(t *testing.T) {
	ctx := context.Background()
	r, serverFB := newRig(t)
	disk, err := vdisk.New(128, 256)
	if err != nil {
		t.Fatal(err)
	}
	log, err := wal.Open(disk, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := newCounter(t, serverFB, log, 0)
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 10; i++ {
		if _, err := r.client.Trans(ctx, c.PutPort(), rpc.Request{Op: opInc, Data: []byte("y")}); err != nil {
			t.Fatal(err)
		}
	}
	used := log.Stats().Used
	if err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := log.Stats().Used; got >= used {
		t.Fatalf("checkpoint did not truncate: used %d -> %d", used, got)
	}

	// Recovery now restores the snapshot (no records to replay).
	log2, err := wal.Open(disk.Clone(), wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	_, fb2 := newRig(t)
	c2 := newCounter(t, fb2, log2, c.GetPort())
	defer c2.Close()
	if c2.n["y"] != 10 {
		t.Fatalf("post-checkpoint replay counter %d, want 10", c2.n["y"])
	}
}

func TestKernelVolatileAppendIsFree(t *testing.T) {
	_, fb := newRig(t)
	c := newCounter(t, fb, nil, 0)
	defer c.Close()
	if c.Durable() {
		t.Fatal("kernel without a log reports durable")
	}
	tk, err := c.Append([]byte{0x01, 'z'})
	if err != nil || tk != nil {
		t.Fatalf("volatile Append = (%v, %v), want (nil, nil)", tk, err)
	}
	if err := tk.Wait(); err != nil {
		t.Fatalf("nil ticket Wait: %v", err)
	}
	if err := c.Checkpoint(); err != nil {
		t.Fatalf("volatile Checkpoint: %v", err)
	}
}
