// Package svc is the service kernel: the scaffolding every Amoeba
// service otherwise duplicates — an rpc.Server, a cap.Table wired to
// the standard capability-maintenance opcodes, and the start/close
// lifecycle — plus, optionally, write-ahead durability.
//
// A service embeds *Kernel and inherits Start, Close, PutPort, Table,
// SetSealer and SetMaxInflight; it registers its operation handlers
// with Handle and keeps only its own object state.
//
// Durability: a kernel built with Config.Log writes redo records ahead
// of replies. A handler stages its record with Append while it holds
// the object lock that ordered the mutation (stage order is commit
// order), releases the lock, and calls Ticket.Wait before replying —
// group commit batches the concurrent waits into one disk sync. On a
// restart, Recover restores the newest checkpoint and re-applies the
// records after it, so every capability a client ever received still
// names live state: the paper's LOCATE re-broadcast (§2.2) finds the
// re-incarnated server, and this package is why the reincarnation
// remembers.
package svc

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"amoeba/internal/cap"
	"amoeba/internal/crypto"
	"amoeba/internal/fbox"
	"amoeba/internal/obs"
	"amoeba/internal/rpc"
	"amoeba/internal/shard"
	"amoeba/internal/wal"
)

// RecKernel tags the kernel's own log records (currently: revocation
// re-keys). Service-defined record tags must stay below RecMigIn.
const RecKernel = 0xFF

// RecMigOut is the kernel record sealing a migrate-out: obj (4 bytes)
// left this shard. Staged only after the destination holds the object
// durably, so a crash between extract and commit replays the object
// HERE (and the destination's dark copy never serves — the shard map
// was not yet bumped).
const RecMigOut = 0xFE

// RecMigIn is the kernel record sealing a migrate-in: obj (4 bytes) ∥
// secret (8 bytes) ∥ service state. The same secret re-installs, so
// every capability clients hold for the object stays valid across the
// move.
const RecMigIn = 0xFD

// Config tunes a kernel. The zero value is a volatile service with a
// fresh random get-port.
type Config struct {
	// Source supplies port and secret randomness (nil: crypto/rand).
	Source crypto.Source
	// Port pins the secret get-port G. A durable service persists G
	// and passes it on restart so it reappears at the same put-port
	// P = F(G) — the address every outstanding capability names.
	Port cap.Port
	// MaxInflight bounds the worker pool (0 = rpc default).
	MaxInflight int
	// Log makes the service durable. The kernel takes ownership: Close
	// checkpoints into it and closes it. Size the log for the service:
	// a checkpoint must fit one record (wal.Options.MaxRecord, by
	// default a quarter of the arena), so the arena needs to hold a
	// full state snapshot with room to spare — a service that outgrows
	// it sees ErrFull on appends until state shrinks.
	Log *wal.Log
	// Snapshot serializes the service's object state for a checkpoint.
	// It is called quiesced (no handler in flight). Required with Log.
	Snapshot func() []byte
	// Restore replaces the service's object state from a Snapshot
	// payload; it must reset, not merge (recovery may restore a newer
	// checkpoint over an older replay). Required with Log.
	Restore func(snap []byte) error
	// ExtractObject serializes ONE object's service state and removes
	// it, both under the object's own lock (one consistent cut — no
	// whole-server quiesce). The migration source path. Optional:
	// services without it cannot migrate objects out.
	ExtractObject func(obj uint32) ([]byte, error)
	// InstallObject installs one object's state from an ExtractObject
	// payload — the migration destination path and the RecMigIn replay
	// path. Install is trusted: an existing object is overwritten.
	InstallObject func(obj uint32, state []byte) error
	// RemoveObject drops one object's state without serializing it —
	// the RecMigOut replay path. Must tolerate an absent object.
	RemoveObject func(obj uint32)
}

// Kernel bundles one service's transport, object table and (optional)
// write-ahead log.
type Kernel struct {
	srv     *rpc.Server
	table   *cap.Table
	log     *wal.Log
	snap    func() []byte
	restore func(snap []byte) error
	extract func(obj uint32) ([]byte, error)
	install func(obj uint32, state []byte) error
	remove  func(obj uint32)

	revMu sync.Mutex // orders revoke records with their table re-key

	// view, when set, is this kernel's shard of its port's object
	// space: dispatch answers StatusWrongShard for objects other
	// shards own. Installed by the cluster after construction, so it
	// is read through an atomic.
	view atomic.Pointer[shard.View]
	// gate, when set, names the ONE object currently mid-migration:
	// dispatch of that object parks until the move settles (a few ms);
	// every other object passes with a single atomic load.
	gate atomic.Pointer[migGate]
	// migMu holds checkpoints off while an extracted object is in
	// flight: a checkpoint cut between extract and commit would omit
	// the object from the snapshot while the log still lacks its
	// migrate-out record — a crash then loses it.
	migMu sync.Mutex

	// fence, when set, is consulted after every handler's durability
	// barrier and before its reply leaves: a non-nil error withholds
	// the acknowledgement. The replication lease installs itself here —
	// a primary whose lease has lapsed may have executed the mutation,
	// but it must not promise the client the mutation is decided, since
	// a majority of the group may already be electing a successor.
	fence atomic.Value // of func() error

	mu        sync.Mutex
	recovered bool
	closed    bool
	stopCk    chan struct{}
	ckDone    chan struct{}
}

// New builds a volatile kernel — the common scaffolding call.
func New(fb *fbox.FBox, scheme cap.Scheme, src crypto.Source) *Kernel {
	return NewWithConfig(fb, scheme, Config{Source: src})
}

// NewWithConfig builds a kernel with explicit tuning. A durable
// service must call Recover before Start.
func NewWithConfig(fb *fbox.FBox, scheme cap.Scheme, cfg Config) *Kernel {
	k := &Kernel{
		log:     cfg.Log,
		snap:    cfg.Snapshot,
		restore: cfg.Restore,
		extract: cfg.ExtractObject,
		install: cfg.InstallObject,
		remove:  cfg.RemoveObject,
	}
	k.srv = rpc.NewServerWithConfig(fb, rpc.ServerConfig{
		Source:      cfg.Source,
		Port:        cfg.Port,
		MaxInflight: cfg.MaxInflight,
	})
	k.table = cap.NewTable(scheme, k.srv.PutPort(), cfg.Source)
	k.serveTable()
	return k
}

// observed guards a handler's reply with the log's durability barrier:
// whatever state the handler observed is on stable storage — and, when
// replicated, on the standby — before the reply leaves. Mutating
// handlers already wait on their own ticket, so for them the barrier
// is a cheap re-check; the handlers it exists for are the OBSERVING
// replies — reads, duplicate-suppression errors ("entry exists"),
// absences — which would otherwise acknowledge state whose record is
// still in flight. Without the fence, a client can hold a reply that a
// crash-plus-failover contradicts: the canonical race is Enter's
// reply lost, the retry answered "exists" off in-memory state, and the
// machine killed before the original record reached the standby.
func (k *Kernel) observed(h rpc.Handler) rpc.Handler {
	if k.log == nil {
		return h
	}
	return func(ctx context.Context, md rpc.Meta, req rpc.Request) rpc.Reply {
		rep := h(ctx, md, req)
		if err := k.log.Barrier(); err != nil {
			return rpc.ErrReplyFromErr(err)
		}
		// The replica fence runs AFTER the barrier: by now the record
		// is locally durable and shipped, so the fence's only question
		// is whether this kernel is still entitled to acknowledge it.
		// A fence refusing because its authority is permanently gone
		// (deposed, sealed, wedged — wrapping rpc.ErrStaleAuthority)
		// answers StatusStale, which makes the client evict its cached
		// route and re-LOCATE immediately; a transient refusal answers
		// StatusOverload — back off and retry, the lease may come back.
		if f, _ := k.fence.Load().(func() error); f != nil {
			if err := f(); err != nil {
				if errors.Is(err, rpc.ErrStaleAuthority) {
					return rpc.ErrReply(rpc.StatusStale, err.Error())
				}
				return rpc.ErrReply(rpc.StatusOverload, err.Error())
			}
		}
		return rep
	}
}

// migGate marks one object as mid-migration; dispatch for it parks on
// done until the move settles.
type migGate struct {
	obj  uint32
	done chan struct{}
}

// sharded guards a handler with the kernel's shard view: a request for
// an object another shard owns is refused with StatusWrongShard and
// the current map generation, never executed. A request for the ONE
// object currently migrating parks until the move settles, then gets
// the post-move answer — the "forwarding" that makes a migration
// invisible to callers beyond a few milliseconds of stall. An
// unsharded kernel pays a single atomic load.
//
// The check runs again on the way out: a handler that raced the
// extract sees the object vanish and answers BadCapability; if by then
// the object belongs elsewhere, the honest answer is WrongShard — the
// client re-routes instead of reporting a phantom deletion.
func (k *Kernel) sharded(h rpc.Handler) rpc.Handler {
	return func(ctx context.Context, md rpc.Meta, req rpc.Request) rpc.Reply {
		v := k.view.Load()
		routed := v != nil && req.Cap != cap.Nil && req.Cap.Server == k.srv.PutPort()
		if routed {
			obj := req.Cap.Object & cap.ObjectMask
			if err := k.waitGate(ctx, obj); err != nil {
				return rpc.ErrReplyFromErr(err)
			}
			if !v.Owns(obj) {
				return rpc.WrongShardReply(v.Gen())
			}
		}
		rep := h(ctx, md, req)
		if routed && rep.Status == rpc.StatusBadCapability {
			obj := req.Cap.Object & cap.ObjectMask
			if err := k.waitGate(ctx, obj); err != nil {
				return rpc.ErrReplyFromErr(err)
			}
			if !v.Owns(obj) {
				return rpc.WrongShardReply(v.Gen())
			}
		}
		return rep
	}
}

// waitGate parks while obj is the object mid-migration.
func (k *Kernel) waitGate(ctx context.Context, obj uint32) error {
	for {
		g := k.gate.Load()
		if g == nil || g.obj != obj {
			return nil
		}
		select {
		case <-g.done:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// guard is the full dispatch wrapper: shard ownership outside,
// durability barrier and replica fence inside.
func (k *Kernel) guard(h rpc.Handler) rpc.Handler { return k.sharded(k.observed(h)) }

// SetShardView installs this kernel's shard view (nil removes it) —
// the cluster wires it right after construction, before Start.
func (k *Kernel) SetShardView(v *shard.View) { k.view.Store(v) }

// OwnsObject reports whether this kernel's shard owns obj (always
// true when unsharded). Services consult it to stop multi-object
// walks — a path lookup must not cross a shard boundary silently.
func (k *Kernel) OwnsObject(obj uint32) bool {
	v := k.view.Load()
	return v == nil || v.Owns(obj&cap.ObjectMask)
}

// ShardGen returns the current shard-map generation this kernel sees
// (0 when unsharded).
func (k *Kernel) ShardGen() uint64 {
	v := k.view.Load()
	if v == nil {
		return 0
	}
	return v.Gen()
}

// SetReplicaFence installs (nil removes) a predicate consulted after
// every handler's durability barrier; a non-nil error converts the
// reply into StatusOverload. Swappable after Start — replication
// attaches to a running kernel.
func (k *Kernel) SetReplicaFence(f func() error) { k.fence.Store(f) }

// SetAdmitGate installs (nil removes) an admission predicate on the
// transport; see rpc.Server.SetAdmitGate. Where the replica fence
// withholds acknowledgements at the exit, the gate refuses work at the
// door — a deposed primary should not even execute new mutations.
func (k *Kernel) SetAdmitGate(g func() error) { k.srv.SetAdmitGate(g) }

// Wedged reports whether the kernel's log has wedged read-only after
// an I/O failure (always false for a volatile kernel). A wedged kernel
// keeps answering the network — reads still work — but every durable
// op fails with wal.ErrWedged; the machine needs a Restart onto a
// healthy store.
func (k *Kernel) Wedged() bool { return k.log != nil && k.log.Wedged() }

// OnWedge registers fn to run (once, on its own goroutine) when the
// kernel's log wedges — the health signal replication uses to treat a
// dead disk as a dead machine. No-op on a volatile kernel.
func (k *Kernel) OnWedge(fn func(err error)) {
	if k.log != nil {
		k.log.OnWedge(fn)
	}
}

// serveTable wires the standard capability-maintenance opcodes with
// every reply behind the durability barrier (a Validate or Restrict
// observes table secrets whose re-key record may still be in flight),
// and with revocation on a durable kernel written ahead to the log: a
// re-key that survived only in memory would resurrect revoked
// capabilities at the next restart.
func (k *Kernel) serveTable() {
	t := k.table
	k.srv.ServeTableWith(t, func(_ context.Context, _ rpc.Meta, req rpc.Request) rpc.Reply {
		if k.log == nil {
			nc, err := t.Revoke(req.Cap)
			if err != nil {
				return rpc.ErrReplyFromErr(err)
			}
			return rpc.CapReply(nc)
		}
		// revMu makes record order match re-key order when two revokes
		// race on one object — replaying the log must land on the same
		// winning secret the live server handed out last.
		k.revMu.Lock()
		nc, secret, err := t.RevokeRecorded(req.Cap)
		if err != nil {
			k.revMu.Unlock()
			return rpc.ErrReplyFromErr(err)
		}
		tk, aerr := k.log.Append(revokeRecord(req.Cap.Object, secret))
		k.revMu.Unlock()
		if aerr == nil {
			aerr = tk.Wait()
		}
		if aerr != nil {
			return rpc.ErrReplyFromErr(aerr)
		}
		return rpc.CapReply(nc)
	}, k.guard)
}

func revokeRecord(obj uint32, secret uint64) []byte {
	rec := make([]byte, 13)
	rec[0] = RecKernel
	binary.BigEndian.PutUint32(rec[1:], obj)
	binary.BigEndian.PutUint64(rec[5:], secret)
	return rec
}

// Handle registers a handler for an opcode (before Start). On a
// durable kernel the handler's reply is guarded by the durability
// barrier (see observed); on a sharded kernel also by the shard
// ownership check (see sharded).
func (k *Kernel) Handle(op uint16, h rpc.Handler) { k.srv.Handle(op, k.guard(h)) }

// PutPort returns the public put-port P = F(G).
func (k *Kernel) PutPort() cap.Port { return k.srv.PutPort() }

// GetPort returns the secret get-port G. A durable service's host
// keeps it (as secret as the log) to restart the service at the same
// put-port.
func (k *Kernel) GetPort() cap.Port { return k.srv.GetPort() }

// Table exposes the object table.
func (k *Kernel) Table() *cap.Table { return k.table }

// SetSealer installs a §2.4 capability sealer on the transport (call
// before Start).
func (k *Kernel) SetSealer(sealer rpc.CapSealer) { k.srv.SetSealer(sealer) }

// SetMaxInflight resizes the transport worker pool — before Start it
// records the size, after Start it resizes live under the quiesce
// gate; see rpc.Server.SetMaxInflight.
func (k *Kernel) SetMaxInflight(n int) { k.srv.SetMaxInflight(n) }

// SetObserver installs the per-request instrumentation handle on the
// transport (call before Start); see rpc.Server.SetObserver.
func (k *Kernel) SetObserver(st *obs.ServerStats) { k.srv.SetObserver(st) }

// Inflight returns the transport's current queue depth (requests
// queued for or occupying pool workers) — the queue-depth gauge.
func (k *Kernel) Inflight() int { return k.srv.Inflight() }

// QueueWaitEWMA returns the transport's smoothed recent queue wait.
func (k *Kernel) QueueWaitEWMA() time.Duration { return k.srv.QueueWaitEWMA() }

// LogStats returns the write-ahead log's counters (zero on a volatile
// kernel) — the WAL gauges read it at scrape time.
func (k *Kernel) LogStats() wal.Stats {
	if k.log == nil {
		return wal.Stats{}
	}
	return k.log.Stats()
}

// Drain is the graceful exit: the transport stops admitting (new
// requests are shed with rpc.StatusOverload — a crisp refusal clients
// retry elsewhere, not silence), every in-flight handler finishes and
// replies, and then the kernel closes — which on a durable service
// takes the final checkpoint and closes the log. The difference from
// a bare Close is the shed phase: Close leaves the listener racing
// arriving work, Drain refuses it first, so nothing is half-admitted
// when the checkpoint runs.
func (k *Kernel) Drain() error {
	k.srv.Drain()
	return k.Close()
}

// Durable reports whether the kernel writes ahead to a log.
func (k *Kernel) Durable() bool { return k.log != nil }

// Append stages one redo record, returning the group-commit ticket the
// handler must Wait on before replying. On a volatile kernel it
// returns (nil, nil), and a nil ticket's Wait is a no-op — handlers
// are written once, durability decided by construction.
//
// Call it while holding the object lock that serialized the mutation:
// the log's stage order is its replay order.
//
// Error policy: a failed Append (log full or wedged) happens BEFORE
// the mutation, so handlers reply with an error and change nothing. A
// failed Wait happens after: the in-memory mutation stands, the reply
// is an error, and the log is wedged — every later mutation fails at
// Append, so the divergence cannot grow. Whether the failed batch's
// prefix reached the disk is unknowable (the classic fsync-failure
// ambiguity); restarting the service resolves it in the log's favor.
func (k *Kernel) Append(rec []byte) (*wal.Ticket, error) {
	if k.log == nil {
		return nil, nil
	}
	return k.log.Append(rec)
}

// GateObject marks obj as mid-migration: dispatch for it parks until
// the returned release runs; every other object is untouched. One
// migration at a time per kernel. The release is idempotent.
func (k *Kernel) GateObject(obj uint32) (release func(), err error) {
	g := &migGate{obj: obj & cap.ObjectMask, done: make(chan struct{})}
	if !k.gate.CompareAndSwap(nil, g) {
		return nil, errors.New("svc: a migration is already in flight")
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			// Clear before waking: a parked request re-loads the gate,
			// finds none, and proceeds to the ownership check.
			k.gate.Store(nil)
			close(g.done)
		})
	}, nil
}

// ErrNotMigratable is returned when the service did not supply the
// per-object migration hooks.
var ErrNotMigratable = errors.New("svc: service has no migration hooks")

// ExtractForMigration cuts obj out of the running service: its table
// secret and its serialized state, removed from memory under the
// object's own lock. The cut is IN-MEMORY ONLY — no record is staged,
// so a crash right now recovers the object here, unharmed. The caller
// must finish with exactly one of CommitMigrateOut (destination holds
// it durably) or AbortMigration (put it back); until then checkpoints
// are held off, since a snapshot cut without the object while the log
// lacks its migrate-out record would lose it.
//
// Call with the object gated (GateObject): the gate keeps new requests
// out, and the service's object lock (inside ExtractObject) orders the
// cut after any handler already holding it. Because handlers stage
// their records under that same lock, the extracted state already
// reflects every staged mutation — the "WAL tail" for one object is
// empty by construction.
func (k *Kernel) ExtractForMigration(obj uint32) (secret uint64, state []byte, err error) {
	if k.extract == nil {
		return 0, nil, ErrNotMigratable
	}
	obj &= cap.ObjectMask
	k.migMu.Lock()
	secret, ok := k.table.SecretOf(obj)
	if !ok {
		k.migMu.Unlock()
		return 0, nil, fmt.Errorf("svc: object %d: %w", obj, cap.ErrNoSuchObject)
	}
	state, err = k.extract(obj)
	if err != nil {
		k.migMu.Unlock()
		return 0, nil, err
	}
	// Forget, not Destroy: the number must never reach the free list —
	// it still names a live object, just elsewhere.
	k.table.ForgetObject(obj)
	return secret, state, nil
}

// CommitMigrateOut seals a migrate-out: the destination acknowledged
// durable custody, so the record making the departure survive OUR
// restarts goes to the log (and, through the replica sink, to this
// shard's standbys). Releases the checkpoint hold taken by
// ExtractForMigration.
func (k *Kernel) CommitMigrateOut(obj uint32) error {
	defer k.migMu.Unlock()
	rec := make([]byte, 5)
	rec[0] = RecMigOut
	binary.BigEndian.PutUint32(rec[1:], obj&cap.ObjectMask)
	tk, err := k.Append(rec)
	if err == nil {
		err = tk.Wait()
	}
	return err
}

// AbortMigration undoes ExtractForMigration: the secret and state go
// back in memory exactly as they were. Nothing was logged either way,
// so recovery is already correct. Releases the checkpoint hold.
func (k *Kernel) AbortMigration(obj uint32, secret uint64, state []byte) error {
	defer k.migMu.Unlock()
	obj &= cap.ObjectMask
	k.table.InstallSecret(obj, secret)
	if k.install == nil {
		return ErrNotMigratable
	}
	return k.install(obj, state)
}

// InstallMigrated adopts an object on the destination shard: the
// migrate-in record (same secret — clients' capabilities stay valid)
// is staged, the object installed in memory, and the group commit
// waited out, so the acknowledgement the source acts on means durable
// custody here and on this shard's standbys.
func (k *Kernel) InstallMigrated(obj uint32, secret uint64, state []byte) error {
	if k.install == nil {
		return ErrNotMigratable
	}
	obj &= cap.ObjectMask
	rec := make([]byte, 13+len(state))
	rec[0] = RecMigIn
	binary.BigEndian.PutUint32(rec[1:], obj)
	binary.BigEndian.PutUint64(rec[5:], secret)
	copy(rec[13:], state)
	tk, err := k.Append(rec)
	if err != nil {
		return err
	}
	k.table.InstallSecret(obj, secret)
	if err := k.install(obj, state); err != nil {
		return err
	}
	if tk != nil {
		return tk.Wait()
	}
	return nil
}

// applyKernelRec consumes the kernel's own record tags during replay
// (both recovery and the replica stream); reports whether rec was one.
func (k *Kernel) applyKernelRec(rec []byte) (bool, error) {
	if len(rec) == 0 {
		return false, nil
	}
	switch rec[0] {
	case RecKernel:
		if len(rec) != 13 {
			return true, fmt.Errorf("svc: malformed kernel record (%d bytes)", len(rec))
		}
		// Replace, never install: a revoke record can trail the
		// destroy record of the same object (they stage under
		// different locks), and replaying it must not resurrect
		// the destroyed object's table entry.
		k.table.ReplaceSecret(binary.BigEndian.Uint32(rec[1:]), binary.BigEndian.Uint64(rec[5:]))
		return true, nil
	case RecMigOut:
		if len(rec) != 5 {
			return true, fmt.Errorf("svc: malformed migrate-out record (%d bytes)", len(rec))
		}
		obj := binary.BigEndian.Uint32(rec[1:])
		k.table.ForgetObject(obj)
		if k.remove != nil {
			k.remove(obj)
		}
		return true, nil
	case RecMigIn:
		if len(rec) < 13 {
			return true, fmt.Errorf("svc: malformed migrate-in record (%d bytes)", len(rec))
		}
		obj := binary.BigEndian.Uint32(rec[1:])
		k.table.InstallSecret(obj, binary.BigEndian.Uint64(rec[5:]))
		if k.install == nil {
			return true, ErrNotMigratable
		}
		return true, k.install(obj, rec[13:])
	}
	return false, nil
}

// Recover replays the log: the newest checkpoint is restored (via
// Config.Restore and the table snapshot), then every record after it
// is handed to apply in commit order — kernel records (revocation
// re-keys) are consumed internally. Recover must run before Start on a
// durable kernel; on a volatile one it is a no-op, so services call it
// unconditionally.
func (k *Kernel) Recover(apply func(rec []byte) error) error {
	if k.log == nil {
		return nil
	}
	k.mu.Lock()
	if k.recovered {
		k.mu.Unlock()
		return errors.New("svc: already recovered")
	}
	k.recovered = true
	k.mu.Unlock()
	return k.log.Recover(k.restoreCheckpoint, func(rec []byte) error {
		if consumed, err := k.applyKernelRec(rec); consumed {
			return err
		}
		return apply(rec)
	})
}

// AttachReplica begins hot-standby replication from this (durable,
// primary) kernel: it quiesces the service, hands base the checkpoint
// envelope of the still state together with the log sequence number the
// next mutation will get, and — only if base succeeds — installs sink
// as the log's commit sink before resuming. Every record with sequence
// ≥ nextSeq is then delivered to sink in commit order, after its group
// commit and before its ticket completes (see wal.Log.SetSink), so the
// standby acknowledges a mutation before the client does.
//
// base typically ships the envelope to the standby (Receiver installs
// it via ReplicaApply's checkpoint path); its error aborts the attach
// with no sink installed.
func (k *Kernel) AttachReplica(base func(snap []byte, nextSeq uint64) error, sink func([]wal.Record)) error {
	if k.log == nil {
		return errors.New("svc: volatile kernel cannot replicate")
	}
	resume := k.srv.Quiesce()
	defer resume()
	// Quiesced, every staged record has committed (handlers wait on
	// their tickets before replying), so the envelope and NextSeq are a
	// consistent cut.
	if err := base(k.envelope(), k.log.NextSeq()); err != nil {
		return err
	}
	k.log.SetSink(sink)
	return nil
}

// Resnapshot quiesces the service and hands base a fresh checkpoint
// envelope plus the next log sequence, exactly as AttachReplica does —
// but WITHOUT touching the commit sink. The fan-out shipper uses it to
// re-base one returning standby while the rest of the group keeps its
// stream: quiesced, no handler is mid-flight and every ticket has been
// waited, so no sink delivery is concurrent with base.
func (k *Kernel) Resnapshot(base func(snap []byte, nextSeq uint64) error) error {
	if k.log == nil {
		return errors.New("svc: volatile kernel cannot replicate")
	}
	resume := k.srv.Quiesce()
	defer resume()
	return base(k.envelope(), k.log.NextSeq())
}

// DetachReplica stops delivering committed records to the replica sink.
func (k *Kernel) DetachReplica() {
	if k.log != nil {
		k.log.SetSink(nil)
	}
}

// Flush commits the log's staged records on the caller's goroutine
// (see wal.Log.Flush); the replication receiver calls it once per ship
// frame so its durable acknowledgement never waits out a committer
// wake-up. No-op on a volatile kernel.
func (k *Kernel) Flush() {
	if k.log != nil {
		k.log.Flush()
	}
}

// NextSeq returns the log sequence the next mutation will get (0 on a
// volatile kernel).
func (k *Kernel) NextSeq() uint64 {
	if k.log == nil {
		return 0
	}
	return k.log.NextSeq()
}

// ReadFrom streams committed log records with sequence ≥ from (the
// replica catch-up path; see wal.Log.ReadFrom).
func (k *Kernel) ReadFrom(from uint64, fn func(wal.Record) error) error {
	if k.log == nil {
		return errors.New("svc: volatile kernel has no log")
	}
	return k.log.ReadFrom(from, fn)
}

// ReplicaApply applies one shipped record to a STANDBY kernel — a
// durable kernel that has Recovered but not Started, whose state is
// mutated only by its replication receiver. A data record is appended
// to the standby's own log and then routed exactly as Recover routes a
// replayed record (kernel revoke records re-key the table, service
// records go to apply); the returned ticket commits it — the receiver
// waits before acknowledging, so an acknowledged record survives a
// crash of the standby itself. A checkpoint record replaces the whole
// kernel state (table + service) and compacts the standby's log; it is
// durable on return (nil ticket).
//
// The standby's log can be smaller than the stream: on ErrFull the
// kernel checkpoints its own state to reclaim space and retries once.
func (k *Kernel) ReplicaApply(r wal.Record, apply func(rec []byte) error) (*wal.Ticket, error) {
	if k.log == nil {
		return nil, errors.New("svc: volatile kernel cannot apply a replica stream")
	}
	if r.Checkpoint {
		if err := k.restoreCheckpoint(r.Data); err != nil {
			return nil, err
		}
		return nil, k.log.Checkpoint(r.Data)
	}
	t, err := k.log.Append(r.Data)
	if errors.Is(err, wal.ErrFull) {
		// The standby is quiet (its receiver serializes), so its own
		// envelope is a consistent cut it can checkpoint behind.
		if ckErr := k.log.Checkpoint(k.envelope()); ckErr != nil {
			return nil, ckErr
		}
		t, err = k.log.Append(r.Data)
	}
	if err != nil {
		return nil, err
	}
	if consumed, err := k.applyKernelRec(r.Data); consumed {
		if err != nil {
			return nil, err
		}
		return t, nil
	}
	if apply != nil {
		if err := apply(r.Data); err != nil {
			return nil, err
		}
	}
	return t, nil
}

const ckMagic = 0xA0EB_C4EC

// envelope packs the table snapshot and the service snapshot into one
// checkpoint payload.
func (k *Kernel) envelope() []byte {
	tsnap := k.table.Snapshot()
	var ssnap []byte
	if k.snap != nil {
		ssnap = k.snap()
	}
	out := make([]byte, 0, 12+len(tsnap)+len(ssnap))
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[0:], ckMagic)
	binary.BigEndian.PutUint32(hdr[4:], uint32(len(tsnap)))
	out = append(out, hdr[:]...)
	out = append(out, tsnap...)
	out = append(out, ssnap...)
	return out
}

func (k *Kernel) restoreCheckpoint(snap []byte) error {
	if len(snap) < 8 || binary.BigEndian.Uint32(snap) != ckMagic {
		return errors.New("svc: not a checkpoint envelope")
	}
	tlen := binary.BigEndian.Uint32(snap[4:])
	if uint64(8)+uint64(tlen) > uint64(len(snap)) {
		return errors.New("svc: truncated checkpoint envelope")
	}
	if err := k.table.Restore(snap[8 : 8+tlen]); err != nil {
		return err
	}
	if k.restore != nil {
		return k.restore(snap[8+tlen:])
	}
	return nil
}

// Checkpoint quiesces the service (no handler in flight), snapshots
// the table and service state, writes the snapshot into the log and
// truncates everything it covers. The kernel also checkpoints on its
// own when the log signals pressure, and once more at Close.
func (k *Kernel) Checkpoint() error {
	if k.log == nil {
		return nil
	}
	// migMu: never cut a snapshot while an extracted object is in
	// flight — it would be in neither the snapshot nor (yet) a
	// migrate-out record.
	k.migMu.Lock()
	defer k.migMu.Unlock()
	resume := k.srv.Quiesce()
	defer resume()
	return k.log.Checkpoint(k.envelope())
}

// Start begins serving; on durable kernels it also starts the
// pressure-driven checkpoint loop.
func (k *Kernel) Start() error {
	if err := k.srv.Start(); err != nil {
		return err
	}
	if k.log != nil {
		k.mu.Lock()
		k.stopCk = make(chan struct{})
		k.ckDone = make(chan struct{})
		stop, done := k.stopCk, k.ckDone
		k.mu.Unlock()
		go func() {
			defer close(done)
			for {
				select {
				case <-k.log.Pressure():
					// Best effort: a failed checkpoint surfaces as
					// ErrFull on the appends behind it.
					_ = k.Checkpoint()
				case <-stop:
					return
				}
			}
		}()
	}
	return nil
}

// Close drains in-flight requests, writes a final checkpoint and
// closes the log — the graceful path. See Crash for the other one.
func (k *Kernel) Close() error {
	if !k.markClosed() {
		return nil
	}
	k.stopCheckpointer()
	err := k.srv.Close()
	if k.log != nil {
		if ckErr := k.Checkpoint(); err == nil {
			err = ckErr
		}
		if cErr := k.log.Close(); err == nil {
			err = cErr
		}
	}
	return err
}

// Crash stops the service the way the process dying would look to the
// log: no final checkpoint, no final flush. Committed records stay;
// staged, unacknowledged ones are dropped (wal.Abandon) and the
// handlers waiting on them get errors — whose replies the dead machine
// never delivers anyway. The log is abandoned BEFORE the transport
// drains, so in-flight handlers cannot sneak their records to stable
// storage post-mortem. Tests and the cluster's Kill use it; everything
// the next Recover needs is already on the store.
func (k *Kernel) Crash() error {
	if !k.markClosed() {
		return nil
	}
	k.stopCheckpointer()
	var err error
	if k.log != nil {
		err = k.log.Abandon()
	}
	if cErr := k.srv.Close(); err == nil {
		err = cErr
	}
	return err
}

// markClosed wins the Close/Crash race exactly once.
func (k *Kernel) markClosed() bool {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.closed {
		return false
	}
	k.closed = true
	return true
}

func (k *Kernel) stopCheckpointer() {
	k.mu.Lock()
	stop, done := k.stopCk, k.ckDone
	k.stopCk = nil
	k.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}
