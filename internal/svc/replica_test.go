package svc

import (
	"context"
	"testing"

	"amoeba/internal/rpc"
	"amoeba/internal/vdisk"
	"amoeba/internal/wal"
)

// TestKernelReplicaApply wires two counter kernels together directly —
// the primary's commit sink feeding the standby's ReplicaApply — and
// checks the base-snapshot handoff, record routing (service AND kernel
// revoke records), and the standby's own durability.
func TestKernelReplicaApply(t *testing.T) {
	ctx := context.Background()
	r, primaryFB := newRig(t)
	pdisk, err := vdisk.New(128, 256)
	if err != nil {
		t.Fatal(err)
	}
	plog, err := wal.Open(pdisk, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := newCounter(t, primaryFB, plog, 0)
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// Three ops before the standby exists: they arrive via the base.
	for i := 0; i < 3; i++ {
		if _, err := r.client.Trans(ctx, p.PutPort(), rpc.Request{Op: opInc, Data: []byte("pre")}); err != nil {
			t.Fatal(err)
		}
	}

	bdisk, err := vdisk.New(128, 256)
	if err != nil {
		t.Fatal(err)
	}
	blog, err := wal.Open(bdisk, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, standbyFB := newRig(t)
	b := newCounter(t, standbyFB, blog, p.GetPort())
	defer b.Close()

	apply := func(rec []byte) error {
		b.n[string(rec[1:])]++
		return nil
	}
	err = p.AttachReplica(func(snap []byte, nextSeq uint64) error {
		_, aerr := b.ReplicaApply(wal.Record{Seq: nextSeq - 1, Checkpoint: true, Data: snap}, apply)
		return aerr
	}, func(recs []wal.Record) {
		for _, rec := range recs {
			tk, aerr := b.ReplicaApply(rec, apply)
			if aerr != nil {
				t.Errorf("replica apply seq %d: %v", rec.Seq, aerr)
				return
			}
			if aerr := tk.Wait(); aerr != nil {
				t.Errorf("replica commit seq %d: %v", rec.Seq, aerr)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if b.n["pre"] != 3 {
		t.Fatalf("base snapshot delivered %d pre-ops, want 3", b.n["pre"])
	}

	for i := 0; i < 5; i++ {
		if _, err := r.client.Trans(ctx, p.PutPort(), rpc.Request{Op: opInc, Data: []byte("live")}); err != nil {
			t.Fatal(err)
		}
	}
	if b.n["live"] != 5 {
		t.Fatalf("stream delivered %d live ops, want 5", b.n["live"])
	}

	// Checkpoints flow through ReplicaApply's restore path.
	if err := p.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if b.n["pre"] != 3 || b.n["live"] != 5 {
		t.Fatalf("shipped checkpoint corrupted the standby: %v", b.n)
	}

	p.DetachReplica()

	// The standby's own log must replay everything it acknowledged.
	rlog, err := wal.Open(bdisk.Clone(), wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, rebornFB := newRig(t)
	reborn := newCounter(t, rebornFB, rlog, 0)
	defer reborn.Close()
	if reborn.n["pre"] != 3 || reborn.n["live"] != 5 {
		t.Fatalf("standby disk replay diverged: %v", reborn.n)
	}
}

// TestAttachReplicaVolatileRefused: replication requires a log.
func TestAttachReplicaVolatileRefused(t *testing.T) {
	_, fb := newRig(t)
	c := newCounter(t, fb, nil, 0)
	defer c.Close()
	if err := c.AttachReplica(func([]byte, uint64) error { return nil }, nil); err == nil {
		t.Fatal("volatile kernel accepted a replica")
	}
	if _, err := c.ReplicaApply(wal.Record{Seq: 1, Data: []byte{0x01, 'x'}}, nil); err == nil {
		t.Fatal("volatile kernel applied a replica record")
	}
}
