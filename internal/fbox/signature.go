package fbox

import (
	"amoeba/internal/cap"
	"amoeba/internal/crypto"
)

// Signer is a sender's digital-signature identity (§2.2): a random
// secret S whose one-way image F(S) the owner publishes. The owner
// places S in the Sig field of outgoing messages; the F-box transmits
// F(S); receivers compare the arrived value against the published one.
// Only the true owner knows "what number to put in the third field to
// insure that the publicly-known F(S) comes out".
type Signer struct {
	secret Port
	public Port
}

// NewSigner draws a fresh signature secret from src (nil selects
// crypto/rand) under the one-way function f (nil selects the default
// F-box function).
func NewSigner(src crypto.Source, f crypto.OneWay) Signer {
	if src == nil {
		src = crypto.SystemSource()
	}
	if f == nil {
		f = crypto.SHA48{Tag: 1}
	}
	s := Port(crypto.Rand48(src)) & cap.PortMask
	return Signer{secret: s, public: Port(f.F(uint64(s))) & cap.PortMask}
}

// Secret returns S, to be placed in Message.Sig by the owner only.
func (s Signer) Secret() Port { return s.secret }

// Public returns the published verification value F(S).
func (s Signer) Public() Port { return s.public }

// Verifies reports whether a received message's transformed signature
// matches this identity's published value.
func (s Signer) Verifies(received Received) bool {
	return received.Sig != 0 && received.Sig == s.public
}

// VerifySignature checks a received message against any published
// value (for verifiers that only hold the public F(S)).
func VerifySignature(received Received, published Port) bool {
	return received.Sig != 0 && received.Sig == published
}
