package fbox

import (
	"errors"
	"sync"
	"testing"
	"time"

	"amoeba/internal/amnet"
	"amoeba/internal/crypto"
)

// rig is a three-machine network: client, server, intruder.
type rig struct {
	net      *amnet.SimNet
	client   *FBox
	server   *FBox
	intruder *FBox
	src      *crypto.SeededSource
}

func newRig(t *testing.T) *rig {
	t.Helper()
	n := amnet.NewSimNet(amnet.SimConfig{})
	t.Cleanup(func() { n.Close() })
	attach := func() *FBox {
		nic, err := n.Attach()
		if err != nil {
			t.Fatal(err)
		}
		fb := New(nic, nil)
		t.Cleanup(func() { fb.Close() })
		return fb
	}
	return &rig{
		net:      n,
		client:   attach(),
		server:   attach(),
		intruder: attach(),
		src:      crypto.NewSeededSource(0xF0CC5),
	}
}

func (r *rig) port() Port { return Port(crypto.Rand48(r.src)) }

func recvMsg(t *testing.T, l *Listener, d time.Duration) Received {
	t.Helper()
	select {
	case m, ok := <-l.Recv():
		if !ok {
			t.Fatal("listener closed")
		}
		return m
	case <-time.After(d):
		t.Fatal("timed out waiting for message")
	}
	return Received{}
}

func TestGetPutDelivers(t *testing.T) {
	r := newRig(t)
	g := r.port()
	l, err := r.server.Get(g, true)
	if err != nil {
		t.Fatal(err)
	}
	p := r.server.F(g)
	if err := r.client.Put(r.server.Machine(), Message{Dest: p, Payload: []byte("req")}); err != nil {
		t.Fatal(err)
	}
	m := recvMsg(t, l, time.Second)
	if string(m.Payload) != "req" || m.From != r.client.Machine() {
		t.Fatalf("received %+v", m)
	}
}

func TestFig1IntruderCannotListenOnPutPort(t *testing.T) {
	// The heart of Fig. 1: the intruder knows the public put-port P and
	// does GET(P); his F-box listens on F(P) ≠ P, so he receives
	// nothing addressed to P.
	r := newRig(t)
	g := r.port()
	p := r.server.F(g)

	// Server listens legitimately; intruder "listens" with GET(P).
	srvL, err := r.server.Get(g, true)
	if err != nil {
		t.Fatal(err)
	}
	intL, err := r.intruder.Get(p, true)
	if err != nil {
		t.Fatal(err)
	}

	// Client broadcasts at the frame level so the intruder's machine
	// physically receives the bits (worst case for the defender).
	msg := Message{Dest: p, Payload: []byte("for the server")}
	if err := r.client.Put(amnet.BroadcastID, msg); err != nil {
		t.Fatal(err)
	}

	recvMsg(t, srvL, time.Second) // server gets it
	select {
	case m := <-intL.Recv():
		t.Fatalf("intruder's GET(P) received a message: %+v", m)
	case <-time.After(30 * time.Millisecond):
	}
}

func TestFig1IntruderCannotImpersonateServer(t *testing.T) {
	// Client sends to the true put-port. Intruder cannot have a GET
	// matching it without knowing G.
	r := newRig(t)
	g := r.port()
	p := r.server.F(g)

	// Intruder tries every port he has seen: P and F(P).
	for _, guess := range []Port{p, r.intruder.F(p)} {
		if _, err := r.intruder.Get(guess, true); err != nil {
			t.Fatal(err)
		}
	}
	srvL, err := r.server.Get(g, true)
	if err != nil {
		t.Fatal(err)
	}
	// Direct the message at the intruder's machine on purpose: even
	// physically receiving the frame must not let him read it as a
	// message for P, because his F-box has no GET on P.
	if err := r.client.Put(r.intruder.Machine(), Message{Dest: p, Payload: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	// Note the message also does NOT reach the server (wrong machine);
	// the point is only that the intruder's listeners stay silent on P.
	time.Sleep(30 * time.Millisecond)
	select {
	case m := <-srvL.Recv():
		t.Fatalf("server unexpectedly received: %+v", m)
	default:
	}
}

func TestReplyPortTransformedInTransit(t *testing.T) {
	// The client's secret reply get-port G' must never appear on the
	// wire; the server sees P' = F(G') and can reply to it.
	r := newRig(t)
	g := r.port()
	srvL, err := r.server.Get(g, true)
	if err != nil {
		t.Fatal(err)
	}
	gPrime := r.port()
	repL, err := r.client.Get(gPrime, false)
	if err != nil {
		t.Fatal(err)
	}

	tap, err := r.net.Tap()
	if err != nil {
		t.Fatal(err)
	}

	p := r.server.F(g)
	if err := r.client.Put(r.server.Machine(), Message{Dest: p, Reply: gPrime, Payload: []byte("req")}); err != nil {
		t.Fatal(err)
	}
	m := recvMsg(t, srvL, time.Second)
	wantReply := r.client.F(gPrime)
	if m.Reply != wantReply {
		t.Fatalf("server saw reply port %v, want F(G') = %v", m.Reply, wantReply)
	}

	// The wire never carried G'.
	select {
	case f := <-tap.Recv():
		_, wire, err := decodeFrame(f.Payload)
		if err != nil {
			t.Fatal(err)
		}
		if wire.Reply == gPrime {
			t.Fatal("secret reply get-port appeared on the wire")
		}
	case <-time.After(time.Second):
		t.Fatal("tap captured nothing")
	}

	// Server replies to the received (already transformed) reply port.
	if err := r.server.Put(m.From, Message{Dest: m.Reply, Payload: []byte("resp")}); err != nil {
		t.Fatal(err)
	}
	resp := recvMsg(t, repL, time.Second)
	if string(resp.Payload) != "resp" {
		t.Fatalf("reply payload %q", resp.Payload)
	}
}

func TestSignatureAuthenticatesSender(t *testing.T) {
	// E7: the F-box signature scheme. The owner of S signs; the F-box
	// transmits F(S); the receiver compares with the published value.
	r := newRig(t)
	signer := NewSigner(r.src, nil)

	g := r.port()
	srvL, err := r.server.Get(g, true)
	if err != nil {
		t.Fatal(err)
	}
	p := r.server.F(g)

	if err := r.client.Put(r.server.Machine(), Message{Dest: p, Sig: signer.Secret(), Payload: []byte("signed")}); err != nil {
		t.Fatal(err)
	}
	m := recvMsg(t, srvL, time.Second)
	if !signer.Verifies(m) {
		t.Fatal("genuine signature did not verify")
	}
	if !VerifySignature(m, signer.Public()) {
		t.Fatal("VerifySignature rejected genuine signature")
	}

	// The intruder knows only F(S) (public). Signing with it yields
	// F(F(S)) on the wire, which does not verify.
	if err := r.intruder.Put(r.server.Machine(), Message{Dest: p, Sig: signer.Public(), Payload: []byte("forged")}); err != nil {
		t.Fatal(err)
	}
	forged := recvMsg(t, srvL, time.Second)
	if signer.Verifies(forged) {
		t.Fatal("forged signature verified")
	}
}

func TestUnsignedMessageDoesNotVerify(t *testing.T) {
	r := newRig(t)
	signer := NewSigner(r.src, nil)
	if signer.Verifies(Received{}) {
		t.Fatal("zero signature verified")
	}
	if VerifySignature(Received{}, signer.Public()) {
		t.Fatal("VerifySignature accepted zero signature")
	}
}

func TestGetPortNeverOnWire(t *testing.T) {
	// Sweep all traffic while a server does GET(G) and serves a
	// request; the 48-bit G must never appear in any frame.
	r := newRig(t)
	tap, err := r.net.Tap()
	if err != nil {
		t.Fatal(err)
	}
	g := r.port()
	srvL, err := r.server.Get(g, true)
	if err != nil {
		t.Fatal(err)
	}
	p := r.server.F(g)
	if err := r.client.Put(r.server.Machine(), Message{Dest: p, Payload: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	recvMsg(t, srvL, time.Second)

	deadline := time.After(100 * time.Millisecond)
	for {
		select {
		case f := <-tap.Recv():
			_, wire, err := decodeFrame(f.Payload)
			if err != nil {
				continue
			}
			for _, onWire := range []Port{wire.Dest, wire.Reply, wire.Sig} {
				if onWire == g {
					t.Fatal("get-port observed on the wire")
				}
			}
		case <-deadline:
			return
		}
	}
}

func TestPortBusy(t *testing.T) {
	r := newRig(t)
	g := r.port()
	if _, err := r.server.Get(g, true); err != nil {
		t.Fatal(err)
	}
	if _, err := r.server.Get(g, true); !errors.Is(err, ErrPortBusy) {
		t.Fatalf("second GET: %v", err)
	}
}

func TestListenerCloseFreesPort(t *testing.T) {
	r := newRig(t)
	g := r.port()
	l, err := r.server.Get(g, true)
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	l.Close() // idempotent
	if _, err := r.server.Get(g, true); err != nil {
		t.Fatalf("GET after close: %v", err)
	}
}

func TestLocateFindsAdvertisedPort(t *testing.T) {
	r := newRig(t)
	g := r.port()
	if _, err := r.server.Get(g, true); err != nil {
		t.Fatal(err)
	}
	p := r.server.F(g)
	replies, cancel, err := r.client.Locate(p)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	select {
	case at := <-replies:
		if at != r.server.Machine() {
			t.Fatalf("located at %v, want %v", at, r.server.Machine())
		}
	case <-time.After(time.Second):
		t.Fatal("LOCATE got no reply")
	}
}

func TestLocateIgnoresUnadvertisedPort(t *testing.T) {
	r := newRig(t)
	g := r.port()
	if _, err := r.client.Get(g, false); err != nil { // reply port: not advertised
		t.Fatal(err)
	}
	p := r.client.F(g)
	replies, cancel, err := r.server.Locate(p)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	select {
	case at := <-replies:
		t.Fatalf("unadvertised port located at %v", at)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestFBoxClose(t *testing.T) {
	n := amnet.NewSimNet(amnet.SimConfig{})
	defer n.Close()
	nic, err := n.Attach()
	if err != nil {
		t.Fatal(err)
	}
	fb := New(nic, nil)
	l, err := fb.Get(42, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := fb.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fb.Close(); err != nil {
		t.Fatal(err) // idempotent
	}
	if _, ok := <-l.Recv(); ok {
		t.Fatal("listener channel open after F-box close")
	}
	if err := fb.Put(1, Message{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put after close: %v", err)
	}
	if _, err := fb.Get(7, true); !errors.Is(err, ErrClosed) {
		t.Fatalf("Get after close: %v", err)
	}
	if _, _, err := fb.Locate(7); !errors.Is(err, ErrClosed) {
		t.Fatalf("Locate after close: %v", err)
	}
}

func TestFTransformIs48Bits(t *testing.T) {
	r := newRig(t)
	for i := 0; i < 100; i++ {
		p := r.client.F(r.port())
		if !p.Valid() {
			t.Fatalf("F produced out-of-range port %v", p)
		}
	}
}

func TestFrameCodecRoundTrip(t *testing.T) {
	msg := Message{Dest: 1, Reply: 2, Sig: 3, Payload: []byte("body")}
	kind, dec, err := decodeFrame(encodeFrame(kindMessage, msg))
	if err != nil {
		t.Fatal(err)
	}
	if kind != kindMessage || dec.Dest != 1 || dec.Reply != 2 || dec.Sig != 3 || string(dec.Payload) != "body" {
		t.Fatalf("decoded %+v kind %d", dec, kind)
	}
	if _, _, err := decodeFrame([]byte{1, 2}); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("short frame: %v", err)
	}
}

func TestMalformedFramesDropped(t *testing.T) {
	// Garbage on the wire must not disturb a working listener.
	r := newRig(t)
	g := r.port()
	l, err := r.server.Get(g, true)
	if err != nil {
		t.Fatal(err)
	}
	nic, err := r.net.Attach()
	if err != nil {
		t.Fatal(err)
	}
	defer nic.Close()
	if err := nic.Send(r.server.Machine(), []byte{0xff}); err != nil {
		t.Fatal(err)
	}
	if err := nic.Send(r.server.Machine(), []byte{}); err != nil {
		t.Fatal(err)
	}
	p := r.server.F(g)
	if err := r.client.Put(r.server.Machine(), Message{Dest: p, Payload: []byte("ok")}); err != nil {
		t.Fatal(err)
	}
	m := recvMsg(t, l, time.Second)
	if string(m.Payload) != "ok" {
		t.Fatalf("payload %q", m.Payload)
	}
}

func TestManyListenersStress(t *testing.T) {
	// 50 ports on one F-box, interleaved traffic: every message reaches
	// exactly the right listener.
	r := newRig(t)
	const ports = 50
	listeners := make([]*Listener, ports)
	puts := make([]Port, ports)
	for i := 0; i < ports; i++ {
		g := r.port()
		l, err := r.server.Get(g, false)
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
		puts[i] = r.server.F(g)
	}
	for i := 0; i < ports; i++ {
		if err := r.client.Put(r.server.Machine(), Message{Dest: puts[i], Payload: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < ports; i++ {
		m := recvMsg(t, listeners[i], time.Second)
		if len(m.Payload) != 1 || m.Payload[0] != byte(i) {
			t.Fatalf("listener %d received %v", i, m.Payload)
		}
	}
}

func TestConcurrentPuts(t *testing.T) {
	r := newRig(t)
	g := r.port()
	l, err := r.server.Get(g, false)
	if err != nil {
		t.Fatal(err)
	}
	p := r.server.F(g)
	const senders, per = 8, 25
	// Drain concurrently: the listener queue is finite (256), so a
	// consumer must keep pace with the senders.
	type result struct {
		key [2]byte
	}
	results := make(chan result, senders*per)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < senders*per; i++ {
			select {
			case m, ok := <-l.Recv():
				if !ok {
					return
				}
				results <- result{key: [2]byte{m.Payload[0], m.Payload[1]}}
			case <-time.After(2 * time.Second):
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := r.client.Put(r.server.Machine(), Message{Dest: p, Payload: []byte{byte(s), byte(i)}}); err != nil {
					t.Errorf("put: %v", err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	<-done
	close(results)
	seen := make(map[[2]byte]bool, senders*per)
	for r := range results {
		if seen[r.key] {
			t.Fatalf("duplicate delivery %v", r.key)
		}
		seen[r.key] = true
	}
	if len(seen) != senders*per {
		t.Fatalf("received %d distinct messages, want %d", len(seen), senders*per)
	}
}
